(* Cross-host demo: the pluginization machinery is transport-neutral.
   The SAME plugin values — the monitoring plugin and the pluggable AIMD
   congestion controller, compiled once to eBPF bytecode — attach to two
   different hosts of the pluginop library:

     1. a PQUIC connection downloading 1 MB, and
     2. a plain TCP (tcpsim) sender pushing 1 MB,

   both over the same kind of lossy simulated path. Each host exposes its
   transport state through the Table 1 field-id space, so the monitoring
   pluglets read cwnd/RTT/packet counters without knowing which transport
   they run on, and AIMD replaces each host's congestion controller
   (Cubic on TCP, NewReno-style on QUIC) through get/set on f_cwnd. *)

module Topology = Netsim.Topology
module Sim = Netsim.Sim
module Net = Netsim.Net

let size = 1_000_000
let plugins = [ Plugins.Monitoring.plugin; Plugins.Extras.Aimd.plugin ]

let print_report tag r =
  Printf.printf
    "%s monitoring PI export:\n\
    \  packets sent/received: %Ld/%Ld\n\
    \  packets lost:          %Ld\n\
    \  retransmissions:       %Ld\n\
    \  avg RTT:               %.1f ms (from %Ld samples)\n\
    \  handshake time:        %.1f ms\n"
    tag r.Plugins.Monitoring.pkts_sent r.Plugins.Monitoring.pkts_received
    r.Plugins.Monitoring.pkts_lost r.Plugins.Monitoring.pkts_retransmitted
    (Int64.to_float r.Plugins.Monitoring.rtt_avg_ns /. 1e6)
    r.Plugins.Monitoring.rtt_samples
    (Int64.to_float r.Plugins.Monitoring.handshake_time_ns /. 1e6)

let path = { Topology.d_ms = 15.; bw_mbps = 20.; loss = 0.01 }

(* ------------------------- host 1: PQUIC ------------------------------- *)

let run_quic () =
  let topo = Topology.single_path ~seed:7L path in
  let sim = topo.Topology.sim and net = topo.Topology.net in
  let server =
    Pquic.Endpoint.create ~sim ~net ~addr:topo.Topology.server_addr ~seed:1L ()
  in
  let client =
    Pquic.Endpoint.create ~sim ~net
      ~addr:(List.hd topo.Topology.client_addrs)
      ~seed:2L ()
  in
  List.iter
    (fun p ->
      Pquic.Endpoint.add_plugin server p;
      Pquic.Endpoint.add_plugin client p)
    plugins;
  Pquic.Endpoint.listen server;
  Pquic.Endpoint.listen client;
  server.Pquic.Endpoint.on_connection <-
    (fun c ->
      c.Pquic.Connection.on_stream_data <-
        (fun id _ ~fin ->
          if fin then
            Pquic.Connection.write_stream c ~id ~fin:true
              (String.make size 'x')));
  let conn =
    Pquic.Endpoint.connect client ~remote_addr:topo.Topology.server_addr
      ~plugins_to_inject:
        [ Plugins.Monitoring.name; Plugins.Extras.Aimd.name ]
  in
  conn.Pquic.Connection.on_established <-
    (fun () ->
      Printf.printf "PQUIC host: established, plugins [%s]\n"
        (String.concat "; " (Pquic.Connection.plugin_names conn));
      Pquic.Connection.write_stream conn ~id:0 ~fin:true "GET /1MB");
  let received = ref 0 in
  conn.Pquic.Connection.on_stream_data <-
    (fun _ data ~fin ->
      received := !received + String.length data;
      if fin then begin
        Printf.printf "PQUIC host: %d bytes downloaded at t=%.3fs\n" !received
          (Sim.to_sec (Sim.now sim));
        Pquic.Connection.close conn ~reason:"done"
      end);
  conn.Pquic.Connection.on_message <-
    (fun msg ->
      Option.iter (print_report "PQUIC") (Plugins.Monitoring.decode_report msg));
  ignore (Sim.run ~until:(Sim.of_sec 120.) sim)

(* ------------------------- host 2: tcpsim ------------------------------ *)

let run_tcp () =
  let topo = Topology.single_path ~seed:7L path in
  let sim = topo.Topology.sim and net = topo.Topology.net in
  let client_addr = List.hd topo.Topology.client_addrs in
  let server_addr = topo.Topology.server_addr in
  let send ~src ~dst pkt =
    Net.send net
      { Net.src; dst; size = String.length pkt; payload = Net.Raw pkt }
  in
  let receiver =
    Tcpsim.Tcp.create_receiver ~sim
      ~transport:(send ~src:client_addr ~dst:server_addr)
      ~on_complete:(fun () -> ())
      ()
  in
  let sender =
    Tcpsim.Tcp.create_sender ~sim ~mss:1252
      ~transport:(send ~src:server_addr ~dst:client_addr)
      ~total:size
      ~on_done:(fun () -> ())
      ()
  in
  Net.attach net client_addr (fun dg ->
      match dg.Net.payload with
      | Net.Raw pkt -> Tcpsim.Tcp.receiver_receive receiver pkt
      | _ -> ());
  Net.attach net server_addr (fun dg ->
      match dg.Net.payload with
      | Net.Raw pkt -> Tcpsim.Tcp.sender_receive sender pkt
      | _ -> ());
  Tcpsim.Tcp.set_on_message sender (fun msg ->
      Option.iter (print_report "TCP") (Plugins.Monitoring.decode_report msg));
  List.iter
    (fun p ->
      match Tcpsim.Tcp.inject_plugin sender p with
      | Ok () -> ()
      | Error e ->
        Printf.printf "TCP host: injection of %s failed: %s\n"
          p.Pluginop.Plugin.name e)
    plugins;
  Printf.printf "TCP host: plugins [%s]\n"
    (String.concat "; " (Tcpsim.Tcp.plugin_names sender));
  Tcpsim.Tcp.start_sender sender;
  ignore (Sim.run ~until:(Sim.of_sec 120.) sim);
  Printf.printf "TCP host: %d bytes delivered at t=%.3fs\n"
    (Tcpsim.Tcp.received_bytes receiver)
    (Sim.to_sec (Sim.now sim))

let () =
  Printf.printf "== same plugin bytecode, two transports ==\n";
  run_quic ();
  print_newline ();
  run_tcp ()
