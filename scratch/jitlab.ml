(* Throwaway perf lab for the closure JIT: differential smoke + interleaved
   timing of the two ISSUE-target programs. Not part of the PR. *)

let pre_rtt_program =
  let open Plc.Ast in
  let f =
    {
      name = "bench_rtt";
      params = [];
      body =
        [
          Let ("srtt", Const 100_000_000L);
          Let ("rttvar", Const 50_000_000L);
          For
            ( "k",
              i 1,
              i 65,
              [
                Let ("sample", v "k" *: i 1_000_000);
                Let ("diff", v "srtt" -: v "sample");
                If
                  ( Bin (Slt, v "diff", i 0),
                    [ Assign ("diff", i 0 -: v "diff") ],
                    [] );
                Assign ("rttvar", (v "rttvar" *: i 3 /: i 4) +: (v "diff" /: i 4));
                Assign ("srtt", (v "srtt" *: i 7 /: i 8) +: (v "sample" /: i 8));
              ] );
          Return (v "srtt" +: v "rttvar");
        ];
    }
  in
  Plc.Compile.compile ~helpers:Pquic.Api.helper_names f

let bytecode_direct =
  let open Plc.Ast in
  let f =
    {
      name = "bench_direct";
      params = [ "base" ];
      body =
        [
          Let ("acc", i 0);
          For
            ( "k",
              i 0,
              i 64,
              [
                Assign
                  ( "acc",
                    v "acc"
                    +: Load (Ebpf.Insn.W64, v "base")
                    +: Load (Ebpf.Insn.W64, v "base" +: i 8) );
              ] );
          Return (v "acc");
        ];
    }
  in
  Plc.Compile.compile ~helpers:Pquic.Api.helper_names f

let interleaved_pair ?(rounds = 24) ~iters fast slow =
  let bf = ref infinity and bs = ref infinity in
  for _ = 1 to rounds do
    let c0 = Sys.time () in
    for _ = 1 to iters do
      ignore (fast ())
    done;
    let c1 = Sys.time () in
    for _ = 1 to iters do
      ignore (slow ())
    done;
    let c2 = Sys.time () in
    let f = (c1 -. c0) /. float iters and s = (c2 -. c1) /. float iters in
    if f < !bf then bf := f;
    if s < !bs then bs := s
  done;
  (!bf *. 1e9, !bs *. 1e9)

let check name a b = if a <> b then Printf.printf "MISMATCH %s: %Ld <> %Ld\n%!" name a b

let alloc_per name f =
  let w0 = Gc.minor_words () in
  for _ = 1 to 100 do ignore (f ()) done;
  let w1 = Gc.minor_words () in
  Printf.printf "%s: %.1f words/run\n%!" name ((w1 -. w0) /. 100.)

let () =
  (* pre_rtt *)
  let prog, stack = pre_rtt_program in
  let vm = Ebpf.Vm.create ~stack_size:stack () in
  let linked = Ebpf.Vm.link prog in
  let jp = Ebpf.Vm.jit ~stack_size:stack prog in
  Printf.printf "pre_rtt: compiled=%b stack=%d n=%d\n%!"
    (Ebpf.Vm.jit_compiled jp) stack (Array.length prog);
  let rl = Ebpf.Vm.run_linked vm linked in
  let rj = Ebpf.Vm.run_jit vm jp in
  check "pre_rtt result" rl rj;
  let e0 = Ebpf.Vm.executed vm in
  ignore (Ebpf.Vm.run_linked vm linked);
  let e1 = Ebpf.Vm.executed vm in
  ignore (Ebpf.Vm.run_jit vm jp);
  let e2 = Ebpf.Vm.executed vm in
  Printf.printf "pre_rtt insns: linked=%d jit=%d\n%!" (e1 - e0) (e2 - e1);
  if e1 - e0 <> e2 - e1 then Printf.printf "ACCOUNTING MISMATCH\n%!";
  let fast () = Ebpf.Vm.run_jit vm jp in
  let slow () = Ebpf.Vm.run_linked vm linked in
  alloc_per "pre_rtt jit alloc" fast;
  alloc_per "pre_rtt linked alloc" slow;
  let f, s = interleaved_pair ~iters:2000 fast slow in
  Printf.printf "pre_rtt: jit %.1f ns, linked %.1f ns, speedup %.2fx\n%!" f s (s /. f);

  (* bytecode_direct *)
  let prog, stack = bytecode_direct in
  let vm = Ebpf.Vm.create ~stack_size:stack () in
  let region =
    Ebpf.Vm.map_region vm ~name:"state" ~perm:Ebpf.Vm.Rw (Bytes.make 16 '\x07')
  in
  let base = region.Ebpf.Vm.base in
  let linked = Ebpf.Vm.link prog in
  let jp = Ebpf.Vm.jit ~stack_size:stack prog in
  Printf.printf "direct: compiled=%b stack=%d n=%d\n%!"
    (Ebpf.Vm.jit_compiled jp) stack (Array.length prog);
  let rl = Ebpf.Vm.run_linked vm ~args:[| base |] linked in
  let rj = Ebpf.Vm.run_jit vm ~args:[| base |] jp in
  check "direct result" rl rj;
  let e0 = Ebpf.Vm.executed vm in
  ignore (Ebpf.Vm.run_linked vm ~args:[| base |] linked);
  let e1 = Ebpf.Vm.executed vm in
  ignore (Ebpf.Vm.run_jit vm ~args:[| base |] jp);
  let e2 = Ebpf.Vm.executed vm in
  Printf.printf "direct insns: linked=%d jit=%d\n%!" (e1 - e0) (e2 - e1);
  if e1 - e0 <> e2 - e1 then Printf.printf "ACCOUNTING MISMATCH\n%!";
  let fast () = Ebpf.Vm.run_jit vm ~args:[| base |] jp in
  let slow () = Ebpf.Vm.run_linked vm ~args:[| base |] linked in
  alloc_per "direct jit alloc" fast;
  alloc_per "direct linked alloc" slow;
  let f, s = interleaved_pair ~iters:6000 fast slow in
  Printf.printf "direct: jit %.1f ns, linked %.1f ns, speedup %.2fx\n%!" f s (s /. f)

let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "dump" then begin
    let prog, _ = pre_rtt_program in
    Format.printf "=== pre_rtt ===@.%a@." Ebpf.Insn.pp_program prog;
    let prog, _ = bytecode_direct in
    Format.printf "=== direct ===@.%a@." Ebpf.Insn.pp_program prog
  end
