(* breakdown: raw receive vs server-routed dispatch on idle conns *)
module Sim = Netsim.Sim
module Net = Netsim.Net
module P = Quic.Packet
module F = Quic.Frame
module TP = Quic.Transport_params
let scid_of i = Int64.add 0x1_0000_0000L (Int64.of_int i)
let dcid_of i = Int64.add 0x2_0000_0000L (Int64.of_int i)
let client_hello =
  let blob = TP.encode TP.default in
  let buf = Buffer.create (String.length blob + 2) in
  Buffer.add_uint16_be buf (String.length blob);
  Buffer.add_string buf blob;
  F.to_string (F.Crypto { offset = 0L; data = Buffer.contents buf })
let forge_initial i =
  P.protect ~key:Pquic.Connection.initial_key
    { P.header = { P.ptype = P.Initial; spin = false; dcid = dcid_of i; scid = scid_of i; pn = 0L };
      payload = client_hello }
let forge_short i ~pn payload =
  P.protect ~key:(P.derive_key ~client_cid:(scid_of i) ~server_cid:(dcid_of i))
    { P.header = { P.ptype = P.One_rtt; spin = false; dcid = dcid_of i; scid = 0L; pn }; payload }
let ack_payload = F.to_string (F.Ack { F.largest = 7L; delay_us = 0L; ranges = [ (0L, 7L) ] })
let dg wire = { Net.src = 2; dst = 1; size = String.length wire; payload = Pquic.Connection.Quic_packet wire }
let () =
  let sim = Sim.create () in
  let net = Net.create sim in
  Net.add_fallback_route net ~src:1 [];
  Net.attach net 2 (fun _ -> ());
  let cfg = { Pquic.Connection.default_config with Pquic.Connection.lean = true } in
  let srv = Pquic.Server.create ~cfg ~sim ~net ~addr:1 ~seed:7L () in
  Pquic.Server.listen srv;
  let n = 1000 in
  for i = 0 to n - 1 do Pquic.Server.handle_datagram srv (dg (forge_initial i)) done;
  ignore (Sim.run ~until:(Sim.now sim) sim);
  for i = 0 to n - 1 do Pquic.Server.handle_datagram srv (dg (forge_short i ~pn:1L ack_payload)) done;
  ignore (Sim.run ~until:(Sim.now sim) sim);
  Printf.printf "accepted=%d\n" (Pquic.Server.accepted srv);
  let rounds = 100 in
  let pkts = Array.init (n*rounds) (fun j ->
      forge_short (j mod n) ~pn:(Int64.of_int (2 + j / n)) ack_payload) in
  (* direct receive on the connection, no routing/sharding *)
  let conns = Array.init n (fun i ->
      match Engine.Conn_table.find srv.Pquic.Server.ep.Pquic.Endpoint.conns
              (Engine.Conn_table.key_of_cid (dcid_of i)) with
      | Some c -> c | None -> assert false) in
  let half = n * rounds / 2 in
  Gc.minor ();
  let t0 = Sys.time () in
  for j = 0 to half - 1 do
    Pquic.Connection.receive_datagram conns.(j mod n) (dg pkts.(j));
    if j mod 10_000 = 9_999 then ignore (Sim.run ~until:(Sim.now sim) sim)
  done;
  ignore (Sim.run ~until:(Sim.now sim) sim);
  let direct = Sys.time () -. t0 in
  let t1 = Sys.time () in
  for j = half to (n*rounds) - 1 do
    Pquic.Server.handle_datagram srv (dg pkts.(j))
  done;
  ignore (Sim.run ~until:(Sim.now sim) sim);
  let routed = Sys.time () -. t1 in
  Printf.printf "direct receive: %.0f ns/pkt\nserver routed:  %.0f ns/pkt\n"
    (direct *. 1e9 /. float_of_int half) (routed *. 1e9 /. float_of_int half)
