(* Scaling probe for the server-engine accept path: times each phase at
   doubling populations to spot super-linear growth. *)

module Net = Netsim.Net
module Sim = Netsim.Sim
module P = Quic.Packet
module F = Quic.Frame
module TP = Quic.Transport_params
module Server = Pquic.Server

let scid_of i = Int64.add 0x1_0000_0000L (Int64.of_int i)
let dcid_of i = Int64.add 0x2_0000_0000L (Int64.of_int i)

let client_hello =
  lazy
    (let tp = TP.encode TP.default in
     let len = String.length tp in
     let b = Buffer.create (len + 2) in
     Buffer.add_uint16_be b len;
     Buffer.add_string b tp;
     F.to_string (F.Crypto { offset = 0L; data = Buffer.contents b }))

let forge_initial i =
  P.protect ~key:Pquic.Connection.initial_key
    {
      P.header =
        {
          P.ptype = P.Initial;
          spin = false;
          dcid = dcid_of i;
          scid = scid_of i;
          pn = 0L;
        };
      payload = Lazy.force client_hello;
    }

let dg wire =
  {
    Net.src = 2;
    dst = 1;
    size = String.length wire;
    payload = Pquic.Connection.Quic_packet wire;
  }

let cell n =
  let sim = Sim.create () in
  let net = Net.create sim in
  Net.add_fallback_route net ~src:1 [];
  let sink = ref 0 in
  Net.attach net 2 (fun _ -> incr sink);
  let cfg =
    { Pquic.Connection.default_config with Pquic.Connection.lean = true }
  in
  let srv = Server.create ~cfg ~sim ~net ~addr:1 ~seed:7L () in
  Server.listen srv;
  let initials = Array.init n forge_initial in
  let t0 = Sys.time () in
  let feed_cpu = ref 0.0 and run_cpu = ref 0.0 in
  let k = ref 0 in
  let b0 = ref (Sys.time ()) in
  while !k < n do
    let stop = min n (!k + 1000) in
    let f0 = Sys.time () in
    while !k < stop do
      Server.handle_datagram srv (dg initials.(!k));
      incr k
    done;
    let f1 = Sys.time () in
    ignore (Sim.run ~until:(Int64.add (Sim.now sim) (Sim.of_ms 1.)) sim);
    let f2 = Sys.time () in
    feed_cpu := !feed_cpu +. (f1 -. f0);
    run_cpu := !run_cpu +. (f2 -. f1);
    if !k mod 5000 = 0 then begin
      Printf.printf "    [%6d] block %5.2fs\n%!" !k (Sys.time () -. !b0);
      b0 := Sys.time ()
    end
  done;
  let total = Sys.time () -. t0 in
  let st = Gc.quick_stat () in
  let w = Engine.Timer_wheel.counters srv.Server.wheel in
  Printf.printf
    "%7d conns: total %6.2fs feed %6.2fs simrun %6.2fs  (%5.0f/s)  majors %d minors %d  arms %d fires %d casc %d drv %d  sink %d\n%!"
    n total !feed_cpu !run_cpu
    (float_of_int n /. total)
    st.Gc.major_collections st.Gc.minor_collections w.Engine.Timer_wheel.arms
    w.Engine.Timer_wheel.fires w.Engine.Timer_wheel.cascades
    w.Engine.Timer_wheel.drivers !sink

let () =
  List.iter cell [ 50_000 ]
