#!/usr/bin/env python3
# Splice vm.ml: head_inline (sym-based) + commit absorption + dispatch,
# mk_symbolic_body, try_mega rewrite, compile_block.
import io

PATH = "/root/repo/lib/ebpf/vm.ml"
src = io.open(PATH, encoding="utf-8").read().splitlines(keepends=True)

def find(marker):
    # Match whole lines, or the first line of an already-spliced blob.
    for i, l in enumerate(src):
        if l.split("\n")[0] == marker:
            return i
    raise SystemExit("marker not found: " + marker)

S2 = """    (* A loop-head block with no statements and a coded conditional can
       be inlined into its predecessors' terminators: one closure tests
       the loop condition and dispatches, saving a cell hop per
       iteration. *)
    let head_inline ti =
      if ti >= n then None
      else
        match sym.(ti) with
        | Some (_, 0, Jcnd (c, lhs, rhs, hti, hfi), hcarr, 0) -> (
          match (jx_opd lhs, jx_opd rhs) with
          | Some kl, Some kr ->
            Some (blen_of.(ti), 4 * ti, hcarr, c, kl, kr, hti, hfi)
          | _ -> None)
        | _ -> None
    in
    let regs_of carr = Array.to_list (Array.map fst carr) in
    (* Commit deferral: registers written by a block normally land in
       the register file at every exit. If the successor (a) never
       reads any of them and (b) re-commits a superset of them on every
       one of its own non-exit paths out, the predecessor's commits can
       be skipped entirely on the taken edge — they run only on that
       edge's fuel-fail handoff. Slots and scratch temporaries are kept
       exact at every boundary, so the deferred recipes stay evaluable
       right up to the handoff. *)
    let block_absorbs start pending =
      match sym.(start) with
      | None -> false
      | Some (stms, nstm, term, carr, _) ->
        let tree_ok t = not (List.exists (fun r -> jx_refs_reg r t) pending) in
        let stmt_ok = function
          | Jnop -> true
          | Jst (_, t) | Jtm (_, t) | Jrg (_, t) -> tree_ok t
          | Jld (_, b, _, _) -> tree_ok b
          | Jsd (b, _, v, _) -> tree_ok b && tree_ok v
        in
        let opd_ok = function Kr r -> not (List.mem r pending) | _ -> true in
        let covered () =
          List.for_all
            (fun r -> Array.exists (fun (r2, _) -> r2 = r) carr)
            pending
        in
        let ok = ref true in
        for i = 0 to nstm - 1 do
          if not (stmt_ok stms.(i)) then ok := false
        done;
        !ok
        && (match term with
           | Jexit (t, _) -> tree_ok t
           | Jdeo _ -> false
           | Jjmp _ -> covered ()
           | Jcnd (_, lhs, rhs, _, _) ->
             (match (jx_opd lhs, jx_opd rhs) with
             | Some kl, Some kr -> opd_ok kl && opd_ok kr
             | _ -> false)
             && covered ())
    in
    (* Turn a terminator arm into a dispatch descriptor, deciding
       per-edge whether the pending commits defer. *)
    let build_disp pending parr arm =
      match arm with
      | Aplain tb ->
        let ts = leader_of_blk.(tb) in
        if ts < n && block_absorbs ts pending then
          Dbody (tb, blen_of.(ts), parr, 4 * ts)
        else Dcell (tb, parr)
      | Agated (gf, gc, gt, gp) ->
        let ts = leader_of_blk.(gt) in
        let allp = List.sort_uniq compare (pending @ regs_of gc) in
        if ts < n && block_absorbs ts allp then
          Dbody (gt, gf + blen_of.(ts), parr, gp)
        else Dgcell (gf, gt, parr, gc, gp)
    in
    let jdispatch env d =
      match d with
      | Dbody (bidx, need, fc, fpc) ->
        let f = env.jfuel in
        if f >= need then begin
          env.jfuel <- f - need;
          (Array.unsafe_get bodies bidx) env
        end
        else begin
          jrun_commits env fc;
          exec_linked env.jvm linked env.jk fpc f
        end
      | Dcell (cidx, pend) ->
        jrun_commits env pend;
        (Array.unsafe_get cells cidx) env
      | Dgcell (gf, gt, pend, gc, gp) ->
        jrun_commits env pend;
        let f = env.jfuel in
        if f >= gf then begin
          env.jfuel <- f - gf;
          jrun_commits env gc;
          (Array.unsafe_get cells gt) env
        end
        else exec_linked env.jvm linked env.jk gp f
    in
    (* own + inlined-head commits, later (head) entries winning. *)
    let merge_commits a b =
      let keep =
        List.filter
          (fun ((r, _) : int * jcv) ->
            not (Array.exists (fun (r2, _) -> r2 = r) b))
          (Array.to_list a)
      in
      Array.append (Array.of_list keep) b
    in
"""

S3 = """    (* Compile a symbolized block to a single closure: run the micro-op
       program, then the terminator inline (inlined loop-head gate,
       operand-specialised compare, precomputed dispatch). *)
    let mk_symbolic_body (stms, nstm, term, carr, _) =
      let nu, u, p, xs = emit_uops stms nstm in
      let pregs = regs_of carr in
      match term with
      | Jexit (t, ci) -> (
        match t with
        | Jslot o ->
          fun env ->
            jrun_uops env nu u p xs lim8;
            env.jvm.executed <- env.jk - env.jfuel - ci;
            bytes_get64 env.jstk o
        | Jcst v ->
          fun env ->
            jrun_uops env nu u p xs lim8;
            env.jvm.executed <- env.jk - env.jfuel - ci;
            v
        | _ ->
          let ev = mk_ev t in
          fun env ->
            jrun_uops env nu u p xs lim8;
            env.jvm.executed <- env.jk - env.jfuel - ci;
            ev env)
      | Jdeo (i, ci) ->
        fun env ->
          jrun_uops env nu u p xs lim8;
          exec_linked env.jvm linked env.jk (4 * i) (env.jfuel + ci)
      | Jcnd (c, lhs, rhs, ti, fi) -> (
        let kl = match jx_opd lhs with Some k -> k | None -> assert false in
        let kr = match jx_opd rhs with Some k -> k | None -> assert false in
        let td = build_disp pregs carr (arm_of ti) in
        let fd = build_disp pregs carr (arm_of fi) in
        match (kl, kr) with
        | Ks la, Ks rb ->
          fun env ->
            jrun_uops env nu u p xs lim8;
            let s = env.jstk in
            jdispatch env
              (if jx_cond c (bytes_get64 s la) (bytes_get64 s rb) then td
               else fd)
        | Ks la, Kc vb ->
          fun env ->
            jrun_uops env nu u p xs lim8;
            jdispatch env
              (if jx_cond c (bytes_get64 env.jstk la) vb then td else fd)
        | _ ->
          fun env ->
            jrun_uops env nu u p xs lim8;
            let a = jopd_get env kl and b = jopd_get env kr in
            jdispatch env (if jx_cond c a b then td else fd))
      | Jjmp t -> (
        match head_inline t with
        | Some (hfuel, hpc, hcarr, hc, hl, hr, hti, hfi) -> (
          let ownh = merge_commits carr hcarr in
          let pall = regs_of ownh in
          let td = build_disp pall ownh (arm_of hti) in
          let fd = build_disp pall ownh (arm_of hfi) in
          match (hl, hr) with
          | Ks la, Ks rb ->
            fun env ->
              jrun_uops env nu u p xs lim8;
              let f = env.jfuel in
              if f >= hfuel then begin
                env.jfuel <- f - hfuel;
                let s = env.jstk in
                jdispatch env
                  (if jx_cond hc (bytes_get64 s la) (bytes_get64 s rb) then
                     td
                   else fd)
              end
              else begin
                jrun_commits env carr;
                exec_linked env.jvm linked env.jk hpc f
              end
          | Ks la, Kc vb ->
            fun env ->
              jrun_uops env nu u p xs lim8;
              let f = env.jfuel in
              if f >= hfuel then begin
                env.jfuel <- f - hfuel;
                jdispatch env
                  (if jx_cond hc (bytes_get64 env.jstk la) vb then td else fd)
              end
              else begin
                jrun_commits env carr;
                exec_linked env.jvm linked env.jk hpc f
              end
          | _ ->
            fun env ->
              jrun_uops env nu u p xs lim8;
              let f = env.jfuel in
              if f >= hfuel then begin
                env.jfuel <- f - hfuel;
                let a = jopd_get env hl and b = jopd_get env hr in
                jdispatch env (if jx_cond hc a b then td else fd)
              end
              else begin
                jrun_commits env carr;
                exec_linked env.jvm linked env.jk hpc f
              end)
        | None ->
          let d = build_disp pregs carr (arm_of t) in
          if nu = 0 then fun env -> jdispatch env d
          else
            fun env ->
              jrun_uops env nu u p xs lim8;
              jdispatch env d)
    in
"""

S4 = """    (* Whole-loop mega template: the tight pointer-chasing accumulate
       loop ("acc += m64[p]; acc += m64[p+8]" with an inlined counter
       head) gets a single native loop. The per-iteration bounds checks
       collapse to one non-raising region guard hoisted out of the
       loop, together with the base pointer, the loop bound and the
       loads (nothing in the loop can remap regions or write memory);
       register commits are deferred to the loop's exits. Any guard
       miss falls back to the block's generic micro-op body with the
       exact monitored semantics. *)
    let try_mega start ((stms, nstm, term, carr, _) as info) blen selfpc =
      let nn = ref [] in
      for i = nstm - 1 downto 0 do
        match stms.(i) with Jnop -> () | st -> nn := st :: !nn
      done;
      match (!nn, term) with
      | ( [
            Jst (d1, Jslot acc0);
            Jld (t0, Jslot p0, o1, _);
            Jst (d1b, Jbin (0, Jslot acc1, Jtmp t0b));
            Jst (d2, Jslot p1);
            Jld (t1, Jslot p2, o2, _);
            Jst (accw, Jbin (0, Jbin (0, Jslot acc2, Jtmp t0c), Jtmp t1b));
            Jst (dk, Jbin (0, Jslot dkb, Jcst kinc));
          ],
          Jjmp jt )
        when d1b = d1 && accw = acc0 && acc0 = acc1 && acc1 = acc2 && t0b = t0
             && t0c = t0 && t1b = t1 && p0 = p1 && p1 = p2 && dkb = dk
             && p0 <> d1 && p0 <> d2 && p0 <> accw && p0 <> dk
             && accw <> dk && accw <> d1 && accw <> d2
             && d1 <> d2 && d1 <> dk && d2 <> dk
             && Int64.compare o1 0L >= 0 && Int64.compare o2 0L >= 0 -> (
        match head_inline jt with
        | Some (hfuel, hpc, hcarr, hc, Ks hls, hr, hti, hfi)
          when hls = dk && (hti = start || hfi = start) -> (
          let bnd =
            match hr with
            | Ks o when o <> d1 && o <> d2 && o <> accw && o <> dk && o <> p0
              ->
              Some hr
            | Kc _ -> Some hr
            | _ -> None
          in
          match bnd with
          | None -> None
          | Some bnd ->
            let self_taken = hti = start in
            let other_ti = if self_taken then hfi else hti in
            let ownh = merge_commits carr hcarr in
            let pall = regs_of ownh in
            let od = build_disp pall ownh (arm_of other_ti) in
            let hi =
              Int64.add (if Int64.compare o1 o2 < 0 then o2 else o1) 7L
            in
            let hi_i = Int64.to_int hi in
            let oi1 = Int64.to_int o1 and oi2 = Int64.to_int o2 in
            let iterf = hfuel + blen in
            let slow = mk_symbolic_body info in
            let body env =
              let s = env.jstk in
              let bp = bytes_get64 s p0 in
              let wlo = Int64.to_int (Int64.shift_right_logical bp 32) in
              let whi =
                Int64.to_int (Int64.shift_right_logical (Int64.add bp hi) 32)
              in
              let tbl = env.jvm.region_tbl in
              if wlo = whi && wlo < Array.length tbl then begin
                match Array.unsafe_get tbl wlo with
                | Some r ->
                  let off = Int64.to_int (Int64.logand bp 0xffff_ffffL) in
                  if off + hi_i < Bytes.length r.mem then begin
                    let m = r.mem in
                    let v0 = bytes_get64 m (off + oi1) in
                    let v1 = bytes_get64 m (off + oi2) in
                    let g = env.jseg in
                    bytes_set64 g t0 v0;
                    bytes_set64 g t1 v1;
                    bytes_set64 s d2 bp;
                    let bound =
                      match bnd with
                      | Ks o -> bytes_get64 s o
                      | Kc v -> v
                      | _ -> 0L
                    in
                    let rec go () =
                      let acc0v = bytes_get64 s accw in
                      let a1v = Int64.add acc0v v0 in
                      let acc = Int64.add a1v v1 in
                      bytes_set64 s d1 a1v;
                      bytes_set64 s accw acc;
                      let k = Int64.add (bytes_get64 s dk) kinc in
                      bytes_set64 s dk k;
                      let f = env.jfuel in
                      if f >= iterf && jx_cond hc k bound = self_taken
                      then begin
                        env.jfuel <- f - iterf;
                        go ()
                      end
                      else cold f k
                    and cold f k =
                      if f >= hfuel then begin
                        env.jfuel <- f - hfuel;
                        if jx_cond hc k bound = self_taken then begin
                          jrun_commits env ownh;
                          exec_linked env.jvm linked env.jk selfpc env.jfuel
                        end
                        else jdispatch env od
                      end
                      else begin
                        jrun_commits env carr;
                        exec_linked env.jvm linked env.jk hpc f
                      end
                    in
                    go ()
                  end
                  else slow env
                | None -> slow env
              end
              else slow env
            in
            Some body)
        | _ -> None)
      | _ -> None
    in
"""

S5 = """    let compile_block start stop =
      let blen = stop - start in
      let pc4 = 4 * start in
      let body =
        match sym.(start) with
        | None ->
          let rec build i next =
            if i < start then next else build (i - 1) (ins i (stop - i) next)
          in
          build (stop - 1) (goto_cell blk_id.(stop))
        | Some info -> (
          match try_mega start info blen pc4 with
          | Some b -> b
          | None -> mk_symbolic_body info)
      in
      bodies.(blk_id.(start)) <- body;
      cells.(blk_id.(start)) <-
        (fun env ->
          let f = env.jfuel in
          if f >= blen then begin
            env.jfuel <- f - blen;
            body env
          end
          else exec_linked env.jvm linked env.jk pc4 f)
    in
"""

# Work back-to-front so earlier indices stay valid.
a5 = find("    let compile_block start stop =")
b5 = find("    let start = ref 0 in")
src = src[:a5] + [S5] + src[b5:]

a4 = find("    (* Whole-loop mega template: the tight pointer-chasing accumulate")
b4 = find("    let compile_block start stop =")
src = src[:a4] + [S4] + src[b4:]

a3 = find("    (* Shared terminator template: optional fused last statement, own")
b3 = find("    (* Whole-loop mega template: the tight pointer-chasing accumulate")
src = src[:a3] + [S3] + src[b3:]

a2 = find("    (* A loop-head block with no statements and a coded conditional can")
b2 = find("    (* Compile a symbolized block to a single closure: run the micro-op")
src = src[:a2] + [S2] + src[b2:]

io.open(PATH, "w", encoding="utf-8").write("".join(src))
print("spliced S2-S5 ok")
