#!/usr/bin/env python3
# Splice vm.ml: replace the micro-op interpreter with specialized
# stable-target closure chains (unit-typed), re-add terminator pre-fold.
import io

PATH = "/root/repo/lib/ebpf/vm.ml"
src = io.open(PATH, encoding="utf-8").read().splitlines(keepends=True)

def find(marker):
    for i, l in enumerate(src):
        if l.split("\n")[0] == marker:
            return i
    raise SystemExit("marker not found: " + marker)

# ---- module level: jrun_uops -> jpre/jrun_pre ----
M = """(* Optional last statement folded into a terminator closure (loop
   counter increment / compared-value copy), saving one link call. *)
type jpre = Pnone | Pincr of int * int64 | Pcopy of int * int

let[@inline always] jrun_pre env = function
  | Pnone -> ()
  | Pincr (d, c) ->
    let s = env.jstk in
    bytes_set64 s d (Int64.add (bytes_get64 s d) c)
  | Pcopy (d, a) ->
    let s = env.jstk in
    bytes_set64 s d (bytes_get64 s a)
"""

# ---- chain compiler (replaces emit_uops) ----
C = """    (* One closure per statement, specialised on the common shapes so a
       whole PLC statement (EWMA update, mul-store-sub, accumulate)
       costs one call with a stable target — every link's indirect call
       always lands on the same successor, so nothing mispredicts.
       Links are unit-typed and compose into a chain run once per block
       entry. *)
    let mk_stmt_link st (rest : jit_env -> unit) : jit_env -> unit =
      match st with
      | Jnop -> rest
      | Jst (d, t) -> (
        match t with
        | Jcst v ->
          fun env ->
            bytes_set64 env.jstk d v;
            rest env
        | Jslot a ->
          fun env ->
            let s = env.jstk in
            bytes_set64 s d (bytes_get64 s a);
            rest env
        | Jtmp a ->
          fun env ->
            bytes_set64 env.jstk d (bytes_get64 env.jseg a);
            rest env
        | Jreg r ->
          fun env ->
            bytes_set64 env.jstk d (rget env.jregb r);
            rest env
        | Jbin (0, Jslot a, Jcst c) | Jbin (0, Jcst c, Jslot a) ->
          fun env ->
            let s = env.jstk in
            bytes_set64 s d (Int64.add (bytes_get64 s a) c);
            rest env
        | Jbin (1, Jslot a, Jcst c) ->
          fun env ->
            let s = env.jstk in
            bytes_set64 s d (Int64.sub (bytes_get64 s a) c);
            rest env
        | Jbin (1, Jcst c, Jslot a) ->
          fun env ->
            let s = env.jstk in
            bytes_set64 s d (Int64.sub c (bytes_get64 s a));
            rest env
        | Jneg (Jslot a) ->
          fun env ->
            let s = env.jstk in
            bytes_set64 s d (Int64.neg (bytes_get64 s a));
            rest env
        | Jbin (2, Jslot a, Jcst c) | Jbin (2, Jcst c, Jslot a) ->
          fun env ->
            let s = env.jstk in
            bytes_set64 s d (Int64.mul (bytes_get64 s a) c);
            rest env
        | Jbin (6, Jslot a, Jcst c) ->
          fun env ->
            let s = env.jstk in
            bytes_set64 s d (Int64.logand (bytes_get64 s a) c);
            rest env
        | Jbin (9, Jslot a, Jcst k) ->
          let sh = Int64.to_int (Int64.logand k 63L) in
          fun env ->
            let s = env.jstk in
            bytes_set64 s d (Int64.shift_right_logical (bytes_get64 s a) sh);
            rest env
        | Jbin (8, Jslot a, Jcst k) ->
          let sh = Int64.to_int (Int64.logand k 63L) in
          fun env ->
            let s = env.jstk in
            bytes_set64 s d (Int64.shift_left (bytes_get64 s a) sh);
            rest env
        | Jbin (10, Jslot a, Jcst k) ->
          let sh = Int64.to_int (Int64.logand k 63L) in
          fun env ->
            let s = env.jstk in
            bytes_set64 s d (Int64.shift_right (bytes_get64 s a) sh);
            rest env
        | Jbin (0, Jslot a, Jslot b) ->
          fun env ->
            let s = env.jstk in
            bytes_set64 s d (Int64.add (bytes_get64 s a) (bytes_get64 s b));
            rest env
        | Jbin (1, Jslot a, Jslot b) ->
          fun env ->
            let s = env.jstk in
            bytes_set64 s d (Int64.sub (bytes_get64 s a) (bytes_get64 s b));
            rest env
        | Jbin (2, Jslot a, Jslot b) ->
          fun env ->
            let s = env.jstk in
            bytes_set64 s d (Int64.mul (bytes_get64 s a) (bytes_get64 s b));
            rest env
        | Jbin (0, Jslot a, Jtmp tb) | Jbin (0, Jtmp tb, Jslot a) ->
          fun env ->
            let s = env.jstk in
            bytes_set64 s d
              (Int64.add (bytes_get64 s a) (bytes_get64 env.jseg tb));
            rest env
        | Jbin (0, Jbin (0, Jslot a, Jtmp t1), Jtmp t2) ->
          fun env ->
            let s = env.jstk in
            let g = env.jseg in
            bytes_set64 s d
              (Int64.add
                 (Int64.add (bytes_get64 s a) (bytes_get64 g t1))
                 (bytes_get64 g t2));
            rest env
        | Jbin (9, Jbin (2, Jslot a, Jcst c), Jcst k) ->
          (* x*c >> k : the strength-reduced div-by-pow2 of a product *)
          let sh = Int64.to_int (Int64.logand k 63L) in
          fun env ->
            let s = env.jstk in
            bytes_set64 s d
              (Int64.shift_right_logical (Int64.mul (bytes_get64 s a) c) sh);
            rest env
        | Jbin
            ( 0,
              Jbin (9, Jbin (2, Jslot a, Jcst c1), Jcst k1),
              Jbin (9, Jslot b, Jcst k2) ) ->
          (* EWMA: (a*c1 >> k1) + (b >> k2) — the srtt/rttvar shape *)
          let s1 = Int64.to_int (Int64.logand k1 63L) in
          let s2 = Int64.to_int (Int64.logand k2 63L) in
          fun env ->
            let s = env.jstk in
            bytes_set64 s d
              (Int64.add
                 (Int64.shift_right_logical (Int64.mul (bytes_get64 s a) c1) s1)
                 (Int64.shift_right_logical (bytes_get64 s b) s2));
            rest env
        | _ ->
          let th = stmt_thunk st in
          fun env ->
            th env;
            rest env)
      | Jtm (d, Jslot a) ->
        fun env ->
          bytes_set64 env.jseg d (bytes_get64 env.jstk a);
          rest env
      | Jrg (r, Jcst v) ->
        fun env ->
          rset env.jregb r v;
          rest env
      | Jrg (r, Jslot a) ->
        fun env ->
          rset env.jregb r (bytes_get64 env.jstk a);
          rest env
      | Jld (d, Jslot p, off, ci) ->
        fun env ->
          let s = env.jstk in
          let addr = Int64.add (bytes_get64 s p) off in
          bytes_set64 env.jseg d
            (load64_m env.jvm s lim8 (env.jk - env.jfuel - ci) addr);
          rest env
      | Jld (d, Jcst b, off, ci) ->
        let addr = Int64.add b off in
        fun env ->
          bytes_set64 env.jseg d
            (load64_m env.jvm env.jstk lim8 (env.jk - env.jfuel - ci) addr);
          rest env
      | _ ->
        let th = stmt_thunk st in
        fun env ->
          th env;
          rest env
    in
    (* Adjacent-statement fusion: two stores whose shapes commonly occur
       back-to-back in compiled PLC code collapse into one closure. *)
    let mk_link2 s1 s2 =
      match (s1, s2) with
      | Jst (d1, (Jbin (2, Jslot a, Jcst c) as m)), Jst (d2, Jbin (1, Jslot b, m'))
        when m' == m ->
        (* d1 := a*c; d2 := b - (a*c) — compute the product once *)
        Some
          (fun (rest : jit_env -> unit) env ->
            let s = env.jstk in
            let p = Int64.mul (bytes_get64 s a) c in
            bytes_set64 s d1 p;
            bytes_set64 s d2 (Int64.sub (bytes_get64 s b) p);
            rest env)
      | ( Jst
            ( d1,
              Jbin
                ( 0,
                  Jbin (9, Jbin (2, Jslot a1, Jcst c1), Jcst k1),
                  Jbin (9, Jslot b1, Jcst k2) ) ),
          Jst (d2, Jbin (9, Jbin (2, Jslot a2, Jcst c2), Jcst k3)) ) ->
        let s1h = Int64.to_int (Int64.logand k1 63L) in
        let s2h = Int64.to_int (Int64.logand k2 63L) in
        let s3h = Int64.to_int (Int64.logand k3 63L) in
        Some
          (fun rest env ->
            let s = env.jstk in
            bytes_set64 s d1
              (Int64.add
                 (Int64.shift_right_logical (Int64.mul (bytes_get64 s a1) c1) s1h)
                 (Int64.shift_right_logical (bytes_get64 s b1) s2h));
            bytes_set64 s d2
              (Int64.shift_right_logical (Int64.mul (bytes_get64 s a2) c2) s3h);
            rest env)
      | ( Jst (d1, Jslot a1),
          Jst
            ( d2,
              Jbin
                ( 0,
                  Jbin (9, Jbin (2, Jslot a2, Jcst c2), Jcst k1),
                  Jbin (9, Jslot b2, Jcst k2) ) ) ) ->
        let s1h = Int64.to_int (Int64.logand k1 63L) in
        let s2h = Int64.to_int (Int64.logand k2 63L) in
        Some
          (fun rest env ->
            let s = env.jstk in
            bytes_set64 s d1 (bytes_get64 s a1);
            bytes_set64 s d2
              (Int64.add
                 (Int64.shift_right_logical (Int64.mul (bytes_get64 s a2) c2) s1h)
                 (Int64.shift_right_logical (bytes_get64 s b2) s2h));
            rest env)
      | Jst (d1, Jcst v1), Jst (d2, Jcst v2) ->
        Some
          (fun rest env ->
            let s = env.jstk in
            bytes_set64 s d1 v1;
            bytes_set64 s d2 v2;
            rest env)
      | Jst (d1, Jslot a1), Jst (d2, Jslot a2) ->
        Some
          (fun rest env ->
            let s = env.jstk in
            bytes_set64 s d1 (bytes_get64 s a1);
            bytes_set64 s d2 (bytes_get64 s a2);
            rest env)
      | _ -> None
    in
    let rec mk_chain stms pos bound : jit_env -> unit =
      if pos >= bound then fun _ -> ()
      else
        match stms.(pos) with
        | Jnop -> mk_chain stms (pos + 1) bound
        | st -> (
          let p2 = ref (pos + 1) in
          while
            !p2 < bound && (match stms.(!p2) with Jnop -> true | _ -> false)
          do
            incr p2
          done;
          match (if !p2 < bound then mk_link2 st stms.(!p2) else None) with
          | Some mk -> mk (mk_chain stms (!p2 + 1) bound)
          | None -> mk_stmt_link st (mk_chain stms (pos + 1) bound))
    in
"""

# ---- mk_symbolic_body (chain + pre-fold version) ----
B = """    (* Compile a symbolized block to a single closure: run the micro-op
       chain, then the terminator inline (folded trailing copy/incr,
       inlined loop-head gate, operand-specialised compare, precomputed
       dispatch). *)
    let mk_symbolic_body (stms, nstm, term, carr, _) =
      let pregs = regs_of carr in
      let last =
        let l = ref (nstm - 1) in
        while !l >= 0 && (match stms.(!l) with Jnop -> true | _ -> false) do
          decr l
        done;
        !l
      in
      match term with
      | Jexit (t, ci) -> (
        let chain = mk_chain stms 0 nstm in
        match t with
        | Jslot o ->
          fun env ->
            chain env;
            env.jvm.executed <- env.jk - env.jfuel - ci;
            bytes_get64 env.jstk o
        | Jcst v ->
          fun env ->
            chain env;
            env.jvm.executed <- env.jk - env.jfuel - ci;
            v
        | _ ->
          let ev = mk_ev t in
          fun env ->
            chain env;
            env.jvm.executed <- env.jk - env.jfuel - ci;
            ev env)
      | Jdeo (i, ci) ->
        let chain = mk_chain stms 0 nstm in
        fun env ->
          chain env;
          exec_linked env.jvm linked env.jk (4 * i) (env.jfuel + ci)
      | Jcnd (c, lhs, rhs, ti, fi) -> (
        let kl = match jx_opd lhs with Some k -> k | None -> assert false in
        let kr = match jx_opd rhs with Some k -> k | None -> assert false in
        let td = build_disp pregs carr (arm_of ti) in
        let fd = build_disp pregs carr (arm_of fi) in
        let pre, bound =
          match ((if last >= 0 then stms.(last) else Jnop), lhs) with
          | Jst (d, Jbin (0, Jslot d', Jcst inc)), Jslot x
            when d' = d && x = d ->
            (Pincr (d, inc), last)
          | Jst (d, Jslot a), Jslot x when x = d || x = a -> (Pcopy (d, a), last)
          | _ -> (Pnone, nstm)
        in
        let chain = mk_chain stms 0 bound in
        match (kl, kr) with
        | Ks la, Ks rb ->
          fun env ->
            chain env;
            jrun_pre env pre;
            let s = env.jstk in
            jdispatch env
              (if jx_cond c (bytes_get64 s la) (bytes_get64 s rb) then td
               else fd)
        | Ks la, Kc vb ->
          fun env ->
            chain env;
            jrun_pre env pre;
            jdispatch env
              (if jx_cond c (bytes_get64 env.jstk la) vb then td else fd)
        | _ ->
          fun env ->
            chain env;
            jrun_pre env pre;
            let a = jopd_get env kl and b = jopd_get env kr in
            jdispatch env (if jx_cond c a b then td else fd))
      | Jjmp t -> (
        match head_inline t with
        | Some (hfuel, hpc, hcarr, hc, hl, hr, hti, hfi) -> (
          let ownh = merge_commits carr hcarr in
          let pall = regs_of ownh in
          let td = build_disp pall ownh (arm_of hti) in
          let fd = build_disp pall ownh (arm_of hfi) in
          let pre, bound =
            match ((if last >= 0 then stms.(last) else Jnop), hl) with
            | Jst (d, Jbin (0, Jslot d', Jcst inc)), Ks x
              when d' = d && x = d ->
              (Pincr (d, inc), last)
            | Jst (d, Jslot a), Ks x when x = d || x = a -> (Pcopy (d, a), last)
            | _ -> (Pnone, nstm)
          in
          let chain = mk_chain stms 0 bound in
          match (hl, hr) with
          | Ks la, Ks rb ->
            fun env ->
              chain env;
              jrun_pre env pre;
              let f = env.jfuel in
              if f >= hfuel then begin
                env.jfuel <- f - hfuel;
                let s = env.jstk in
                jdispatch env
                  (if jx_cond hc (bytes_get64 s la) (bytes_get64 s rb) then
                     td
                   else fd)
              end
              else begin
                jrun_commits env carr;
                exec_linked env.jvm linked env.jk hpc f
              end
          | Ks la, Kc vb ->
            fun env ->
              chain env;
              jrun_pre env pre;
              let f = env.jfuel in
              if f >= hfuel then begin
                env.jfuel <- f - hfuel;
                jdispatch env
                  (if jx_cond hc (bytes_get64 env.jstk la) vb then td else fd)
              end
              else begin
                jrun_commits env carr;
                exec_linked env.jvm linked env.jk hpc f
              end
          | _ ->
            fun env ->
              chain env;
              jrun_pre env pre;
              let f = env.jfuel in
              if f >= hfuel then begin
                env.jfuel <- f - hfuel;
                let a = jopd_get env hl and b = jopd_get env hr in
                jdispatch env (if jx_cond hc a b then td else fd)
              end
              else begin
                jrun_commits env carr;
                exec_linked env.jvm linked env.jk hpc f
              end)
        | None ->
          let d = build_disp pregs carr (arm_of t) in
          if last < 0 then fun env -> jdispatch env d
          else
            let chain = mk_chain stms 0 nstm in
            fun env ->
              chain env;
              jdispatch env d)
    in
"""

a = find("(* Micro-op interpreter: a block's statements compile to a flat")
b = find("let jit_enabled = ref true")
src = src[:a] + [M] + src[b:]

a = find("    (* Lower a block's statement vector to a micro-op program (see")
b = find("    (* Jump threading: follow chains of blocks whose only effects are")
src = src[:a] + [C] + src[b:]

a = find("    (* Compile a symbolized block to a single closure: run the micro-op")
b = find("    (* Whole-loop mega template: the tight pointer-chasing accumulate")
src = src[:a] + [B] + src[b:]

io.open(PATH, "w", encoding="utf-8").write("".join(src))
print("spliced chain version ok")
