(* Minimal repro: does the 4-store int64 loop box under classic mode? *)
external bytes_get64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external bytes_set64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

type env = { mutable jfuel : int; jstk : Bytes.t }

let mk d1 a1 c1i s1h b1 s2h d2 a2 c2i s3h d3 a3 d4 a4 c4i s4h b4 s5h dk kinci
    bound iterf hfuel (contc : env -> int64) =
  let body env =
    let s = env.jstk in
    let rec go () =
      bytes_set64 s d1
        (Int64.add
           (Int64.shift_right_logical
              (Int64.mul (bytes_get64 s a1) (Int64.of_int c1i))
              s1h)
           (Int64.shift_right_logical (bytes_get64 s b1) s2h));
      bytes_set64 s d2
        (Int64.shift_right_logical
           (Int64.mul (bytes_get64 s a2) (Int64.of_int c2i))
           s3h);
      bytes_set64 s d3 (bytes_get64 s a3);
      bytes_set64 s d4
        (Int64.add
           (Int64.shift_right_logical
              (Int64.mul (bytes_get64 s a4) (Int64.of_int c4i))
              s4h)
           (Int64.shift_right_logical (bytes_get64 s b4) s5h));
      let k = Int64.add (bytes_get64 s dk) (Int64.of_int kinci) in
      bytes_set64 s dk k;
      let f = env.jfuel in
      if f >= iterf && Int64.compare k bound < 0 then begin
        env.jfuel <- f - iterf;
        go ()
      end
      else cold f k
    and cold f k =
      if f >= hfuel then begin
        env.jfuel <- f - hfuel;
        ignore k;
        contc env
      end
      else 0L
    in
    go ()
  in
  body

let () =
  let e = { jfuel = 10_000_000; jstk = Bytes.make 512 '\x01' } in
  let body =
    mk 472 464 3 2 456 2 456 448 7 3 448 440 504 504 7 3 496 3 480 1 64L 74 3
      (fun _ -> 7L)
  in
  let w0 = Gc.minor_words () in
  ignore (body e);
  let w1 = Gc.minor_words () in
  Printf.printf "alloc for ~135k iters: %.0f words\n" (w1 -. w0)
