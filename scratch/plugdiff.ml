(* Differential: every real pluglet bytecode under run / run_linked /
   run_jit with deterministic stub helpers. *)

module Vm = Ebpf.Vm

type outcome = Value of int64 | Trap of string

let outcome_to_string = function
  | Value v -> Printf.sprintf "value %Ld" v
  | Trap s -> "trap [" ^ s ^ "]"

let mk_vm stack_size =
  let vm = Vm.create ~stack_size ~max_insns:200_000 () in
  (* deterministic stub for every helper id the pluglets might call *)
  for id = 0 to 127 do
    Vm.register_helper vm id (fun _ a ->
        let h = ref (Int64.of_int (id * 2654435761)) in
        Array.iter
          (fun v -> h := Int64.mul (Int64.logxor !h v) 0x100000001b3L)
          a;
        !h)
  done;
  let r1 =
    Vm.map_region vm ~name:"buf1" ~perm:Vm.Rw
      (Bytes.init 256 (fun i -> Char.chr (i * 11 mod 256)))
  in
  let r2 =
    Vm.map_region vm ~name:"buf2" ~perm:Vm.Ro
      (Bytes.init 128 (fun i -> Char.chr (255 - i)))
  in
  (vm, [| r1.Vm.base; r2.Vm.base; 7L; 1300L; 3L |])

let observe vm f =
  let before = Vm.executed vm in
  let o =
    match f () with
    | v -> Value v
    | exception Vm.Memory_violation m -> Trap ("memory: " ^ m)
    | exception Vm.Fuel_exhausted -> Trap "fuel"
    | exception Vm.Helper_failure m -> Trap ("helper: " ^ m)
  in
  (o, Vm.executed vm - before)

let check name prog stack_size =
  let vm1, a1 = mk_vm stack_size in
  let vm2, a2 = mk_vm stack_size in
  let vm3, a3 = mk_vm stack_size in
  let o1 = observe vm1 (fun () -> Vm.run vm1 ~args:a1 prog) in
  let o2 = observe vm2 (fun () -> Vm.run_linked vm2 ~args:a2 (Vm.link prog)) in
  let o3 =
    observe vm3 (fun () ->
        Vm.run_jit vm3 ~args:a3 (Vm.jit ~stack_size prog))
  in
  if o1 <> o2 || o1 <> o3 then begin
    let p (o, e) = Printf.sprintf "%s / %d insns" (outcome_to_string o) e in
    Printf.printf "MISMATCH %s:\n  ref    %s\n  linked %s\n  jit    %s\n" name
      (p o1) (p o2) (p o3)
  end
  else Printf.printf "ok %s (%s)\n" name (outcome_to_string (fst o1))

let plugin (p : Pluginop.Plugin.t) =
  List.iteri
    (fun i (pl : Pluginop.Plugin.pluglet) ->
      let prog, stack = Pluginop.Plugin.compiled pl in
      check (Printf.sprintf "%s[%d] op=%d" p.name i pl.op) prog stack)
    p.pluglets

let () =
  plugin Plugins.Monitoring.plugin;
  plugin Plugins.Datagram.plugin;
  plugin Plugins.Multipath.plugin;
  plugin Plugins.Fec.rlc_full;
  plugin Plugins.Fec.xor_full;
  plugin Plugins.Extras.Tlp.plugin;
  plugin Plugins.Extras.Ecn.plugin;
  plugin Plugins.Extras.Aimd.plugin

let () =
  match Sys.argv with
  | [| _; "dump"; pname; istr |] ->
    let p =
      List.find
        (fun (p : Pluginop.Plugin.t) -> p.name = pname)
        [ Plugins.Monitoring.plugin; Plugins.Datagram.plugin;
          Plugins.Multipath.plugin; Plugins.Fec.rlc_full;
          Plugins.Extras.Tlp.plugin; Plugins.Extras.Ecn.plugin;
          Plugins.Extras.Aimd.plugin ]
    in
    let pl = List.nth p.pluglets (int_of_string istr) in
    let prog, stack = Pluginop.Plugin.compiled pl in
    Printf.printf "stack=%d n=%d\n" stack (Array.length prog);
    Array.iteri
      (fun i insn -> Format.printf "%3d: %a@." i Ebpf.Insn.pp insn)
      prog
  | _ -> ()

let () =
  if Array.length Sys.argv = 2 && Sys.argv.(1) = "mini" then begin
    let module I = Ebpf.Insn in
    let progs =
      [
        ( "w16 load via slot base",
          [| I.Stx (I.W64, I.fp, -8, 1);
             I.Ldx (I.W64, 0, I.fp, -8);
             I.Ldx (I.W16, 0, 0, 0);
             I.Exit |] );
        ( "w8 load via slot base",
          [| I.Stx (I.W64, I.fp, -8, 1);
             I.Ldx (I.W64, 0, I.fp, -8);
             I.Ldx (I.W8, 0, 0, 0);
             I.Exit |] );
        ( "w32 load via slot base",
          [| I.Stx (I.W64, I.fp, -8, 1);
             I.Ldx (I.W64, 0, I.fp, -8);
             I.Ldx (I.W32, 0, 0, 0);
             I.Exit |] );
        ( "w64 load via slot base",
          [| I.Stx (I.W64, I.fp, -8, 1);
             I.Ldx (I.W64, 0, I.fp, -8);
             I.Ldx (I.W64, 0, 0, 0);
             I.Exit |] );
        ( "ja+0 empty block",
          [| I.Alu64 (I.Mov, 0, I.Imm 5l); I.Ja 0; I.Exit |] );
        ( "cmp slot vs huge arg",
          [| I.Stx (I.W64, I.fp, -16, 2);
             I.Alu64 (I.Mov, 0, I.Imm 2818l);
             I.Stx (I.W64, I.fp, -32, 0);
             I.Ldx (I.W64, 1, I.fp, -16);
             I.Ldx (I.W64, 0, I.fp, -32);
             I.Jcond (I.Jgt, 0, I.Reg 1, 2);
             I.Alu64 (I.Mov, 0, I.Imm 0l);
             I.Ja 1;
             I.Alu64 (I.Mov, 0, I.Imm 1l);
             I.Jcond (I.Jeq, 0, I.Imm 0l, 2);
             I.Alu64 (I.Mov, 0, I.Imm 0l);
             I.Exit;
             I.Ldx (I.W64, 0, I.fp, -32);
             I.Exit |] );
      ]
    in
    List.iter (fun (name, prog) -> check name prog 512) progs
  end

let () =
  if Array.length Sys.argv = 2 && Sys.argv.(1) = "shrink" then begin
    let module I = Ebpf.Insn in
    (* datagram[3] replica, then simplified variants *)
    let full =
      [| I.Stx (I.W64, I.fp, -8, 1);              (* 0 *)
         I.Stx (I.W64, I.fp, -16, 2);             (* 1 *)
         I.Ldx (I.W64, 0, I.fp, -16);             (* 2 *)
         I.Stx (I.W64, I.fp, -24, 0);             (* 3 *)
         I.Alu64 (I.Mov, 0, I.Imm 2l);            (* 4 *)
         I.Alu64 (I.Mov, 1, I.Reg 0);             (* 5 *)
         I.Ldx (I.W64, 0, I.fp, -24);             (* 6 *)
         I.Jcond (I.Jlt, 0, I.Reg 1, 2);          (* 7 -> 10 *)
         I.Alu64 (I.Mov, 0, I.Imm 0l);            (* 8 *)
         I.Ja 1;                                  (* 9 -> 11 *)
         I.Alu64 (I.Mov, 0, I.Imm 1l);            (* 10 *)
         I.Jcond (I.Jeq, 0, I.Imm 0l, 3);         (* 11 -> 15 *)
         I.Alu64 (I.Mov, 0, I.Imm 0l);            (* 12 *)
         I.Exit;                                  (* 13 *)
         I.Ja 0;                                  (* 14 -> 15 *)
         I.Ldx (I.W64, 0, I.fp, -8);              (* 15 *)
         I.Ldx (I.W16, 0, 0, 0);                  (* 16 *)
         I.Stx (I.W64, I.fp, -24, 0);             (* 17 *)
         I.Ldx (I.W64, 0, I.fp, -24);             (* 18 *)
         I.Stx (I.W64, I.fp, -32, 0);             (* 19 *)
         I.Alu64 (I.Mov, 0, I.Imm 2l);            (* 20 *)
         I.Alu64 (I.Mov, 1, I.Reg 0);             (* 21 *)
         I.Ldx (I.W64, 0, I.fp, -32);             (* 22 *)
         I.Alu64 (I.Add, 0, I.Reg 1);             (* 23 *)
         I.Stx (I.W64, I.fp, -32, 0);             (* 24 *)
         I.Ldx (I.W64, 0, I.fp, -16);             (* 25 *)
         I.Alu64 (I.Mov, 1, I.Reg 0);             (* 26 *)
         I.Ldx (I.W64, 0, I.fp, -32);             (* 27 *)
         I.Jcond (I.Jgt, 0, I.Reg 1, 2);          (* 28 -> 31 *)
         I.Alu64 (I.Mov, 0, I.Imm 0l);            (* 29 *)
         I.Ja 1;                                  (* 30 -> 32 *)
         I.Alu64 (I.Mov, 0, I.Imm 1l);            (* 31 *)
         I.Jcond (I.Jeq, 0, I.Imm 0l, 3);         (* 32 -> 36 *)
         I.Alu64 (I.Mov, 0, I.Imm 0l);            (* 33 *)
         I.Exit;                                  (* 34 *)
         I.Ja 0;                                  (* 35 -> 36 *)
         I.Ldx (I.W64, 0, I.fp, -24);             (* 36 *)
         I.Stx (I.W64, I.fp, -32, 0);             (* 37 *)
         I.Alu64 (I.Mov, 0, I.Imm 2l);            (* 38 *)
         I.Alu64 (I.Mov, 1, I.Reg 0);             (* 39 *)
         I.Ldx (I.W64, 0, I.fp, -32);             (* 40 *)
         I.Alu64 (I.Add, 0, I.Reg 1);             (* 41 *)
         I.Exit;                                  (* 42 *)
         I.Alu64 (I.Mov, 0, I.Imm 0l);            (* 43 *)
         I.Exit |]                                (* 44 *)
    in
    check "replica full" full 512;
    (* drop the first diamond: start at 15 *)
    let tail =
      [| I.Stx (I.W64, I.fp, -8, 1);
         I.Stx (I.W64, I.fp, -16, 2);
         I.Ldx (I.W64, 0, I.fp, -8);
         I.Ldx (I.W16, 0, 0, 0);
         I.Stx (I.W64, I.fp, -24, 0);
         I.Ldx (I.W64, 0, I.fp, -24);
         I.Stx (I.W64, I.fp, -32, 0);
         I.Alu64 (I.Mov, 0, I.Imm 2l);
         I.Alu64 (I.Mov, 1, I.Reg 0);
         I.Ldx (I.W64, 0, I.fp, -32);
         I.Alu64 (I.Add, 0, I.Reg 1);
         I.Stx (I.W64, I.fp, -32, 0);
         I.Ldx (I.W64, 0, I.fp, -16);
         I.Alu64 (I.Mov, 1, I.Reg 0);
         I.Ldx (I.W64, 0, I.fp, -32);
         I.Jcond (I.Jgt, 0, I.Reg 1, 2);
         I.Alu64 (I.Mov, 0, I.Imm 0l);
         I.Ja 1;
         I.Alu64 (I.Mov, 0, I.Imm 1l);
         I.Jcond (I.Jeq, 0, I.Imm 0l, 3);
         I.Alu64 (I.Mov, 0, I.Imm 0l);
         I.Exit;
         I.Ja 0;
         I.Ldx (I.W64, 0, I.fp, -24);
         I.Exit |]
    in
    check "replica tail" tail 512
  end

let () =
  if Array.length Sys.argv = 2 && Sys.argv.(1) = "shrink2" then begin
    let module I = Ebpf.Insn in
    let p1 =
      (* w16 load -> slot, branch, read slot in later block *)
      [| I.Stx (I.W64, I.fp, -8, 1);
         I.Ldx (I.W64, 0, I.fp, -8);
         I.Ldx (I.W16, 0, 0, 0);
         I.Stx (I.W64, I.fp, -24, 0);
         I.Jcond (I.Jeq, 0, I.Imm 0l, 1);
         I.Ja 0;
         I.Ldx (I.W64, 0, I.fp, -24);
         I.Exit |]
    in
    check "w16->slot, cross-block read" p1 512;
    let p2 =
      (* same but w64 load *)
      [| I.Stx (I.W64, I.fp, -8, 1);
         I.Ldx (I.W64, 0, I.fp, -8);
         I.Ldx (I.W64, 0, 0, 0);
         I.Stx (I.W64, I.fp, -24, 0);
         I.Jcond (I.Jeq, 0, I.Imm 0l, 1);
         I.Ja 0;
         I.Ldx (I.W64, 0, I.fp, -24);
         I.Exit |]
    in
    check "w64->slot, cross-block read" p2 512;
    let p3 =
      (* no load: const -> slot, cross-block read *)
      [| I.Alu64 (I.Mov, 0, I.Imm 2816l);
         I.Stx (I.W64, I.fp, -24, 0);
         I.Jcond (I.Jeq, 0, I.Imm 0l, 1);
         I.Ja 0;
         I.Ldx (I.W64, 0, I.fp, -24);
         I.Exit |]
    in
    check "const->slot, cross-block read" p3 512
  end

let () =
  if Array.length Sys.argv = 2 && Sys.argv.(1) = "shrink3" then begin
    let module I = Ebpf.Insn in
    let mk w16 =
      [| I.Stx (I.W64, I.fp, -8, 1);
         I.Stx (I.W64, I.fp, -16, 2);
         I.Ldx (I.W64, 0, I.fp, -8);
         I.Ldx ((if w16 then I.W16 else I.W64), 0, 0, 0);
         I.Stx (I.W64, I.fp, -24, 0);
         I.Ldx (I.W64, 0, I.fp, -24);
         I.Stx (I.W64, I.fp, -32, 0);
         I.Alu64 (I.Mov, 0, I.Imm 2l);
         I.Alu64 (I.Mov, 1, I.Reg 0);
         I.Ldx (I.W64, 0, I.fp, -32);
         I.Alu64 (I.Add, 0, I.Reg 1);
         I.Stx (I.W64, I.fp, -32, 0);
         I.Ldx (I.W64, 0, I.fp, -16);
         I.Alu64 (I.Mov, 1, I.Reg 0);
         I.Ldx (I.W64, 0, I.fp, -32);
         I.Jcond (I.Jgt, 0, I.Reg 1, 2);
         I.Alu64 (I.Mov, 0, I.Imm 0l);
         I.Ja 1;
         I.Alu64 (I.Mov, 0, I.Imm 1l);
         I.Jcond (I.Jeq, 0, I.Imm 0l, 3);
         I.Alu64 (I.Mov, 0, I.Imm 0l);
         I.Exit;
         I.Ja 0;
         I.Ldx (I.W64, 0, I.fp, -24);
         I.Exit |]
    in
    check "tail w16" (mk true) 512;
    check "tail w64" (mk false) 512;
    (* cut the mov-juggle: direct slot cmp *)
    let v2 =
      [| I.Stx (I.W64, I.fp, -16, 2);
         I.Alu64 (I.Mov, 0, I.Imm 2816l);
         I.Stx (I.W64, I.fp, -24, 0);
         I.Ldx (I.W64, 1, I.fp, -16);
         I.Ldx (I.W64, 0, I.fp, -24);
         I.Jcond (I.Jgt, 0, I.Reg 1, 2);
         I.Alu64 (I.Mov, 0, I.Imm 0l);
         I.Ja 1;
         I.Alu64 (I.Mov, 0, I.Imm 1l);
         I.Jcond (I.Jeq, 0, I.Imm 0l, 3);
         I.Alu64 (I.Mov, 0, I.Imm 0l);
         I.Exit;
         I.Ja 0;
         I.Ldx (I.W64, 0, I.fp, -24);
         I.Exit |]
    in
    check "v2 symbolizable head" v2 512
  end

let () =
  if Array.length Sys.argv = 2 && Sys.argv.(1) = "shrink4" then begin
    let module I = Ebpf.Insn in
    let mk last =
      [| I.Stx (I.W64, I.fp, -8, 1);
         I.Stx (I.W64, I.fp, -16, 2);
         I.Ldx (I.W64, 0, I.fp, -8);
         I.Ldx (I.W16, 0, 0, 0);
         I.Stx (I.W64, I.fp, -24, 0);
         I.Ldx (I.W64, 0, I.fp, -24);
         I.Stx (I.W64, I.fp, -32, 0);
         I.Alu64 (I.Mov, 0, I.Imm 2l);
         I.Alu64 (I.Mov, 1, I.Reg 0);
         I.Ldx (I.W64, 0, I.fp, -32);
         I.Alu64 (I.Add, 0, I.Reg 1);
         I.Stx (I.W64, I.fp, -32, 0);
         I.Ldx (I.W64, 0, I.fp, -16);
         I.Alu64 (I.Mov, 1, I.Reg 0);
         I.Ldx (I.W64, 0, I.fp, -32);
         I.Jcond (I.Jgt, 0, I.Reg 1, 2);
         I.Alu64 (I.Mov, 0, I.Imm 0l);
         I.Ja 1;
         I.Alu64 (I.Mov, 0, I.Imm 1l);
         I.Jcond (I.Jeq, 0, I.Imm 0l, 3);
         I.Alu64 (I.Mov, 0, I.Imm 0l);
         I.Exit;
         I.Ja 0;
         last;
         I.Exit |]
    in
    (* probe A: constant in the jeq-taken block — if jit returns 7 the
       dispatch path is right and the slot read was stale; if 0, the jeq
       itself misdispatched. *)
    check "probe A: const tail" (mk (I.Alu64 (I.Mov, 0, I.Imm 7l))) 512;
    (* probe B: read the other slot *)
    check "probe B: read fp-32" (mk (I.Ldx (I.W64, 0, I.fp, -32))) 512;
    check "probe orig: read fp-24" (mk (I.Ldx (I.W64, 0, I.fp, -24))) 512
  end
