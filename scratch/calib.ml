(* Calibrate: cost of an indirect closure-chain call + Bytes slot traffic. *)

type env = { mutable stk : Bytes.t; mutable fuel : int }

external bytes_get64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external bytes_set64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

(* stmt closure: d := a + b over slots *)
let add_ss d a b (next : env -> int64) =
  fun env ->
    let s = env.stk in
    bytes_set64 s d (Int64.add (bytes_get64 s a) (bytes_get64 s b));
    next env

let ewma d a c1 k2 b k3 (next : env -> int64) =
  fun env ->
    let s = env.stk in
    bytes_set64 s d
      (Int64.add
         (Int64.shift_right_logical (Int64.mul (bytes_get64 s a) c1) k2)
         (Int64.shift_right_logical (bytes_get64 s b) k3));
    next env

let fin = fun (env : env) -> bytes_get64 env.stk 0

let () =
  let env = { stk = Bytes.make 128 '\x01'; fuel = 1_000_000_000 } in
  (* chain of 64 add stmts *)
  let rec build n next = if n = 0 then next else build (n - 1) (add_ss 8 16 24 next) in
  let chain64 = build 64 fin in
  let rec builde n next = if n = 0 then next else builde (n - 1) (ewma 8 16 7L 3 24 3 next) in
  let echain64 = builde 64 fin in
  let time name iters f =
    let best = ref infinity in
    for _ = 1 to 20 do
      let c0 = Sys.time () in
      for _ = 1 to iters do ignore (f env) done;
      let c1 = Sys.time () in
      let t = (c1 -. c0) /. float iters in
      if t < !best then best := t
    done;
    Printf.printf "%s: %.1f ns total, %.2f ns/stmt\n%!" name (!best *. 1e9)
      (!best *. 1e9 /. 64.)
  in
  time "add_chain64" 20000 chain64;
  time "ewma_chain64" 20000 echain64;
  ignore env.fuel
