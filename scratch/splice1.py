#!/usr/bin/env python3
# Splice vm.ml: replace closure-chain statement compiler with uop emitter.
import io, sys

PATH = "/root/repo/lib/ebpf/vm.ml"
src = io.open(PATH, encoding="utf-8").read().splitlines(keepends=True)

def find(marker):
    for i, l in enumerate(src):
        if l.rstrip("\n") == marker:
            return i
    raise SystemExit("marker not found: " + marker)

S1 = """    (* Generic one-statement thunk for shapes without a micro-op. *)
    let stmt_thunk st : jit_env -> unit =
      match st with
      | Jnop -> fun _ -> ()
      | Jst (d, t) ->
        let ev = mk_ev t in
        fun env -> bytes_set64 env.jstk d (ev env)
      | Jtm (d, t) ->
        let ev = mk_ev t in
        fun env -> bytes_set64 env.jseg d (ev env)
      | Jrg (r, t) ->
        let ev = mk_ev t in
        fun env -> rset env.jregb r (ev env)
      | Jld (d, base, off, ci) ->
        let evb = mk_ev base in
        fun env ->
          let addr = Int64.add (evb env) off in
          bytes_set64 env.jseg d
            (load64_m env.jvm env.jstk lim8 (env.jk - env.jfuel - ci) addr)
      | Jsd (base, off, v, ci) ->
        let evb = mk_ev base and evv = mk_ev v in
        fun env ->
          let addr = Int64.add (evb env) off in
          store64_m env.jvm env.jstk lim8 (env.jk - env.jfuel - ci) addr
            (evv env)
    in
    (* Lower a block's statement vector to a micro-op program (see
       [jrun_uops]); adjacent-op fusion (mul/store/sub) carries over as
       a single micro-op. *)
    let emit_uops stms nstm =
      let buf = ref [] and nops = ref 0 in
      let ps = ref [] and np = ref 0 in
      let xl = ref [] and nx = ref 0 in
      let addp v =
        let i = !np in
        ps := v :: !ps;
        incr np;
        i
      in
      let addx f =
        let i = !nx in
        xl := f :: !xl;
        incr nx;
        i
      in
      let push op x1 x2 x3 x4 x5 =
        buf := (op, x1, x2, x3, x4, x5) :: !buf;
        incr nops
      in
      let xtr st = push 25 (addx (stmt_thunk st)) 0 0 0 0 in
      let sh6 k = Int64.to_int (Int64.logand k 63L) in
      let emit1 st =
        match st with
        | Jnop -> ()
        | Jst (d, t) -> (
          match t with
          | Jcst v -> push 1 d (addp v) 0 0 0
          | Jslot a -> push 2 d a 0 0 0
          | Jtmp a -> push 3 d a 0 0 0
          | Jreg r -> push 4 d r 0 0 0
          | Jbin (0, Jslot a, Jslot b) -> push 5 d a b 0 0
          | Jbin (1, Jslot a, Jslot b) -> push 6 d a b 0 0
          | Jbin (2, Jslot a, Jslot b) -> push 7 d a b 0 0
          | Jbin (0, Jslot a, Jcst c) -> push 8 d a (addp c) 0 0
          | Jbin (0, Jcst c, Jslot a) -> push 8 d a (addp c) 0 0
          | Jbin (1, Jslot a, Jcst c) -> push 8 d a (addp (Int64.neg c)) 0 0
          | Jbin (1, Jcst c, Jslot a) -> push 9 d a (addp c) 0 0
          | Jneg (Jslot a) -> push 9 d a (addp 0L) 0 0
          | Jbin (2, Jslot a, Jcst c) -> push 10 d a (addp c) 0 0
          | Jbin (2, Jcst c, Jslot a) -> push 10 d a (addp c) 0 0
          | Jbin (6, Jslot a, Jcst c) -> push 11 d a (addp c) 0 0
          | Jbin (9, Jslot a, Jcst k) -> push 12 d a (sh6 k) 0 0
          | Jbin (8, Jslot a, Jcst k) -> push 13 d a (sh6 k) 0 0
          | Jbin (10, Jslot a, Jcst k) -> push 14 d a (sh6 k) 0 0
          | Jbin (9, Jbin (2, Jslot a, Jcst c), Jcst k) ->
            push 15 d a (addp c) (sh6 k) 0
          | Jbin
              ( 0,
                Jbin (9, Jbin (2, Jslot a, Jcst c1), Jcst k1),
                Jbin (9, Jslot b2, Jcst k2) ) ->
            push 16 d a (addp c1) (sh6 k1 lor (sh6 k2 lsl 8)) b2
          | Jbin (0, Jbin (0, Jslot a, Jtmp t1), Jtmp t2) ->
            push 18 d a t1 t2 0
          | Jbin (0, Jslot a, Jtmp tb) -> push 19 d a tb 0 0
          | Jbin (0, Jtmp tb, Jslot a) -> push 19 d a tb 0 0
          | _ -> xtr st)
        | Jtm (d, t) -> (
          match t with Jslot a -> push 22 d a 0 0 0 | _ -> xtr st)
        | Jrg (r, t) -> (
          match t with
          | Jcst v -> push 23 r (addp v) 0 0 0
          | Jslot a -> push 24 r a 0 0 0
          | _ -> xtr st)
        | Jld (d, base, off, ci) -> (
          match base with
          | Jslot a -> push 20 d a (addp off) ci 0
          | Jcst bc -> push 21 d 0 (addp (Int64.add bc off)) ci 0
          | _ -> xtr st)
        | Jsd _ -> xtr st
      in
      let i = ref 0 in
      while !i < nstm do
        (match stms.(!i) with
        | Jnop -> ()
        | st -> (
          let j = ref (!i + 1) in
          while
            !j < nstm && (match stms.(!j) with Jnop -> true | _ -> false)
          do
            incr j
          done;
          match (st, if !j < nstm then stms.(!j) else Jnop) with
          | ( Jst (d1, (Jbin (2, Jslot a, Jcst c) as m)),
              Jst (d2, Jbin (1, Jslot b, m')) )
            when m' == m ->
            push 17 d1 a (addp c) d2 b;
            i := !j
          | _ -> emit1 st));
        incr i
      done;
      let u = Array.make (max 1 (6 * !nops)) 0 in
      List.iteri
        (fun ridx (op, x1, x2, x3, x4, x5) ->
          let b = 6 * (!nops - 1 - ridx) in
          u.(b) <- op;
          u.(b + 1) <- x1;
          u.(b + 2) <- x2;
          u.(b + 3) <- x3;
          u.(b + 4) <- x4;
          u.(b + 5) <- x5)
        !buf;
      let p = Array.of_list (List.rev !ps) in
      let xs = Array.of_list (List.rev !xl) in
      (6 * !nops, u, p, xs)
    in
"""

a = find("    (* One closure per statement, specialised on the common shapes so a")
b = find("    (* Jump threading: follow chains of blocks whose only effects are")
src = src[:a] + [S1] + src[b:]

io.open(PATH, "w", encoding="utf-8").write("".join(src))
print("spliced S1 ok")
