(** Frame scheduler (Section 2.3): plugins book frame slots with
    reserve_frames; when a packet is built, core frames keep a guaranteed
    fraction of the payload budget whenever application data is pending,
    and a deficit round robin distributes the remaining budget between the
    plugins — no plugin can starve application data or the others. *)

type reservation = {
  ftype : int;           (** frame type the write_frame protoop receives *)
  size : int;            (** worst-case wire size *)
  retransmittable : bool;
  ack_eliciting : bool;  (** MP_ACK-style frames are not *)
  cookie : int64;        (** opaque value handed back to the pluglet *)
  plugin : string;
}

type t

val create : ?quantum:int -> ?core_fraction:float -> unit -> t
(** [quantum] (default 600 bytes) is the DRR credit per round;
    [core_fraction] (default 0.5) the share guaranteed to core frames. *)

val reserve : t -> reservation -> unit
val pending : t -> int
val has_pending : t -> bool

val plugin_budget : t -> budget:int -> core_has_data:bool -> int

val take :
  ?max_frame:int -> t -> budget:int -> core_has_data:bool -> reservation list
(** Pop reservations fitting [budget] bytes, deficit-round-robin across
    plugins. Reservations larger than [max_frame] (default 1400) can never
    ride in any packet and are dropped rather than blocking their queue. *)

val drop_plugin : t -> string -> unit
