(* Frame scheduler (Section 2.3): plugins book frame slots with
   reserve_frames; when a packet is built, core frames keep a guaranteed
   fraction of the payload budget whenever application data is pending, and
   a deficit round robin distributes the remaining budget between the
   plugins — so no plugin can starve application data or the other
   plugins. *)

type reservation = {
  ftype : int;          (* frame type the write_frame protoop will receive *)
  size : int;           (* worst-case wire size of the frame *)
  retransmittable : bool;
  ack_eliciting : bool; (* MP_ACK-style frames are not ack-eliciting *)
  cookie : int64;       (* opaque value handed back to the pluglet *)
  plugin : string;
}

type queue_state = { q : reservation Queue.t; mutable deficit : int }

type t = {
  queues : (string, queue_state) Hashtbl.t;
  mutable order : string list; (* round-robin order, oldest plugin first *)
  quantum : int;
  core_fraction : float;       (* guaranteed share for core frames *)
}

let create ?(quantum = 600) ?(core_fraction = 0.5) () =
  { queues = Hashtbl.create 4; order = []; quantum; core_fraction }

let queue_for t plugin =
  match Hashtbl.find_opt t.queues plugin with
  | Some qs -> qs
  | None ->
    let qs = { q = Queue.create (); deficit = 0 } in
    Hashtbl.replace t.queues plugin qs;
    t.order <- t.order @ [ plugin ];
    qs

let reserve t (r : reservation) = Queue.push r (queue_for t r.plugin).q

let pending t =
  Hashtbl.fold (fun _ qs acc -> acc + Queue.length qs.q) t.queues 0

let has_pending t = pending t > 0

(* Budget available to plugin frames in a packet whose payload capacity is
   [budget] bytes: when the core has data to send it is guaranteed
   [core_fraction] of the window, otherwise plugins may use it all. *)
let plugin_budget t ~budget ~core_has_data =
  if core_has_data then
    int_of_float (float_of_int budget *. (1. -. t.core_fraction))
  else budget

(* Pop reservations fitting in [budget] bytes, deficit-round-robin across
   plugins. Reservations larger than [max_frame] can never ride in any
   packet of this connection and are dropped defensively rather than
   letting them block their queue forever. *)
let take ?(max_frame = 1400) t ~budget ~core_has_data =
  let budget = ref (plugin_budget t ~budget ~core_has_data) in
  let out = ref [] in
  if has_pending t && !budget > 0 then begin
    let progress = ref true in
    while !progress && !budget > 0 && has_pending t do
      progress := false;
      List.iter
        (fun plugin ->
          let qs = Hashtbl.find t.queues plugin in
          if not (Queue.is_empty qs.q) then begin
            qs.deficit <- qs.deficit + t.quantum;
            let continue = ref true in
            while !continue && not (Queue.is_empty qs.q) do
              let r = Queue.peek qs.q in
              if r.size <= qs.deficit && r.size <= !budget then begin
                ignore (Queue.pop qs.q);
                qs.deficit <- qs.deficit - r.size;
                budget := !budget - r.size;
                out := r :: !out;
                progress := true
              end
              else begin
                (* a reservation the packet can never carry is discarded *)
                if r.size > max_frame then begin
                  ignore (Queue.pop qs.q);
                  progress := true
                end
                else continue := false
              end
            done;
            if Queue.is_empty qs.q then qs.deficit <- 0
          end)
        t.order
    done
  end;
  List.rev !out

let drop_plugin t plugin =
  Hashtbl.remove t.queues plugin;
  t.order <- List.filter (fun p -> p <> plugin) t.order
