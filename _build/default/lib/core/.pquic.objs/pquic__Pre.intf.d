lib/core/pre.mli: Bytes Ebpf Plugin Protoop
