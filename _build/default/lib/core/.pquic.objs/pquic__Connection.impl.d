lib/core/connection.ml: Api Array Buffer Bytes Char Compress Ebpf Fmt Hashtbl Int32 Int64 List Logs Memory_pool Netsim Plc Plugin Pre Printf Protoop Queue Quic Scheduler String
