lib/core/scheduler.mli:
