lib/core/api.ml: List
