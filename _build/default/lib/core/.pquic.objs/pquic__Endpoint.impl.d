lib/core/endpoint.ml: Char Compress Connection Hashtbl List Logs Netsim Plc Plugin Pre Queue Quic String
