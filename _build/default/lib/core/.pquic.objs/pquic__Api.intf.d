lib/core/api.mli:
