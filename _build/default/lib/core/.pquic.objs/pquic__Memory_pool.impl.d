lib/core/memory_pool.ml: Bytes
