lib/core/scheduler.ml: Hashtbl List Queue
