lib/core/memory_pool.mli: Bytes
