lib/core/protoop.mli:
