lib/core/protoop.ml: List Printf
