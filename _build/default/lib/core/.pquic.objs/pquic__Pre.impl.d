lib/core/pre.ml: Api Ebpf Int64 List Plugin Protoop String
