lib/core/plugin.mli: Ebpf Plc Protoop
