lib/core/plugin.ml: Api Buffer Char Ebpf Int32 List Plc Printf Protoop String
