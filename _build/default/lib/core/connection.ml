(* The PQUIC connection engine.

   A QUIC connection whose workflow is expressed as a succession of
   protocol operations ([Protoop]); each operation dispatches through a
   registry where protocol plugins may have replaced the default behaviour
   or attached passive pre/post pluglets. The engine owns packets, paths,
   streams, recovery and congestion control; everything observable is
   reachable from bytecode through the [Api] helpers installed on each
   pluglet's PRE.

   Simplifications versus draft-14 are documented in DESIGN.md; the main
   one is a single packet-number space shared by all paths (per-path
   congestion control and RTT are kept, which is what the multipath
   evaluation exercises). *)

module F = Quic.Frame
module TP = Quic.Transport_params
module Sim = Netsim.Sim
module Net = Netsim.Net

let src = Logs.Src.create "pquic" ~doc:"PQUIC connection engine"

module Log = (val Logs.src_log src : Logs.LOG)

type Net.payload += Quic_packet of string

let ip_udp_overhead = 28

type role = Client | Server

type state = Handshaking | Established | Closing | Closed | Failed of string

type config = {
  mtu : int;                (* max QUIC packet size (before IP/UDP) *)
  initial_window : int;
  ack_delay_ms : float;
  trust_formula : string;   (* validation requirement sent with PLUGIN_VALIDATE *)
  core_fraction : float;    (* share of the window guaranteed to core frames
                               when plugins compete (Section 2.3) *)
}

let default_config =
  { mtu = 1280; initial_window = Quic.Cc.default_initial_window;
    ack_delay_ms = 25.; trust_formula = "PV1"; core_fraction = 0.5 }

type path = {
  path_id : int;
  mutable local_addr : Net.addr;
  mutable remote_addr : Net.addr;
  cc : Quic.Cc.t;
  rtt : Quic.Rtt.t;
  mutable active : bool;
}

type frame_record = {
  frame : F.t;
  reservation : Scheduler.reservation option; (* set for plugin frames *)
}

type sent_packet = {
  pn : int64;
  sent_at : Sim.time;
  size : int;
  records : frame_record list;
  path_id : int;
  path_seq : int64; (* per-path send order, for reordering-safe loss detection *)
  ack_eliciting : bool;
}

type stream = {
  stream_id : int;
  sendb : Quic.Sendbuf.t;
  recvb : Quic.Recvbuf.t;
  mutable max_stream_data_remote : int64;
  mutable max_stream_data_local : int64;
  mutable fin_delivered : bool;
  mutable flow_sent : int; (* highest offset+len ever put on the wire *)
}

type stats = {
  mutable bytes_sent : int;
  mutable bytes_received : int;
  mutable pkts_sent : int;
  mutable pkts_received : int;
  mutable pkts_lost : int;
  mutable pkts_retransmitted : int;
  mutable pkts_out_of_order : int;
  mutable frames_recovered : int; (* packets resurrected by FEC *)
}

(* Protoop arguments: plain integers or byte buffers. Buffers are mapped as
   VM regions for pluglet implementations; native implementations access
   the bytes directly. *)
type arg = I of int64 | Buf of Bytes.t * [ `Ro | `Rw ]

type impl = Native of string * native | Pluglet of Pre.t
and native = t -> arg array -> int64

and op_entry = {
  mutable replace : impl option;
  mutable pre : impl list;
  mutable post : impl list;
  mutable ext : impl option;
}

and instance = {
  plugin : Plugin.t;
  pool : Memory_pool.t;
  mutable pres : Pre.t list;
  opaque : (int, int) Hashtbl.t; (* opaque-data id -> heap offset *)
  mutable bound : t option;      (* connection the instance is bound to *)
}

and t = {
  sim : Sim.t;
  net : Net.t;
  cfg : config;
  role : role;
  mutable state : state;
  local_cid : int64;
  mutable remote_cid : int64;
  initial_key : int64;
  mutable key : int64;
  mutable paths : path array;
  (* recovery *)
  mutable next_pn : int64;
  sent : (int64, sent_packet) Hashtbl.t;
  mutable largest_acked : int64;
  mutable largest_acked_per_path : int64 array; (* per-path largest path_seq acked *)
  mutable next_path_seq : int64 array;
  mutable largest_sent_at : Sim.time;
  sent_times : (int64, Sim.time) Hashtbl.t; (* retained past c.sent removal *)
  mutable pto_backoff : int;
  mutable loss_alarm : Sim.event option;
  mutable ack_alarm : Sim.event option;
  mutable idle_alarm : Sim.event option;
  mutable last_activity : Sim.time;
  (* receiving *)
  acks : Quic.Ackranges.t;
  mutable ack_needed : bool;
  mutable ae_since_ack : int;
  mutable largest_recv : int64;
  mutable largest_recv_at : Sim.time; (* for the ACK delay field *)
  mutable last_spin_received : bool;
  mutable spin : bool;
  (* streams *)
  streams : (int, stream) Hashtbl.t;
  mutable stream_order : int list;
  crypto_send : Quic.Sendbuf.t;
  crypto_recv : Quic.Recvbuf.t;
  crypto_acc : Buffer.t; (* contiguous crypto bytes read so far *)
  mutable crypto_done : bool;
  (* flow control *)
  mutable max_data_local : int64;
  mutable max_data_remote : int64;
  mutable data_sent : int64;
  mutable data_received : int64;
  mutable max_data_frame_pending : bool;
  (* transport parameters *)
  mutable local_params : TP.t;
  mutable peer_params : TP.t option;
  (* control frames queued for the next packets *)
  ctrl : F.t Queue.t;
  (* plugin machinery *)
  ops : (int * int option, op_entry) Hashtbl.t;
  mutable op_stack : (int * int option) list;
  plugins : (string, instance) Hashtbl.t;
  mutable plugin_order : string list;
  sched : Scheduler.t;
  mutable plugin_turn : bool; (* alternate plugin-first packets *)
  (* scratch for the packet currently processed or built *)
  mutable cur_pn : int64;
  mutable cur_path : int;
  mutable cur_size : int;
  mutable cur_payload : string;
  mutable cur_has_stream : bool;
  mutable cur_ecn_ce : bool;
  mutable recover_depth : int;
  (* plugin exchange *)
  plugin_out : (string, Quic.Sendbuf.t) Hashtbl.t;
  plugin_in : (string, Quic.Recvbuf.t) Hashtbl.t;
  mutable plugin_proofs : (string * string) list; (* name -> received proof *)
  mutable provide_plugin : string -> formula:string -> (string * string) option;
  mutable verify_plugin : name:string -> bytes:string -> proof:string -> bool;
  mutable on_plugin_received : Plugin.t -> unit;
  mutable acquire_instance : string -> instance option;
      (* endpoint-provided: a cached instance (Section 2.5) or a freshly
         built one for a locally available plugin; None if unavailable *)
  (* app interface *)
  mutable on_stream_data : int -> string -> fin:bool -> unit;
  mutable on_message : string -> unit;
  mutable on_established : unit -> unit;
  mutable on_closed : unit -> unit;
  stats : stats;
  created_at : Sim.time;
  mutable established_at : Sim.time option;
  mutable wake_pending : bool;
  mutable negotiated : bool;
  mutable close_reason : string;
}



let initial_key = 0x1_5151_5151L

let state_code c =
  match c.state with
  | Handshaking -> 0L
  | Established -> 1L
  | Closing -> 2L
  | Closed -> 3L
  | Failed _ -> 4L

let path c id = if id >= 0 && id < Array.length c.paths then Some c.paths.(id) else None

let default_path c = c.paths.(0)

let is_open c = match c.state with Handshaking | Established -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Protocol operation registry                                         *)
(* ------------------------------------------------------------------ *)

let entry c op param =
  match Hashtbl.find_opt c.ops (op, param) with
  | Some e -> e
  | None ->
    let e = { replace = None; pre = []; post = []; ext = None } in
    Hashtbl.replace c.ops (op, param) e;
    e

let register_native c op name fn = (entry c op None).replace <- Some (Native (name, fn))

let fail_connection c reason =
  if c.state <> Closed then begin
    Log.warn (fun m -> m "connection failed: %s" reason);
    c.state <- Failed reason;
    c.close_reason <- reason
  end

(* Remove a plugin's pluglets from the registry and scheduler. The paper's
   sanction for a misbehaving pluglet is the removal of its plugin and the
   termination of the connection. *)
let remove_plugin c name =
  (match Hashtbl.find_opt c.plugins name with
  | None -> ()
  | Some inst ->
    inst.bound <- None;
    Hashtbl.remove c.plugins name;
    c.plugin_order <- List.filter (fun n -> n <> name) c.plugin_order;
    Scheduler.drop_plugin c.sched name;
    let belongs = function
      | Pluglet pre -> pre.Pre.plugin_name = name
      | Native _ -> false
    in
    Hashtbl.iter
      (fun _ e ->
        (match e.replace with Some i when belongs i -> e.replace <- None | _ -> ());
        (match e.ext with Some i when belongs i -> e.ext <- None | _ -> ());
        e.pre <- List.filter (fun i -> not (belongs i)) e.pre;
        e.post <- List.filter (fun i -> not (belongs i)) e.post)
      c.ops)

let kill_plugin c name reason =
  Log.warn (fun m -> m "killing plugin %s: %s" name reason);
  remove_plugin c name;
  fail_connection c (Printf.sprintf "plugin %s misbehaved: %s" name reason)

(* Execute one pluglet implementation with the given arguments. Buffers are
   mapped into the PRE for the duration of the call; pre/post pluglets get
   read-only views (the paper grants passive pluglets no write access). *)
let exec_pluglet c pre ~read_only (args : arg array) =
  let regions, arg_specs =
    Array.fold_left
      (fun (regions, specs) a ->
        match a with
        | I v -> (regions, `I v :: specs)
        | Buf (b, perm) ->
          let perm = if read_only then `Ro else perm in
          let name = Printf.sprintf "arg%d" (List.length regions) in
          ((name, b, (match perm with `Ro -> Ebpf.Vm.Ro | `Rw -> Ebpf.Vm.Rw))
           :: regions,
            `R (List.length regions) :: specs))
      ([], []) args
  in
  let regions = List.rev regions and arg_specs = List.rev arg_specs in
  try
    Pre.with_regions pre regions (fun bases ->
        let bases = Array.of_list bases in
        let vm_args =
          List.map
            (function `I v -> v | `R idx -> bases.(idx))
            arg_specs
        in
        Pre.run pre ~args:(Array.of_list vm_args))
  with
  | Ebpf.Vm.Memory_violation msg ->
    kill_plugin c pre.Pre.plugin_name ("memory violation: " ^ msg);
    0L
  | Ebpf.Vm.Fuel_exhausted ->
    kill_plugin c pre.Pre.plugin_name "instruction budget exhausted";
    0L
  | Ebpf.Vm.Helper_failure msg ->
    kill_plugin c pre.Pre.plugin_name ("API violation: " ^ msg);
    0L

let run_impl c impl ~read_only args =
  match impl with
  | Native (_, fn) -> fn c args
  | Pluglet pre -> exec_pluglet c pre ~read_only args

(* Run a protocol operation: pre anchors, then the replace anchor (pluglet
   override or built-in behaviour), then post anchors. The call stack of
   running operations is tracked; re-entering a running operation would
   create a loop in the call graph (Fig. 3) and terminates the connection. *)
let run_op c op ?param ?(default = fun _ _ -> 0L) (args : arg array) =
  let key = (op, param) in
  if List.mem key c.op_stack then begin
    fail_connection c
      (Printf.sprintf "protocol operation loop detected on %s" (Protoop.name op));
    0L
  end
  else begin
    c.op_stack <- key :: c.op_stack;
    let e =
      match Hashtbl.find_opt c.ops key with
      | Some e -> e
      | None -> (
        (* parameterized op with no specific entry: fall back to the
           unparameterized default entry *)
        match param with
        | Some _ -> (
          match Hashtbl.find_opt c.ops (op, None) with
          | Some e -> e
          | None -> entry c op None)
        | None -> entry c op None)
    in
    List.iter (fun i -> ignore (run_impl c i ~read_only:true args)) (List.rev e.pre);
    let result =
      match e.replace with
      | Some i -> run_impl c i ~read_only:false args
      | None -> default c args
    in
    List.iter (fun i -> ignore (run_impl c i ~read_only:true args)) (List.rev e.post);
    c.op_stack <- List.tl c.op_stack;
    result
  end

(* ------------------------------------------------------------------ *)
(* Field access (get/set API)                                          *)
(* ------------------------------------------------------------------ *)

let get_field c field index =
  let open Api in
  let pathf f = match path c index with Some p -> f p | None -> -1L in
  if field = f_cwnd then pathf (fun p -> Int64.of_int (Quic.Cc.cwnd p.cc))
  else if field = f_bytes_in_flight then
    pathf (fun p -> Int64.of_int (Quic.Cc.bytes_in_flight p.cc))
  else if field = f_srtt then pathf (fun p -> Quic.Rtt.smoothed p.rtt)
  else if field = f_rtt_min then pathf (fun p -> Quic.Rtt.min_rtt p.rtt)
  else if field = f_latest_rtt then pathf (fun p -> Quic.Rtt.latest p.rtt)
  else if field = f_rtt_var then pathf (fun p -> Quic.Rtt.variance p.rtt)
  else if field = f_path_active then pathf (fun p -> if p.active then 1L else 0L)
  else if field = f_path_remote_addr then
    pathf (fun p -> Int64.of_int p.remote_addr)
  else if field = f_nb_paths then Int64.of_int (Array.length c.paths)
  else if field = f_next_pn then c.next_pn
  else if field = f_largest_acked then c.largest_acked
  else if field = f_state then state_code c
  else if field = f_role then match c.role with Client -> 0L | Server -> 1L
  else if field = f_bytes_sent then Int64.of_int c.stats.bytes_sent
  else if field = f_bytes_received then Int64.of_int c.stats.bytes_received
  else if field = f_pkts_sent then Int64.of_int c.stats.pkts_sent
  else if field = f_pkts_received then Int64.of_int c.stats.pkts_received
  else if field = f_pkts_lost then Int64.of_int c.stats.pkts_lost
  else if field = f_pkts_retransmitted then
    Int64.of_int c.stats.pkts_retransmitted
  else if field = f_pkts_out_of_order then
    Int64.of_int c.stats.pkts_out_of_order
  else if field = f_ack_needed then if c.ack_needed then 1L else 0L
  else if field = f_spin_bit then if c.spin then 1L else 0L
  else if field = f_max_data_local then c.max_data_local
  else if field = f_max_data_remote then c.max_data_remote
  else if field = f_data_sent then c.data_sent
  else if field = f_data_received then c.data_received
  else if field = f_mtu then Int64.of_int c.cfg.mtu
  else if field = f_current_pn then c.cur_pn
  else if field = f_current_path then Int64.of_int c.cur_path
  else if field = f_current_packet_size then Int64.of_int c.cur_size
  else if field = f_streams_open then Int64.of_int (Hashtbl.length c.streams)
  else if field = f_streams_closed then
    Int64.of_int
      (Hashtbl.fold
         (fun _ s acc -> if s.fin_delivered then acc + 1 else acc)
         c.streams 0)
  else if field = f_handshake_rtt then (
    match c.established_at with
    | Some at -> Int64.sub at c.created_at
    | None -> -1L)
  else if field = f_last_path_recv then Int64.of_int c.cur_path
  else if field = f_fin_sent then
    if
      Hashtbl.fold
        (fun _ s acc ->
          acc
          || (Quic.Sendbuf.has_new s.sendb = false
              && Quic.Sendbuf.has_retransmissions s.sendb = false
              && Quic.Sendbuf.total_written s.sendb > 0))
        c.streams false
    then 1L
    else 0L
  else if field = f_peer_extra_addr then (
    match c.peer_params with
    | Some { Quic.Transport_params.active_paths = a :: _; _ } -> Int64.of_int a
    | _ -> -1L)
  else if field = f_current_packet_has_stream then
    if c.cur_has_stream then 1L else 0L
  else if field = f_own_extra_addr then (
    match c.local_params.TP.active_paths with
    | a :: _ -> Int64.of_int a
    | [] -> -1L)
  else if field = f_ecn_ce then if c.cur_ecn_ce then 1L else 0L
  else raise (Ebpf.Vm.Helper_failure (Printf.sprintf "get: unknown field %d" field))

let set_field c field index value =
  let open Api in
  if not (List.mem field writable_fields) then
    raise (Ebpf.Vm.Helper_failure (Printf.sprintf "set: field %d is read-only" field));
  match path c index with
  | None -> raise (Ebpf.Vm.Helper_failure "set: bad path index")
  | Some p ->
    if field = f_rtt_sample then Quic.Rtt.update p.rtt ~sample:value
    else if field = f_spin_bit then c.spin <- value <> 0L
    else if field = f_path_active then p.active <- value <> 0L
    else if field = f_cwnd then Quic.Cc.set_cwnd p.cc (Int64.to_int value)

(* ------------------------------------------------------------------ *)
(* Forward declarations for the send machinery                         *)
(* ------------------------------------------------------------------ *)

let wake_ref : (t -> unit) ref = ref (fun _ -> ())
let wake c = !wake_ref c

let process_recovered_ref : (t -> string -> unit) ref = ref (fun _ _ -> ())

(* ------------------------------------------------------------------ *)
(* Helper (Table 1 API) installation                                   *)
(* ------------------------------------------------------------------ *)

let helper_fail fmt = Fmt.kstr (fun s -> raise (Ebpf.Vm.Helper_failure s)) fmt

let i64 = Int64.of_int
let to_i = Int64.to_int

(* GF(256) arithmetic (AES polynomial 0x11b), shared with the FEC plugin. *)
module Gf = struct
  let mul a b =
    let a = ref a and b = ref b and p = ref 0 in
    for _ = 0 to 7 do
      if !b land 1 <> 0 then p := !p lxor !a;
      let hi = !a land 0x80 in
      a := (!a lsl 1) land 0xff;
      if hi <> 0 then a := !a lxor 0x1b;
      b := !b lsr 1
    done;
    !p

  let pow a n =
    let rec go acc a n =
      if n = 0 then acc
      else go (if n land 1 = 1 then mul acc a else acc) (mul a a) (n lsr 1)
    in
    go 1 a n

  let inv a = if a = 0 then 0 else pow a 254
end

(* Deterministic RLC coefficient in 1..255, identical on both peers. *)
let rlc_coef ~seed ~sid ~row =
  let h = ref 0xcbf29ce484222325L in
  let mix v =
    h := Int64.mul (Int64.logxor !h v) 0x100000001b3L
  in
  mix seed; mix sid; mix (Int64.of_int row);
  let v = Int64.to_int (Int64.logand !h 0xffL) in
  if v = 0 then 1 else v

let install_helpers c inst (pre : Pre.t) =
  let heap = Memory_pool.area inst.pool in
  let heap_off vm_addr =
    let off = Pre.heap_offset pre vm_addr in
    if off < 0 || off > Bytes.length heap then
      helper_fail "address 0x%Lx outside plugin memory" vm_addr;
    off
  in
  let reg id f = Pre.register_helper pre id f in
  reg Api.h_get (fun _ a -> get_field c (to_i a.(0)) (to_i a.(1)));
  reg Api.h_set (fun _ a ->
      set_field c (to_i a.(0)) (to_i a.(1)) a.(2);
      0L);
  reg Api.h_pl_malloc (fun _ a ->
      match Memory_pool.alloc inst.pool (to_i a.(0)) with
      | Some off -> Pre.heap_addr pre off
      | None -> 0L);
  reg Api.h_pl_free (fun _ a ->
      if Memory_pool.free inst.pool (heap_off a.(0)) then 0L
      else helper_fail "pl_free: invalid address 0x%Lx" a.(0));
  reg Api.h_get_opaque_data (fun _ a ->
      let id = to_i a.(0) and size = to_i a.(1) in
      match Hashtbl.find_opt inst.opaque id with
      | Some off -> Pre.heap_addr pre off
      | None -> (
        match Memory_pool.alloc inst.pool size with
        | Some off ->
          (* opaque areas start zeroed even when the pool recycles blocks *)
          Bytes.fill (Memory_pool.area inst.pool) off size '\000';
          Hashtbl.replace inst.opaque id off;
          Pre.heap_addr pre off
        | None -> 0L));
  reg Api.h_pl_memcpy (fun vm a ->
      let len = to_i a.(2) in
      if len < 0 || len > 65536 then helper_fail "pl_memcpy: bad length %d" len;
      let data = Ebpf.Vm.read_bytes vm a.(1) len in
      let dst = a.(0) in
      Ebpf.Vm.write_bytes vm dst data;
      0L);
  reg Api.h_pl_memset (fun vm a ->
      let len = to_i a.(2) in
      if len < 0 || len > 65536 then helper_fail "pl_memset: bad length %d" len;
      Ebpf.Vm.fill_bytes vm a.(0) len (Char.chr (to_i a.(1) land 0xff));
      0L);
  reg Api.h_run_protoop (fun _ a ->
      let op = to_i a.(0) in
      let param = if a.(1) < 0L then None else Some (to_i a.(1)) in
      run_op c op ?param [| I a.(2); I a.(3); I a.(4) |]);
  reg Api.h_reserve_frames (fun _ a ->
      let flags = to_i a.(2) in
      Scheduler.reserve c.sched
        {
          Scheduler.ftype = to_i a.(0);
          size = to_i a.(1);
          retransmittable = flags land 1 <> 0;
          ack_eliciting = flags land 2 = 0;
          cookie = a.(3);
          plugin = inst.plugin.Plugin.name;
        };
      wake c;
      0L);
  reg Api.h_get_time (fun _ _ -> Sim.now c.sim);
  reg Api.h_push_message (fun vm a ->
      let len = to_i a.(1) in
      if len < 0 || len > 65536 then helper_fail "push_message: bad length %d" len;
      let data = Ebpf.Vm.read_bytes vm a.(0) len in
      c.on_message (Bytes.to_string data);
      0L);
  reg Api.h_pl_log (fun _ a ->
      Log.debug (fun m ->
          m "[plugin %s] %Ld %Ld" inst.plugin.Plugin.name a.(0) a.(1));
      0L);
  reg Api.h_sent_time (fun _ a ->
      match Hashtbl.find_opt c.sent_times a.(0) with
      | Some at -> at
      | None -> -1L);
  reg Api.h_cmp_bytes (fun vm a ->
      let len = to_i a.(2) in
      if len < 0 || len > 65536 then helper_fail "cmp_bytes: bad length %d" len;
      let x = Ebpf.Vm.read_bytes vm a.(0) len in
      let y = Ebpf.Vm.read_bytes vm a.(1) len in
      if Bytes.equal x y then 0L else 1L);
  reg Api.h_gf256_mulvec (fun vm a ->
      (* dst ^= coef * src over len bytes *)
      let len = to_i a.(3) in
      if len < 0 || len > 65536 then helper_fail "gf256_mulvec: bad length %d" len;
      let coef = to_i a.(2) land 0xff in
      let dst = Ebpf.Vm.read_bytes vm a.(0) len in
      let src = Ebpf.Vm.read_bytes vm a.(1) len in
      for k = 0 to len - 1 do
        Bytes.set_uint8 dst k
          (Bytes.get_uint8 dst k lxor Gf.mul coef (Bytes.get_uint8 src k))
      done;
      Ebpf.Vm.write_bytes vm a.(0) dst;
      0L);
  reg Api.h_gf256_scalevec (fun vm a ->
      let len = to_i a.(2) in
      if len < 0 || len > 65536 then helper_fail "gf256_scalevec: bad length %d" len;
      let coef = to_i a.(1) land 0xff in
      let dst = Ebpf.Vm.read_bytes vm a.(0) len in
      for k = 0 to len - 1 do
        Bytes.set_uint8 dst k (Gf.mul coef (Bytes.get_uint8 dst k))
      done;
      Ebpf.Vm.write_bytes vm a.(0) dst;
      0L);
  reg Api.h_gf256_mul (fun _ a -> i64 (Gf.mul (to_i a.(0) land 0xff) (to_i a.(1) land 0xff)));
  reg Api.h_gf256_inv (fun _ a -> i64 (Gf.inv (to_i a.(0) land 0xff)));
  reg Api.h_rng_coef (fun _ a -> i64 (rlc_coef ~seed:a.(0) ~sid:a.(1) ~row:(to_i a.(2))));
  reg Api.h_recover_packet (fun vm a ->
      let len = to_i a.(1) in
      if len < 4 || len > 65536 then helper_fail "recover_packet: bad length %d" len;
      let data = Ebpf.Vm.read_bytes vm a.(0) len in
      !process_recovered_ref c (Bytes.to_string data);
      0L);
  reg Api.h_packet_bytes (fun vm a ->
      let max = to_i a.(1) in
      let payload = c.cur_payload in
      let pn_prefix = Bytes.create 4 in
      Bytes.set_int32_be pn_prefix 0 (Int64.to_int32 c.cur_pn);
      let total = 4 + String.length payload in
      if total > max then 0L
      else begin
        Ebpf.Vm.write_bytes vm a.(0) pn_prefix;
        Ebpf.Vm.write_bytes vm (Int64.add a.(0) 4L)
          (Bytes.of_string payload);
        i64 total
      end);
  reg Api.h_create_path (fun _ a ->
      let remote = to_i a.(0) in
      (* reuse an existing path to the same remote if present *)
      let existing = ref (-1) in
      Array.iter
        (fun p -> if p.remote_addr = remote then existing := p.path_id)
        c.paths;
      if !existing >= 0 then i64 !existing
      else begin
        let local =
          (* second client address if we own one, else our primary *)
          let primary = (default_path c).local_addr in
          match c.local_params.TP.active_paths with
          | a :: _ when c.role = Client -> a
          | _ -> primary
        in
        let p =
          {
            path_id = Array.length c.paths;
            local_addr = local;
            remote_addr = remote;
            cc = Quic.Cc.create ~initial_window:c.cfg.initial_window ();
            rtt = Quic.Rtt.create ();
            active = true;
          }
        in
        c.paths <- Array.append c.paths [| p |];
        ignore (run_op c Protoop.create_new_path [| I (i64 p.path_id) |]);
        i64 p.path_id
      end)

(* ------------------------------------------------------------------ *)
(* Plugin injection                                                    *)
(* ------------------------------------------------------------------ *)

exception Injection_failed of string

let plugin_heap_size = 256 * 1024

(* Build a fresh instance (PREs verified and compiled) for [plugin]. *)
let build_instance (plugin : Plugin.t) =
  let pool = Memory_pool.create ~size:plugin_heap_size () in
  let inst = { plugin; pool; pres = []; opaque = Hashtbl.create 8; bound = None } in
  let pres =
    List.map
      (fun pluglet ->
        Pre.create ~plugin_name:plugin.Plugin.name ~pluglet
          ~heap:(Memory_pool.area pool))
      plugin.Plugin.pluglets
  in
  inst.pres <- pres;
  inst

(* Attach a built instance to this connection. Rolls the whole plugin back
   if a replace anchor is already taken (Section 2.2). *)
let attach_instance c inst =
  let name = inst.plugin.Plugin.name in
  if Hashtbl.mem c.plugins name then raise (Injection_failed (name ^ " already injected"));
  Memory_pool.reset inst.pool;
  Hashtbl.reset inst.opaque;
  inst.bound <- Some c;
  List.iter (fun pre -> install_helpers c inst pre) inst.pres;
  let attached = ref [] in
  let rollback () =
    List.iter
      (fun (e, pre, anchor) ->
        match (anchor : Protoop.anchor) with
        | Protoop.Replace -> e.replace <- None
        | Protoop.External -> e.ext <- None
        | Protoop.Pre -> e.pre <- List.filter (fun i -> i != Pluglet pre) e.pre
        | Protoop.Post -> e.post <- List.filter (fun i -> i != Pluglet pre) e.post)
      !attached
  in
  (try
     List.iter
       (fun pre ->
         let e = entry c pre.Pre.op pre.Pre.param in
         (match pre.Pre.anchor with
         | Protoop.Replace ->
           (match e.replace with
           | Some (Pluglet other) ->
             raise
               (Injection_failed
                  (Printf.sprintf
                     "replace anchor for %s already taken by plugin %s"
                     (Protoop.name pre.Pre.op) other.Pre.plugin_name))
           | _ -> e.replace <- Some (Pluglet pre))
         | Protoop.External -> e.ext <- Some (Pluglet pre)
         | Protoop.Pre -> e.pre <- Pluglet pre :: e.pre
         | Protoop.Post -> e.post <- Pluglet pre :: e.post);
         attached := (e, pre, pre.Pre.anchor) :: !attached)
       inst.pres
   with Injection_failed _ as e ->
     rollback ();
     inst.bound <- None;
     raise e);
  Hashtbl.replace c.plugins name inst;
  c.plugin_order <- c.plugin_order @ [ name ];
  ignore (run_op c Protoop.plugin_injected [||]);
  inst

let inject_plugin c plugin =
  try
    let inst = build_instance plugin in
    ignore (attach_instance c inst);
    Ok ()
  with
  | Injection_failed msg -> Error msg
  | Pre.Rejected msg -> Error ("verifier rejected pluglet: " ^ msg)
  | Plc.Compile.Error msg -> Error ("pluglet compilation failed: " ^ msg)

(* Call a plugin-defined external operation (Section 2.4): only the
   application may invoke these. *)
let call_external c op (args : arg array) =
  match Hashtbl.find_opt c.ops (op, None) with
  | Some { ext = Some impl; _ } -> Some (run_impl c impl ~read_only:false args)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let make_stats () =
  {
    bytes_sent = 0;
    bytes_received = 0;
    pkts_sent = 0;
    pkts_received = 0;
    pkts_lost = 0;
    pkts_retransmitted = 0;
    pkts_out_of_order = 0;
    frames_recovered = 0;
  }

let create ~sim ~net ~cfg ~role ~local_addr ~remote_addr ~local_cid ~remote_cid
    ~local_params () =
  let path0 =
    {
      path_id = 0;
      local_addr;
      remote_addr;
      cc = Quic.Cc.create ~initial_window:cfg.initial_window ();
      rtt = Quic.Rtt.create ();
      active = true;
    }
  in
  let c =
    {
      sim;
      net;
      cfg;
      role;
      state = Handshaking;
      local_cid;
      remote_cid;
      initial_key;
      key = 0L;
      paths = [| path0 |];
      next_pn = 0L;
      sent = Hashtbl.create 512;
      largest_acked = -1L;
      largest_acked_per_path = Array.make 8 (-1L);
      next_path_seq = Array.make 8 0L;
      largest_sent_at = 0L;
      sent_times = Hashtbl.create 1024;
      pto_backoff = 0;
      loss_alarm = None;
      ack_alarm = None;
      idle_alarm = None;
      last_activity = Sim.now sim;
      acks = Quic.Ackranges.create ();
      ack_needed = false;
      ae_since_ack = 0;
      largest_recv = -1L;
      largest_recv_at = 0L;
      last_spin_received = false;
      spin = false;
      streams = Hashtbl.create 8;
      stream_order = [];
      crypto_send = Quic.Sendbuf.create ();
      crypto_recv = Quic.Recvbuf.create ();
      crypto_acc = Buffer.create 256;
      crypto_done = false;
      max_data_local = local_params.TP.initial_max_data;
      max_data_remote = TP.default.TP.initial_max_data;
      data_sent = 0L;
      data_received = 0L;
      max_data_frame_pending = false;
      local_params;
      peer_params = None;
      ctrl = Queue.create ();
      ops = Hashtbl.create 128;
      op_stack = [];
      plugins = Hashtbl.create 4;
      plugin_order = [];
      sched = Scheduler.create ~core_fraction:cfg.core_fraction ();
      plugin_turn = false;
      cur_pn = -1L;
      cur_path = 0;
      cur_size = 0;
      cur_payload = "";
      cur_has_stream = false;
      cur_ecn_ce = false;
      recover_depth = 0;
      plugin_out = Hashtbl.create 4;
      plugin_in = Hashtbl.create 4;
      plugin_proofs = [];
      provide_plugin = (fun _ ~formula:_ -> None);
      verify_plugin = (fun ~name:_ ~bytes:_ ~proof:_ -> false);
      on_plugin_received = ignore;
      acquire_instance = (fun _ -> None);
      on_stream_data = (fun _ _ ~fin:_ -> ());
      on_message = ignore;
      on_established = ignore;
      on_closed = ignore;
      stats = make_stats ();
      created_at = Sim.now sim;
      established_at = None;
      wake_pending = false;
      negotiated = false;
      close_reason = "";
    }
  in
  ignore (run_op c Protoop.connection_init [||]);
  c

(* ------------------------------------------------------------------ *)
(* Packet building blocks                                              *)
(* ------------------------------------------------------------------ *)

let header_overhead c =
  ignore c;
  (* short header + tag; long headers add 8, accounted when used *)
  1 + 8 + 4 + Quic.Packet.tag_len

let payload_capacity c ~long =
  c.cfg.mtu - header_overhead c - (if long then 8 else 0)

(* ACK frames carry at most this many ranges on the wire; the receiver
   tracks more internally (losses leave permanent holes since
   retransmissions take fresh packet numbers). Too small a cap starves the
   sender of ack information during burst-loss episodes and produces
   spurious retransmissions. *)
let max_wire_ack_ranges = 64

let ack_frame_of c =
  match Quic.Ackranges.ranges c.acks with
  | [] -> None
  | all ->
    let ranges = List.filteri (fun i _ -> i < max_wire_ack_ranges) all in
    let largest = (List.hd ranges).Quic.Ackranges.last in
    (* how long we sat on the largest packet before acknowledging it, so
       the peer's RTT sample excludes our delayed-ack timer *)
    let delay_us =
      let default c _ =
        Int64.div (Int64.sub (Sim.now c.sim) c.largest_recv_at) 1000L
      in
      run_op c Protoop.compute_ack_delay ~default [||]
    in
    Some
      (F.Ack
         {
           largest;
           delay_us = Int64.max 0L delay_us;
           ranges =
             List.map
               (fun r -> (r.Quic.Ackranges.first, r.Quic.Ackranges.last))
               ranges;
         })

let total_stream_written c =
  Hashtbl.fold (fun _ s acc -> acc + Quic.Sendbuf.total_written s.sendb) c.streams 0

let stream_has_pending c =
  Hashtbl.fold (fun _ s acc -> acc || Quic.Sendbuf.has_pending s.sendb) c.streams false

let plugin_chunks_pending c =
  Hashtbl.fold (fun _ sb acc -> acc || Quic.Sendbuf.has_pending sb) c.plugin_out false

let core_has_data c =
  stream_has_pending c
  || Quic.Sendbuf.has_pending c.crypto_send
  || plugin_chunks_pending c
  || (not (Queue.is_empty c.ctrl))
  || c.max_data_frame_pending

let something_to_send c =
  c.ack_needed || core_has_data c || Scheduler.has_pending c.sched

(* ------------------------------------------------------------------ *)
(* Loss detection timers                                                *)
(* ------------------------------------------------------------------ *)

let oldest_in_flight c =
  Hashtbl.fold
    (fun _ sp acc ->
      match acc with
      | None -> Some sp
      | Some best -> if sp.sent_at < best.sent_at then Some sp else Some best)
    c.sent None

let on_loss_alarm_ref : (t -> unit) ref = ref (fun _ -> ())

let set_loss_alarm c =
  let default c _ =
    (match c.loss_alarm with Some ev -> Sim.cancel ev | None -> ());
    c.loss_alarm <- None;
    (match oldest_in_flight c with
    | None -> ()
    | Some sp ->
      let p = c.paths.(min sp.path_id (Array.length c.paths - 1)) in
      let pto = Quic.Rtt.pto p.rtt in
      let base_timeout =
        Int64.add
          (Int64.mul pto (Int64.of_int (1 lsl min c.pto_backoff 6)))
          (Sim.of_ms c.cfg.ack_delay_ms)
      in
      (* retransmission-policy plugins (e.g. Tail Loss Probe) replace this
         operation to shorten or reshape the timer *)
      let timeout =
        let v =
          run_op c Protoop.get_retransmission_delay
            ~default:(fun _ args -> match args.(0) with I v -> v | _ -> 0L)
            [| I base_timeout; I (i64 sp.path_id) |]
        in
        if v > 0L then v else base_timeout
      in
      let fire_at =
        Int64.max
          (Int64.add sp.sent_at timeout)
          (Int64.add (Sim.now c.sim) 1_000_000L)
      in
      c.loss_alarm <-
        Some
          (Sim.schedule_at c.sim ~at:fire_at (fun () ->
               c.loss_alarm <- None;
               !on_loss_alarm_ref c)));
    0L
  in
  ignore (run_op c Protoop.set_loss_timer ~default [||])

(* ------------------------------------------------------------------ *)
(* Frame acknowledgment / loss notifications                            *)
(* ------------------------------------------------------------------ *)

let notify_frame_fate c (fr : frame_record) ~acked =
  let lost = not acked in
  let run_plugin_notify ftype raw reservation =
    let args =
      [|
        I (if acked then 1L else 0L);
        I reservation.Scheduler.cookie;
        Buf (Bytes.of_string raw, `Ro);
      |]
    in
    ignore (run_op c Protoop.notify_frame ~param:ftype args)
  in
  match fr.frame with
  | F.Stream { id; offset; fin; data } -> (
    match Hashtbl.find_opt c.streams id with
    | None -> ()
    | Some s ->
      let len = String.length data in
      if acked then
        Quic.Sendbuf.on_acked s.sendb ~offset:(Int64.to_int offset) ~len ~fin
      else begin
        Quic.Sendbuf.on_lost s.sendb ~offset:(Int64.to_int offset) ~len ~fin;
        c.stats.pkts_retransmitted <- c.stats.pkts_retransmitted + 1
      end)
  | F.Crypto { offset; data } ->
    let len = String.length data in
    if acked then
      Quic.Sendbuf.on_acked c.crypto_send ~offset:(Int64.to_int offset) ~len
        ~fin:false
    else
      Quic.Sendbuf.on_lost c.crypto_send ~offset:(Int64.to_int offset) ~len
        ~fin:false
  | F.Plugin_chunk { plugin; offset; fin; data } -> (
    match Hashtbl.find_opt c.plugin_out plugin with
    | None -> ()
    | Some sb ->
      let len = String.length data in
      if acked then Quic.Sendbuf.on_acked sb ~offset:(Int64.to_int offset) ~len ~fin
      else Quic.Sendbuf.on_lost sb ~offset:(Int64.to_int offset) ~len ~fin)
  | F.Max_data _ -> if lost then c.max_data_frame_pending <- true
  | F.Plugin_validate _ | F.Plugin_proof _ | F.Handshake_done
  | F.Path_response _ ->
    if lost then Queue.push fr.frame c.ctrl
  | F.Unknown { ftype; raw } -> (
    match fr.reservation with
    | Some r -> run_plugin_notify ftype raw r
    | None -> ())
  | _ -> ()

let declare_lost c sp =
  Hashtbl.remove c.sent sp.pn;
  let p = c.paths.(min sp.path_id (Array.length c.paths - 1)) in
  Quic.Cc.forget_in_flight p.cc ~size:sp.size;
  let default c _ =
    Quic.Cc.shrink_on_loss p.cc ~pn:sp.pn ~largest_sent:(Int64.sub c.next_pn 1L);
    0L
  in
  ignore
    (run_op c Protoop.cc_on_packet_lost ~default
       [| I sp.pn; I (i64 sp.size); I (i64 sp.path_id) |]);
  c.stats.pkts_lost <- c.stats.pkts_lost + 1;
  c.cur_pn <- sp.pn;
  ignore (run_op c Protoop.packet_lost [| I sp.pn; I (i64 sp.path_id) |]);
  List.iter (fun fr -> notify_frame_fate c fr ~acked:false) sp.records;
  ignore (run_op c Protoop.after_packet_lost [| I sp.pn |])

let detect_losses c =
  let default c _ =
    let now = Sim.now c.sim in
    let lost = ref [] in
    Hashtbl.iter
      (fun _pn sp ->
        (* loss detection is per path, on per-path send order: with a shared
           packet-number space, cross-path reordering must not be mistaken
           for loss (kSkipped packets on the other path are not gaps) *)
        let path_largest =
          if sp.path_id < Array.length c.largest_acked_per_path then
            c.largest_acked_per_path.(sp.path_id)
          else -1L
        in
        if sp.path_seq < path_largest then begin
          let p = c.paths.(min sp.path_id (Array.length c.paths - 1)) in
          (* time threshold: 9/8 * (srtt + 4*rttvar) absorbs the queueing
             variance that plain 9/8*srtt mistakes for loss under
             bufferbloat *)
          let window =
            Int64.add (Quic.Rtt.smoothed p.rtt)
              (Int64.mul 4L (Quic.Rtt.variance p.rtt))
          in
          let threshold =
            Int64.sub now (Int64.div (Int64.mul window 9L) 8L)
          in
          if Int64.sub path_largest sp.path_seq >= 3L || sp.sent_at <= threshold
          then lost := sp :: !lost
        end)
      c.sent;
    List.iter (declare_lost c) !lost;
    i64 (List.length !lost)
  in
  ignore (run_op c Protoop.detect_lost_packets ~default [||])

let process_ack c (ack : F.ack) =
  let now = Sim.now c.sim in
  let newly = ref [] in
  List.iter
    (fun (first, last) ->
      let pn = ref last in
      while !pn >= first do
        (match Hashtbl.find_opt c.sent !pn with
        | Some sp -> newly := sp :: !newly
        | None -> ());
        pn := Int64.sub !pn 1L
      done)
    ack.F.ranges;
  let newly = List.sort (fun a b -> compare a.pn b.pn) !newly in
  if newly <> [] then begin
    let largest_newly = List.nth newly (List.length newly - 1) in
    if largest_newly.pn > c.largest_acked then c.largest_acked <- largest_newly.pn;
    (* RTT sample from the largest newly acked, if ack-eliciting *)
    if largest_newly.ack_eliciting && largest_newly.pn = ack.F.largest then begin
      let sample =
        Int64.sub (Int64.sub now largest_newly.sent_at)
          (Int64.mul ack.F.delay_us 1000L)
      in
      let p = c.paths.(min largest_newly.path_id (Array.length c.paths - 1)) in
      let default _ _ =
        Quic.Rtt.update p.rtt ~sample;
        0L
      in
      ignore
        (run_op c Protoop.update_rtt ~default
           [| I sample; I (i64 largest_newly.path_id) |])
    end;
    List.iter
      (fun sp ->
        Hashtbl.remove c.sent sp.pn;
        if sp.path_id < Array.length c.largest_acked_per_path
           && sp.path_seq > c.largest_acked_per_path.(sp.path_id)
        then c.largest_acked_per_path.(sp.path_id) <- sp.path_seq;
        let p = c.paths.(min sp.path_id (Array.length c.paths - 1)) in
        Quic.Cc.forget_in_flight p.cc ~size:sp.size;
        let default _ _ =
          Quic.Cc.grow_on_ack p.cc ~pn:sp.pn ~size:sp.size;
          0L
        in
        ignore
          (run_op c Protoop.cc_on_packet_acked ~default
             [| I sp.pn; I (i64 sp.size); I (i64 sp.path_id) |]);
        List.iter (fun fr -> notify_frame_fate c fr ~acked:true) sp.records;
        ignore (run_op c Protoop.packet_acknowledged [| I sp.pn |]))
      newly;
    c.pto_backoff <- 0;
    detect_losses c;
    set_loss_alarm c;
    wake c
  end

(* ------------------------------------------------------------------ *)
(* Handshake and plugin negotiation                                     *)
(* ------------------------------------------------------------------ *)

let request_plugin_transfer c name =
  Log.info (fun m -> m "requesting plugin %s from peer" name);
  Queue.push
    (F.Plugin_validate { plugin = name; formula = c.cfg.trust_formula })
    c.ctrl

let negotiate_plugins c =
  (* requires both the handshake completion and the peer's transport
     parameters; runs exactly once per connection *)
  match c.peer_params with
  | None -> ()
  | Some _ when c.state <> Established || c.negotiated -> ()
  | Some peer ->
    c.negotiated <- true;
    let wanted =
      let mine = c.local_params.TP.plugins_to_inject in
      let theirs = peer.TP.plugins_to_inject in
      List.fold_left
        (fun acc n -> if List.mem n acc then acc else acc @ [ n ])
        [] (mine @ theirs)
    in
    List.iter
      (fun name ->
        (* a plugin is activated on the connection only when both peers
           hold it (Section 3.4, outcome (a)); otherwise it is transferred
           for use on subsequent connections (outcome (b)) *)
        let peer_has = List.mem name peer.TP.supported_plugins in
        if Hashtbl.mem c.plugins name then begin
          if not peer_has then begin
            Log.info (fun m ->
                m "rolling back plugin %s: peer does not hold it" name);
            remove_plugin c name
          end
        end
        else if peer_has then
          match c.acquire_instance name with
          | Some inst -> (
            match attach_instance c inst with
            | _ -> Log.info (fun m -> m "injected local plugin %s" name)
            | exception Injection_failed e ->
              Log.warn (fun m -> m "failed to inject %s: %s" name e))
          | None ->
            (* not cached locally: ask the peer to provide it *)
            request_plugin_transfer c name)
      wanted;
    ignore (run_op c Protoop.plugin_negotiated [||])

(* Inject the locally available plugins this host wants on the connection
   (its own plugins_to_inject): local plugins are active from the start so
   e.g. the monitoring plugin records handshake PIs (Section 4.1). Peer
   requests are handled at negotiation time. *)
let inject_local_plugins c =
  List.iter
    (fun name ->
      if not (Hashtbl.mem c.plugins name) then
        match c.acquire_instance name with
        | Some inst -> (
          try ignore (attach_instance c inst)
          with Injection_failed e ->
            Log.warn (fun m -> m "failed to inject %s: %s" name e))
        | None -> ())
    c.local_params.TP.plugins_to_inject

let establish c =
  if c.state = Handshaking then begin
    c.state <- Established;
    c.established_at <- Some (Sim.now c.sim);
    ignore (run_op c Protoop.handshake_complete [||]);
    ignore (run_op c Protoop.connection_established [||]);
    negotiate_plugins c;
    c.on_established ();
    wake c
  end

let encode_params params =
  let blob = TP.encode params in
  let buf = Buffer.create (String.length blob + 2) in
  Buffer.add_uint16_be buf (String.length blob);
  Buffer.add_string buf blob;
  Buffer.contents buf

let try_handshake_progress c =
  if not c.crypto_done then begin
    Buffer.add_string c.crypto_acc (Quic.Recvbuf.read c.crypto_recv);
    let blob = Buffer.contents c.crypto_acc in
    begin
      if String.length blob >= 2 then begin
        let len = String.get_uint16_be blob 0 in
        if String.length blob >= 2 + len then begin
          let params = TP.decode (String.sub blob 2 len) in
          c.peer_params <- Some params;
          c.crypto_done <- true;
          c.max_data_remote <- params.TP.initial_max_data;
          ignore (run_op c Protoop.process_transport_params [||]);
          match c.role with
          | Server ->
            (* answer with our transport parameters and HANDSHAKE_DONE *)
            let blob = encode_params c.local_params in
            ignore (run_op c Protoop.write_transport_params [||]);
            Quic.Sendbuf.write c.crypto_send blob;
            Queue.push F.Handshake_done c.ctrl;
            establish c
          | Client -> negotiate_plugins c
        end
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Plugin exchange over the connection (Section 3.4)                    *)
(* ------------------------------------------------------------------ *)

let handle_plugin_validate c ~name ~formula =
  match c.provide_plugin name ~formula with
  | Some (compressed, proof) ->
    Log.info (fun m ->
        m "providing plugin %s (%d bytes compressed, %d bytes of proofs)" name
          (String.length compressed) (String.length proof));
    (* authentication paths are longer than an MTU, so the proof bundle
       travels on the plugin stream ahead of the bytecode: a small
       PLUGIN_PROOF frame announces it *)
    Queue.push
      (F.Plugin_proof { plugin = name; proof = "stream" })
      c.ctrl;
    let sb = Quic.Sendbuf.create () in
    let framed = Buffer.create (String.length proof + String.length compressed + 4) in
    Buffer.add_int32_be framed (Int32.of_int (String.length proof));
    Buffer.add_string framed proof;
    Buffer.add_string framed compressed;
    Quic.Sendbuf.write sb (Buffer.contents framed);
    Quic.Sendbuf.finish sb;
    Hashtbl.replace c.plugin_out name sb;
    wake c
  | None ->
    Queue.push (F.Plugin_proof { plugin = name; proof = "" }) c.ctrl;
    wake c

let plugin_in_buffers : (string, Buffer.t) Hashtbl.t = Hashtbl.create 8

let buffer_key c name = Printf.sprintf "%Lx/%s" c.local_cid name

let handle_plugin_chunk c ~name ~offset ~fin ~data =
  let rb =
    match Hashtbl.find_opt c.plugin_in name with
    | Some rb -> rb
    | None ->
      let rb = Quic.Recvbuf.create () in
      Hashtbl.replace c.plugin_in name rb;
      rb
  in
  Quic.Recvbuf.insert rb ~offset:(Int64.to_int offset) ~fin data;
  let acc =
    match Hashtbl.find_opt plugin_in_buffers (buffer_key c name) with
    | Some b -> b
    | None ->
      let b = Buffer.create 4096 in
      Hashtbl.replace plugin_in_buffers (buffer_key c name) b;
      b
  in
  Buffer.add_string acc (Quic.Recvbuf.read rb);
  if Quic.Recvbuf.is_finished rb then begin
    Hashtbl.remove plugin_in_buffers (buffer_key c name);
    Hashtbl.remove c.plugin_in name;
    let blob = Buffer.contents acc in
    let proof, compressed =
      if String.length blob >= 4 then begin
        let plen = Int32.to_int (String.get_int32_be blob 0) in
        if plen >= 0 && 4 + plen <= String.length blob then
          ( String.sub blob 4 plen,
            String.sub blob (4 + plen) (String.length blob - 4 - plen) )
        else ("", blob)
      end
      else ("", blob)
    in
    match Compress.Lzss.decompress compressed with
    | exception Compress.Lzss.Corrupt ->
      Log.warn (fun m -> m "plugin %s: corrupt transfer" name)
    | bytes -> (
      match Plugin.deserialize bytes with
      | exception Plugin.Malformed msg ->
        Log.warn (fun m -> m "plugin %s: malformed (%s)" name msg)
      | plugin ->
        if plugin.Plugin.name <> name then
          Log.warn (fun m -> m "plugin name mismatch in transfer")
        else if c.verify_plugin ~name ~bytes ~proof then begin
          Log.info (fun m ->
              m "plugin %s verified and stored in the local cache" name);
          (* Remote plugins are not activated on the current connection but
             offered to subsequent ones (Section 3.4). *)
          c.on_plugin_received plugin
        end
        else Log.warn (fun m -> m "plugin %s failed proof verification" name))
  end

(* ------------------------------------------------------------------ *)
(* Frame processing                                                     *)
(* ------------------------------------------------------------------ *)

let get_stream c id =
  match Hashtbl.find_opt c.streams id with
  | Some s -> s
  | None ->
    let s =
      {
        stream_id = id;
        sendb = Quic.Sendbuf.create ();
        recvb = Quic.Recvbuf.create ();
        max_stream_data_remote = c.local_params.TP.initial_max_stream_data;
        max_stream_data_local = c.local_params.TP.initial_max_stream_data;
        fin_delivered = false;
        flow_sent = 0;
      }
    in
    Hashtbl.replace c.streams id s;
    c.stream_order <- c.stream_order @ [ id ];
    ignore (run_op c Protoop.stream_opened [| I (i64 id) |]);
    s

let deliver_stream_data c s =
  let data = Quic.Recvbuf.read s.recvb in
  let finished = Quic.Recvbuf.is_finished s.recvb && not s.fin_delivered in
  if data <> "" || finished then begin
    if finished then s.fin_delivered <- true;
    ignore
      (run_op c Protoop.data_received
         [| I (i64 s.stream_id); I (i64 (String.length data)) |]);
    c.on_stream_data s.stream_id data ~fin:finished;
    if finished then
      ignore (run_op c Protoop.stream_closed [| I (i64 s.stream_id) |])
  end

let maybe_update_max_data c =
  if Int64.to_float c.data_received > 0.5 *. Int64.to_float c.max_data_local
  then begin
    let default c _ =
      c.max_data_local <-
        Int64.add c.max_data_local c.local_params.TP.initial_max_data;
      c.max_data_frame_pending <- true;
      0L
    in
    ignore (run_op c Protoop.update_max_data ~default [||]);
    wake c
  end

let process_core_frame c frame =
  match frame with
  | F.Padding _ | F.Ping -> ()
  | F.Ack ack -> process_ack c ack
  | F.Crypto { offset; data } ->
    Quic.Recvbuf.insert c.crypto_recv ~offset:(Int64.to_int offset) ~fin:false
      data;
    try_handshake_progress c
  | F.Stream { id; offset; fin; data } ->
    c.cur_has_stream <- true;
    let s = get_stream c id in
    let before = Quic.Recvbuf.contiguous s.recvb in
    Quic.Recvbuf.insert s.recvb ~offset:(Int64.to_int offset) ~fin data;
    let after = Quic.Recvbuf.contiguous s.recvb in
    c.data_received <- Int64.add c.data_received (i64 (max 0 (after - before)));
    deliver_stream_data c s;
    maybe_update_max_data c
  | F.Max_data v -> if v > c.max_data_remote then c.max_data_remote <- v
  | F.Max_stream_data { id; max } ->
    let s = get_stream c id in
    if max > s.max_stream_data_remote then s.max_stream_data_remote <- max
  | F.Connection_close { reason; _ } ->
    if c.state <> Closed then begin
      c.state <- Closed;
      c.close_reason <- reason;
      (match c.loss_alarm with Some ev -> Sim.cancel ev | None -> ());
      (match c.ack_alarm with Some ev -> Sim.cancel ev | None -> ());
      ignore (run_op c Protoop.connection_closed [||]);
      c.on_closed ()
    end
  | F.Handshake_done -> if c.role = Client then establish c
  | F.Path_challenge v -> Queue.push (F.Path_response v) c.ctrl
  | F.Path_response _ -> ignore (run_op c Protoop.validate_path [||])
  | F.Plugin_validate { plugin; formula } ->
    handle_plugin_validate c ~name:plugin ~formula
  | F.Plugin_proof { plugin; proof } ->
    c.plugin_proofs <- (plugin, proof) :: c.plugin_proofs
  | F.Plugin_chunk { plugin; offset; fin; data } ->
    handle_plugin_chunk c ~name:plugin ~offset ~fin ~data
  | F.Unknown _ -> assert false (* handled by the caller via protoops *)

(* ------------------------------------------------------------------ *)
(* Packet sending                                                       *)
(* ------------------------------------------------------------------ *)

let native_select_path c _ =
  (* lowest-id active path with congestion window available, else path 0 *)
  let n = Array.length c.paths in
  let rec find k =
    if k >= n then 0
    else
      let p = c.paths.(k) in
      if p.active && Quic.Cc.available p.cc > header_overhead c then k
      else find (k + 1)
  in
  i64 (find 0)

let conn_flow_allowance c = Int64.to_int (Int64.sub c.max_data_remote c.data_sent)

let native_schedule_next_stream c _ =
  let allowed_new = conn_flow_allowance c > 0 in
  let eligible id =
    match Hashtbl.find_opt c.streams id with
    | None -> false
    | Some s ->
      Quic.Sendbuf.has_retransmissions s.sendb
      || (Quic.Sendbuf.has_new s.sendb && allowed_new)
  in
  let rec rotate tried order =
    match order with
    | [] -> -1
    | id :: rest ->
      if eligible id then begin
        c.stream_order <- rest @ tried @ [ id ];
        id
      end
      else rotate (tried @ [ id ]) rest
  in
  i64 (rotate [] c.stream_order)

let native_set_spin_bit c _ =
  (* client inverts the last received spin value, server echoes it — the
     Spin Bit of [Trammell & Kuehlewind] that monitoring boxes observe *)
  (match c.role with
  | Client -> c.spin <- not c.last_spin_received
  | Server -> c.spin <- c.last_spin_received);
  0L

(* Stream frame wire overhead estimate: type + id + offset + length. *)
let stream_frame_overhead = 14

let build_and_send_packet c =
  let pid = to_i (run_op c Protoop.select_path ~default:native_select_path [||]) in
  let p =
    match path c pid with Some p when p.active -> p | _ -> default_path c
  in
  let long = c.state = Handshaking in
  let capacity = payload_capacity c ~long in
  let overhead = header_overhead c + if long then 8 else 0 in
  let cc_room = Quic.Cc.available p.cc - overhead in
  (* Avoid runt packets: when the congestion window has less than a full
     packet of room and more data than that is waiting, hold ack-eliciting
     data until acknowledgments free window space. *)
  let pending_bytes =
    Hashtbl.fold
      (fun _ s acc -> acc + Quic.Sendbuf.pending_bytes s.sendb)
      c.streams
      (Quic.Sendbuf.pending_bytes c.crypto_send)
  in
  let ae_room =
    if cc_room >= capacity || pending_bytes <= max 0 cc_room then
      min capacity (max 0 cc_room)
    else 0
  in
  let room = ref capacity in
  let room_ae = ref ae_room in
  let frames = ref [] in
  let records = ref [] in
  let any_ae = ref false in
  let add ?reservation frame =
    let sz = F.wire_size frame in
    frames := frame :: !frames;
    records := { frame; reservation } :: !records;
    room := !room - sz;
    let ae =
      match reservation with
      | Some r -> r.Scheduler.ack_eliciting
      | None -> F.is_ack_eliciting frame
    in
    if ae then begin
      room_ae := !room_ae - sz;
      any_ae := true
    end
  in
  c.cur_has_stream <- false;
  ignore (run_op c Protoop.before_sending_packet [||]);
  (* acknowledgments ride along whenever owed *)
  let ack_included = ref false in
  if c.ack_needed then (
    match ack_frame_of c with
    | Some f when F.wire_size f <= !room ->
      add f;
      ack_included := true
    | _ -> ());
  (* control frames *)
  let rec drain_ctrl () =
    if not (Queue.is_empty c.ctrl) then begin
      let f = Queue.peek c.ctrl in
      let sz = F.wire_size f in
      let fits =
        if F.is_ack_eliciting f then sz <= !room_ae && sz <= !room
        else sz <= !room
      in
      if fits then begin
        ignore (Queue.pop c.ctrl);
        add f;
        drain_ctrl ()
      end
    end
  in
  drain_ctrl ();
  (* handshake data *)
  let rec drain_crypto () =
    if !room_ae > 16 && Quic.Sendbuf.has_pending c.crypto_send then begin
      match Quic.Sendbuf.next_chunk c.crypto_send ~max_len:(!room_ae - 12) with
      | Some (off, data, _fin) ->
        add (F.Crypto { offset = i64 off; data });
        drain_crypto ()
      | None -> ()
    end
  in
  drain_crypto ();
  if c.max_data_frame_pending && !room_ae > 12 then begin
    add (F.Max_data c.max_data_local);
    c.max_data_frame_pending <- false
  end;
  (* plugin bytecode transfer (PLUGIN frames) *)
  let drain_plugin_chunks () =
    Hashtbl.iter
      (fun name sb ->
        let continue = ref true in
        while !continue && !room_ae > 64 && Quic.Sendbuf.has_pending sb do
          match
            Quic.Sendbuf.next_chunk sb
              ~max_len:(!room_ae - 32 - String.length name)
          with
          | Some (off, data, fin) ->
            add (F.Plugin_chunk { plugin = name; offset = i64 off; fin; data })
          | None -> continue := false
        done)
      c.plugin_out
  in
  drain_plugin_chunks ();
  (* plugin-reserved frames and stream data, interleaved so core frames
     keep their guaranteed share while plugins cannot be starved either *)
  let fill_plugins () =
    let budget = min !room !room_ae in
    if budget > 0 && Scheduler.has_pending c.sched then
      let taken =
        Scheduler.take c.sched ~max_frame:capacity ~budget ~core_has_data:false
      in
      List.iter
        (fun (r : Scheduler.reservation) ->
          let out = Bytes.make r.size '\000' in
          let written =
            to_i
              (run_op c Protoop.write_frame ~param:r.ftype
                 [| Buf (out, `Rw); I (i64 r.size); I r.cookie |])
          in
          Log.debug (fun m ->
              m "write_frame 0x%x wrote %d of %d" r.Scheduler.ftype written
                r.Scheduler.size);
          if written > 0 && written <= r.size then
            add ~reservation:r
              (F.Unknown { ftype = r.ftype; raw = Bytes.sub_string out 0 written }))
        taken
  in
  let fill_streams () =
    let continue = ref true in
    while !continue && !room_ae > stream_frame_overhead + 1 do
      let sid =
        to_i
          (run_op c Protoop.schedule_next_stream ~default:native_schedule_next_stream
             [||])
      in
      if sid < 0 then continue := false
      else begin
        let s = get_stream c sid in
        let cap = !room_ae - stream_frame_overhead in
        let cap =
          to_i
            (run_op c Protoop.stream_bytes_max
               ~default:(fun _ args -> match args.(0) with I v -> v | _ -> 0L)
               [| I (i64 cap) |])
        in
        let cap =
          if Quic.Sendbuf.has_retransmissions s.sendb then cap
          else min cap (conn_flow_allowance c)
        in
        if cap <= 0 then begin
          if conn_flow_allowance c <= 0 then
            ignore (run_op c Protoop.stream_data_blocked [| I (i64 sid) |]);
          continue := false
        end
        else
          match Quic.Sendbuf.next_chunk s.sendb ~max_len:cap with
          | None -> continue := false
          | Some (off, data, fin) ->
            add (F.Stream { id = sid; offset = i64 off; fin; data });
            c.cur_has_stream <- true;
            let sent_end = off + String.length data in
            if sent_end > s.flow_sent then begin
              c.data_sent <-
                Int64.add c.data_sent (i64 (sent_end - s.flow_sent));
              s.flow_sent <- sent_end
            end;
            if String.length data = 0 && not fin then continue := false
      end
    done
  in
  let plugin_pending = Scheduler.has_pending c.sched in
  let core_data = stream_has_pending c in
  if plugin_pending && (c.plugin_turn || not core_data) then begin
    fill_plugins ();
    c.plugin_turn <- false
  end;
  fill_streams ();
  if Scheduler.has_pending c.sched then begin
    if core_data then c.plugin_turn <- true;
    fill_plugins ()
  end;
  let frames = List.rev !frames in
  if frames = [] then false
  else begin
    let payload =
      let buf = Buffer.create capacity in
      List.iter (F.serialize buf) frames;
      Buffer.contents buf
    in
    let pn = c.next_pn in
    c.next_pn <- Int64.add c.next_pn 1L;
    ignore (run_op c Protoop.set_spin_bit ~default:native_set_spin_bit [||]);
    ignore (run_op c Protoop.header_prepared [| I pn |]);
    let header =
      {
        Quic.Packet.ptype = (if long then Quic.Packet.Initial else Quic.Packet.One_rtt);
        spin = c.spin;
        dcid = c.remote_cid;
        scid = c.local_cid;
        pn;
      }
    in
    let key = if long then c.initial_key else c.key in
    let wire = Quic.Packet.protect ~key { header; payload } in
    let size = String.length wire in
    c.cur_pn <- pn;
    c.cur_path <- p.path_id;
    c.cur_size <- size;
    c.cur_payload <- payload;
    c.stats.pkts_sent <- c.stats.pkts_sent + 1;
    c.stats.bytes_sent <- c.stats.bytes_sent + size;
    c.last_activity <- Sim.now c.sim;
    c.largest_sent_at <- Sim.now c.sim;
    let ack_eliciting = !any_ae in
    if ack_eliciting then begin
      Hashtbl.replace c.sent_times pn (Sim.now c.sim);
      if Int64.rem pn 4096L = 0L then begin
        (* bound the retained history *)
        let horizon = Int64.sub pn 8192L in
        Hashtbl.iter
          (fun k _ -> if k < horizon then Hashtbl.remove c.sent_times k)
          (Hashtbl.copy c.sent_times)
      end;
      let path_seq =
        if p.path_id < Array.length c.next_path_seq then begin
          let s = c.next_path_seq.(p.path_id) in
          c.next_path_seq.(p.path_id) <- Int64.add s 1L;
          s
        end
        else pn
      in
      Hashtbl.replace c.sent pn
        {
          pn;
          sent_at = Sim.now c.sim;
          size;
          records = List.rev !records;
          path_id = p.path_id;
          path_seq;
          ack_eliciting;
        };
      let default _ _ =
        Quic.Cc.on_packet_sent p.cc ~size;
        0L
      in
      ignore (run_op c Protoop.cc_on_packet_sent ~default [| I (i64 size) |]);
      set_loss_alarm c
    end;
    if !ack_included then begin
      c.ack_needed <- false;
      c.ae_since_ack <- 0;
      (match c.ack_alarm with Some ev -> Sim.cancel ev | None -> ());
      c.ack_alarm <- None
    end;
    Net.send c.net
      {
        Net.src = p.local_addr;
        dst = p.remote_addr;
        size = size + ip_udp_overhead;
        payload = Quic_packet wire;
      };
    ignore
      (run_op c Protoop.packet_was_sent
         [| I pn; I (i64 p.path_id); I (i64 size) |]);
    true
  end

let send_pending c =
  if is_open c then begin
    let budget = ref 512 in
    while !budget > 0 && is_open c && build_and_send_packet c do
      decr budget
    done
  end

let wake_impl c =
  if (not c.wake_pending) && is_open c then begin
    ignore (run_op c Protoop.set_next_wake_time [||]);
    c.wake_pending <- true;
    ignore
      (Sim.schedule c.sim ~delay:0L (fun () ->
           c.wake_pending <- false;
           send_pending c))
  end

let () = wake_ref := wake_impl

(* ------------------------------------------------------------------ *)
(* Loss alarm behaviour                                                 *)
(* ------------------------------------------------------------------ *)

let on_loss_alarm c =
  let default c _ =
    if Hashtbl.length c.sent > 0 then begin
      c.pto_backoff <- c.pto_backoff + 1;
      if c.pto_backoff <= 1 then begin
        (* tail-probe style: retransmit the oldest in-flight packet *)
        ignore (run_op c Protoop.send_probe [||]);
        match oldest_in_flight c with
        | Some sp -> declare_lost c sp
        | None -> ()
      end
      else begin
        (* full retransmission timeout *)
        ignore (run_op c Protoop.retransmission_timeout [||]);
        let all = Hashtbl.fold (fun _ sp acc -> sp :: acc) c.sent [] in
        List.iter (declare_lost c) all;
        Array.iter
          (fun p ->
            let default _ _ =
              Quic.Cc.on_retransmission_timeout p.cc;
              0L
            in
            ignore (run_op c Protoop.cc_on_rto ~default [| I (i64 p.path_id) |]))
          c.paths
      end;
      set_loss_alarm c;
      wake c
    end;
    0L
  in
  ignore (run_op c Protoop.on_loss_timer ~default [||])

let () = on_loss_alarm_ref := on_loss_alarm

(* ------------------------------------------------------------------ *)
(* Receiving                                                            *)
(* ------------------------------------------------------------------ *)

let varint_len_at s pos = 1 lsl (Char.code s.[pos] lsr 6)

(* Process the frames of a (possibly recovered) packet payload. Returns
   whether any frame was ack-eliciting. *)
let process_payload c ~pn payload =
  let len = String.length payload in
  let pos = ref 0 in
  let ae = ref false in
  while !pos < len && is_open c do
    match F.parse payload !pos with
    | exception _ ->
      fail_connection c "malformed frame";
      pos := len
    | F.Unknown { ftype; raw }, _ ->
      if not (Hashtbl.mem c.ops (Protoop.parse_frame, Some ftype)) then begin
        fail_connection c (Printf.sprintf "unknown frame type 0x%x" ftype);
        pos := len
      end
      else begin
        let body = Bytes.of_string raw in
        let ret =
          to_i
            (run_op c Protoop.parse_frame ~param:ftype
               [| Buf (body, `Ro); I (i64 (Bytes.length body)) |])
        in
        (* bit 28 of the parse result marks a non-ack-eliciting frame
           (MP_ACK-style); the low bits give the consumed length *)
        let non_ae = ret land 0x10000000 <> 0 in
        let consumed = ret land 0x0FFFFFFF in
        if consumed <= 0 || consumed > Bytes.length body then begin
          if is_open c then
            fail_connection c
              (Printf.sprintf "plugin failed to parse frame 0x%x" ftype);
          pos := len
        end
        else begin
          Log.debug (fun m -> m "plugin frame 0x%x consumed %d" ftype consumed);
          if not non_ae then ae := true;
          let frame_body = Bytes.sub body 0 consumed in
          ignore
            (run_op c Protoop.process_frame ~param:ftype
               [| Buf (frame_body, `Ro); I (i64 consumed); I pn |]);
          pos := !pos + varint_len_at payload !pos + consumed
        end
      end
    | frame, next ->
      if F.is_ack_eliciting frame then ae := true;
      ignore
        (run_op c Protoop.process_frame ~param:(F.frame_type frame)
           ~default:(fun c _ ->
             process_core_frame c frame;
             0L)
           [| I pn |]);
      pos := next
  done;
  !ae

(* A FEC plugin recovered a lost packet: [data] is pn(4 bytes) || payload.
   The packet is processed as if it had been received, and its number is
   acknowledged so the peer does not retransmit (QUIC-FEC behaviour). *)
let process_recovered c data =
  if String.length data >= 4 && c.recover_depth < 8 then begin
    let pn =
      Int64.logand (Int64.of_int32 (String.get_int32_be data 0)) 0xffffffffL
    in
    if not (Quic.Ackranges.contains c.acks pn) then begin
      c.recover_depth <- c.recover_depth + 1;
      c.stats.frames_recovered <- c.stats.frames_recovered + 1;
      Quic.Ackranges.add c.acks pn;
      c.ack_needed <- true;
      let saved_pn = c.cur_pn and saved_payload = c.cur_payload in
      let payload = String.sub data 4 (String.length data - 4) in
      c.cur_pn <- pn;
      c.cur_payload <- payload;
      ignore (process_payload c ~pn payload);
      c.cur_pn <- saved_pn;
      c.cur_payload <- saved_payload;
      c.recover_depth <- c.recover_depth - 1;
      wake c
    end
  end

let () = process_recovered_ref := process_recovered

(* Idle timeout (the idle_timeout transport parameter): the connection
   closes silently when nothing authenticated arrives for the negotiated
   period. Activity rearms lazily: the alarm checks the last-activity
   stamp when it fires rather than being rescheduled per packet. *)
let rec arm_idle_alarm c =
  if c.idle_alarm = None && is_open c then begin
    let period =
      let ours = c.local_params.TP.idle_timeout_ms in
      let theirs =
        match c.peer_params with
        | Some p -> p.TP.idle_timeout_ms
        | None -> ours
      in
      Sim.of_ms (float_of_int (min ours theirs))
    in
    if period > 0L then
      c.idle_alarm <-
        Some
          (Sim.schedule_at c.sim ~at:(Int64.add c.last_activity period)
             (fun () ->
               c.idle_alarm <- None;
               if is_open c then
                 if Int64.sub (Sim.now c.sim) c.last_activity >= period then begin
                   ignore (run_op c Protoop.idle_timeout_event [||]);
                   c.state <- Closed;
                   c.close_reason <- "idle timeout";
                   (match c.loss_alarm with Some ev -> Sim.cancel ev | None -> ());
                   (match c.ack_alarm with Some ev -> Sim.cancel ev | None -> ());
                   ignore (run_op c Protoop.connection_closed [||]);
                   c.on_closed ()
                 end
                 else arm_idle_alarm c))
  end

let schedule_ack_alarm c =
  if c.ack_alarm = None then
    c.ack_alarm <-
      Some
        (Sim.schedule c.sim ~delay:(Sim.of_ms c.cfg.ack_delay_ms) (fun () ->
             c.ack_alarm <- None;
             if c.ack_needed && is_open c then send_pending c))

let receive_datagram c (dg : Net.datagram) =
  if is_open c then begin
    ignore (run_op c Protoop.incoming_datagram [| I (i64 dg.Net.size) |]);
    let ce, payload_in =
      match dg.Net.payload with
      | Net.Ce inner -> (true, inner)
      | p -> (false, p)
    in
    match payload_in with
    | Quic_packet wire -> (
      let long = String.length wire > 0 && Char.code wire.[0] land 0x80 <> 0 in
      let key = if long then c.initial_key else c.key in
      match Quic.Packet.unprotect ~key wire with
      | exception (Quic.Packet.Authentication_failed | Quic.Packet.Malformed) ->
        Log.debug (fun m -> m "dropping unauthenticated packet")
      | { header; payload }, _ ->
        if header.Quic.Packet.dcid = c.local_cid then begin
          let pn = header.Quic.Packet.pn in
          if not (Quic.Ackranges.contains c.acks pn) then begin
            c.stats.pkts_received <- c.stats.pkts_received + 1;
            c.stats.bytes_received <- c.stats.bytes_received + String.length wire;
            if pn < c.largest_recv then
              c.stats.pkts_out_of_order <- c.stats.pkts_out_of_order + 1
            else begin
              c.largest_recv <- pn;
              c.largest_recv_at <- Sim.now c.sim
            end;
            if header.Quic.Packet.ptype = Quic.Packet.One_rtt then
              c.last_spin_received <- header.Quic.Packet.spin;
            let pid =
              let found = ref (-1) in
              Array.iter
                (fun p -> if p.remote_addr = dg.Net.src then found := p.path_id)
                c.paths;
              if !found >= 0 then !found
              else if pn < c.largest_recv then 0 (* stale straggler: ignore *)
              else begin
                (* the newest authenticated packet, from an unknown source
                   address: the connection is bound to CIDs, not to a
                   4-tuple, so follow the peer there (NAT rebinding,
                   Section 4.3) *)
                Log.info (fun m ->
                    m "peer migrated: %d -> %d" (default_path c).remote_addr
                      dg.Net.src);
                (default_path c).remote_addr <- dg.Net.src;
                ignore (run_op c Protoop.validate_path [| I (i64 dg.Net.src) |]);
                0
              end
            in
            c.cur_pn <- pn;
            c.cur_path <- pid;
            c.cur_size <- String.length wire;
            c.cur_payload <- payload;
            c.cur_has_stream <- false;
            c.cur_ecn_ce <- ce;
            c.last_activity <- Sim.now c.sim;
            arm_idle_alarm c;
            Quic.Ackranges.add c.acks pn;
            ignore (run_op c Protoop.update_idle_timeout [||]);
            ignore (run_op c Protoop.received_packet [| I pn; I (i64 pid) |]);
            let ae = process_payload c ~pn payload in
            ignore (run_op c Protoop.after_decode_frames [||]);
            if ae && is_open c then begin
              c.ack_needed <- true;
              c.ae_since_ack <- c.ae_since_ack + 1;
              let default c _ =
                if c.ae_since_ack >= 2 then wake c else schedule_ack_alarm c;
                0L
              in
              ignore (run_op c Protoop.update_ack_needed ~default [||])
            end;
            if is_open c && something_to_send c then wake c
          end
        end)
    | _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Application interface                                                *)
(* ------------------------------------------------------------------ *)

let write_stream c ~id ?(fin = false) data =
  let s = get_stream c id in
  Quic.Sendbuf.write s.sendb data;
  if fin then Quic.Sendbuf.finish s.sendb;
  wake c

let stream_fully_acked c ~id =
  match Hashtbl.find_opt c.streams id with
  | None -> false
  | Some s -> Quic.Sendbuf.all_acked s.sendb

let close c ~reason =
  if is_open c then begin
    ignore (run_op c Protoop.connection_closing [||]);
    Queue.push (F.Connection_close { code = 0; reason }) c.ctrl;
    wake c;
    let pto = Quic.Rtt.pto (default_path c).rtt in
    ignore
      (Sim.schedule c.sim ~delay:(Int64.mul 3L pto) (fun () ->
           if c.state <> Closed then begin
             c.state <- Closed;
             (match c.loss_alarm with Some ev -> Sim.cancel ev | None -> ());
             (match c.ack_alarm with Some ev -> Sim.cancel ev | None -> ());
             ignore (run_op c Protoop.connection_closed [||]);
             c.on_closed ()
           end))
  end

let start_client c =
  assert (c.role = Client);
  ignore (run_op c Protoop.write_transport_params [||]);
  Quic.Sendbuf.write c.crypto_send (encode_params c.local_params);
  wake c

(* Simulate a NAT rebinding / interface change: subsequent packets on the
   default path leave from [new_local]. The peer follows the CID to the new
   address (Section 4.3's "resilient to events such as NAT rebinding"). *)
let rebind c ~new_local =
  (default_path c).local_addr <- new_local;
  wake c

(* Per-connection entry point used by the endpoint demultiplexer. *)
let local_cid c = c.local_cid

let state c = c.state
let stats c = c.stats
let role c = c.role
let now c = Sim.now c.sim
let plugin_names c = c.plugin_order
let has_plugin c name = Hashtbl.mem c.plugins name
let peer_params c = c.peer_params
