lib/plugins/fec.ml: Dsl Plc Pquic Printf Quic
