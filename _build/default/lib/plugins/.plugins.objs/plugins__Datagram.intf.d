lib/plugins/datagram.mli: Pquic
