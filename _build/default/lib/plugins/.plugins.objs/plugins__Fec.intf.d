lib/plugins/fec.mli: Pquic
