lib/plugins/dsl.mli: Plc Pquic
