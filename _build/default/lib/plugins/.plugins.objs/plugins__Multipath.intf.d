lib/plugins/multipath.mli: Pquic
