lib/plugins/monitoring.ml: Dsl Int64 Pquic Quic String
