lib/plugins/extras.mli: Pquic
