lib/plugins/extras.ml: Dsl Pquic
