lib/plugins/dsl.ml: Ebpf Plc Pquic
