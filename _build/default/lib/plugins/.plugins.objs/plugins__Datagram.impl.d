lib/plugins/datagram.ml: Bytes Dsl Int64 Pquic Quic String
