lib/plugins/multipath.ml: Dsl Int64 Plc Pquic Quic
