lib/plugins/monitoring.mli: Pquic
