lib/compress/lzss.mli:
