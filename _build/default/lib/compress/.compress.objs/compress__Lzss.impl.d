lib/compress/lzss.ml: Buffer Bytes Char Hashtbl List Option String
