(** LZSS compression, used to shrink serialized plugins before exchanging
    them over a connection (Table 2's "compressed size": pluglets of a
    plugin share duplicated code, which dictionary compression exploits
    like the paper's ZIP).

    Format: flag bytes each governing the next 8 items, LSB first; bit 0 =
    literal byte, bit 1 = 2-byte back-reference [offset:12 | length-3:4]
    into a 4 KiB window. *)

val compress : string -> string

exception Corrupt

val decompress : string -> string
(** Inverse of {!compress}.
    @raise Corrupt when a back-reference points outside the produced
    output. *)
