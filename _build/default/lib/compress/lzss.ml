(* LZSS compression, used to shrink plugins before exchanging them over a
   connection (Section 4.6 / Table 2: pluglets of a plugin share duplicated
   code, which dictionary compression exploits, like the paper's ZIP).

   Format: a stream of flag bytes, each governing the next 8 items, LSB
   first; flag bit 0 = literal byte, 1 = back-reference of 2 bytes
   [offset:12 | length-3:4] into a 4 KiB window (match length 3..18). *)

let window_size = 4096
let min_match = 3
let max_match = 18

let compress input =
  let n = String.length input in
  let out = Buffer.create (n / 2 + 16) in
  (* index of 3-byte sequences -> recent positions *)
  let table : (int, int list) Hashtbl.t = Hashtbl.create 4096 in
  let key i =
    Char.code input.[i] lor (Char.code input.[i + 1] lsl 8)
    lor (Char.code input.[i + 2] lsl 16)
  in
  let find_match i =
    if i + min_match > n then None
    else
      match Hashtbl.find_opt table (key i) with
      | None -> None
      | Some candidates ->
        let best = ref None in
        List.iter
          (fun j ->
            if i - j <= window_size && i - j > 0 then begin
              let len = ref 0 in
              let limit = min max_match (n - i) in
              while !len < limit && input.[j + !len] = input.[i + !len] do
                incr len
              done;
              match !best with
              | Some (_, blen) when blen >= !len -> ()
              | _ -> if !len >= min_match then best := Some (j, !len)
            end)
          candidates;
        !best
  in
  let remember i =
    if i + min_match <= n then
      let k = key i in
      let prev = Option.value ~default:[] (Hashtbl.find_opt table k) in
      let prev = if List.length prev > 16 then List.filteri (fun i _ -> i < 16) prev else prev in
      Hashtbl.replace table k (i :: prev)
  in
  let flags = ref 0 in
  let nflags = ref 0 in
  let pending = Buffer.create 64 in
  let flush_group () =
    if !nflags > 0 then begin
      Buffer.add_uint8 out !flags;
      Buffer.add_buffer out pending;
      Buffer.clear pending;
      flags := 0;
      nflags := 0
    end
  in
  let add_item is_ref bytes =
    if is_ref then flags := !flags lor (1 lsl !nflags);
    Buffer.add_string pending bytes;
    incr nflags;
    if !nflags = 8 then flush_group ()
  in
  let i = ref 0 in
  while !i < n do
    (match find_match !i with
    | Some (j, len) ->
      let offset = !i - j in
      let word = (offset lsl 4) lor (len - min_match) in
      let b = Bytes.create 2 in
      Bytes.set_uint16_be b 0 word;
      add_item true (Bytes.to_string b);
      for k = !i to !i + len - 1 do
        remember k
      done;
      i := !i + len
    | None ->
      add_item false (String.make 1 input.[!i]);
      remember !i;
      incr i)
  done;
  flush_group ();
  Buffer.contents out

exception Corrupt

let decompress input =
  let n = String.length input in
  let out = Buffer.create (n * 3) in
  let pos = ref 0 in
  while !pos < n do
    let flags = Char.code input.[!pos] in
    incr pos;
    let k = ref 0 in
    while !k < 8 && !pos < n do
      if flags land (1 lsl !k) <> 0 then begin
        if !pos + 2 > n then raise Corrupt;
        let word = String.get_uint16_be input !pos in
        pos := !pos + 2;
        let offset = word lsr 4 and len = (word land 0xf) + min_match in
        let start = Buffer.length out - offset in
        if start < 0 then raise Corrupt;
        for j = 0 to len - 1 do
          Buffer.add_char out (Buffer.nth out (start + j))
        done
      end
      else begin
        Buffer.add_char out input.[!pos];
        incr pos
      end;
      incr k
    done
  done;
  Buffer.contents out
