(* Conservative termination checker for pluglets, standing in for the T2
   prover of Section 5. A pluglet is *proven terminating* when every loop in
   it is a [For] (trip count fixed before entry, induction variable never
   reassigned in the body) — helper functions, like T2's "external
   functions", are assumed to terminate. A [While] loop, or a [For] whose
   body writes its induction variable, yields [Unproven] with the reason,
   exactly the situation where the paper authors had to rewrite pluglets
   (bounding list traversals) or gave up (3 multipath pluglets). *)

type verdict = Proven | Unproven of string

let rec check_block loop_vars b =
  List.fold_left
    (fun acc s -> match acc with Unproven _ -> acc | Proven -> check_stmt loop_vars s)
    Proven b

and check_stmt loop_vars = function
  | Ast.Let (x, _) | Ast.Assign (x, _) ->
    if List.mem x loop_vars then
      Unproven (Printf.sprintf "induction variable %s is reassigned" x)
    else Proven
  | Ast.Store _ | Ast.Return _ | Ast.Expr _ -> Proven
  | Ast.If (_, t, f) -> (
    match check_block loop_vars t with
    | Proven -> check_block loop_vars f
    | u -> u)
  | Ast.While _ -> Unproven "contains an unbounded while loop"
  | Ast.For (x, _, _, body) -> check_block (x :: loop_vars) body

let check (f : Ast.func) = check_block [] f.body

let is_proven f = check f = Proven

let pp_verdict ppf = function
  | Proven -> Fmt.string ppf "proven terminating"
  | Unproven why -> Fmt.pf ppf "not proven (%s)" why
