module Insn = Ebpf.Insn
(* Stack-machine compilation of the plugin language to eBPF bytecode.

   Locals live in fixed frame-pointer-relative slots; expression temporaries
   in slots above them (depth is known statically, so the Verifier's static
   stack check covers every access). Results are produced in r0; helper
   calls follow the eBPF convention (args r1..r5, result r0, r1-r5
   clobbered). Jumps are emitted against symbolic labels and resolved to
   slot-relative offsets at the end, since Ld_imm64 occupies two slots. *)

exception Error of string

let err fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

type jitem =
  | Ins of Insn.t
  | Lbl of int
  | Ja_l of int
  | Jcond_l of Insn.cond * Insn.reg * Insn.operand * int

type env = {
  helpers : (string * int) list;        (* helper name -> id *)
  mutable locals : (string * int) list; (* name -> slot index *)
  mutable nlocals : int;
  mutable max_depth : int;
  mutable next_label : int;
  buf : jitem list ref;
}

let emit env it = env.buf := it :: !(env.buf)
let fresh_label env =
  let l = env.next_label in
  env.next_label <- l + 1;
  l

let local_offset slot = -8 * (slot + 1)

let temp_offset env depth =
  let off = -8 * (env.nlocals + depth + 1) in
  if depth + 1 > env.max_depth then env.max_depth <- depth + 1;
  off

let lookup_local env x =
  match List.assoc_opt x env.locals with
  | Some slot -> slot
  | None -> err "unbound variable %s" x

(* Scoping is flat per function: re-declaring a name (e.g. the induction
   variable of two successive For loops) reuses its slot. *)
let declare_local env x =
  match List.assoc_opt x env.locals with
  | Some slot -> slot
  | None ->
    let slot = env.nlocals in
    env.locals <- (x, slot) :: env.locals;
    env.nlocals <- env.nlocals + 1;
    slot

let imm_fits_i32 v = v >= -0x8000_0000L && v <= 0x7fff_ffffL

let load_const env r vv =
  if imm_fits_i32 vv then
    emit env (Ins (Insn.Alu64 (Insn.Mov, r, Insn.Imm (Int64.to_int32 vv))))
  else emit env (Ins (Insn.Ld_imm64 (r, vv)))

let cond_of_binop = function
  | Ast.Eq -> Some Insn.Jeq
  | Ast.Ne -> Some Insn.Jne
  | Ast.Lt -> Some Insn.Jlt
  | Ast.Le -> Some Insn.Jle
  | Ast.Gt -> Some Insn.Jgt
  | Ast.Ge -> Some Insn.Jge
  | Ast.Slt -> Some Insn.Jslt
  | Ast.Sle -> Some Insn.Jsle
  | Ast.Sgt -> Some Insn.Jsgt
  | Ast.Sge -> Some Insn.Jsge
  | _ -> None

let alu_of_binop = function
  | Ast.Add -> Insn.Add
  | Ast.Sub -> Insn.Sub
  | Ast.Mul -> Insn.Mul
  | Ast.Div -> Insn.Div
  | Ast.Mod -> Insn.Mod
  | Ast.And -> Insn.And
  | Ast.Or -> Insn.Or
  | Ast.Xor -> Insn.Xor
  | Ast.Shl -> Insn.Lsh
  | Ast.Shr -> Insn.Rsh
  | op -> err "binop %s is not an ALU operation" (Ast.binop_name op)

(* Evaluate [e]; result in r0. [depth] temporaries are live below. *)
let rec compile_expr env depth e =
  match e with
  | Ast.Const vv -> load_const env 0 vv
  | Ast.Var x ->
    let slot = lookup_local env x in
    emit env (Ins (Insn.Ldx (Insn.W64, 0, Insn.fp, local_offset slot)))
  | Ast.Bin (op, a, b) -> (
    compile_expr env depth a;
    let tmp = temp_offset env depth in
    emit env (Ins (Insn.Stx (Insn.W64, Insn.fp, tmp, 0)));
    compile_expr env (depth + 1) b;
    emit env (Ins (Insn.Alu64 (Insn.Mov, 1, Insn.Reg 0)));
    emit env (Ins (Insn.Ldx (Insn.W64, 0, Insn.fp, tmp)));
    (* r0 = a, r1 = b *)
    match cond_of_binop op with
    | Some c ->
      let l_true = fresh_label env and l_end = fresh_label env in
      emit env (Jcond_l (c, 0, Insn.Reg 1, l_true));
      emit env (Ins (Insn.Alu64 (Insn.Mov, 0, Insn.Imm 0l)));
      emit env (Ja_l l_end);
      emit env (Lbl l_true);
      emit env (Ins (Insn.Alu64 (Insn.Mov, 0, Insn.Imm 1l)));
      emit env (Lbl l_end)
    | None -> emit env (Ins (Insn.Alu64 (alu_of_binop op, 0, Insn.Reg 1))))
  | Ast.Not e ->
    compile_expr env depth e;
    let l_zero = fresh_label env and l_end = fresh_label env in
    emit env (Jcond_l (Insn.Jeq, 0, Insn.Imm 0l, l_zero));
    emit env (Ins (Insn.Alu64 (Insn.Mov, 0, Insn.Imm 0l)));
    emit env (Ja_l l_end);
    emit env (Lbl l_zero);
    emit env (Ins (Insn.Alu64 (Insn.Mov, 0, Insn.Imm 1l)));
    emit env (Lbl l_end)
  | Ast.Load (sz, addr) ->
    compile_expr env depth addr;
    emit env (Ins (Insn.Ldx (sz, 0, 0, 0)))
  | Ast.Call (fname, args) ->
    let nargs = List.length args in
    if nargs > 5 then err "helper %s called with %d arguments (max 5)" fname nargs;
    let id =
      match List.assoc_opt fname env.helpers with
      | Some id -> id
      | None -> err "unknown helper %s" fname
    in
    List.iteri
      (fun k arg ->
        compile_expr env (depth + k) arg;
        emit env (Ins (Insn.Stx (Insn.W64, Insn.fp, temp_offset env (depth + k), 0))))
      args;
    List.iteri
      (fun k _ ->
        emit env
          (Ins (Insn.Ldx (Insn.W64, k + 1, Insn.fp, temp_offset env (depth + k)))))
      args;
    emit env (Ins (Insn.Call id))

let rec compile_stmt env s =
  match s with
  | Ast.Let (x, e) ->
    compile_expr env 0 e;
    let slot = declare_local env x in
    emit env (Ins (Insn.Stx (Insn.W64, Insn.fp, local_offset slot, 0)))
  | Ast.Assign (x, e) ->
    let slot = lookup_local env x in
    compile_expr env 0 e;
    emit env (Ins (Insn.Stx (Insn.W64, Insn.fp, local_offset slot, 0)))
  | Ast.Store (sz, addr, value) ->
    compile_expr env 0 addr;
    let tmp = temp_offset env 0 in
    emit env (Ins (Insn.Stx (Insn.W64, Insn.fp, tmp, 0)));
    compile_expr env 1 value;
    emit env (Ins (Insn.Alu64 (Insn.Mov, 1, Insn.Reg 0)));
    emit env (Ins (Insn.Ldx (Insn.W64, 0, Insn.fp, tmp)));
    emit env (Ins (Insn.Stx (sz, 0, 0, 1)))
  | Ast.If (c, t, f) ->
    let l_else = fresh_label env and l_end = fresh_label env in
    compile_expr env 0 c;
    emit env (Jcond_l (Insn.Jeq, 0, Insn.Imm 0l, l_else));
    List.iter (compile_stmt env) t;
    emit env (Ja_l l_end);
    emit env (Lbl l_else);
    List.iter (compile_stmt env) f;
    emit env (Lbl l_end)
  | Ast.While (c, body) ->
    let l_loop = fresh_label env and l_end = fresh_label env in
    emit env (Lbl l_loop);
    compile_expr env 0 c;
    emit env (Jcond_l (Insn.Jeq, 0, Insn.Imm 0l, l_end));
    List.iter (compile_stmt env) body;
    emit env (Ja_l l_loop);
    emit env (Lbl l_end)
  | Ast.For (x, lo, hi, body) ->
    (* The bound is evaluated once into a hidden local the program cannot
       name, so the trip count is fixed before the loop starts. *)
    let bound = Printf.sprintf "%s#bound" x in
    compile_stmt env (Ast.Let (bound, hi));
    compile_stmt env (Ast.Let (x, lo));
    let xslot = lookup_local env x and bslot = lookup_local env bound in
    let l_loop = fresh_label env and l_end = fresh_label env in
    emit env (Lbl l_loop);
    emit env (Ins (Insn.Ldx (Insn.W64, 0, Insn.fp, local_offset xslot)));
    emit env (Ins (Insn.Ldx (Insn.W64, 1, Insn.fp, local_offset bslot)));
    emit env (Jcond_l (Insn.Jge, 0, Insn.Reg 1, l_end));
    List.iter (compile_stmt env) body;
    emit env (Ins (Insn.Ldx (Insn.W64, 0, Insn.fp, local_offset xslot)));
    emit env (Ins (Insn.Alu64 (Insn.Add, 0, Insn.Imm 1l)));
    emit env (Ins (Insn.Stx (Insn.W64, Insn.fp, local_offset xslot, 0)));
    emit env (Ja_l l_loop);
    emit env (Lbl l_end)
  | Ast.Return e ->
    compile_expr env 0 e;
    emit env (Ins Insn.Exit)
  | Ast.Expr e -> compile_expr env 0 e

(* Resolve labels to slot-relative offsets. *)
let resolve items =
  let slot_of_label = Hashtbl.create 16 in
  let pos = ref 0 in
  List.iter
    (fun it ->
      match it with
      | Lbl l -> Hashtbl.replace slot_of_label l !pos
      | Ins i -> pos := !pos + Insn.slots i
      | Ja_l _ | Jcond_l _ -> incr pos)
    items;
  let out = ref [] in
  let pos = ref 0 in
  let target l =
    match Hashtbl.find_opt slot_of_label l with
    | Some s -> s
    | None -> err "unresolved label %d" l
  in
  List.iter
    (fun it ->
      match it with
      | Lbl _ -> ()
      | Ins i ->
        out := i :: !out;
        pos := !pos + Insn.slots i
      | Ja_l l ->
        out := Insn.Ja (target l - (!pos + 1)) :: !out;
        incr pos
      | Jcond_l (c, r, o, l) ->
        out := Insn.Jcond (c, r, o, target l - (!pos + 1)) :: !out;
        incr pos)
    items;
  Array.of_list (List.rev !out)

(* Compile a pluglet function. Parameters arrive in r1..r5 and are spilled
   into locals immediately (helper calls clobber r1-r5). *)
let compile ~helpers (f : Ast.func) =
  if List.length f.params > 5 then err "%s: too many parameters" f.name;
  let env =
    {
      helpers;
      locals = [];
      nlocals = 0;
      max_depth = 0;
      next_label = 0;
      buf = ref [];
    }
  in
  List.iteri
    (fun k p ->
      let slot = declare_local env p in
      emit env (Ins (Insn.Stx (Insn.W64, Insn.fp, local_offset slot, k + 1))))
    f.params;
  List.iter (compile_stmt env) f.body;
  (* Guarantee the exit instruction the verifier requires. *)
  emit env (Ins (Insn.Alu64 (Insn.Mov, 0, Insn.Imm 0l)));
  emit env (Ins Insn.Exit);
  let prog = resolve (List.rev !(env.buf)) in
  let stack_size =
    let words = env.nlocals + env.max_depth + 1 in
    max 512 (((words * 8) + 511) / 512 * 512)
  in
  (prog, stack_size)
