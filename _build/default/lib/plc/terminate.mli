(** Conservative termination checking of pluglets — the stand-in for the
    paper's T2 prover (Section 5).

    A pluglet is {e proven terminating} when every loop in it is a
    [For] (trip count fixed before entry, induction variable never
    reassigned); helper calls, like T2's external functions, are assumed
    to terminate. A [While] loop yields {!Unproven} with the reason —
    exactly the situation where the paper's authors had to rewrite
    pluglets (bounding list traversals) or gave up. *)

type verdict = Proven | Unproven of string

val check : Ast.func -> verdict
val is_proven : Ast.func -> bool
val pp_verdict : verdict Fmt.t
