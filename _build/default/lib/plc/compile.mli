(** Compilation of the plugin language to eBPF bytecode.

    A stack-machine strategy: locals live in fixed frame-pointer-relative
    slots, expression temporaries in slots above them, so every memory
    access the compiler emits is statically checkable by the
    {!Ebpf.Verifier}. Results are produced in r0; helper calls follow the
    eBPF convention (args r1..r5, result r0). *)

exception Error of string

val compile : helpers:(string * int) list -> Ast.func -> Ebpf.Insn.t array * int
(** [compile ~helpers f] resolves helper names against [helpers] and
    returns the program plus the stack size it needs (a multiple of 512
    covering locals and the deepest expression). The generated program
    always ends in an [Exit] (an implicit [return 0]).
    @raise Error on unbound variables, unknown helpers, more than five
    parameters or arguments. *)
