(** The plugin language pluglets are written in — the stand-in for the
    paper's C-compiled-to-eBPF pipeline. Every value is a 64-bit integer;
    pointers into VM regions are plain integers. Helper functions (the
    PQUIC API of Table 1) are called by name and resolved to eBPF helper
    ids at compile time ({!Compile}).

    [While] loops are general and defeat the termination checker
    ({!Terminate}); [For] loops are bounded by construction — the bound is
    evaluated once into a hidden local, the induction variable cannot be
    reassigned — and are provable, mirroring the paper's trick of bounding
    list traversals with explicit sizes (Section 5). *)

module Insn = Ebpf.Insn

type size = Insn.size

(** Binary operators. [Lt]..[Ge] compare unsigned, [Slt]..[Sge] signed;
    comparisons yield 0 or 1. Division and modulo follow eBPF semantics
    (division by zero yields 0, modulo by zero keeps the dividend). *)
type binop =
  | Add | Sub | Mul | Div | Mod | And | Or | Xor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | Slt | Sle | Sgt | Sge

type expr =
  | Const of int64
  | Var of string
  | Bin of binop * expr * expr
  | Not of expr                  (** logical negation: 1 when the operand is 0 *)
  | Load of size * expr          (** memory read at an address expression *)
  | Call of string * expr list   (** helper call, at most 5 arguments *)

type stmt =
  | Let of string * expr         (** declare (or re-bind) a local *)
  | Assign of string * expr
  | Store of size * expr * expr  (** [Store (sz, addr, value)] *)
  | If of expr * block * block
  | While of expr * block
  | For of string * expr * expr * block
      (** [For (v, lo, hi, body)]: v = lo; while v <u hi; v++ *)
  | Return of expr
  | Expr of expr                 (** evaluate for effect *)

and block = stmt list

(** A pluglet: a single entry function with up to 5 parameters (arriving
    in r1..r5). *)
type func = { name : string; params : string list; body : block }

(** {2 Construction shorthand} *)

val i : int -> expr
val v : string -> expr
val ( +: ) : expr -> expr -> expr
val ( -: ) : expr -> expr -> expr
val ( *: ) : expr -> expr -> expr
val ( /: ) : expr -> expr -> expr
val ( %: ) : expr -> expr -> expr
val ( =: ) : expr -> expr -> expr
val ( <>: ) : expr -> expr -> expr
val ( <: ) : expr -> expr -> expr
val ( <=: ) : expr -> expr -> expr
val ( >: ) : expr -> expr -> expr
val ( >=: ) : expr -> expr -> expr
val ( &&: ) : expr -> expr -> expr
(** Logical conjunction of truthiness (not bitwise). *)

val ( ||: ) : expr -> expr -> expr

(** {2 Pretty-printing} *)

val binop_name : binop -> string
val pp_expr : expr Fmt.t
val pp_func : func Fmt.t

val source : func -> string
(** The pluglet rendered as source text. *)

val lines_of_code : func -> int
(** Non-blank source lines — the "LoC" figure of Table 2. *)
