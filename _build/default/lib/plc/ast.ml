module Insn = Ebpf.Insn
(* A small structured language in which pluglets are written, standing in
   for the paper's C-compiled-to-eBPF pipeline. Every value is a 64-bit
   integer; pointers into VM regions are plain integers. Helper functions
   (the PQUIC API of Table 1) are called by name and resolved to eBPF helper
   ids at compile time.

   [While] loops are general and defeat the termination checker; [For] loops
   are bounded by construction (the bound is evaluated once, the induction
   variable cannot be reassigned) and are provable — mirroring the paper's
   trick of adding explicit sizes to bound list traversals (Section 5). *)

type size = Insn.size

type binop =
  | Add | Sub | Mul | Div | Mod | And | Or | Xor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge          (* unsigned comparisons *)
  | Slt | Sle | Sgt | Sge                (* signed comparisons *)

type expr =
  | Const of int64
  | Var of string
  | Bin of binop * expr * expr
  | Not of expr                           (* logical negation: e = 0 ? 1 : 0 *)
  | Load of size * expr                   (* *(e) *)
  | Call of string * expr list            (* helper call, at most 5 args *)

type stmt =
  | Let of string * expr                  (* declare and initialize a local *)
  | Assign of string * expr
  | Store of size * expr * expr           (* *(addr) <- value *)
  | If of expr * block * block
  | While of expr * block
  | For of string * expr * expr * block   (* for v = lo; v < hi; v++ *)
  | Return of expr
  | Expr of expr                          (* evaluate for effect *)

and block = stmt list

(* A pluglet: a single entry function with up to 5 parameters. *)
type func = { name : string; params : string list; body : block }

let i n = Const (Int64.of_int n)
let ( +: ) a b = Bin (Add, a, b)
let ( -: ) a b = Bin (Sub, a, b)
let ( *: ) a b = Bin (Mul, a, b)
let ( /: ) a b = Bin (Div, a, b)
let ( %: ) a b = Bin (Mod, a, b)
let ( =: ) a b = Bin (Eq, a, b)
let ( <>: ) a b = Bin (Ne, a, b)
let ( <: ) a b = Bin (Lt, a, b)
let ( <=: ) a b = Bin (Le, a, b)
let ( >: ) a b = Bin (Gt, a, b)
let ( >=: ) a b = Bin (Ge, a, b)
let ( &&: ) a b = Bin (And, Bin (Ne, a, i 0), Bin (Ne, b, i 0))
let ( ||: ) a b = Bin (Or, Bin (Ne, a, i 0), Bin (Ne, b, i 0))
let v x = Var x

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | And -> "&" | Or -> "|" | Xor -> "^" | Shl -> "<<" | Shr -> ">>"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">"
  | Ge -> ">=" | Slt -> "<s" | Sle -> "<=s" | Sgt -> ">s" | Sge -> ">=s"

let size_suffix = function
  | Insn.W8 -> "8" | Insn.W16 -> "16" | Insn.W32 -> "32" | Insn.W64 -> "64"

let rec pp_expr ppf = function
  | Const n -> Fmt.pf ppf "%Ld" n
  | Var x -> Fmt.string ppf x
  | Bin (op, a, b) ->
    Fmt.pf ppf "(%a %s %a)" pp_expr a (binop_name op) pp_expr b
  | Not e -> Fmt.pf ppf "!%a" pp_expr e
  | Load (sz, e) -> Fmt.pf ppf "load%s(%a)" (size_suffix sz) pp_expr e
  | Call (f, args) ->
    Fmt.pf ppf "%s(%a)" f Fmt.(list ~sep:(any ", ") pp_expr) args

let rec pp_stmt ind ppf s =
  let pad = String.make ind ' ' in
  match s with
  | Let (x, e) -> Fmt.pf ppf "%slet %s = %a;" pad x pp_expr e
  | Assign (x, e) -> Fmt.pf ppf "%s%s = %a;" pad x pp_expr e
  | Store (sz, a, e) ->
    Fmt.pf ppf "%sstore%s(%a, %a);" pad (size_suffix sz) pp_expr a pp_expr e
  | If (c, t, []) ->
    Fmt.pf ppf "%sif %a {@.%a@.%s}" pad pp_expr c (pp_block (ind + 2)) t pad
  | If (c, t, f) ->
    Fmt.pf ppf "%sif %a {@.%a@.%s} else {@.%a@.%s}" pad pp_expr c
      (pp_block (ind + 2)) t pad (pp_block (ind + 2)) f pad
  | While (c, b) ->
    Fmt.pf ppf "%swhile %a {@.%a@.%s}" pad pp_expr c (pp_block (ind + 2)) b pad
  | For (x, lo, hi, b) ->
    Fmt.pf ppf "%sfor %s in %a .. %a {@.%a@.%s}" pad x pp_expr lo pp_expr hi
      (pp_block (ind + 2)) b pad
  | Return e -> Fmt.pf ppf "%sreturn %a;" pad pp_expr e
  | Expr e -> Fmt.pf ppf "%s%a;" pad pp_expr e

and pp_block ind ppf b =
  Fmt.pf ppf "%a" Fmt.(list ~sep:(any "@.") (pp_stmt ind)) b

let pp_func ppf f =
  Fmt.pf ppf "fn %s(%a) {@.%a@.}@." f.name
    Fmt.(list ~sep:(any ", ") string)
    f.params (pp_block 2) f.body

let source f = Fmt.str "%a" pp_func f

(* Source line count of the pretty-printed pluglet: the "LoC" figure
   reported in Table 2. *)
let lines_of_code f =
  String.split_on_char '\n' (source f)
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length
