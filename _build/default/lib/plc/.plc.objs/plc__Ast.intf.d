lib/plc/ast.mli: Ebpf Fmt
