lib/plc/ast.ml: Ebpf Fmt Int64 List String
