lib/plc/compile.mli: Ast Ebpf
