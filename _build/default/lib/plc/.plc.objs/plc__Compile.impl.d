lib/plc/compile.ml: Array Ast Ebpf Fmt Hashtbl Int64 List Printf
