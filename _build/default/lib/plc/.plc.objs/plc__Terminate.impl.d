lib/plc/terminate.ml: Ast Fmt List Printf
