lib/plc/terminate.mli: Ast Fmt
