lib/tcpsim/tcp.ml: Bytes Cubic Float Hashtbl Int32 Int64 List Netsim String
