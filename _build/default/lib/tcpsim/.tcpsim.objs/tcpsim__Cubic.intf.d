lib/tcpsim/cubic.mli:
