lib/tcpsim/cubic.ml: Float
