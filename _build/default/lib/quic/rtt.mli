(** RTT estimation per the QUIC recovery draft: EWMA smoothed RTT and mean
    deviation, latest and minimum samples; times in simulator nanoseconds.
    [update] is what the update_rtt protocol operation drives — the
    paper's running example of a pluggable subroutine. *)

type t

val create : unit -> t
val update : t -> sample:int64 -> unit
val smoothed : t -> int64
(** 100 ms before the first sample. *)

val latest : t -> int64
val min_rtt : t -> int64
val variance : t -> int64
val samples : t -> int

val pto : t -> int64
(** Probe timeout: [srtt + max(4*rttvar, 1ms)]. *)
