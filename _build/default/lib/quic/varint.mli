(** QUIC variable-length integers (draft-14 §16): the two most significant
    bits of the first byte give the length (1/2/4/8 bytes), the remainder
    encodes the value big-endian; maximum value 2^62 - 1. *)

exception Overflow
exception Truncated

val max_value : int64
val encoded_size : int64 -> int
val write : Buffer.t -> int64 -> unit
val write_int : Buffer.t -> int -> unit

val read : string -> int -> int64 * int
(** [read s pos] returns the value and the next position.
    @raise Truncated when the buffer ends mid-integer. *)

val read_int : string -> int -> int * int
