(** QUIC transport parameters exchanged in the handshake CRYPTO data,
    including PQUIC's two additions (Section 3.4): [supported_plugins]
    (what a peer holds in its local cache) and [plugins_to_inject] (what it
    wants active on the connection), both ordered lists of globally unique
    plugin names. *)

type t = {
  initial_max_data : int64;
  initial_max_stream_data : int64;
  max_streams : int;
  idle_timeout_ms : int;
  active_paths : int list; (** extra client addresses, used by multipath *)
  supported_plugins : string list;
  plugins_to_inject : string list;
}

val default : t
val encode : t -> string
val decode : string -> t
(** Unknown parameters are skipped, as the spec requires. *)
