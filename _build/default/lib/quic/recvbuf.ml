(* Receiver-side stream reassembly: out-of-order segments are held until the
   contiguous prefix grows; the application reads in order. *)

type t = {
  mutable segments : (int * string) list; (* (offset, data), sorted by offset *)
  mutable read_offset : int;              (* delivered to the application *)
  mutable fin_offset : int option;        (* final size once FIN is seen *)
  mutable highest : int;                  (* highest contiguous offset received *)
}

let create () =
  { segments = []; read_offset = 0; fin_offset = None; highest = 0 }

let insert t ~offset ~fin data =
  if fin then begin
    let final = offset + String.length data in
    match t.fin_offset with
    | Some f when f <> final -> invalid_arg "Recvbuf.insert: inconsistent FIN"
    | _ -> t.fin_offset <- Some final
  end;
  if String.length data > 0 && offset + String.length data > t.read_offset then begin
    let rec ins = function
      | [] -> [ (offset, data) ]
      | (o, d) :: rest ->
        if offset < o then (offset, data) :: (o, d) :: rest else (o, d) :: ins rest
    in
    t.segments <- ins t.segments
  end;
  (* advance the contiguous frontier *)
  let rec frontier pos = function
    | [] -> pos
    | (o, d) :: rest ->
      if o > pos then pos else frontier (max pos (o + String.length d)) rest
  in
  t.highest <- frontier (max t.highest t.read_offset) t.segments

(* Read all contiguous data available past the read offset. *)
let read t =
  if t.highest <= t.read_offset then ""
  else begin
    let want_from = t.read_offset and want_to = t.highest in
    let out = Bytes.create (want_to - want_from) in
    List.iter
      (fun (o, d) ->
        let seg_end = o + String.length d in
        if seg_end > want_from && o < want_to then begin
          let src_start = max 0 (want_from - o) in
          let dst_start = max 0 (o - want_from) in
          let len = min seg_end want_to - max o want_from in
          Bytes.blit_string d src_start out dst_start len
        end)
      t.segments;
    t.read_offset <- want_to;
    (* drop fully consumed segments *)
    t.segments <-
      List.filter (fun (o, d) -> o + String.length d > t.read_offset) t.segments;
    Bytes.to_string out
  end

let contiguous t = t.highest

let is_finished t =
  match t.fin_offset with Some f -> t.highest >= f && t.read_offset >= f | None -> false

let fin_seen t = t.fin_offset <> None

let final_size t = t.fin_offset
