(* QUIC variable-length integer encoding (draft-14 §16): the two most
   significant bits of the first byte give the length (1, 2, 4 or 8 bytes);
   the remainder encodes the value big-endian. Maximum value 2^62 - 1. *)

exception Overflow
exception Truncated

let max_value = 0x3FFF_FFFF_FFFF_FFFFL

let encoded_size v =
  if v < 0L || v > max_value then raise Overflow
  else if v <= 63L then 1
  else if v <= 16383L then 2
  else if v <= 1073741823L then 4
  else 8

let write buf v =
  match encoded_size v with
  | 1 -> Buffer.add_uint8 buf (Int64.to_int v)
  | 2 -> Buffer.add_uint16_be buf (Int64.to_int v lor 0x4000)
  | 4 ->
    Buffer.add_int32_be buf
      (Int32.logor (Int64.to_int32 v) 0x8000_0000l)
  | _ -> Buffer.add_int64_be buf (Int64.logor v 0xC000_0000_0000_0000L)

let write_int buf v = write buf (Int64.of_int v)

(* Read a varint from [s] at [pos]; returns (value, next position). *)
let read s pos =
  let n = String.length s in
  if pos >= n then raise Truncated;
  let first = Char.code s.[pos] in
  let len = 1 lsl (first lsr 6) in
  if pos + len > n then raise Truncated;
  let v = ref (Int64.of_int (first land 0x3f)) in
  for k = 1 to len - 1 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[pos + k]))
  done;
  (!v, pos + len)

let read_int s pos =
  let v, pos = read s pos in
  (Int64.to_int v, pos)
