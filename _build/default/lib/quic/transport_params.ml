(* QUIC transport parameters exchanged in the handshake CRYPTO data.

   PQUIC adds two parameters (Section 3.4): [supported_plugins], the plugins
   a peer already holds in its local cache, and [plugins_to_inject], the
   plugins it wants active on the connection — both ordered lists of
   globally unique plugin names. *)

type t = {
  initial_max_data : int64;
  initial_max_stream_data : int64;
  max_streams : int;
  idle_timeout_ms : int;
  active_paths : int list;       (* extra client addresses, used by multipath *)
  supported_plugins : string list;
  plugins_to_inject : string list;
}

let default =
  {
    initial_max_data = 1_048_576L;
    initial_max_stream_data = 262_144L;
    max_streams = 100;
    idle_timeout_ms = 30_000;
    active_paths = [];
    supported_plugins = [];
    plugins_to_inject = [];
  }

let id_initial_max_data = 0
let id_initial_max_stream_data = 1
let id_max_streams = 2
let id_idle_timeout = 3
let id_active_paths = 4
let id_supported_plugins = 5
let id_plugins_to_inject = 6

let join = String.concat ","

let split s = if s = "" then [] else String.split_on_char ',' s

let encode t =
  let buf = Buffer.create 128 in
  let param id value =
    Varint.write_int buf id;
    Varint.write_int buf (String.length value);
    Buffer.add_string buf value
  in
  let varint_value v =
    let b = Buffer.create 8 in
    Varint.write b v;
    Buffer.contents b
  in
  param id_initial_max_data (varint_value t.initial_max_data);
  param id_initial_max_stream_data (varint_value t.initial_max_stream_data);
  param id_max_streams (varint_value (Int64.of_int t.max_streams));
  param id_idle_timeout (varint_value (Int64.of_int t.idle_timeout_ms));
  if t.active_paths <> [] then
    param id_active_paths (join (List.map string_of_int t.active_paths));
  if t.supported_plugins <> [] then
    param id_supported_plugins (join t.supported_plugins);
  if t.plugins_to_inject <> [] then
    param id_plugins_to_inject (join t.plugins_to_inject);
  Buffer.contents buf

let decode s =
  let t = ref default in
  let pos = ref 0 in
  let n = String.length s in
  while !pos < n do
    let id, p = Varint.read_int s !pos in
    let len, p = Varint.read_int s p in
    if p + len > n then raise Varint.Truncated;
    let value = String.sub s p len in
    pos := p + len;
    let varint_value () = fst (Varint.read value 0) in
    if id = id_initial_max_data then
      t := { !t with initial_max_data = varint_value () }
    else if id = id_initial_max_stream_data then
      t := { !t with initial_max_stream_data = varint_value () }
    else if id = id_max_streams then
      t := { !t with max_streams = Int64.to_int (varint_value ()) }
    else if id = id_idle_timeout then
      t := { !t with idle_timeout_ms = Int64.to_int (varint_value ()) }
    else if id = id_active_paths then
      t := { !t with active_paths = List.map int_of_string (split value) }
    else if id = id_supported_plugins then
      t := { !t with supported_plugins = split value }
    else if id = id_plugins_to_inject then
      t := { !t with plugins_to_inject = split value }
    (* unknown parameters are skipped, as the spec requires *)
  done;
  !t
