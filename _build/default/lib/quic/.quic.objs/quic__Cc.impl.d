lib/quic/cc.ml:
