lib/quic/rtt.mli:
