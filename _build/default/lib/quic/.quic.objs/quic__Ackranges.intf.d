lib/quic/ackranges.mli:
