lib/quic/transport_params.ml: Buffer Int64 List String Varint
