lib/quic/recvbuf.ml: Bytes List String
