lib/quic/rtt.ml: Int64
