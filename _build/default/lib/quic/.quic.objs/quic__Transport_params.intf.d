lib/quic/transport_params.mli:
