lib/quic/packet.mli:
