lib/quic/frame.mli: Buffer Fmt
