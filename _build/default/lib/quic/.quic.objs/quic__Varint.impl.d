lib/quic/varint.ml: Buffer Char Int32 Int64 String
