lib/quic/ackranges.ml: Int64 List
