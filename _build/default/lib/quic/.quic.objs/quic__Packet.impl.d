lib/quic/packet.ml: Buffer Char Int64 String
