lib/quic/sendbuf.ml: Buffer List
