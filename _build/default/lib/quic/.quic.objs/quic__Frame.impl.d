lib/quic/frame.ml: Buffer Fmt Int64 List String Varint
