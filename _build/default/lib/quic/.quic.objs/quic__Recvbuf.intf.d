lib/quic/recvbuf.mli:
