lib/quic/sendbuf.mli:
