lib/quic/cc.mli:
