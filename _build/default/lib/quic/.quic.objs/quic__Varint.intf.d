lib/quic/varint.mli: Buffer
