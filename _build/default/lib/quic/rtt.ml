(* RTT estimation per the QUIC recovery draft (EWMA smoothed RTT and mean
   deviation, latest and minimum samples). Times are simulator nanoseconds.
   [update] is invoked from the update_rtt protocol operation — the paper's
   running example of a pluggable subroutine. *)

type t = {
  mutable latest : int64;
  mutable min : int64;
  mutable smoothed : int64;
  mutable variance : int64;
  mutable samples : int;
}

let create () =
  { latest = 0L; min = Int64.max_int; smoothed = 0L; variance = 0L; samples = 0 }

let update t ~sample =
  let sample = Int64.max 1L sample in
  t.latest <- sample;
  if sample < t.min then t.min <- sample;
  if t.samples = 0 then begin
    t.smoothed <- sample;
    t.variance <- Int64.div sample 2L
  end
  else begin
    let diff = Int64.abs (Int64.sub t.smoothed sample) in
    (* rttvar = 3/4 rttvar + 1/4 |srtt - sample| *)
    t.variance <-
      Int64.add
        (Int64.div (Int64.mul t.variance 3L) 4L)
        (Int64.div diff 4L);
    (* srtt = 7/8 srtt + 1/8 sample *)
    t.smoothed <-
      Int64.add
        (Int64.div (Int64.mul t.smoothed 7L) 8L)
        (Int64.div sample 8L)
  end;
  t.samples <- t.samples + 1

let smoothed t = if t.samples = 0 then 100_000_000L (* 100 ms default *) else t.smoothed

let latest t = t.latest

let min_rtt t = if t.samples = 0 then smoothed t else t.min

let variance t = if t.samples = 0 then 50_000_000L else t.variance

let samples t = t.samples

(* Probe timeout: srtt + max(4*rttvar, 1ms), as in the recovery draft. *)
let pto t =
  Int64.add (smoothed t) (Int64.max (Int64.mul 4L (variance t)) 1_000_000L)
