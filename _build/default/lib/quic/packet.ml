(* QUIC packets with simulated packet protection.

   Header layout (simplified from draft-14 but keeping the properties the
   paper relies on): a first byte carrying the form, type and the Spin Bit;
   an 8-byte destination connection ID (packets are routed to connections by
   CID, *not* by 4-tuple — the property that makes multipath possible,
   Section 4.3); an 8-byte source CID on long headers; a 4-byte packet
   number. Payload protection is simulated by a 8-byte keyed tag over header
   and payload: tampering or a wrong key fails authentication exactly like a
   real AEAD, which is what shields PQUIC from middlebox interference. *)

type ptype = Initial | Handshake | One_rtt

type header = {
  ptype : ptype;
  spin : bool;
  dcid : int64;
  scid : int64; (* meaningful on long headers only; 0 on short *)
  pn : int64;
}

type t = { header : header; payload : string }

let tag_len = 8

(* FNV-1a based keyed tag — a stand-in for AES-GCM, *not* real crypto. *)
let tag ~key data =
  let h = ref 0xcbf29ce484222325L in
  let step c =
    h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L
  in
  String.iter step (Int64.to_string key);
  String.iter step data;
  !h

let header_size h = match h.ptype with One_rtt -> 1 + 8 + 4 | _ -> 1 + 8 + 8 + 4

let overhead h = header_size h + tag_len

let first_byte h =
  match h.ptype with
  | Initial -> 0xc0
  | Handshake -> 0xe0
  | One_rtt -> 0x40 lor (if h.spin then 0x20 else 0)

let serialize_header buf h =
  Buffer.add_uint8 buf (first_byte h);
  Buffer.add_int64_be buf h.dcid;
  (match h.ptype with One_rtt -> () | _ -> Buffer.add_int64_be buf h.scid);
  Buffer.add_int32_be buf (Int64.to_int32 h.pn)

(* Serialize and protect. *)
let protect ~key t =
  let buf = Buffer.create (header_size t.header + String.length t.payload + tag_len) in
  serialize_header buf t.header;
  Buffer.add_string buf t.payload;
  let tag_value = tag ~key (Buffer.contents buf) in
  Buffer.add_int64_be buf tag_value;
  Buffer.contents buf

exception Authentication_failed
exception Malformed

(* Parse and verify; raises on tampering or wrong key. *)
let unprotect ~key s =
  let n = String.length s in
  if n < 1 + 8 + 4 + tag_len then raise Malformed;
  let b0 = Char.code s.[0] in
  let long = b0 land 0x80 <> 0 in
  let ptype =
    if not long then One_rtt
    else if b0 land 0x20 <> 0 then Handshake
    else Initial
  in
  let hsize = if long then 1 + 8 + 8 + 4 else 1 + 8 + 4 in
  if n < hsize + tag_len then raise Malformed;
  let dcid = String.get_int64_be s 1 in
  let scid = if long then String.get_int64_be s 9 else 0L in
  let pn =
    Int64.logand
      (Int64.of_int32 (String.get_int32_be s (hsize - 4)))
      0xffffffffL
  in
  let spin = (not long) && b0 land 0x20 <> 0 in
  let payload = String.sub s hsize (n - hsize - tag_len) in
  let received_tag = String.get_int64_be s (n - tag_len) in
  let expected = tag ~key (String.sub s 0 (n - tag_len)) in
  if received_tag <> expected then raise Authentication_failed;
  ({ header = { ptype; spin; dcid; scid; pn }; payload }, n)

(* Connection keys are derived from the pair of connection IDs during the
   simulated handshake. *)
let derive_key ~client_cid ~server_cid =
  tag ~key:client_cid (Int64.to_string server_cid)
