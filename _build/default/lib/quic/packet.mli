(** QUIC packets with simulated packet protection.

    Headers keep the properties the paper relies on: a first byte carrying
    form, type and the Spin Bit; an 8-byte destination connection ID
    (packets route to connections by CID, {e not} by 4-tuple — what makes
    multipath possible); a 4-byte packet number. Protection is an 8-byte
    keyed tag over header and payload: tampering or a wrong key fails
    authentication exactly like a real AEAD — what shields PQUIC from
    middlebox interference. Not real cryptography. *)

type ptype = Initial | Handshake | One_rtt

type header = {
  ptype : ptype;
  spin : bool;
  dcid : int64;
  scid : int64; (** meaningful on long headers only *)
  pn : int64;
}

type t = { header : header; payload : string }

val tag_len : int
val header_size : header -> int
val overhead : header -> int

val protect : key:int64 -> t -> string

exception Authentication_failed
exception Malformed

val unprotect : key:int64 -> string -> t * int
(** Parse and verify; returns the packet and bytes consumed.
    @raise Authentication_failed on tampering or a wrong key
    @raise Malformed on a truncated packet *)

val derive_key : client_cid:int64 -> server_cid:int64 -> int64
(** The 1-RTT key both peers derive from the connection IDs exchanged in
    the (simulated) handshake. *)
