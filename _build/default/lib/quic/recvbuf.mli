(** Receiver-side stream reassembly: out-of-order segments are held until
    the contiguous prefix grows; the application reads in order. *)

type t

val create : unit -> t

val insert : t -> offset:int -> fin:bool -> string -> unit
(** @raise Invalid_argument on a FIN inconsistent with an earlier one. *)

val read : t -> string
(** All contiguous data past what was already read (possibly ""). *)

val contiguous : t -> int
val is_finished : t -> bool
val fin_seen : t -> bool
val final_size : t -> int option
