lib/netsim/net.mli: Link Sim
