lib/netsim/sim.mli:
