lib/netsim/net.ml: Hashtbl Link Sim
