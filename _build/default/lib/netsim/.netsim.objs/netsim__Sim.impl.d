lib/netsim/sim.ml: Array Int64
