lib/netsim/rng.mli:
