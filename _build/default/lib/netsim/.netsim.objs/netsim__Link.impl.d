lib/netsim/link.ml: Int64 Rng Sim
