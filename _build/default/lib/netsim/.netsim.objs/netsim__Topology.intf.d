lib/netsim/topology.mli: Link Net Sim
