lib/netsim/rng.ml: Int64
