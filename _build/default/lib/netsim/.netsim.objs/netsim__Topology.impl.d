lib/netsim/topology.ml: Link Net Rng Sim
