lib/netsim/link.mli: Rng Sim
