(** Discrete-event simulation core: a virtual clock in nanoseconds and a
    binary-heap event queue. Ties break by insertion order, so runs are
    fully deterministic. *)

type time = int64
(** Nanoseconds of virtual time. *)

val ns : time
val us : time
val ms : time
val sec : time

val of_ms : float -> time
val of_sec : float -> time
val to_ms : time -> float
val to_sec : time -> float

type event
type t

val create : unit -> t
val now : t -> time

val schedule : t -> delay:time -> (unit -> unit) -> event
(** Run a callback [delay] ns from now. The returned handle can be passed
    to {!cancel}; cancelled events stay in the heap but are skipped. *)

val schedule_at : t -> at:time -> (unit -> unit) -> event
val cancel : event -> unit

val run : ?until:time -> ?max_events:int -> t -> int
(** Execute events until the queue empties, the clock passes [until], or
    [max_events] have run; returns the number executed. When stopped by
    [until], the clock is left exactly there and later events stay
    queued. *)

val pending : t -> int
