(* A unidirectional link fed by a drop-tail router queue, reproducing the
   paper's NetEm (delay, seeded random loss) + HTB (rate limit) setup.

   A packet entering the link is first subjected to the random loss draw
   (NetEm-style, before the queue). It then waits for the transmitter: the
   queue holds at most [buffer] bytes beyond the packet in service —
   arrivals that would overflow it are congestion losses, which the paper
   notes "can still be observed due to the limited bandwidth and router
   buffers" even on lossless links. Serialization takes size*8/rate and
   propagation adds the one-way delay. *)

type stats = {
  mutable sent : int;
  mutable delivered : int;
  mutable random_losses : int;
  mutable queue_drops : int;
  mutable bytes_delivered : int;
  mutable ce_marked : int;
}

type t = {
  sim : Sim.t;
  delay : Sim.time;               (* one-way propagation delay *)
  rate_bps : float;               (* 0. means infinite *)
  loss : float;                   (* uniform loss probability *)
  buffer : int;                   (* queue capacity in bytes *)
  ecn_threshold : int;            (* mark CE above this backlog; 0 = off *)
  rng : Rng.t;
  mutable busy_until : Sim.time;
  mutable queued_bytes : int;
  stats : stats;
}

let create ~sim ~delay_ms ~rate_mbps ~loss ~rng ?(buffer = 64 * 1024)
    ?(ecn_threshold = 0) () =
  {
    sim;
    delay = Sim.of_ms delay_ms;
    rate_bps = rate_mbps *. 1e6;
    loss;
    buffer;
    ecn_threshold;
    rng;
    busy_until = 0L;
    queued_bytes = 0;
    stats =
      { sent = 0; delivered = 0; random_losses = 0; queue_drops = 0;
        bytes_delivered = 0; ce_marked = 0 };
  }

let tx_time t size =
  if t.rate_bps <= 0. then 0L
  else Int64.of_float (float_of_int (size * 8) /. t.rate_bps *. 1e9)

(* Submit a packet of [size] bytes; [deliver ~ce] runs at the far end when
   the packet survives, with [ce] set when the router marked it Congestion
   Experienced (queue backlog above the ECN threshold) instead of having
   room to spare. *)
let send_ecn t ~size deliver =
  t.stats.sent <- t.stats.sent + 1;
  if t.loss > 0. && Rng.bool t.rng t.loss then
    t.stats.random_losses <- t.stats.random_losses + 1
  else begin
    let now = Sim.now t.sim in
    let in_service = t.busy_until > now in
    let backlog = if in_service then t.queued_bytes else 0 in
    if in_service && backlog + size > t.buffer then
      t.stats.queue_drops <- t.stats.queue_drops + 1
    else begin
      let ce = t.ecn_threshold > 0 && backlog + size > t.ecn_threshold in
      if ce then t.stats.ce_marked <- t.stats.ce_marked + 1;
      let start = if in_service then t.busy_until else now in
      let tx_done = Int64.add start (tx_time t size) in
      t.queued_bytes <- (if in_service then t.queued_bytes else 0) + size;
      t.busy_until <- tx_done;
      let arrival = Int64.add tx_done t.delay in
      ignore
        (Sim.schedule t.sim ~delay:(Int64.sub tx_done now) (fun () ->
             t.queued_bytes <- t.queued_bytes - size));
      ignore
        (Sim.schedule t.sim ~delay:(Int64.sub arrival now) (fun () ->
             t.stats.delivered <- t.stats.delivered + 1;
             t.stats.bytes_delivered <- t.stats.bytes_delivered + size;
             deliver ~ce))
    end
  end

let send t ~size deliver = send_ecn t ~size (fun ~ce:_ -> deliver ())

let stats t = t.stats
