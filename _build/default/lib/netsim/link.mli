(** A unidirectional link fed by a drop-tail router queue — the paper's
    NetEm (delay, seeded random loss) + HTB (rate limit) lab setup.

    A packet first takes the random-loss draw; it then needs queue room
    ([buffer] bytes behind the packet in service — overflow is a
    congestion loss), is serialized at the link rate and propagated after
    the one-way delay. With [ecn_threshold] > 0 the queue marks packets
    Congestion Experienced instead of waiting for overflow. *)

type stats = {
  mutable sent : int;
  mutable delivered : int;
  mutable random_losses : int;
  mutable queue_drops : int;
  mutable bytes_delivered : int;
  mutable ce_marked : int;
}

type t

val create :
  sim:Sim.t ->
  delay_ms:float ->
  rate_mbps:float ->
  loss:float ->
  rng:Rng.t ->
  ?buffer:int ->
  ?ecn_threshold:int ->
  unit ->
  t
(** [rate_mbps <= 0.] means infinite bandwidth; [buffer] defaults to
    64 KiB; [ecn_threshold = 0] (default) disables marking. *)

val send_ecn : t -> size:int -> (ce:bool -> unit) -> unit
(** Submit a packet; the callback runs at the far end if it survives, with
    [ce] set when the router marked it. *)

val send : t -> size:int -> (unit -> unit) -> unit
(** {!send_ecn} without the mark. *)

val stats : t -> stats
