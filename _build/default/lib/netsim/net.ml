(* Datagram network: addresses, static routes (lists of links) and delivery
   to per-address handlers. Payloads use an extensible variant so each
   protocol stacks its own packet type on the simulator without the
   simulator knowing about it. *)

type addr = int

type payload = ..
type payload += Raw of string

(* A datagram that crossed a router whose queue was past the ECN marking
   threshold arrives with its payload wrapped in [Ce]. *)
type payload += Ce of payload

type datagram = { src : addr; dst : addr; size : int; payload : payload }

type t = {
  sim : Sim.t;
  routes : (addr * addr, Link.t list) Hashtbl.t;
  handlers : (addr, datagram -> unit) Hashtbl.t;
}

let create sim = { sim; routes = Hashtbl.create 16; handlers = Hashtbl.create 16 }

let sim t = t.sim

let add_route t ~src ~dst links = Hashtbl.replace t.routes (src, dst) links

let attach t addr handler = Hashtbl.replace t.handlers addr handler

let detach t addr = Hashtbl.remove t.handlers addr

(* Send a datagram; it traverses every link of the route in order and is
   dropped silently if any link loses it or no route/handler exists —
   exactly a best-effort IP/UDP service. *)
let send t dg =
  match Hashtbl.find_opt t.routes (dg.src, dg.dst) with
  | None -> ()
  | Some links ->
    let rec hop marked = function
      | [] -> (
        match Hashtbl.find_opt t.handlers dg.dst with
        | Some handler ->
          handler (if marked then { dg with payload = Ce dg.payload } else dg)
        | None -> ())
      | link :: rest ->
        Link.send_ecn link ~size:dg.size (fun ~ce -> hop (marked || ce) rest)
    in
    hop false links
