(* Discrete-event simulation core: a virtual clock in nanoseconds and a
   binary-heap event queue. Ties are broken by insertion order so runs are
   fully deterministic. *)

type time = int64

let ns = 1L
let us = 1_000L
let ms = 1_000_000L
let sec = 1_000_000_000L

let of_ms f = Int64.of_float (f *. 1e6)
let of_sec f = Int64.of_float (f *. 1e9)
let to_sec t = Int64.to_float t /. 1e9
let to_ms t = Int64.to_float t /. 1e6

type event = { at : time; seq : int; fn : unit -> unit; mutable cancelled : bool }

type t = {
  mutable now : time;
  mutable heap : event array;
  mutable size : int;
  mutable next_seq : int;
}

let create () =
  { now = 0L; heap = Array.make 256 { at = 0L; seq = 0; fn = ignore; cancelled = true };
    size = 0; next_seq = 0 }

let now t = t.now

let before a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

let grow t =
  let cap = Array.length t.heap in
  if t.size = cap then begin
    let heap = Array.make (2 * cap) t.heap.(0) in
    Array.blit t.heap 0 heap 0 cap;
    t.heap <- heap
  end

let push t ev =
  grow t;
  let i = ref t.size in
  t.size <- t.size + 1;
  t.heap.(!i) <- ev;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before t.heap.(!i) t.heap.(parent) then begin
      let tmp = t.heap.(parent) in
      t.heap.(parent) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    t.heap.(0) <- t.heap.(t.size);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
      if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = t.heap.(!smallest) in
        t.heap.(!smallest) <- t.heap.(!i);
        t.heap.(!i) <- tmp;
        i := !smallest
      end
      else continue := false
    done;
    Some top
  end

(* Schedule [fn] to run [delay] ns from now. Returns a handle usable with
   [cancel] — cancelled events stay in the heap but are skipped. *)
let schedule t ~delay fn =
  if delay < 0L then invalid_arg "Sim.schedule: negative delay";
  let ev =
    { at = Int64.add t.now delay; seq = t.next_seq; fn; cancelled = false }
  in
  t.next_seq <- t.next_seq + 1;
  push t ev;
  ev

let schedule_at t ~at fn =
  schedule t ~delay:(Int64.max 0L (Int64.sub at t.now)) fn

let cancel ev = ev.cancelled <- true

(* Run until the queue is empty or the clock passes [until]. Returns the
   number of events executed. *)
let run ?until ?(max_events = max_int) t =
  let executed = ref 0 in
  let stop = ref false in
  while not !stop && !executed < max_events do
    match pop t with
    | None -> stop := true
    | Some ev ->
      if ev.cancelled then ()
      else begin
        match until with
        | Some limit when ev.at > limit ->
          (* Put it back: it belongs to the future beyond the horizon. *)
          push t ev;
          t.now <- limit;
          stop := true
        | _ ->
          t.now <- ev.at;
          incr executed;
          ev.fn ()
      end
  done;
  !executed

let pending t = t.size
