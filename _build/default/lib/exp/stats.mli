(** Statistics for the experiment harness: medians, percentiles and
    empirical CDFs printed as the series behind the paper's figures. *)

val percentile : float -> float list -> float
val median : float list -> float
val mean : float list -> float
val stddev : float list -> float

val cdf : float list -> (float * float) list
(** Sorted [(value, fraction <= value)] points. *)

val print_cdf : label:string -> float list -> unit
val summarize : label:string -> float list -> unit
(** One line with n and the p10/p25/median/p75/p90 quartile summary. *)
