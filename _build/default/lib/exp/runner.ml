(* Scenario drivers shared by the experiment harness (bin/experiments.ml),
   the benchmarks and the tests: a PQUIC request/response transfer with an
   arbitrary plugin mix, a raw TCP Cubic transfer over the simulated
   network, and a TCP transfer inside a PQUIC datagram-VPN tunnel
   (optionally multipath) — the workloads behind Figures 8-11 and
   Table 3. *)

module Sim = Netsim.Sim
module Net = Netsim.Net
module Topology = Netsim.Topology

let sim_cap = 900. (* seconds of simulated time before giving up *)

(* Run the simulation until [finished ()] or the cap; returns completion. *)
let run_until_done sim finished =
  let rec go () =
    if finished () then true
    else if Sim.to_sec (Sim.now sim) > sim_cap then false
    else if Sim.pending sim = 0 then finished ()
    else begin
      ignore
        (Sim.run ~until:(Int64.add (Sim.now sim) (Sim.of_sec 1.)) ~max_events:5_000_000 sim);
      go ()
    end
  in
  go ()

type quic_result = {
  dct : float; (* request to last byte, seconds *)
  client_stats : Pquic.Connection.stats;
  server_stats : Pquic.Connection.stats option;
  client_conn : Pquic.Connection.t;
  server_conn : Pquic.Connection.t option;
}

(* A GET-style transfer: the client requests, the server answers with
   [size] bytes on the same stream. [plugins] are made available in both
   local caches; [to_inject] drives the plugins_to_inject parameter. *)
let quic_transfer ?(cfg = Pquic.Connection.default_config)
    ?(server_cfg = None) ?(plugins = []) ?(to_inject = [])
    ?(multipath = false) ~topo ~size () =
  let sim = topo.Topology.sim and net = topo.Topology.net in
  let server_cfg = match server_cfg with Some c -> c | None -> cfg in
  let server =
    Pquic.Endpoint.create ~cfg:server_cfg ~sim ~net ~addr:topo.Topology.server_addr
      ~seed:0x5EedL ()
  in
  let extra_addrs =
    if multipath then
      match topo.Topology.client_addrs with _ :: rest -> rest | [] -> []
    else []
  in
  let client =
    Pquic.Endpoint.create ~cfg ~sim ~net
      ~addr:(List.hd topo.Topology.client_addrs)
      ~extra_addrs ~seed:0xC11e47L ()
  in
  List.iter
    (fun p ->
      Pquic.Endpoint.add_plugin server p;
      Pquic.Endpoint.add_plugin client p)
    plugins;
  Pquic.Endpoint.listen server;
  Pquic.Endpoint.listen client;
  let server_conn = ref None in
  server.Pquic.Endpoint.on_connection <-
    (fun c ->
      server_conn := Some c;
      c.Pquic.Connection.on_stream_data <-
        (fun id _ ~fin ->
          if fin then
            Pquic.Connection.write_stream c ~id ~fin:true
              (String.make size 'x')));
  let conn =
    Pquic.Endpoint.connect client ~remote_addr:topo.Topology.server_addr
      ~plugins_to_inject:to_inject
  in
  let t_start = ref nan and t_done = ref nan in
  conn.Pquic.Connection.on_established <-
    (fun () ->
      t_start := Sim.to_sec (Sim.now sim);
      Pquic.Connection.write_stream conn ~id:0 ~fin:true "GET /file");
  conn.Pquic.Connection.on_stream_data <-
    (fun _ _ ~fin -> if fin then t_done := Sim.to_sec (Sim.now sim));
  let completed = run_until_done sim (fun () -> not (Float.is_nan !t_done)) in
  if not completed then None
  else
    Some
      {
        dct = !t_done -. !t_start;
        client_stats = Pquic.Connection.stats conn;
        server_stats = Option.map Pquic.Connection.stats !server_conn;
        client_conn = conn;
        server_conn = !server_conn;
      }

(* Raw TCP Cubic download over the simulated network (the "outside the
   tunnel" baseline): the server pushes [size] bytes to the client. *)
let tcp_direct ?(mss = 1460) ~topo ~size () =
  let sim = topo.Topology.sim and net = topo.Topology.net in
  let client_addr = List.hd topo.Topology.client_addrs in
  let server_addr = topo.Topology.server_addr in
  let send ~src ~dst pkt =
    Net.send net
      { Net.src; dst; size = String.length pkt; payload = Net.Raw pkt }
  in
  let completed = ref false in
  let receiver =
    Tcpsim.Tcp.create_receiver ~sim
      ~transport:(send ~src:client_addr ~dst:server_addr)
      ~on_complete:(fun () -> completed := true)
      ()
  in
  let sender =
    Tcpsim.Tcp.create_sender ~sim
      ~transport:(send ~src:server_addr ~dst:client_addr)
      ~mss ~total:size
      ~on_done:(fun () -> ())
      ()
  in
  Net.attach net client_addr (fun dg ->
      match dg.Net.payload with
      | Net.Raw pkt -> Tcpsim.Tcp.receiver_receive receiver pkt
      | _ -> ());
  Net.attach net server_addr (fun dg ->
      match dg.Net.payload with
      | Net.Raw pkt -> Tcpsim.Tcp.sender_receive sender pkt
      | _ -> ());
  let t0 = Sim.to_sec (Sim.now sim) in
  Tcpsim.Tcp.start_sender sender;
  if run_until_done sim (fun () -> !completed) then
    Some (Sim.to_sec (Sim.now sim) -. t0)
  else None

(* TCP Cubic inside a PQUIC VPN tunnel built on the Datagram plugin
   (Section 4.2), optionally spread over two paths by combining the
   Multipath plugin (Section 4.5). The inner MTU is 1400 (mss 1360), the
   outer MTU 1500-28; the DCT clock starts when the inner transfer starts,
   after the tunnel is up. *)
let tcp_vpn ?(multipath = false) ~topo ~size () =
  let sim = topo.Topology.sim and net = topo.Topology.net in
  let cfg = { Pquic.Connection.default_config with mtu = 1472 } in
  let server =
    Pquic.Endpoint.create ~cfg ~sim ~net ~addr:topo.Topology.server_addr
      ~seed:0x5EedL ()
  in
  let extra_addrs =
    if multipath then
      match topo.Topology.client_addrs with _ :: rest -> rest | [] -> []
    else []
  in
  let client =
    Pquic.Endpoint.create ~cfg ~sim ~net
      ~addr:(List.hd topo.Topology.client_addrs)
      ~extra_addrs ~seed:0xC11e47L ()
  in
  let plugin_set =
    Plugins.Datagram.plugin
    :: (if multipath then [ Plugins.Multipath.plugin ] else [])
  in
  List.iter
    (fun p ->
      Pquic.Endpoint.add_plugin server p;
      Pquic.Endpoint.add_plugin client p)
    plugin_set;
  Pquic.Endpoint.listen server;
  Pquic.Endpoint.listen client;
  let server_conn = ref None in
  server.Pquic.Endpoint.on_connection <- (fun c -> server_conn := Some c);
  let conn =
    Pquic.Endpoint.connect client ~remote_addr:topo.Topology.server_addr
      ~plugins_to_inject:(List.map (fun (p : Pquic.Plugin.t) -> p.Pquic.Plugin.name) plugin_set)
  in
  let completed = ref false in
  let t0 = ref nan in
  let tunnel_established = ref false in
  conn.Pquic.Connection.on_established <- (fun () -> tunnel_established := true);
  (* let the tunnel handshake and plugin activation settle, then start the
     inner transfer *)
  if not (run_until_done sim (fun () -> !tunnel_established)) then None
  else begin
    match !server_conn with
    | None -> None
    | Some sconn ->
      let mss = 1360 in
      let receiver_tx pkt = ignore (Plugins.Datagram.send conn pkt) in
      let sender_tx pkt = ignore (Plugins.Datagram.send sconn pkt) in
      let receiver =
        Tcpsim.Tcp.create_receiver ~sim ~transport:receiver_tx
          ~on_complete:(fun () -> completed := true)
          ()
      in
      let sender =
        Tcpsim.Tcp.create_sender ~sim ~transport:sender_tx ~mss ~total:size
          ~on_done:(fun () -> ())
          ()
      in
      conn.Pquic.Connection.on_message <-
        (fun pkt -> Tcpsim.Tcp.receiver_receive receiver pkt);
      sconn.Pquic.Connection.on_message <-
        (fun pkt -> Tcpsim.Tcp.sender_receive sender pkt);
      t0 := Sim.to_sec (Sim.now sim);
      Tcpsim.Tcp.start_sender sender;
      if run_until_done sim (fun () -> !completed) then
        Some (Sim.to_sec (Sim.now sim) -. !t0)
      else None
  end

(* The default WSP parameter ranges of the evaluation (Section 4):
   d in [2.5, 25] ms, bw in [5, 50] Mbps, lossless. *)
let default_points ?(count = 139) () =
  Wsp.design ~count
    [| { Wsp.lo = 2.5; hi = 25. }; { Wsp.lo = 5.; hi = 50. } |]
  |> List.map (fun p ->
         { Topology.d_ms = p.(0); bw_mbps = p.(1); loss = 0. })

(* The in-flight-communications ranges of the FEC evaluation (Figure 10):
   d in [100, 400] ms, bw in [0.3, 10] Mbps, loss in [1, 8] %. *)
let inflight_points ?(count = 139) () =
  Wsp.design ~count
    [|
      { Wsp.lo = 100.; hi = 400. };
      { Wsp.lo = 0.3; hi = 10. };
      { Wsp.lo = 0.01; hi = 0.08 };
    |]
  |> List.map (fun p ->
         { Topology.d_ms = p.(0); bw_mbps = p.(1); loss = p.(2) })
