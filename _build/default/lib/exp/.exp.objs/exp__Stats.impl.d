lib/exp/stats.ml: Array List Printf
