lib/exp/wsp.mli:
