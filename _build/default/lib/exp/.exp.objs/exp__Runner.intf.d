lib/exp/runner.mli: Netsim Pquic
