lib/exp/wsp.ml: Array List Netsim
