lib/exp/stats.mli:
