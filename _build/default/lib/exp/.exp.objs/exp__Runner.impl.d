lib/exp/runner.ml: Array Float Int64 List Netsim Option Plugins Pquic String Tcpsim Wsp
