(** WSP space-filling experimental design (Santiago, Claeys-Bruno &
    Sergent 2012), as the paper uses to sample its network-parameter
    spaces into 139 points: from a large candidate set, keep a point,
    discard candidates closer than dmin, hop to the nearest survivor,
    repeat — with dmin tuned by bisection to the requested size. *)

type range = { lo : float; hi : float }

val design :
  ?seed:int64 -> ?candidates:int -> count:int -> range array -> float array list
(** [design ~count ranges] returns exactly [count] points (arrays indexed
    like [ranges]), deterministically for a given seed. *)
