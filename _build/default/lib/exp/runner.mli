(** Scenario drivers shared by the experiment harness, benchmarks and
    tests: a PQUIC request/response transfer with an arbitrary plugin mix,
    a raw TCP Cubic transfer over the simulated network, and a TCP transfer
    inside a PQUIC datagram-VPN tunnel — the workloads behind Figures 8-11
    and Table 3. *)

type quic_result = {
  dct : float; (** request to last byte, seconds of simulated time *)
  client_stats : Pquic.Connection.stats;
  server_stats : Pquic.Connection.stats option;
  client_conn : Pquic.Connection.t;
  server_conn : Pquic.Connection.t option;
}

val quic_transfer :
  ?cfg:Pquic.Connection.config ->
  ?server_cfg:Pquic.Connection.config option ->
  ?plugins:Pquic.Plugin.t list ->
  ?to_inject:string list ->
  ?multipath:bool ->
  topo:Netsim.Topology.t ->
  size:int ->
  unit ->
  quic_result option
(** A GET-style transfer: the client requests, the server answers with
    [size] bytes on the same stream. [plugins] populate both local caches;
    [to_inject] drives the plugins_to_inject transport parameter;
    [multipath] gives the client its extra addresses. [None] when the
    transfer does not complete (e.g. a plugin killed the connection). *)

val tcp_direct :
  ?mss:int -> topo:Netsim.Topology.t -> size:int -> unit -> float option
(** Raw TCP Cubic download (server pushes to client) — the "outside the
    tunnel" baseline. Returns the DCT in seconds. *)

val tcp_vpn :
  ?multipath:bool -> topo:Netsim.Topology.t -> size:int -> unit -> float option
(** TCP Cubic inside a PQUIC datagram-VPN tunnel (inner MTU 1400, mss
    1360), optionally spread over two paths with the multipath plugin. The
    DCT clock starts when the inner transfer starts, after the tunnel is
    up. *)

val default_points : ?count:int -> unit -> Netsim.Topology.path_params list
(** The WSP design over the paper's default ranges: d in [2.5, 25] ms,
    bw in [5, 50] Mbps, lossless; [count] defaults to 139. *)

val inflight_points : ?count:int -> unit -> Netsim.Topology.path_params list
(** The in-flight-communications ranges of Figure 10: d in [100, 400] ms,
    bw in [0.3, 10] Mbps, loss in [1, 8] %. *)
