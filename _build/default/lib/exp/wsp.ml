(* WSP space-filling experimental design (Santiago, Claeys-Bruno & Sergent,
   2012), as used by the paper to sample its network-parameter spaces into
   139 points. From a large candidate set, the algorithm keeps a point,
   discards every candidate closer than a distance dmin, hops to the
   nearest survivor and repeats; dmin is tuned by bisection until the kept
   set has the requested size. *)

type range = { lo : float; hi : float }

let _normalize r x = (x -. r.lo) /. (r.hi -. r.lo)
let denormalize r u = r.lo +. (u *. (r.hi -. r.lo))

let distance a b =
  let acc = ref 0. in
  Array.iteri (fun i x -> acc := !acc +. ((x -. b.(i)) ** 2.)) a;
  sqrt !acc

(* One WSP pass at a given dmin over the candidate set; returns the kept
   points (unit cube coordinates). *)
let wsp_pass candidates dmin =
  let n = Array.length candidates in
  let alive = Array.make n true in
  let kept = ref [] in
  let current = ref 0 in
  let continue = ref true in
  while !continue do
    let c = !current in
    kept := c :: !kept;
    alive.(c) <- false;
    (* discard the neighbourhood of the kept point *)
    for j = 0 to n - 1 do
      if alive.(j) && distance candidates.(c) candidates.(j) < dmin then
        alive.(j) <- false
    done;
    (* hop to the closest survivor *)
    let best = ref (-1) in
    let best_d = ref infinity in
    for j = 0 to n - 1 do
      if alive.(j) then begin
        let d = distance candidates.(c) candidates.(j) in
        if d < !best_d then begin
          best_d := d;
          best := j
        end
      end
    done;
    if !best < 0 then continue := false else current := !best
  done;
  List.rev_map (fun idx -> candidates.(idx)) !kept

(* Sample [count] points covering the given ranges. *)
let design ?(seed = 0xD0E5L) ?(candidates = 4096) ~count ranges =
  let dims = Array.length ranges in
  let rng = Netsim.Rng.create seed in
  let cand =
    Array.init candidates (fun _ ->
        Array.init dims (fun _ -> Netsim.Rng.float rng))
  in
  (* bisection on dmin to hit the requested count *)
  let lo = ref 0.0 and hi = ref (sqrt (float_of_int dims)) in
  let best = ref (wsp_pass cand 0.0) in
  for _ = 1 to 40 do
    let mid = (!lo +. !hi) /. 2. in
    let kept = wsp_pass cand mid in
    if List.length kept >= count then begin
      best := kept;
      lo := mid
    end
    else hi := mid
  done;
  let kept = !best in
  let kept =
    (* trim deterministically to exactly [count] *)
    List.filteri (fun i _ -> i < count) kept
  in
  List.map
    (fun unit_pt -> Array.mapi (fun d u -> denormalize ranges.(d) u) unit_pt)
    kept
