(* A Plugin Validator (PV): validates plugin bindings, maintains a Merkle
   prefix tree of the plugins it vouches for, and signs its root at each
   epoch (the STR). Validation applies the static checks a PRE would run
   (eBPF verification of every pluglet) and, when the source is available,
   the termination check of Section 5 — mirroring "the validation itself
   depends on the PV capabilities". *)

type str = { pv_id : string; epoch : int; root : string; signature : string }

type failure = { plugin : string; epoch : int; reason : string }

type t = {
  id : string;
  signing_key : string;
  mutable epoch : int;
  tree : Merkle.t;
  mutable current_str : str option;
  mutable failures : failure list;
  require_termination_proof : bool;
  depth : int;
}

let create ?(depth = 16) ?(require_termination_proof = false) ~id ~signing_key () =
  {
    id;
    signing_key;
    epoch = 0;
    (* the empty-leaf constant c is distinct per PV (Section 3.3) *)
    tree = Merkle.create ~depth ~empty_constant:(Sha256.digest ("empty:" ^ id)) ();
    current_str = None;
    failures = [];
    require_termination_proof;
    depth;
  }

let str_payload ~pv_id ~epoch ~root =
  Printf.sprintf "STR|%s|%d|" pv_id epoch ^ root

let sign_str t root =
  {
    pv_id = t.id;
    epoch = t.epoch;
    root;
    signature = Sha256.hmac ~key:t.signing_key (str_payload ~pv_id:t.id ~epoch:t.epoch ~root);
  }

(* STR signature check — any participant holding the PV's verification key
   (here: the MAC key registered at the PR) can run it. *)
let check_str ~key (s : str) =
  Sha256.hmac ~key (str_payload ~pv_id:s.pv_id ~epoch:s.epoch ~root:s.root)
  = s.signature

(* The actual validation work on a submitted plugin. *)
let validate_plugin t (plugin : Pquic.Plugin.t) =
  let check_pluglet (p : Pquic.Plugin.pluglet) =
    match Pquic.Plugin.compiled p with
    | exception Plc.Compile.Error m -> Error ("compilation failed: " ^ m)
    | prog, stack_size -> (
      match
        Ebpf.Verifier.verify ~stack_size
          ~known_helper:Pquic.Api.is_known_helper prog
      with
      | Error errs ->
        Error
          ("verifier: "
           ^ String.concat "; " (List.map Ebpf.Verifier.error_to_string errs))
      | Ok () ->
        if t.require_termination_proof then
          match p.Pquic.Plugin.code with
          | Pquic.Plugin.Source f -> (
            match Plc.Terminate.check f with
            | Plc.Terminate.Proven -> Ok ()
            | Plc.Terminate.Unproven why ->
              Error ("termination not proven: " ^ why))
          | Pquic.Plugin.Bytecode _ ->
            Error "termination proof requires source"
        else Ok ())
  in
  let rec all = function
    | [] -> Ok ()
    | p :: rest -> ( match check_pluglet p with Ok () -> all rest | e -> e)
  in
  all plugin.Pquic.Plugin.pluglets

(* Submit a plugin for validation at the current epoch. On success its
   binding enters the tree; on failure the cause is recorded for the PR. *)
let submit t (plugin : Pquic.Plugin.t) =
  match validate_plugin t plugin with
  | Ok () ->
    Merkle.add t.tree
      {
        Merkle.name = plugin.Pquic.Plugin.name;
        code = Pquic.Plugin.serialize plugin;
      };
    Ok ()
  | Error reason ->
    t.failures <-
      { plugin = plugin.Pquic.Plugin.name; epoch = t.epoch; reason }
      :: t.failures;
    Error reason

(* Inject a spurious binding — used by tests and the security analysis to
   show developers detect it (Appendix B.2). *)
let inject_spurious t ~name ~code = Merkle.add t.tree { Merkle.name; code }

(* Close the epoch: recompute the tree root and sign it. *)
let publish t =
  t.epoch <- t.epoch + 1;
  let s = sign_str t (Merkle.root t.tree) in
  t.current_str <- Some s;
  s

let current_str t =
  match t.current_str with Some s -> s | None -> publish t

(* PQUIC user lookup: authentication path for a plugin name, Θ(log n + α).
   Other bindings at the leaf are returned as hashes only (bandwidth
   optimization of Appendix B.2.1). *)
let prove t name =
  match Merkle.find t.tree name with
  | None -> None
  | Some _ -> Some (Merkle.prove t.tree name)

(* Developer lookup: same path, but co-located bindings in clear text so
   the developer can spot a spurious binding under their name. *)
let developer_lookup t name =
  let proof = Merkle.prove t.tree name in
  let leaf =
    Option.value ~default:[]
      (Hashtbl.find_opt t.tree.Merkle.leaves (Merkle.prefix_of t.tree name))
  in
  (proof, leaf)

(* The developer-side checks of Appendix B.1: verify that the leaf contains
   exactly our binding (or none), and that it folds to the signed root. *)
type developer_verdict = Clean | Spurious of string list | Tampered

let developer_check t ~name ~code =
  let _, leaf = developer_lookup t name in
  let str = current_str t in
  let mine, others = List.partition (fun b -> b.Merkle.name = name) leaf in
  let spurious =
    List.filter_map
      (fun (b : Merkle.binding) ->
        match mine with
        | [ m ] when m.code = b.code -> None
        | _ -> Some b.Merkle.name)
      mine
  in
  ignore others;
  let root_ok =
    match mine with
    | [] ->
      let proof = Merkle.prove t.tree name in
      Merkle.verify_absent ~root:str.root ~depth:t.depth
        ~empty_constant:t.tree.Merkle.empty_leaf ~name proof
    | _ ->
      let proof = Merkle.prove t.tree name in
      Merkle.verify_present ~root:str.root ~depth:t.depth ~name ~code proof
  in
  if not root_ok then
    (* either our code was replaced or the tree does not match the STR *)
    if mine <> [] && (List.hd mine).code <> code then Spurious [ name ]
    else Tampered
  else if spurious <> [] then Spurious spurious
  else Clean

let failures t = t.failures
