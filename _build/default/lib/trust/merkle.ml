(* Merkle prefix tree (Section 3.3): a fixed-depth binary tree where the
   binding (pluginname || plugincode) of each validated plugin sits at the
   leaf addressed by the truncated bits of H(pluginname). Empty leaves take
   a per-validator constant c; interior nodes hash H(h_left || h_right);
   leaves holding several colliding bindings hash the concatenation of the
   bindings' hashes. Authentication paths are Θ(log n + α) and are the
   proofs of consistency PQUIC peers check before accepting a plugin;
   proofs of absence show either the empty constant or a binding list
   without the queried name (the developer-lookup side of Appendix B). *)

type binding = { name : string; code : string }

let binding_bytes b = b.name ^ "||" ^ b.code

let binding_hash b = Sha256.digest (binding_bytes b)

type t = {
  depth : int;
  empty_leaf : string; (* the constant c, distinct per validator *)
  leaves : (string, binding list) Hashtbl.t; (* prefix bits -> bindings *)
}

let create ?(depth = 16) ~empty_constant () =
  { depth; empty_leaf = empty_constant; leaves = Hashtbl.create 64 }

let prefix_of t name = Sha256.bit_prefix (Sha256.digest name) t.depth

(* Insert or replace the binding for [b.name]. Bindings whose name hashes
   to the same truncated prefix share a leaf (a linked list in the paper);
   within a leaf they are ordered by name so the leaf hash is canonical. *)
let add t b =
  let p = prefix_of t b.name in
  let existing = Option.value ~default:[] (Hashtbl.find_opt t.leaves p) in
  let others = List.filter (fun b' -> b'.name <> b.name) existing in
  let bindings = List.sort (fun a b -> compare a.name b.name) (b :: others) in
  Hashtbl.replace t.leaves p bindings

let remove t name =
  let p = prefix_of t name in
  match Hashtbl.find_opt t.leaves p with
  | None -> ()
  | Some bs -> (
    match List.filter (fun b -> b.name <> name) bs with
    | [] -> Hashtbl.remove t.leaves p
    | bs' -> Hashtbl.replace t.leaves p bs')

let find t name =
  match Hashtbl.find_opt t.leaves (prefix_of t name) with
  | None -> None
  | Some bs -> List.find_opt (fun b -> b.name = name) bs

let leaf_hash t = function
  | [] -> t.empty_leaf
  | [ b ] -> binding_hash b
  | bs -> Sha256.digest (String.concat "" (List.map binding_hash bs))

(* Hash of an all-empty subtree whose leaves are [levels] below. *)
let empty_hash t =
  let memo = Array.make (t.depth + 1) "" in
  memo.(0) <- t.empty_leaf;
  for k = 1 to t.depth do
    memo.(k) <- Sha256.digest (memo.(k - 1) ^ memo.(k - 1))
  done;
  fun levels -> memo.(levels)

(* Value of the node at [prefix] (length gives the level). *)
let rec node_hash t empties prefix =
  let level = String.length prefix in
  if level = t.depth then
    leaf_hash t (Option.value ~default:[] (Hashtbl.find_opt t.leaves prefix))
  else begin
    (* prune: no occupied leaf under this prefix -> precomputed empty hash *)
    let occupied =
      Hashtbl.fold
        (fun p _ acc -> acc || String.length p >= level && String.sub p 0 level = prefix)
        t.leaves false
    in
    if not occupied then empties (t.depth - level)
    else
      Sha256.digest
        (node_hash t empties (prefix ^ "0") ^ node_hash t empties (prefix ^ "1"))
  end

let root t = node_hash t (empty_hash t) ""

(* ------------------------------------------------------------------ *)
(* Authentication paths                                                 *)
(* ------------------------------------------------------------------ *)

type leaf_statement =
  | Present of { before : string list; after : string list }
    (* hashes of the other bindings sharing the leaf, in canonical order *)
  | Absent_empty
  | Absent_occupied of string list (* all binding hashes at the leaf *)

type proof = {
  prefix : string;        (* bit path, root to leaf *)
  siblings : string list; (* sibling hashes, leaf level first *)
  statement : leaf_statement;
}

(* Build the authentication path for [name]: the red values of Figure 5. *)
let prove t name =
  let p = prefix_of t name in
  let empties = empty_hash t in
  let siblings =
    List.init t.depth (fun i ->
        (* sibling of the node at level depth-i (leaf level first) *)
        let level = t.depth - i in
        let node_prefix = String.sub p 0 level in
        let parent = String.sub p 0 (level - 1) in
        let sibling_prefix =
          parent ^ if node_prefix.[level - 1] = '0' then "1" else "0"
        in
        node_hash t empties sibling_prefix)
  in
  let bindings = Option.value ~default:[] (Hashtbl.find_opt t.leaves p) in
  let statement =
    match bindings with
    | [] -> Absent_empty
    | bs ->
      if List.exists (fun b -> b.name = name) bs then begin
        let rec split before = function
          | [] -> (List.rev before, [])
          | b :: rest ->
            if b.name = name then (List.rev before, List.map binding_hash rest)
            else split (binding_hash b :: before) rest
        in
        let before, after = split [] bs in
        Present { before; after }
      end
      else Absent_occupied (List.map binding_hash bs)
  in
  { prefix = p; siblings; statement }

(* Fold a leaf value up to the root along [prefix] using [siblings]. *)
let climb ~prefix ~siblings leaf_value =
  let value = ref leaf_value in
  List.iteri
    (fun i sibling ->
      let level = String.length prefix - i in
      let bit = prefix.[level - 1] in
      value :=
        if bit = '0' then Sha256.digest (!value ^ sibling)
        else Sha256.digest (sibling ^ !value))
    siblings;
  !value

(* Verify a proof of presence: recompute the leaf from the binding and the
   co-located binding hashes, then the root (green values of Figure 5). *)
let verify_present ~root ~depth ~name ~code proof =
  String.length proof.prefix = depth
  && proof.prefix = Sha256.bit_prefix (Sha256.digest name) depth
  && List.length proof.siblings = depth
  &&
  match proof.statement with
  | Present { before; after } ->
    let bh = binding_hash { name; code } in
    let leaf_value =
      match (before, after) with
      | [], [] -> bh
      | _ -> Sha256.digest (String.concat "" (before @ [ bh ] @ after))
    in
    climb ~prefix:proof.prefix ~siblings:proof.siblings leaf_value = root
  | Absent_empty | Absent_occupied _ -> false

(* Verify a proof of absence (developer lookup finding no spurious
   binding): the leaf is empty, or occupied only by other bindings. *)
let verify_absent ~root ~depth ~empty_constant ~name proof =
  String.length proof.prefix = depth
  && proof.prefix = Sha256.bit_prefix (Sha256.digest name) depth
  &&
  match proof.statement with
  | Present _ -> false
  | Absent_empty ->
    climb ~prefix:proof.prefix ~siblings:proof.siblings empty_constant = root
  | Absent_occupied hashes ->
    hashes <> []
    && climb ~prefix:proof.prefix ~siblings:proof.siblings
         (match hashes with
          | [ h ] -> h
          | hs -> Sha256.digest (String.concat "" hs))
       = root

let size t = Hashtbl.fold (fun _ bs acc -> acc + List.length bs) t.leaves 0

(* ------------------------------------------------------------------ *)
(* Proof wire format                                                    *)
(* ------------------------------------------------------------------ *)

let write_str16 buf s =
  Buffer.add_uint16_be buf (String.length s);
  Buffer.add_string buf s

let read_str16 s pos =
  let len = String.get_uint16_be s pos in
  (String.sub s (pos + 2) len, pos + 2 + len)

let serialize_proof p =
  let buf = Buffer.create 1024 in
  write_str16 buf p.prefix;
  Buffer.add_uint16_be buf (List.length p.siblings);
  List.iter (write_str16 buf) p.siblings;
  (match p.statement with
  | Present { before; after } ->
    Buffer.add_uint8 buf 0;
    Buffer.add_uint16_be buf (List.length before);
    List.iter (write_str16 buf) before;
    Buffer.add_uint16_be buf (List.length after);
    List.iter (write_str16 buf) after
  | Absent_empty -> Buffer.add_uint8 buf 1
  | Absent_occupied hs ->
    Buffer.add_uint8 buf 2;
    Buffer.add_uint16_be buf (List.length hs);
    List.iter (write_str16 buf) hs);
  Buffer.contents buf

exception Malformed_proof

let deserialize_proof s =
  try
    let prefix, pos = read_str16 s 0 in
    let n = String.get_uint16_be s pos in
    let pos = ref (pos + 2) in
    let siblings =
      List.init n (fun _ ->
          let v, p = read_str16 s !pos in
          pos := p;
          v)
    in
    let tag = Char.code s.[!pos] in
    incr pos;
    let read_list () =
      let n = String.get_uint16_be s !pos in
      pos := !pos + 2;
      List.init n (fun _ ->
          let v, p = read_str16 s !pos in
          pos := p;
          v)
    in
    let statement =
      match tag with
      | 0 ->
        let before = read_list () in
        let after = read_list () in
        Present { before; after }
      | 1 -> Absent_empty
      | 2 -> Absent_occupied (read_list ())
      | _ -> raise Malformed_proof
    in
    { prefix; siblings; statement }
  with Invalid_argument _ | Failure _ -> raise Malformed_proof
