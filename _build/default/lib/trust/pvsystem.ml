(* End-to-end glue of the secure plugin management system (Figure 4):
   builds the [prover] a PQUIC peer uses to answer PLUGIN_VALIDATE with a
   PLUGIN_PROOF, and the [verifier] the receiving peer runs against the
   STRs of the validators it trusts, under its pinned requirement formula
   (e.g. PV1&(PV2|PV3)). *)

type t = {
  repo : Repository.t;
  validators : (string * Validator.t) list;
  depth : int;
}

let create ?(depth = 16) ~repo ~validators () = { repo; validators; depth }

let validator t id = List.assoc_opt id t.validators

(* One item of a PLUGIN_PROOF: the STR and the authentication path from one
   validator. *)
type proof_item = {
  pv_id : string;
  str : Validator.str;
  path : Merkle.proof;
}

let write_str16 buf s =
  Buffer.add_uint16_be buf (String.length s);
  Buffer.add_string buf s

let write_str32 buf s =
  Buffer.add_int32_be buf (Int32.of_int (String.length s));
  Buffer.add_string buf s

let serialize_bundle items =
  let buf = Buffer.create 2048 in
  Buffer.add_uint16_be buf (List.length items);
  List.iter
    (fun it ->
      write_str16 buf it.pv_id;
      Buffer.add_int32_be buf (Int32.of_int it.str.Validator.epoch);
      write_str16 buf it.str.Validator.root;
      write_str16 buf it.str.Validator.signature;
      write_str32 buf (Merkle.serialize_proof it.path))
    items;
  Buffer.contents buf

exception Malformed_bundle

let deserialize_bundle s =
  try
    let n = String.get_uint16_be s 0 in
    let pos = ref 2 in
    let str16 () =
      let len = String.get_uint16_be s !pos in
      let v = String.sub s (!pos + 2) len in
      pos := !pos + 2 + len;
      v
    in
    let str32 () =
      let len = Int32.to_int (String.get_int32_be s !pos) in
      let v = String.sub s (!pos + 4) len in
      pos := !pos + 4 + len;
      v
    in
    List.init n (fun _ ->
        let pv_id = str16 () in
        let epoch = Int32.to_int (String.get_int32_be s !pos) in
        pos := !pos + 4;
        let root = str16 () in
        let signature = str16 () in
        let path = Merkle.deserialize_proof (str32 ()) in
        { pv_id; str = { Validator.pv_id; epoch; root; signature }; path })
  with Invalid_argument _ | Failure _ | Merkle.Malformed_proof ->
    raise Malformed_bundle

(* The prover side: gather authentication paths from the validators named
   in the peer's formula until it is satisfiable with the proofs we hold.
   Returns None when the requirement cannot be met. *)
let prover t ~name ~formula =
  match Policy.parse formula with
  | exception Policy.Parse_error _ -> None
  | f ->
    let items =
      List.filter_map
        (fun pv_id ->
          match validator t pv_id with
          | None -> None
          | Some v -> (
            match Validator.prove v name with
            | None -> None
            | Some path ->
              Some { pv_id; str = Validator.current_str v; path }))
        (Policy.validators f)
    in
    let have id = List.exists (fun it -> it.pv_id = id) items in
    if Policy.satisfied f ~valid:have then Some (serialize_bundle items)
    else None

(* The verifier side, bound to a receiving peer: trusts the STRs it can
   authenticate with the PR-registered keys, checks each authentication
   path against its STR root, and accepts if its own pinned [formula] is
   satisfied by the set of validators with valid proofs. *)
let verifier t ~formula =
  let f = Policy.parse formula in
  fun ~name ~bytes ~proof ->
    match deserialize_bundle proof with
    | exception Malformed_bundle -> false
    | items ->
      let valid_items =
        List.filter
          (fun it ->
            match Repository.pv_key t.repo it.pv_id with
            | None -> false
            | Some key ->
              Validator.check_str ~key it.str
              && (* the STR must match the (non-equivocating) log at the PR *)
              (match Repository.str_at_epoch t.repo it.pv_id it.str.Validator.epoch with
               | Some logged -> logged.Validator.root = it.str.Validator.root
               | None -> false)
              && Merkle.verify_present ~root:it.str.Validator.root
                   ~depth:t.depth ~name ~code:bytes it.path)
          items
      in
      let valid id = List.exists (fun it -> it.pv_id = id) valid_items in
      Policy.satisfied f ~valid

(* Convenience: run the full developer → PR → PV pipeline for a plugin. *)
let publish_and_validate t ~developer (plugin : Pquic.Plugin.t) =
  Repository.publish t.repo ~developer plugin;
  List.map
    (fun (id, v) ->
      let r = Validator.submit v plugin in
      (id, r))
    t.validators

(* Close the epoch at every validator and record the STRs at the PR. *)
let publish_epoch t =
  List.iter
    (fun (_, v) ->
      let str = Validator.publish v in
      match Repository.record_str t.repo str with
      | Ok () -> ()
      | Error e -> Repository.report_alert t.repo e)
    t.validators
