(* Validation-requirement formulas (Section 3.1): a PQUIC peer pins its
   safety requirement as a logical expression over plugin validators, e.g.
   "PV1&(PV2|PV3)". Grammar: or := and ('|' and)*, and := atom ('&' atom)*,
   atom := ident | '(' or ')'. *)

type t = Pv of string | And of t * t | Or of t * t

exception Parse_error of string

let parse input =
  let n = String.length input in
  let pos = ref 0 in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let skip_ws () =
    while !pos < n && (input.[!pos] = ' ' || input.[!pos] = '\t') do incr pos done
  in
  let ident () =
    skip_ws ();
    let start = !pos in
    while
      !pos < n
      && (match input.[!pos] with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true
          | _ -> false)
    do
      incr pos
    done;
    if !pos = start then raise (Parse_error (Printf.sprintf "identifier expected at %d" start));
    String.sub input start (!pos - start)
  in
  let rec parse_or () =
    let left = parse_and () in
    skip_ws ();
    match peek () with
    | Some '|' ->
      incr pos;
      Or (left, parse_or ())
    | _ -> left
  and parse_and () =
    let left = parse_atom () in
    skip_ws ();
    match peek () with
    | Some '&' ->
      incr pos;
      And (left, parse_and ())
    | _ -> left
  and parse_atom () =
    skip_ws ();
    match peek () with
    | Some '(' ->
      incr pos;
      let e = parse_or () in
      skip_ws ();
      (match peek () with
      | Some ')' -> incr pos; e
      | _ -> raise (Parse_error "missing closing parenthesis"))
    | _ -> Pv (ident ())
  in
  let e = parse_or () in
  skip_ws ();
  if !pos <> n then raise (Parse_error (Printf.sprintf "trailing input at %d" !pos));
  e

(* Does the set of validators for which we hold valid proofs satisfy the
   formula? *)
let rec satisfied formula ~valid =
  match formula with
  | Pv id -> valid id
  | And (a, b) -> satisfied a ~valid && satisfied b ~valid
  | Or (a, b) -> satisfied a ~valid || satisfied b ~valid

(* All validator ids mentioned — what a prover must gather paths from. *)
let rec validators = function
  | Pv id -> [ id ]
  | And (a, b) | Or (a, b) ->
    validators a @ List.filter (fun v -> not (List.mem v (validators a))) (validators b)

let rec to_string = function
  | Pv id -> id
  | And (a, b) -> Printf.sprintf "(%s&%s)" (to_string a) (to_string b)
  | Or (a, b) -> Printf.sprintf "(%s|%s)" (to_string a) (to_string b)
