(** SHA-256 (FIPS 180-4), from scratch — the collision-resistant hash H
    underlying the plugin management system's Merkle prefix trees and
    bindings (Section 3). *)

val digest : string -> string
(** 32-byte digest. *)

val hex : string -> string
val digest_hex : string -> string

val hmac : key:string -> string -> string
(** HMAC-SHA256, used to simulate STR signatures (a keyed MAC over the
    root; the repository's key registry plays the PKI's role). *)

val bit_prefix : string -> int -> string
(** First [n] bits as a '0'/'1' string — prefix-tree paths. *)
