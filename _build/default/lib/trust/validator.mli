(** A Plugin Validator (PV): validates plugin bindings, maintains a Merkle
    prefix tree of the plugins it vouches for, and signs its root at each
    epoch (the Signed Tree Root). Validation applies the static checks a
    PRE would run (eBPF verification of every pluglet) and — for strict
    validators holding the source — the Section 5 termination check. *)

type str = { pv_id : string; epoch : int; root : string; signature : string }

type failure = { plugin : string; epoch : int; reason : string }

type t = {
  id : string;
  signing_key : string;
  mutable epoch : int;
  tree : Merkle.t;
  mutable current_str : str option;
  mutable failures : failure list;
  require_termination_proof : bool;
  depth : int;
}

val create :
  ?depth:int -> ?require_termination_proof:bool -> id:string ->
  signing_key:string -> unit -> t

val check_str : key:string -> str -> bool
(** STR signature check, runnable by anyone holding the PV's verification
    key (registered at the repository). *)

val validate_plugin : t -> Pquic.Plugin.t -> (unit, string) result

val submit : t -> Pquic.Plugin.t -> (unit, string) result
(** Validate at the current epoch; success puts the binding in the tree,
    failure records the cause for the repository. *)

val inject_spurious : t -> name:string -> code:string -> unit
(** A malicious validator planting a binding — used by tests and the
    Appendix B analysis to show developers detect it. *)

val publish : t -> str
(** Close the epoch: recompute the root and sign it. *)

val current_str : t -> str

val prove : t -> string -> Merkle.proof option
(** PQUIC user lookup: the authentication path, Θ(log n + α); co-located
    bindings come as hashes only (the Appendix B bandwidth optimization). *)

val developer_lookup : t -> string -> Merkle.proof * Merkle.binding list
(** Developer lookup: same path, but co-located bindings in clear text so
    the developer can spot a spurious binding under their name. *)

type developer_verdict = Clean | Spurious of string list | Tampered

val developer_check : t -> name:string -> code:string -> developer_verdict
val failures : t -> failure list
