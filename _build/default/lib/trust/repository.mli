(** The Plugin Repository (PR): central identities, distributed validation.
    Hosts plugins published by developers, registers validator
    verification keys, and stores each PV's STRs in an append-only
    hash-chained log (Appendix B.1) so equivocation — different STRs for
    the same epoch — is detectable and alerted. *)

type str_entry = {
  str : Validator.str;
  prev_hash : string;
  entry_hash : string;
}

type t

val create : unit -> t

exception Rejected of string

val publish : t -> developer:string -> Pquic.Plugin.t -> unit
(** Names are globally unique: a second publish under the same name must
    come from the owning developer.
    @raise Rejected on a takeover attempt. *)

val fetch : t -> string -> string option
val plugin_names : t -> string list
val developer_of : t -> string -> string option

val register_pv : t -> id:string -> key:string -> unit
val pv_key : t -> string -> string option

val record_str : t -> Validator.str -> (unit, string) result
(** Append-only: a second, different STR for an already-logged epoch is
    equivocation — it is refused and an alert is raised. *)

val latest_str : t -> string -> Validator.str option
val str_at_epoch : t -> string -> int -> Validator.str option

val audit_log : t -> string -> bool
(** Check the hash chain of a PV's STR log; tampering breaks it. *)

val report_alert : t -> string -> unit
val alerts : t -> string list
