(** End-to-end glue of the secure plugin management system (Figure 4):
    builds the prover a PQUIC peer uses to answer PLUGIN_VALIDATE with a
    PLUGIN_PROOF bundle, and the verifier the receiving peer runs against
    the STRs of the validators it trusts, under its pinned requirement
    formula. *)

type t

val create :
  ?depth:int -> repo:Repository.t ->
  validators:(string * Validator.t) list -> unit -> t

type proof_item = {
  pv_id : string;
  str : Validator.str;
  path : Merkle.proof;
}

val serialize_bundle : proof_item list -> string

exception Malformed_bundle

val deserialize_bundle : string -> proof_item list

val prover : t -> name:string -> formula:string -> string option
(** Gather authentication paths from the validators named in the peer's
    formula; [None] when the requirement cannot be met. *)

val verifier :
  t -> formula:string ->
  name:string -> bytes:string -> proof:string -> bool
(** Check each path against the (non-equivocating) logged STR of its
    validator and accept when the receiver's own pinned [formula] is
    satisfied by the validators with valid proofs. *)

val publish_and_validate :
  t -> developer:string -> Pquic.Plugin.t -> (string * (unit, string) result) list
(** Developer → PR → every PV, returning each validator's verdict. *)

val publish_epoch : t -> unit
(** Close the epoch at every validator and record the STRs at the PR. *)
