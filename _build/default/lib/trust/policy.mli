(** Validation-requirement formulas (Section 3.1): a PQUIC peer pins its
    safety requirement as a logical expression over plugin validators,
    e.g. ["PV1&(PV2|PV3)"]. *)

type t = Pv of string | And of t * t | Or of t * t

exception Parse_error of string

val parse : string -> t
(** Grammar: or := and ('|' and)*, and := atom ('&' atom)*,
    atom := ident | '(' or ')'.
    @raise Parse_error on malformed input. *)

val satisfied : t -> valid:(string -> bool) -> bool
(** Does the set of validators for which we hold valid proofs satisfy the
    formula? *)

val validators : t -> string list
(** Every validator id mentioned — what a prover must gather paths from. *)

val to_string : t -> string
