(** Merkle prefix tree (Section 3.3): the binding (pluginname ||
    plugincode) of each validated plugin sits at the leaf addressed by the
    truncated bits of H(pluginname). Empty leaves take a per-validator
    constant c; interior nodes hash H(h_left || h_right); leaves holding
    several colliding bindings hash the concatenation of the bindings'
    hashes. Authentication paths are Θ(log n + α) — the proofs of
    consistency PQUIC peers check before accepting a plugin; proofs of
    absence serve the developer lookup of Appendix B. *)

type binding = { name : string; code : string }

val binding_bytes : binding -> string
val binding_hash : binding -> string

type t = {
  depth : int;
  empty_leaf : string; (** the constant c, distinct per validator *)
  leaves : (string, binding list) Hashtbl.t;
}

val create : ?depth:int -> empty_constant:string -> unit -> t
(** [depth] defaults to 16 — collisions are rare below millions of
    plugins yet exercised in tests with tiny depths. *)

val prefix_of : t -> string -> string
val add : t -> binding -> unit
(** Insert or replace the binding for the name; colliding bindings share a
    leaf in canonical (name) order. *)

val remove : t -> string -> unit
val find : t -> string -> binding option
val root : t -> string
val size : t -> int

type leaf_statement =
  | Present of { before : string list; after : string list }
    (** hashes of the other bindings sharing the leaf, in order *)
  | Absent_empty
  | Absent_occupied of string list

type proof = {
  prefix : string;        (** bit path, root to leaf *)
  siblings : string list; (** sibling hashes, leaf level first *)
  statement : leaf_statement;
}

val prove : t -> string -> proof
(** The authentication path for a name — the red values of Figure 5;
    doubles as a proof of absence when the name is not in the tree. *)

val verify_present :
  root:string -> depth:int -> name:string -> code:string -> proof -> bool
(** Recompute the leaf from the binding and the co-located hashes, then the
    root along the path (the green values of Figure 5). *)

val verify_absent :
  root:string -> depth:int -> empty_constant:string -> name:string ->
  proof -> bool

val serialize_proof : proof -> string

exception Malformed_proof

val deserialize_proof : string -> proof
