lib/trust/repository.mli: Pquic Validator
