lib/trust/validator.mli: Merkle Pquic
