lib/trust/policy.mli:
