lib/trust/sha256.mli:
