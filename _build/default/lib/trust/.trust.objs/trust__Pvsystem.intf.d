lib/trust/pvsystem.mli: Merkle Pquic Repository Validator
