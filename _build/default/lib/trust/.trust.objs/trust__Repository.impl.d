lib/trust/repository.ml: Hashtbl List Option Pquic Printf Sha256 String Validator
