lib/trust/policy.ml: List Printf String
