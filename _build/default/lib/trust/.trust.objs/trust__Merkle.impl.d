lib/trust/merkle.ml: Array Buffer Char Hashtbl List Option Sha256 String
