lib/trust/pvsystem.ml: Buffer Int32 List Merkle Policy Pquic Repository String Validator
