lib/trust/merkle.mli: Hashtbl
