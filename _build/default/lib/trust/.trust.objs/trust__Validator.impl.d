lib/trust/validator.ml: Ebpf Hashtbl List Merkle Option Plc Pquic Printf Sha256 String
