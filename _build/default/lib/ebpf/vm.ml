(* Interpreting eBPF virtual machine with runtime memory monitoring.

   The paper's PRE injects bounds-checking instructions when JITing pluglet
   bytecode; this interpreter performs the same checks on every load and
   store instead. Memory is organized as disjoint *regions* (pluglet stack,
   plugin heap, host-provided input/output buffers) mapped at synthetic
   64-bit base addresses. Any access outside a mapped region, or a write to
   a read-only region, raises [Memory_violation] — the host reacts by
   removing the plugin and terminating the connection (Section 2.1). *)

type perm = Ro | Rw

type region = {
  rid : int;
  rname : string;
  base : int64;
  mem : Bytes.t;
  perm : perm;
}

exception Memory_violation of string
exception Fuel_exhausted
exception Helper_failure of string

type t = {
  mutable regions : region list;
  helpers : (int, helper) Hashtbl.t;
  stack_size : int;
  mutable next_rid : int;
  mutable next_base : int64;
  max_insns : int;
  mutable executed : int; (* instructions executed over the VM lifetime *)
}

and helper = t -> int64 array -> int64

let region_alignment = 0x0001_0000_0000L (* 4 GiB of address space per region *)

let create ?(stack_size = 512) ?(max_insns = 4_000_000) () =
  {
    regions = [];
    helpers = Hashtbl.create 16;
    stack_size;
    next_rid = 0;
    next_base = region_alignment;
    max_insns;
    executed = 0;
  }

let register_helper vm id f = Hashtbl.replace vm.helpers id f

let map_region vm ~name ~perm mem =
  let r =
    { rid = vm.next_rid; rname = name; base = vm.next_base; mem; perm }
  in
  vm.next_rid <- vm.next_rid + 1;
  vm.next_base <- Int64.add vm.next_base region_alignment;
  vm.regions <- r :: vm.regions;
  r

let unmap_region vm r =
  vm.regions <- List.filter (fun r' -> r'.rid <> r.rid) vm.regions

let find_region vm addr len =
  let fits r =
    let open Int64 in
    unsigned_compare addr r.base >= 0
    && unsigned_compare
         (add addr (of_int len))
         (add r.base (of_int (Bytes.length r.mem)))
       <= 0
    (* guard against wrap-around *)
    && unsigned_compare (add addr (of_int len)) addr >= 0
  in
  List.find_opt fits vm.regions

let resolve vm ~write addr len =
  match find_region vm addr len with
  | None ->
    raise
      (Memory_violation
         (Printf.sprintf "access of %d bytes at 0x%Lx outside any region" len
            addr))
  | Some r ->
    if write && r.perm = Ro then
      raise
        (Memory_violation
           (Printf.sprintf "write of %d bytes at 0x%Lx in read-only region %s"
              len addr r.rname));
    (r, Int64.to_int (Int64.sub addr r.base))

let load vm addr sz =
  let len = Insn.size_bytes sz in
  let r, off = resolve vm ~write:false addr len in
  match sz with
  | Insn.W8 -> Int64.of_int (Char.code (Bytes.get r.mem off))
  | Insn.W16 -> Int64.of_int (Bytes.get_uint16_le r.mem off)
  | Insn.W32 ->
    Int64.logand (Int64.of_int32 (Bytes.get_int32_le r.mem off)) 0xffffffffL
  | Insn.W64 -> Bytes.get_int64_le r.mem off

let store vm addr sz v =
  let len = Insn.size_bytes sz in
  let r, off = resolve vm ~write:true addr len in
  match sz with
  | Insn.W8 -> Bytes.set_uint8 r.mem off (Int64.to_int v land 0xff)
  | Insn.W16 -> Bytes.set_uint16_le r.mem off (Int64.to_int v land 0xffff)
  | Insn.W32 -> Bytes.set_int32_le r.mem off (Int64.to_int32 v)
  | Insn.W64 -> Bytes.set_int64_le r.mem off v

(* Reads [len] bytes crossing no region boundary; used by helpers
   (pl_memcpy & co) which must obey the same monitor as bytecode. *)
let read_bytes vm addr len =
  let r, off = resolve vm ~write:false addr len in
  Bytes.sub r.mem off len

let write_bytes vm addr b =
  let len = Bytes.length b in
  let r, off = resolve vm ~write:true addr len in
  Bytes.blit b 0 r.mem off len

let fill_bytes vm addr len c =
  let r, off = resolve vm ~write:true addr len in
  Bytes.fill r.mem off len c

let u64_of_i32 v = Int64.logand (Int64.of_int32 v) 0xffffffffL

let alu64 op a b =
  let open Int64 in
  match op with
  | Insn.Add -> add a b
  | Insn.Sub -> sub a b
  | Insn.Mul -> mul a b
  | Insn.Div -> if b = 0L then 0L else unsigned_div a b
  | Insn.Mod -> if b = 0L then a else unsigned_rem a b
  | Insn.Or -> logor a b
  | Insn.And -> logand a b
  | Insn.Xor -> logxor a b
  | Insn.Lsh -> shift_left a (to_int (logand b 63L))
  | Insn.Rsh -> shift_right_logical a (to_int (logand b 63L))
  | Insn.Arsh -> shift_right a (to_int (logand b 63L))
  | Insn.Mov -> b
  | Insn.Neg -> neg a

let alu32 op a b =
  let a32 = Int64.to_int32 a and b32 = Int64.to_int32 b in
  let open Int32 in
  let r =
    match op with
    | Insn.Add -> add a32 b32
    | Insn.Sub -> sub a32 b32
    | Insn.Mul -> mul a32 b32
    | Insn.Div -> if b32 = 0l then 0l else unsigned_div a32 b32
    | Insn.Mod -> if b32 = 0l then a32 else unsigned_rem a32 b32
    | Insn.Or -> logor a32 b32
    | Insn.And -> logand a32 b32
    | Insn.Xor -> logxor a32 b32
    | Insn.Lsh -> shift_left a32 (Int32.to_int (logand b32 31l))
    | Insn.Rsh -> shift_right_logical a32 (Int32.to_int (logand b32 31l))
    | Insn.Arsh -> shift_right a32 (Int32.to_int (logand b32 31l))
    | Insn.Mov -> b32
    | Insn.Neg -> neg a32
  in
  u64_of_i32 r

let jump_taken c a b =
  let u = Int64.unsigned_compare a b and s = Int64.compare a b in
  match c with
  | Insn.Jeq -> a = b
  | Insn.Jne -> a <> b
  | Insn.Jgt -> u > 0
  | Insn.Jge -> u >= 0
  | Insn.Jlt -> u < 0
  | Insn.Jle -> u <= 0
  | Insn.Jsgt -> s > 0
  | Insn.Jsge -> s >= 0
  | Insn.Jslt -> s < 0
  | Insn.Jsle -> s <= 0
  | Insn.Jset -> Int64.logand a b <> 0L

(* Execute [prog] with up to five arguments in r1..r5. A fresh stack region
   is mapped for the run and unmapped afterwards, so stack contents never
   leak between runs. Returns r0. *)
let run vm ?(args = [||]) prog =
  let stack = Bytes.make vm.stack_size '\000' in
  let stack_region = map_region vm ~name:"stack" ~perm:Rw stack in
  let pos, of_slot, _total = Verifier.slot_maps prog in
  let regs = Array.make 11 0L in
  Array.iteri (fun i v -> if i < 5 then regs.(i + 1) <- v) args;
  regs.(Insn.fp) <-
    Int64.add stack_region.base (Int64.of_int vm.stack_size);
  let operand_value = function
    | Insn.Reg r -> regs.(r)
    | Insn.Imm v -> Int64.of_int32 v
  in
  let fuel = ref vm.max_insns in
  let pc = ref 0 in
  let result = ref 0L in
  let finished = ref false in
  (try
     while not !finished do
       if !fuel <= 0 then raise Fuel_exhausted;
       decr fuel;
       vm.executed <- vm.executed + 1;
       let insn = prog.(!pc) in
       let next = !pc + 1 in
       let goto off =
         let target_slot = pos.(!pc) + Insn.slots insn + off in
         match Hashtbl.find_opt of_slot target_slot with
         | Some i -> pc := i
         | None ->
           (* Unreachable for verified programs. *)
           raise (Memory_violation "jump to invalid slot")
       in
       (match insn with
        | Insn.Alu64 (op, dst, operand) ->
          regs.(dst) <- alu64 op regs.(dst) (operand_value operand);
          pc := next
        | Insn.Alu32 (op, dst, operand) ->
          regs.(dst) <- alu32 op regs.(dst) (operand_value operand);
          pc := next
        | Insn.Ld_imm64 (dst, v) ->
          regs.(dst) <- v;
          pc := next
        | Insn.Ldx (sz, dst, src, off) ->
          regs.(dst) <- load vm (Int64.add regs.(src) (Int64.of_int off)) sz;
          pc := next
        | Insn.Stx (sz, dst, off, src) ->
          store vm (Int64.add regs.(dst) (Int64.of_int off)) sz regs.(src);
          pc := next
        | Insn.St (sz, dst, off, imm) ->
          store vm
            (Int64.add regs.(dst) (Int64.of_int off))
            sz (Int64.of_int32 imm);
          pc := next
        | Insn.Ja off -> goto off
        | Insn.Jcond (c, dst, operand, off) ->
          if jump_taken c regs.(dst) (operand_value operand) then goto off
          else pc := next
        | Insn.Call id -> (
          match Hashtbl.find_opt vm.helpers id with
          | None -> raise (Helper_failure (Printf.sprintf "helper %d missing" id))
          | Some f ->
            let call_args = Array.sub regs 1 5 in
            regs.(0) <- f vm call_args;
            (* r1-r5 are clobbered by calls, per the eBPF convention. *)
            for r = 1 to 5 do
              regs.(r) <- 0L
            done;
            pc := next)
        | Insn.Exit ->
          result := regs.(0);
          finished := true)
     done
   with e ->
     unmap_region vm stack_region;
     raise e);
  unmap_region vm stack_region;
  !result

let executed vm = vm.executed
