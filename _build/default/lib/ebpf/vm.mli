(** Interpreting eBPF virtual machine with runtime memory monitoring.

    The paper's PRE injects bounds-checking instructions when JITing
    pluglet bytecode; this interpreter performs the same checks on every
    load and store instead. Memory is organized as disjoint {e regions}
    (pluglet stack, plugin heap, host-provided buffers) mapped at synthetic
    64-bit base addresses; any access outside a mapped region, or a write
    to a read-only region, raises {!Memory_violation} — the host reacts by
    removing the plugin and terminating the connection. *)

type perm = Ro | Rw

type region = {
  rid : int;
  rname : string;
  base : int64;   (** address pluglets use to reach the region *)
  mem : Bytes.t;
  perm : perm;
}

exception Memory_violation of string
exception Fuel_exhausted
(** The per-run instruction budget ran out — the backstop against pluglets
    whose termination could not be proven. *)

exception Helper_failure of string
(** A host helper rejected the call (missing helper, bad arguments, policy
    violation such as writing a read-only connection field). *)

type t

(** A host function callable from bytecode: receives the VM (for
    region-checked memory access) and the five argument registers. *)
type helper = t -> int64 array -> int64

val create : ?stack_size:int -> ?max_insns:int -> unit -> t
(** [stack_size] defaults to 512 bytes, [max_insns] (the per-run fuel) to
    4,000,000. *)

val register_helper : t -> int -> helper -> unit

val map_region : t -> name:string -> perm:perm -> Bytes.t -> region
(** Make [mem] addressable from bytecode; each region gets its own 4 GiB
    window of synthetic address space, so regions never abut. *)

val unmap_region : t -> region -> unit

val read_bytes : t -> int64 -> int -> Bytes.t
(** Region-checked read used by helpers (pl_memcpy & co.): the access must
    lie inside one mapped region.
    @raise Memory_violation otherwise. *)

val write_bytes : t -> int64 -> Bytes.t -> unit
val fill_bytes : t -> int64 -> int -> char -> unit

val run : t -> ?args:int64 array -> Insn.t array -> int64
(** Execute a program with up to five arguments in r1..r5; returns r0. A
    fresh zeroed stack region is mapped for the run and unmapped afterwards,
    so stack contents never leak between runs.
    @raise Memory_violation on an out-of-region or read-only access
    @raise Fuel_exhausted when the instruction budget is spent
    @raise Helper_failure when a helper rejects a call *)

val executed : t -> int
(** Instructions executed over the VM's lifetime (overhead accounting). *)
