lib/ebpf/insn.mli: Fmt
