lib/ebpf/verifier.ml: Array Fmt Hashtbl Insn List
