lib/ebpf/vm.ml: Array Bytes Char Hashtbl Insn Int32 Int64 List Printf Verifier
