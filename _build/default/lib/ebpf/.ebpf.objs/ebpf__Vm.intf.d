lib/ebpf/vm.mli: Bytes Insn
