lib/ebpf/insn.ml: Array Buffer Fmt Int32 Int64 List Printf String
