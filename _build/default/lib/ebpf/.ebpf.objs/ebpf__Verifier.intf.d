lib/ebpf/verifier.mli: Fmt Hashtbl Insn
