(* Plugin-language tests: the compiler is validated against a reference
   interpreter of the AST over randomly generated programs, plus targeted
   control-flow and termination-checker cases. *)

open Plc.Ast

let i64 = Alcotest.int64
let check = Alcotest.check

let compile_and_run ?(helpers = []) ?(args = [||]) f =
  let helper_table = List.map (fun (name, id, _) -> (name, id)) helpers in
  let prog, stack_size = Plc.Compile.compile ~helpers:helper_table f in
  let vm = Ebpf.Vm.create ~stack_size () in
  List.iter (fun (_, id, fn) -> Ebpf.Vm.register_helper vm id fn) helpers;
  (match
     Ebpf.Verifier.verify ~stack_size
       ~known_helper:(fun id -> List.exists (fun (_, i, _) -> i = id) helpers)
       prog
   with
  | Ok () -> ()
  | Error errs ->
    Alcotest.failf "compiled program rejected: %s"
      (String.concat "; " (List.map Ebpf.Verifier.error_to_string errs)));
  Ebpf.Vm.run vm ~args prog

(* ------------------- reference interpreter --------------------------- *)

exception Returned of int64

let rec eval_expr env e =
  let open Int64 in
  match e with
  | Const v -> v
  | Var x -> Hashtbl.find env x
  | Not e -> if eval_expr env e = 0L then 1L else 0L
  | Load _ | Call _ -> failwith "not in pure fragment"
  | Bin (op, a, b) ->
    let a = eval_expr env a and b = eval_expr env b in
    let bool v = if v then 1L else 0L in
    let u = unsigned_compare a b and s = compare a b in
    (match op with
    | Add -> add a b
    | Sub -> sub a b
    | Mul -> mul a b
    | Div -> if b = 0L then 0L else unsigned_div a b
    | Mod -> if b = 0L then a else unsigned_rem a b
    | And -> logand a b
    | Or -> logor a b
    | Xor -> logxor a b
    | Shl -> shift_left a (to_int (logand b 63L))
    | Shr -> shift_right_logical a (to_int (logand b 63L))
    | Eq -> bool (a = b)
    | Ne -> bool (a <> b)
    | Lt -> bool (u < 0)
    | Le -> bool (u <= 0)
    | Gt -> bool (u > 0)
    | Ge -> bool (u >= 0)
    | Slt -> bool (s < 0)
    | Sle -> bool (s <= 0)
    | Sgt -> bool (s > 0)
    | Sge -> bool (s >= 0))

let rec eval_block env b = List.iter (eval_stmt env) b

and eval_stmt env = function
  | Let (x, e) | Assign (x, e) -> Hashtbl.replace env x (eval_expr env e)
  | Store _ | Expr _ -> failwith "not in pure fragment"
  | If (c, t, f) -> if eval_expr env c <> 0L then eval_block env t else eval_block env f
  | While (c, body) ->
    while eval_expr env c <> 0L do
      eval_block env body
    done
  | For (x, lo, hi, body) ->
    let lo = eval_expr env lo and hi = eval_expr env hi in
    Hashtbl.replace env x lo;
    let k = ref lo in
    while Int64.unsigned_compare !k hi < 0 do
      Hashtbl.replace env x !k;
      eval_block env body;
      k := Int64.add !k 1L
    done
  | Return e -> raise (Returned (eval_expr env e))

let eval_func f =
  let env = Hashtbl.create 16 in
  try
    eval_block env f.body;
    0L
  with Returned v -> v

(* random pure programs: expressions over two locals, if/for nesting *)
let gen_pure_expr =
  let open QCheck2.Gen in
  let leaf =
    oneof
      [ map (fun v -> Const (Int64.of_int v)) (int_range (-1000) 1000);
        oneofl [ Var "x"; Var "y" ] ]
  in
  let binop =
    oneofl [ Add; Sub; Mul; Div; Mod; And; Or; Xor; Eq; Ne; Lt; Le; Gt; Ge;
             Slt; Sle; Sgt; Sge ]
  in
  sized
  @@ fix (fun self n ->
         if n <= 0 then leaf
         else
           oneof
             [ leaf;
               map3 (fun op a b -> Bin (op, a, b)) binop (self (n / 2)) (self (n / 2));
               map (fun e -> Not e) (self (n - 1)) ])

let gen_pure_stmts =
  let open QCheck2.Gen in
  let stmt =
    oneof
      [
        map (fun e -> Assign ("x", e)) gen_pure_expr;
        map (fun e -> Assign ("y", e)) gen_pure_expr;
        map3 (fun c a b -> If (c, [ Assign ("x", a) ], [ Assign ("y", b) ]))
          gen_pure_expr gen_pure_expr gen_pure_expr;
        map2 (fun n e -> For ("k", i 0, i (abs n mod 8), [ Assign ("x", Bin (Add, Var "x", e)) ]))
          (int_range 0 8) gen_pure_expr;
      ]
  in
  list_size (int_range 1 8) stmt

let compiler_vs_reference =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:300 ~name:"compiled = reference interpreter"
       QCheck2.Gen.(pair gen_pure_stmts gen_pure_expr)
       (fun (stmts, result) ->
         let f =
           {
             name = "prop";
             params = [];
             body = (Let ("x", i 1) :: Let ("y", i 2) :: stmts) @ [ Return result ];
           }
         in
         compile_and_run f = eval_func f))

(* ------------------------- targeted cases ----------------------------- *)

let test_arith () =
  let f = { name = "t"; params = []; body = [ Return ((i 2 +: i 3) *: i 7) ] } in
  check i64 "arith" 35L (compile_and_run f)

let test_params () =
  let f = { name = "t"; params = [ "a"; "b" ]; body = [ Return (v "a" -: v "b") ] } in
  check i64 "params" 5L (compile_and_run ~args:[| 12L; 7L |] f)

let test_if_else () =
  let f cond =
    { name = "t"; params = [];
      body = [ If (cond, [ Return (i 1) ], [ Return (i 2) ]) ] }
  in
  check i64 "then" 1L (compile_and_run (f (i 3 <: i 5)));
  check i64 "else" 2L (compile_and_run (f (i 5 <: i 3)))

let test_for_loop () =
  let f =
    { name = "t"; params = [];
      body =
        [
          Let ("acc", i 0);
          For ("k", i 1, i 11, [ Assign ("acc", v "acc" +: v "k") ]);
          Return (v "acc");
        ] }
  in
  check i64 "sum 1..10" 55L (compile_and_run f)

let test_nested_for () =
  let f =
    { name = "t"; params = [];
      body =
        [
          Let ("acc", i 0);
          For ("a", i 0, i 5,
               [ For ("b", i 0, i 5, [ Assign ("acc", v "acc" +: i 1) ]) ]);
          Return (v "acc");
        ] }
  in
  check i64 "5x5 nested loop" 25L (compile_and_run f)

let test_while_loop () =
  let f =
    { name = "t"; params = [];
      body =
        [
          Let ("n", i 100);
          Let ("steps", i 0);
          While (v "n" >: i 1,
                 [
                   If (v "n" %: i 2 =: i 0,
                       [ Assign ("n", v "n" /: i 2) ],
                       [ Assign ("n", (v "n" *: i 3) +: i 1) ]);
                   Assign ("steps", v "steps" +: i 1);
                 ]);
          Return (v "steps");
        ] }
  in
  check i64 "collatz(100)" 25L (compile_and_run f)

let test_memory_ops () =
  (* write then read through a mapped region passed as a parameter *)
  let f =
    { name = "t"; params = [ "buf" ];
      body =
        [
          Store (Ebpf.Insn.W32, v "buf", i 0xCAFE);
          Store (Ebpf.Insn.W8, v "buf" +: i 6, i 0x7F);
          Return (Load (Ebpf.Insn.W32, v "buf") +: Load (Ebpf.Insn.W8, v "buf" +: i 6));
        ] }
  in
  let prog, stack = Plc.Compile.compile ~helpers:[] f in
  let vm = Ebpf.Vm.create ~stack_size:stack () in
  let r = Ebpf.Vm.map_region vm ~name:"buf" ~perm:Ebpf.Vm.Rw (Bytes.make 16 '\000') in
  check i64 "store/load" (Int64.of_int (0xCAFE + 0x7F))
    (Ebpf.Vm.run vm ~args:[| r.Ebpf.Vm.base |] prog)

let test_helper_call () =
  let f =
    { name = "t"; params = [];
      body = [ Return (Call ("double", [ i 21 ])) ] }
  in
  check i64 "helper" 42L
    (compile_and_run
       ~helpers:[ ("double", 5, fun _ a -> Int64.mul a.(0) 2L) ]
       f)

let test_call_arg_order () =
  let f =
    { name = "t"; params = [];
      body = [ Return (Call ("sub", [ i 50; i 8 ])) ] }
  in
  check i64 "argument order" 42L
    (compile_and_run
       ~helpers:[ ("sub", 5, fun _ a -> Int64.sub a.(0) a.(1)) ]
       f)

let test_unknown_helper_error () =
  let f = { name = "t"; params = []; body = [ Return (Call ("nope", [])) ] } in
  match Plc.Compile.compile ~helpers:[] f with
  | exception Plc.Compile.Error _ -> ()
  | _ -> Alcotest.fail "unknown helper compiled"

let test_unbound_variable_error () =
  let f = { name = "t"; params = []; body = [ Return (v "ghost") ] } in
  match Plc.Compile.compile ~helpers:[] f with
  | exception Plc.Compile.Error _ -> ()
  | _ -> Alcotest.fail "unbound variable compiled"

let test_too_many_params () =
  let f =
    { name = "t"; params = [ "a"; "b"; "c"; "d"; "e"; "f" ];
      body = [ Return (i 0) ] }
  in
  match Plc.Compile.compile ~helpers:[] f with
  | exception Plc.Compile.Error _ -> ()
  | _ -> Alcotest.fail "six parameters compiled"

let test_implicit_return () =
  let f = { name = "t"; params = []; body = [ Let ("x", i 9) ] } in
  check i64 "falls through to return 0" 0L (compile_and_run f)

(* ------------------------- termination ------------------------------- *)

let test_terminate_for () =
  let f =
    { name = "t"; params = [];
      body = [ For ("k", i 0, i 10, []); Return (i 0) ] }
  in
  Alcotest.(check bool) "for loop proven" true (Plc.Terminate.is_proven f)

let test_terminate_while () =
  let f =
    { name = "t"; params = [];
      body = [ While (i 1, []); Return (i 0) ] }
  in
  Alcotest.(check bool) "while loop unproven" false (Plc.Terminate.is_proven f)

let test_terminate_reassigned_var () =
  let f =
    { name = "t"; params = [];
      body = [ For ("k", i 0, i 10, [ Assign ("k", i 0) ]); Return (i 0) ] }
  in
  Alcotest.(check bool) "reassigned induction var unproven" false
    (Plc.Terminate.is_proven f)

let test_terminate_nested () =
  let f =
    { name = "t"; params = [];
      body =
        [
          For ("a", i 0, i 10,
               [ If (v "a" =: i 5, [ While (i 1, []) ], []) ]);
          Return (i 0);
        ] }
  in
  Alcotest.(check bool) "nested while found" false (Plc.Terminate.is_proven f)

let test_loc_counts_lines () =
  let f =
    { name = "t"; params = [];
      body = [ Let ("x", i 1); Return (v "x") ] }
  in
  Alcotest.(check bool) "loc positive" true (Plc.Ast.lines_of_code f >= 3)

let tests =
  [
    ("compile", [
      Alcotest.test_case "arith" `Quick test_arith;
      Alcotest.test_case "params" `Quick test_params;
      Alcotest.test_case "if/else" `Quick test_if_else;
      Alcotest.test_case "for loop" `Quick test_for_loop;
      Alcotest.test_case "nested for" `Quick test_nested_for;
      Alcotest.test_case "while loop" `Quick test_while_loop;
      Alcotest.test_case "memory ops" `Quick test_memory_ops;
      Alcotest.test_case "helper call" `Quick test_helper_call;
      Alcotest.test_case "call arg order" `Quick test_call_arg_order;
      Alcotest.test_case "unknown helper" `Quick test_unknown_helper_error;
      Alcotest.test_case "unbound variable" `Quick test_unbound_variable_error;
      Alcotest.test_case "too many params" `Quick test_too_many_params;
      Alcotest.test_case "implicit return" `Quick test_implicit_return;
      compiler_vs_reference;
    ]);
    ("terminate", [
      Alcotest.test_case "for proven" `Quick test_terminate_for;
      Alcotest.test_case "while unproven" `Quick test_terminate_while;
      Alcotest.test_case "reassignment unproven" `Quick test_terminate_reassigned_var;
      Alcotest.test_case "nested while" `Quick test_terminate_nested;
      Alcotest.test_case "loc" `Quick test_loc_counts_lines;
    ]);
  ]
