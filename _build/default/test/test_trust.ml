(* Trust-system tests: SHA-256 against FIPS vectors, HMAC against RFC 4231,
   Merkle prefix trees (presence/absence proofs, collisions, tampering),
   policy formulas, validators, the repository's equivocation detection and
   the full PV pipeline. *)

let check = Alcotest.check

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------ sha256 -------------------------------- *)

let test_sha256_vectors () =
  check Alcotest.string "empty string"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Trust.Sha256.digest_hex "");
  check Alcotest.string "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Trust.Sha256.digest_hex "abc");
  check Alcotest.string "448-bit message"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Trust.Sha256.digest_hex
       "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  check Alcotest.string "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Trust.Sha256.digest_hex (String.make 1_000_000 'a'))

let test_hmac_vector () =
  (* RFC 4231 test case 2 *)
  check Alcotest.string "rfc4231 tc2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Trust.Sha256.hex
       (Trust.Sha256.hmac ~key:"Jefe" "what do ya want for nothing?"))

let sha256_deterministic_and_sensitive =
  qtest ~count:200 "sha256 is deterministic and bit-sensitive"
    QCheck2.Gen.(string_size ~gen:printable (int_range 1 200))
    (fun s ->
      Trust.Sha256.digest s = Trust.Sha256.digest s
      && Trust.Sha256.digest s <> Trust.Sha256.digest (s ^ "x"))

let test_bit_prefix () =
  (* 0xA5 = 10100101 *)
  let s = "\xA5\xFF" in
  check Alcotest.string "prefix bits" "1010010111"
    (Trust.Sha256.bit_prefix s 10)

(* ------------------------------ merkle -------------------------------- *)

let mk_tree ?(depth = 16) names =
  let t = Trust.Merkle.create ~depth ~empty_constant:(Trust.Sha256.digest "c") () in
  List.iter
    (fun name -> Trust.Merkle.add t { Trust.Merkle.name; code = "code:" ^ name })
    names;
  t

let merkle_presence_proofs =
  qtest ~count:60 "every inserted binding has a valid presence proof"
    QCheck2.Gen.(
      list_size (int_range 1 40)
        (string_size ~gen:(char_range 'a' 'z') (int_range 1 10)))
    (fun names ->
      let names = List.sort_uniq compare names in
      let t = mk_tree names in
      let root = Trust.Merkle.root t in
      List.for_all
        (fun name ->
          Trust.Merkle.verify_present ~root ~depth:16 ~name
            ~code:("code:" ^ name) (Trust.Merkle.prove t name))
        names)

let merkle_wrong_code_rejected =
  qtest ~count:60 "presence proofs bind the exact code"
    QCheck2.Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 1 10))
    (fun name ->
      let t = mk_tree [ name; "other" ] in
      let root = Trust.Merkle.root t in
      not
        (Trust.Merkle.verify_present ~root ~depth:16 ~name ~code:"evil"
           (Trust.Merkle.prove t name)))

let merkle_absence_proofs =
  qtest ~count:60 "absent names have valid absence proofs"
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 20)
           (string_size ~gen:(char_range 'a' 'z') (int_range 1 8)))
        (string_size ~gen:(char_range 'A' 'Z') (int_range 1 8)))
    (fun (names, absent) ->
      let t = mk_tree names in
      let root = Trust.Merkle.root t in
      Trust.Merkle.verify_absent ~root ~depth:16
        ~empty_constant:(Trust.Sha256.digest "c") ~name:absent
        (Trust.Merkle.prove t absent))

let test_merkle_collision_leaf () =
  (* with depth 2 every leaf collides quickly: bindings share leaves and
     presence proofs still verify through the linked list *)
  let t = mk_tree ~depth:2 [ "a"; "b"; "c"; "d"; "e"; "f" ] in
  let root = Trust.Merkle.root t in
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Printf.sprintf "proof for %s with colliding leaves" name)
        true
        (Trust.Merkle.verify_present ~root ~depth:2 ~name
           ~code:("code:" ^ name) (Trust.Merkle.prove t name)))
    [ "a"; "b"; "c"; "d"; "e"; "f" ]

let test_merkle_root_changes_on_update () =
  let t = mk_tree [ "a"; "b" ] in
  let r1 = Trust.Merkle.root t in
  Trust.Merkle.add t { Trust.Merkle.name = "a"; code = "new-code" };
  let r2 = Trust.Merkle.root t in
  Alcotest.(check bool) "root is binding-sensitive" true (r1 <> r2)

let test_merkle_remove () =
  let t = mk_tree [ "a"; "b" ] in
  Trust.Merkle.remove t "a";
  check Alcotest.int "one binding left" 1 (Trust.Merkle.size t);
  Alcotest.(check bool) "removed binding absent" true (Trust.Merkle.find t "a" = None)

let test_merkle_proof_serialization () =
  let t = mk_tree [ "alpha"; "beta"; "gamma" ] in
  let proof = Trust.Merkle.prove t "beta" in
  let roundtrip =
    Trust.Merkle.deserialize_proof (Trust.Merkle.serialize_proof proof)
  in
  Alcotest.(check bool) "proof roundtrips" true (roundtrip = proof);
  match Trust.Merkle.deserialize_proof "junk" with
  | exception Trust.Merkle.Malformed_proof -> ()
  | _ -> Alcotest.fail "junk proof accepted"

(* ------------------------------ policy -------------------------------- *)

let test_policy_parse_eval () =
  let f = Trust.Policy.parse "PV1&(PV2|PV3)" in
  let valid_of l id = List.mem id l in
  Alcotest.(check bool) "1+2" true (Trust.Policy.satisfied f ~valid:(valid_of [ "PV1"; "PV2" ]));
  Alcotest.(check bool) "1+3" true (Trust.Policy.satisfied f ~valid:(valid_of [ "PV1"; "PV3" ]));
  Alcotest.(check bool) "2+3 missing PV1" false
    (Trust.Policy.satisfied f ~valid:(valid_of [ "PV2"; "PV3" ]));
  Alcotest.(check bool) "1 alone" false (Trust.Policy.satisfied f ~valid:(valid_of [ "PV1" ]))

let test_policy_validators_listed () =
  let f = Trust.Policy.parse "PV1&(PV2|PV3)" in
  check (Alcotest.list Alcotest.string) "validators in formula"
    [ "PV1"; "PV2"; "PV3" ] (Trust.Policy.validators f)

let test_policy_errors () =
  List.iter
    (fun input ->
      match Trust.Policy.parse input with
      | exception Trust.Policy.Parse_error _ -> ()
      | _ -> Alcotest.failf "bad formula %S accepted" input)
    [ ""; "PV1&"; "(PV1"; "PV1)"; "PV1 PV2"; "&PV1" ]

let policy_roundtrip =
  let gen_formula =
    let open QCheck2.Gen in
    sized
    @@ fix (fun self n ->
           if n <= 0 then map (fun k -> Trust.Policy.Pv (Printf.sprintf "PV%d" k)) (int_range 1 9)
           else
             oneof
               [ map (fun k -> Trust.Policy.Pv (Printf.sprintf "PV%d" k)) (int_range 1 9);
                 map2 (fun a b -> Trust.Policy.And (a, b)) (self (n / 2)) (self (n / 2));
                 map2 (fun a b -> Trust.Policy.Or (a, b)) (self (n / 2)) (self (n / 2)) ])
  in
  qtest ~count:200 "to_string/parse roundtrip preserves satisfaction" gen_formula
    (fun f ->
      let f' = Trust.Policy.parse (Trust.Policy.to_string f) in
      (* equality of semantics over a few valuations *)
      List.for_all
        (fun k ->
          let valid id = Hashtbl.hash (id, k) mod 2 = 0 in
          Trust.Policy.satisfied f ~valid = Trust.Policy.satisfied f' ~valid)
        [ 1; 2; 3; 4; 5 ])

(* ------------------------ validator + repository ----------------------- *)

let mk_system () =
  let repo = Trust.Repository.create () in
  let pvs =
    List.map
      (fun id ->
        let v = Trust.Validator.create ~id ~signing_key:("k" ^ id) () in
        Trust.Repository.register_pv repo ~id ~key:("k" ^ id);
        (id, v))
      [ "PV1"; "PV2"; "PV3" ]
  in
  (repo, pvs, Trust.Pvsystem.create ~repo ~validators:pvs ())

let test_validator_rejects_broken_plugin () =
  let broken =
    {
      Pquic.Plugin.name = "org.test.broken";
      pluglets =
        [
          {
            Pquic.Plugin.op = 1;
            param = None;
            anchor = Pquic.Protoop.Post;
            code = Pquic.Plugin.Bytecode ([| Ebpf.Insn.Ja 5 |], 512);
          };
        ];
    }
  in
  let v = Trust.Validator.create ~id:"PV" ~signing_key:"k" () in
  (match Trust.Validator.submit v broken with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unverifiable plugin validated");
  check Alcotest.int "failure recorded" 1 (List.length (Trust.Validator.failures v))

let test_validator_requires_termination () =
  let v =
    Trust.Validator.create ~id:"PV" ~signing_key:"k" ~require_termination_proof:true ()
  in
  (* the RLC FEC plugin has an unprovable pluglet: this strict PV refuses *)
  (match Trust.Validator.submit v Plugins.Fec.rlc_full with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "strict PV accepted an unproven pluglet");
  match Trust.Validator.submit v Plugins.Monitoring.plugin with
  | Ok () -> ()
  | Error e -> Alcotest.failf "strict PV refused a fully proven plugin: %s" e

let test_str_signature () =
  let v = Trust.Validator.create ~id:"PV" ~signing_key:"secret" () in
  ignore (Trust.Validator.submit v Plugins.Datagram.plugin);
  let str = Trust.Validator.publish v in
  Alcotest.(check bool) "good key verifies" true
    (Trust.Validator.check_str ~key:"secret" str);
  Alcotest.(check bool) "wrong key fails" false
    (Trust.Validator.check_str ~key:"wrong" str)

let test_repository_name_ownership () =
  let repo = Trust.Repository.create () in
  Trust.Repository.publish repo ~developer:"alice" Plugins.Datagram.plugin;
  match Trust.Repository.publish repo ~developer:"mallory" Plugins.Datagram.plugin with
  | exception Trust.Repository.Rejected _ -> ()
  | _ -> Alcotest.fail "name takeover allowed"

let test_equivocation_detection () =
  let repo, pvs, _ = mk_system () in
  let v = List.assoc "PV1" pvs in
  ignore (Trust.Validator.submit v Plugins.Datagram.plugin);
  let str1 = Trust.Validator.publish v in
  (match Trust.Repository.record_str repo str1 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "honest STR refused: %s" e);
  (* same epoch, different tree *)
  Trust.Validator.inject_spurious v ~name:"evil" ~code:"evil";
  v.Trust.Validator.epoch <- v.Trust.Validator.epoch - 1;
  let str2 = Trust.Validator.publish v in
  (match Trust.Repository.record_str repo str2 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "equivocation not detected");
  Alcotest.(check bool) "alert raised" true
    (List.length (Trust.Repository.alerts repo) > 0);
  Alcotest.(check bool) "hash chain intact" true
    (Trust.Repository.audit_log repo "PV1")

let test_developer_lookup_detects_spurious () =
  let v = Trust.Validator.create ~id:"PV" ~signing_key:"k" () in
  let plugin = Plugins.Datagram.plugin in
  ignore (Trust.Validator.submit v plugin);
  ignore (Trust.Validator.publish v);
  let code = Pquic.Plugin.serialize plugin in
  (match Trust.Validator.developer_check v ~name:plugin.Pquic.Plugin.name ~code with
  | Trust.Validator.Clean -> ()
  | _ -> Alcotest.fail "clean tree flagged");
  Trust.Validator.inject_spurious v ~name:plugin.Pquic.Plugin.name ~code:"evil";
  ignore (Trust.Validator.publish v);
  match Trust.Validator.developer_check v ~name:plugin.Pquic.Plugin.name ~code with
  | Trust.Validator.Clean -> Alcotest.fail "spurious binding missed"
  | Trust.Validator.Spurious _ | Trust.Validator.Tampered -> ()

let test_pvsystem_formula_enforced () =
  let _, _, system = mk_system () in
  let plugin = Plugins.Datagram.plugin in
  ignore (Trust.Pvsystem.publish_and_validate system ~developer:"dev" plugin);
  Trust.Pvsystem.publish_epoch system;
  let name = plugin.Pquic.Plugin.name in
  let bytes = Pquic.Plugin.serialize plugin in
  (* prover can satisfy PV1&PV2 *)
  (match Trust.Pvsystem.prover system ~name ~formula:"PV1&PV2" with
  | Some proof ->
    Alcotest.(check bool) "verifier accepts" true
      (Trust.Pvsystem.verifier system ~formula:"PV1&PV2" ~name ~bytes ~proof);
    (* a verifier pinning an unsatisfiable formula refuses the same bundle *)
    Alcotest.(check bool) "stricter formula refuses" false
      (Trust.Pvsystem.verifier system ~formula:"PV9" ~name ~bytes ~proof)
  | None -> Alcotest.fail "prover failed");
  (* unknown validator in the formula: the prover cannot satisfy it *)
  match Trust.Pvsystem.prover system ~name ~formula:"PV9" with
  | None -> ()
  | Some _ -> Alcotest.fail "prover satisfied an unknown validator"

let test_pvsystem_unvalidated_plugin () =
  let _, _, system = mk_system () in
  match
    Trust.Pvsystem.prover system ~name:"never.validated" ~formula:"PV1"
  with
  | None -> ()
  | Some _ -> Alcotest.fail "proof produced for an unvalidated plugin"

let tests =
  [
    ("sha256", [
      Alcotest.test_case "fips vectors" `Quick test_sha256_vectors;
      Alcotest.test_case "hmac rfc4231" `Quick test_hmac_vector;
      Alcotest.test_case "bit prefix" `Quick test_bit_prefix;
      sha256_deterministic_and_sensitive;
    ]);
    ("merkle", [
      Alcotest.test_case "collision leaf" `Quick test_merkle_collision_leaf;
      Alcotest.test_case "root sensitivity" `Quick test_merkle_root_changes_on_update;
      Alcotest.test_case "remove" `Quick test_merkle_remove;
      Alcotest.test_case "proof serialization" `Quick test_merkle_proof_serialization;
      merkle_presence_proofs;
      merkle_wrong_code_rejected;
      merkle_absence_proofs;
    ]);
    ("policy", [
      Alcotest.test_case "parse + eval" `Quick test_policy_parse_eval;
      Alcotest.test_case "validators listed" `Quick test_policy_validators_listed;
      Alcotest.test_case "parse errors" `Quick test_policy_errors;
      policy_roundtrip;
    ]);
    ("validators", [
      Alcotest.test_case "rejects broken plugin" `Quick test_validator_rejects_broken_plugin;
      Alcotest.test_case "termination requirement" `Quick test_validator_requires_termination;
      Alcotest.test_case "STR signatures" `Quick test_str_signature;
      Alcotest.test_case "name ownership" `Quick test_repository_name_ownership;
      Alcotest.test_case "equivocation" `Quick test_equivocation_detection;
      Alcotest.test_case "developer lookup" `Quick test_developer_lookup_detects_spurious;
      Alcotest.test_case "formula enforcement" `Quick test_pvsystem_formula_enforced;
      Alcotest.test_case "unvalidated plugin" `Quick test_pvsystem_unvalidated_plugin;
    ]);
  ]
