(* Protocol-operation anchor semantics (Section 2.2/2.4): passive pre/post
   pluglets observe but cannot write protoop buffers, replace pluglets
   override built-in behaviour, plugins can define new operations and call
   them through run_protoop, and external operations are reachable only
   from the application. *)

module Topology = Netsim.Topology
module Sim = Netsim.Sim
open Plc.Ast

let check = Alcotest.check

let pluglet = Plugins.Dsl.pluglet
let func = Plugins.Dsl.func

let run_transfer ?(size = 50_000) ~plugins ~to_inject () =
  let topo =
    Topology.single_path ~seed:5L
      { Topology.d_ms = 10.; bw_mbps = 20.; loss = 0. }
  in
  Exp.Runner.quic_transfer ~plugins ~to_inject ~topo ~size ()

(* a passive pluglet that tries to WRITE into the frame buffer it is shown:
   the PRE maps protoop buffers read-only for pre/post anchors, so this is
   a memory violation and the plugin dies with the connection *)
let nosy_plugin =
  {
    Pquic.Plugin.name = "org.test.nosy";
    pluglets =
      [
        pluglet ~op:Pquic.Protoop.process_frame ~param:Quic.Frame.type_stream
          ~anchor:Pquic.Protoop.Pre
          (func "nosy" [ "buf"; "len"; "pn" ]
             [ Store (Ebpf.Insn.W8, Var "buf", i 0); Return (i 0) ]);
      ];
  }

(* intentionally unused: process_frame pre anchors receive only (pn) for
   core frames; write through a buffer-bearing op instead *)
let _ = nosy_plugin

let nosy_parse_plugin =
  {
    Pquic.Plugin.name = "org.test.nosy-parse";
    pluglets =
      [
        (* passive observer on the datagram parse operation: gets the frame
           buffer and tries to corrupt it *)
        pluglet ~op:Pquic.Protoop.parse_frame ~param:Quic.Frame.type_datagram
          ~anchor:Pquic.Protoop.Pre
          (func "nosy_parse" [ "buf"; "len" ]
             [ Store (Ebpf.Insn.W8, Var "buf", i 255); Return (i 0) ]);
      ];
  }

let test_passive_pluglets_cannot_write_buffers () =
  (* datagram plugin provides the frames; the nosy passive observer must be
     sanctioned on the first DATAGRAM frame it sees *)
  let topo =
    Topology.single_path ~seed:5L
      { Topology.d_ms = 10.; bw_mbps = 20.; loss = 0. }
  in
  let sim = topo.Topology.sim and net = topo.Topology.net in
  let server = Pquic.Endpoint.create ~sim ~net ~addr:topo.Topology.server_addr ~seed:1L () in
  let client =
    Pquic.Endpoint.create ~sim ~net ~addr:(List.hd topo.Topology.client_addrs) ~seed:2L ()
  in
  List.iter
    (fun p -> Pquic.Endpoint.add_plugin server p; Pquic.Endpoint.add_plugin client p)
    [ Plugins.Datagram.plugin; nosy_parse_plugin ];
  Pquic.Endpoint.listen server;
  Pquic.Endpoint.listen client;
  let sconn = ref None in
  server.Pquic.Endpoint.on_connection <- (fun c -> sconn := Some c);
  let conn =
    Pquic.Endpoint.connect client ~remote_addr:topo.Topology.server_addr
      ~plugins_to_inject:[ Plugins.Datagram.name; "org.test.nosy-parse" ]
  in
  conn.Pquic.Connection.on_established <-
    (fun () -> ignore (Plugins.Datagram.send conn "boom"));
  ignore (Sim.run ~until:(Sim.of_sec 10.) sim);
  match !sconn with
  | Some c -> (
    match Pquic.Connection.state c with
    | Pquic.Connection.Failed _ ->
      check Alcotest.bool "nosy plugin removed" false
        (Pquic.Connection.has_plugin c "org.test.nosy-parse")
    | _ -> Alcotest.fail "write from a passive anchor was not sanctioned")
  | None -> Alcotest.fail "no server connection"

(* pre and post anchors both run, and several passive pluglets coexist on
   one operation *)
let multi_observer name field_off =
  {
    Pquic.Plugin.name;
    pluglets =
      [
        pluglet ~op:Pquic.Protoop.packet_was_sent ~anchor:Pquic.Protoop.Pre
          (func "obs_pre" [ "pn"; "path"; "size" ]
             (Plugins.Dsl.with_state ~id:9 ~size:32
                [ Plugins.Dsl.bump field_off; Return (i 0) ]));
        pluglet ~op:Pquic.Protoop.packet_was_sent ~anchor:Pquic.Protoop.Post
          (func "obs_post" [ "pn"; "path"; "size" ]
             (Plugins.Dsl.with_state ~id:9 ~size:32
                [ Plugins.Dsl.bump (field_off + 8); Return (i 0) ]));
        (* export both counters when the connection ends *)
        pluglet ~op:Pquic.Protoop.connection_closed ~anchor:Pquic.Protoop.Post
          (func "obs_export" []
             (Plugins.Dsl.with_state ~id:9 ~size:32
                [ Plugins.Dsl.push_message (v "st") (i 32); Return (i 0) ]));
      ];
  }

let test_pre_and_post_both_fire () =
  let plugin = multi_observer "org.test.observer" 0 in
  let topo =
    Topology.single_path ~seed:5L
      { Topology.d_ms = 10.; bw_mbps = 20.; loss = 0. }
  in
  let sim = topo.Topology.sim and net = topo.Topology.net in
  let server = Pquic.Endpoint.create ~sim ~net ~addr:topo.Topology.server_addr ~seed:1L () in
  let client =
    Pquic.Endpoint.create ~sim ~net ~addr:(List.hd topo.Topology.client_addrs) ~seed:2L ()
  in
  Pquic.Endpoint.add_plugin server plugin;
  Pquic.Endpoint.add_plugin client plugin;
  Pquic.Endpoint.listen server;
  Pquic.Endpoint.listen client;
  server.Pquic.Endpoint.on_connection <-
    (fun c ->
      c.Pquic.Connection.on_stream_data <-
        (fun id _ ~fin ->
          if fin then Pquic.Connection.write_stream c ~id ~fin:true "pong"));
  let conn =
    Pquic.Endpoint.connect client ~remote_addr:topo.Topology.server_addr
      ~plugins_to_inject:[ "org.test.observer" ]
  in
  let counters = ref None in
  conn.Pquic.Connection.on_message <-
    (fun m ->
      if String.length m >= 16 then
        counters := Some (String.get_int64_le m 0, String.get_int64_le m 8));
  conn.Pquic.Connection.on_established <-
    (fun () -> Pquic.Connection.write_stream conn ~id:0 ~fin:true "ping");
  conn.Pquic.Connection.on_stream_data <-
    (fun _ _ ~fin -> if fin then Pquic.Connection.close conn ~reason:"done");
  ignore (Sim.run ~until:(Sim.of_sec 10.) sim);
  match !counters with
  | Some (pre, post) ->
    check Alcotest.bool "pre fired" true (pre > 0L);
    check Alcotest.int64 "pre and post fire equally" pre post;
    check Alcotest.int64 "counts match engine stats"
      (Int64.of_int (Pquic.Connection.stats conn).Pquic.Connection.pkts_sent)
      pre
  | None -> Alcotest.fail "observer export missing"

(* replace anchor really overrides the default: a pluglet replacing
   update_rtt that drops the sample leaves srtt at its default *)
let rtt_muzzle =
  {
    Pquic.Plugin.name = "org.test.rtt-muzzle";
    pluglets =
      [
        pluglet ~op:Pquic.Protoop.update_rtt ~anchor:Pquic.Protoop.Replace
          (func "muzzle" [ "sample"; "path" ] [ Return (i 0) ]);
      ];
  }

let test_replace_overrides_default () =
  match
    run_transfer ~plugins:[ rtt_muzzle ] ~to_inject:[ "org.test.rtt-muzzle" ] ()
  with
  | Some r ->
    let conn = r.Exp.Runner.client_conn in
    let srtt = Quic.Rtt.samples conn.Pquic.Connection.paths.(0).Pquic.Connection.rtt in
    check Alcotest.int "no RTT sample ever recorded" 0 srtt
  | None -> Alcotest.fail "transfer failed"

(* a plugin defining a brand-new protocol operation, called from an
   external operation through run_protoop — the Figure 2 noparam_op2 case *)
let op_square = 130
let op_entry_point = 131

let composing_plugin =
  {
    Pquic.Plugin.name = "org.test.composer";
    pluglets =
      [
        pluglet ~op:op_square ~anchor:Pquic.Protoop.Replace
          (func "square" [ "x" ] [ Return (Var "x" *: Var "x") ]);
        pluglet ~op:op_entry_point ~anchor:Pquic.Protoop.External
          (func "entry" [ "x" ]
             [
               Return
                 (Call
                    ( "run_protoop",
                      [ i op_square; Const (-1L); Var "x"; i 0; i 0 ] )
                  +: i 1);
             ]);
      ];
  }

let test_plugin_defined_operation_composition () =
  match
    run_transfer ~plugins:[ composing_plugin ] ~to_inject:[ "org.test.composer" ] ()
  with
  | Some r ->
    let conn = r.Exp.Runner.client_conn in
    (match
       Pquic.Connection.call_external conn op_entry_point
         [| Pquic.Connection.I 7L |]
     with
    | Some v -> check Alcotest.int64 "7*7 + 1 through two plugin ops" 50L v
    | None -> Alcotest.fail "external operation missing");
    (* the inner operation is also reachable by the app directly? No: it
       was registered at the replace anchor, not external *)
    check Alcotest.bool "replace-anchored op is not an external op" true
      (Pquic.Connection.call_external conn op_square [| Pquic.Connection.I 3L |]
       = None)
  | None -> Alcotest.fail "transfer failed"

let test_external_op_without_plugin () =
  match run_transfer ~plugins:[] ~to_inject:[] () with
  | Some r ->
    check Alcotest.bool "no plugin, no external op" true
      (Pquic.Connection.call_external r.Exp.Runner.client_conn op_entry_point
         [| Pquic.Connection.I 1L |]
       = None)
  | None -> Alcotest.fail "transfer failed"

let tests =
  [
    ("anchors", [
      Alcotest.test_case "passive cannot write" `Quick
        test_passive_pluglets_cannot_write_buffers;
      Alcotest.test_case "pre+post fire" `Quick test_pre_and_post_both_fire;
      Alcotest.test_case "replace overrides" `Quick test_replace_overrides_default;
      Alcotest.test_case "plugin ops compose" `Quick
        test_plugin_defined_operation_composition;
      Alcotest.test_case "external op absent" `Quick test_external_op_without_plugin;
    ]);
  ]
