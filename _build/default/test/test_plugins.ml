(* Tests for the four paper plugins running as real bytecode inside live
   connections: monitoring accuracy, datagram semantics, multipath path
   management and scheduling, FEC recovery (XOR and RLC, both modes). *)

module Topology = Netsim.Topology
module Sim = Netsim.Sim

let check = Alcotest.check

let mk_pair ?(cfg = Pquic.Connection.default_config) ?(dual = false)
    ?(loss = 0.) ?(d_ms = 10.) ?(bw = 20.) ?(seed = 5L) ~plugins () =
  let p = { Topology.d_ms; bw_mbps = bw; loss } in
  let topo = if dual then Topology.dual_path ~seed p p else Topology.single_path ~seed p in
  let sim = topo.Topology.sim and net = topo.Topology.net in
  let server = Pquic.Endpoint.create ~cfg ~sim ~net ~addr:topo.Topology.server_addr ~seed:1L () in
  let extra = if dual then [ List.nth topo.Topology.client_addrs 1 ] else [] in
  let client =
    Pquic.Endpoint.create ~cfg ~sim ~net ~addr:(List.hd topo.Topology.client_addrs)
      ~extra_addrs:extra ~seed:2L ()
  in
  List.iter
    (fun p -> Pquic.Endpoint.add_plugin server p; Pquic.Endpoint.add_plugin client p)
    plugins;
  Pquic.Endpoint.listen server;
  Pquic.Endpoint.listen client;
  (topo, server, client)

(* ----------------------------- monitoring ----------------------------- *)

let test_monitoring_counters_match_engine () =
  let topo, server, client = mk_pair ~loss:0.02 ~plugins:[ Plugins.Monitoring.plugin ] () in
  let sim = topo.Topology.sim in
  server.Pquic.Endpoint.on_connection <-
    (fun c ->
      c.Pquic.Connection.on_stream_data <-
        (fun id _ ~fin ->
          if fin then Pquic.Connection.write_stream c ~id ~fin:true (String.make 100_000 'x')));
  let conn =
    Pquic.Endpoint.connect client ~remote_addr:topo.Topology.server_addr
      ~plugins_to_inject:[ Plugins.Monitoring.name ]
  in
  let report = ref None in
  conn.Pquic.Connection.on_message <-
    (fun m -> report := Plugins.Monitoring.decode_report m);
  conn.Pquic.Connection.on_established <-
    (fun () -> Pquic.Connection.write_stream conn ~id:0 ~fin:true "GET");
  conn.Pquic.Connection.on_stream_data <-
    (fun _ _ ~fin -> if fin then Pquic.Connection.close conn ~reason:"done");
  ignore (Sim.run ~until:(Sim.of_sec 60.) sim);
  match !report with
  | None -> Alcotest.fail "no PI report"
  | Some r ->
    let st = Pquic.Connection.stats conn in
    check Alcotest.int64 "pkts_received mirrors engine"
      (Int64.of_int st.Pquic.Connection.pkts_received)
      r.Plugins.Monitoring.pkts_received;
    check Alcotest.int64 "pkts_sent mirrors engine"
      (Int64.of_int st.Pquic.Connection.pkts_sent)
      r.Plugins.Monitoring.pkts_sent;
    check Alcotest.int64 "pkts_lost mirrors engine"
      (Int64.of_int st.Pquic.Connection.pkts_lost)
      r.Plugins.Monitoring.pkts_lost;
    check Alcotest.bool "handshake time recorded" true
      (r.Plugins.Monitoring.handshake_time_ns > 0L);
    check Alcotest.bool "established flag" true r.Plugins.Monitoring.established;
    check Alcotest.bool "ACK frames counted by the param'd pluglet" true
      (r.Plugins.Monitoring.ack_frames_seen > 0L);
    check Alcotest.bool "streams opened" true (r.Plugins.Monitoring.streams_opened >= 1L)

let test_monitoring_all_proven () =
  (* the monitoring pluglets are simple enough for the checker *)
  let s = Pquic.Plugin.stats Plugins.Monitoring.plugin in
  check Alcotest.int "14 pluglets" 14 s.Pquic.Plugin.pluglet_count;
  check Alcotest.int "all proven terminating" 14 s.Pquic.Plugin.proven_terminating

(* ------------------------------ datagram ------------------------------ *)

let test_datagram_delivery_and_boundaries () =
  let topo, server, client = mk_pair ~plugins:[ Plugins.Datagram.plugin ] () in
  let sim = topo.Topology.sim in
  let received = ref [] in
  let sconn = ref None in
  server.Pquic.Endpoint.on_connection <-
    (fun c ->
      sconn := Some c;
      c.Pquic.Connection.on_message <- (fun m -> received := m :: !received));
  let conn =
    Pquic.Endpoint.connect client ~remote_addr:topo.Topology.server_addr
      ~plugins_to_inject:[ Plugins.Datagram.name ]
  in
  let messages = [ "alpha"; "bravo-bravo"; String.make 1000 'z' ] in
  conn.Pquic.Connection.on_established <-
    (fun () ->
      List.iter (fun m ->
          match Plugins.Datagram.send conn m with
          | Ok () -> ()
          | Error _ -> Alcotest.fail "datagram send failed")
        messages);
  ignore (Sim.run ~until:(Sim.of_sec 10.) sim);
  check (Alcotest.list Alcotest.string) "boundaries preserved, in order"
    messages (List.rev !received)

let test_datagram_max_size () =
  let topo, _, client = mk_pair ~plugins:[ Plugins.Datagram.plugin ] () in
  let sim = topo.Topology.sim in
  let conn =
    Pquic.Endpoint.connect client ~remote_addr:topo.Topology.server_addr
      ~plugins_to_inject:[ Plugins.Datagram.name ]
  in
  let size = ref None in
  conn.Pquic.Connection.on_established <-
    (fun () -> size := Plugins.Datagram.max_size conn);
  ignore (Sim.run ~until:(Sim.of_sec 5.) sim);
  match !size with
  | Some s -> check Alcotest.bool "sane external-op result" true (s > 1000 && s < 1500)
  | None -> Alcotest.fail "external operation unavailable"

let test_datagram_no_plugin_errors () =
  let topo, _, client = mk_pair ~plugins:[] () in
  let sim = topo.Topology.sim in
  let conn = Pquic.Endpoint.connect client ~remote_addr:topo.Topology.server_addr in
  let result = ref (Ok ()) in
  conn.Pquic.Connection.on_established <-
    (fun () -> result := Plugins.Datagram.send conn "hello");
  ignore (Sim.run ~until:(Sim.of_sec 5.) sim);
  check Alcotest.bool "send without plugin is rejected" true (!result = Error `No_plugin)

let test_datagram_unreliable () =
  (* datagrams must not be retransmitted: on a lossy link, fewer arrive *)
  let topo, server, client =
    mk_pair ~loss:0.25 ~seed:77L ~plugins:[ Plugins.Datagram.plugin ] ()
  in
  let sim = topo.Topology.sim in
  let got = ref 0 in
  server.Pquic.Endpoint.on_connection <-
    (fun c -> c.Pquic.Connection.on_message <- (fun _ -> incr got));
  let conn =
    Pquic.Endpoint.connect client ~remote_addr:topo.Topology.server_addr
      ~plugins_to_inject:[ Plugins.Datagram.name ]
  in
  let sent = ref 0 in
  conn.Pquic.Connection.on_established <-
    (fun () ->
      (* send a stream of datagrams over several RTTs *)
      let rec tick k =
        if k < 80 then begin
          (match Plugins.Datagram.send conn (Printf.sprintf "msg-%03d" k) with
          | Ok () -> incr sent
          | Error _ -> ());
          ignore (Sim.schedule sim ~delay:(Sim.of_ms 10.) (fun () -> tick (k + 1)))
        end
      in
      tick 0);
  ignore (Sim.run ~until:(Sim.of_sec 30.) sim);
  check Alcotest.bool "some datagrams lost for good" true (!got < !sent);
  check Alcotest.bool "most datagrams arrive" true (!got > !sent / 2)

(* ------------------------------ multipath ----------------------------- *)

let mp_transfer ?(iw = 16384) ~dual ~size () =
  let cfg = { Pquic.Connection.default_config with initial_window = iw } in
  let plugins = if dual then [ Plugins.Multipath.plugin ] else [] in
  let p = { Topology.d_ms = 10.; bw_mbps = 20.; loss = 0. } in
  let topo = if dual then Topology.dual_path ~seed:5L p p else Topology.single_path ~seed:5L p in
  Exp.Runner.quic_transfer ~cfg ~plugins
    ~to_inject:(if dual then [ Plugins.Multipath.name ] else [])
    ~multipath:dual ~topo ~size ()

let test_multipath_speedup () =
  match (mp_transfer ~dual:false ~size:5_000_000 (), mp_transfer ~dual:true ~size:5_000_000 ()) with
  | Some s, Some m ->
    let speedup = s.Exp.Runner.dct /. m.Exp.Runner.dct in
    check Alcotest.bool
      (Printf.sprintf "two symmetric paths give ~2x (got %.2f)" speedup)
      true
      (speedup > 1.6 && speedup < 2.2)
  | _ -> Alcotest.fail "transfer failed"

let test_multipath_uses_both_paths () =
  match mp_transfer ~dual:true ~size:1_000_000 () with
  | Some r -> (
    match r.Exp.Runner.server_conn with
    | Some sconn ->
      check Alcotest.int "server opened a second path" 2
        (Array.length sconn.Pquic.Connection.paths);
      let p0 = sconn.Pquic.Connection.paths.(0)
      and p1 = sconn.Pquic.Connection.paths.(1) in
      (* both paths carried data: both congestion controllers grew *)
      check Alcotest.bool "path 0 used" true (Quic.Cc.cwnd p0.Pquic.Connection.cc > 16384);
      check Alcotest.bool "path 1 used" true (Quic.Cc.cwnd p1.Pquic.Connection.cc > 16384)
    | None -> Alcotest.fail "no server connection")
  | None -> Alcotest.fail "transfer failed"

let test_multipath_per_path_rtt () =
  (* asymmetric path delays: MP_ACK feedback must give distinct RTTs *)
  let p1 = { Topology.d_ms = 5.; bw_mbps = 20.; loss = 0. } in
  let p2 = { Topology.d_ms = 50.; bw_mbps = 20.; loss = 0. } in
  let topo = Topology.dual_path ~seed:6L p1 p2 in
  match
    Exp.Runner.quic_transfer ~plugins:[ Plugins.Multipath.plugin ]
      ~to_inject:[ Plugins.Multipath.name ] ~multipath:true ~topo
      ~size:2_000_000 ()
  with
  | Some r -> (
    match r.Exp.Runner.server_conn with
    | Some sconn when Array.length sconn.Pquic.Connection.paths = 2 ->
      let rtt0 = Quic.Rtt.smoothed sconn.Pquic.Connection.paths.(0).Pquic.Connection.rtt in
      let rtt1 = Quic.Rtt.smoothed sconn.Pquic.Connection.paths.(1).Pquic.Connection.rtt in
      (* queueing delay inflates both paths; the ordering and a clear gap
         must survive it *)
      check Alcotest.bool
        (Printf.sprintf "path RTTs reflect asymmetry (%.1f vs %.1f ms)"
           (Int64.to_float rtt0 /. 1e6) (Int64.to_float rtt1 /. 1e6))
        true
        (Int64.to_float rtt1 /. Int64.to_float rtt0 > 1.4)
    | _ -> Alcotest.fail "second path missing")
  | None -> Alcotest.fail "transfer failed"

let test_multipath_single_path_harmless () =
  (* injected on a single-path topology, the plugin must not break anything *)
  let p = { Topology.d_ms = 10.; bw_mbps = 20.; loss = 0. } in
  let topo = Topology.single_path ~seed:5L p in
  match
    Exp.Runner.quic_transfer ~plugins:[ Plugins.Multipath.plugin ]
      ~to_inject:[ Plugins.Multipath.name ] ~topo ~size:200_000 ()
  with
  | Some r ->
    check Alcotest.bool "completes" true (r.Exp.Runner.dct > 0.)
  | None -> Alcotest.fail "multipath on one path failed"

let test_lowest_rtt_scheduler_prefers_fast_path () =
  let p1 = { Topology.d_ms = 5.; bw_mbps = 20.; loss = 0. } in
  let p2 = { Topology.d_ms = 80.; bw_mbps = 20.; loss = 0. } in
  let topo = Topology.dual_path ~seed:6L p1 p2 in
  match
    Exp.Runner.quic_transfer ~plugins:[ Plugins.Multipath.plugin_lowest_rtt ]
      ~to_inject:[ Plugins.Multipath.name_lowest_rtt ] ~multipath:true ~topo
      ~size:500_000 ()
  with
  | Some r -> (
    match r.Exp.Runner.server_conn with
    | Some sconn when Array.length sconn.Pquic.Connection.paths = 2 ->
      (* the fast path must carry clearly more than the slow one *)
      let inflight_hint p = Quic.Cc.cwnd p.Pquic.Connection.cc in
      check Alcotest.bool "fast path preferred" true
        (inflight_hint sconn.Pquic.Connection.paths.(0)
         > inflight_hint sconn.Pquic.Connection.paths.(1))
    | _ -> Alcotest.fail "second path missing")
  | None -> Alcotest.fail "transfer failed"

(* -------------------------------- FEC --------------------------------- *)

let fec_transfer ~plugin ~loss ~size ~seed =
  let p = { Topology.d_ms = 100.; bw_mbps = 4.; loss } in
  let topo = Topology.single_path ~seed p in
  let plugins, to_inject =
    match plugin with
    | Some (pl : Pquic.Plugin.t) -> ([ pl ], [ pl.Pquic.Plugin.name ])
    | None -> ([], [])
  in
  Exp.Runner.quic_transfer ~plugins ~to_inject ~topo ~size ()

let test_fec_rlc_recovers () =
  match fec_transfer ~plugin:(Some Plugins.Fec.rlc_full) ~loss:0.05 ~size:400_000 ~seed:3L with
  | Some r ->
    check Alcotest.bool "packets recovered without retransmission" true
      (r.Exp.Runner.client_stats.Pquic.Connection.frames_recovered > 0)
  | None -> Alcotest.fail "transfer failed"

let test_fec_xor_recovers_fewer () =
  let rec_of plugin seed =
    match fec_transfer ~plugin ~loss:0.05 ~size:400_000 ~seed with
    | Some r -> r.Exp.Runner.client_stats.Pquic.Connection.frames_recovered
    | None -> Alcotest.fail "transfer failed"
  in
  let xor = rec_of (Some Plugins.Fec.xor_full) 3L in
  let rlc = rec_of (Some Plugins.Fec.rlc_full) 3L in
  check Alcotest.bool
    (Printf.sprintf "XOR (%d) recovers no more than RLC (%d)" xor rlc)
    true (xor <= rlc)

let test_fec_no_loss_no_recovery () =
  match fec_transfer ~plugin:(Some Plugins.Fec.rlc_full) ~loss:0. ~size:200_000 ~seed:3L with
  | Some r ->
    check Alcotest.int "nothing to recover on a clean link" 0
      r.Exp.Runner.client_stats.Pquic.Connection.frames_recovered
  | None -> Alcotest.fail "transfer failed"

let test_fec_data_integrity () =
  (* recovered packets must reconstruct the exact stream *)
  let p = { Topology.d_ms = 60.; bw_mbps = 5.; loss = 0.06 } in
  let topo = Topology.single_path ~seed:13L p in
  let sim = topo.Topology.sim and net = topo.Topology.net in
  let server = Pquic.Endpoint.create ~sim ~net ~addr:topo.Topology.server_addr ~seed:1L () in
  let client =
    Pquic.Endpoint.create ~sim ~net ~addr:(List.hd topo.Topology.client_addrs) ~seed:2L ()
  in
  Pquic.Endpoint.add_plugin server Plugins.Fec.rlc_full;
  Pquic.Endpoint.add_plugin client Plugins.Fec.rlc_full;
  Pquic.Endpoint.listen server;
  Pquic.Endpoint.listen client;
  let payload = String.init 300_000 (fun i -> Char.chr (i * 131 mod 251)) in
  server.Pquic.Endpoint.on_connection <-
    (fun c ->
      c.Pquic.Connection.on_stream_data <-
        (fun id _ ~fin ->
          if fin then Pquic.Connection.write_stream c ~id ~fin:true payload));
  let conn =
    Pquic.Endpoint.connect client ~remote_addr:topo.Topology.server_addr
      ~plugins_to_inject:[ (Plugins.Fec.rlc_full : Pquic.Plugin.t).Pquic.Plugin.name ]
  in
  let received = Buffer.create 300_000 in
  let finished = ref false in
  conn.Pquic.Connection.on_established <-
    (fun () -> Pquic.Connection.write_stream conn ~id:0 ~fin:true "GET");
  conn.Pquic.Connection.on_stream_data <-
    (fun _ data ~fin ->
      Buffer.add_string received data;
      if fin then finished := true);
  ignore (Sim.run ~until:(Sim.of_sec 400.) sim);
  check Alcotest.bool "finished" true !finished;
  check Alcotest.bool "stream content intact through FEC recovery" true
    (Buffer.contents received = payload);
  check Alcotest.bool "recovery actually happened" true
    ((Pquic.Connection.stats conn).Pquic.Connection.frames_recovered > 0)

let test_fec_termination_verdicts () =
  (* the RLC receiver pluglet contains a Gauss-Jordan while loop: its
     termination must NOT be provable, as for the paper's hard pluglets *)
  let stats = Pquic.Plugin.stats Plugins.Fec.rlc_full in
  check Alcotest.bool "at least one unproven pluglet" true
    (stats.Pquic.Plugin.proven_terminating < stats.Pquic.Plugin.pluglet_count);
  let xstats = Pquic.Plugin.stats Plugins.Fec.xor_full in
  check Alcotest.int "XOR variant fully proven"
    xstats.Pquic.Plugin.pluglet_count xstats.Pquic.Plugin.proven_terminating

(* ------------------------- plugin combination ------------------------- *)

let test_combined_plugins () =
  (* monitoring + multipath + datagram on one connection (Section 4.5) *)
  let plugins =
    [ Plugins.Monitoring.plugin; Plugins.Multipath.plugin; Plugins.Datagram.plugin ]
  in
  let topo, server, client = mk_pair ~dual:true ~plugins () in
  let sim = topo.Topology.sim in
  let server_msgs = ref 0 in
  server.Pquic.Endpoint.on_connection <-
    (fun c ->
      (* the monitoring plugin also pushes its PI block on close: count
         only the datagram messages *)
      c.Pquic.Connection.on_message <-
        (fun m -> if Plugins.Monitoring.decode_report m = None then incr server_msgs);
      c.Pquic.Connection.on_stream_data <-
        (fun id _ ~fin ->
          if fin then Pquic.Connection.write_stream c ~id ~fin:true (String.make 500_000 'x')));
  let conn =
    Pquic.Endpoint.connect client ~remote_addr:topo.Topology.server_addr
      ~plugins_to_inject:
        [ Plugins.Monitoring.name; Plugins.Multipath.name; Plugins.Datagram.name ]
  in
  let report = ref None in
  let finished = ref false in
  conn.Pquic.Connection.on_message <-
    (fun m ->
      match Plugins.Monitoring.decode_report m with
      | Some r -> report := Some r
      | None -> ());
  conn.Pquic.Connection.on_established <-
    (fun () ->
      ignore (Plugins.Datagram.send conn "combined!");
      Pquic.Connection.write_stream conn ~id:0 ~fin:true "GET");
  conn.Pquic.Connection.on_stream_data <-
    (fun _ _ ~fin ->
      if fin then begin
        finished := true;
        Pquic.Connection.close conn ~reason:"done"
      end);
  ignore (Sim.run ~until:(Sim.of_sec 60.) sim);
  check Alcotest.bool "transfer finished" true !finished;
  check Alcotest.int "all three plugins active" 3
    (List.length (Pquic.Connection.plugin_names conn));
  check Alcotest.int "datagram delivered" 1 !server_msgs;
  check Alcotest.bool "monitoring exported" true (!report <> None)

let tests =
  [
    ("monitoring", [
      Alcotest.test_case "counters mirror engine" `Quick test_monitoring_counters_match_engine;
      Alcotest.test_case "all pluglets proven" `Quick test_monitoring_all_proven;
    ]);
    ("datagram", [
      Alcotest.test_case "delivery + boundaries" `Quick test_datagram_delivery_and_boundaries;
      Alcotest.test_case "max size external op" `Quick test_datagram_max_size;
      Alcotest.test_case "no plugin -> error" `Quick test_datagram_no_plugin_errors;
      Alcotest.test_case "unreliable" `Quick test_datagram_unreliable;
    ]);
    ("multipath", [
      Alcotest.test_case "speedup ~2x" `Quick test_multipath_speedup;
      Alcotest.test_case "both paths used" `Quick test_multipath_uses_both_paths;
      Alcotest.test_case "per-path RTT" `Quick test_multipath_per_path_rtt;
      Alcotest.test_case "single path harmless" `Quick test_multipath_single_path_harmless;
      Alcotest.test_case "lowest-rtt scheduler" `Quick test_lowest_rtt_scheduler_prefers_fast_path;
    ]);
    ("fec", [
      Alcotest.test_case "rlc recovers" `Quick test_fec_rlc_recovers;
      Alcotest.test_case "xor <= rlc" `Quick test_fec_xor_recovers_fewer;
      Alcotest.test_case "clean link" `Quick test_fec_no_loss_no_recovery;
      Alcotest.test_case "data integrity" `Quick test_fec_data_integrity;
      Alcotest.test_case "termination verdicts" `Quick test_fec_termination_verdicts;
    ]);
    ("combination", [
      Alcotest.test_case "monitoring+multipath+datagram" `Quick test_combined_plugins;
    ]);
  ]
