(* Tests for the Section 4 "less than 100 lines" extension plugins: Tail
   Loss Probe, ECN, and the pluggable AIMD congestion controller, plus the
   ECN marking path through the simulator. *)

module Topology = Netsim.Topology
module Sim = Netsim.Sim
module Net = Netsim.Net

let check = Alcotest.check

(* ------------------------- substrate: CE marking ----------------------- *)

let test_link_ce_marking () =
  let sim = Sim.create () in
  let link =
    Netsim.Link.create ~sim ~delay_ms:1. ~rate_mbps:8. ~loss:0.
      ~rng:(Netsim.Rng.create 1L) ~buffer:20_000 ~ecn_threshold:2_000 ()
  in
  let marked = ref 0 and clean = ref 0 in
  for _ = 1 to 10 do
    Netsim.Link.send_ecn link ~size:1000 (fun ~ce ->
        if ce then incr marked else incr clean)
  done;
  ignore (Sim.run sim);
  check Alcotest.bool "deep queue gets marked" true (!marked > 0);
  check Alcotest.bool "shallow queue stays clean" true (!clean > 0);
  check Alcotest.int "stats agree" !marked (Netsim.Link.stats link).Netsim.Link.ce_marked

let test_net_ce_propagates () =
  let sim = Sim.create () in
  let net = Net.create sim in
  let rng = Netsim.Rng.create 1L in
  let congested =
    Netsim.Link.create ~sim ~delay_ms:1. ~rate_mbps:8. ~loss:0. ~rng
      ~buffer:20_000 ~ecn_threshold:1 ()
  in
  Net.add_route net ~src:1 ~dst:2 [ congested ];
  let got_ce = ref false in
  Net.attach net 2 (fun dg ->
      match dg.Net.payload with Net.Ce _ -> got_ce := true | _ -> ());
  (* the second packet queues behind the first and gets marked *)
  Net.send net { Net.src = 1; dst = 2; size = 1000; payload = Net.Raw "a" };
  Net.send net { Net.src = 1; dst = 2; size = 1000; payload = Net.Raw "b" };
  ignore (Sim.run sim);
  check Alcotest.bool "CE wrapper delivered" true !got_ce

(* ----------------------------- table 2 rows ---------------------------- *)

let test_extras_are_tiny () =
  (* the paper's claim: these extensions are well under 100 lines *)
  List.iter
    (fun (p : Pquic.Plugin.t) ->
      let s = Pquic.Plugin.stats p in
      check Alcotest.bool
        (Printf.sprintf "%s is %d LoC (< 100)" s.Pquic.Plugin.name s.Pquic.Plugin.loc)
        true (s.Pquic.Plugin.loc < 100))
    [ Plugins.Extras.Tlp.plugin; Plugins.Extras.Ecn.plugin;
      Plugins.Extras.Aimd.plugin ];
  List.iter
    (fun (p : Pquic.Plugin.t) ->
      let s = Pquic.Plugin.stats p in
      check Alcotest.int
        (Printf.sprintf "%s fully proven" s.Pquic.Plugin.name)
        s.Pquic.Plugin.pluglet_count s.Pquic.Plugin.proven_terminating)
    [ Plugins.Extras.Tlp.plugin; Plugins.Extras.Ecn.plugin;
      Plugins.Extras.Aimd.plugin ]

(* ------------------------------ behaviour ------------------------------ *)

let transfer ?(ecn_threshold = 0) ?(loss = 0.) ?(bw = 10.) ?(size = 500_000)
    ?(seed = 21L) ~plugins ~to_inject () =
  let topo =
    Topology.single_path ~ecn_threshold ~seed
      { Topology.d_ms = 20.; bw_mbps = bw; loss }
  in
  Exp.Runner.quic_transfer ~plugins ~to_inject ~topo ~size ()

let test_tlp_speeds_up_tail_loss () =
  (* small lossy transfers: when the tail is lost only the timer can save
     it, and the shortened TLP timer must win on aggregate and in several
     individual seeds *)
  let dct plugins to_inject seed =
    match transfer ~loss:0.06 ~size:12_000 ~seed ~plugins ~to_inject () with
    | Some r -> r.Exp.Runner.dct
    | None -> Alcotest.fail "transfer failed"
  in
  let seeds = List.init 40 (fun k -> Int64.of_int (k + 1)) in
  let base = List.map (dct [] []) seeds in
  let tlp =
    List.map
      (dct [ Plugins.Extras.Tlp.plugin ] [ Plugins.Extras.Tlp.name ])
      seeds
  in
  let sum = List.fold_left ( +. ) 0. in
  let faster =
    List.length (List.filter (fun (t, b) -> t < b -. 1e-6) (List.combine tlp base))
  in
  check Alcotest.bool
    (Printf.sprintf "TLP faster on aggregate (%.3f vs %.3f)" (sum tlp) (sum base))
    true
    (sum tlp < sum base);
  check Alcotest.bool
    (Printf.sprintf "TLP wins individual tail-loss seeds (%d)" faster)
    true (faster >= 3)

let test_ecn_reduces_queue_drops () =
  (* with DCTAP-style marking, the sender backs off before the drop-tail
     queue overflows: queue drops shrink vs the no-ECN run *)
  let run plugins to_inject =
    let topo =
      Topology.single_path ~buffer:30_000 ~ecn_threshold:12_000 ~seed:31L
        { Topology.d_ms = 20.; bw_mbps = 10.; loss = 0. }
    in
    match Exp.Runner.quic_transfer ~plugins ~to_inject ~topo ~size:3_000_000 () with
    | Some r ->
      let up, down = List.hd topo.Topology.mid_links in
      ignore up;
      ((Netsim.Link.stats down).Netsim.Link.queue_drops, r.Exp.Runner.dct)
    | None -> Alcotest.fail "transfer failed"
  in
  let drops_plain, _ = run [] [] in
  let drops_ecn, _ =
    run [ Plugins.Extras.Ecn.plugin ] [ Plugins.Extras.Ecn.name ]
  in
  check Alcotest.bool
    (Printf.sprintf "ECN cuts congestion drops (%d -> %d)" drops_plain drops_ecn)
    true
    (drops_ecn < drops_plain)

let test_aimd_controls_window () =
  (* replacing the cc operations still completes transfers, and without
     slow start the early window stays small *)
  match
    transfer ~size:1_000_000
      ~plugins:[ Plugins.Extras.Aimd.plugin ]
      ~to_inject:[ Plugins.Extras.Aimd.name ] ()
  with
  | Some r ->
    check Alcotest.bool "completes with the plugin CC" true (r.Exp.Runner.dct > 0.);
    (match r.Exp.Runner.server_conn with
    | Some sconn ->
      (* additive increase only: the window grew past the initial 16 kB but
         far less than slow start would have *)
      let cwnd = Quic.Cc.cwnd sconn.Pquic.Connection.paths.(0).Pquic.Connection.cc in
      check Alcotest.bool (Printf.sprintf "AIMD window %d" cwnd) true
        (cwnd > 16_384)
    | None -> Alcotest.fail "no server conn")
  | None -> Alcotest.fail "transfer failed"

let test_aimd_slower_than_newreno_in_slow_start_phase () =
  let dct plugins to_inject =
    match transfer ~bw:50. ~size:2_000_000 ~plugins ~to_inject () with
    | Some r -> r.Exp.Runner.dct
    | None -> Alcotest.fail "transfer failed"
  in
  let reno = dct [] [] in
  let aimd = dct [ Plugins.Extras.Aimd.plugin ] [ Plugins.Extras.Aimd.name ] in
  check Alcotest.bool
    (Printf.sprintf "no slow start costs time (%.2f vs %.2f)" aimd reno)
    true (aimd > reno)

let test_tlp_with_fec_combination () =
  (* orthogonal plugins compose: TLP (timer policy) + FEC (redundancy) *)
  match
    transfer ~loss:0.05
      ~plugins:[ Plugins.Extras.Tlp.plugin; Plugins.Fec.rlc_full ]
      ~to_inject:
        [ Plugins.Extras.Tlp.name;
          (Plugins.Fec.rlc_full : Pquic.Plugin.t).Pquic.Plugin.name ]
      ()
  with
  | Some r ->
    check Alcotest.bool "combination recovers" true
      (r.Exp.Runner.client_stats.Pquic.Connection.frames_recovered > 0)
  | None -> Alcotest.fail "combined transfer failed"

let tests =
  [
    ("ecn_substrate", [
      Alcotest.test_case "link CE marking" `Quick test_link_ce_marking;
      Alcotest.test_case "CE propagates" `Quick test_net_ce_propagates;
    ]);
    ("extras", [
      Alcotest.test_case "under 100 LoC" `Quick test_extras_are_tiny;
      Alcotest.test_case "TLP tail losses" `Quick test_tlp_speeds_up_tail_loss;
      Alcotest.test_case "ECN backs off early" `Quick test_ecn_reduces_queue_drops;
      Alcotest.test_case "AIMD plugin CC" `Quick test_aimd_controls_window;
      Alcotest.test_case "AIMD vs built-in" `Quick test_aimd_slower_than_newreno_in_slow_start_phase;
      Alcotest.test_case "TLP + FEC compose" `Quick test_tlp_with_fec_combination;
    ]);
  ]
