test/test_netsim.ml: Alcotest Fun Int64 List Netsim QCheck2 QCheck_alcotest
