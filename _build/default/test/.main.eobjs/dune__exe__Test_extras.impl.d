test/test_extras.ml: Alcotest Array Exp Int64 List Netsim Plugins Pquic Printf Quic
