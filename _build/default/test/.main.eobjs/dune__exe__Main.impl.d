test/main.ml: Alcotest List Test_anchors Test_ebpf Test_engine Test_extras Test_misc Test_netsim Test_plc Test_plugins Test_pquic Test_quic Test_tcpsim Test_trust
