test/test_ebpf.ml: Alcotest Array Bytes Char Ebpf Int32 Int64 List QCheck2 QCheck_alcotest String
