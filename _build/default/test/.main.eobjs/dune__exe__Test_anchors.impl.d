test/test_anchors.ml: Alcotest Array Ebpf Exp Int64 List Netsim Plc Plugins Pquic Quic String
