test/test_trust.ml: Alcotest Ebpf Hashtbl List Plugins Pquic Printf QCheck2 QCheck_alcotest String Trust
