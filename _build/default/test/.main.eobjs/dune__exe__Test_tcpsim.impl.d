test/test_tcpsim.ml: Alcotest Exp Int64 List Netsim Printf QCheck2 QCheck_alcotest String Tcpsim
