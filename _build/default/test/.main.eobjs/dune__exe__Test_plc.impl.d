test/test_plc.ml: Alcotest Array Bytes Ebpf Hashtbl Int64 List Plc QCheck2 QCheck_alcotest String
