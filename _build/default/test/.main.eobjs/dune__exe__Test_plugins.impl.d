test/test_plugins.ml: Alcotest Array Buffer Char Exp Int64 List Netsim Plugins Pquic Printf Quic String
