test/test_engine.ml: Alcotest Array Char Hashtbl List Netsim Option Pquic Printf Quic String
