test/test_misc.ml: Alcotest Array Compress Exp Int64 List Plugins Pquic Printf QCheck2 QCheck_alcotest String
