test/test_quic.ml: Alcotest Buffer Char Int64 List QCheck2 QCheck_alcotest Quic String
