test/test_pquic.ml: Alcotest Buffer Bytes Char Ebpf Exp Int64 List Netsim Option Plc Plugins Pquic QCheck2 QCheck_alcotest Quic String Trust
