test/main.mli:
