(* TCP baseline tests: segment codec, Cubic behaviour, transfers under
   loss, SACK recovery and reordering tolerance, plus the VPN tunnel. *)

module Sim = Netsim.Sim
module Net = Netsim.Net
module Topology = Netsim.Topology
module Tcp = Tcpsim.Tcp

let check = Alcotest.check

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let segment_roundtrip =
  qtest ~count:200 "segment serialize/deserialize roundtrip"
    QCheck2.Gen.(
      tup5 (int_range 0 65535) (int_range 0 1000000) (int_range 0 1000000)
        (int_range 0 7)
        (pair (int_range 0 1000)
           (list_size (int_range 0 3)
              (map (fun (a, b) -> (min a b, max a b + 1))
                 (pair (int_range 0 10000) (int_range 0 10000))))))
    (fun (conn_id, seq, ack, flags, (len, sacks)) ->
      let seg = { Tcp.conn_id; seq; ack; flags; len; sacks } in
      match Tcp.deserialize (Tcp.serialize seg) with
      | Some got ->
        got.Tcp.conn_id = conn_id && got.Tcp.seq = seq && got.Tcp.ack = ack
        && got.Tcp.flags = flags && got.Tcp.len = len
        && got.Tcp.sacks = List.filteri (fun i _ -> i < 3) sacks
      | None -> false)

let test_garbage_segment () =
  check Alcotest.bool "garbage rejected" true (Tcp.deserialize "XYZ" = None)

(* ------------------------------- cubic -------------------------------- *)

let test_cubic_slow_start_doubles () =
  let c = Tcpsim.Cubic.create ~mss:1000 ~initial_window_segments:10 () in
  let before = Tcpsim.Cubic.cwnd c in
  (* an RTT worth of acks in slow start roughly doubles the window *)
  for _ = 1 to 10 do
    Tcpsim.Cubic.on_ack c ~now:0.1 ~acked_bytes:1000 ~rtt:0.05
  done;
  check Alcotest.bool "doubled" true (Tcpsim.Cubic.cwnd c >= 2 * before - 1000)

let test_cubic_loss_reduces () =
  let c = Tcpsim.Cubic.create ~mss:1000 () in
  for _ = 1 to 50 do
    Tcpsim.Cubic.on_ack c ~now:0.1 ~acked_bytes:1000 ~rtt:0.05
  done;
  let before = Tcpsim.Cubic.cwnd c in
  Tcpsim.Cubic.on_loss c ~now:0.2;
  let after = Tcpsim.Cubic.cwnd c in
  check Alcotest.bool "beta = 0.7 decrease" true
    (float_of_int after >= 0.65 *. float_of_int before
     && float_of_int after <= 0.75 *. float_of_int before)

let test_cubic_rto_collapses () =
  let c = Tcpsim.Cubic.create ~mss:1000 () in
  Tcpsim.Cubic.on_rto c;
  check Alcotest.int "one segment after RTO" 1000 (Tcpsim.Cubic.cwnd c)

let test_cubic_recovers_toward_wmax () =
  let c = Tcpsim.Cubic.create ~mss:1000 () in
  for _ = 1 to 100 do
    Tcpsim.Cubic.on_ack c ~now:0.1 ~acked_bytes:1000 ~rtt:0.05
  done;
  let wmax = Tcpsim.Cubic.cwnd c in
  Tcpsim.Cubic.on_loss c ~now:1.0;
  (* drive acks with advancing time: the cubic function climbs back *)
  let t = ref 1.0 in
  for _ = 1 to 400 do
    t := !t +. 0.01;
    Tcpsim.Cubic.on_ack c ~now:!t ~acked_bytes:1000 ~rtt:0.05
  done;
  check Alcotest.bool "window climbed back near w_max" true
    (Tcpsim.Cubic.cwnd c > (wmax * 8) / 10)

(* ------------------------------ transfers ------------------------------ *)

let direct_transfer ?(loss = 0.) ?(d_ms = 10.) ?(bw = 20.) ?(seed = 5L) ~size () =
  let topo = Topology.single_path ~seed { Topology.d_ms; bw_mbps = bw; loss } in
  Exp.Runner.tcp_direct ~topo ~size ()

let test_transfer_completes () =
  match direct_transfer ~size:1_000_000 () with
  | Some dct ->
    (* ideal is ~0.45 s at 20 Mbps: allow generous slack, catch disasters *)
    check Alcotest.bool (Printf.sprintf "reasonable DCT (%.3f)" dct) true (dct < 1.5)
  | None -> Alcotest.fail "transfer did not complete"

let test_transfer_near_link_rate () =
  match direct_transfer ~size:10_000_000 () with
  | Some dct ->
    let goodput = 10_000_000. *. 8. /. dct /. 1e6 in
    check Alcotest.bool
      (Printf.sprintf "goodput %.1f Mbps of 20" goodput)
      true
      (goodput > 15.)
  | None -> Alcotest.fail "transfer did not complete"

let lossy_transfers =
  qtest ~count:8 "transfers complete under random loss"
    QCheck2.Gen.(pair (map Int64.of_int (int_range 1 1000)) (int_range 1 8))
    (fun (seed, loss_pct) ->
      direct_transfer ~seed ~loss:(float_of_int loss_pct /. 100.) ~size:300_000 ()
      <> None)

let test_sack_beats_tail_drop () =
  (* 3%% random loss in both directions: SACK-based recovery must keep the
     transfer moving (an RTO-only sender would crawl) *)
  match direct_transfer ~loss:0.03 ~size:2_000_000 ~seed:42L () with
  | Some dct ->
    check Alcotest.bool (Printf.sprintf "completes at 3%%%% loss (%.1fs)" dct)
      true (dct < 25.)
  | None -> Alcotest.fail "transfer did not complete"

let test_tiny_transfer () =
  match direct_transfer ~size:1 () with
  | Some _ -> ()
  | None -> Alcotest.fail "1-byte transfer failed"

let test_reordering_tolerance () =
  (* deliver segments through two alternating links of different delay:
     persistent 2-packet reordering must not collapse throughput *)
  let sim = Sim.create () in
  let net = Net.create sim in
  let rng = Netsim.Rng.create 1L in
  let l1 = Netsim.Link.create ~sim ~delay_ms:10. ~rate_mbps:50. ~loss:0. ~rng () in
  let l2 = Netsim.Link.create ~sim ~delay_ms:13. ~rate_mbps:50. ~loss:0. ~rng () in
  let back = Netsim.Link.create ~sim ~delay_ms:10. ~rate_mbps:50. ~loss:0. ~rng () in
  let flip = ref false in
  let completed = ref false in
  let receiver_tx = ref (fun _ -> ()) in
  let receiver =
    Tcp.create_receiver ~sim ~transport:(fun pkt -> !receiver_tx pkt)
      ~on_complete:(fun () -> completed := true) ()
  in
  let sender =
    Tcp.create_sender ~sim
      ~transport:(fun pkt ->
        flip := not !flip;
        let l = if !flip then l1 else l2 in
        Netsim.Link.send l ~size:(String.length pkt) (fun () ->
            Tcp.receiver_receive receiver pkt))
      ~total:2_000_000
      ~on_done:(fun () -> ())
      ()
  in
  receiver_tx :=
    (fun pkt ->
      Netsim.Link.send back ~size:(String.length pkt) (fun () ->
          Tcp.sender_receive sender pkt));
  ignore net;
  Tcp.start_sender sender;
  ignore (Sim.run ~until:(Sim.of_sec 30.) sim);
  check Alcotest.bool "completed despite reordering" true !completed;
  (* throughput must stay healthy: persistent reordering without the RACK
     window would collapse the window to nothing *)
  check Alcotest.bool
    (Printf.sprintf "good throughput despite reordering (%.2fs)"
       (Sim.to_sec (Sim.now sim)))
    true
    (Sim.to_sec (Sim.now sim) < 3.);
  check Alcotest.bool
    (Printf.sprintf "bounded spurious retransmissions (%d)" sender.Tcp.retransmissions)
    true
    (sender.Tcp.retransmissions < 400)

(* ------------------------------- tunnel -------------------------------- *)

let test_vpn_overhead_bounded () =
  let p = { Topology.d_ms = 10.; bw_mbps = 20.; loss = 0. } in
  let t_out = Exp.Runner.tcp_direct ~topo:(Topology.single_path ~seed:11L p) ~size:2_000_000 () in
  let t_in = Exp.Runner.tcp_vpn ~topo:(Topology.single_path ~seed:11L p) ~size:2_000_000 () in
  match (t_out, t_in) with
  | Some o, Some i ->
    let ratio = i /. o in
    check Alcotest.bool (Printf.sprintf "ratio %.3f in [1.0, 1.3]" ratio) true
      (ratio > 1.0 && ratio < 1.3)
  | _ -> Alcotest.fail "vpn transfer failed"

let test_multipath_vpn_beats_single () =
  let p = { Topology.d_ms = 10.; bw_mbps = 20.; loss = 0. } in
  let t_single = Exp.Runner.tcp_vpn ~topo:(Topology.single_path ~seed:11L p) ~size:5_000_000 () in
  let t_multi =
    Exp.Runner.tcp_vpn ~multipath:true ~topo:(Topology.dual_path ~seed:11L p p)
      ~size:5_000_000 ()
  in
  match (t_single, t_multi) with
  | Some s, Some m ->
    check Alcotest.bool (Printf.sprintf "multipath faster (%.2f vs %.2f)" m s)
      true (m < s)
  | _ -> Alcotest.fail "vpn transfer failed"

let tests =
  [
    ("segments", [
      Alcotest.test_case "garbage" `Quick test_garbage_segment;
      segment_roundtrip;
    ]);
    ("cubic", [
      Alcotest.test_case "slow start" `Quick test_cubic_slow_start_doubles;
      Alcotest.test_case "loss decrease" `Quick test_cubic_loss_reduces;
      Alcotest.test_case "rto collapse" `Quick test_cubic_rto_collapses;
      Alcotest.test_case "cubic recovery" `Quick test_cubic_recovers_toward_wmax;
    ]);
    ("transfer", [
      Alcotest.test_case "completes" `Quick test_transfer_completes;
      Alcotest.test_case "near link rate" `Quick test_transfer_near_link_rate;
      Alcotest.test_case "sack recovery" `Quick test_sack_beats_tail_drop;
      Alcotest.test_case "tiny transfer" `Quick test_tiny_transfer;
      Alcotest.test_case "reordering tolerance" `Quick test_reordering_tolerance;
      lossy_transfers;
    ]);
    ("vpn", [
      Alcotest.test_case "overhead bounded" `Quick test_vpn_overhead_bounded;
      Alcotest.test_case "multipath vpn faster" `Quick test_multipath_vpn_beats_single;
    ]);
  ]
