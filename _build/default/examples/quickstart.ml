(* Quickstart: a PQUIC connection over a simulated network, with the
   monitoring plugin attached. Shows the three core moves of the public
   API: build a topology, create endpoints with plugins in their local
   cache, and drive a connection with stream callbacks. The monitoring
   plugin's pluglets — eBPF bytecode running in PREs inside the engine —
   export their performance indicators when the connection closes. *)

let () =
  (* a single client-server path: 15 ms one-way, 20 Mbps, 1% loss *)
  let topo =
    Netsim.Topology.single_path ~seed:7L
      { Netsim.Topology.d_ms = 15.; bw_mbps = 20.; loss = 0.01 }
  in
  let sim = topo.Netsim.Topology.sim and net = topo.Netsim.Topology.net in

  (* endpoints; both hold the monitoring plugin in their local cache *)
  let server =
    Pquic.Endpoint.create ~sim ~net ~addr:topo.Netsim.Topology.server_addr
      ~seed:1L ()
  in
  let client =
    Pquic.Endpoint.create ~sim ~net
      ~addr:(List.hd topo.Netsim.Topology.client_addrs)
      ~seed:2L ()
  in
  Pquic.Endpoint.add_plugin server Plugins.Monitoring.plugin;
  Pquic.Endpoint.add_plugin client Plugins.Monitoring.plugin;
  Pquic.Endpoint.listen server;
  Pquic.Endpoint.listen client;

  (* server application: answer any finished request with 1 MB *)
  server.Pquic.Endpoint.on_connection <-
    (fun c ->
      c.Pquic.Connection.on_stream_data <-
        (fun id _ ~fin ->
          if fin then
            Pquic.Connection.write_stream c ~id ~fin:true
              (String.make 1_000_000 'x')));

  (* client: connect, requesting the monitoring plugin on the connection *)
  let conn =
    Pquic.Endpoint.connect client ~remote_addr:topo.Netsim.Topology.server_addr
      ~plugins_to_inject:[ Plugins.Monitoring.name ]
  in
  let received = ref 0 in
  conn.Pquic.Connection.on_established <-
    (fun () ->
      Printf.printf "connection established, plugins active: [%s]\n"
        (String.concat "; " (Pquic.Connection.plugin_names conn));
      Pquic.Connection.write_stream conn ~id:0 ~fin:true "GET /1MB");
  conn.Pquic.Connection.on_stream_data <-
    (fun _ data ~fin ->
      received := !received + String.length data;
      if fin then begin
        Printf.printf "download complete: %d bytes at t=%.3fs\n" !received
          (Netsim.Sim.to_sec (Netsim.Sim.now sim));
        Pquic.Connection.close conn ~reason:"done"
      end);

  (* the monitoring plugin pushes its PI block to the "local daemon" *)
  conn.Pquic.Connection.on_message <-
    (fun msg ->
      match Plugins.Monitoring.decode_report msg with
      | None -> ()
      | Some r ->
        Printf.printf
          "monitoring PI export:\n\
          \  packets sent/received: %Ld/%Ld\n\
          \  bytes sent/received:   %Ld/%Ld\n\
          \  packets lost:          %Ld\n\
          \  avg RTT:               %.1f ms (from %Ld samples)\n\
          \  handshake time:        %.1f ms\n\
          \  streams opened/closed: %Ld/%Ld\n"
          r.Plugins.Monitoring.pkts_sent r.Plugins.Monitoring.pkts_received
          r.Plugins.Monitoring.bytes_sent r.Plugins.Monitoring.bytes_received
          r.Plugins.Monitoring.pkts_lost
          (Int64.to_float r.Plugins.Monitoring.rtt_avg_ns /. 1e6)
          r.Plugins.Monitoring.rtt_samples
          (Int64.to_float r.Plugins.Monitoring.handshake_time_ns /. 1e6)
          r.Plugins.Monitoring.streams_opened
          r.Plugins.Monitoring.streams_closed);

  ignore (Netsim.Sim.run ~until:(Netsim.Sim.of_sec 120.) sim);
  Printf.printf "simulation finished at t=%.3fs\n"
    (Netsim.Sim.to_sec (Netsim.Sim.now sim))
