(* The Section 4 opener — "with less than 100 lines of C code a PQUIC
   plugin can add the equivalent of Tail Loss Probe in TCP, or support for
   Explicit Congestion Notification" — plus Section 6's sketch of a
   congestion controller as a plugin. Three tiny plugins, measured:

   - TLP shortens the retransmission timer for stream tails;
   - ECN reacts to router marks before the queue overflows;
   - AIMD replaces the congestion-control protocol operations outright. *)

module Topology = Netsim.Topology

let pf = Printf.printf

let dct ?(ecn_threshold = 0) ?(loss = 0.) ?(size = 500_000) ~plugins () =
  let topo =
    Topology.single_path ~ecn_threshold ~seed:21L
      { Topology.d_ms = 20.; bw_mbps = 10.; loss }
  in
  let to_inject = List.map (fun (p : Pquic.Plugin.t) -> p.Pquic.Plugin.name) plugins in
  match Exp.Runner.quic_transfer ~plugins ~to_inject ~topo ~size () with
  | Some r -> (r.Exp.Runner.dct, topo)
  | None -> failwith "transfer failed"

let () =
  pf "Plugin sizes (the paper's <100-LoC claim):\n";
  List.iter
    (fun (p : Pquic.Plugin.t) ->
      let s = Pquic.Plugin.stats p in
      pf "  %-20s %3d LoC, %d pluglets, %d proven terminating\n"
        s.Pquic.Plugin.name s.Pquic.Plugin.loc s.Pquic.Plugin.pluglet_count
        s.Pquic.Plugin.proven_terminating)
    [ Plugins.Extras.Tlp.plugin; Plugins.Extras.Ecn.plugin;
      Plugins.Extras.Aimd.plugin ];

  pf "\nTail Loss Probe on a 6%% lossy path (12 kB transfers, 40 seeds):\n";
  let tail_dct plugins seed =
    let topo =
      Topology.single_path ~seed { Topology.d_ms = 20.; bw_mbps = 10.; loss = 0.06 }
    in
    let to_inject = List.map (fun (p : Pquic.Plugin.t) -> p.Pquic.Plugin.name) plugins in
    match Exp.Runner.quic_transfer ~plugins ~to_inject ~topo ~size:12_000 () with
    | Some r -> r.Exp.Runner.dct
    | None -> nan
  in
  let seeds = List.init 40 (fun k -> Int64.of_int (k + 1)) in
  let sum f = List.fold_left (fun a s -> a +. f s) 0. seeds in
  let faster =
    List.length
      (List.filter
         (fun s -> tail_dct [ Plugins.Extras.Tlp.plugin ] s < tail_dct [] s -. 1e-6)
         seeds)
  in
  let base = sum (tail_dct []) and tlp = sum (tail_dct [ Plugins.Extras.Tlp.plugin ]) in
  pf "  total DCT without TLP: %.3f s, with TLP: %.3f s (%.1f%% faster overall)\n"
    base tlp (100. *. (base -. tlp) /. base);
  pf "  transfers that hit a tail loss finish earlier in %d of 40 seeds\n" faster;

  pf "\nECN on a congested bottleneck (3 MB, shallow 30 kB router queue):\n";
  let run plugins =
    let topo =
      Topology.single_path ~buffer:30_000 ~ecn_threshold:12_000 ~seed:31L
        { Topology.d_ms = 20.; bw_mbps = 10.; loss = 0. }
    in
    let to_inject = List.map (fun (p : Pquic.Plugin.t) -> p.Pquic.Plugin.name) plugins in
    match Exp.Runner.quic_transfer ~plugins ~to_inject ~topo ~size:3_000_000 () with
    | Some r ->
      let _, down = List.hd topo.Topology.mid_links in
      (r.Exp.Runner.dct, (Netsim.Link.stats down).Netsim.Link.queue_drops,
       (Netsim.Link.stats down).Netsim.Link.ce_marked)
    | None -> failwith "transfer failed"
  in
  let d0, drops0, _ = run [] in
  let d1, drops1, marks = run [ Plugins.Extras.Ecn.plugin ] in
  pf "  without ECN: DCT %.2f s, %d packets dropped at the router\n" d0 drops0;
  pf "  with ECN:    DCT %.2f s, %d dropped, %d CE-marked instead\n" d1 drops1 marks;

  pf "\nAIMD congestion-control plugin (1 MB, clean 10 Mbps path):\n";
  let reno, _ = dct ~plugins:[] () in
  let aimd, _ = dct ~plugins:[ Plugins.Extras.Aimd.plugin ] ~size:500_000 () in
  pf "  built-in NewReno: %.2f s; plugin AIMD (no slow start): %.2f s\n" reno aimd;
  pf
    "\nAll three replace or observe protocol operations through the same\n\
     get/set API and run as verified, monitored eBPF bytecode.\n"
