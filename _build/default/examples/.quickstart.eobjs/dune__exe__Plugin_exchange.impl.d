examples/plugin_exchange.ml: List Logs Netsim Plugins Pquic Printf String Trust
