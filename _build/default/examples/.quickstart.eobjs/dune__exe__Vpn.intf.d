examples/vpn.mli:
