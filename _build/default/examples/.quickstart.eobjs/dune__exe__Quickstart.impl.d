examples/quickstart.ml: Int64 List Netsim Plugins Pquic Printf String
