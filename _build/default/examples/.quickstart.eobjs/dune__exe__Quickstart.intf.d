examples/quickstart.mli:
