examples/extensions.mli:
