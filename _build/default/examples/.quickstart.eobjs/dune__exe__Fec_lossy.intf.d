examples/fec_lossy.mli:
