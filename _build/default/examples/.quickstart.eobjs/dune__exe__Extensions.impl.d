examples/extensions.ml: Exp Int64 List Netsim Plugins Pquic Printf
