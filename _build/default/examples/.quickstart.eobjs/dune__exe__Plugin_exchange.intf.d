examples/plugin_exchange.mli:
