examples/multipath_transfer.ml: Exp List Netsim Plugins Printf
