examples/vpn.ml: Exp List Netsim Printf
