examples/multipath_transfer.mli:
