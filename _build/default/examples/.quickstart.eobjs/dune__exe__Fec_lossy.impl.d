examples/fec_lossy.ml: Exp List Netsim Plugins Pquic Printf
