(* Multipath QUIC as a protocol plugin (Section 4.3): the same download
   runs over one path, then over two symmetric paths with the multipath
   plugin injected on both endpoints. The plugin exchanges host addresses
   with an ADD_ADDRESS frame, opens a second path, schedules packets
   round-robin and feeds per-path RTT estimates from MP_ACK frames. The
   speedup ratio approaching 2 on large files reproduces Figure 9. *)

let p = { Netsim.Topology.d_ms = 10.; bw_mbps = 20.; loss = 0. }

let run ~multipath ~size =
  let topo =
    if multipath then Netsim.Topology.dual_path ~seed:3L p p
    else Netsim.Topology.single_path ~seed:3L p
  in
  let plugins, to_inject =
    if multipath then ([ Plugins.Multipath.plugin ], [ Plugins.Multipath.name ])
    else ([], [])
  in
  match
    Exp.Runner.quic_transfer ~plugins ~to_inject ~multipath ~topo ~size ()
  with
  | Some r -> r.Exp.Runner.dct
  | None -> nan

let () =
  Printf.printf
    "Multipath plugin over two symmetric %.0f Mbps paths (%.0f ms one-way)\n\n"
    p.Netsim.Topology.bw_mbps p.Netsim.Topology.d_ms;
  Printf.printf "%10s %14s %14s %10s\n" "size" "single path" "two paths" "speedup";
  List.iter
    (fun size ->
      let single = run ~multipath:false ~size in
      let multi = run ~multipath:true ~size in
      Printf.printf "%10s %12.3f s %12.3f s %9.2fx\n"
        (if size >= 1_000_000 then Printf.sprintf "%d MB" (size / 1_000_000)
         else Printf.sprintf "%d kB" (size / 1_000))
        single multi (single /. multi))
    [ 10_000; 50_000; 1_000_000; 10_000_000 ];
  Printf.printf
    "\nSmall transfers gain little (each path is limited by its initial\n\
     congestion window); large transfers aggregate both paths.\n"
