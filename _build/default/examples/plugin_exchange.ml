(* End-to-end walk through the secure plugin management system (Section 3)
   and the in-connection plugin exchange (Section 3.4):

   1. a developer publishes the FEC plugin on the Plugin Repository;
   2. three Plugin Validators validate it, build their Merkle prefix trees
      and publish signed tree roots (STRs);
   3. a client that has never seen the plugin requires "PV1&(PV2|PV3)",
      receives the plugin over the QUIC connection with authentication
      paths, verifies the proofs against the STRs and stores it in its
      local cache;
   4. a second connection then injects it locally, and the transfer
      benefits from FEC on a lossy link;
   5. the developer lookup detects a spurious binding, and the repository
      flags an equivocating validator. *)

let pf = Printf.printf

let () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Info);
  (* --- the distributed trust system --------------------------------- *)
  let repo = Trust.Repository.create () in
  let pvs =
    List.map
      (fun id ->
        let v = Trust.Validator.create ~id ~signing_key:("key-" ^ id) () in
        Trust.Repository.register_pv repo ~id ~key:("key-" ^ id);
        (id, v))
      [ "PV1"; "PV2"; "PV3" ]
  in
  let system = Trust.Pvsystem.create ~repo ~validators:pvs () in
  let plugin = Plugins.Fec.rlc_eos in
  let results =
    Trust.Pvsystem.publish_and_validate system ~developer:"uclouvain" plugin
  in
  List.iter
    (fun (id, r) ->
      pf "%s validation: %s\n" id
        (match r with Ok () -> "ok" | Error e -> "REFUSED: " ^ e))
    results;
  Trust.Pvsystem.publish_epoch system;

  (* --- first connection: the client fetches the plugin remotely ------ *)
  let p = { Netsim.Topology.d_ms = 20.; bw_mbps = 10.; loss = 0.02 } in
  let topo = Netsim.Topology.single_path ~seed:42L p in
  let sim = topo.Netsim.Topology.sim and net = topo.Netsim.Topology.net in
  let formula = "PV1&(PV2|PV3)" in
  let cfg = { Pquic.Connection.default_config with trust_formula = formula } in
  let server =
    Pquic.Endpoint.create ~cfg ~sim ~net ~addr:topo.Netsim.Topology.server_addr
      ~seed:1L ()
  in
  let client =
    Pquic.Endpoint.create ~cfg ~sim ~net
      ~addr:(List.hd topo.Netsim.Topology.client_addrs)
      ~seed:2L ()
  in
  (* the server holds the plugin and can prove its validity; the client
     only trusts what satisfies its formula *)
  Pquic.Endpoint.add_plugin server plugin;
  server.Pquic.Endpoint.prover <-
    (fun ~name ~formula -> Trust.Pvsystem.prover system ~name ~formula);
  client.Pquic.Endpoint.verifier <- Trust.Pvsystem.verifier system ~formula;
  (* the server wants FEC active on its connections *)
  server.Pquic.Endpoint.plugins_to_inject <- [ plugin.Pquic.Plugin.name ];
  Pquic.Endpoint.listen server;
  Pquic.Endpoint.listen client;
  let conn1 =
    Pquic.Endpoint.connect client ~remote_addr:topo.Netsim.Topology.server_addr
  in
  conn1.Pquic.Connection.on_established <-
    (fun () -> Pquic.Connection.write_stream conn1 ~id:0 ~fin:true "GET /");
  server.Pquic.Endpoint.on_connection <-
    (fun c ->
      c.Pquic.Connection.on_stream_data <-
        (fun id _ ~fin ->
          if fin then
            Pquic.Connection.write_stream c ~id ~fin:true
              (String.make 100_000 'x')));
  ignore (Netsim.Sim.run ~until:(Netsim.Sim.of_sec 30.) sim);
  pf "\nAfter connection 1:\n";
  pf "  client cached the plugin: %b\n"
    (Pquic.Endpoint.has_plugin client plugin.Pquic.Plugin.name);
  pf "  plugin active on connection 1 (must be false; Section 3.4 only\n";
  pf "  offers remote plugins to subsequent connections): %b\n"
    (Pquic.Connection.has_plugin conn1 plugin.Pquic.Plugin.name);

  (* --- second connection: the plugin is local now -------------------- *)
  let conn2 =
    Pquic.Endpoint.connect client ~remote_addr:topo.Netsim.Topology.server_addr
  in
  let recovered = ref 0 in
  conn2.Pquic.Connection.on_established <-
    (fun () -> Pquic.Connection.write_stream conn2 ~id:0 ~fin:true "GET /");
  conn2.Pquic.Connection.on_stream_data <-
    (fun _ _ ~fin ->
      if fin then
        recovered := (Pquic.Connection.stats conn2).Pquic.Connection.frames_recovered);
  ignore (Netsim.Sim.run ~until:(Netsim.Sim.of_sec 60.) sim);
  pf "\nAfter connection 2:\n";
  pf "  plugin active on connection 2: %b\n"
    (Pquic.Connection.has_plugin conn2 plugin.Pquic.Plugin.name);
  pf "  packets recovered by FEC on the lossy link: %d\n" !recovered;

  (* --- the security properties of Appendix B ------------------------- *)
  pf "\nSecurity checks:\n";
  let pv1 = List.assoc "PV1" pvs in
  (* developer lookup before tampering *)
  let verdict =
    Trust.Validator.developer_check pv1 ~name:plugin.Pquic.Plugin.name
      ~code:(Pquic.Plugin.serialize plugin)
  in
  pf "  developer lookup (clean tree): %s\n"
    (match verdict with
    | Trust.Validator.Clean -> "clean"
    | Trust.Validator.Spurious _ -> "SPURIOUS"
    | Trust.Validator.Tampered -> "TAMPERED");
  (* a malicious PV injects a spurious binding under the developer's name *)
  Trust.Validator.inject_spurious pv1 ~name:plugin.Pquic.Plugin.name
    ~code:"malicious bytecode";
  ignore (Trust.Validator.publish pv1);
  let verdict =
    Trust.Validator.developer_check pv1 ~name:plugin.Pquic.Plugin.name
      ~code:(Pquic.Plugin.serialize plugin)
  in
  pf "  developer lookup after spurious injection: %s\n"
    (match verdict with
    | Trust.Validator.Clean -> "clean (BAD!)"
    | Trust.Validator.Spurious _ -> "spurious binding detected"
    | Trust.Validator.Tampered -> "tampering detected");
  (* equivocation: two different STRs for the same epoch *)
  let pv2 = List.assoc "PV2" pvs in
  let str_a = Trust.Validator.publish pv2 in
  (match Trust.Repository.record_str repo str_a with
  | Ok () -> ()
  | Error e -> pf "  unexpected: %s\n" e);
  Trust.Validator.inject_spurious pv2 ~name:"evil.plugin" ~code:"evil";
  pv2.Trust.Validator.epoch <- pv2.Trust.Validator.epoch - 1;
  let str_b = Trust.Validator.publish pv2 in
  (match Trust.Repository.record_str repo str_b with
  | Ok () -> pf "  equivocation NOT detected (BAD!)\n"
  | Error _ -> pf "  equivocation detected and alerted at the repository\n");
  pf "  repository alerts: %d\n" (List.length (Trust.Repository.alerts repo));
  pf "  STR log hash chain intact: %b\n" (Trust.Repository.audit_log repo "PV2")
