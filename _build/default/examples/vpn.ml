(* The QUIC VPN of Section 4.2: a TCP Cubic download runs once directly
   over the network and once inside a PQUIC tunnel built on the Datagram
   plugin (raw "IP packets" encapsulated in unreliable DATAGRAM frames,
   1400-byte inner MTU). Prints the download completion times and the
   in/out ratio the paper reports in Figure 8. *)

let params = { Netsim.Topology.d_ms = 10.; bw_mbps = 20.; loss = 0. }

let () =
  Printf.printf "QUIC VPN (datagram plugin): TCP download inside vs outside\n";
  Printf.printf "link: %.1f ms one-way, %.0f Mbps\n\n" params.Netsim.Topology.d_ms
    params.Netsim.Topology.bw_mbps;
  Printf.printf "%10s %12s %12s %8s\n" "size" "outside" "inside" "ratio";
  List.iter
    (fun size ->
      let outside =
        Exp.Runner.tcp_direct
          ~topo:(Netsim.Topology.single_path ~seed:11L params)
          ~size ()
      in
      let inside =
        Exp.Runner.tcp_vpn
          ~topo:(Netsim.Topology.single_path ~seed:11L params)
          ~size ()
      in
      match (outside, inside) with
      | Some o, Some i ->
        Printf.printf "%10s %10.3f s %10.3f s %8.3f\n"
          (if size >= 1_000_000 then Printf.sprintf "%d MB" (size / 1_000_000)
           else Printf.sprintf "%d kB" (size / 1_000))
          o i (i /. o)
      | _ -> Printf.printf "%10d transfer did not complete\n" size)
    [ 1_500; 10_000; 50_000; 1_000_000; 10_000_000 ];
  Printf.printf
    "\nThe per-packet encapsulation bound (outer QUIC+UDP/IP overhead over\n\
     the inner 1400-byte MTU vs raw 1500-byte packets) is ~1.05; large\n\
     transfers sit near it, short ones are dominated by handshake effects.\n"
