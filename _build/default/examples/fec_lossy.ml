(* Forward Erasure Correction plugin (Section 4.4) on a lossy, high-delay
   path (the paper's In-Flight Communications use case): the download runs
   without FEC, with the XOR code and with the Random Linear Code, in both
   the end-of-stream and whole-stream protection modes. Repair symbols let
   the receiver resurrect lost packets without waiting a retransmission
   round-trip; whole-stream protection costs bandwidth, as in Figure 10. *)

let p = { Netsim.Topology.d_ms = 200.; bw_mbps = 2.; loss = 0.04 }

let run ~plugin ~size =
  let topo = Netsim.Topology.single_path ~seed:17L p in
  let plugins, to_inject =
    match plugin with
    | Some (pl : Pquic.Plugin.t) -> ([ pl ], [ pl.Pquic.Plugin.name ])
    | None -> ([], [])
  in
  match Exp.Runner.quic_transfer ~plugins ~to_inject ~topo ~size () with
  | Some r ->
    (r.Exp.Runner.dct,
     r.Exp.Runner.client_stats.Pquic.Connection.frames_recovered)
  | None -> (nan, 0)

let () =
  Printf.printf
    "FEC plugin on an in-flight-like path: %.0f ms one-way, %.1f Mbps, %.0f%% loss\n\n"
    p.Netsim.Topology.d_ms p.Netsim.Topology.bw_mbps
    (100. *. p.Netsim.Topology.loss);
  let size = 300_000 in
  Printf.printf "download size: %d kB\n\n" (size / 1000);
  Printf.printf "%-24s %10s %12s %8s\n" "configuration" "DCT" "recovered" "ratio";
  let base, _ = run ~plugin:None ~size in
  List.iter
    (fun (label, plugin) ->
      let dct, recovered = run ~plugin ~size in
      Printf.printf "%-24s %8.3f s %12d %8.3f\n" label dct recovered (dct /. base))
    [
      ("no FEC", None);
      ("XOR, end of stream", Some Plugins.Fec.xor_eos);
      ("XOR, whole stream", Some Plugins.Fec.xor_full);
      ("RLC, end of stream", Some Plugins.Fec.rlc_eos);
      ("RLC, whole stream", Some Plugins.Fec.rlc_full);
    ];
  Printf.printf
    "\nXOR recovers at most one loss per window; RLC solves a linear system\n\
     over GF(256) and recovers several. Whole-stream protection spends 5/30\n\
     of the bandwidth on repair symbols; end-of-stream only protects tails.\n"
