(* Experiment harness: regenerates every table and figure of the paper's
   evaluation (Section 4). Each subcommand prints the series/rows the paper
   reports; EXPERIMENTS.md records paper-vs-measured.

     table2  plugin statistics (LoC, pluglets, termination, sizes)
     fig8    CDF of DCT ratios, TCP in/out the single-path datagram VPN
     fig9    multipath speedup ratio vs file size (plugin vs mp-quic-like)
     fig10   CDF of DCT ratios with/without FEC (EOS vs whole stream)
     fig11   CDF of DCT ratios, TCP in/out the multipath VPN
     table3  goodput + plugin load time benchmark

   --points N subsamples the WSP designs (default 139, as in the paper);
   --size-cap excludes the largest file sizes for quick runs. *)

module Topology = Netsim.Topology

let pf = Printf.printf

let sizes_all = [ 1_500; 10_000; 50_000; 1_000_000; 10_000_000 ]

let human_size n =
  if n >= 1_000_000 then Printf.sprintf "%dMB" (n / 1_000_000)
  else if n >= 1_000 then Printf.sprintf "%dkB" (n / 1_000)
  else Printf.sprintf "%dB" n

let seed_of_point i = Int64.of_int ((i * 7919) + 13)

(* ------------------------------------------------------------------ *)

let table2 () =
  pf "Table 2: statistics for each implemented plugin\n";
  pf "%-28s %6s %9s %7s %10s %12s\n" "Plugin" "LoC" "Pluglets"
    "Proven" "ELF size" "Compressed";
  let row (p : Pquic.Plugin.t) =
    let s = Pquic.Plugin.stats p in
    let serialized = Pquic.Plugin.serialize p in
    let compressed = Compress.Lzss.compress serialized in
    pf "%-28s %6d %9d %7d %9dB %11dB\n" s.Pquic.Plugin.name
      s.Pquic.Plugin.loc s.Pquic.Plugin.pluglet_count
      s.Pquic.Plugin.proven_terminating s.Pquic.Plugin.elf_size
      (String.length compressed)
  in
  row Plugins.Monitoring.plugin;
  row Plugins.Datagram.plugin;
  row Plugins.Multipath.plugin;
  row Plugins.Multipath.plugin_lowest_rtt;
  row Plugins.Fec.xor_full;
  row Plugins.Fec.xor_eos;
  row Plugins.Fec.rlc_full;
  row Plugins.Fec.rlc_eos;
  (* the paper's FEC row sums the framework with both ECCs and both modes *)
  let fec_all =
    [ Plugins.Fec.xor_full; Plugins.Fec.xor_eos; Plugins.Fec.rlc_full;
      Plugins.Fec.rlc_eos ]
  in
  let loc, pl, pr, elf, comp =
    List.fold_left
      (fun (loc, pl, pr, elf, comp) p ->
        let s = Pquic.Plugin.stats p in
        ( loc + s.Pquic.Plugin.loc,
          pl + s.Pquic.Plugin.pluglet_count,
          pr + s.Pquic.Plugin.proven_terminating,
          elf + s.Pquic.Plugin.elf_size,
          comp + String.length (Compress.Lzss.compress (Pquic.Plugin.serialize p)) ))
      (0, 0, 0, 0, 0) fec_all
  in
  pf "%-28s %6d %9d %7d %9dB %11dB\n" "FEC (all variants summed)" loc pl pr
    elf comp;
  pf "\nProtocol operations in the engine: %d (4 parameterized)\n"
    Pquic.Protoop.count

(* ------------------------------------------------------------------ *)

let fig8 ~points ~cdf ~sizes () =
  pf "Figure 8: DCT ratio of TCP inside/outside a single-path PQUIC tunnel\n";
  pf "(datagram plugin VPN; WSP design over d1 in [2.5,25]ms, bw1 in [5,50]Mbps, no loss)\n\n";
  let design = Exp.Runner.default_points ~count:points () in
  List.iter
    (fun size ->
      let ratios =
        List.filteri (fun _ _ -> true) design
        |> List.mapi (fun i p ->
               let seed = seed_of_point i in
               let t_out =
                 Exp.Runner.tcp_direct ~topo:(Topology.single_path ~seed p)
                   ~size ()
               in
               let t_in =
                 Exp.Runner.tcp_vpn ~topo:(Topology.single_path ~seed p) ~size ()
               in
               match (t_in, t_out) with
               | Some i, Some o when o > 0. -> Some (i /. o)
               | _ -> None)
        |> List.filter_map Fun.id
      in
      Exp.Stats.summarize ~label:(Printf.sprintf "DCT in/out %s" (human_size size)) ratios;
      if cdf then Exp.Stats.print_cdf ~label:(human_size size) ratios)
    sizes

(* ------------------------------------------------------------------ *)

let fig9 ~points ~sizes () =
  pf "Figure 9: multipath speedup over two symmetric paths\n";
  pf "(speedup = single-path DCT / multipath DCT; PQUIC plugin IW=16kB,\n";
  pf " mp-quic-like baseline IW=32kB as inherited from quic-go)\n\n";
  let design = Exp.Runner.default_points ~count:points () in
  let run ~iw ~multipath ~seed p size =
    let cfg = { Pquic.Connection.default_config with initial_window = iw } in
    let topo =
      if multipath then Topology.dual_path ~seed p p
      else Topology.single_path ~seed p
    in
    let plugins, to_inject =
      if multipath then
        ([ Plugins.Multipath.plugin ], [ Plugins.Multipath.name ])
      else ([], [])
    in
    match
      Exp.Runner.quic_transfer ~cfg ~plugins ~to_inject ~multipath ~topo ~size ()
    with
    | Some r -> Some r.Exp.Runner.dct
    | None -> None
  in
  List.iter
    (fun size ->
      let plugin_speedups = ref [] and mpquic_speedups = ref [] in
      List.iteri
        (fun i p ->
          let seed = seed_of_point i in
          (match (run ~iw:16384 ~multipath:false ~seed p size,
                  run ~iw:16384 ~multipath:true ~seed p size) with
          | Some s, Some m when m > 0. ->
            plugin_speedups := (s /. m) :: !plugin_speedups
          | _ -> ());
          match (run ~iw:32768 ~multipath:false ~seed p size,
                 run ~iw:32768 ~multipath:true ~seed p size) with
          | Some s, Some m when m > 0. ->
            mpquic_speedups := (s /. m) :: !mpquic_speedups
          | _ -> ())
        design;
      Exp.Stats.summarize
        ~label:(Printf.sprintf "plugin speedup %s" (human_size size))
        !plugin_speedups;
      Exp.Stats.summarize
        ~label:(Printf.sprintf "mp-quic speedup %s" (human_size size))
        !mpquic_speedups)
    sizes

(* ------------------------------------------------------------------ *)

let fig10 ~points ~cdf ~sizes () =
  pf "Figure 10: DCT ratio between PQUIC with and without the FEC plugin\n";
  pf "(in-flight ranges: d in [100,400]ms, bw in [0.3,10]Mbps, loss in [1,8]%%;\n";
  pf " RLC sliding-window code, 5 repair per 25 source symbols)\n\n";
  let design = Exp.Runner.inflight_points ~count:points () in
  let run ~plugin ~seed p size =
    let topo = Topology.single_path ~seed p in
    let plugins, to_inject =
      match plugin with
      | Some pl -> ([ pl ], [ (pl : Pquic.Plugin.t).Pquic.Plugin.name ])
      | None -> ([], [])
    in
    match Exp.Runner.quic_transfer ~plugins ~to_inject ~topo ~size () with
    | Some r -> Some r.Exp.Runner.dct
    | None -> None
  in
  List.iter
    (fun size ->
      let eos = ref [] and full = ref [] in
      List.iteri
        (fun i p ->
          let seed = seed_of_point i in
          match run ~plugin:None ~seed p size with
          | None -> ()
          | Some base when base > 0. ->
            (match run ~plugin:(Some Plugins.Fec.rlc_eos) ~seed p size with
            | Some t -> eos := (t /. base) :: !eos
            | None -> ());
            (match run ~plugin:(Some Plugins.Fec.rlc_full) ~seed p size with
            | Some t -> full := (t /. base) :: !full
            | None -> ())
          | Some _ -> ())
        design;
      Exp.Stats.summarize
        ~label:(Printf.sprintf "EOS-only %s" (human_size size))
        !eos;
      Exp.Stats.summarize
        ~label:(Printf.sprintf "whole-stream %s" (human_size size))
        !full;
      if cdf then begin
        Exp.Stats.print_cdf ~label:("eos-" ^ human_size size) !eos;
        Exp.Stats.print_cdf ~label:("full-" ^ human_size size) !full
      end)
    sizes

(* ------------------------------------------------------------------ *)

let fig11 ~points ~cdf ~sizes () =
  pf "Figure 11: DCT ratio of TCP inside/outside a multipath PQUIC tunnel\n";
  pf "(datagram + multipath plugins combined over two symmetric paths)\n\n";
  let design = Exp.Runner.default_points ~count:points () in
  List.iter
    (fun size ->
      let ratios =
        List.mapi
          (fun i p ->
            let seed = seed_of_point i in
            let t_out =
              Exp.Runner.tcp_direct ~topo:(Topology.single_path ~seed p) ~size ()
            in
            let t_in =
              Exp.Runner.tcp_vpn ~multipath:true
                ~topo:(Topology.dual_path ~seed p p) ~size ()
            in
            match (t_in, t_out) with
            | Some i, Some o when o > 0. -> Some (i /. o)
            | _ -> None)
          design
        |> List.filter_map Fun.id
      in
      Exp.Stats.summarize
        ~label:(Printf.sprintf "DCT in/out %s" (human_size size))
        ratios;
      if cdf then Exp.Stats.print_cdf ~label:(human_size size) ratios)
    sizes

(* ------------------------------------------------------------------ *)

let table3 ~runs ~size () =
  pf "Table 3: benchmarking plugins over a fast link (%d runs, %s transfer)\n"
    runs (human_size size);
  pf "(the paper's goodput is CPU-bound on 10Gbps NICs; here goodput is\n";
  pf " bytes moved per wall-clock second of single-threaded execution, so\n";
  pf " PRE interpretation costs show up exactly like the paper's overhead)\n\n";
  let configs =
    [
      ("PQUIC, no plugin", [], []);
      ("Monitoring (a)", [ Plugins.Monitoring.plugin ], [ Plugins.Monitoring.name ]);
      ("Multipath 1-path (b)", [ Plugins.Multipath.plugin ], [ Plugins.Multipath.name ]);
      ( "a and b",
        [ Plugins.Monitoring.plugin; Plugins.Multipath.plugin ],
        [ Plugins.Monitoring.name; Plugins.Multipath.name ] );
      ("FEC XOR EOS", [ Plugins.Fec.xor_eos ],
       [ (Plugins.Fec.xor_eos : Pquic.Plugin.t).Pquic.Plugin.name ]);
      ("FEC RLC EOS", [ Plugins.Fec.rlc_eos ],
       [ (Plugins.Fec.rlc_eos : Pquic.Plugin.t).Pquic.Plugin.name ]);
      ("FEC XOR", [ Plugins.Fec.xor_full ],
       [ (Plugins.Fec.xor_full : Pquic.Plugin.t).Pquic.Plugin.name ]);
      ("FEC RLC", [ Plugins.Fec.rlc_full ],
       [ (Plugins.Fec.rlc_full : Pquic.Plugin.t).Pquic.Plugin.name ]);
    ]
  in
  pf "%-22s %14s %8s %14s %14s\n" "Plugin" "x~ Goodput" "sigma/x~"
    "Load (fresh)" "Load (cached)";
  List.iter
    (fun (label, plugins, to_inject) ->
      (* identical (seeded) workload for every repetition: like the paper,
         runs differ only in measurement noise *)
      let one_run () =
        let topo = Topology.fast_link ~seed:1000L in
        let t0 = Unix.gettimeofday () in
        match Exp.Runner.quic_transfer ~plugins ~to_inject ~topo ~size () with
        | Some _ ->
          let wall = Unix.gettimeofday () -. t0 in
          Some (float_of_int size *. 8. /. wall /. 1e6)
        | None -> None
      in
      ignore (one_run ()) (* warmup *);
      let goodputs = List.init runs (fun _ -> one_run ()) |> List.filter_map Fun.id in
      (* plugin loading time: verified+compiled fresh instance vs the
         Section 2.5 cache reusing PREs as-is *)
      let fresh_us, cached_us =
        match plugins with
        | [] -> (0., 0.)
        | _ ->
          let topo = Topology.fast_link ~seed:77L in
          let sim = topo.Topology.sim and net = topo.Topology.net in
          let ep =
            Pquic.Endpoint.create ~sim ~net ~addr:topo.Topology.server_addr
              ~seed:3L ()
          in
          List.iter (Pquic.Endpoint.add_plugin ep) plugins;
          Pquic.Endpoint.listen ep;
          let conn ign =
            ignore ign;
            Pquic.Endpoint.connect ep ~remote_addr:topo.Topology.server_addr
          in
          let time f =
            let t0 = Unix.gettimeofday () in
            f ();
            (Unix.gettimeofday () -. t0) *. 1e6
          in
          let fresh_samples =
            List.init 7 (fun k ->
                let c = conn k in
                time (fun () ->
                    List.iter
                      (fun p ->
                        ignore
                          (Pquic.Connection.attach_instance c
                             (Pquic.Connection.build_instance p)))
                      plugins))
          in
          let cached_samples =
            List.init 7 (fun k ->
                let c = conn k in
                let insts =
                  List.map Pquic.Connection.build_instance plugins
                in
                (* simulate the cache hit: PREs exist, heap is wiped and the
                   helpers rebound on attach *)
                time (fun () ->
                    List.iter
                      (fun inst ->
                        ignore (Pquic.Connection.attach_instance c inst))
                      insts))
          in
          (Exp.Stats.median fresh_samples, Exp.Stats.median cached_samples)
      in
      let med = Exp.Stats.median goodputs in
      let rel = Exp.Stats.stddev goodputs /. med *. 100. in
      pf "%-22s %10.1f Mbps %7.1f%% %11.1f us %11.1f us\n" label med rel
        fresh_us cached_us)
    configs

(* ------------------------------------------------------------------ *)

let ablations () =
  pf "Ablations over the design choices DESIGN.md calls out\n\n";
  (* 1. frame-scheduler core guarantee (Section 2.3): how the guaranteed
     core share trades repair redundancy against stream throughput when a
     plugin floods frames *)
  pf "A1. scheduler core-fraction x%% (FEC RLC whole-stream, 4 Mbps, 100 ms, 5%% loss)\n";
  pf "%12s %10s %11s\n" "core share" "DCT" "recovered";
  List.iter
    (fun frac ->
      let cfg = { Pquic.Connection.default_config with core_fraction = frac } in
      let topo =
        Topology.single_path ~seed:77L
          { Topology.d_ms = 100.; bw_mbps = 4.; loss = 0.05 }
      in
      match
        Exp.Runner.quic_transfer ~cfg ~plugins:[ Plugins.Fec.rlc_full ]
          ~to_inject:[ (Plugins.Fec.rlc_full : Pquic.Plugin.t).Pquic.Plugin.name ]
          ~topo ~size:400_000 ()
      with
      | Some r ->
        pf "%11.0f%% %8.3f s %11d\n" (frac *. 100.) r.Exp.Runner.dct
          r.Exp.Runner.client_stats.Pquic.Connection.frames_recovered
      | None -> pf "%11.0f%% %10s\n" (frac *. 100.) "failed")
    [ 0.25; 0.5; 0.75; 0.9 ];
  (* 2. FEC code rate (Section 4.4): window size k and repair count r *)
  pf "\nA2. FEC code rate k/r (RLC whole-stream, same path)\n";
  pf "%8s %10s %11s %9s\n" "k/r" "DCT" "recovered" "rate";
  List.iter
    (fun (k, r) ->
      let plugin = Plugins.Fec.build ~k ~r ~code:Plugins.Fec.Rlc ~mode:Plugins.Fec.Full () in
      let topo =
        Topology.single_path ~seed:77L
          { Topology.d_ms = 100.; bw_mbps = 4.; loss = 0.05 }
      in
      match
        Exp.Runner.quic_transfer ~plugins:[ plugin ]
          ~to_inject:[ plugin.Pquic.Plugin.name ] ~topo ~size:400_000 ()
      with
      | Some res ->
        pf "%5d/%-2d %8.3f s %11d %8.2f\n" k r res.Exp.Runner.dct
          res.Exp.Runner.client_stats.Pquic.Connection.frames_recovered
          (float_of_int k /. float_of_int (k + r))
      | None -> pf "%5d/%-2d %10s\n" k r "failed")
    [ (10, 2); (25, 2); (25, 5); (50, 5) ];
  (* 3. initial congestion window (the Figure 9 quic-go/PQUIC discrepancy) *)
  pf "\nA3. initial window vs short-transfer DCT (20 Mbps, 10 ms)\n";
  pf "%8s %12s %12s\n" "IW" "50 kB" "1 MB";
  List.iter
    (fun iw ->
      let cfg = { Pquic.Connection.default_config with initial_window = iw } in
      let dct size =
        let topo =
          Topology.single_path ~seed:77L
            { Topology.d_ms = 10.; bw_mbps = 20.; loss = 0. }
        in
        match Exp.Runner.quic_transfer ~cfg ~topo ~size () with
        | Some r -> r.Exp.Runner.dct
        | None -> nan
      in
      pf "%6dk %10.3f s %10.3f s\n" (iw / 1024) (dct 50_000) (dct 1_000_000))
    [ 8192; 16384; 32768; 65536 ];
  (* 4. reordering tolerance of per-path loss detection: multipath over
     asymmetric paths with shared vs per-path packet thresholds is baked
     in; report the spurious-retransmission rate as evidence *)
  pf "\nA4. multipath loss detection: spurious retransmits on asymmetric paths\n";
  let p1 = { Topology.d_ms = 5.; bw_mbps = 20.; loss = 0. } in
  let p2 = { Topology.d_ms = 25.; bw_mbps = 20.; loss = 0. } in
  let topo = Topology.dual_path ~seed:88L p1 p2 in
  (match
     Exp.Runner.quic_transfer ~plugins:[ Plugins.Multipath.plugin ]
       ~to_inject:[ Plugins.Multipath.name ] ~multipath:true ~topo
       ~size:2_000_000 ()
   with
  | Some r -> (
    match r.Exp.Runner.server_stats with
    | Some st ->
      pf "  server retransmissions: %d of %d packets (%.2f%%)\n"
        st.Pquic.Connection.pkts_retransmitted st.Pquic.Connection.pkts_sent
        (100.
         *. float_of_int st.Pquic.Connection.pkts_retransmitted
         /. float_of_int (max 1 st.Pquic.Connection.pkts_sent))
    | None -> ())
  | None -> pf "  failed\n")

open Cmdliner

let points_t =
  Arg.(value & opt int 139 & info [ "points" ] ~doc:"WSP design points")

let cdf_t = Arg.(value & flag & info [ "cdf" ] ~doc:"print full CDF series")

let runs_t = Arg.(value & opt int 5 & info [ "runs" ] ~doc:"repetitions (table3)")

let size_cap_t =
  Arg.(value & opt int max_int & info [ "size-cap" ] ~doc:"largest file size")

let table3_size_t =
  Arg.(value & opt int 20_000_000 & info [ "transfer" ] ~doc:"table3 bytes")

let sizes ~cap = List.filter (fun s -> s <= cap) sizes_all

let cmd name doc f =
  Cmd.v (Cmd.info name ~doc) f

let table2_cmd = cmd "table2" "Plugin statistics (Table 2)" Term.(const table2 $ const ())

let fig8_cmd =
  cmd "fig8" "Single-path VPN DCT ratios (Figure 8)"
    Term.(
      const (fun points cdf cap -> fig8 ~points ~cdf ~sizes:(sizes ~cap) ())
      $ points_t $ cdf_t $ size_cap_t)

let fig9_cmd =
  cmd "fig9" "Multipath speedup (Figure 9)"
    Term.(
      const (fun points cap ->
          fig9 ~points
            ~sizes:(List.filter (fun s -> s >= 10_000 && s <= cap) sizes_all)
            ())
      $ points_t $ size_cap_t)

let fig10_cmd =
  cmd "fig10" "FEC DCT ratios (Figure 10)"
    Term.(
      const (fun points cdf cap ->
          fig10 ~points ~cdf
            ~sizes:(List.filter (fun s -> s <= min cap 1_000_000) sizes_all)
            ())
      $ points_t $ cdf_t $ size_cap_t)

let fig11_cmd =
  cmd "fig11" "Multipath VPN DCT ratios (Figure 11)"
    Term.(
      const (fun points cdf cap -> fig11 ~points ~cdf ~sizes:(sizes ~cap) ())
      $ points_t $ cdf_t $ size_cap_t)

let ablations_cmd =
  cmd "ablations" "Design-choice ablations (scheduler share, FEC rate, IW)"
    Term.(const ablations $ const ())

let table3_cmd =
  cmd "table3" "Plugin goodput benchmark (Table 3)"
    Term.(const (fun runs size -> table3 ~runs ~size ()) $ runs_t $ table3_size_t)

let all_cmd =
  cmd "all" "Run everything (use --points to shrink)"
    Term.(
      const (fun points runs cap tsize ->
          table2 ();
          pf "\n";
          fig8 ~points ~cdf:false ~sizes:(sizes ~cap) ();
          pf "\n";
          fig9 ~points ~sizes:(List.filter (fun s -> s >= 10_000 && s <= cap) sizes_all) ();
          pf "\n";
          fig10 ~points ~cdf:false
            ~sizes:(List.filter (fun s -> s <= min cap 1_000_000) sizes_all) ();
          pf "\n";
          fig11 ~points ~cdf:false ~sizes:(sizes ~cap) ();
          pf "\n";
          table3 ~runs ~size:tsize ())
      $ points_t $ runs_t $ size_cap_t $ table3_size_t)

let () =
  let info = Cmd.info "experiments" ~doc:"PQUIC paper experiment harness" in
  exit
    (Cmd.eval
       (Cmd.group info
          [ table2_cmd; fig8_cmd; fig9_cmd; fig10_cmd; fig11_cmd; table3_cmd;
            ablations_cmd; all_cmd ]))
