(* Deterministic chaos harness: sweeps seeds across adversarial fault
   profiles (bursty loss, reordering, duplication, corruption, blackouts —
   also with the multipath + FEC plugins active) and asserts invariants on
   every run:

     I1 termination  — the transfer resolves: either the payload arrives
                       or the connection leaves the open states before the
                       simulated-time cap (no livelock);
     I2 integrity    — delivered bytes are exactly the requested payload,
                       or the connection closed with a stated reason;
     I3 ack ranges   — both endpoints' ACK ranges stay structurally
                       coherent (disjoint, descending, merged);
     I4 sanctions    — plugin sanction accounting balances: no pluglet is
                       sanctioned (and no builtin fallback fires) just
                       because the network misbehaved;
     I5 replay       — the whole run is bit-identical when replayed from
                       its seed (state, stats, link counters, end time).

   Any violation prints the single seed + profile that reproduces it:

     dune exec bin/chaos.exe -- repro --profile <name> --seed <n>

   `sweep --seeds N` scales the sweep; the Makefile smoke target keeps N
   small, CHAOS_SEEDS=n drives the full sweep. *)

module Sim = Netsim.Sim
module Fault = Netsim.Fault
module Link = Netsim.Link
module Net = Netsim.Net
module Mbox = Netsim.Middlebox
module Topology = Netsim.Topology
module TP = Quic.Transport_params

let pf = Printf.printf
let spf = Printf.sprintf

(* ------------------------------------------------------------------ *)
(* Fault profiles                                                      *)
(* ------------------------------------------------------------------ *)

type scenario = Plain | Mp_fec (* multipath + FEC plugins active *)

type profile = {
  pname : string;
  scenario : scenario;
  faults : Fault.profile;
  idle_ms : int; (* idle_timeout transport parameter for both endpoints *)
}

let mild_ge = Fault.gilbert_elliott ~p_gb:0.01 ~p_bg:0.4 ~loss_bad:0.3 ()

let profiles =
  let n = Fault.none in
  [
    { pname = "bursty"; scenario = Plain; idle_ms = 3_000;
      faults = { n with ge = Some (Fault.gilbert_elliott ()) } };
    { pname = "reorder"; scenario = Plain; idle_ms = 3_000;
      faults =
        { n with reorder = Some { prob = 0.15; max_extra = Sim.of_ms 30. } } };
    { pname = "duplicate"; scenario = Plain; idle_ms = 3_000;
      faults = { n with duplicate = 0.08 } };
    { pname = "corrupt"; scenario = Plain; idle_ms = 3_000;
      faults = { n with corrupt = 0.05 } };
    { pname = "blackout"; scenario = Plain; idle_ms = 3_000;
      faults = { n with blackouts = [ (Sim.of_ms 100., Sim.of_ms 4_100.) ] } };
    { pname = "mayhem"; scenario = Plain; idle_ms = 3_000;
      faults =
        {
          ge = Some mild_ge;
          reorder = Some { prob = 0.05; max_extra = Sim.of_ms 20. };
          duplicate = 0.02;
          corrupt = 0.01;
          (* a short mid-transfer flap, below the idle timeout: the
             connection typically rides it out and finishes; when the
             other faults also eat the recovery probes it must still end
             in a clean stated close, never a livelock *)
          blackouts = [ (Sim.of_sec 0.2, Sim.of_sec 0.7) ];
        } };
    { pname = "mp-fec"; scenario = Mp_fec; idle_ms = 3_000;
      faults =
        { n with
          ge = Some (Fault.gilbert_elliott ());
          reorder = Some { prob = 0.05; max_extra = Sim.of_ms 20. } } };
  ]

let profile_named name = List.find_opt (fun p -> p.pname = name) profiles

(* A fault-free profile for the pool-0 control cells: the tracker
   failure mode must show without noise from link faults. Not part of
   the legacy sweep. *)
let clean_profile =
  { pname = "clean"; scenario = Plain; idle_ms = 3_000; faults = Fault.none }

(* ------------------------------------------------------------------ *)
(* Middleboxes (the PANTHER-style environment axis of the matrix)      *)
(* ------------------------------------------------------------------ *)

type mbox = No_mbox | Nat | Tracker | Policer | Nat_tracker

let mbox_name = function
  | No_mbox -> "none"
  | Nat -> "nat"
  | Tracker -> "tracker"
  | Policer -> "policer"
  | Nat_tracker -> "nat+tracker"

let mboxes = [ No_mbox; Nat; Tracker; Policer; Nat_tracker ]

(* Resolved middlebox parameters, fixed across the matrix. The NAT's
   max_lifetime is deliberately shorter than any transfer so every NAT
   cell forces genuine mid-transfer rebinding. *)
let nat_public_base = 500
let nat_idle = Sim.of_sec 2.
let nat_lifetime = Sim.of_ms 100.
(* under the ~220ms a clean 100KB transfer takes, so the binding always
   dies mid-transfer *)
let policer_rate_mbps = 2.5
let policer_burst = 18_750

(* ------------------------------------------------------------------ *)
(* One run                                                             *)
(* ------------------------------------------------------------------ *)

let transfer_size = 100_000
let sim_cap = 120. (* seconds of simulated time before declaring livelock *)

type run = {
  completed : bool;           (* payload fully delivered (fin seen) *)
  intact : bool;              (* delivered bytes match the request *)
  received : int;
  client_state : string;
  client_reason : string;
  server_state : string;
  server_reason : string;
  client : Pquic.Connection.stats option;
  server : Pquic.Connection.stats option;
  acks_client : (unit, string) result;
  acks_server : (unit, string) result;
  end_time : Sim.time;
  still_open : bool;
  pending_left : int;
  link_fingerprint : string;
  fault_counts : int * int * int * int * int; (* ge, blackout, dup, reord, corrupt *)
  ext : string;
      (* fingerprint extension — middlebox drop accounting + migration
         stats; "" for legacy runs so their digests stay untouched *)
  drop_sum : string;   (* Net.drop_summary at end of run *)
  nat_rebinds : int;   (* -1 when the cell has no NAT *)
}

let state_string (c : Pquic.Connection.t) =
  match c.Pquic.Connection.state with
  | Pquic.Connection.Handshaking -> "handshaking"
  | Pquic.Connection.Established -> "established"
  | Pquic.Connection.Closing -> "closing"
  | Pquic.Connection.Closed -> "closed"
  | Pquic.Connection.Failed r -> spf "failed(%s)" r

let run_case ~seed ?(mbox = No_mbox) ?scenario ?(cid_pool = 0) (p : profile) =
  let scen = match scenario with Some s -> s | None -> p.scenario in
  let path = { Topology.d_ms = 10.; bw_mbps = 5.; loss = 0. } in
  let topo =
    match scen with
    | Plain -> Topology.single_path ~faults:p.faults ~seed path
    | Mp_fec ->
      Topology.dual_path ~faults:p.faults ~seed path
        { path with Topology.d_ms = 25. }
  in
  let sim = topo.Topology.sim and net = topo.Topology.net in
  (* Interpose the cell's middleboxes on the primary path (the client's
     first address); in mp runs the second path stays clean. Chains see
     post-NAT addresses: upstream NAT runs first, downstream NAT last. *)
  let addr1 = List.hd topo.Topology.client_addrs in
  let srv = topo.Topology.server_addr in
  let nat_box =
    match mbox with
    | Nat | Nat_tracker ->
      Some
        (Mbox.nat ~inside:addr1 ~public_base:nat_public_base
           ~idle_timeout:nat_idle ~max_lifetime:nat_lifetime ())
    | _ -> None
  in
  let tracker_box =
    match mbox with
    | Tracker | Nat_tracker ->
      Some
        (Mbox.flow_tracker
           ~wire_of:(function
             | Pquic.Connection.Quic_packet w -> Some w
             | _ -> None)
           ())
    | _ -> None
  in
  let policer_boxes =
    match mbox with
    | Policer ->
      Some
        ( Mbox.policer ~rate_mbps:policer_rate_mbps ~burst:policer_burst (),
          Mbox.policer ~rate_mbps:policer_rate_mbps ~burst:policer_burst () )
    | _ -> None
  in
  let opt f = function Some x -> [ f x ] | None -> [] in
  let up_nodes =
    opt Mbox.nat_up nat_box
    @ opt Mbox.tracker_up tracker_box
    @ opt (fun (u, _) -> Mbox.policer_node u) policer_boxes
  in
  let down_nodes =
    opt Mbox.tracker_down tracker_box
    @ opt (fun (_, d) -> Mbox.policer_node d) policer_boxes
    @ opt Mbox.nat_down nat_box
  in
  if up_nodes <> [] then Net.interpose net ~src:addr1 ~dst:srv up_nodes;
  if down_nodes <> [] then begin
    match nat_box with
    | Some _ ->
      (* the server replies to whatever public address the NAT currently
         allocates; route those over the physical path back to the client *)
      (match Net.route net ~src:srv ~dst:addr1 with
      | Some links -> Net.add_fallback_route net ~src:srv links
      | None -> ());
      Net.interpose_fallback net ~src:srv down_nodes
    | None -> Net.interpose net ~src:srv ~dst:addr1 down_nodes
  end;
  let cfg = { Pquic.Connection.default_config with Pquic.Connection.cid_pool } in
  let tweak tp = { tp with TP.idle_timeout_ms = p.idle_ms } in
  let server_ep =
    Pquic.Endpoint.create ~cfg ~tweak_params:tweak ~sim ~net
      ~addr:topo.Topology.server_addr ~seed:0x5EedL ()
  in
  let extra_addrs =
    match scen with
    | Mp_fec -> (
      match topo.Topology.client_addrs with _ :: rest -> rest | [] -> [])
    | Plain -> []
  in
  let client_ep =
    Pquic.Endpoint.create ~cfg ~tweak_params:tweak ~sim ~net
      ~addr:(List.hd topo.Topology.client_addrs)
      ~extra_addrs ~seed:0xC11e47L ()
  in
  let plugins, to_inject =
    match scen with
    | Plain -> ([], [])
    | Mp_fec ->
      let fec = Plugins.Fec.xor_eos in
      ( [ Plugins.Multipath.plugin; fec ],
        [ Plugins.Multipath.name; (fec : Pquic.Plugin.t).Pquic.Plugin.name ] )
  in
  List.iter
    (fun pl ->
      Pquic.Endpoint.add_plugin server_ep pl;
      Pquic.Endpoint.add_plugin client_ep pl)
    plugins;
  Pquic.Endpoint.listen server_ep;
  Pquic.Endpoint.listen client_ep;
  let server_conn = ref None in
  server_ep.Pquic.Endpoint.on_connection <-
    (fun c ->
      (* the transfer rides the first accepted connection; never let a
         stray later accept displace its stats *)
      if !server_conn = None then server_conn := Some c;
      c.Pquic.Connection.on_stream_data <-
        (fun id _ ~fin ->
          if fin then
            Pquic.Connection.write_stream c ~id ~fin:true
              (String.make transfer_size 'x')));
  let conn =
    Pquic.Endpoint.connect client_ep ~remote_addr:topo.Topology.server_addr
      ~plugins_to_inject:to_inject
  in
  let buf = Buffer.create transfer_size in
  let fin_seen = ref false in
  conn.Pquic.Connection.on_established <-
    (fun () -> Pquic.Connection.write_stream conn ~id:0 ~fin:true "GET /file");
  conn.Pquic.Connection.on_stream_data <-
    (fun _ data ~fin ->
      Buffer.add_string buf data;
      if fin then fin_seen := true);
  let resolved () =
    !fin_seen || not (Pquic.Connection.is_open conn)
  in
  let rec drive () =
    if resolved () then ()
    else if Sim.to_sec (Sim.now sim) > sim_cap then ()
    else if Sim.pending sim = 0 then ()
    else begin
      ignore
        (Sim.run ~until:(Int64.add (Sim.now sim) (Sim.of_sec 1.))
           ~max_events:5_000_000 sim);
      drive ()
    end
  in
  drive ();
  let data = Buffer.contents buf in
  let intact =
    !fin_seen
    && String.length data = transfer_size
    && String.for_all (fun ch -> ch = 'x') data
  in
  let link_fingerprint =
    String.concat ";"
      (List.concat_map
         (fun (up, down) ->
           List.map
             (fun l ->
               let s = Link.stats l in
               spf "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d" s.Link.sent s.Link.delivered
                 s.Link.random_losses s.Link.queue_drops s.Link.ge_losses
                 s.Link.blackout_drops s.Link.duplicated s.Link.reordered
                 s.Link.corrupted s.Link.queue_hwm)
             [ up; down ])
         topo.Topology.mid_links)
  in
  let fault_counts =
    List.fold_left
      (fun (g, b, d, r, co) (up, down) ->
        let add acc l =
          let g, b, d, r, co = acc in
          let s = Link.stats l in
          ( g + s.Link.ge_losses, b + s.Link.blackout_drops,
            d + s.Link.duplicated, r + s.Link.reordered, co + s.Link.corrupted )
        in
        add (add (g, b, d, r, co) up) down)
      (0, 0, 0, 0, 0) topo.Topology.mid_links
  in
  let cstats = Pquic.Connection.stats conn in
  let sstats = Option.map Pquic.Connection.stats !server_conn in
  let drop_sum = Net.drop_summary net in
  let nat_rebinds =
    match nat_box with Some n -> Mbox.nat_rebindings n | None -> -1
  in
  (* Fold middlebox and migration state into the replay fingerprint (I5),
     but only for runs that enable any of it: legacy digests must not
     move. *)
  let ext =
    if mbox = No_mbox && cid_pool = 0 then ""
    else
      let mig = function
        | None -> "-"
        | Some (s : Pquic.Connection.stats) ->
          spf "%d,%d,%d,%d,%d,%d" s.Pquic.Connection.cids_issued
            s.Pquic.Connection.cids_retired s.Pquic.Connection.cids_rotated
            s.Pquic.Connection.paths_validated s.Pquic.Connection.path_probes
            s.Pquic.Connection.unvalidated_tx
      in
      let flows =
        match tracker_box with Some t -> Mbox.tracker_flows t | None -> 0
      in
      let policed =
        match policer_boxes with
        | Some (u, d) -> Mbox.policer_dropped u + Mbox.policer_dropped d
        | None -> 0
      in
      spf "%s|nat_rebinds=%d|flows=%d|policed=%d|mig_c=%s|mig_s=%s" drop_sum
        nat_rebinds flows policed
        (mig (Some cstats))
        (mig sstats)
  in
  {
    completed = !fin_seen;
    intact;
    received = String.length data;
    client_state = state_string conn;
    client_reason = conn.Pquic.Connection.close_reason;
    server_state =
      (match !server_conn with Some c -> state_string c | None -> "absent");
    server_reason =
      (match !server_conn with
      | Some c -> c.Pquic.Connection.close_reason
      | None -> "");
    client = Some cstats;
    server = sstats;
    acks_client = Quic.Ackranges.check_coherent conn.Pquic.Connection.acks;
    acks_server =
      (match !server_conn with
      | Some c -> Quic.Ackranges.check_coherent c.Pquic.Connection.acks
      | None -> Ok ());
    end_time = Sim.now sim;
    still_open = Pquic.Connection.is_open conn;
    pending_left = Sim.pending sim;
    link_fingerprint;
    fault_counts;
    ext;
    drop_sum;
    nat_rebinds;
  }

(* Everything observable about a run, digestible: replaying the seed must
   reproduce this string bit-for-bit. *)
let fingerprint r =
  let stats_str = function
    | None -> "-"
    | Some (s : Pquic.Connection.stats) ->
      spf "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d" s.Pquic.Connection.bytes_sent
        s.Pquic.Connection.bytes_received s.Pquic.Connection.pkts_sent
        s.Pquic.Connection.pkts_received s.Pquic.Connection.pkts_lost
        s.Pquic.Connection.pkts_retransmitted s.Pquic.Connection.pkts_out_of_order
        s.Pquic.Connection.frames_recovered s.Pquic.Connection.pkts_dup_rejected
        s.Pquic.Connection.pkts_corrupt_discarded
        s.Pquic.Connection.persistent_congestion_events
        s.Pquic.Connection.plugin_sanctions s.Pquic.Connection.plugin_fallbacks
  in
  Digest.to_hex
    (Digest.string
       (String.concat "|"
          ([
             string_of_bool r.completed;
             string_of_bool r.intact;
             string_of_int r.received;
             r.client_state;
             r.client_reason;
             r.server_state;
             r.server_reason;
             stats_str r.client;
             stats_str r.server;
             Int64.to_string r.end_time;
             r.link_fingerprint;
           ]
          (* appended only when non-empty: legacy digests stay stable *)
          @ (if r.ext = "" then [] else [ r.ext ]))))

(* ------------------------------------------------------------------ *)
(* Invariants                                                          *)
(* ------------------------------------------------------------------ *)

let check_invariants (p : profile) r =
  let v = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> v := s :: !v) fmt in
  (* I1: the run resolved — no livelock at the sim cap, no quiescence with
     the connection still open (an open connection always has its idle
     alarm pending) *)
  if r.still_open && not r.completed then
    bad "livelock: connection still open at t=%.1fs (%d events pending)"
      (Sim.to_sec r.end_time) r.pending_left;
  (* I2: bytes intact, or a stated close reason *)
  if r.completed && not r.intact then
    bad "payload damaged: got %d bytes (want %d intact)" r.received
      transfer_size;
  if (not r.completed) && not r.still_open then begin
    if r.client_reason = "" then
      bad "client closed without a stated reason (state %s)" r.client_state
  end;
  (* I3: ACK ranges stay coherent on both sides *)
  (match r.acks_client with
  | Ok () -> ()
  | Error e -> bad "client ack ranges incoherent: %s" e);
  (match r.acks_server with
  | Ok () -> ()
  | Error e -> bad "server ack ranges incoherent: %s" e);
  (* I4: sanction accounting balances — network faults never look like
     plugin misbehaviour *)
  let sanctions = function
    | None -> (0, 0)
    | Some (s : Pquic.Connection.stats) ->
      (s.Pquic.Connection.plugin_sanctions, s.Pquic.Connection.plugin_fallbacks)
  in
  let cs, cf = sanctions r.client and ss, sf = sanctions r.server in
  if cs + cf + ss + sf > 0 then
    bad
      "plugin sanction accounting: client %d sanctions/%d fallbacks, server \
       %d/%d under pure network faults (profile %s)"
      cs cf ss sf p.pname;
  List.rev !v

(* ------------------------------------------------------------------ *)
(* Scenario matrix: profiles × middleboxes × scenarios                 *)
(* ------------------------------------------------------------------ *)

type expect = Normal | Must_complete | Must_fail

type cell = {
  cname : string;
  cprofile : profile;
  cmbox : mbox;
  cscen : scenario;
  cpool : int;
  expect : expect;
}

let scen_name = function Plain -> "plain" | Mp_fec -> "mpfec"

(* Profiles whose faults alone never prevent completion (100% completed
   in the legacy sweep): in these, a middlebox cell that fails to finish
   the transfer is a migration bug, not bad luck. *)
let strict_completion p =
  not (List.mem p.pname [ "blackout"; "mayhem" ])

let matrix_cells =
  List.concat_map
    (fun p ->
      List.concat_map
        (fun mb ->
          List.map
            (fun scen ->
              {
                cname = spf "%s/%s/%s" p.pname (mbox_name mb) (scen_name scen);
                cprofile = p;
                cmbox = mb;
                cscen = scen;
                cpool = (if mb = No_mbox then 0 else 3);
                expect = Normal;
              })
            [ Plain; Mp_fec ])
        mboxes)
    profiles
  @ [
      (* pool-0 controls: without spare CIDs (RFC 9000 §9.5) the legacy
         follow-the-source heuristic still survives a plain NAT... *)
      { cname = "control/nat/pool0"; cprofile = clean_profile; cmbox = Nat;
        cscen = Plain; cpool = 0; expect = Must_complete };
      (* ...but a stateful flow tracker must kill the connection — the
         cell demonstrably fails when CID rotation is disabled *)
      { cname = "control/nat+tracker/pool0"; cprofile = clean_profile;
        cmbox = Nat_tracker; cscen = Plain; cpool = 0; expect = Must_fail };
    ]

let cell_named name = List.find_opt (fun c -> c.cname = name) matrix_cells

let run_cell ~seed (c : cell) =
  run_case ~seed ~mbox:c.cmbox ~scenario:c.cscen ~cid_pool:c.cpool c.cprofile

(* Per-run matrix invariants: the legacy I1–I4 plus I6 (migration
   correctness). *)
let check_cell (cell : cell) r =
  let v = ref (check_invariants cell.cprofile r) in
  let bad fmt = Printf.ksprintf (fun s -> v := !v @ [ s ]) fmt in
  (* I6: an unvalidated candidate address never carries non-probe data *)
  let unval = function
    | None -> 0
    | Some (s : Pquic.Connection.stats) -> s.Pquic.Connection.unvalidated_tx
  in
  let u = unval r.client + unval r.server in
  if u > 0 then
    bad "I6: %d non-probe packets sent to unvalidated addresses" u;
  (match cell.expect with
  | Must_complete ->
    if not (r.completed && r.intact) then
      bad "control cell must complete (client %s, %d/%d bytes)" r.client_state
        r.received transfer_size
  | Must_fail ->
    if r.completed then
      bad
        "negative control completed: the flow tracker should blackhole a \
         rebinding connection when CID rotation is off"
  | Normal ->
    (* I6: the transfer survives the middlebox (for profiles whose faults
       alone never prevent completion) *)
    if cell.cmbox <> No_mbox && strict_completion cell.cprofile
       && not (r.completed && r.intact)
    then
      bad "I6: transfer did not survive %s (client %s, %d/%d bytes)"
        (mbox_name cell.cmbox) r.client_state r.received transfer_size);
  (* I6: a completed single-path run that genuinely rebound must have
     revalidated — with a second clean path (mpfec) the transfer may
     legitimately finish there while the NAT'd path sits dead *)
  let validated =
    match r.server with
    | None -> 0
    | Some s -> s.Pquic.Connection.paths_validated
  in
  if
    cell.cpool > 0 && cell.cscen = Plain && r.completed && r.nat_rebinds > 0
    && validated = 0
  then
    bad "I6: NAT rebound %d times yet the server validated no path"
      r.nat_rebinds;
  !v

(* ------------------------------------------------------------------ *)
(* Sweep                                                               *)
(* ------------------------------------------------------------------ *)

let seed_of_index i = Int64.of_int ((i * 9973) + 7)

let repro_hint p seed =
  spf "dune exec bin/chaos.exe -- repro --profile %s --seed %Ld" p.pname seed

let sweep ~seeds () =
  let t0 = Unix.gettimeofday () in
  let violations = ref [] in
  let total = ref 0 in
  List.iter
    (fun p ->
      let completed = ref 0 and closed = ref 0 in
      let g, b, d, ro, co = (ref 0, ref 0, ref 0, ref 0, ref 0) in
      for i = 0 to seeds - 1 do
        let seed = seed_of_index i in
        incr total;
        let r = run_case ~seed p in
        (* I5: bit-identical replay from the same seed *)
        let r2 = run_case ~seed p in
        let f1 = fingerprint r and f2 = fingerprint r2 in
        let errs = check_invariants p r in
        let errs =
          if f1 <> f2 then
            spf "replay diverged: %s vs %s" f1 f2 :: errs
          else errs
        in
        if r.completed then incr completed else incr closed;
        let cg, cb, cd, cro, cco = r.fault_counts in
        g := !g + cg; b := !b + cb; d := !d + cd; ro := !ro + cro;
        co := !co + cco;
        List.iter
          (fun e ->
            violations :=
              spf "[%s seed=%Ld] %s\n    %s" p.pname seed e (repro_hint p seed)
              :: !violations)
          errs
      done;
      pf "%-10s %4d runs: %4d completed, %4d closed-with-reason   (ge %d, blackout %d, dup %d, reorder %d, corrupt %d)\n"
        p.pname seeds !completed !closed !g !b !d !ro !co)
    profiles;
  let violations = List.rev !violations in
  pf "\n%d runs (each replayed once), %d invariant violations, %.1fs wall\n"
    !total (List.length violations)
    (Unix.gettimeofday () -. t0);
  if violations <> [] then begin
    pf "\nViolations:\n";
    List.iter (fun vtext -> pf "  %s\n" vtext) violations;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Matrix sweep                                                        *)
(* ------------------------------------------------------------------ *)

let cell_repro_hint (c : cell) seed =
  spf "dune exec bin/chaos.exe -- repro --cell %s --seed %Ld" c.cname seed

(* The fully resolved scenario: everything needed to rebuild the run by
   hand, printed on violations so a repro is self-describing. *)
let print_scenario (c : cell) =
  let p = c.cprofile in
  let f = p.faults in
  let fault_bits =
    List.concat
      [
        (match f.Fault.ge with
        | None -> []
        | Some g ->
          [ spf "ge(p_gb=%.3f p_bg=%.2f loss_good=%.2f loss_bad=%.2f)"
              g.Fault.p_gb g.Fault.p_bg g.Fault.loss_good g.Fault.loss_bad ]);
        (match f.Fault.reorder with
        | None -> []
        | Some ro ->
          [ spf "reorder(prob=%.2f max_extra=%.0fms)" ro.Fault.prob
              (Sim.to_sec ro.Fault.max_extra *. 1e3) ]);
        (if f.Fault.duplicate > 0. then
           [ spf "duplicate(%.2f)" f.Fault.duplicate ]
         else []);
        (if f.Fault.corrupt > 0. then [ spf "corrupt(%.2f)" f.Fault.corrupt ]
         else []);
        List.map
          (fun (a, b) ->
            spf "blackout(%.1fs..%.1fs)" (Sim.to_sec a) (Sim.to_sec b))
          f.Fault.blackouts;
      ]
  in
  pf "cell %s\n" c.cname;
  pf "  profile %s: idle_timeout %dms, faults %s\n" p.pname p.idle_ms
    (match fault_bits with [] -> "none" | l -> String.concat " " l);
  pf "  scenario %s: %s, transfer %d bytes, path 10ms/5Mbps, sim cap %.0fs\n"
    (scen_name c.cscen)
    (match c.cscen with
    | Plain -> "single path"
    | Mp_fec -> "dual path + multipath/FEC plugins")
    transfer_size sim_cap;
  pf "  middlebox %s:%s\n" (mbox_name c.cmbox)
    (match c.cmbox with
    | No_mbox -> " none"
    | Nat ->
      spf " nat(public_base=%d idle=%.1fs max_lifetime=%.2fs)" nat_public_base
        (Sim.to_sec nat_idle) (Sim.to_sec nat_lifetime)
    | Tracker -> " flow-tracker(drop shorts with unlearned DCID)"
    | Policer ->
      spf " policer(%.1fMbps burst=%dB, both directions)" policer_rate_mbps
        policer_burst
    | Nat_tracker ->
      spf
        " nat(public_base=%d idle=%.1fs max_lifetime=%.2fs) + \
         flow-tracker"
        nat_public_base (Sim.to_sec nat_idle) (Sim.to_sec nat_lifetime));
  pf "  cid_pool %d%s\n" c.cpool
    (match c.expect with
    | Normal -> ""
    | Must_complete -> "  (control: must complete)"
    | Must_fail -> "  (control: must NOT complete)")

let list_cells () =
  pf "%-28s %-10s %-12s %-6s pool\n" "cell" "profile" "middlebox" "scen";
  List.iter
    (fun c ->
      pf "%-28s %-10s %-12s %-6s %d%s\n" c.cname c.cprofile.pname
        (mbox_name c.cmbox) (scen_name c.cscen) c.cpool
        (match c.expect with
        | Normal -> ""
        | Must_complete -> "  [must complete]"
        | Must_fail -> "  [must fail]"))
    matrix_cells;
  pf "\n%d cells; run one: dune exec bin/chaos.exe -- matrix --seeds N \
      --cells <name>[,<name>...]\n"
    (List.length matrix_cells)

let matrix ~seeds ~cells () =
  let selected =
    match cells with
    | [] -> matrix_cells
    | names ->
      List.map
        (fun n ->
          match cell_named n with
          | Some c -> c
          | None ->
            pf "unknown cell %s (enumerate with: chaos list)\n" n;
            exit 2)
        names
  in
  let t0 = Unix.gettimeofday () in
  let violations = ref [] in
  let total = ref 0 in
  let violate c seed e =
    violations :=
      spf "[%s seed=%Ld] %s\n    %s" c.cname seed e (cell_repro_hint c seed)
      :: !violations
  in
  List.iter
    (fun c ->
      let completed = ref 0 and closed = ref 0 in
      let rebinds = ref 0 and validated = ref 0 and rotated = ref 0 in
      let mbox_drops = ref 0 in
      for i = 0 to seeds - 1 do
        let seed = seed_of_index i in
        incr total;
        let r = run_cell ~seed c in
        (* I5: bit-identical replay, now covering middlebox state *)
        let r2 = run_cell ~seed c in
        let errs = check_cell c r in
        let errs =
          if fingerprint r <> fingerprint r2 then
            spf "replay diverged: %s vs %s" (fingerprint r) (fingerprint r2)
            :: errs
          else errs
        in
        if r.completed then incr completed else incr closed;
        if r.nat_rebinds > 0 then rebinds := !rebinds + r.nat_rebinds;
        (match r.server with
        | Some s -> validated := !validated + s.Pquic.Connection.paths_validated
        | None -> ());
        (match r.client with
        | Some s -> rotated := !rotated + s.Pquic.Connection.cids_rotated
        | None -> ());
        if r.ext <> "" && r.drop_sum <> "" then
          (* count of datagrams the middleboxes refused, from the drop
             summary's mbox:* causes — cheap cross-check that cells with
             middleboxes actually exercised them *)
          String.split_on_char ' ' r.drop_sum
          |> List.iter (fun tok ->
                 match String.index_opt tok '=' with
                 | Some eq when String.length tok > 5
                                && String.sub tok 0 5 = "mbox:" ->
                   mbox_drops :=
                     !mbox_drops
                     + int_of_string
                         (String.sub tok (eq + 1) (String.length tok - eq - 1))
                 | _ -> ());
        List.iter (violate c seed) errs
      done;
      (* aggregate I6: a NAT cell where no run ever rebound exercised
         nothing — the lifetime is tuned so this must not happen *)
      if
        c.expect = Normal
        && (c.cmbox = Nat || c.cmbox = Nat_tracker)
        && !rebinds = 0
      then
        violations :=
          spf "[%s] NAT never rebound across %d seeds: cell exercised nothing"
            c.cname seeds
          :: !violations;
      pf
        "%-28s %3d runs: %3d completed, %3d closed | rebinds %d, validated \
         %d, rotations %d, mbox drops %d\n%!"
        c.cname seeds !completed !closed !rebinds !validated !rotated
        !mbox_drops)
    selected;
  let violations = List.rev !violations in
  pf "\n%d matrix runs (each replayed once) over %d cells, %d violations, \
      %.1fs wall\n"
    !total (List.length selected) (List.length violations)
    (Unix.gettimeofday () -. t0);
  if violations <> [] then begin
    pf "\nViolations:\n";
    List.iter (fun vtext -> pf "  %s\n" vtext) violations;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Repro: one seed, verbosely                                          *)
(* ------------------------------------------------------------------ *)

let repro ~pname ~seed () =
  match profile_named pname with
  | None ->
    pf "unknown profile %s (have: %s)\n" pname
      (String.concat ", " (List.map (fun p -> p.pname) profiles));
    exit 2
  | Some p ->
    let r = run_case ~seed p in
    let r2 = run_case ~seed p in
    let stats_line tag = function
      | None -> pf "  %s: absent\n" tag
      | Some (s : Pquic.Connection.stats) ->
        pf
          "  %s: sent %d recv %d lost %d retx %d ooo %d fec %d dup-rej %d \
           corrupt-drop %d pc %d sanctions %d fallbacks %d\n"
          tag s.Pquic.Connection.pkts_sent s.Pquic.Connection.pkts_received
          s.Pquic.Connection.pkts_lost s.Pquic.Connection.pkts_retransmitted
          s.Pquic.Connection.pkts_out_of_order
          s.Pquic.Connection.frames_recovered
          s.Pquic.Connection.pkts_dup_rejected
          s.Pquic.Connection.pkts_corrupt_discarded
          s.Pquic.Connection.persistent_congestion_events
          s.Pquic.Connection.plugin_sanctions
          s.Pquic.Connection.plugin_fallbacks
    in
    pf "profile %s, seed %Ld\n" p.pname seed;
    pf "  completed %b, intact %b, received %d bytes\n" r.completed r.intact
      r.received;
    pf "  client %s (reason %S), server %s (reason %S)\n" r.client_state
      r.client_reason r.server_state r.server_reason;
    stats_line "client" r.client;
    stats_line "server" r.server;
    let g, b, d, ro, co = r.fault_counts in
    pf "  faults injected: ge %d, blackout %d, dup %d, reorder %d, corrupt %d\n"
      g b d ro co;
    pf "  end t=%.3fs, fingerprint %s (replay %s)\n" (Sim.to_sec r.end_time)
      (fingerprint r)
      (if fingerprint r = fingerprint r2 then "identical" else "DIVERGED");
    let errs = check_invariants p r in
    let errs =
      if fingerprint r <> fingerprint r2 then "replay diverged" :: errs
      else errs
    in
    if errs = [] then pf "  invariants: all hold\n"
    else begin
      List.iter (fun e -> pf "  VIOLATION: %s\n" e) errs;
      exit 1
    end

(* Replay one matrix cell, printing the fully resolved scenario so the
   output alone suffices to reconstruct the run. *)
let repro_cell ~cname ~seed () =
  match cell_named cname with
  | None ->
    pf "unknown cell %s (enumerate with: chaos list)\n" cname;
    exit 2
  | Some c ->
    print_scenario c;
    let r = run_cell ~seed c in
    let r2 = run_cell ~seed c in
    pf "seed %Ld\n" seed;
    pf "  completed %b, intact %b, received %d bytes\n" r.completed r.intact
      r.received;
    pf "  client %s (reason %S), server %s (reason %S)\n" r.client_state
      r.client_reason r.server_state r.server_reason;
    let mig tag = function
      | None -> pf "  %s: absent\n" tag
      | Some (s : Pquic.Connection.stats) ->
        pf
          "  %s: sent %d recv %d lost %d retx %d | cids issued %d retired %d \
           rotated %d | paths validated %d probes %d unvalidated-tx %d | \
           sanctions %d fallbacks %d\n"
          tag s.Pquic.Connection.pkts_sent s.Pquic.Connection.pkts_received
          s.Pquic.Connection.pkts_lost s.Pquic.Connection.pkts_retransmitted
          s.Pquic.Connection.cids_issued s.Pquic.Connection.cids_retired
          s.Pquic.Connection.cids_rotated s.Pquic.Connection.paths_validated
          s.Pquic.Connection.path_probes s.Pquic.Connection.unvalidated_tx
          s.Pquic.Connection.plugin_sanctions
          s.Pquic.Connection.plugin_fallbacks
    in
    mig "client" r.client;
    mig "server" r.server;
    if r.nat_rebinds >= 0 then pf "  nat rebindings: %d\n" r.nat_rebinds;
    pf "  %s\n" r.drop_sum;
    pf "  end t=%.3fs, fingerprint %s (replay %s)\n" (Sim.to_sec r.end_time)
      (fingerprint r)
      (if fingerprint r = fingerprint r2 then "identical" else "DIVERGED");
    let errs = check_cell c r in
    let errs =
      if fingerprint r <> fingerprint r2 then "replay diverged (I5)" :: errs
      else errs
    in
    if errs = [] then pf "  invariants: all hold\n"
    else begin
      List.iter (fun e -> pf "  VIOLATION: %s\n" e) errs;
      exit 1
    end

(* ------------------------------------------------------------------ *)
(* CLI                                                                 *)
(* ------------------------------------------------------------------ *)

open Cmdliner

let seeds_t =
  Arg.(value & opt int 12 & info [ "seeds" ] ~docv:"N" ~doc:"Seeds per profile.")

let seed_t =
  Arg.(
    required
    & opt (some int64) None
    & info [ "seed" ] ~docv:"SEED" ~doc:"Seed to replay (as printed by sweep).")

let profile_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile" ] ~docv:"NAME" ~doc:"Fault profile name.")

let cell_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "cell" ] ~docv:"CELL"
        ~doc:"Matrix cell name (enumerate with the list command).")

let cells_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "cells" ] ~docv:"CSV"
        ~doc:"Comma-separated cell names to sweep (default: all).")

let cmd name doc term = Cmd.v (Cmd.info name ~doc) term

let sweep_cmd =
  cmd "sweep" "Seed-sweep all fault profiles, checking invariants"
    Term.(const (fun seeds -> sweep ~seeds ()) $ seeds_t)

let matrix_cmd =
  cmd "matrix"
    "Seed-sweep the scenario matrix (profiles × middleboxes × scenarios)"
    Term.(
      const (fun seeds cells ->
          let cells =
            match cells with
            | None -> []
            | Some csv ->
              String.split_on_char ',' csv
              |> List.filter (fun s -> s <> "")
          in
          matrix ~seeds ~cells ())
      $ seeds_t $ cells_t)

let list_cmd =
  cmd "list" "Enumerate the scenario-matrix cells"
    Term.(const list_cells $ const ())

let repro_cmd =
  cmd "repro" "Replay one (profile|cell, seed) pair verbosely"
    Term.(
      const (fun pname cell seed ->
          match (pname, cell) with
          | Some pname, None -> repro ~pname ~seed ()
          | None, Some cname -> repro_cell ~cname ~seed ()
          | _ ->
            pf "repro needs exactly one of --profile or --cell\n";
            Stdlib.exit 2)
      $ profile_t $ cell_t $ seed_t)

let () =
  (* CHAOS_LOG=info|debug surfaces the engine's own log stream — mainly
     the migration/path-validation notices — under a repro *)
  (match Sys.getenv_opt "CHAOS_LOG" with
  | Some lvl ->
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level
      (Some (match lvl with "debug" -> Logs.Debug | _ -> Logs.Info))
  | None -> ());
  let info = Cmd.info "chaos" ~doc:"Deterministic chaos / invariant harness" in
  exit
    (Cmd.eval (Cmd.group info [ sweep_cmd; matrix_cmd; list_cmd; repro_cmd ]))
