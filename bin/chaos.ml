(* Deterministic chaos harness: sweeps seeds across adversarial fault
   profiles (bursty loss, reordering, duplication, corruption, blackouts —
   also with the multipath + FEC plugins active) and asserts invariants on
   every run:

     I1 termination  — the transfer resolves: either the payload arrives
                       or the connection leaves the open states before the
                       simulated-time cap (no livelock);
     I2 integrity    — delivered bytes are exactly the requested payload,
                       or the connection closed with a stated reason;
     I3 ack ranges   — both endpoints' ACK ranges stay structurally
                       coherent (disjoint, descending, merged);
     I4 sanctions    — plugin sanction accounting balances: no pluglet is
                       sanctioned (and no builtin fallback fires) just
                       because the network misbehaved;
     I5 replay       — the whole run is bit-identical when replayed from
                       its seed (state, stats, link counters, end time).

   Any violation prints the single seed + profile that reproduces it:

     dune exec bin/chaos.exe -- repro --profile <name> --seed <n>

   `sweep --seeds N` scales the sweep; the Makefile smoke target keeps N
   small, CHAOS_SEEDS=n drives the full sweep. *)

module Sim = Netsim.Sim
module Fault = Netsim.Fault
module Link = Netsim.Link
module Topology = Netsim.Topology
module TP = Quic.Transport_params

let pf = Printf.printf
let spf = Printf.sprintf

(* ------------------------------------------------------------------ *)
(* Fault profiles                                                      *)
(* ------------------------------------------------------------------ *)

type scenario = Plain | Mp_fec (* multipath + FEC plugins active *)

type profile = {
  pname : string;
  scenario : scenario;
  faults : Fault.profile;
  idle_ms : int; (* idle_timeout transport parameter for both endpoints *)
}

let mild_ge = Fault.gilbert_elliott ~p_gb:0.01 ~p_bg:0.4 ~loss_bad:0.3 ()

let profiles =
  let n = Fault.none in
  [
    { pname = "bursty"; scenario = Plain; idle_ms = 3_000;
      faults = { n with ge = Some (Fault.gilbert_elliott ()) } };
    { pname = "reorder"; scenario = Plain; idle_ms = 3_000;
      faults =
        { n with reorder = Some { prob = 0.15; max_extra = Sim.of_ms 30. } } };
    { pname = "duplicate"; scenario = Plain; idle_ms = 3_000;
      faults = { n with duplicate = 0.08 } };
    { pname = "corrupt"; scenario = Plain; idle_ms = 3_000;
      faults = { n with corrupt = 0.05 } };
    { pname = "blackout"; scenario = Plain; idle_ms = 3_000;
      faults = { n with blackouts = [ (Sim.of_ms 100., Sim.of_ms 4_100.) ] } };
    { pname = "mayhem"; scenario = Plain; idle_ms = 3_000;
      faults =
        {
          ge = Some mild_ge;
          reorder = Some { prob = 0.05; max_extra = Sim.of_ms 20. };
          duplicate = 0.02;
          corrupt = 0.01;
          (* a short mid-transfer flap, below the idle timeout: the
             connection typically rides it out and finishes; when the
             other faults also eat the recovery probes it must still end
             in a clean stated close, never a livelock *)
          blackouts = [ (Sim.of_sec 0.2, Sim.of_sec 0.7) ];
        } };
    { pname = "mp-fec"; scenario = Mp_fec; idle_ms = 3_000;
      faults =
        { n with
          ge = Some (Fault.gilbert_elliott ());
          reorder = Some { prob = 0.05; max_extra = Sim.of_ms 20. } } };
  ]

let profile_named name = List.find_opt (fun p -> p.pname = name) profiles

(* ------------------------------------------------------------------ *)
(* One run                                                             *)
(* ------------------------------------------------------------------ *)

let transfer_size = 100_000
let sim_cap = 120. (* seconds of simulated time before declaring livelock *)

type run = {
  completed : bool;           (* payload fully delivered (fin seen) *)
  intact : bool;              (* delivered bytes match the request *)
  received : int;
  client_state : string;
  client_reason : string;
  server_state : string;
  server_reason : string;
  client : Pquic.Connection.stats option;
  server : Pquic.Connection.stats option;
  acks_client : (unit, string) result;
  acks_server : (unit, string) result;
  end_time : Sim.time;
  still_open : bool;
  pending_left : int;
  link_fingerprint : string;
  fault_counts : int * int * int * int * int; (* ge, blackout, dup, reord, corrupt *)
}

let state_string (c : Pquic.Connection.t) =
  match c.Pquic.Connection.state with
  | Pquic.Connection.Handshaking -> "handshaking"
  | Pquic.Connection.Established -> "established"
  | Pquic.Connection.Closing -> "closing"
  | Pquic.Connection.Closed -> "closed"
  | Pquic.Connection.Failed r -> spf "failed(%s)" r

let run_case ~seed (p : profile) =
  let path = { Topology.d_ms = 10.; bw_mbps = 5.; loss = 0. } in
  let topo =
    match p.scenario with
    | Plain -> Topology.single_path ~faults:p.faults ~seed path
    | Mp_fec ->
      Topology.dual_path ~faults:p.faults ~seed path
        { path with Topology.d_ms = 25. }
  in
  let sim = topo.Topology.sim and net = topo.Topology.net in
  let tweak tp = { tp with TP.idle_timeout_ms = p.idle_ms } in
  let server_ep =
    Pquic.Endpoint.create ~tweak_params:tweak ~sim ~net
      ~addr:topo.Topology.server_addr ~seed:0x5EedL ()
  in
  let extra_addrs =
    match p.scenario with
    | Mp_fec -> (
      match topo.Topology.client_addrs with _ :: rest -> rest | [] -> [])
    | Plain -> []
  in
  let client_ep =
    Pquic.Endpoint.create ~tweak_params:tweak ~sim ~net
      ~addr:(List.hd topo.Topology.client_addrs)
      ~extra_addrs ~seed:0xC11e47L ()
  in
  let plugins, to_inject =
    match p.scenario with
    | Plain -> ([], [])
    | Mp_fec ->
      let fec = Plugins.Fec.xor_eos in
      ( [ Plugins.Multipath.plugin; fec ],
        [ Plugins.Multipath.name; (fec : Pquic.Plugin.t).Pquic.Plugin.name ] )
  in
  List.iter
    (fun pl ->
      Pquic.Endpoint.add_plugin server_ep pl;
      Pquic.Endpoint.add_plugin client_ep pl)
    plugins;
  Pquic.Endpoint.listen server_ep;
  Pquic.Endpoint.listen client_ep;
  let server_conn = ref None in
  server_ep.Pquic.Endpoint.on_connection <-
    (fun c ->
      server_conn := Some c;
      c.Pquic.Connection.on_stream_data <-
        (fun id _ ~fin ->
          if fin then
            Pquic.Connection.write_stream c ~id ~fin:true
              (String.make transfer_size 'x')));
  let conn =
    Pquic.Endpoint.connect client_ep ~remote_addr:topo.Topology.server_addr
      ~plugins_to_inject:to_inject
  in
  let buf = Buffer.create transfer_size in
  let fin_seen = ref false in
  conn.Pquic.Connection.on_established <-
    (fun () -> Pquic.Connection.write_stream conn ~id:0 ~fin:true "GET /file");
  conn.Pquic.Connection.on_stream_data <-
    (fun _ data ~fin ->
      Buffer.add_string buf data;
      if fin then fin_seen := true);
  let resolved () =
    !fin_seen || not (Pquic.Connection.is_open conn)
  in
  let rec drive () =
    if resolved () then ()
    else if Sim.to_sec (Sim.now sim) > sim_cap then ()
    else if Sim.pending sim = 0 then ()
    else begin
      ignore
        (Sim.run ~until:(Int64.add (Sim.now sim) (Sim.of_sec 1.))
           ~max_events:5_000_000 sim);
      drive ()
    end
  in
  drive ();
  let data = Buffer.contents buf in
  let intact =
    !fin_seen
    && String.length data = transfer_size
    && String.for_all (fun ch -> ch = 'x') data
  in
  let link_fingerprint =
    String.concat ";"
      (List.concat_map
         (fun (up, down) ->
           List.map
             (fun l ->
               let s = Link.stats l in
               spf "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d" s.Link.sent s.Link.delivered
                 s.Link.random_losses s.Link.queue_drops s.Link.ge_losses
                 s.Link.blackout_drops s.Link.duplicated s.Link.reordered
                 s.Link.corrupted s.Link.queue_hwm)
             [ up; down ])
         topo.Topology.mid_links)
  in
  let fault_counts =
    List.fold_left
      (fun (g, b, d, r, co) (up, down) ->
        let add acc l =
          let g, b, d, r, co = acc in
          let s = Link.stats l in
          ( g + s.Link.ge_losses, b + s.Link.blackout_drops,
            d + s.Link.duplicated, r + s.Link.reordered, co + s.Link.corrupted )
        in
        add (add (g, b, d, r, co) up) down)
      (0, 0, 0, 0, 0) topo.Topology.mid_links
  in
  {
    completed = !fin_seen;
    intact;
    received = String.length data;
    client_state = state_string conn;
    client_reason = conn.Pquic.Connection.close_reason;
    server_state =
      (match !server_conn with Some c -> state_string c | None -> "absent");
    server_reason =
      (match !server_conn with
      | Some c -> c.Pquic.Connection.close_reason
      | None -> "");
    client = Some (Pquic.Connection.stats conn);
    server = Option.map Pquic.Connection.stats !server_conn;
    acks_client = Quic.Ackranges.check_coherent conn.Pquic.Connection.acks;
    acks_server =
      (match !server_conn with
      | Some c -> Quic.Ackranges.check_coherent c.Pquic.Connection.acks
      | None -> Ok ());
    end_time = Sim.now sim;
    still_open = Pquic.Connection.is_open conn;
    pending_left = Sim.pending sim;
    link_fingerprint;
    fault_counts;
  }

(* Everything observable about a run, digestible: replaying the seed must
   reproduce this string bit-for-bit. *)
let fingerprint r =
  let stats_str = function
    | None -> "-"
    | Some (s : Pquic.Connection.stats) ->
      spf "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d" s.Pquic.Connection.bytes_sent
        s.Pquic.Connection.bytes_received s.Pquic.Connection.pkts_sent
        s.Pquic.Connection.pkts_received s.Pquic.Connection.pkts_lost
        s.Pquic.Connection.pkts_retransmitted s.Pquic.Connection.pkts_out_of_order
        s.Pquic.Connection.frames_recovered s.Pquic.Connection.pkts_dup_rejected
        s.Pquic.Connection.pkts_corrupt_discarded
        s.Pquic.Connection.persistent_congestion_events
        s.Pquic.Connection.plugin_sanctions s.Pquic.Connection.plugin_fallbacks
  in
  Digest.to_hex
    (Digest.string
       (String.concat "|"
          [
            string_of_bool r.completed;
            string_of_bool r.intact;
            string_of_int r.received;
            r.client_state;
            r.client_reason;
            r.server_state;
            r.server_reason;
            stats_str r.client;
            stats_str r.server;
            Int64.to_string r.end_time;
            r.link_fingerprint;
          ]))

(* ------------------------------------------------------------------ *)
(* Invariants                                                          *)
(* ------------------------------------------------------------------ *)

let check_invariants (p : profile) r =
  let v = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> v := s :: !v) fmt in
  (* I1: the run resolved — no livelock at the sim cap, no quiescence with
     the connection still open (an open connection always has its idle
     alarm pending) *)
  if r.still_open && not r.completed then
    bad "livelock: connection still open at t=%.1fs (%d events pending)"
      (Sim.to_sec r.end_time) r.pending_left;
  (* I2: bytes intact, or a stated close reason *)
  if r.completed && not r.intact then
    bad "payload damaged: got %d bytes (want %d intact)" r.received
      transfer_size;
  if (not r.completed) && not r.still_open then begin
    if r.client_reason = "" then
      bad "client closed without a stated reason (state %s)" r.client_state
  end;
  (* I3: ACK ranges stay coherent on both sides *)
  (match r.acks_client with
  | Ok () -> ()
  | Error e -> bad "client ack ranges incoherent: %s" e);
  (match r.acks_server with
  | Ok () -> ()
  | Error e -> bad "server ack ranges incoherent: %s" e);
  (* I4: sanction accounting balances — network faults never look like
     plugin misbehaviour *)
  let sanctions = function
    | None -> (0, 0)
    | Some (s : Pquic.Connection.stats) ->
      (s.Pquic.Connection.plugin_sanctions, s.Pquic.Connection.plugin_fallbacks)
  in
  let cs, cf = sanctions r.client and ss, sf = sanctions r.server in
  if cs + cf + ss + sf > 0 then
    bad
      "plugin sanction accounting: client %d sanctions/%d fallbacks, server \
       %d/%d under pure network faults (profile %s)"
      cs cf ss sf p.pname;
  List.rev !v

(* ------------------------------------------------------------------ *)
(* Sweep                                                               *)
(* ------------------------------------------------------------------ *)

let seed_of_index i = Int64.of_int ((i * 9973) + 7)

let repro_hint p seed =
  spf "dune exec bin/chaos.exe -- repro --profile %s --seed %Ld" p.pname seed

let sweep ~seeds () =
  let t0 = Unix.gettimeofday () in
  let violations = ref [] in
  let total = ref 0 in
  List.iter
    (fun p ->
      let completed = ref 0 and closed = ref 0 in
      let g, b, d, ro, co = (ref 0, ref 0, ref 0, ref 0, ref 0) in
      for i = 0 to seeds - 1 do
        let seed = seed_of_index i in
        incr total;
        let r = run_case ~seed p in
        (* I5: bit-identical replay from the same seed *)
        let r2 = run_case ~seed p in
        let f1 = fingerprint r and f2 = fingerprint r2 in
        let errs = check_invariants p r in
        let errs =
          if f1 <> f2 then
            spf "replay diverged: %s vs %s" f1 f2 :: errs
          else errs
        in
        if r.completed then incr completed else incr closed;
        let cg, cb, cd, cro, cco = r.fault_counts in
        g := !g + cg; b := !b + cb; d := !d + cd; ro := !ro + cro;
        co := !co + cco;
        List.iter
          (fun e ->
            violations :=
              spf "[%s seed=%Ld] %s\n    %s" p.pname seed e (repro_hint p seed)
              :: !violations)
          errs
      done;
      pf "%-10s %4d runs: %4d completed, %4d closed-with-reason   (ge %d, blackout %d, dup %d, reorder %d, corrupt %d)\n"
        p.pname seeds !completed !closed !g !b !d !ro !co)
    profiles;
  let violations = List.rev !violations in
  pf "\n%d runs (each replayed once), %d invariant violations, %.1fs wall\n"
    !total (List.length violations)
    (Unix.gettimeofday () -. t0);
  if violations <> [] then begin
    pf "\nViolations:\n";
    List.iter (fun vtext -> pf "  %s\n" vtext) violations;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Repro: one seed, verbosely                                          *)
(* ------------------------------------------------------------------ *)

let repro ~pname ~seed () =
  match profile_named pname with
  | None ->
    pf "unknown profile %s (have: %s)\n" pname
      (String.concat ", " (List.map (fun p -> p.pname) profiles));
    exit 2
  | Some p ->
    let r = run_case ~seed p in
    let r2 = run_case ~seed p in
    let stats_line tag = function
      | None -> pf "  %s: absent\n" tag
      | Some (s : Pquic.Connection.stats) ->
        pf
          "  %s: sent %d recv %d lost %d retx %d ooo %d fec %d dup-rej %d \
           corrupt-drop %d pc %d sanctions %d fallbacks %d\n"
          tag s.Pquic.Connection.pkts_sent s.Pquic.Connection.pkts_received
          s.Pquic.Connection.pkts_lost s.Pquic.Connection.pkts_retransmitted
          s.Pquic.Connection.pkts_out_of_order
          s.Pquic.Connection.frames_recovered
          s.Pquic.Connection.pkts_dup_rejected
          s.Pquic.Connection.pkts_corrupt_discarded
          s.Pquic.Connection.persistent_congestion_events
          s.Pquic.Connection.plugin_sanctions
          s.Pquic.Connection.plugin_fallbacks
    in
    pf "profile %s, seed %Ld\n" p.pname seed;
    pf "  completed %b, intact %b, received %d bytes\n" r.completed r.intact
      r.received;
    pf "  client %s (reason %S), server %s (reason %S)\n" r.client_state
      r.client_reason r.server_state r.server_reason;
    stats_line "client" r.client;
    stats_line "server" r.server;
    let g, b, d, ro, co = r.fault_counts in
    pf "  faults injected: ge %d, blackout %d, dup %d, reorder %d, corrupt %d\n"
      g b d ro co;
    pf "  end t=%.3fs, fingerprint %s (replay %s)\n" (Sim.to_sec r.end_time)
      (fingerprint r)
      (if fingerprint r = fingerprint r2 then "identical" else "DIVERGED");
    let errs = check_invariants p r in
    let errs =
      if fingerprint r <> fingerprint r2 then "replay diverged" :: errs
      else errs
    in
    if errs = [] then pf "  invariants: all hold\n"
    else begin
      List.iter (fun e -> pf "  VIOLATION: %s\n" e) errs;
      exit 1
    end

(* ------------------------------------------------------------------ *)
(* CLI                                                                 *)
(* ------------------------------------------------------------------ *)

open Cmdliner

let seeds_t =
  Arg.(value & opt int 12 & info [ "seeds" ] ~docv:"N" ~doc:"Seeds per profile.")

let seed_t =
  Arg.(
    required
    & opt (some int64) None
    & info [ "seed" ] ~docv:"SEED" ~doc:"Seed to replay (as printed by sweep).")

let profile_t =
  Arg.(
    required
    & opt (some string) None
    & info [ "profile" ] ~docv:"NAME" ~doc:"Fault profile name.")

let cmd name doc term = Cmd.v (Cmd.info name ~doc) term

let sweep_cmd =
  cmd "sweep" "Seed-sweep all fault profiles, checking invariants"
    Term.(const (fun seeds -> sweep ~seeds ()) $ seeds_t)

let repro_cmd =
  cmd "repro" "Replay one (profile, seed) pair verbosely"
    Term.(const (fun pname seed -> repro ~pname ~seed ()) $ profile_t $ seed_t)

let () =
  let info = Cmd.info "chaos" ~doc:"Deterministic chaos / invariant harness" in
  exit (Cmd.eval (Cmd.group info [ sweep_cmd; repro_cmd ]))
