#!/bin/sh
# Repo check: formatting (when an ocamlformat setup exists), full build of
# every target — libraries, tests, benches and examples, so bench/example
# code cannot rot outside the default build — then the full test suite.
# Exits non-zero on the first failure.
set -e
cd "$(dirname "$0")/.."

if [ -f .ocamlformat ] && command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt"
  dune build @fmt
else
  echo "== skipping @fmt (no .ocamlformat or ocamlformat binary)"
fi

echo "== dune build @all"
dune build @all

echo "== dune runtest"
dune runtest

echo "== chaos smoke (seed-sweep invariants)"
dune exec bin/chaos.exe -- sweep --seeds 10

echo "== OK"
