#!/bin/sh
# Repo check: formatting (when an ocamlformat setup exists), full build of
# every target — libraries, tests, benches and examples, so bench/example
# code cannot rot outside the default build — then the full test suite.
# Exits non-zero on the first failure.
set -e
cd "$(dirname "$0")/.."

if [ -f .ocamlformat ] && command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt"
  dune build @fmt
else
  echo "== skipping @fmt (no .ocamlformat or ocamlformat binary)"
fi

echo "== dune build @all"
dune build @all

echo "== dune runtest"
dune runtest

echo "== chaos smoke (seed-sweep invariants)"
dune exec bin/chaos.exe -- sweep --seeds 10

echo "== scenario-matrix smoke (migration through nat+tracker)"
dune exec bin/chaos.exe -- matrix --seeds 3 \
  --cells bursty/nat+tracker/plain,bursty/nat+tracker/mpfec

echo "== cross-host demo (same plugin bytecode on PQUIC and tcpsim)"
dune exec examples/cross_host.exe >/dev/null

echo "== server-engine smoke (1k concurrent connections, no JSON refresh)"
dune exec bench/server.exe -- --smoke >/dev/null

# Dependency-direction lint for the pluginop layering: the transport-
# neutral host library must not depend on any transport (quic, tcpsim,
# netsim, or the hosts built on it), and the PQUIC core must not reach
# into tcpsim. Checked both at the dune library graph (dune describe) and
# at the source level (module-path references).
echo "== dependency-direction lint (pluginop layering)"
desc=$(mktemp)
dune describe workspace > "$desc"
deps_of() {
  awk -v lib="$1" '
    /\(name / { line=$0; gsub(/[()]/, "", line); split(line, a, " "); name=a[2] }
    /\(uid /  { line=$0; gsub(/[()]/, "", line); split(line, a, " "); byuid[a[2]]=name }
    /\(requires/ { if (name != "") collecting=name }
    collecting != "" {
      line=$0; gsub(/[()]/, " ", line)
      n=split(line, w, " ")
      for (i=1; i<=n; i++)
        if (w[i] ~ /^[0-9a-f]+$/ && length(w[i]) == 32)
          req[collecting] = req[collecting] " " w[i]
      if ($0 ~ /\)\)/) collecting=""
    }
    END {
      n=split(req[lib], r, " ")
      for (i=1; i<=n; i++) if (byuid[r[i]] != "") print byuid[r[i]]
    }
  ' "$desc"
}
bad=$(deps_of pluginop | grep -Ex 'quic|tcpsim|netsim|pquic|plugins' || true)
if [ -n "$bad" ]; then
  echo "pluginop depends on transport libraries: $bad"; rm -f "$desc"; exit 1
fi
bad=$(deps_of pquic | grep -Ex 'tcpsim' || true)
if [ -n "$bad" ]; then
  echo "pquic (lib/core) depends on tcpsim"; rm -f "$desc"; exit 1
fi
rm -f "$desc"
if grep -rn 'Quic\.\|Tcpsim\.\|Netsim\.\|Pquic\.' lib/pluginop \
     --include='*.ml' --include='*.mli' | grep -v '(\*'; then
  echo "lib/pluginop references a transport module"; exit 1
fi
if grep -rn 'Tcpsim\.' lib/core --include='*.ml' --include='*.mli' \
     | grep -v '(\*'; then
  echo "lib/core references tcpsim"; exit 1
fi

# Committed benchmark artifacts must stay well-formed: right schema tag,
# non-empty results, strictly positive measurements. Catches hand edits
# and half-written files; jq is optional so the check degrades gracefully.
if command -v jq >/dev/null 2>&1; then
  echo "== bench JSON sanity (jq)"
  jq -e '
    .schema == "pquic-bench-vm/1"
    and (.results | length > 0)
    and ([.results[] | .ns_per_op > 0] | all)
    and (.results | has("transfer_1MB_e2e"))
  ' BENCH_vm.json >/dev/null || { echo "BENCH_vm.json failed sanity check"; exit 1; }
  # The jit tier must be measured (the _jit bench twins exist) and must
  # not regress below the linked tier it replaces on the per-packet path.
  jq -e '
    (.results | has("pre_rtt_update_jit"))
    and (.results | has("bytecode_direct_load_jit"))
    and (.ratios.jit_speedup_pre_rtt_update
         >= .ratios.linked_speedup_pre_rtt_update)
    and (.ratios.jit_speedup_bytecode_direct_load
         >= .ratios.linked_speedup_bytecode_direct_load)
  ' BENCH_vm.json >/dev/null || { echo "BENCH_vm.json jit tier gates failed"; exit 1; }
  jq -e '
    .schema == "pquic-bench-e2e/1"
    and (.results | length > 0)
    and ([.results[] | .cpu_ms > 0 and .goodput_mb_s > 0
          and .packets > 0 and .ns_per_packet > 0] | all)
    and (.results | has("transfer_1MB_e2e"))
  ' BENCH_e2e.json >/dev/null || { echo "BENCH_e2e.json failed sanity check"; exit 1; }
  # Receive-side gates: the rx profile must be measured for every
  # scenario, and the zero-copy receive path bounds the mp+FEC tax — the
  # heaviest pluginized scenario must stay within 1.6x of the single-path
  # baseline per packet (was 1.67x before the view parser; ratcheting
  # toward the 1.3x target as the pluglet exec path gets cheaper), and
  # its per-packet allocations under 3438 minor words (a 40% cut from the
  # copying parser's 5730).
  jq -e '
    ([.results[] | .rx_ns_per_packet > 0 and .rx_minor_words_per_packet > 0]
     | all)
    and (.results.transfer_50MB_mp_fec.ns_per_packet
         <= 1.6 * .results.transfer_50MB_e2e.ns_per_packet)
    and (.results.transfer_50MB_mp_fec.minor_words_per_packet <= 3438)
  ' BENCH_e2e.json >/dev/null || { echo "BENCH_e2e.json receive-side gates failed"; exit 1; }
  jq -e '
    .schema == "pquic-bench-server/1"
    and (.cells | length > 0)
    and ([.cells[] | .dispatch_ns > 0 and .receive_ns > 0
          and .accept_per_sec > 0 and .bytes_per_conn > 0] | all)
    and ([.cells[] | .conns] | index(10000) != null)
    and (.timer.arm_ns > 0 and .timer.fire_ns > 0)
  ' BENCH_server.json >/dev/null || { echo "BENCH_server.json failed sanity check"; exit 1; }
  # Engine acceptance gates: at the 10k-connection cell the per-datagram
  # dispatch must stay under 1 us and the global plugin cache must serve
  # a same-plugin population at >= 99% hit rate.
  jq -e '
    [.cells[] | select(.conns == 10000)] | length > 0
    and (.[0].dispatch_ns <= 1000)
    and (.[0].plugin_cache.hit_rate >= 0.99)
  ' BENCH_server.json >/dev/null || { echo "BENCH_server.json engine gates failed"; exit 1; }
else
  echo "== skipping bench JSON sanity (no jq)"
fi

# Zero-copy lint for the frame codec: the only String.sub sites allowed
# in frame.ml are the reference parser and of_view, fenced by the
# REFERENCE-PARSER markers — a String.sub creeping back into the view
# parse path would silently re-introduce the per-frame payload copies.
echo "== zero-copy lint (frame.ml parse paths)"
bad=$(awk '/REFERENCE-PARSER-BEGIN/{ref=1} /REFERENCE-PARSER-END/{ref=0; next}
           !ref && /String\.sub/ {print FILENAME ":" FNR ": " $0}' \
      lib/quic/frame.ml)
if [ -n "$bad" ]; then
  echo "String.sub outside the reference-parser block in frame.ml:"
  echo "$bad"; exit 1
fi

echo "== OK"
