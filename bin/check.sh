#!/bin/sh
# Repo check: formatting (when an ocamlformat setup exists), full build,
# full test suite. Exits non-zero on the first failure.
set -e
cd "$(dirname "$0")/.."

if [ -f .ocamlformat ] && command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt"
  dune build @fmt
else
  echo "== skipping @fmt (no .ocamlformat or ocamlformat binary)"
fi

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

echo "== OK"
