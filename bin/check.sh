#!/bin/sh
# Repo check: formatting (when an ocamlformat setup exists), full build of
# every target — libraries, tests, benches and examples, so bench/example
# code cannot rot outside the default build — then the full test suite.
# Exits non-zero on the first failure.
set -e
cd "$(dirname "$0")/.."

if [ -f .ocamlformat ] && command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt"
  dune build @fmt
else
  echo "== skipping @fmt (no .ocamlformat or ocamlformat binary)"
fi

echo "== dune build @all"
dune build @all

echo "== dune runtest"
dune runtest

echo "== chaos smoke (seed-sweep invariants)"
dune exec bin/chaos.exe -- sweep --seeds 10

# Committed benchmark artifacts must stay well-formed: right schema tag,
# non-empty results, strictly positive measurements. Catches hand edits
# and half-written files; jq is optional so the check degrades gracefully.
if command -v jq >/dev/null 2>&1; then
  echo "== bench JSON sanity (jq)"
  jq -e '
    .schema == "pquic-bench-vm/1"
    and (.results | length > 0)
    and ([.results[] | .ns_per_op > 0] | all)
    and (.results | has("transfer_1MB_e2e"))
  ' BENCH_vm.json >/dev/null || { echo "BENCH_vm.json failed sanity check"; exit 1; }
  jq -e '
    .schema == "pquic-bench-e2e/1"
    and (.results | length > 0)
    and ([.results[] | .cpu_ms > 0 and .goodput_mb_s > 0
          and .packets > 0 and .ns_per_packet > 0] | all)
    and (.results | has("transfer_1MB_e2e"))
  ' BENCH_e2e.json >/dev/null || { echo "BENCH_e2e.json failed sanity check"; exit 1; }
else
  echo "== skipping bench JSON sanity (no jq)"
fi

echo "== OK"
