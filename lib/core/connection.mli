(** The PQUIC connection engine facade.

    A QUIC connection whose workflow is a succession of protocol
    operations; protocol plugins may replace or observe each operation
    (see {!Dispatch}). This module re-exports the shared engine types of
    {!Conn_types} plus the plugin entry points, so a connection is
    addressed as [Pquic.Connection] regardless of which layer implements
    the behaviour. *)

include module type of struct include Conn_types end

(** {2 Construction and lifecycle} *)

val create :
  sim:Netsim.Sim.t ->
  net:Netsim.Net.t ->
  cfg:config ->
  role:role ->
  local_addr:Netsim.Net.addr ->
  remote_addr:Netsim.Net.addr ->
  local_cid:int64 ->
  remote_cid:int64 ->
  local_params:Quic.Transport_params.t ->
  unit ->
  t

val start_client : t -> unit
(** Kick off the client side of the handshake. *)

val receive_datagram : t -> Netsim.Net.datagram -> unit
(** Entry point for a datagram demultiplexed to this connection. *)

val close : t -> reason:string -> unit
(** Graceful close: CONNECTION_CLOSE now, fully closed after 3 PTO. *)

val rebind : t -> new_local:Netsim.Net.addr -> unit
(** Simulate a NAT rebinding: move the default path to [new_local]. *)

(** {2 Streams} *)

val write_stream : t -> id:int -> ?fin:bool -> string -> unit
val stream_fully_acked : t -> id:int -> bool

(** {2 Protocol operations} *)

val run_op :
  t -> Protoop.id -> ?param:int -> ?default:(t -> arg array -> int64) ->
  arg array -> int64
(** See {!Dispatch.run_op}. *)

val register_native : t -> Protoop.id -> string -> native -> unit
val call_external : t -> Protoop.id -> arg array -> int64 option

(** {2 Plugins} *)

exception Injection_failed of string

val build_instance : Plugin.t -> instance
val attach_instance : t -> instance -> instance
val inject_plugin : t -> Plugin.t -> (unit, string) result
val remove_plugin : t -> string -> unit
val kill_plugin : t -> string -> string -> unit
val inject_local_plugins : t -> unit
val plugin_names : t -> string list
val has_plugin : t -> string -> bool

(** {2 Accessors} *)

val local_cid : t -> int64
val state : t -> state
val stats : t -> stats
val role : t -> role
val now : t -> Netsim.Sim.time
val peer_params : t -> Quic.Transport_params.t option

(**/**)

val process_recovered : t -> Bytes.t -> off:int -> len:int -> unit
(** FEC hook: re-process a recovered packet whose image —
    [pn] (4 bytes) || payload — sits in the [off, off+len) window of a
    borrowed scratch buffer. The buffer is only read for the duration of
    the call; the payload string materializes lazily, if a pluglet asks
    for the packet bytes during the replay. *)
