(* Plugin lifecycle on a PQUIC connection, and the over-the-connection
   plugin exchange of Section 3.4 (PLUGIN_VALIDATE / PLUGIN_PROOF / PLUGIN
   chunk transfer) together with the both-sides plugin negotiation.

   The lifecycle itself — building instances (PREs verified and compiled),
   attaching them to the protoop registry, sanctioning misbehaving plugins
   — is transport-neutral and lives in [Pluginop.Plugin_host]; this module
   pairs it with the connection's plugin state [c.po]. The exchange and
   negotiation are QUIC wire-format business and stay here. *)

module F = Quic.Frame
module TP = Quic.Transport_params
module PH = Pluginop.Plugin_host
open Conn_types

(* Remove a plugin's pluglets from the registry and scheduler. The paper's
   sanction for a misbehaving pluglet is the removal of its plugin and the
   termination of the connection. *)
let remove_plugin c name = PH.remove_plugin c.po c name
let kill_plugin c name reason = PH.kill_plugin c.po c name reason

(* ------------------------------------------------------------------ *)
(* Plugin injection                                                    *)
(* ------------------------------------------------------------------ *)

exception Injection_failed = PH.Injection_failed

let plugin_heap_size = PH.plugin_heap_size
let build_instance = PH.build_instance
let attach_instance c inst = PH.attach_instance c.po c inst
let inject_plugin c plugin = PH.inject_plugin c.po c plugin
let has_plugin c name = PH.has_plugin c.po name

(* ------------------------------------------------------------------ *)
(* Plugin negotiation                                                  *)
(* ------------------------------------------------------------------ *)

let request_plugin_transfer c name =
  Log.info (fun m -> m "requesting plugin %s from peer" name);
  Queue.push
    (F.Plugin_validate { plugin = name; formula = c.cfg.trust_formula })
    c.ctrl

let negotiate_plugins c =
  (* requires both the handshake completion and the peer's transport
     parameters; runs exactly once per connection *)
  match c.peer_params with
  | None -> ()
  | Some _ when c.state <> Established || c.negotiated -> ()
  | Some peer ->
    c.negotiated <- true;
    let wanted =
      let mine = c.local_params.TP.plugins_to_inject in
      let theirs = peer.TP.plugins_to_inject in
      List.fold_left
        (fun acc n -> if List.mem n acc then acc else acc @ [ n ])
        [] (mine @ theirs)
    in
    List.iter
      (fun name ->
        (* a plugin is activated on the connection only when both peers
           hold it (Section 3.4, outcome (a)); otherwise it is transferred
           for use on subsequent connections (outcome (b)) *)
        let peer_has = List.mem name peer.TP.supported_plugins in
        if has_plugin c name then begin
          if not peer_has then begin
            Log.info (fun m ->
                m "rolling back plugin %s: peer does not hold it" name);
            remove_plugin c name
          end
        end
        else if peer_has then
          match c.acquire_instance name with
          | Some inst -> (
            match attach_instance c inst with
            | _ -> Log.info (fun m -> m "injected local plugin %s" name)
            | exception Injection_failed e ->
              Log.warn (fun m -> m "failed to inject %s: %s" name e))
          | None ->
            (* not cached locally: ask the peer to provide it *)
            request_plugin_transfer c name)
      wanted;
    ignore (Dispatch.run_op c Protoop.plugin_negotiated [||])

(* Inject the locally available plugins this host wants on the connection
   (its own plugins_to_inject): local plugins are active from the start so
   e.g. the monitoring plugin records handshake PIs (Section 4.1). Peer
   requests are handled at negotiation time. *)
let inject_local_plugins c =
  List.iter
    (fun name ->
      if not (has_plugin c name) then
        match c.acquire_instance name with
        | Some inst -> (
          try ignore (attach_instance c inst)
          with Injection_failed e ->
            Log.warn (fun m -> m "failed to inject %s: %s" name e))
        | None -> ())
    c.local_params.TP.plugins_to_inject

(* ------------------------------------------------------------------ *)
(* Plugin exchange over the connection (Section 3.4)                    *)
(* ------------------------------------------------------------------ *)

let handle_plugin_validate c ~name ~formula =
  match c.provide_plugin name ~formula with
  | Some (compressed, proof) ->
    Log.info (fun m ->
        m "providing plugin %s (%d bytes compressed, %d bytes of proofs)" name
          (String.length compressed) (String.length proof));
    (* authentication paths are longer than an MTU, so the proof bundle
       travels on the plugin stream ahead of the bytecode: a small
       PLUGIN_PROOF frame announces it *)
    Queue.push
      (F.Plugin_proof { plugin = name; proof = "stream" })
      c.ctrl;
    let sb = Quic.Sendbuf.create () in
    let framed = Buffer.create (String.length proof + String.length compressed + 4) in
    Buffer.add_int32_be framed (Int32.of_int (String.length proof));
    Buffer.add_string framed proof;
    Buffer.add_string framed compressed;
    Quic.Sendbuf.write sb (Buffer.contents framed);
    Quic.Sendbuf.finish sb;
    Hashtbl.replace c.plugin_out name sb;
    wake c
  | None ->
    Queue.push (F.Plugin_proof { plugin = name; proof = "" }) c.ctrl;
    wake c

let plugin_in_buffers : (string, Buffer.t) Hashtbl.t = Hashtbl.create 8

let buffer_key c name = Printf.sprintf "%Lx/%s" c.local_cid name

let handle_plugin_chunk c ~name ~offset ~fin ~data =
  let rb =
    match Hashtbl.find_opt c.plugin_in name with
    | Some rb -> rb
    | None ->
      let rb = Quic.Recvbuf.create () in
      Hashtbl.replace c.plugin_in name rb;
      rb
  in
  Quic.Recvbuf.insert rb ~offset:(Int64.to_int offset) ~fin data;
  let acc =
    match Hashtbl.find_opt plugin_in_buffers (buffer_key c name) with
    | Some b -> b
    | None ->
      let b = Buffer.create 4096 in
      Hashtbl.replace plugin_in_buffers (buffer_key c name) b;
      b
  in
  Buffer.add_string acc (Quic.Recvbuf.read rb);
  if Quic.Recvbuf.is_finished rb then begin
    Hashtbl.remove plugin_in_buffers (buffer_key c name);
    Hashtbl.remove c.plugin_in name;
    let blob = Buffer.contents acc in
    let proof, compressed =
      if String.length blob >= 4 then begin
        let plen = Int32.to_int (String.get_int32_be blob 0) in
        if plen >= 0 && 4 + plen <= String.length blob then
          ( String.sub blob 4 plen,
            String.sub blob (4 + plen) (String.length blob - 4 - plen) )
        else ("", blob)
      end
      else ("", blob)
    in
    match Compress.Lzss.decompress compressed with
    | exception Compress.Lzss.Corrupt ->
      Log.warn (fun m -> m "plugin %s: corrupt transfer" name)
    | bytes -> (
      match Plugin.deserialize bytes with
      | exception Plugin.Malformed msg ->
        Log.warn (fun m -> m "plugin %s: malformed (%s)" name msg)
      | plugin ->
        if plugin.Plugin.name <> name then
          Log.warn (fun m -> m "plugin name mismatch in transfer")
        else if c.verify_plugin ~name ~bytes ~proof then begin
          Log.info (fun m ->
              m "plugin %s verified and stored in the local cache" name);
          (* Remote plugins are not activated on the current connection but
             offered to subsequent ones (Section 3.4). *)
          c.on_plugin_received plugin
        end
        else Log.warn (fun m -> m "plugin %s failed proof verification" name))
  end
