(* Plugin lifecycle on a connection: building instances (PREs verified and
   compiled), attaching them to the protoop registry, sanctioning
   misbehaving plugins, and the over-the-connection plugin exchange of
   Section 3.4 (PLUGIN_VALIDATE / PLUGIN_PROOF / PLUGIN chunk transfer)
   together with the both-sides plugin negotiation. *)

module F = Quic.Frame
module TP = Quic.Transport_params
open Conn_types

(* Remove a plugin's pluglets from the registry and scheduler. The paper's
   sanction for a misbehaving pluglet is the removal of its plugin and the
   termination of the connection. *)
let remove_plugin c name =
  (match Hashtbl.find_opt c.plugins name with
  | None -> ()
  | Some inst ->
    inst.bound <- None;
    Hashtbl.remove c.plugins name;
    c.plugin_order <- List.filter (fun n -> n <> name) c.plugin_order;
    Scheduler.drop_plugin c.sched name;
    let belongs = function
      | Pluglet pre -> pre.Pre.plugin_name = name
      | Native _ -> false
    in
    Dispatch.iter_entries c
      (fun e ->
        (match e.replace with Some i when belongs i -> e.replace <- None | _ -> ());
        (match e.ext with Some i when belongs i -> e.ext <- None | _ -> ());
        e.pre <- List.filter (fun i -> not (belongs i)) e.pre;
        e.post <- List.filter (fun i -> not (belongs i)) e.post))

let kill_plugin c name reason =
  Log.warn (fun m -> m "killing plugin %s: %s" name reason);
  c.stats.plugin_sanctions <- c.stats.plugin_sanctions + 1;
  remove_plugin c name;
  fail_connection c (Printf.sprintf "plugin %s misbehaved: %s" name reason)

(* [Dispatch.exec_pluglet] sanctions through this hook: removal lives here,
   above dispatch in the module graph. *)
let () = Dispatch.kill_plugin_ref := kill_plugin

(* ------------------------------------------------------------------ *)
(* Plugin injection                                                    *)
(* ------------------------------------------------------------------ *)

exception Injection_failed of string

let plugin_heap_size = 256 * 1024

(* Build a fresh instance for [plugin]: every pluglet is compiled,
   verified and linked here, once. Attaching the instance to a connection
   (including re-attaching a cached instance, the Section 2.5 reload fast
   path) only wipes the heap and rebinds helpers — the linked programs are
   reused as-is. *)
let build_instance (plugin : Plugin.t) =
  let pool = Memory_pool.create ~size:plugin_heap_size () in
  let inst = { plugin; pool; pres = []; opaque = Hashtbl.create 8; bound = None } in
  let pres =
    List.map
      (fun pluglet ->
        Pre.create ~plugin_name:plugin.Plugin.name ~pluglet
          ~heap:(Memory_pool.area pool))
      plugin.Plugin.pluglets
  in
  inst.pres <- pres;
  inst

(* Attach a built instance to this connection. Rolls the whole plugin back
   if a replace anchor is already taken (Section 2.2). *)
let attach_instance c inst =
  let name = inst.plugin.Plugin.name in
  if Hashtbl.mem c.plugins name then raise (Injection_failed (name ^ " already injected"));
  Memory_pool.reset inst.pool;
  Hashtbl.reset inst.opaque;
  inst.bound <- Some c;
  List.iter (fun pre -> Host_api.install_helpers c inst pre) inst.pres;
  let attached = ref [] in
  let rollback () =
    List.iter
      (fun (e, pre, anchor) ->
        match (anchor : Protoop.anchor) with
        | Protoop.Replace -> e.replace <- None
        | Protoop.External -> e.ext <- None
        | Protoop.Pre -> e.pre <- List.filter (fun i -> i != Pluglet pre) e.pre
        | Protoop.Post -> e.post <- List.filter (fun i -> i != Pluglet pre) e.post)
      !attached
  in
  (try
     List.iter
       (fun pre ->
         let e = Dispatch.entry c pre.Pre.op pre.Pre.param in
         (match pre.Pre.anchor with
         | Protoop.Replace ->
           (match e.replace with
           | Some (Pluglet other) ->
             raise
               (Injection_failed
                  (Printf.sprintf
                     "replace anchor for %s already taken by plugin %s"
                     (Protoop.name pre.Pre.op) other.Pre.plugin_name))
           | _ -> e.replace <- Some (Pluglet pre))
         | Protoop.External -> e.ext <- Some (Pluglet pre)
         | Protoop.Pre -> e.pre <- Pluglet pre :: e.pre
         | Protoop.Post -> e.post <- Pluglet pre :: e.post);
         attached := (e, pre, pre.Pre.anchor) :: !attached)
       inst.pres
   with Injection_failed _ as e ->
     rollback ();
     inst.bound <- None;
     raise e);
  Hashtbl.replace c.plugins name inst;
  c.plugin_order <- c.plugin_order @ [ name ];
  ignore (Dispatch.run_op c Protoop.plugin_injected [||]);
  inst

let inject_plugin c plugin =
  try
    let inst = build_instance plugin in
    ignore (attach_instance c inst);
    Ok ()
  with
  | Injection_failed msg -> Error msg
  | Pre.Rejected msg -> Error ("verifier rejected pluglet: " ^ msg)
  | Plc.Compile.Error msg -> Error ("pluglet compilation failed: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Plugin negotiation                                                  *)
(* ------------------------------------------------------------------ *)

let request_plugin_transfer c name =
  Log.info (fun m -> m "requesting plugin %s from peer" name);
  Queue.push
    (F.Plugin_validate { plugin = name; formula = c.cfg.trust_formula })
    c.ctrl

let negotiate_plugins c =
  (* requires both the handshake completion and the peer's transport
     parameters; runs exactly once per connection *)
  match c.peer_params with
  | None -> ()
  | Some _ when c.state <> Established || c.negotiated -> ()
  | Some peer ->
    c.negotiated <- true;
    let wanted =
      let mine = c.local_params.TP.plugins_to_inject in
      let theirs = peer.TP.plugins_to_inject in
      List.fold_left
        (fun acc n -> if List.mem n acc then acc else acc @ [ n ])
        [] (mine @ theirs)
    in
    List.iter
      (fun name ->
        (* a plugin is activated on the connection only when both peers
           hold it (Section 3.4, outcome (a)); otherwise it is transferred
           for use on subsequent connections (outcome (b)) *)
        let peer_has = List.mem name peer.TP.supported_plugins in
        if Hashtbl.mem c.plugins name then begin
          if not peer_has then begin
            Log.info (fun m ->
                m "rolling back plugin %s: peer does not hold it" name);
            remove_plugin c name
          end
        end
        else if peer_has then
          match c.acquire_instance name with
          | Some inst -> (
            match attach_instance c inst with
            | _ -> Log.info (fun m -> m "injected local plugin %s" name)
            | exception Injection_failed e ->
              Log.warn (fun m -> m "failed to inject %s: %s" name e))
          | None ->
            (* not cached locally: ask the peer to provide it *)
            request_plugin_transfer c name)
      wanted;
    ignore (Dispatch.run_op c Protoop.plugin_negotiated [||])

(* Inject the locally available plugins this host wants on the connection
   (its own plugins_to_inject): local plugins are active from the start so
   e.g. the monitoring plugin records handshake PIs (Section 4.1). Peer
   requests are handled at negotiation time. *)
let inject_local_plugins c =
  List.iter
    (fun name ->
      if not (Hashtbl.mem c.plugins name) then
        match c.acquire_instance name with
        | Some inst -> (
          try ignore (attach_instance c inst)
          with Injection_failed e ->
            Log.warn (fun m -> m "failed to inject %s: %s" name e))
        | None -> ())
    c.local_params.TP.plugins_to_inject

(* ------------------------------------------------------------------ *)
(* Plugin exchange over the connection (Section 3.4)                    *)
(* ------------------------------------------------------------------ *)

let handle_plugin_validate c ~name ~formula =
  match c.provide_plugin name ~formula with
  | Some (compressed, proof) ->
    Log.info (fun m ->
        m "providing plugin %s (%d bytes compressed, %d bytes of proofs)" name
          (String.length compressed) (String.length proof));
    (* authentication paths are longer than an MTU, so the proof bundle
       travels on the plugin stream ahead of the bytecode: a small
       PLUGIN_PROOF frame announces it *)
    Queue.push
      (F.Plugin_proof { plugin = name; proof = "stream" })
      c.ctrl;
    let sb = Quic.Sendbuf.create () in
    let framed = Buffer.create (String.length proof + String.length compressed + 4) in
    Buffer.add_int32_be framed (Int32.of_int (String.length proof));
    Buffer.add_string framed proof;
    Buffer.add_string framed compressed;
    Quic.Sendbuf.write sb (Buffer.contents framed);
    Quic.Sendbuf.finish sb;
    Hashtbl.replace c.plugin_out name sb;
    wake c
  | None ->
    Queue.push (F.Plugin_proof { plugin = name; proof = "" }) c.ctrl;
    wake c

let plugin_in_buffers : (string, Buffer.t) Hashtbl.t = Hashtbl.create 8

let buffer_key c name = Printf.sprintf "%Lx/%s" c.local_cid name

let handle_plugin_chunk c ~name ~offset ~fin ~data =
  let rb =
    match Hashtbl.find_opt c.plugin_in name with
    | Some rb -> rb
    | None ->
      let rb = Quic.Recvbuf.create () in
      Hashtbl.replace c.plugin_in name rb;
      rb
  in
  Quic.Recvbuf.insert rb ~offset:(Int64.to_int offset) ~fin data;
  let acc =
    match Hashtbl.find_opt plugin_in_buffers (buffer_key c name) with
    | Some b -> b
    | None ->
      let b = Buffer.create 4096 in
      Hashtbl.replace plugin_in_buffers (buffer_key c name) b;
      b
  in
  Buffer.add_string acc (Quic.Recvbuf.read rb);
  if Quic.Recvbuf.is_finished rb then begin
    Hashtbl.remove plugin_in_buffers (buffer_key c name);
    Hashtbl.remove c.plugin_in name;
    let blob = Buffer.contents acc in
    let proof, compressed =
      if String.length blob >= 4 then begin
        let plen = Int32.to_int (String.get_int32_be blob 0) in
        if plen >= 0 && 4 + plen <= String.length blob then
          ( String.sub blob 4 plen,
            String.sub blob (4 + plen) (String.length blob - 4 - plen) )
        else ("", blob)
      end
      else ("", blob)
    in
    match Compress.Lzss.decompress compressed with
    | exception Compress.Lzss.Corrupt ->
      Log.warn (fun m -> m "plugin %s: corrupt transfer" name)
    | bytes -> (
      match Plugin.deserialize bytes with
      | exception Plugin.Malformed msg ->
        Log.warn (fun m -> m "plugin %s: malformed (%s)" name msg)
      | plugin ->
        if plugin.Plugin.name <> name then
          Log.warn (fun m -> m "plugin name mismatch in transfer")
        else if c.verify_plugin ~name ~bytes ~proof then begin
          Log.info (fun m ->
              m "plugin %s verified and stored in the local cache" name);
          (* Remote plugins are not activated on the current connection but
             offered to subsequent ones (Section 3.4). *)
          c.on_plugin_received plugin
        end
        else Log.warn (fun m -> m "plugin %s failed proof verification" name))
  end
