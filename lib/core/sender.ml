(* The send path: stream table, packet building blocks, and the packet
   assembly loop that fills each packet from acknowledgments, control
   frames, crypto data, plugin transfers, plugin-reserved frames and
   stream data under the Section 2.3 scheduler guarantees. *)

module F = Quic.Frame
module Sim = Netsim.Sim
module Net = Netsim.Net
open Conn_types

let run_op = Dispatch.run_op

(* ------------------------------------------------------------------ *)
(* Packet building blocks                                              *)
(* ------------------------------------------------------------------ *)

let header_overhead c =
  ignore c;
  (* short header + tag; long headers add 8, accounted when used *)
  1 + 8 + 4 + Quic.Packet.tag_len

let payload_capacity c ~long =
  c.cfg.mtu - header_overhead c - (if long then 8 else 0)

(* ACK frames carry at most this many ranges on the wire; the receiver
   tracks more internally (losses leave permanent holes since
   retransmissions take fresh packet numbers). Too small a cap starves the
   sender of ack information during burst-loss episodes and produces
   spurious retransmissions. *)
let max_wire_ack_ranges = 64

let ack_frame_of c =
  match Quic.Ackranges.ranges c.acks with
  | [] -> None
  | all ->
    let ranges = List.filteri (fun i _ -> i < max_wire_ack_ranges) all in
    let largest = (List.hd ranges).Quic.Ackranges.last in
    (* how long we sat on the largest packet before acknowledging it, so
       the peer's RTT sample excludes our delayed-ack timer *)
    let delay_us =
      let default c _ =
        Int64.div (Int64.sub (Sim.now c.sim) c.largest_recv_at) 1000L
      in
      run_op c Protoop.compute_ack_delay ~default [||]
    in
    Some
      (F.Ack
         {
           largest;
           delay_us = Int64.max 0L delay_us;
           ranges =
             List.map
               (fun r -> (r.Quic.Ackranges.first, r.Quic.Ackranges.last))
               ranges;
         })

let stream_has_pending c =
  Hashtbl.fold (fun _ s acc -> acc || Quic.Sendbuf.has_pending s.sendb) c.streams false

let plugin_chunks_pending c =
  Hashtbl.fold (fun _ sb acc -> acc || Quic.Sendbuf.has_pending sb) c.plugin_out false

let core_has_data c =
  stream_has_pending c
  || Quic.Sendbuf.has_pending c.crypto_send
  || plugin_chunks_pending c
  || (not (Queue.is_empty c.ctrl))
  || c.max_data_frame_pending

let something_to_send c =
  c.ack_needed || core_has_data c || Scheduler.has_pending c.sched

(* ------------------------------------------------------------------ *)
(* Stream table                                                        *)
(* ------------------------------------------------------------------ *)

let get_stream c id =
  match Hashtbl.find_opt c.streams id with
  | Some s -> s
  | None ->
    let s =
      {
        stream_id = id;
        sendb = Quic.Sendbuf.create ();
        recvb = Quic.Recvbuf.create ();
        max_stream_data_remote = c.local_params.Quic.Transport_params.initial_max_stream_data;
        max_stream_data_local = c.local_params.Quic.Transport_params.initial_max_stream_data;
        fin_delivered = false;
        flow_sent = 0;
      }
    in
    Hashtbl.replace c.streams id s;
    Queue.push id c.stream_rr;
    ignore (run_op c Protoop.stream_opened [| I (i64 id) |]);
    s

(* ------------------------------------------------------------------ *)
(* Built-in send policies                                              *)
(* ------------------------------------------------------------------ *)

let native_select_path c _ =
  (* lowest-id active path with congestion window available, else path 0 *)
  let n = Array.length c.paths in
  let rec find k =
    if k >= n then 0
    else
      let p = c.paths.(k) in
      if p.active && Quic.Cc.available p.cc > header_overhead c then k
      else find (k + 1)
  in
  i64 (find 0)

let conn_flow_allowance c = Int64.to_int (Int64.sub c.max_data_remote c.data_sent)

let native_schedule_next_stream c _ =
  let allowed_new = conn_flow_allowance c > 0 in
  let eligible id =
    match Hashtbl.find_opt c.streams id with
    | None -> false
    | Some s ->
      Quic.Sendbuf.has_retransmissions s.sendb
      || (Quic.Sendbuf.has_new s.sendb && allowed_new)
  in
  (* Rotate the queue at most once around: a chosen stream ends up at the
     back (it just got its turn) and a fruitless full rotation restores
     the original order — the same fairness as rotating a list, without
     its O(n²) appends. *)
  let n = Queue.length c.stream_rr in
  let rec rotate k =
    if k >= n then -1
    else begin
      let id = Queue.pop c.stream_rr in
      Queue.push id c.stream_rr;
      if eligible id then id else rotate (k + 1)
    end
  in
  i64 (rotate 0)

let native_set_spin_bit c _ =
  (* client inverts the last received spin value, server echoes it — the
     Spin Bit of [Trammell & Kuehlewind] that monitoring boxes observe *)
  (match c.role with
  | Client -> c.spin <- not c.last_spin_received
  | Server -> c.spin <- c.last_spin_received);
  0L

(* Stream frame wire overhead estimate: type + id + offset + length. *)
let stream_frame_overhead = 14

(* ------------------------------------------------------------------ *)
(* Packet assembly                                                     *)
(* ------------------------------------------------------------------ *)

let build_and_send_packet c =
  let pid = to_i (run_op c Protoop.select_path ~default:native_select_path [||]) in
  let p =
    match path c pid with Some p when p.active -> p | _ -> default_path c
  in
  let long = c.state = Handshaking in
  let capacity = payload_capacity c ~long in
  let overhead = header_overhead c + if long then 8 else 0 in
  let cc_room = Quic.Cc.available p.cc - overhead in
  (* Avoid runt packets: when the congestion window has less than a full
     packet of room and more data than that is waiting, hold ack-eliciting
     data until acknowledgments free window space. *)
  let pending_bytes =
    Hashtbl.fold
      (fun _ s acc -> acc + Quic.Sendbuf.pending_bytes s.sendb)
      c.streams
      (Quic.Sendbuf.pending_bytes c.crypto_send)
  in
  let ae_room =
    if cc_room >= capacity || pending_bytes <= max 0 cc_room then
      min capacity (max 0 cc_room)
    else 0
  in
  (* The packet is encoded as it is assembled: frames are written
     straight into a pooled wire buffer behind reserved header room, and
     stream/crypto/plugin payloads are blitted from their send buffers —
     no intermediate frame strings or payload Buffer. The wire image is
     byte-identical to the old serialize-then-protect path
     (differentially tested in test_datapath). *)
  let ptype = if long then Quic.Packet.Initial else Quic.Packet.One_rtt in
  let w = Quic.Writer.acquire () in
  Fun.protect ~finally:(fun () -> Quic.Writer.release w) @@ fun () ->
  let hoff =
    Quic.Packet.reserve_header w
      { Quic.Packet.ptype; spin = false; dcid = 0L; scid = 0L; pn = 0L }
  in
  let room = ref capacity in
  let room_ae = ref ae_room in
  let records = ref [] in
  let nframes = ref 0 in
  let any_ae = ref false in
  let account ~ae sz =
    incr nframes;
    room := !room - sz;
    if ae then begin
      room_ae := !room_ae - sz;
      any_ae := true
    end
  in
  let add ?reservation frame =
    F.write w frame;
    records := R_frame (frame, reservation) :: !records;
    let ae =
      match reservation with
      | Some r -> r.Scheduler.ack_eliciting
      | None -> F.is_ack_eliciting frame
    in
    account ~ae (F.size frame)
  in
  c.cur_has_stream <- false;
  ignore (run_op c Protoop.before_sending_packet [||]);
  (* acknowledgments ride along whenever owed *)
  let ack_included = ref false in
  if c.ack_needed then (
    match ack_frame_of c with
    | Some f when F.size f <= !room ->
      add f;
      ack_included := true
    | _ -> ());
  (* control frames *)
  let rec drain_ctrl () =
    if not (Queue.is_empty c.ctrl) then begin
      let f = Queue.peek c.ctrl in
      let sz = F.size f in
      let fits =
        if F.is_ack_eliciting f then sz <= !room_ae && sz <= !room
        else sz <= !room
      in
      if fits then begin
        ignore (Queue.pop c.ctrl);
        add f;
        drain_ctrl ()
      end
    end
  in
  drain_ctrl ();
  (* handshake data *)
  let rec drain_crypto () =
    if !room_ae > 16 && Quic.Sendbuf.has_pending c.crypto_send then begin
      match Quic.Sendbuf.next_span c.crypto_send ~max_len:(!room_ae - 12) with
      | Some (off, len, _fin) ->
        let offset = i64 off in
        F.write_crypto_header w ~offset ~len;
        let buf, dst_off = Quic.Writer.alloc w len in
        Quic.Sendbuf.blit c.crypto_send ~off ~len buf ~dst_off;
        records := R_crypto { offset = off; len } :: !records;
        account ~ae:true (F.crypto_header_size ~offset ~len + len);
        drain_crypto ()
      | None -> ()
    end
  in
  drain_crypto ();
  if c.max_data_frame_pending && !room_ae > 12 then begin
    add (F.Max_data c.max_data_local);
    c.max_data_frame_pending <- false
  end;
  (* plugin bytecode transfer (PLUGIN frames) *)
  let drain_plugin_chunks () =
    Hashtbl.iter
      (fun name sb ->
        let continue = ref true in
        while !continue && !room_ae > 64 && Quic.Sendbuf.has_pending sb do
          match
            Quic.Sendbuf.next_span sb
              ~max_len:(!room_ae - 32 - String.length name)
          with
          | Some (off, len, fin) ->
            let offset = i64 off in
            F.write_plugin_chunk_header w ~plugin:name ~offset ~fin ~len;
            let buf, dst_off = Quic.Writer.alloc w len in
            Quic.Sendbuf.blit sb ~off ~len buf ~dst_off;
            records :=
              R_plugin_data { plugin = name; offset = off; len; fin }
              :: !records;
            account ~ae:true
              (F.plugin_chunk_header_size ~plugin:name ~offset + len)
          | None -> continue := false
        done)
      c.plugin_out
  in
  drain_plugin_chunks ();
  (* plugin-reserved frames and stream data, interleaved so core frames
     keep their guaranteed share while plugins cannot be starved either *)
  let fill_plugins () =
    let budget = min !room !room_ae in
    if budget > 0 && Scheduler.has_pending c.sched then
      let taken =
        Scheduler.take c.sched ~max_frame:capacity ~budget ~core_has_data:false
      in
      List.iter
        (fun (r : Scheduler.reservation) ->
          let out = Bytes.make r.size '\000' in
          let written =
            to_i
              (run_op c Protoop.write_frame ~param:r.ftype
                 [| Buf (out, `Rw); I (i64 r.size); I r.cookie |])
          in
          Log.debug (fun m ->
              m "write_frame 0x%x wrote %d of %d" r.Scheduler.ftype written
                r.Scheduler.size);
          if written > 0 && written <= r.size then
            add ~reservation:r
              (F.Unknown { ftype = r.ftype; raw = Bytes.sub_string out 0 written }))
        taken
  in
  let fill_streams () =
    let continue = ref true in
    while !continue && !room_ae > stream_frame_overhead + 1 do
      let sid =
        to_i
          (run_op c Protoop.schedule_next_stream ~default:native_schedule_next_stream
             [||])
      in
      if sid < 0 then continue := false
      else begin
        let s = get_stream c sid in
        let cap = !room_ae - stream_frame_overhead in
        let cap =
          to_i
            (run_op c Protoop.stream_bytes_max
               ~default:(fun _ args -> match args.(0) with I v -> v | _ -> 0L)
               [| I (i64 cap) |])
        in
        let cap =
          if Quic.Sendbuf.has_retransmissions s.sendb then cap
          else min cap (conn_flow_allowance c)
        in
        if cap <= 0 then begin
          if conn_flow_allowance c <= 0 then
            ignore (run_op c Protoop.stream_data_blocked [| I (i64 sid) |]);
          continue := false
        end
        else
          match Quic.Sendbuf.next_span s.sendb ~max_len:cap with
          | None -> continue := false
          | Some (off, len, fin) ->
            let offset = i64 off in
            F.write_stream_header w ~id:sid ~offset ~fin ~len;
            let buf, dst_off = Quic.Writer.alloc w len in
            Quic.Sendbuf.blit s.sendb ~off ~len buf ~dst_off;
            records := R_stream { id = sid; offset = off; len; fin } :: !records;
            account ~ae:true (F.stream_header_size ~id:sid ~offset ~len + len);
            c.cur_has_stream <- true;
            let sent_end = off + len in
            if sent_end > s.flow_sent then begin
              c.data_sent <-
                Int64.add c.data_sent (i64 (sent_end - s.flow_sent));
              s.flow_sent <- sent_end
            end;
            if len = 0 && not fin then continue := false
      end
    done
  in
  let plugin_pending = Scheduler.has_pending c.sched in
  let core_data = stream_has_pending c in
  if plugin_pending && (c.plugin_turn || not core_data) then begin
    fill_plugins ();
    c.plugin_turn <- false
  end;
  fill_streams ();
  if Scheduler.has_pending c.sched then begin
    if core_data then c.plugin_turn <- true;
    fill_plugins ()
  end;
  if !nframes = 0 then false
  else begin
    let pn = c.next_pn in
    c.next_pn <- Int64.add c.next_pn 1L;
    ignore (run_op c Protoop.set_spin_bit ~default:native_set_spin_bit [||]);
    ignore (run_op c Protoop.header_prepared [| I pn |]);
    let header =
      { Quic.Packet.ptype; spin = c.spin; dcid = c.remote_cid;
        scid = c.local_cid; pn }
    in
    let key = if long then c.initial_key else c.key in
    Quic.Packet.patch_header w ~off:hoff header;
    let hsize = Quic.Packet.header_size header in
    let payload_len = Quic.Writer.length w - hsize in
    Quic.Packet.seal ~key w;
    let wire = Quic.Writer.contents w in
    let size = String.length wire in
    c.cur_pn <- pn;
    c.cur_path <- p.path_id;
    c.cur_size <- size;
    c.cur_payload <- "";
    c.cur_wire <- wire;
    c.cur_payload_off <- hsize;
    c.cur_payload_len <- payload_len;
    c.stats.pkts_sent <- c.stats.pkts_sent + 1;
    c.stats.bytes_sent <- c.stats.bytes_sent + size;
    c.largest_sent_at <- Sim.now c.sim;
    let ack_eliciting = !any_ae in
    (* RFC 9000 §10.1: the idle clock restarts on the *first* ack-eliciting
       send since the last receive, not on every send — otherwise PTO
       retransmissions into a dead link would keep the connection alive
       forever and a blackout would livelock instead of closing idle. *)
    if ack_eliciting && not c.ae_sent_since_recv then begin
      c.ae_sent_since_recv <- true;
      c.last_activity <- Sim.now c.sim
    end;
    if ack_eliciting then begin
      Hashtbl.replace c.sent_times pn (Sim.now c.sim);
      if Int64.rem pn 4096L = 0L then begin
        (* bound the retained history; collect then remove, without
           copying the whole table *)
        let horizon = Int64.sub pn 8192L in
        let stale =
          Hashtbl.fold
            (fun k _ acc -> if k < horizon then k :: acc else acc)
            c.sent_times []
        in
        List.iter (Hashtbl.remove c.sent_times) stale
      end;
      let path_seq =
        if p.path_id < Array.length c.next_path_seq then begin
          let s = c.next_path_seq.(p.path_id) in
          c.next_path_seq.(p.path_id) <- Int64.add s 1L;
          s
        end
        else pn
      in
      Hashtbl.replace c.sent pn
        {
          pn;
          sent_at = Sim.now c.sim;
          size;
          records = List.rev !records;
          path_id = p.path_id;
          path_seq;
          ack_eliciting;
        };
      let default _ _ =
        Quic.Cc.on_packet_sent p.cc ~size;
        0L
      in
      ignore (run_op c Protoop.cc_on_packet_sent ~default [| I (i64 size) |]);
      Recovery.set_loss_alarm c
    end;
    if !ack_included then begin
      c.ack_needed <- false;
      c.ae_since_ack <- 0;
      Engine.Timer_wheel.cancel c.wheel c.ack_alarm
    end;
    (* I6 tripwire: the normal send loop must never target an address
       still under §9 validation — candidates only ever receive dedicated
       probes (send_path_probe), so this stays 0 by construction *)
    (match c.candidate with
    | Some cand when cand.cand_addr = p.remote_addr ->
      c.stats.unvalidated_tx <- c.stats.unvalidated_tx + 1
    | _ -> ());
    Net.send c.net
      {
        Net.src = p.local_addr;
        dst = p.remote_addr;
        size = size + ip_udp_overhead;
        payload = Quic_packet wire;
      };
    ignore
      (run_op c Protoop.packet_was_sent
         [| I pn; I (i64 p.path_id); I (i64 size) |]);
    true
  end

let send_pending c =
  if is_open c then begin
    let budget = ref 512 in
    while !budget > 0 && is_open c && build_and_send_packet c do
      decr budget
    done
  end

let wake_impl c =
  if (not c.wake_pending) && is_open c then begin
    ignore (run_op c Protoop.set_next_wake_time [||]);
    c.wake_pending <- true;
    ignore
      (Sim.schedule c.sim ~delay:0L (fun () ->
           c.wake_pending <- false;
           send_pending c))
  end

let () = wake_ref := wake_impl

(* ------------------------------------------------------------------ *)
(* Path validation probes (RFC 9000 §9)                                *)
(* ------------------------------------------------------------------ *)

(* Build and send one dedicated probe packet, outside the normal send
   loop: not congestion-controlled, not recorded for retransmission (a
   lost probe is simply re-sent on the next trigger) and not counted
   against the idle clock — probes into a dead path must not keep the
   connection alive (§10.1). Returns the datagram size incl. overhead. *)
let send_probe_packet c ~ptype ~dcid ~scid ~dst frames =
  let w = Quic.Writer.acquire () in
  Fun.protect ~finally:(fun () -> Quic.Writer.release w) @@ fun () ->
  let pn = c.next_pn in
  c.next_pn <- Int64.add pn 1L;
  let header = { Quic.Packet.ptype; spin = c.spin; dcid; scid; pn } in
  let hoff = Quic.Packet.reserve_header w header in
  List.iter (F.write w) frames;
  Quic.Packet.patch_header w ~off:hoff header;
  let key = if ptype = Quic.Packet.One_rtt then c.key else c.initial_key in
  Quic.Packet.seal ~key w;
  let wire = Quic.Writer.contents w in
  c.stats.pkts_sent <- c.stats.pkts_sent + 1;
  c.stats.bytes_sent <- c.stats.bytes_sent + String.length wire;
  c.stats.path_probes <- c.stats.path_probes + 1;
  let size = String.length wire + ip_udp_overhead in
  Net.send c.net
    { Net.src = (default_path c).local_addr; dst; size;
      payload = Quic_packet wire };
  size

(* Pull owed PATH_RESPONSEs out of the control queue: §9.3 requires a
   response to return to the address its challenge came from, which for
   a candidate is not the current path. *)
let drain_path_responses c =
  let keep = Queue.create () in
  let resp = ref [] in
  Queue.iter
    (fun f ->
      match f with
      | F.Path_response _ -> resp := f :: !resp
      | f -> Queue.push f keep)
    c.ctrl;
  Queue.clear c.ctrl;
  Queue.transfer keep c.ctrl;
  List.rev !resp

(* Probe an unvalidated candidate address: PATH_CHALLENGE (plus any owed
   PATH_RESPONSEs) in a dedicated short-header packet, addressed with the
   spare CID earmarked for rotation. Clamped by §8.1 anti-amplification:
   at most 3× the bytes the candidate has sent us. *)
let send_path_probe c (cand : path_candidate) =
  let responses = drain_path_responses c in
  let frames = F.Path_challenge cand.challenge :: responses in
  let est =
    List.fold_left
      (fun acc f -> acc + F.size f)
      (13 + Quic.Packet.tag_len + ip_udp_overhead)
      frames
  in
  if cand.cand_tx + est > 3 * cand.cand_rx then
    (* out of amplification credit: hold the responses for the next
       trigger, once the candidate has sent us more bytes *)
    List.iter (fun f -> Queue.push f c.ctrl) responses
  else begin
    let dcid =
      match cand.rotate_to with Some (_, cid) -> cid | None -> c.remote_cid
    in
    let size =
      send_probe_packet c ~ptype:Quic.Packet.One_rtt ~dcid ~scid:c.local_cid
        ~dst:cand.cand_addr frames
    in
    cand.cand_tx <- cand.cand_tx + size;
    cand.probes <- cand.probes + 1;
    cand.last_probe_at <- Sim.now c.sim
  end

(* Client-side stall escape: consecutive PTOs with the migration
   machinery enabled suggest the 4-tuple died under us — a NAT silently
   rebound behind a stateful firewall that now blackholes our short
   headers. Rotate to a spare CID (at most once per stall episode, §9.5)
   and revalidate with a long-header PATH_CHALLENGE: the long header
   re-opens stateful-firewall pinholes and names the CID pair of the new
   flow. Rotation is best-effort: with the spare pool momentarily drained
   (replenishment frames may themselves be stuck behind the stall) the
   probe still goes out under the current CID — going dark would turn a
   rebinding into a death sentence. *)
let rotate_and_reprobe c =
  if
    c.role = Client && c.cfg.cid_pool > 0
    && (c.state = Established || c.state = Handshaking)
  then begin
    let now = Sim.now c.sim in
    let pto = Quic.Rtt.pto (default_path c).rtt in
    if Int64.sub now c.last_reprobe_at >= pto then begin
      (* at most one rotation per stall episode (§9.5) *)
      if c.last_rotate_at < c.last_activity then begin
        (match adoptable_spare c with
        | None -> ()
        | Some pair -> adopt_remote_cid c pair);
        c.last_rotate_at <- now
      end;
      c.last_reprobe_at <- now;
      let scid =
        match c.local_cids with (_, cid) :: _ -> cid | [] -> c.local_cid
      in
      Log.debug (fun m ->
          m "reprobe dcid=%Lx scid=%Lx" c.remote_cid scid);
      ignore
        (send_probe_packet c ~ptype:Quic.Packet.Handshake ~dcid:c.remote_cid
           ~scid ~dst:(default_path c).remote_addr
           [ F.Path_challenge (next_challenge c) ])
    end
  end

let () = reprobe_ref := rotate_and_reprobe
