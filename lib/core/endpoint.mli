(** A PQUIC endpoint: binds network addresses, demultiplexes incoming
    packets to connections by destination CID, accepts new connections
    (server role) and owns the node-local plugin machinery — the local
    cache of available plugins and the cross-connection PRE cache of
    Section 2.5. *)

type t = {
  sim : Netsim.Sim.t;
  net : Netsim.Net.t;
  cfg : Connection.config;
  addr : Netsim.Net.addr;
  mutable extra_addrs : Netsim.Net.addr list;
  conns : (int64, Connection.t) Hashtbl.t;
  available : (string, Plugin.t) Hashtbl.t;
  pre_cache : (string, Connection.instance Queue.t) Hashtbl.t;
  mutable outstanding : (Connection.t * Connection.instance) list;
  rng : Netsim.Rng.t;
  mutable prover : name:string -> formula:string -> string option;
  mutable verifier : name:string -> bytes:string -> proof:string -> bool;
  mutable on_connection : Connection.t -> unit;
  mutable plugins_to_inject : string list;
  mutable cache_hits : int;
  mutable cache_misses : int;
  tweak_params : Quic.Transport_params.t -> Quic.Transport_params.t;
      (** final say on our transport parameters (e.g. a chaos harness
          shrinking idle_timeout); applied when connections are built *)
}

val create :
  ?cfg:Connection.config ->
  ?extra_addrs:Netsim.Net.addr list ->
  ?tweak_params:(Quic.Transport_params.t -> Quic.Transport_params.t) ->
  sim:Netsim.Sim.t ->
  net:Netsim.Net.t ->
  addr:Netsim.Net.addr ->
  seed:int64 ->
  unit ->
  t

val add_plugin : t -> Plugin.t -> unit
(** Make a plugin available in the node's local plugin cache. *)

val has_plugin : t -> string -> bool
val supported_plugins : t -> string list

val acquire_instance : t -> string -> Connection.instance option
(** Fetch an injectable instance: cached PREs when available (the
    Section 2.5 fast path), otherwise a fresh build. *)

val provide_plugin : t -> string -> formula:string -> (string * string) option
(** Serve a plugin to a requesting peer: (compressed bytecode, proof). *)

val handle_datagram : t -> Netsim.Net.datagram -> unit

val listen : t -> unit
(** Bind all our addresses so packets reach the demultiplexer. *)

val connect :
  ?plugins_to_inject:string list -> t -> remote_addr:Netsim.Net.addr ->
  Connection.t

val connection_count : t -> int
