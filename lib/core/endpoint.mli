(** A PQUIC endpoint: binds network addresses, demultiplexes incoming
    packets to connections by destination CID (full-CID-keyed O(1)
    routing via {!Engine.Conn_table}), accepts new connections (server
    role) and fronts the node-scope plugin machinery ({!Node}) — the
    local cache of available plugins and the cross-connection PRE cache
    of Section 2.5. Several endpoints created with the same [node] share
    one plugin cache. *)

type t = {
  sim : Netsim.Sim.t;
  net : Netsim.Net.t;
  cfg : Connection.config;
  addr : Netsim.Net.addr;
  mutable extra_addrs : Netsim.Net.addr list;
  conns : Connection.t Engine.Conn_table.t;
      (** every CID a connection answers to maps to it; retirement
          removes exactly that key *)
  node : Node.t;
  rng : Netsim.Rng.t;
  mutable prover : name:string -> formula:string -> string option;
  mutable verifier : name:string -> bytes:string -> proof:string -> bool;
  mutable on_connection : Connection.t -> unit;
  mutable plugins_to_inject : string list;
  mutable accepted : int;  (** server connections created by the accept path *)
  tweak_params : Quic.Transport_params.t -> Quic.Transport_params.t;
      (** final say on our transport parameters (e.g. a chaos harness
          shrinking idle_timeout); applied when connections are built *)
}

val create :
  ?cfg:Connection.config ->
  ?extra_addrs:Netsim.Net.addr list ->
  ?node:Node.t ->
  ?tweak_params:(Quic.Transport_params.t -> Quic.Transport_params.t) ->
  sim:Netsim.Sim.t ->
  net:Netsim.Net.t ->
  addr:Netsim.Net.addr ->
  seed:int64 ->
  unit ->
  t

val add_plugin : t -> Plugin.t -> unit
(** Make a plugin available in the node's local plugin cache. *)

val has_plugin : t -> string -> bool
val supported_plugins : t -> string list

val acquire_instance : t -> string -> Connection.instance option
(** Fetch an injectable instance: cached PREs when available (the
    Section 2.5 fast path), otherwise a fresh build. *)

val cache_hits : t -> int
(** Instance-cache hits of the endpoint's node (see {!Node.counters}). *)

val cache_misses : t -> int

val provide_plugin : t -> string -> formula:string -> (string * string) option
(** Serve a plugin to a requesting peer: (compressed bytecode, proof). *)

val setup_conn : t -> Connection.t -> unit
(** Register a connection in the demux table and wire its endpoint hooks
    (CID issue/retire, plugin provisioning). Exposed for the server
    engine; [connect] and the accept path call it themselves. *)

val accept_initial :
  t -> Netsim.Net.datagram -> string -> dcid:int64 -> unit
(** Accept path: authenticate an Initial to an unknown CID and create
    the server-side connection. Exposed for the server engine. *)

val handle_datagram : t -> Netsim.Net.datagram -> unit

val listen : t -> unit
(** Bind all our addresses so packets reach the demultiplexer. *)

val connect :
  ?plugins_to_inject:string list -> t -> remote_addr:Netsim.Net.addr ->
  Connection.t

val connection_count : t -> int
