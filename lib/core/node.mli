(** Node-scope plugin machinery, shared by every endpoint of a host.

    Owns the local cache of available plugins and the cross-connection
    instance (PRE) cache of Section 2.5. Historically both lived
    per-[Endpoint]; lifting them to node scope means a host with many
    listening endpoints — or a server engine with sharded accept paths —
    verifies, compiles and instantiates each distinct plugin once, and
    recycled instances are reusable by any connection on the node. The
    compiled-program layer below this (bytecode digest → verified + jitted
    program, see {!Pre.cache_counters}) is process-global already; this
    module adds the instance layer (plugin name → wiped, reusable
    instances) with hit/miss/evict accounting. *)

type t = {
  available : (string, Plugin.t) Hashtbl.t;
  instances : (string, Connection.instance Queue.t) Hashtbl.t;
      (** recycled instances by plugin name, ready for re-attachment *)
  mutable outstanding : (Connection.t * Connection.instance) list;
      (** instances bound to live connections, reclaimed by {!recycle} *)
  mutable instance_capacity : int;  (** cached instances kept per plugin *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

val create : ?instance_capacity:int -> unit -> t
(** [instance_capacity] bounds cached instances per plugin (default 256). *)

val add_plugin : t -> Plugin.t -> unit
val has_plugin : t -> string -> bool
val find_plugin : t -> string -> Plugin.t option
val supported_plugins : t -> string list

val recycle : t -> unit
(** Reclaim instances whose connection closed; failed connections do not
    recycle (a misbehaving plugin's PREs are discarded). *)

val acquire_instance :
  t -> ?bind:Connection.t -> string -> Connection.instance option
(** Fetch an injectable instance: a cached one when available (no
    verification, no compilation — the Section 2.5 fast path), otherwise
    a fresh build of a locally available plugin. With [bind] the
    instance is tracked as outstanding against that connection and
    reclaimed by {!recycle} when it closes. *)

type counters = { hits : int; misses : int; evictions : int; cached : int }

val counters : t -> counters
