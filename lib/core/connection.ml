(* The PQUIC connection engine — orchestration core.

   A QUIC connection whose workflow is expressed as a succession of
   protocol operations ([Protoop]); each operation dispatches through a
   registry where protocol plugins may have replaced the default behaviour
   or attached passive pre/post pluglets. The engine is layered:
   [Conn_types] owns the shared records, [Dispatch] the protoop registry
   and hot-path dispatch, [Host_api] the PRE↔host helper boundary,
   [Recovery] RTT/ACK/loss handling, [Plugin_host] the plugin lifecycle
   and exchange, [Sender] the packet assembly loop. This module wires the
   layers together: construction, handshake, the receive path and the
   application interface. It re-exports the shared types and the plugin
   entry points, so external code addresses the whole engine as
   [Pquic.Connection].

   Simplifications versus draft-14 are documented in DESIGN.md; the main
   one is a single packet-number space shared by all paths (per-path
   congestion control and RTT are kept, which is what the multipath
   evaluation exercises). *)

module F = Quic.Frame
module TP = Quic.Transport_params
module Sim = Netsim.Sim
module Net = Netsim.Net

include Conn_types

(* Layered engine entry points re-exported on the connection facade. *)
let run_op = Dispatch.run_op
let register_native = Dispatch.register_native
let call_external = Dispatch.call_external

exception Injection_failed = Plugin_host.Injection_failed

let build_instance = Plugin_host.build_instance
let attach_instance = Plugin_host.attach_instance
let inject_plugin = Plugin_host.inject_plugin
let remove_plugin = Plugin_host.remove_plugin
let kill_plugin = Plugin_host.kill_plugin
let inject_local_plugins = Plugin_host.inject_local_plugins

(* ------------------------------------------------------------------ *)
(* Idle timeout                                                        *)
(* ------------------------------------------------------------------ *)

module TW = Engine.Timer_wheel

(* Idle timeout (the idle_timeout transport parameter): the connection
   closes silently when nothing authenticated arrives for the negotiated
   period. Activity rearms lazily: the alarm checks the last-activity
   stamp when it fires rather than being rescheduled per packet. Armed
   from connection creation so that a peer that never answers — or a
   blackout swallowing every packet — still terminates the connection:
   per RFC 9000 §10.1 the clock restarts on receipt and on the first
   ack-eliciting send after receiving, NOT on every retransmission, so
   capped PTO probes cannot keep a dead connection alive forever. *)
let arm_idle_alarm c =
  if (not (TW.is_armed c.idle_alarm)) && is_open c then begin
    let period =
      let ours = c.local_params.TP.idle_timeout_ms in
      let theirs =
        match c.peer_params with
        | Some p -> p.TP.idle_timeout_ms
        | None -> ours
      in
      Sim.of_ms (float_of_int (min ours theirs))
    in
    if period > 0L then begin
      c.idle_period <- period;
      TW.arm c.wheel c.idle_alarm ~at:(Int64.add c.last_activity period)
    end
  end

(* Fire callback, bound once at creation (the period the old per-arm
   closure captured lives in [c.idle_period]). *)
let on_idle_alarm c =
  if is_open c then
    if Int64.sub (Sim.now c.sim) c.last_activity >= c.idle_period then begin
      ignore (run_op c Protoop.idle_timeout_event [||]);
      c.state <- Closed;
      c.close_reason <- "idle timeout";
      TW.cancel c.wheel c.loss_alarm;
      TW.cancel c.wheel c.ack_alarm;
      ignore (run_op c Protoop.connection_closed [||]);
      c.on_closed ()
    end
    else arm_idle_alarm c

(* Downlink-stall watchdog (client with spare CIDs only): a pure receiver
   has nothing in flight, so a middlebox silently blackholing the return
   path never trips the PTO machinery — the connection would ride
   straight into the idle timeout. Watch for receive silence a few PTOs
   long and escalate to the same rotate-and-reprobe escape the RTO path
   uses. Armed while Handshaking too (RFC 9002 §6.2.2.1 in spirit): a
   client whose crypto is fully acked is a pure receiver mid-handshake,
   and behind a short-lived NAT binding the server's reply can only get
   through if the client keeps sending. Never armed with cid_pool = 0,
   so legacy runs see no new events. *)
let arm_stall_alarm c =
  if
    c.cfg.cid_pool > 0 && c.role = Client
    && (not (TW.is_armed c.stall_alarm))
    && (c.state = Established || c.state = Handshaking)
  then begin
    let pto = Quic.Rtt.pto (default_path c).rtt in
    let period = Int64.mul 3L pto in
    let at =
      let target = Int64.add c.last_activity period in
      (* re-arms during an ongoing stall must not busy-loop on the stale
         activity clock *)
      let floor = Int64.add (Sim.now c.sim) pto in
      if target > floor then target else floor
    in
    c.stall_period <- period;
    TW.arm c.wheel c.stall_alarm ~at
  end

let on_stall_alarm c =
  if c.state = Established || c.state = Handshaking then begin
    if Int64.sub (Sim.now c.sim) c.last_activity >= c.stall_period then
      !reprobe_ref c;
    arm_stall_alarm c
  end

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let create ~sim ~net ~cfg ~role ~local_addr ~remote_addr ~local_cid ~remote_cid
    ~local_params () =
  let path0 =
    {
      path_id = 0;
      local_addr;
      remote_addr;
      cc = Quic.Cc.create ~initial_window:cfg.initial_window ();
      rtt = Quic.Rtt.create ();
      active = true;
      lost_span_start = 0L;
      lost_span_end = 0L;
      lost_span_valid = false;
    }
  in
  let c =
    {
      sim;
      net;
      cfg;
      role;
      state = Handshaking;
      local_cid;
      remote_cid;
      initial_key;
      key = 0L;
      paths = [| path0 |];
      local_cids = [ (0L, local_cid) ];
      cid_seq = 1L;
      remote_spares = [];
      remote_cid_seq = 0L;
      candidate = None;
      challenge_ctr = 0L;
      last_reprobe_at = 0L;
      last_rotate_at = 0L;
      gen_cid =
        (* standalone fallback: a LCG walk from the handshake CID; the
           endpoint overrides this with its own RNG so issued CIDs land
           in its demux table *)
        (let ctr = ref local_cid in
         fun () ->
           ctr :=
             Int64.add
               (Int64.mul !ctr 6364136223846793005L)
               1442695040888963407L;
           !ctr);
      on_cid_issued = ignore;
      on_cid_retired = ignore;
      next_pn = 0L;
      sent = Hashtbl.create (if cfg.lean then 8 else 512);
      ack_watermark = 0L;
      largest_acked = -1L;
      largest_acked_per_path = Array.make 8 (-1L);
      next_path_seq = Array.make 8 0L;
      largest_sent_at = 0L;
      sent_times = Hashtbl.create (if cfg.lean then 16 else 1024);
      pto_backoff = 0;
      wheel = TW.shared sim;
      loss_alarm = TW.alarm (fun () -> ());
      ack_alarm = TW.alarm (fun () -> ());
      idle_alarm = TW.alarm (fun () -> ());
      stall_alarm = TW.alarm (fun () -> ());
      idle_period = 0L;
      stall_period = 0L;
      last_activity = Sim.now sim;
      ae_sent_since_recv = false;
      acks = Quic.Ackranges.create ();
      ack_needed = false;
      ae_since_ack = 0;
      largest_recv = -1L;
      largest_recv_at = 0L;
      last_spin_received = false;
      spin = false;
      streams = Hashtbl.create 8;
      stream_rr = Queue.create ();
      crypto_send = Quic.Sendbuf.create ();
      crypto_recv = Quic.Recvbuf.create ();
      crypto_acc = Buffer.create 256;
      crypto_done = false;
      max_data_local = local_params.TP.initial_max_data;
      max_data_remote = TP.default.TP.initial_max_data;
      data_sent = 0L;
      data_received = 0L;
      max_data_frame_pending = false;
      local_params;
      peer_params = None;
      ctrl = Queue.create ();
      po = Pluginop.Plugin_host.create_state ~host:Host_api.host ();
      sched = Scheduler.create ~core_fraction:cfg.core_fraction ();
      plugin_turn = false;
      cur_pn = -1L;
      cur_path = 0;
      cur_size = 0;
      cur_payload = "";
      cur_wire = "";
      cur_payload_off = 0;
      cur_payload_len = 0;
      cur_has_stream = false;
      cur_ecn_ce = false;
      recover_depth = 0;
      rx_scratch = None;
      plugin_out = Hashtbl.create 4;
      plugin_in = Hashtbl.create 4;
      plugin_proofs = [];
      provide_plugin = (fun _ ~formula:_ -> None);
      verify_plugin = (fun ~name:_ ~bytes:_ ~proof:_ -> false);
      on_plugin_received = ignore;
      acquire_instance = (fun _ -> None);
      on_stream_data = (fun _ _ ~fin:_ -> ());
      on_message = ignore;
      on_established = ignore;
      on_closed = ignore;
      stats = make_stats ();
      created_at = Sim.now sim;
      established_at = None;
      wake_pending = false;
      negotiated = false;
      close_reason = "";
    }
  in
  TW.set_fire c.loss_alarm (fun () -> Recovery.on_loss_alarm c);
  TW.set_fire c.idle_alarm (fun () -> on_idle_alarm c);
  TW.set_fire c.stall_alarm (fun () -> on_stall_alarm c);
  TW.set_fire c.ack_alarm (fun () ->
      if c.ack_needed && is_open c then Sender.send_pending c);
  ignore (run_op c Protoop.connection_init [||]);
  arm_idle_alarm c;
  c

(* ------------------------------------------------------------------ *)
(* CID issuance (RFC 9000 §5.1.1)                                      *)
(* ------------------------------------------------------------------ *)

(* Mint a spare CID for the peer: register it locally (and with the
   endpoint demux via [on_cid_issued]) and queue the NEW_CONNECTION_ID
   announcement. *)
let issue_new_cid c =
  let seq = c.cid_seq in
  c.cid_seq <- Int64.add c.cid_seq 1L;
  let cid = c.gen_cid () in
  c.local_cids <- (seq, cid) :: c.local_cids;
  c.stats.cids_issued <- c.stats.cids_issued + 1;
  c.on_cid_issued cid;
  Queue.push (F.New_connection_id { seq; cid }) c.ctrl;
  ignore (run_op c Protoop.new_connection_id [| I seq; I cid |])

(* ------------------------------------------------------------------ *)
(* Handshake                                                           *)
(* ------------------------------------------------------------------ *)

let establish c =
  if c.state = Handshaking then begin
    c.state <- Established;
    c.established_at <- Some (Sim.now c.sim);
    ignore (run_op c Protoop.handshake_complete [||]);
    ignore (run_op c Protoop.connection_established [||]);
    Plugin_host.negotiate_plugins c;
    c.on_established ();
    for _ = 1 to c.cfg.cid_pool do issue_new_cid c done;
    arm_stall_alarm c;
    wake c
  end

let encode_params params =
  let blob = TP.encode params in
  let buf = Buffer.create (String.length blob + 2) in
  Buffer.add_uint16_be buf (String.length blob);
  Buffer.add_string buf blob;
  Buffer.contents buf

let try_handshake_progress c =
  if not c.crypto_done then begin
    Buffer.add_string c.crypto_acc (Quic.Recvbuf.read c.crypto_recv);
    let blob = Buffer.contents c.crypto_acc in
    begin
      if String.length blob >= 2 then begin
        let len = String.get_uint16_be blob 0 in
        if String.length blob >= 2 + len then begin
          let params = TP.decode (String.sub blob 2 len) in
          c.peer_params <- Some params;
          c.crypto_done <- true;
          c.max_data_remote <- params.TP.initial_max_data;
          ignore (run_op c Protoop.process_transport_params [||]);
          match c.role with
          | Server ->
            (* answer with our transport parameters and HANDSHAKE_DONE *)
            let blob = encode_params c.local_params in
            ignore (run_op c Protoop.write_transport_params [||]);
            Quic.Sendbuf.write c.crypto_send blob;
            Queue.push F.Handshake_done c.ctrl;
            establish c
          | Client -> Plugin_host.negotiate_plugins c
        end
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Frame processing                                                     *)
(* ------------------------------------------------------------------ *)

(* Deliver [data] (already drained from the reassembly buffer, or handed
   straight through by the in-order fast path) to the application, with
   the data_received / stream_closed protoop anchors around it. *)
let deliver_stream_payload c s data =
  let finished = Quic.Recvbuf.is_finished s.recvb && not s.fin_delivered in
  if data <> "" || finished then begin
    if finished then s.fin_delivered <- true;
    ignore
      (run_op c Protoop.data_received
         [| I (i64 s.stream_id); I (i64 (String.length data)) |]);
    c.on_stream_data s.stream_id data ~fin:finished;
    if finished then
      ignore (run_op c Protoop.stream_closed [| I (i64 s.stream_id) |])
  end

let deliver_stream_data c s =
  deliver_stream_payload c s (Quic.Recvbuf.read s.recvb)

let maybe_update_max_data c =
  if Int64.to_float c.data_received > 0.5 *. Int64.to_float c.max_data_local
  then begin
    let default c _ =
      c.max_data_local <-
        Int64.add c.max_data_local c.local_params.TP.initial_max_data;
      c.max_data_frame_pending <- true;
      0L
    in
    ignore (run_op c Protoop.update_max_data ~default [||]);
    wake c
  end

(* PATH_RESPONSE matched the candidate's challenge: the new address is
   validated (RFC 9000 §9.3) — move the default path there and, when a
   spare CID was earmarked, rotate the CID we address the peer with
   (§9.5) while retiring the old one. If another path already covers the
   address (multipath created it meanwhile), just drop the candidate. *)
let commit_candidate c cand =
  let already =
    Array.exists (fun p -> p.remote_addr = cand.cand_addr) c.paths
  in
  if not already then begin
    Log.info (fun m ->
        m "path validated: %d -> %d" (default_path c).remote_addr
          cand.cand_addr);
    (default_path c).remote_addr <- cand.cand_addr;
    match cand.rotate_to with
    | Some (seq, cid) when cid <> c.remote_cid && seq > c.remote_cid_seq ->
      adopt_remote_cid c (seq, cid)
    | _ -> ()
  end;
  c.candidate <- None;
  c.stats.paths_validated <- c.stats.paths_validated + 1;
  (* §9.4: the path changed under us — a backed-off loss timer aimed at
     the dead 4-tuple must not outlive it, or retransmissions fire long
     after the fresh NAT binding has expired again *)
  c.pto_backoff <- 0;
  Recovery.set_loss_alarm c;
  ignore (run_op c Protoop.validate_path [| I (i64 cand.cand_addr) |]);
  wake c

let process_core_frame c frame =
  match frame with
  | F.Padding _ | F.Ping -> ()
  | F.Ack ack -> Recovery.process_ack c ack
  | F.Crypto { offset; data } ->
    Quic.Recvbuf.insert c.crypto_recv ~offset:(Int64.to_int offset) ~fin:false
      data;
    try_handshake_progress c
  | F.Stream { id; offset; fin; data } ->
    c.cur_has_stream <- true;
    let s = Sender.get_stream c id in
    let before = Quic.Recvbuf.contiguous s.recvb in
    Quic.Recvbuf.insert s.recvb ~offset:(Int64.to_int offset) ~fin data;
    let after = Quic.Recvbuf.contiguous s.recvb in
    c.data_received <- Int64.add c.data_received (i64 (max 0 (after - before)));
    deliver_stream_data c s;
    maybe_update_max_data c
  | F.Max_data v -> if v > c.max_data_remote then c.max_data_remote <- v
  | F.Max_stream_data { id; max } ->
    let s = Sender.get_stream c id in
    if max > s.max_stream_data_remote then s.max_stream_data_remote <- max
  | F.Connection_close { reason; _ } ->
    if c.state <> Closed then begin
      c.state <- Closed;
      c.close_reason <- reason;
      TW.cancel c.wheel c.loss_alarm;
      TW.cancel c.wheel c.ack_alarm;
      ignore (run_op c Protoop.connection_closed [||]);
      c.on_closed ()
    end
  | F.Handshake_done -> if c.role = Client then establish c
  | F.Path_challenge v -> Queue.push (F.Path_response v) c.ctrl
  | F.Path_response v ->
    (match c.candidate with
    | Some cand when cand.challenge = v -> commit_candidate c cand
    | _ -> ());
    ignore (run_op c Protoop.validate_path [||])
  | F.New_connection_id { seq; cid } ->
    (* a spare the peer lets us rotate to; duplicates (retransmission,
       dup faults) and already-retired sequence numbers are dropped *)
    if
      c.cfg.cid_pool > 0 && cid <> c.remote_cid
      && seq > c.remote_cid_seq
      && not (List.exists (fun (s, _) -> s = seq) c.remote_spares)
    then c.remote_spares <- c.remote_spares @ [ (seq, cid) ]
  | F.Retire_connection_id seq -> (
    (* the peer stopped using one of our CIDs: drop it from the set (and
       the endpoint demux) and mint a replacement so its pool stays full *)
    match List.find_opt (fun (s, _) -> s = seq) c.local_cids with
    | None -> ()
    | Some (_, cid) ->
      c.local_cids <- List.filter (fun (s, _) -> s <> seq) c.local_cids;
      c.stats.cids_retired <- c.stats.cids_retired + 1;
      c.on_cid_retired cid;
      if c.cfg.cid_pool > 0 && is_open c then issue_new_cid c)
  | F.Plugin_validate { plugin; formula } ->
    Plugin_host.handle_plugin_validate c ~name:plugin ~formula
  | F.Plugin_proof { plugin; proof } ->
    c.plugin_proofs <- (plugin, proof) :: c.plugin_proofs
  | F.Plugin_chunk { plugin; offset; fin; data } ->
    Plugin_host.handle_plugin_chunk c ~name:plugin ~offset ~fin ~data
  | F.Unknown _ -> assert false (* handled by the caller via protoops *)

(* ------------------------------------------------------------------ *)
(* Receiving                                                            *)
(* ------------------------------------------------------------------ *)

(* The data-bearing frame views, processed straight out of the datagram:
   stream and crypto payloads cross into the reassembly buffers through
   [Recvbuf.insert_sub] — the single copy of the receive path. *)
let process_core_view c buf view =
  match view with
  | F.V_frame frame -> process_core_frame c frame
  | F.V_crypto { offset; off; len } ->
    Quic.Recvbuf.insert_sub c.crypto_recv ~offset:(Int64.to_int offset)
      ~fin:false buf ~off ~len;
    try_handshake_progress c
  | F.V_stream { id; offset; fin; off; len } ->
    c.cur_has_stream <- true;
    let s = Sender.get_stream c id in
    let offset = Int64.to_int offset in
    if Quic.Recvbuf.insert_inline s.recvb ~offset ~fin ~len then begin
      (* in-order arrival with nothing buffered ahead: the payload goes
         from the wire window to the application in this one copy,
         skipping the reassembly stage-and-read round trip *)
      c.data_received <- Int64.add c.data_received (i64 len);
      deliver_stream_payload c s (String.sub buf off len)
    end
    else begin
      let before = Quic.Recvbuf.contiguous s.recvb in
      Quic.Recvbuf.insert_sub s.recvb ~offset ~fin buf ~off ~len;
      let after = Quic.Recvbuf.contiguous s.recvb in
      c.data_received <-
        Int64.add c.data_received (i64 (max 0 (after - before)));
      deliver_stream_data c s
    end;
    maybe_update_max_data c
  | F.V_unknown _ -> assert false (* handled by the caller via protoops *)

(* Process the frames of a packet payload, given as the [off, limit)
   window of [buf] — the wire datagram on the normal path, the staged
   image on the FEC recovery path. Frames parse as views through a pooled
   [Reader]; plugin frames hand the pluglet a read-only sub-view of the
   shared wire region instead of a copied body. Returns whether any frame
   was ack-eliciting. *)
let process_payload c ~pn buf ~off ~limit =
  let r = Quic.Reader.acquire () in
  Quic.Reader.reset r buf ~pos:off ~limit;
  let wire_b = Bytes.unsafe_of_string buf in
  let ae = ref false in
  Fun.protect ~finally:(fun () -> Quic.Reader.release r) @@ fun () ->
  while (not (Quic.Reader.at_end r)) && is_open c do
    match F.parse_view r with
    | exception _ ->
      fail_connection c "malformed frame";
      Quic.Reader.seek r limit
    | F.V_unknown { ftype; off = foff; len = flen } ->
      if not (Dispatch.has_entry c Protoop.parse_frame (Some ftype)) then begin
        fail_connection c (Printf.sprintf "unknown frame type 0x%x" ftype);
        Quic.Reader.seek r limit
      end
      else begin
        let ret =
          to_i
            (run_op c Protoop.parse_frame ~param:ftype
               [| View (wire_b, foff, flen); I (i64 flen) |])
        in
        (* bit 28 of the parse result marks a non-ack-eliciting frame
           (MP_ACK-style); the low bits give the consumed length *)
        let non_ae = ret land 0x10000000 <> 0 in
        let consumed = ret land 0x0FFFFFFF in
        if consumed <= 0 || consumed > flen then begin
          if is_open c then
            fail_connection c
              (Printf.sprintf "plugin failed to parse frame 0x%x" ftype);
          Quic.Reader.seek r limit
        end
        else begin
          Log.debug (fun m -> m "plugin frame 0x%x consumed %d" ftype consumed);
          if Dispatch.is_running c Protoop.process_frame (Some ftype) then
            (* replaying a recovered packet from inside this very frame
               type's handler: a repair symbol can protect a packet that
               itself carries a repair symbol (stream data and FEC_RS
               frames share packets). Re-dispatching would be sanctioned
               as an op-graph loop, and the frame is redundant by
               construction — its window was covered by the symbol that
               recovered it — so it is dropped, not re-processed. *)
            Log.debug (fun m ->
                m "skipping recovered frame 0x%x (handler on op stack)" ftype)
          else begin
            if not non_ae then ae := true;
            ignore
              (run_op c Protoop.process_frame ~param:ftype
                 [| View (wire_b, foff, consumed); I (i64 consumed); I pn |])
          end;
          Quic.Reader.seek r (foff + consumed)
        end
      end
    | view ->
      if F.view_is_ack_eliciting view then ae := true;
      (* a handler tripping on inconsistent data (e.g. a FEC-recovered
         payload that dodged packet authentication) must fail the
         connection with a stated reason, never escape the engine *)
      (try
         ignore
           (run_op c Protoop.process_frame ~param:(F.view_type view)
              ~default:(fun c _ ->
                process_core_view c buf view;
                0L)
              [| I pn |])
       with exn ->
         c.stats.pkts_corrupt_discarded <- c.stats.pkts_corrupt_discarded + 1;
         fail_connection c
           (Printf.sprintf "frame processing trapped: %s"
              (Printexc.to_string exn)))
  done;
  !ae

(* A FEC plugin recovered a lost packet: [buf]'s [off, off+len) window is
   pn(4 bytes) || payload, staged in the connection's rx scratch pool and
   borrowed for the duration of this call. The packet is processed as if
   it had been received, and its number is acknowledged so the peer does
   not retransmit (QUIC-FEC behaviour). The replay swaps the current-
   packet scratch to the recovered image — as a view, so the payload
   string materializes only if a pluglet actually asks for it — and
   restores the interrupted packet's scratch afterwards. *)
let process_recovered c buf ~off ~len =
  if len >= 4 && c.recover_depth < 8 then begin
    let pn =
      Int64.logand (Int64.of_int32 (Bytes.get_int32_be buf off)) 0xffffffffL
    in
    if not (Quic.Ackranges.contains c.acks pn) then begin
      c.recover_depth <- c.recover_depth + 1;
      c.stats.frames_recovered <- c.stats.frames_recovered + 1;
      Quic.Ackranges.add c.acks pn;
      c.ack_needed <- true;
      let saved_pn = c.cur_pn
      and saved_payload = c.cur_payload
      and saved_wire = c.cur_wire
      and saved_off = c.cur_payload_off
      and saved_len = c.cur_payload_len in
      let image = Bytes.unsafe_to_string buf in
      c.cur_pn <- pn;
      c.cur_payload <- "";
      c.cur_wire <- image;
      c.cur_payload_off <- off + 4;
      c.cur_payload_len <- len - 4;
      ignore (process_payload c ~pn image ~off:(off + 4) ~limit:(off + len));
      c.cur_pn <- saved_pn;
      c.cur_payload <- saved_payload;
      c.cur_wire <- saved_wire;
      c.cur_payload_off <- saved_off;
      c.cur_payload_len <- saved_len;
      c.recover_depth <- c.recover_depth - 1;
      wake c
    end
  end

let () = process_recovered_ref := process_recovered

let schedule_ack_alarm c =
  if not (TW.is_armed c.ack_alarm) then
    TW.arm_delay c.wheel c.ack_alarm ~delay:(Sim.of_ms c.cfg.ack_delay_ms)

(* An authenticated packet arrived from an address no path covers, with
   the migration machinery enabled: start (or keep probing) a §9 path
   candidate instead of following the address blindly. [probe_scid] is
   the source CID of a long-header probe — the peer naming the CID it
   wants us to rotate to. *)
let note_new_source c ~src ~probe_scid ~dgsize =
  match c.candidate with
  | Some cand when cand.cand_addr = src ->
    cand.cand_rx <- cand.cand_rx + dgsize;
    let pto = Quic.Rtt.pto (default_path c).rtt in
    if Int64.sub (Sim.now c.sim) cand.last_probe_at >= pto then
      Sender.send_path_probe c cand
  | _ ->
    let rotate_to =
      match probe_scid with
      | Some scid when scid <> c.remote_cid -> (
        match
          List.find_opt
            (fun (s, cid) -> cid = scid && s > c.remote_cid_seq)
            c.remote_spares
        with
        | Some _ as named -> named
        | None ->
          (* the peer named a CID we have not seen announced (its
             NEW_CONNECTION_ID may still be in flight); the authenticated
             long header is proof of ownership, so adopt it under a
             synthetic next sequence number *)
          Some (Int64.add c.remote_cid_seq 1L, scid))
      | Some _ -> None
        (* the probe names the CID we already use: keep it — a stateful
           firewall on the new flow admits exactly the probe's CID pair,
           so switching to a different spare here would blackhole our
           challenge *)
      | None -> adoptable_spare c
    in
    let cand =
      {
        cand_addr = src;
        challenge = next_challenge c;
        rotate_to;
        probes = 0;
        last_probe_at = 0L;
        cand_rx = dgsize;
        cand_tx = 0;
      }
    in
    c.candidate <- Some cand;
    Log.info (fun m ->
        m "new source %d: validating (was %d)" src
          (default_path c).remote_addr);
    Sender.send_path_probe c cand

let receive_datagram_inner c (dg : Net.datagram) =
  if is_open c then begin
    ignore (run_op c Protoop.incoming_datagram [| I (i64 dg.Net.size) |]);
    let ce, payload_in =
      match dg.Net.payload with
      | Net.Ce inner -> (true, inner)
      | p -> (false, p)
    in
    let damage, payload_in =
      match payload_in with
      | Net.Corrupt (inner, descr) -> (Some descr, inner)
      | p -> (None, p)
    in
    match payload_in with
    | Quic_packet clean_wire -> (
      let wire =
        match damage with
        | None -> clean_wire
        | Some descr -> Net.corrupt_string descr clean_wire
      in
      let long = String.length wire > 0 && Char.code wire.[0] land 0x80 <> 0 in
      let key = if long then c.initial_key else c.key in
      match Quic.Packet.unprotect_view ~key wire with
      | exception (Quic.Packet.Authentication_failed | Quic.Packet.Malformed) ->
        (* bit damage surfaces here as an auth/structure failure: discard
           cleanly and account for it — never raise past the handler *)
        c.stats.pkts_corrupt_discarded <- c.stats.pkts_corrupt_discarded + 1;
        Log.debug (fun m -> m "dropping unauthenticated packet")
      | header, poff, plen ->
        if has_local_cid c header.Quic.Packet.dcid then begin
          let pn = header.Quic.Packet.pn in
          if Quic.Ackranges.contains c.acks pn then
            (* duplicate packet number: the ACK ranges already cover it,
               so the copy is rejected before touching connection state *)
            c.stats.pkts_dup_rejected <- c.stats.pkts_dup_rejected + 1
          else begin
            c.stats.pkts_received <- c.stats.pkts_received + 1;
            c.stats.bytes_received <- c.stats.bytes_received + String.length wire;
            if pn < c.largest_recv then
              c.stats.pkts_out_of_order <- c.stats.pkts_out_of_order + 1
            else begin
              c.largest_recv <- pn;
              c.largest_recv_at <- Sim.now c.sim
            end;
            if header.Quic.Packet.ptype = Quic.Packet.One_rtt then
              c.last_spin_received <- header.Quic.Packet.spin;
            let pid =
              let found = ref (-1) in
              Array.iter
                (fun p -> if p.remote_addr = dg.Net.src then found := p.path_id)
                c.paths;
              if !found >= 0 then !found
              else if pn < c.largest_recv then 0 (* stale straggler: ignore *)
              else if c.cfg.cid_pool > 0 && c.state = Established then begin
                (* RFC 9000 §9: never follow an unvalidated address — a
                   source address is spoofable. Challenge it; only the
                   matching PATH_RESPONSE commits it (see
                   [commit_candidate]). Data keeps flowing to the old
                   address meanwhile. *)
                let probe_scid =
                  if header.Quic.Packet.ptype <> Quic.Packet.One_rtt then
                    Some header.Quic.Packet.scid
                  else None
                in
                note_new_source c ~src:dg.Net.src ~probe_scid
                  ~dgsize:dg.Net.size;
                0
              end
              else begin
                (* the newest authenticated packet, from an unknown source
                   address: the connection is bound to CIDs, not to a
                   4-tuple, so follow the peer there (NAT rebinding,
                   Section 4.3). Without spare CIDs (cid_pool = 0) this
                   legacy follow is the only option — §9.5 forbids real
                   migration without them. *)
                Log.info (fun m ->
                    m "peer migrated: %d -> %d" (default_path c).remote_addr
                      dg.Net.src);
                (default_path c).remote_addr <- dg.Net.src;
                ignore (run_op c Protoop.validate_path [| I (i64 dg.Net.src) |]);
                0
              end
            in
            c.cur_pn <- pn;
            c.cur_path <- pid;
            c.cur_size <- String.length wire;
            (* the payload stays a view into the wire datagram; the string
               in [cur_payload] materializes only if a pluglet asks *)
            c.cur_payload <- "";
            c.cur_wire <- wire;
            c.cur_payload_off <- poff;
            c.cur_payload_len <- plen;
            c.cur_has_stream <- false;
            c.cur_ecn_ce <- ce;
            c.last_activity <- Sim.now c.sim;
            c.ae_sent_since_recv <- false;
            arm_idle_alarm c;
            arm_stall_alarm c;
            Quic.Ackranges.add c.acks pn;
            ignore (run_op c Protoop.update_idle_timeout [||]);
            ignore (run_op c Protoop.received_packet [| I pn; I (i64 pid) |]);
            let ae = process_payload c ~pn wire ~off:poff ~limit:(poff + plen) in
            ignore (run_op c Protoop.after_decode_frames [||]);
            if ae && is_open c then begin
              c.ack_needed <- true;
              c.ae_since_ack <- c.ae_since_ack + 1;
              let default c _ =
                if c.ae_since_ack >= 2 then wake c else schedule_ack_alarm c;
                0L
              in
              ignore (run_op c Protoop.update_ack_needed ~default [||])
            end;
            if is_open c && Sender.something_to_send c then wake c
          end
        end)
    | _ -> ()
  end

(* Optional receive-side profiling: one branch per datagram when off,
   wall-clock + minor-allocation sampling when a bench turns it on. *)
let receive_datagram c (dg : Net.datagram) =
  if !rx_profile then begin
    let t0 = !rx_clock () in
    let w0 = Gc.minor_words () in
    receive_datagram_inner c dg;
    rx_seconds := !rx_seconds +. (!rx_clock () -. t0);
    rx_minor_words := !rx_minor_words +. (Gc.minor_words () -. w0);
    incr rx_packets
  end
  else receive_datagram_inner c dg

(* ------------------------------------------------------------------ *)
(* Application interface                                                *)
(* ------------------------------------------------------------------ *)

let write_stream c ~id ?(fin = false) data =
  let s = Sender.get_stream c id in
  Quic.Sendbuf.write s.sendb data;
  if fin then Quic.Sendbuf.finish s.sendb;
  wake c

let stream_fully_acked c ~id =
  match Hashtbl.find_opt c.streams id with
  | None -> false
  | Some s -> Quic.Sendbuf.all_acked s.sendb

let close c ~reason =
  if is_open c then begin
    ignore (run_op c Protoop.connection_closing [||]);
    Queue.push (F.Connection_close { code = 0; reason }) c.ctrl;
    wake c;
    let pto = Quic.Rtt.pto (default_path c).rtt in
    ignore
      (Sim.schedule c.sim ~delay:(Int64.mul 3L pto) (fun () ->
           if c.state <> Closed then begin
             c.state <- Closed;
             TW.cancel c.wheel c.loss_alarm;
             TW.cancel c.wheel c.ack_alarm;
             ignore (run_op c Protoop.connection_closed [||]);
             c.on_closed ()
           end))
  end

let start_client c =
  assert (c.role = Client);
  ignore (run_op c Protoop.write_transport_params [||]);
  Quic.Sendbuf.write c.crypto_send (encode_params c.local_params);
  wake c

(* Simulate a NAT rebinding / interface change: subsequent packets on the
   default path leave from [new_local]. The peer follows the CID to the new
   address (Section 4.3's "resilient to events such as NAT rebinding"). *)
let rebind c ~new_local =
  (default_path c).local_addr <- new_local;
  wake c

(* Per-connection entry point used by the endpoint demultiplexer. *)
let local_cid c = c.local_cid

let state c = c.state
let stats c = c.stats
let role c = c.role
let now c = Sim.now c.sim
let plugin_names c = Pluginop.Plugin_host.plugin_names c.po
let has_plugin c name = Pluginop.Plugin_host.has_plugin c.po name
let peer_params c = c.peer_params
