(* Re-export: plugin manifests and (de)serialization live in the
   transport-neutral pluginop library. *)
include Pluginop.Plugin
