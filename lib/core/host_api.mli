(** The PRE↔host boundary (Section 2.3), PQUIC half: field accessors over
    the QUIC connection, the QUIC-owned extra helpers, and the HOST record
    handed to the transport-neutral machinery in {!Pluginop}. *)

open Conn_types

val helper_fail : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Ebpf.Vm.Helper_failure} with a formatted message. *)

val get_field : t -> int -> int -> int64
(** [get_field c field index] — read a connection field ({!Api} ids); path
    fields take the path id as index.
    @raise Ebpf.Vm.Helper_failure on an unknown field. *)

val set_field : t -> int -> int -> int64 -> unit
(** Write one of {!Api.writable_fields}; any other field is a policy
    violation. @raise Ebpf.Vm.Helper_failure on a read-only field. *)

val host : t Pluginop.Types.host
(** PQUIC as a pluginop host: the closures the transport-neutral plugin
    machinery dispatches through (fields, clock, message channel,
    sanction/stats hooks, QUIC-specific helpers). *)

val install_helpers : t -> instance -> Pre.t -> unit
(** Install the full helper table on a PRE, closing over the connection and
    the plugin instance (its memory pool and opaque-data table): the shared
    {!Pluginop.Host_api} table plus the QUIC extras. *)
