(** The PRE↔host boundary (Section 2.3): get/set field accessors and the
    Table 1 helper implementations installed on each pluglet's PRE. *)

open Conn_types

val helper_fail : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Ebpf.Vm.Helper_failure} with a formatted message. *)

val get_field : t -> int -> int -> int64
(** [get_field c field index] — read a connection field ({!Api} ids); path
    fields take the path id as index.
    @raise Ebpf.Vm.Helper_failure on an unknown field. *)

val set_field : t -> int -> int -> int64 -> unit
(** Write one of {!Api.writable_fields}; any other field is a policy
    violation. @raise Ebpf.Vm.Helper_failure on a read-only field. *)

val install_helpers : t -> instance -> Pre.t -> unit
(** Install the full helper table on a PRE, closing over the connection and
    the plugin instance (its memory pool and opaque-data table). *)
