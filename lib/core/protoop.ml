(* Re-export: the protoop id space lives in the transport-neutral
   pluginop library; core code and plc sources keep addressing it as
   [Pquic.Protoop]. *)
include Pluginop.Protoop
