(** Shared record types of the layered connection engine.

    All engine layers ([Dispatch], [Host_api], [Recovery], [Plugin_host],
    [Sender], [Connection]) operate on the connection record {!t} defined
    here. [Connection] re-exports everything in this interface, so external
    code keeps addressing the engine through [Pquic.Connection]. *)

module Log : Logs.LOG
(** The shared "pquic" log source of the engine. *)

type Netsim.Net.payload += Quic_packet of string

val ip_udp_overhead : int

type role = Client | Server

type state = Handshaking | Established | Closing | Closed | Failed of string

type config = {
  mtu : int;                (** max QUIC packet size (before IP/UDP) *)
  initial_window : int;
  ack_delay_ms : float;
  trust_formula : string;   (** validation requirement sent with PLUGIN_VALIDATE *)
  core_fraction : float;    (** share of the window guaranteed to core frames
                                when plugins compete (Section 2.3) *)
  cid_pool : int;
      (** spare CIDs issued to the peer at establish (NEW_CONNECTION_ID).
          0 (the default) disables the whole migration machinery — RFC
          9000 §9.5: an endpoint without spare CIDs cannot migrate — and
          keeps legacy behaviour bit-identical. *)
  lean : bool;
      (** shrink per-connection hash tables for massive-concurrency
          benchmarks. Off by default: bucket counts influence Hashtbl
          fold order, which the recorded experiment fingerprints are
          sensitive to. *)
}

val default_config : config

type path = {
  path_id : int;
  mutable local_addr : Netsim.Net.addr;
  mutable remote_addr : Netsim.Net.addr;
  cc : Quic.Cc.t;
  rtt : Quic.Rtt.t;
  mutable active : bool;
  mutable lost_span_start : Netsim.Sim.time;
  mutable lost_span_end : Netsim.Sim.time;
  mutable lost_span_valid : bool;
      (** persistent congestion (RFC 9002 §7.6): send-time span of the
          current run of consecutive ack-eliciting losses *)
}

type path_candidate = {
  cand_addr : Netsim.Net.addr;
  challenge : int64;
  rotate_to : (int64 * int64) option;
      (** (seq, cid) of the spare adopted towards the peer on commit *)
  mutable probes : int;
  mutable last_probe_at : Netsim.Sim.time;
  mutable cand_rx : int;
  mutable cand_tx : int;
}
(** RFC 9000 §9 path validation: an unvalidated remote address observed on
    authenticated packets. Only a PATH_RESPONSE matching [challenge]
    commits it onto the path; until then it carries nothing but probes,
    clamped to 3× [cand_rx] (§8.1 anti-amplification). *)

(** What a sent packet carried, for ack/loss bookkeeping. Data-bearing
    frames record only (offset, len) against their send buffer — payload
    bytes are never copied into retransmit state. *)
type frame_record =
  | R_frame of Quic.Frame.t * Scheduler.reservation option
      (** control/ack/plugin-reserved frames; the reservation is set for
          the latter so notify_frame protoops can fire *)
  | R_stream of { id : int; offset : int; len : int; fin : bool }
  | R_crypto of { offset : int; len : int }
  | R_plugin_data of { plugin : string; offset : int; len : int; fin : bool }

type sent_packet = {
  pn : int64;
  sent_at : Netsim.Sim.time;
  size : int;
  records : frame_record list;
  path_id : int;
  path_seq : int64;
      (** per-path send order, for reordering-safe loss detection *)
  ack_eliciting : bool;
}

type stream = {
  stream_id : int;
  sendb : Quic.Sendbuf.t;
  recvb : Quic.Recvbuf.t;
  mutable max_stream_data_remote : int64;
  mutable max_stream_data_local : int64;
  mutable fin_delivered : bool;
  mutable flow_sent : int; (** highest offset+len ever put on the wire *)
}

type stats = {
  mutable bytes_sent : int;
  mutable bytes_received : int;
  mutable pkts_sent : int;
  mutable pkts_received : int;
  mutable pkts_lost : int;
  mutable pkts_retransmitted : int;
  mutable pkts_out_of_order : int;
  mutable frames_recovered : int; (** packets resurrected by FEC *)
  mutable pkts_dup_rejected : int;
      (** duplicate packet numbers discarded on receive *)
  mutable pkts_corrupt_discarded : int;
      (** auth/parse failures dropped cleanly instead of raising *)
  mutable persistent_congestion_events : int;
  mutable plugin_sanctions : int;  (** pluglets killed for misbehaviour *)
  mutable plugin_fallbacks : int;
      (** trapped replace ops served by the builtin implementation *)
  mutable cids_issued : int;       (** NEW_CONNECTION_ID frames queued *)
  mutable cids_retired : int;      (** local CIDs retired by the peer *)
  mutable cids_rotated : int;      (** times the CID sent to changed *)
  mutable paths_validated : int;   (** candidates committed by PATH_RESPONSE *)
  mutable path_probes : int;       (** PATH_CHALLENGE probe packets sent *)
  mutable unvalidated_tx : int;
      (** non-probe packets sent to a candidate address — must stay 0 *)
}

(** Protoop arguments and implementations, re-exported from the
    transport-neutral [Pluginop] library (parametrically, as OCaml
    requires, then abbreviated at the connection type next to {!t}): core
    code keeps its constructors and field labels, and instances are
    type-compatible with every other pluginop host. *)
type arg = Pluginop.Types.arg =
  | I of int64
  | Buf of Bytes.t * [ `Ro | `Rw ]
  | View of Bytes.t * int * int

type 'c host_impl = 'c Pluginop.Types.impl =
  | Native of string * ('c -> arg array -> int64)
  | Pluglet of Pre.t

type 'c host_op_entry = 'c Pluginop.Types.op_entry = {
  mutable replace : 'c host_impl option;
  mutable pre : 'c host_impl list;
  mutable post : 'c host_impl list;
  mutable ext : 'c host_impl option;
}

type 'c host_instance = 'c Pluginop.Types.instance = {
  plugin : Plugin.t;
  pool : Memory_pool.t;
  mutable pres : Pre.t list;
  opaque : (int, int) Hashtbl.t; (** opaque-data id -> heap offset *)
  mutable bound : 'c option;     (** connection the instance is bound to *)
}

type t = {
  sim : Netsim.Sim.t;
  net : Netsim.Net.t;
  cfg : config;
  role : role;
  mutable state : state;
  local_cid : int64;
  mutable remote_cid : int64;
  initial_key : int64;
  mutable key : int64;
  mutable paths : path array;
  (* CID set (RFC 9000 §5.1) and §9 path-validation state *)
  mutable local_cids : (int64 * int64) list;  (** (seq, cid), newest first *)
  mutable cid_seq : int64;
  mutable remote_spares : (int64 * int64) list;  (** (seq, cid), oldest first *)
  mutable remote_cid_seq : int64;
  mutable candidate : path_candidate option;
  mutable challenge_ctr : int64;
  mutable last_reprobe_at : Netsim.Sim.time;
  mutable last_rotate_at : Netsim.Sim.time;
  mutable gen_cid : unit -> int64;
  mutable on_cid_issued : int64 -> unit;
  mutable on_cid_retired : int64 -> unit;
  (* recovery *)
  mutable next_pn : int64;
  sent : (int64, sent_packet) Hashtbl.t;
  mutable ack_watermark : int64;
      (** no pn below this is still in [sent]; ack processing clips
          ranges to the live window with it *)
  mutable largest_acked : int64;
  mutable largest_acked_per_path : int64 array;
  mutable next_path_seq : int64 array;
  mutable largest_sent_at : Netsim.Sim.time;
  sent_times : (int64, Netsim.Sim.time) Hashtbl.t;
  mutable pto_backoff : int;
  (* Alarms live in the node-wide hierarchical timer wheel ([wheel],
     shared per simulator): each is a reusable intrusive node, so arm /
     cancel / re-arm are allocation-free pointer surgery instead of
     simulator-heap churn. *)
  wheel : Engine.Timer_wheel.t;
  loss_alarm : Engine.Timer_wheel.alarm;
  ack_alarm : Engine.Timer_wheel.alarm;
  idle_alarm : Engine.Timer_wheel.alarm;
  stall_alarm : Engine.Timer_wheel.alarm;
      (** client downlink-stall watchdog (armed only with [cid_pool] > 0):
          a pure receiver never arms the PTO clock, so return-path silence
          is noticed here and escalated to the reprobe escape *)
  mutable idle_period : Netsim.Sim.time;
      (** idle period captured at arm time (the fire callback is fixed,
          so the period the old per-arm closure captured lives here) *)
  mutable stall_period : Netsim.Sim.time;
      (** receive-silence span captured when the stall watchdog was armed *)
  mutable last_activity : Netsim.Sim.time;
  mutable ae_sent_since_recv : bool;
  (* receiving *)
  acks : Quic.Ackranges.t;
  mutable ack_needed : bool;
  mutable ae_since_ack : int;
  mutable largest_recv : int64;
  mutable largest_recv_at : Netsim.Sim.time;
  mutable last_spin_received : bool;
  mutable spin : bool;
  (* streams *)
  streams : (int, stream) Hashtbl.t;
  stream_rr : int Queue.t; (** round-robin rotation order *)
  crypto_send : Quic.Sendbuf.t;
  crypto_recv : Quic.Recvbuf.t;
  crypto_acc : Buffer.t;
  mutable crypto_done : bool;
  (* flow control *)
  mutable max_data_local : int64;
  mutable max_data_remote : int64;
  mutable data_sent : int64;
  mutable data_received : int64;
  mutable max_data_frame_pending : bool;
  (* transport parameters *)
  mutable local_params : Quic.Transport_params.t;
  mutable peer_params : Quic.Transport_params.t option;
  (* control frames queued for the next packets *)
  ctrl : Quic.Frame.t Queue.t;
  (* plugin machinery: the transport-neutral protoop registry and attached
     instances (see [Pluginop.Types.state]); the HOST closures it
     dispatches through are built in [Host_api] *)
  po : t Pluginop.Types.state;
  sched : Scheduler.t;
  mutable plugin_turn : bool;
  (* scratch for the packet currently processed or built *)
  mutable cur_pn : int64;
  mutable cur_path : int;
  mutable cur_size : int;
  mutable cur_payload : string;
  mutable cur_wire : string;
      (** wire image of the packet just built or being processed;
          [cur_payload] is sliced from it on first use (see
          {!current_payload}) *)
  mutable cur_payload_off : int;
  mutable cur_payload_len : int;
      (** 0 when [cur_payload] is authoritative as-is *)
  mutable cur_has_stream : bool;
  mutable cur_ecn_ce : bool;
  mutable recover_depth : int;
  mutable rx_scratch : Pluginop.Memory_pool.t option;
      (** pooled receive scratch, created lazily on the first FEC
          recovery; stages the recovered image across the frame replay *)
  (* plugin exchange *)
  plugin_out : (string, Quic.Sendbuf.t) Hashtbl.t;
  plugin_in : (string, Quic.Recvbuf.t) Hashtbl.t;
  mutable plugin_proofs : (string * string) list;
  mutable provide_plugin : string -> formula:string -> (string * string) option;
  mutable verify_plugin : name:string -> bytes:string -> proof:string -> bool;
  mutable on_plugin_received : Plugin.t -> unit;
  mutable acquire_instance : string -> instance option;
  (* app interface *)
  mutable on_stream_data : int -> string -> fin:bool -> unit;
  mutable on_message : string -> unit;
  mutable on_established : unit -> unit;
  mutable on_closed : unit -> unit;
  stats : stats;
  created_at : Netsim.Sim.time;
  mutable established_at : Netsim.Sim.time option;
  mutable wake_pending : bool;
  mutable negotiated : bool;
  mutable close_reason : string;
}

(** The historical engine-local names, instantiated at this connection. *)
and impl = t host_impl

and native = t -> arg array -> int64
and op_entry = t host_op_entry
and instance = t host_instance

val initial_key : int64

val i64 : int -> int64
val to_i : int64 -> int

val state_code : t -> int64
val path : t -> int -> path option
val default_path : t -> path
val is_open : t -> bool

val fail_connection : t -> string -> unit
(** Mark the connection failed (unless already closed). *)

val current_payload : t -> string
(** Payload of the packet currently built or processed, slicing it out
    of [cur_wire] (and caching it) on first use. *)

val current_payload_length : t -> int
(** Length of {!current_payload} without materializing the slice. *)

val blit_current_payload : t -> Bytes.t -> int -> unit
(** Copy the current payload into a buffer at the given offset without
    materializing the slice — the packet_bytes helper serves plugins
    straight from the wire image. *)

val rx_scratch : t -> Pluginop.Memory_pool.t
(** The connection's receive scratch pool, created on first use. *)

val make_stats : unit -> stats

val has_local_cid : t -> int64 -> bool
(** Is [cid] one of the CIDs this connection answers to? *)

val next_challenge : t -> int64
(** Fresh PATH_CHALLENGE material, derived deterministically from the
    connection key and a per-connection counter. *)

val adopt_remote_cid : t -> int64 * int64 -> unit
(** Adopt [(seq, cid)] as the CID we address the peer with, retiring the
    current one and every spare with a sequence number ≤ [seq]. Adoption
    is strictly monotonic in [seq] so retransmitted NEW_CONNECTION_ID
    frames can never resurrect an already-retired sequence number. *)

val adoptable_spare : t -> (int64 * int64) option
(** A spare eligible for rotation: unused and ahead of [remote_cid_seq]. *)

(** {2 Forward references}

    Filled in by the upper layers at load time; lower layers call through
    them to avoid dependency cycles. *)

val wake_ref : (t -> unit) ref
val wake : t -> unit
(** Schedule a send pass (implemented by [Sender]). *)

(** {2 Receive-path profiling}

    Sampled by [Connection.receive_datagram] per datagram while
    [rx_profile] is on; the clock is injectable so benches can install
    [Unix.gettimeofday] (the [Sys.time] default is too coarse per-packet
    but keeps this library free of the unix dependency). *)

val rx_profile : bool ref
val rx_clock : (unit -> float) ref
val rx_seconds : float ref
val rx_minor_words : float ref
val rx_packets : int ref
val rx_profile_reset : unit -> unit

val process_recovered_ref : (t -> Bytes.t -> off:int -> len:int -> unit) ref
(** Hand a FEC-recovered packet image [pn(4) || payload] back to the
    receive path (implemented by [Connection]). The bytes are borrowed —
    valid only for the duration of the call. *)

val reprobe_ref : (t -> unit) ref
(** Client-side stall escape (implemented by [Sender]): rotate to a spare
    CID and revalidate the path with a long-header PATH_CHALLENGE probe;
    called by [Recovery] when consecutive PTOs suggest the 4-tuple died. *)
