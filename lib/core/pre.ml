(* Re-export: the Pluglet Runtime Environment lives in the
   transport-neutral pluginop library. *)
include Pluginop.Pre
