(* The PRE↔host boundary (Section 2.3), PQUIC half: the Table 1 field
   accessors over the QUIC connection record, the QUIC-owned extra helpers
   (frame reservation, packet access, path creation), and the HOST record
   that plugs both into the transport-neutral machinery in [Pluginop].
   The shared helper table (malloc, opaque data, run_protoop, time, ...)
   lives in [Pluginop.Host_api]; it calls back through the record built
   here for everything connection-specific. *)

module TP = Quic.Transport_params
module Sim = Netsim.Sim
open Conn_types

let helper_fail fmt = Fmt.kstr (fun s -> raise (Ebpf.Vm.Helper_failure s)) fmt

(* Per-path fields, split out so the bad-index default shares one [path]
   lookup. A separate function rather than a [pathf f] combinator inside
   [get_field]: that closure captured [c] and [index] and so was heap-
   allocated on every call — and [h_get] runs a dozen times per received
   packet on a pluginized connection. *)
let get_path_field c field index =
  let open Api in
  match path c index with
  | None -> -1L
  | Some p ->
    if field = f_cwnd then Int64.of_int (Quic.Cc.cwnd p.cc)
    else if field = f_bytes_in_flight then
      Int64.of_int (Quic.Cc.bytes_in_flight p.cc)
    else if field = f_srtt then Quic.Rtt.smoothed p.rtt
    else if field = f_rtt_min then Quic.Rtt.min_rtt p.rtt
    else if field = f_latest_rtt then Quic.Rtt.latest p.rtt
    else if field = f_rtt_var then Quic.Rtt.variance p.rtt
    else if field = f_ssthresh then (
      let s = Quic.Cc.ssthresh p.cc in
      if s = max_int then -1L else Int64.of_int s)
    else if field = f_path_active then if p.active then 1L else 0L
    else if field = f_path_remote_addr then Int64.of_int p.remote_addr
    else
      (* f_rtt_sample is write-only; reads keep raising as before *)
      raise
        (Ebpf.Vm.Helper_failure (Printf.sprintf "get: unknown field %d" field))

let get_field c field index =
  let open Api in
  if (field >= f_cwnd && field <= f_path_remote_addr && field <> f_rtt_sample)
     || field = f_ssthresh
  then get_path_field c field index
  else if field = f_nb_paths then Int64.of_int (Array.length c.paths)
  else if field = f_next_pn then c.next_pn
  else if field = f_largest_acked then c.largest_acked
  else if field = f_state then state_code c
  else if field = f_role then match c.role with Client -> 0L | Server -> 1L
  else if field = f_bytes_sent then Int64.of_int c.stats.bytes_sent
  else if field = f_bytes_received then Int64.of_int c.stats.bytes_received
  else if field = f_pkts_sent then Int64.of_int c.stats.pkts_sent
  else if field = f_pkts_received then Int64.of_int c.stats.pkts_received
  else if field = f_pkts_lost then Int64.of_int c.stats.pkts_lost
  else if field = f_pkts_retransmitted then
    Int64.of_int c.stats.pkts_retransmitted
  else if field = f_pkts_out_of_order then
    Int64.of_int c.stats.pkts_out_of_order
  else if field = f_ack_needed then if c.ack_needed then 1L else 0L
  else if field = f_spin_bit then if c.spin then 1L else 0L
  else if field = f_max_data_local then c.max_data_local
  else if field = f_max_data_remote then c.max_data_remote
  else if field = f_data_sent then c.data_sent
  else if field = f_data_received then c.data_received
  else if field = f_mtu then Int64.of_int c.cfg.mtu
  else if field = f_current_pn then c.cur_pn
  else if field = f_current_path then Int64.of_int c.cur_path
  else if field = f_current_packet_size then Int64.of_int c.cur_size
  else if field = f_streams_open then Int64.of_int (Hashtbl.length c.streams)
  else if field = f_streams_closed then
    Int64.of_int
      (Hashtbl.fold
         (fun _ s acc -> if s.fin_delivered then acc + 1 else acc)
         c.streams 0)
  else if field = f_handshake_rtt then (
    match c.established_at with
    | Some at -> Int64.sub at c.created_at
    | None -> -1L)
  else if field = f_last_path_recv then Int64.of_int c.cur_path
  else if field = f_fin_sent then
    if
      Hashtbl.fold
        (fun _ s acc ->
          acc
          || (Quic.Sendbuf.has_new s.sendb = false
              && Quic.Sendbuf.has_retransmissions s.sendb = false
              && Quic.Sendbuf.total_written s.sendb > 0))
        c.streams false
    then 1L
    else 0L
  else if field = f_peer_extra_addr then (
    match c.peer_params with
    | Some { Quic.Transport_params.active_paths = a :: _; _ } -> Int64.of_int a
    | _ -> -1L)
  else if field = f_current_packet_has_stream then
    if c.cur_has_stream then 1L else 0L
  else if field = f_own_extra_addr then (
    match c.local_params.TP.active_paths with
    | a :: _ -> Int64.of_int a
    | [] -> -1L)
  else if field = f_ecn_ce then if c.cur_ecn_ce then 1L else 0L
  else raise (Ebpf.Vm.Helper_failure (Printf.sprintf "get: unknown field %d" field))

let set_field c field index value =
  let open Api in
  if not (List.mem field writable_fields) then
    raise (Ebpf.Vm.Helper_failure (Printf.sprintf "set: field %d is read-only" field));
  match path c index with
  | None -> raise (Ebpf.Vm.Helper_failure "set: bad path index")
  | Some p ->
    if field = f_rtt_sample then Quic.Rtt.update p.rtt ~sample:value
    else if field = f_spin_bit then c.spin <- value <> 0L
    else if field = f_path_active then p.active <- value <> 0L
    else if field = f_cwnd then Quic.Cc.set_cwnd p.cc (Int64.to_int value)

(* The helpers QUIC owns outright: frame-scheduler reservations, FEC
   packet access/recovery, multipath path creation. Installed on each PRE
   after the shared table, through the HOST record below. *)
let install_extra_helpers c (inst : instance) (pre : Pre.t) =
  let reg ?arity id f = Pre.register_helper ?arity pre id f in
  reg ~arity:4 Api.h_reserve_frames (fun _ a ->
      let flags = to_i a.(2) in
      Scheduler.reserve c.sched
        {
          Scheduler.ftype = to_i a.(0);
          size = to_i a.(1);
          retransmittable = flags land 1 <> 0;
          ack_eliciting = flags land 2 = 0;
          cookie = a.(3);
          plugin = inst.plugin.Plugin.name;
        };
      wake c;
      0L);
  reg ~arity:2 Api.h_recover_packet (fun vm a ->
      let len = to_i a.(1) in
      if len < 4 || len > 65536 then helper_fail "recover_packet: bad length %d" len;
      let src, soff = Ebpf.Vm.direct vm ~write:false a.(0) len in
      (* stage the recovered image out of the VM region before replaying:
         the replay re-enters pluglets that may rewrite plugin memory
         under the borrowed range. Pooled scratch; heap only if a burst
         of nested recoveries exhausts the pool. *)
      let pool = rx_scratch c in
      (match Memory_pool.alloc pool len with
      | Some off ->
        let area = Memory_pool.area pool in
        Bytes.blit src soff area off len;
        Fun.protect
          ~finally:(fun () -> ignore (Memory_pool.free pool off))
          (fun () -> !process_recovered_ref c area ~off ~len)
      | None ->
        let data = Bytes.sub src soff len in
        !process_recovered_ref c data ~off:0 ~len);
      0L);
  reg ~arity:2 Api.h_packet_bytes (fun vm a ->
      let max = to_i a.(1) in
      let total = 4 + current_payload_length c in
      if total > max then 0L
      else begin
        (* pn prefix + payload blitted straight into plugin memory — the
           packet image never materializes on the host side *)
        let dst, off = Ebpf.Vm.direct vm ~write:true a.(0) total in
        Bytes.set_int32_be dst off (Int64.to_int32 c.cur_pn);
        blit_current_payload c dst (off + 4);
        i64 total
      end);
  reg ~arity:1 Api.h_create_path (fun _ a ->
      let remote = to_i a.(0) in
      (* reuse an existing path to the same remote if present *)
      let existing = ref (-1) in
      Array.iter
        (fun p -> if p.remote_addr = remote then existing := p.path_id)
        c.paths;
      if !existing >= 0 then i64 !existing
      else begin
        let local =
          (* second client address if we own one, else our primary *)
          let primary = (default_path c).local_addr in
          match c.local_params.TP.active_paths with
          | a :: _ when c.role = Client -> a
          | _ -> primary
        in
        let p =
          {
            path_id = Array.length c.paths;
            local_addr = local;
            remote_addr = remote;
            cc = Quic.Cc.create ~initial_window:c.cfg.initial_window ();
            rtt = Quic.Rtt.create ();
            active = true;
            lost_span_start = 0L;
            lost_span_end = 0L;
            lost_span_valid = false;
          }
        in
        c.paths <- Array.append c.paths [| p |];
        ignore (Dispatch.run_op c Protoop.create_new_path [| I (i64 p.path_id) |]);
        i64 p.path_id
      end)

(* The HOST record: how PQUIC presents itself to the transport-neutral
   plugin machinery. Everything [Pluginop] needs from a connection —
   fields, clock, sanction, stats — goes through these closures. *)
let host : Conn_types.t Pluginop.Types.host =
  {
    Pluginop.Types.host_name = "pquic";
    now = (fun c -> Sim.now c.sim);
    get_field;
    set_field;
    push_message = (fun c msg -> c.on_message msg);
    sent_time =
      (fun c pn ->
        match Hashtbl.find_opt c.sent_times pn with
        | Some at -> at
        | None -> -1L);
    fail = fail_connection;
    on_sanction =
      (fun c -> c.stats.plugin_sanctions <- c.stats.plugin_sanctions + 1);
    on_fallback =
      (fun c -> c.stats.plugin_fallbacks <- c.stats.plugin_fallbacks + 1);
    on_detach = (fun c name -> Scheduler.drop_plugin c.sched name);
    install_extra_helpers;
  }

let install_helpers c inst (pre : Pre.t) =
  Pluginop.Host_api.install_helpers c.po c inst pre
