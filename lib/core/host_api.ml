(* The PRE↔host boundary (Section 2.3): the get/set field accessors and the
   Table 1 helper implementations installed on each pluglet's PRE when an
   instance is attached. Getters and setters abstract the connection
   internals from pluglets: bytecode never hard-codes structure offsets,
   and the host monitors (and refuses) access to specific fields. *)

module TP = Quic.Transport_params
module Sim = Netsim.Sim
open Conn_types

let helper_fail fmt = Fmt.kstr (fun s -> raise (Ebpf.Vm.Helper_failure s)) fmt

let get_field c field index =
  let open Api in
  let pathf f = match path c index with Some p -> f p | None -> -1L in
  if field = f_cwnd then pathf (fun p -> Int64.of_int (Quic.Cc.cwnd p.cc))
  else if field = f_bytes_in_flight then
    pathf (fun p -> Int64.of_int (Quic.Cc.bytes_in_flight p.cc))
  else if field = f_srtt then pathf (fun p -> Quic.Rtt.smoothed p.rtt)
  else if field = f_rtt_min then pathf (fun p -> Quic.Rtt.min_rtt p.rtt)
  else if field = f_latest_rtt then pathf (fun p -> Quic.Rtt.latest p.rtt)
  else if field = f_rtt_var then pathf (fun p -> Quic.Rtt.variance p.rtt)
  else if field = f_path_active then pathf (fun p -> if p.active then 1L else 0L)
  else if field = f_path_remote_addr then
    pathf (fun p -> Int64.of_int p.remote_addr)
  else if field = f_nb_paths then Int64.of_int (Array.length c.paths)
  else if field = f_next_pn then c.next_pn
  else if field = f_largest_acked then c.largest_acked
  else if field = f_state then state_code c
  else if field = f_role then match c.role with Client -> 0L | Server -> 1L
  else if field = f_bytes_sent then Int64.of_int c.stats.bytes_sent
  else if field = f_bytes_received then Int64.of_int c.stats.bytes_received
  else if field = f_pkts_sent then Int64.of_int c.stats.pkts_sent
  else if field = f_pkts_received then Int64.of_int c.stats.pkts_received
  else if field = f_pkts_lost then Int64.of_int c.stats.pkts_lost
  else if field = f_pkts_retransmitted then
    Int64.of_int c.stats.pkts_retransmitted
  else if field = f_pkts_out_of_order then
    Int64.of_int c.stats.pkts_out_of_order
  else if field = f_ack_needed then if c.ack_needed then 1L else 0L
  else if field = f_spin_bit then if c.spin then 1L else 0L
  else if field = f_max_data_local then c.max_data_local
  else if field = f_max_data_remote then c.max_data_remote
  else if field = f_data_sent then c.data_sent
  else if field = f_data_received then c.data_received
  else if field = f_mtu then Int64.of_int c.cfg.mtu
  else if field = f_current_pn then c.cur_pn
  else if field = f_current_path then Int64.of_int c.cur_path
  else if field = f_current_packet_size then Int64.of_int c.cur_size
  else if field = f_streams_open then Int64.of_int (Hashtbl.length c.streams)
  else if field = f_streams_closed then
    Int64.of_int
      (Hashtbl.fold
         (fun _ s acc -> if s.fin_delivered then acc + 1 else acc)
         c.streams 0)
  else if field = f_handshake_rtt then (
    match c.established_at with
    | Some at -> Int64.sub at c.created_at
    | None -> -1L)
  else if field = f_last_path_recv then Int64.of_int c.cur_path
  else if field = f_fin_sent then
    if
      Hashtbl.fold
        (fun _ s acc ->
          acc
          || (Quic.Sendbuf.has_new s.sendb = false
              && Quic.Sendbuf.has_retransmissions s.sendb = false
              && Quic.Sendbuf.total_written s.sendb > 0))
        c.streams false
    then 1L
    else 0L
  else if field = f_peer_extra_addr then (
    match c.peer_params with
    | Some { Quic.Transport_params.active_paths = a :: _; _ } -> Int64.of_int a
    | _ -> -1L)
  else if field = f_current_packet_has_stream then
    if c.cur_has_stream then 1L else 0L
  else if field = f_own_extra_addr then (
    match c.local_params.TP.active_paths with
    | a :: _ -> Int64.of_int a
    | [] -> -1L)
  else if field = f_ecn_ce then if c.cur_ecn_ce then 1L else 0L
  else raise (Ebpf.Vm.Helper_failure (Printf.sprintf "get: unknown field %d" field))

let set_field c field index value =
  let open Api in
  if not (List.mem field writable_fields) then
    raise (Ebpf.Vm.Helper_failure (Printf.sprintf "set: field %d is read-only" field));
  match path c index with
  | None -> raise (Ebpf.Vm.Helper_failure "set: bad path index")
  | Some p ->
    if field = f_rtt_sample then Quic.Rtt.update p.rtt ~sample:value
    else if field = f_spin_bit then c.spin <- value <> 0L
    else if field = f_path_active then p.active <- value <> 0L
    else if field = f_cwnd then Quic.Cc.set_cwnd p.cc (Int64.to_int value)

let install_helpers c inst (pre : Pre.t) =
  let heap = Memory_pool.area inst.pool in
  let heap_off vm_addr =
    let off = Pre.heap_offset pre vm_addr in
    if off < 0 || off > Bytes.length heap then
      helper_fail "address 0x%Lx outside plugin memory" vm_addr;
    off
  in
  let reg id f = Pre.register_helper pre id f in
  reg Api.h_get (fun _ a -> get_field c (to_i a.(0)) (to_i a.(1)));
  reg Api.h_set (fun _ a ->
      set_field c (to_i a.(0)) (to_i a.(1)) a.(2);
      0L);
  reg Api.h_pl_malloc (fun _ a ->
      match Memory_pool.alloc inst.pool (to_i a.(0)) with
      | Some off -> Pre.heap_addr pre off
      | None -> 0L);
  reg Api.h_pl_free (fun _ a ->
      if Memory_pool.free inst.pool (heap_off a.(0)) then 0L
      else helper_fail "pl_free: invalid address 0x%Lx" a.(0));
  reg Api.h_get_opaque_data (fun _ a ->
      let id = to_i a.(0) and size = to_i a.(1) in
      match Hashtbl.find_opt inst.opaque id with
      | Some off -> Pre.heap_addr pre off
      | None -> (
        match Memory_pool.alloc inst.pool size with
        | Some off ->
          (* opaque areas start zeroed even when the pool recycles blocks *)
          Bytes.fill (Memory_pool.area inst.pool) off size '\000';
          Hashtbl.replace inst.opaque id off;
          Pre.heap_addr pre off
        | None -> 0L));
  reg Api.h_pl_memcpy (fun vm a ->
      let len = to_i a.(2) in
      if len < 0 || len > 65536 then helper_fail "pl_memcpy: bad length %d" len;
      let data = Ebpf.Vm.read_bytes vm a.(1) len in
      let dst = a.(0) in
      Ebpf.Vm.write_bytes vm dst data;
      0L);
  reg Api.h_pl_memset (fun vm a ->
      let len = to_i a.(2) in
      if len < 0 || len > 65536 then helper_fail "pl_memset: bad length %d" len;
      Ebpf.Vm.fill_bytes vm a.(0) len (Char.chr (to_i a.(1) land 0xff));
      0L);
  reg Api.h_run_protoop (fun _ a ->
      let op = to_i a.(0) in
      let param = if a.(1) < 0L then None else Some (to_i a.(1)) in
      Dispatch.run_op c op ?param [| I a.(2); I a.(3); I a.(4) |]);
  reg Api.h_reserve_frames (fun _ a ->
      let flags = to_i a.(2) in
      Scheduler.reserve c.sched
        {
          Scheduler.ftype = to_i a.(0);
          size = to_i a.(1);
          retransmittable = flags land 1 <> 0;
          ack_eliciting = flags land 2 = 0;
          cookie = a.(3);
          plugin = inst.plugin.Plugin.name;
        };
      wake c;
      0L);
  reg Api.h_get_time (fun _ _ -> Sim.now c.sim);
  reg Api.h_push_message (fun vm a ->
      let len = to_i a.(1) in
      if len < 0 || len > 65536 then helper_fail "push_message: bad length %d" len;
      let data = Ebpf.Vm.read_bytes vm a.(0) len in
      c.on_message (Bytes.to_string data);
      0L);
  reg Api.h_pl_log (fun _ a ->
      Log.debug (fun m ->
          m "[plugin %s] %Ld %Ld" inst.plugin.Plugin.name a.(0) a.(1));
      0L);
  reg Api.h_sent_time (fun _ a ->
      match Hashtbl.find_opt c.sent_times a.(0) with
      | Some at -> at
      | None -> -1L);
  reg Api.h_cmp_bytes (fun vm a ->
      let len = to_i a.(2) in
      if len < 0 || len > 65536 then helper_fail "cmp_bytes: bad length %d" len;
      let x = Ebpf.Vm.read_bytes vm a.(0) len in
      let y = Ebpf.Vm.read_bytes vm a.(1) len in
      if Bytes.equal x y then 0L else 1L);
  reg Api.h_gf256_mulvec (fun vm a ->
      (* dst ^= coef * src over len bytes *)
      let len = to_i a.(3) in
      if len < 0 || len > 65536 then helper_fail "gf256_mulvec: bad length %d" len;
      let coef = to_i a.(2) land 0xff in
      let dst = Ebpf.Vm.read_bytes vm a.(0) len in
      let src = Ebpf.Vm.read_bytes vm a.(1) len in
      for k = 0 to len - 1 do
        Bytes.set_uint8 dst k
          (Bytes.get_uint8 dst k lxor Gf.mul coef (Bytes.get_uint8 src k))
      done;
      Ebpf.Vm.write_bytes vm a.(0) dst;
      0L);
  reg Api.h_gf256_scalevec (fun vm a ->
      let len = to_i a.(2) in
      if len < 0 || len > 65536 then helper_fail "gf256_scalevec: bad length %d" len;
      let coef = to_i a.(1) land 0xff in
      let dst = Ebpf.Vm.read_bytes vm a.(0) len in
      for k = 0 to len - 1 do
        Bytes.set_uint8 dst k (Gf.mul coef (Bytes.get_uint8 dst k))
      done;
      Ebpf.Vm.write_bytes vm a.(0) dst;
      0L);
  reg Api.h_gf256_mul (fun _ a -> i64 (Gf.mul (to_i a.(0) land 0xff) (to_i a.(1) land 0xff)));
  reg Api.h_gf256_inv (fun _ a -> i64 (Gf.inv (to_i a.(0) land 0xff)));
  reg Api.h_rng_coef (fun _ a -> i64 (Gf.rlc_coef ~seed:a.(0) ~sid:a.(1) ~row:(to_i a.(2))));
  reg Api.h_recover_packet (fun vm a ->
      let len = to_i a.(1) in
      if len < 4 || len > 65536 then helper_fail "recover_packet: bad length %d" len;
      let data = Ebpf.Vm.read_bytes vm a.(0) len in
      !process_recovered_ref c (Bytes.to_string data);
      0L);
  reg Api.h_packet_bytes (fun vm a ->
      let max = to_i a.(1) in
      let payload = current_payload c in
      let pn_prefix = Bytes.create 4 in
      Bytes.set_int32_be pn_prefix 0 (Int64.to_int32 c.cur_pn);
      let total = 4 + String.length payload in
      if total > max then 0L
      else begin
        Ebpf.Vm.write_bytes vm a.(0) pn_prefix;
        Ebpf.Vm.write_bytes vm (Int64.add a.(0) 4L)
          (Bytes.of_string payload);
        i64 total
      end);
  reg Api.h_create_path (fun _ a ->
      let remote = to_i a.(0) in
      (* reuse an existing path to the same remote if present *)
      let existing = ref (-1) in
      Array.iter
        (fun p -> if p.remote_addr = remote then existing := p.path_id)
        c.paths;
      if !existing >= 0 then i64 !existing
      else begin
        let local =
          (* second client address if we own one, else our primary *)
          let primary = (default_path c).local_addr in
          match c.local_params.TP.active_paths with
          | a :: _ when c.role = Client -> a
          | _ -> primary
        in
        let p =
          {
            path_id = Array.length c.paths;
            local_addr = local;
            remote_addr = remote;
            cc = Quic.Cc.create ~initial_window:c.cfg.initial_window ();
            rtt = Quic.Rtt.create ();
            active = true;
            lost_span_start = 0L;
            lost_span_end = 0L;
            lost_span_valid = false;
          }
        in
        c.paths <- Array.append c.paths [| p |];
        ignore (Dispatch.run_op c Protoop.create_new_path [| I (i64 p.path_id) |]);
        i64 p.path_id
      end)
