(* Shared record types of the connection engine.

   Every layer of the engine — protoop dispatch ([Dispatch]), the PRE↔host
   boundary ([Host_api]), loss recovery ([Recovery]), plugin lifecycle
   ([Plugin_host]), packet assembly ([Sender]) and the orchestration core
   ([Connection]) — operates on the same connection record [t]. This module
   owns the type definitions, the tiny state accessors, and the forward
   references the lower layers use to call back up into the orchestrator
   without a dependency cycle. *)

module F = Quic.Frame
module TP = Quic.Transport_params
module Sim = Netsim.Sim
module Net = Netsim.Net

let src = Logs.Src.create "pquic" ~doc:"PQUIC connection engine"

module Log = (val Logs.src_log src : Logs.LOG)

type Net.payload += Quic_packet of string

let ip_udp_overhead = 28

type role = Client | Server

type state = Handshaking | Established | Closing | Closed | Failed of string

type config = {
  mtu : int;                (* max QUIC packet size (before IP/UDP) *)
  initial_window : int;
  ack_delay_ms : float;
  trust_formula : string;   (* validation requirement sent with PLUGIN_VALIDATE *)
  core_fraction : float;    (* share of the window guaranteed to core frames
                               when plugins compete (Section 2.3) *)
  cid_pool : int;           (* spare CIDs issued to the peer at establish
                               (NEW_CONNECTION_ID). 0 disables the whole
                               migration machinery — RFC 9000 §9.5: an
                               endpoint without spare CIDs cannot migrate —
                               and keeps legacy behaviour bit-identical. *)
  lean : bool;              (* shrink per-connection hash tables for massive
                               concurrency benchmarks. Off by default: bucket
                               counts influence Hashtbl fold order, which the
                               recorded experiment fingerprints are sensitive
                               to. *)
}

let default_config =
  { mtu = 1280; initial_window = Quic.Cc.default_initial_window;
    ack_delay_ms = 25.; trust_formula = "PV1"; core_fraction = 0.5;
    cid_pool = 0; lean = false }

type path = {
  path_id : int;
  mutable local_addr : Net.addr;
  mutable remote_addr : Net.addr;
  cc : Quic.Cc.t;
  rtt : Quic.Rtt.t;
  mutable active : bool;
  (* persistent congestion (RFC 9002 §7.6): the send-time span of the
     current run of consecutive ack-eliciting losses, reset by any ack *)
  mutable lost_span_start : Sim.time;
  mutable lost_span_end : Sim.time;
  mutable lost_span_valid : bool;
}

(* RFC 9000 §9 path validation: an unvalidated remote address observed on
   authenticated packets. PATH_CHALLENGE probes carry [challenge]; only a
   matching PATH_RESPONSE commits the address onto the path. Until then
   the candidate may carry nothing but probes, clamped to 3× the bytes
   received from it (§8.1 anti-amplification). *)
type path_candidate = {
  cand_addr : Net.addr;
  challenge : int64;
  rotate_to : (int64 * int64) option;
      (* (seq, cid) of the spare we will adopt towards the peer on commit *)
  mutable probes : int;
  mutable last_probe_at : Sim.time;
  mutable cand_rx : int; (* bytes received from the candidate address *)
  mutable cand_tx : int; (* probe bytes sent to it (amplification credit) *)
}

(* What a sent packet carried, for ack/loss bookkeeping. Data-bearing
   frames record only (offset, len) against their send buffer — the
   payload bytes are never copied into retransmit state; a loss requeues
   the range and the retransmission re-reads the send buffer. *)
type frame_record =
  | R_frame of F.t * Scheduler.reservation option
      (* control/ack/plugin-reserved frames; reservation set for the
         latter so notify_frame protoops can fire *)
  | R_stream of { id : int; offset : int; len : int; fin : bool }
  | R_crypto of { offset : int; len : int }
  | R_plugin_data of { plugin : string; offset : int; len : int; fin : bool }

type sent_packet = {
  pn : int64;
  sent_at : Sim.time;
  size : int;
  records : frame_record list;
  path_id : int;
  path_seq : int64; (* per-path send order, for reordering-safe loss detection *)
  ack_eliciting : bool;
}

type stream = {
  stream_id : int;
  sendb : Quic.Sendbuf.t;
  recvb : Quic.Recvbuf.t;
  mutable max_stream_data_remote : int64;
  mutable max_stream_data_local : int64;
  mutable fin_delivered : bool;
  mutable flow_sent : int; (* highest offset+len ever put on the wire *)
}

type stats = {
  mutable bytes_sent : int;
  mutable bytes_received : int;
  mutable pkts_sent : int;
  mutable pkts_received : int;
  mutable pkts_lost : int;
  mutable pkts_retransmitted : int;
  mutable pkts_out_of_order : int;
  mutable frames_recovered : int; (* packets resurrected by FEC *)
  mutable pkts_dup_rejected : int;      (* duplicate packet numbers discarded *)
  mutable pkts_corrupt_discarded : int; (* auth/parse failures dropped cleanly *)
  mutable persistent_congestion_events : int;
  mutable plugin_sanctions : int;  (* pluglets killed for misbehaviour *)
  mutable plugin_fallbacks : int;  (* trapped replace ops served by builtin *)
  (* migration / path validation (all stay 0 with cid_pool = 0) *)
  mutable cids_issued : int;       (* NEW_CONNECTION_ID frames queued *)
  mutable cids_retired : int;      (* local CIDs retired by the peer *)
  mutable cids_rotated : int;      (* times we switched the CID we send to *)
  mutable paths_validated : int;   (* candidates committed by PATH_RESPONSE *)
  mutable path_probes : int;       (* PATH_CHALLENGE probe packets sent *)
  mutable unvalidated_tx : int;    (* non-probe packets sent to a candidate
                                      address — must stay 0 (invariant I6) *)
}

(* Protoop arguments and implementations come from the transport-neutral
   pluginop library; the equations below re-export them (parametrically,
   as OCaml requires, then abbreviated at the connection type next to [t])
   so core code keeps writing [Native], [e.replace], [inst.plugin] — and a
   plugin instance built here is, by type equality, attachable to any
   other pluginop host. *)
type arg = Pluginop.Types.arg =
  | I of int64
  | Buf of Bytes.t * [ `Ro | `Rw ]
  | View of Bytes.t * int * int

type 'c host_impl = 'c Pluginop.Types.impl =
  | Native of string * ('c -> arg array -> int64)
  | Pluglet of Pre.t

type 'c host_op_entry = 'c Pluginop.Types.op_entry = {
  mutable replace : 'c host_impl option;
  mutable pre : 'c host_impl list;
  mutable post : 'c host_impl list;
  mutable ext : 'c host_impl option;
}

type 'c host_instance = 'c Pluginop.Types.instance = {
  plugin : Plugin.t;
  pool : Memory_pool.t;
  mutable pres : Pre.t list;
  opaque : (int, int) Hashtbl.t; (* opaque-data id -> heap offset *)
  mutable bound : 'c option;     (* connection the instance is bound to *)
}

type t = {
  sim : Sim.t;
  net : Net.t;
  cfg : config;
  role : role;
  mutable state : state;
  local_cid : int64;
  mutable remote_cid : int64;
  initial_key : int64;
  mutable key : int64;
  mutable paths : path array;
  (* CID set (RFC 9000 §5.1): CIDs we issued for the peer to address us
     with (newest first, including the handshake CID at seq 0), spare CIDs
     the peer issued us, and the sequence number of the CID we currently
     send to. The candidate tracks §9 path validation in flight. *)
  mutable local_cids : (int64 * int64) list;   (* (seq, cid), newest first *)
  mutable cid_seq : int64;                     (* next local seq to issue *)
  mutable remote_spares : (int64 * int64) list; (* (seq, cid), oldest first *)
  mutable remote_cid_seq : int64;              (* seq of [remote_cid] *)
  mutable candidate : path_candidate option;
  mutable challenge_ctr : int64;
  mutable last_reprobe_at : Sim.time;
  mutable last_rotate_at : Sim.time;
  mutable gen_cid : unit -> int64;
      (* CID source; the endpoint overrides it with its own RNG so issued
         CIDs are registered in (and collision-free across) its demux *)
  mutable on_cid_issued : int64 -> unit;
  mutable on_cid_retired : int64 -> unit;
  (* recovery *)
  mutable next_pn : int64;
  sent : (int64, sent_packet) Hashtbl.t;
  mutable ack_watermark : int64;
      (* no pn below this is still in [sent]: pns are assigned in
         increasing order, so once a pn has left the in-flight table it
         never returns and the watermark only advances. Lets ack
         processing clip ranges to the live window instead of walking
         every acknowledged pn since the start of the connection. *)
  mutable largest_acked : int64;
  mutable largest_acked_per_path : int64 array; (* per-path largest path_seq acked *)
  mutable next_path_seq : int64 array;
  mutable largest_sent_at : Sim.time;
  sent_times : (int64, Sim.time) Hashtbl.t; (* retained past c.sent removal *)
  mutable pto_backoff : int;
  (* Alarms are intrusive nodes in the node-wide hierarchical timer
     wheel (one wheel per simulator, shared by every connection on it):
     arm / cancel / re-arm are allocation-free pointer surgery instead
     of one simulator-heap event per armed alarm. *)
  wheel : Engine.Timer_wheel.t;
  loss_alarm : Engine.Timer_wheel.alarm;
  ack_alarm : Engine.Timer_wheel.alarm;
  idle_alarm : Engine.Timer_wheel.alarm;
  stall_alarm : Engine.Timer_wheel.alarm;
      (* client downlink-stall watchdog (armed only with cid_pool > 0):
         a pure receiver never arms the PTO clock, so silence on the
         return path must be noticed here to trigger the reprobe escape *)
  mutable idle_period : Sim.time;
      (* period captured at arm time: the wheel's fire callback is fixed
         at construction, so the value each old per-arm closure captured
         lives in the record instead *)
  mutable stall_period : Sim.time;
  mutable last_activity : Sim.time;
  mutable ae_sent_since_recv : bool;
      (* RFC 9000 §10.1: the idle clock restarts on receipt, and on the
         *first* ack-eliciting send after receiving — not on every
         retransmission, else a blackout livelocks the connection *)
  (* receiving *)
  acks : Quic.Ackranges.t;
  mutable ack_needed : bool;
  mutable ae_since_ack : int;
  mutable largest_recv : int64;
  mutable largest_recv_at : Sim.time; (* for the ACK delay field *)
  mutable last_spin_received : bool;
  mutable spin : bool;
  (* streams *)
  streams : (int, stream) Hashtbl.t;
  stream_rr : int Queue.t; (* round-robin rotation order *)
  crypto_send : Quic.Sendbuf.t;
  crypto_recv : Quic.Recvbuf.t;
  crypto_acc : Buffer.t; (* contiguous crypto bytes read so far *)
  mutable crypto_done : bool;
  (* flow control *)
  mutable max_data_local : int64;
  mutable max_data_remote : int64;
  mutable data_sent : int64;
  mutable data_received : int64;
  mutable max_data_frame_pending : bool;
  (* transport parameters *)
  mutable local_params : TP.t;
  mutable peer_params : TP.t option;
  (* control frames queued for the next packets *)
  ctrl : F.t Queue.t;
  (* plugin machinery: the transport-neutral protoop registry and attached
     instances, instantiated at this connection type. The HOST closures it
     dispatches through are built in [Host_api]. *)
  po : t Pluginop.Types.state;
  sched : Scheduler.t;
  mutable plugin_turn : bool; (* alternate plugin-first packets *)
  (* scratch for the packet currently processed or built *)
  mutable cur_pn : int64;
  mutable cur_path : int;
  mutable cur_size : int;
  mutable cur_payload : string;
  (* the payload slice of the packet just built (send) or being processed
     (receive), materialized lazily from [cur_wire] — only the FEC helper
     ever reads it as a string, and [blit_current_payload] serves it
     without materializing at all, so the plain path never pays the copy.
     [cur_payload_len = 0] means [cur_payload] is authoritative as-is. *)
  mutable cur_wire : string;
  mutable cur_payload_off : int;
  mutable cur_payload_len : int;
  mutable cur_has_stream : bool;
  mutable cur_ecn_ce : bool;
  mutable recover_depth : int;
  mutable rx_scratch : Pluginop.Memory_pool.t option;
  (* pooled receive scratch, created lazily on the first FEC recovery:
     stages the recovered packet image across the frame replay so the
     fast path never allocates it *)
  (* plugin exchange *)
  plugin_out : (string, Quic.Sendbuf.t) Hashtbl.t;
  plugin_in : (string, Quic.Recvbuf.t) Hashtbl.t;
  mutable plugin_proofs : (string * string) list; (* name -> received proof *)
  mutable provide_plugin : string -> formula:string -> (string * string) option;
  mutable verify_plugin : name:string -> bytes:string -> proof:string -> bool;
  mutable on_plugin_received : Plugin.t -> unit;
  mutable acquire_instance : string -> instance option;
      (* endpoint-provided: a cached instance (Section 2.5) or a freshly
         built one for a locally available plugin; None if unavailable *)
  (* app interface *)
  mutable on_stream_data : int -> string -> fin:bool -> unit;
  mutable on_message : string -> unit;
  mutable on_established : unit -> unit;
  mutable on_closed : unit -> unit;
  stats : stats;
  created_at : Sim.time;
  mutable established_at : Sim.time option;
  mutable wake_pending : bool;
  mutable negotiated : bool;
  mutable close_reason : string;
}

(* The historical engine-local names, instantiated at this connection. *)
and impl = t host_impl
and native = t -> arg array -> int64
and op_entry = t host_op_entry
and instance = t host_instance

let initial_key = 0x1_5151_5151L

let i64 = Int64.of_int
let to_i = Int64.to_int

let state_code c =
  match c.state with
  | Handshaking -> 0L
  | Established -> 1L
  | Closing -> 2L
  | Closed -> 3L
  | Failed _ -> 4L

let path c id = if id >= 0 && id < Array.length c.paths then Some c.paths.(id) else None

let default_path c = c.paths.(0)

let is_open c = match c.state with Handshaking | Established -> true | _ -> false

let fail_connection c reason =
  if c.state <> Closed then begin
    Log.warn (fun m -> m "connection failed: %s" reason);
    c.state <- Failed reason;
    c.close_reason <- reason
  end

(* The payload of the packet currently built or processed. Both
   directions record only the wire image plus offsets; the slice is cut
   (and cached) the first time a plugin helper actually asks for the
   string. *)
let current_payload c =
  if c.cur_payload_len > 0 then begin
    c.cur_payload <- String.sub c.cur_wire c.cur_payload_off c.cur_payload_len;
    c.cur_payload_len <- 0
  end;
  c.cur_payload

let current_payload_length c =
  if c.cur_payload_len > 0 then c.cur_payload_len
  else String.length c.cur_payload

(* Copy the current payload into [dst] without materializing the slice —
   the packet_bytes helper serves plugins straight from the wire image. *)
let blit_current_payload c dst dst_off =
  if c.cur_payload_len > 0 then
    Bytes.blit_string c.cur_wire c.cur_payload_off dst dst_off
      c.cur_payload_len
  else
    Bytes.blit_string c.cur_payload 0 dst dst_off (String.length c.cur_payload)

(* The per-connection receive scratch pool: 16 KiB, enough to stage the
   deepest recovery recursion the engine allows, and only ever created
   when a repair actually fires. *)
let rx_scratch c =
  match c.rx_scratch with
  | Some p -> p
  | None ->
    let p = Pluginop.Memory_pool.create ~block_size:64 ~size:16384 () in
    c.rx_scratch <- Some p;
    p

let make_stats () =
  {
    bytes_sent = 0;
    bytes_received = 0;
    pkts_sent = 0;
    pkts_received = 0;
    pkts_lost = 0;
    pkts_retransmitted = 0;
    pkts_out_of_order = 0;
    frames_recovered = 0;
    pkts_dup_rejected = 0;
    pkts_corrupt_discarded = 0;
    persistent_congestion_events = 0;
    plugin_sanctions = 0;
    plugin_fallbacks = 0;
    cids_issued = 0;
    cids_retired = 0;
    cids_rotated = 0;
    paths_validated = 0;
    path_probes = 0;
    unvalidated_tx = 0;
  }

(* Is [cid] one of the CIDs this connection answers to? *)
let has_local_cid c cid = List.exists (fun (_, x) -> x = cid) c.local_cids

(* Fresh unpredictable-to-on-path-observers challenge material, derived
   from the connection key so replays stay deterministic per seed. *)
let next_challenge c =
  c.challenge_ctr <- Int64.add c.challenge_ctr 1L;
  Quic.Packet.tag
    ~key:(Int64.logxor c.key c.local_cid)
    (Int64.to_string c.challenge_ctr)

(* Forward references into the orchestration layer: lower layers (helpers,
   recovery) must wake the sender or hand back a recovered packet, but the
   implementations live above them in the module graph. [Connection] and
   [Sender] fill these in at load time. *)

let wake_ref : (t -> unit) ref = ref (fun _ -> ())
let wake c = !wake_ref c

(* Receive-path profiling, sampled by [Connection.receive_datagram] when
   [rx_profile] is on: wall-clock and minor-heap words spent across
   datagram processing, for the rx_* breakdowns in BENCH_e2e. The clock
   is injectable — benches install [Unix.gettimeofday]; the [Sys.time]
   default keeps the library free of the unix dependency. Off, the cost
   is one branch per datagram. *)
let rx_profile = ref false
let rx_clock : (unit -> float) ref = ref Sys.time
let rx_seconds = ref 0.0
let rx_minor_words = ref 0.0
let rx_packets = ref 0

let rx_profile_reset () =
  rx_seconds := 0.0;
  rx_minor_words := 0.0;
  rx_packets := 0

(* The recovered packet image [pn(4) || payload] is borrowed: valid only
   for the duration of the call (it lives in the rx scratch pool). *)
let process_recovered_ref : (t -> Bytes.t -> off:int -> len:int -> unit) ref =
  ref (fun _ _ ~off:_ ~len:_ -> ())

(* Adopt [(seq, cid)] as the CID we address the peer with, retiring the
   one in use and every spare at or below the adopted sequence number.
   Adoption is strictly monotonic in seq: [remote_cid_seq] never moves
   backwards, so together with the [seq > remote_cid_seq] insert guard on
   NEW_CONNECTION_ID a requeued retransmission can never re-insert a
   sequence number whose Retire the peer already processed — rotating to
   such a ghost CID would blackhole every packet until idle timeout. The
   retires for skipped spares keep the peer's replenishment counting
   honest (one fresh CID per retired seq). *)
let adopt_remote_cid c (seq, cid) =
  Queue.push (F.Retire_connection_id c.remote_cid_seq) c.ctrl;
  List.iter
    (fun (s, _) -> if s < seq then Queue.push (F.Retire_connection_id s) c.ctrl)
    c.remote_spares;
  c.remote_spares <- List.filter (fun (s, _) -> s > seq) c.remote_spares;
  c.remote_cid <- cid;
  c.remote_cid_seq <- seq;
  c.last_rotate_at <- Sim.now c.sim;
  c.stats.cids_rotated <- c.stats.cids_rotated + 1

(* A spare we may rotate to: unused, and ahead of the current sequence. *)
let adoptable_spare c =
  List.find_opt
    (fun (s, cid) -> s > c.remote_cid_seq && cid <> c.remote_cid)
    c.remote_spares

let reprobe_ref : (t -> unit) ref = ref (fun _ -> ())
(* Client-side stall escape (implemented by [Sender]): rotate to a spare
   CID and revalidate the path with a long-header PATH_CHALLENGE probe.
   [Recovery] calls it when consecutive PTOs suggest the 4-tuple died
   (NAT rebinding, stateful-firewall blackhole). *)
