(* Re-export: the plugin heap allocator lives in the transport-neutral
   pluginop library. *)
include Pluginop.Memory_pool
