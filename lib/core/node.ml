(* Node-scope plugin machinery: the available-plugin cache and the
   cross-connection instance (PRE) cache of Section 2.5, shared by every
   endpoint created with the same node. See node.mli for the layering
   relative to the process-global compiled-program cache in [Pre]. *)

let src = Logs.Src.create "pquic.node"

module Log = (val Logs.src_log src : Logs.LOG)

type t = {
  available : (string, Plugin.t) Hashtbl.t;
  instances : (string, Connection.instance Queue.t) Hashtbl.t;
  mutable outstanding : (Connection.t * Connection.instance) list;
  mutable instance_capacity : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(instance_capacity = 256) () =
  {
    available = Hashtbl.create 8;
    instances = Hashtbl.create 8;
    outstanding = [];
    instance_capacity = max 1 instance_capacity;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let add_plugin t (plugin : Plugin.t) =
  Hashtbl.replace t.available plugin.Plugin.name plugin

let has_plugin t name = Hashtbl.mem t.available name
let find_plugin t name = Hashtbl.find_opt t.available name

let supported_plugins t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.available []
  |> List.sort String.compare

(* Reclaim instances whose connection finished; killed (failed)
   connections do not recycle, so a misbehaving plugin's PREs are
   discarded. Queues are capacity-bounded: a churny node caches at most
   [instance_capacity] wiped instances per plugin. *)
let recycle t =
  let keep, recyclable =
    List.partition
      (fun (c, _) ->
        match Connection.state c with
        | Connection.Closed -> false
        | Connection.Failed _ -> false
        | _ -> true)
      t.outstanding
  in
  t.outstanding <- keep;
  List.iter
    (fun (c, inst) ->
      match Connection.state c with
      | Connection.Failed _ -> ()
      | _ ->
        let name = (inst.Connection.plugin : Plugin.t).Plugin.name in
        let q =
          match Hashtbl.find_opt t.instances name with
          | Some q -> q
          | None ->
            let q = Queue.create () in
            Hashtbl.replace t.instances name q;
            q
        in
        if Queue.length q >= t.instance_capacity then
          t.evictions <- t.evictions + 1
        else Queue.push inst q)
    recyclable

let acquire_instance t ?bind name =
  recycle t;
  let got =
    match Hashtbl.find_opt t.instances name with
    | Some q when not (Queue.is_empty q) ->
      t.hits <- t.hits + 1;
      Some (Queue.pop q)
    | _ -> (
      match Hashtbl.find_opt t.available name with
      | None -> None
      | Some plugin -> (
        t.misses <- t.misses + 1;
        try Some (Connection.build_instance plugin) with
        | Pre.Rejected msg ->
          Log.warn (fun m -> m "plugin %s rejected: %s" name msg);
          None
        | Plc.Compile.Error msg ->
          Log.warn (fun m -> m "plugin %s failed to compile: %s" name msg);
          None))
  in
  (match (got, bind) with
  | Some inst, Some c -> t.outstanding <- (c, inst) :: t.outstanding
  | _ -> ());
  got

type counters = { hits : int; misses : int; evictions : int; cached : int }

let counters (t : t) =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    cached = Hashtbl.fold (fun _ q acc -> acc + Queue.length q) t.instances 0;
  }
