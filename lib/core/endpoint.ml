(* A PQUIC endpoint: binds network addresses, demultiplexes incoming
   packets to connections by destination connection ID, accepts new
   connections (server role), and fronts the node-scope plugin machinery
   ([Node]) — the local cache of available plugins and the
   cross-connection PRE cache of Section 2.5.

   Demultiplexing is an O(1) probe of an open-addressed table keyed by
   the *full* CID bytes ([Engine.Conn_table]): every CID a connection
   answers to — the handshake CID and every spare issued for rotation —
   maps to it, and retirement removes exactly that key. The lookup runs
   directly against the CID bytes inside the wire image, so routing a
   datagram allocates nothing. *)

module Sim = Netsim.Sim
module Net = Netsim.Net
module TP = Quic.Transport_params
module Table = Engine.Conn_table

let src = Logs.Src.create "pquic.endpoint"

module Log = (val Logs.src_log src : Logs.LOG)

type t = {
  sim : Sim.t;
  net : Net.t;
  cfg : Connection.config;
  addr : Net.addr;
  mutable extra_addrs : Net.addr list;
  conns : Connection.t Table.t;
  node : Node.t;
  rng : Netsim.Rng.t;
  mutable prover : name:string -> formula:string -> string option;
  mutable verifier : name:string -> bytes:string -> proof:string -> bool;
  mutable on_connection : Connection.t -> unit;
  mutable plugins_to_inject : string list;
  mutable accepted : int;
  tweak_params : TP.t -> TP.t;
      (* final say on our transport parameters (e.g. a chaos harness
         shrinking idle_timeout); applied by [base_params] *)
}

let create ?(cfg = Connection.default_config) ?(extra_addrs = []) ?node
    ?(tweak_params = fun p -> p) ~sim ~net ~addr ~seed () =
  let node = match node with Some n -> n | None -> Node.create () in
  {
    sim;
    net;
    cfg;
    addr;
    extra_addrs;
    tweak_params;
    conns = Table.create ();
    node;
    rng = Netsim.Rng.create seed;
    prover = (fun ~name:_ ~formula:_ -> None);
    verifier = (fun ~name:_ ~bytes:_ ~proof:_ -> false);
    on_connection = ignore;
    plugins_to_inject = [];
    accepted = 0;
  }

let fresh_cid t = Netsim.Rng.next_int64 t.rng

(* Node-scope plugin machinery, delegated (see [Node]). *)
let add_plugin t plugin = Node.add_plugin t.node plugin
let has_plugin t name = Node.has_plugin t.node name
let supported_plugins t = Node.supported_plugins t.node
let acquire_instance t name = Node.acquire_instance t.node name
let cache_hits t = t.node.Node.hits
let cache_misses t = t.node.Node.misses

let provide_plugin t name ~formula =
  match Node.find_plugin t.node name with
  | None -> None
  | Some plugin -> (
    match t.prover ~name ~formula with
    | None -> None
    | Some proof ->
      let compressed = Compress.Lzss.compress (Plugin.serialize plugin) in
      Some (compressed, proof))

let setup_conn t c =
  Table.add t.conns (Table.key_of_cid (Connection.local_cid c)) c;
  (* CID agility: spare CIDs issued by the connection must reach the
     demultiplexer, so packets addressed to a rotated CID still find it. *)
  c.Connection.gen_cid <- (fun () -> fresh_cid t);
  c.Connection.on_cid_issued <-
    (fun cid -> Table.add t.conns (Table.key_of_cid cid) c);
  c.Connection.on_cid_retired <-
    (fun cid -> Table.remove t.conns (Table.key_of_cid cid));
  c.Connection.provide_plugin <- provide_plugin t;
  c.Connection.verify_plugin <- (fun ~name ~bytes ~proof -> t.verifier ~name ~bytes ~proof);
  c.Connection.on_plugin_received <- (fun plugin -> add_plugin t plugin);
  c.Connection.acquire_instance <-
    (fun name -> Node.acquire_instance t.node ~bind:c name)

let base_params t =
  t.tweak_params
    {
      TP.default with
      TP.supported_plugins = supported_plugins t;
      TP.plugins_to_inject = t.plugins_to_inject;
      TP.active_paths = t.extra_addrs;
    }

(* Wire-format peek at the source CID of a long header (accept path). *)
let scid_of_wire wire =
  if String.length wire >= 17 && Char.code wire.[0] land 0x80 <> 0 then
    Some (String.get_int64_be wire 9)
  else None

(* Accept path: an authenticated Initial to an unknown CID creates the
   server-side connection. Split out of [handle_datagram] so the server
   engine can reuse it behind its own routing. *)
let accept_initial t (dg : Net.datagram) wire ~dcid =
  (* an Initial packet to an unknown CID starts a new connection — but
     only if it authenticates under the initial key, else a corrupted
     packet whose damaged CID missed its connection would conjure a
     spurious half-open server connection. Handshake-type long headers
     (reprobe PATH_CHALLENGEs aimed at a CID the peer already retired)
     never create connections — they are stale. *)
  if Char.code wire.[0] land 0xe0 <> 0xc0 then
    Log.debug (fun m ->
        m "dropping packet to unknown cid %Lx (not an initial)" dcid)
  else begin
    match Quic.Packet.unprotect ~key:Connection.initial_key wire with
    | exception (Quic.Packet.Authentication_failed | Quic.Packet.Malformed) ->
      Log.debug (fun m -> m "dropping unauthenticated initial packet")
    | _ -> (
      match scid_of_wire wire with
      | None -> ()
      | Some scid ->
        let c =
          Connection.create ~sim:t.sim ~net:t.net ~cfg:t.cfg
            ~role:Connection.Server ~local_addr:dg.Net.dst
            ~remote_addr:dg.Net.src ~local_cid:dcid ~remote_cid:scid
            ~local_params:(base_params t) ()
        in
        c.Connection.key <-
          Quic.Packet.derive_key ~client_cid:scid ~server_cid:dcid;
        setup_conn t c;
        Connection.inject_local_plugins c;
        t.accepted <- t.accepted + 1;
        t.on_connection c;
        Connection.receive_datagram c dg)
  end

let handle_datagram t (dg : Net.datagram) =
  (* CE-marked datagrams arrive with their payload wrapped; route on the
     inner packet, the connection reads the mark itself. Corrupted ones
     are demultiplexed on the *damaged* wire image — the endpoint sees
     what the network delivered, so a flipped CID byte may miss the
     connection and the packet dies here, exactly as it should. *)
  let route wire =
    if String.length wire >= 9 then begin
      (* route on the CID bytes in place — no key allocation *)
      match Table.find_sub t.conns wire 1 8 with
      | Some c -> Connection.receive_datagram c dg
      | None ->
        accept_initial t dg wire ~dcid:(String.get_int64_be wire 1)
    end
  in
  match (match dg.Net.payload with Net.Ce p -> p | p -> p) with
  | Connection.Quic_packet wire -> route wire
  | Net.Corrupt (Connection.Quic_packet clean, descr) ->
    route (Net.corrupt_string descr clean)
  | _ -> ()

(* Bind all our addresses so packets reach the demultiplexer. *)
let listen t =
  List.iter
    (fun addr -> Net.attach t.net addr (handle_datagram t))
    (t.addr :: t.extra_addrs)

let connect ?(plugins_to_inject = []) t ~remote_addr =
  let local_cid = fresh_cid t in
  let remote_cid = fresh_cid t in
  let params =
    { (base_params t) with TP.plugins_to_inject =
        (match plugins_to_inject with [] -> t.plugins_to_inject | l -> l) }
  in
  let c =
    Connection.create ~sim:t.sim ~net:t.net ~cfg:t.cfg ~role:Connection.Client
      ~local_addr:t.addr ~remote_addr ~local_cid ~remote_cid
      ~local_params:params ()
  in
  c.Connection.key <-
    Quic.Packet.derive_key ~client_cid:local_cid ~server_cid:remote_cid;
  setup_conn t c;
  Connection.inject_local_plugins c;
  Connection.start_client c;
  c

(* Connections, not table entries: a connection with spare CIDs is
   registered under each of them, so dedup by handshake CID (unique and
   stable across rotation) rather than pairwise — this runs against
   million-entry tables in the server bench. *)
let connection_count t =
  let seen = Hashtbl.create 64 in
  Table.fold t.conns
    (fun acc _ c ->
      let cid = Connection.local_cid c in
      if Hashtbl.mem seen cid then acc
      else begin
        Hashtbl.add seen cid ();
        acc + 1
      end)
    0
