(* A PQUIC endpoint: binds network addresses, demultiplexes incoming
   packets to connections by destination connection ID, accepts new
   connections (server role), and owns the node-local plugin machinery —
   the *local cache* of available plugins and the cross-connection PRE
   cache of Section 2.5 (cached instances are reused without verifying or
   compiling the pluglets again; their heap is wiped before reuse). *)

module Sim = Netsim.Sim
module Net = Netsim.Net
module TP = Quic.Transport_params

let src = Logs.Src.create "pquic.endpoint"

module Log = (val Logs.src_log src : Logs.LOG)

type t = {
  sim : Sim.t;
  net : Net.t;
  cfg : Connection.config;
  addr : Net.addr;
  mutable extra_addrs : Net.addr list;
  conns : (int64, Connection.t) Hashtbl.t;
  available : (string, Plugin.t) Hashtbl.t;
  pre_cache : (string, Connection.instance Queue.t) Hashtbl.t;
  mutable outstanding : (Connection.t * Connection.instance) list;
  rng : Netsim.Rng.t;
  mutable prover : name:string -> formula:string -> string option;
  mutable verifier : name:string -> bytes:string -> proof:string -> bool;
  mutable on_connection : Connection.t -> unit;
  mutable plugins_to_inject : string list;
  mutable cache_hits : int;
  mutable cache_misses : int;
  tweak_params : TP.t -> TP.t;
      (* final say on our transport parameters (e.g. a chaos harness
         shrinking idle_timeout); applied by [base_params] *)
}

let create ?(cfg = Connection.default_config) ?(extra_addrs = [])
    ?(tweak_params = fun p -> p) ~sim ~net ~addr ~seed () =
  let t =
    {
      sim;
      net;
      cfg;
      addr;
      extra_addrs;
      tweak_params;
      conns = Hashtbl.create 8;
      available = Hashtbl.create 8;
      pre_cache = Hashtbl.create 8;
      outstanding = [];
      rng = Netsim.Rng.create seed;
      prover = (fun ~name:_ ~formula:_ -> None);
      verifier = (fun ~name:_ ~bytes:_ ~proof:_ -> false);
      on_connection = ignore;
      plugins_to_inject = [];
      cache_hits = 0;
      cache_misses = 0;
    }
  in
  t

let fresh_cid t = Netsim.Rng.next_int64 t.rng

(* Make a plugin available in the node's local plugin cache: it can be
   injected locally and served to peers that request it. *)
let add_plugin t (plugin : Plugin.t) = Hashtbl.replace t.available plugin.Plugin.name plugin

let has_plugin t name = Hashtbl.mem t.available name

let supported_plugins t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.available []
  |> List.sort String.compare

(* Reclaim instances whose connection finished; killed (failed) connections
   do not recycle, so a misbehaving plugin's PREs are discarded. *)
let recycle t =
  let keep, recyclable =
    List.partition
      (fun (c, _) ->
        match Connection.state c with
        | Connection.Closed -> false
        | Connection.Failed _ -> false
        | _ -> true)
      t.outstanding
  in
  t.outstanding <- keep;
  List.iter
    (fun (c, inst) ->
      match Connection.state c with
      | Connection.Failed _ -> ()
      | _ ->
        let name = (inst.Connection.plugin : Plugin.t).Plugin.name in
        let q =
          match Hashtbl.find_opt t.pre_cache name with
          | Some q -> q
          | None ->
            let q = Queue.create () in
            Hashtbl.replace t.pre_cache name q;
            q
        in
        Queue.push inst q)
    recyclable

(* Fetch an injectable instance: cached PREs when available (no
   verification, no compilation — the Section 2.5 fast path), otherwise a
   fresh build of a locally available plugin. *)
let acquire_instance t name =
  recycle t;
  match Hashtbl.find_opt t.pre_cache name with
  | Some q when not (Queue.is_empty q) ->
    t.cache_hits <- t.cache_hits + 1;
    Some (Queue.pop q)
  | _ -> (
    match Hashtbl.find_opt t.available name with
    | None -> None
    | Some plugin -> (
      t.cache_misses <- t.cache_misses + 1;
      try Some (Connection.build_instance plugin) with
      | Pre.Rejected msg ->
        Log.warn (fun m -> m "plugin %s rejected: %s" name msg);
        None
      | Plc.Compile.Error msg ->
        Log.warn (fun m -> m "plugin %s failed to compile: %s" name msg);
        None))

let provide_plugin t name ~formula =
  match Hashtbl.find_opt t.available name with
  | None -> None
  | Some plugin -> (
    match t.prover ~name ~formula with
    | None -> None
    | Some proof ->
      let compressed = Compress.Lzss.compress (Plugin.serialize plugin) in
      Some (compressed, proof))

let setup_conn t c =
  Hashtbl.replace t.conns (Connection.local_cid c) c;
  (* CID agility: spare CIDs issued by the connection must reach the
     demultiplexer, so packets addressed to a rotated CID still find it. *)
  c.Connection.gen_cid <- (fun () -> fresh_cid t);
  c.Connection.on_cid_issued <- (fun cid -> Hashtbl.replace t.conns cid c);
  c.Connection.on_cid_retired <- (fun cid -> Hashtbl.remove t.conns cid);
  c.Connection.provide_plugin <- provide_plugin t;
  c.Connection.verify_plugin <- (fun ~name ~bytes ~proof -> t.verifier ~name ~bytes ~proof);
  c.Connection.on_plugin_received <- (fun plugin -> add_plugin t plugin);
  c.Connection.acquire_instance <-
    (fun name ->
      match acquire_instance t name with
      | Some inst ->
        t.outstanding <- (c, inst) :: t.outstanding;
        Some inst
      | None -> None)

let base_params t =
  t.tweak_params
    {
      TP.default with
      TP.supported_plugins = supported_plugins t;
      TP.plugins_to_inject = t.plugins_to_inject;
      TP.active_paths = t.extra_addrs;
    }

(* Wire-format peek at the destination CID for demultiplexing. *)
let dcid_of_wire wire =
  if String.length wire >= 9 then Some (String.get_int64_be wire 1) else None

let scid_of_wire wire =
  if String.length wire >= 17 && Char.code wire.[0] land 0x80 <> 0 then
    Some (String.get_int64_be wire 9)
  else None

let handle_datagram t (dg : Net.datagram) =
  (* CE-marked datagrams arrive with their payload wrapped; route on the
     inner packet, the connection reads the mark itself. Corrupted ones
     are demultiplexed on the *damaged* wire image — the endpoint sees
     what the network delivered, so a flipped CID byte may miss the
     connection and the packet dies here, exactly as it should. *)
  let inner = match dg.Net.payload with Net.Ce p -> p | p -> p in
  let damage, inner =
    match inner with Net.Corrupt (p, d) -> (Some d, p) | p -> (None, p)
  in
  match inner with
  | Connection.Quic_packet clean_wire -> (
    let wire =
      match damage with
      | None -> clean_wire
      | Some descr -> Net.corrupt_string descr clean_wire
    in
    match dcid_of_wire wire with
    | None -> ()
    | Some dcid -> (
      match Hashtbl.find_opt t.conns dcid with
      | Some c -> Connection.receive_datagram c dg
      | None ->
        (* an Initial packet to an unknown CID starts a new connection —
           but only if it authenticates under the initial key, else a
           corrupted packet whose damaged CID missed its connection would
           conjure a spurious half-open server connection. Handshake-type
           long headers (reprobe PATH_CHALLENGEs aimed at a CID the peer
           already retired) never create connections — they are stale. *)
        if Char.code wire.[0] land 0xe0 <> 0xc0 then
          Log.debug (fun m ->
              m "dropping packet to unknown cid %Lx (not an initial)" dcid)
        else begin
          match Quic.Packet.unprotect ~key:Connection.initial_key wire with
          | exception
              (Quic.Packet.Authentication_failed | Quic.Packet.Malformed) ->
            Log.debug (fun m -> m "dropping unauthenticated initial packet")
          | _ -> (
            match scid_of_wire wire with
            | None -> ()
            | Some scid ->
              let c =
                Connection.create ~sim:t.sim ~net:t.net ~cfg:t.cfg
                  ~role:Connection.Server ~local_addr:dg.Net.dst
                  ~remote_addr:dg.Net.src ~local_cid:dcid ~remote_cid:scid
                  ~local_params:(base_params t) ()
              in
              c.Connection.key <-
                Quic.Packet.derive_key ~client_cid:scid ~server_cid:dcid;
              setup_conn t c;
              Connection.inject_local_plugins c;
              t.on_connection c;
              Connection.receive_datagram c dg)
        end))
  | _ -> ()

(* Bind all our addresses so packets reach the demultiplexer. *)
let listen t =
  List.iter
    (fun addr -> Net.attach t.net addr (handle_datagram t))
    (t.addr :: t.extra_addrs)

let connect ?(plugins_to_inject = []) t ~remote_addr =
  let local_cid = fresh_cid t in
  let remote_cid = fresh_cid t in
  let params =
    { (base_params t) with TP.plugins_to_inject =
        (match plugins_to_inject with [] -> t.plugins_to_inject | l -> l) }
  in
  let c =
    Connection.create ~sim:t.sim ~net:t.net ~cfg:t.cfg ~role:Connection.Client
      ~local_addr:t.addr ~remote_addr ~local_cid ~remote_cid
      ~local_params:params ()
  in
  c.Connection.key <-
    Quic.Packet.derive_key ~client_cid:local_cid ~server_cid:remote_cid;
  setup_conn t c;
  Connection.inject_local_plugins c;
  Connection.start_client c;
  c

(* Connections, not table entries: a connection with spare CIDs is
   registered under each of them. *)
let connection_count t =
  Hashtbl.fold
    (fun _ c acc -> if List.memq c acc then acc else c :: acc)
    t.conns []
  |> List.length
