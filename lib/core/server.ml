(* Server engine: CID-routed connection table + sharded workers +
   shared timer wheel, fronting the endpoint's accept path. *)

module Net = Netsim.Net
module Table = Engine.Conn_table
module Shard = Engine.Shard
module TW = Engine.Timer_wheel

type t = {
  ep : Endpoint.t;
  wheel : TW.t;
  shards : (Connection.t * Net.datagram) Shard.t;
  mutable routed : int;
}

(* A connection's shard follows its handshake CID: rotation changes the
   CIDs on the wire, not the owning worker. *)
let shard_of c = Int64.to_int (Connection.local_cid c) land max_int

let create ?cfg ?node ?(shards = 8) ?batch ~sim ~net ~addr ~seed () =
  let ep = Endpoint.create ?cfg ?node ~sim ~net ~addr ~seed () in
  let shards =
    Shard.create sim ~shards ?batch (fun _shard (c, dg) ->
        Connection.receive_datagram c dg)
  in
  { ep; wheel = TW.shared sim; shards; routed = 0 }

let handle_datagram t (dg : Net.datagram) =
  (* same unwrap discipline as [Endpoint.handle_datagram]: route on the
     wire image the network delivered, damage included *)
  let route wire =
    if String.length wire >= 9 then begin
      match Table.find_sub t.ep.Endpoint.conns wire 1 8 with
      | Some c ->
        t.routed <- t.routed + 1;
        Shard.enqueue t.shards (shard_of c) (c, dg)
      | None ->
        Endpoint.accept_initial t.ep dg wire ~dcid:(String.get_int64_be wire 1)
    end
  in
  match (match dg.Net.payload with Net.Ce p -> p | p -> p) with
  | Connection.Quic_packet wire -> route wire
  | Net.Corrupt (Connection.Quic_packet clean, descr) ->
    route (Net.corrupt_string descr clean)
  | _ -> ()

let listen t =
  List.iter
    (fun addr -> Net.attach t.ep.Endpoint.net addr (handle_datagram t))
    (t.ep.Endpoint.addr :: t.ep.Endpoint.extra_addrs)

let accepted t = t.ep.Endpoint.accepted
let connection_count t = Endpoint.connection_count t.ep

type stats = {
  accepted : int;
  conns : int;
  routed : int;
  dispatched : int;
  batches : int;
  wheel : TW.counters;
  table : int * int * int;
  plugin_cache : Node.counters;
}

let stats t =
  {
    accepted = accepted t;
    conns = connection_count t;
    routed = t.routed;
    dispatched = Shard.dispatched t.shards;
    batches = Shard.batches t.shards;
    wheel = TW.counters t.wheel;
    table = Table.stats t.ep.Endpoint.conns;
    plugin_cache = Node.counters t.ep.Endpoint.node;
  }
