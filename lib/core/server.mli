(** Massive-concurrency server engine: the "third host" shape.

    Layers an {!Endpoint} (full-CID demux table + accept path + node
    plugin cache) under sharded worker run-queues ({!Engine.Shard}) and
    the per-simulator timer wheel ({!Engine.Timer_wheel}): datagrams for
    established connections are routed O(1) by the CID bytes in the wire
    image and enqueued on the owning connection's shard; each busy shard
    drains in batches behind a single simulator event. Initials to
    unknown CIDs take the accept path inline. *)

type t = {
  ep : Endpoint.t;
  wheel : Engine.Timer_wheel.t;
  shards : (Connection.t * Netsim.Net.datagram) Engine.Shard.t;
  mutable routed : int;  (** datagrams routed to an existing connection *)
}

val create :
  ?cfg:Connection.config ->
  ?node:Node.t ->
  ?shards:int ->
  ?batch:int ->
  sim:Netsim.Sim.t ->
  net:Netsim.Net.t ->
  addr:Netsim.Net.addr ->
  seed:int64 ->
  unit ->
  t
(** [shards] worker queues (default 8), [batch] datagrams drained per
    shard event (default 64). [node] shares the plugin cache with other
    endpoints of the host. *)

val handle_datagram : t -> Netsim.Net.datagram -> unit
(** Route by full CID: known connection → its shard's run queue;
    unknown CID → the authenticated-Initial accept path. *)

val listen : t -> unit

val accepted : t -> int
val connection_count : t -> int

type stats = {
  accepted : int;
  conns : int;
  routed : int;
  dispatched : int;
  batches : int;
  wheel : Engine.Timer_wheel.counters;
  table : int * int * int;  (** live, capacity, tombstones *)
  plugin_cache : Node.counters;
}

val stats : t -> stats
