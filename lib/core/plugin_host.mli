(** Plugin lifecycle on a connection: instance construction, attachment to
    the protoop registry, sanctions, negotiation and the over-the-connection
    plugin exchange of Section 3.4. *)

open Conn_types

exception Injection_failed of string

val plugin_heap_size : int

val build_instance : Plugin.t -> instance
(** Build a fresh instance: every pluglet compiled (if needed) and
    statically verified, its PRE created over the shared heap.
    @raise Pre.Rejected when verification fails
    @raise Plc.Compile.Error when source compilation fails *)

val attach_instance : t -> instance -> instance
(** Attach a built instance: wipe its heap, install the helper table on
    every PRE, and bind the pluglets to their anchors. Rolls the whole
    plugin back if a replace anchor is already taken.
    @raise Injection_failed on anchor conflicts or double injection. *)

val inject_plugin : t -> Plugin.t -> (unit, string) result
(** [build_instance] + [attach_instance], with failures as [Error]. *)

val remove_plugin : t -> string -> unit
(** Remove a plugin's pluglets from the registry and scheduler. *)

val kill_plugin : t -> string -> string -> unit
(** Sanction a misbehaving plugin: remove it and fail the connection. *)

val inject_local_plugins : t -> unit
(** Inject the locally available plugins this host wants on the connection
    (its own plugins_to_inject). *)

val negotiate_plugins : t -> unit
(** Once per connection, after handshake + peer transport parameters:
    activate plugins both peers hold, roll back one-sided ones, request
    transfer of the missing ones (Section 3.4). *)

val request_plugin_transfer : t -> string -> unit

val handle_plugin_validate : t -> name:string -> formula:string -> unit
(** Peer asked for a plugin with a validation formula: serve the compressed
    bytecode + proof bundle on the plugin stream, or answer with an empty
    PLUGIN_PROOF. *)

val handle_plugin_chunk :
  t -> name:string -> offset:int64 -> fin:bool -> data:string -> unit
(** Reassemble an incoming plugin transfer; on completion decompress,
    deserialize, verify the proof and hand the plugin to the local cache. *)
