(* Re-export: the Table 1 helper/field id space lives in the
   transport-neutral pluginop library. *)
include Pluginop.Api
