(* Protocol-operation dispatch (Section 2.2): thin PQUIC facade over the
   transport-neutral engine in [Pluginop.Dispatch]. The generic engine
   carries the per-connection plugin state [c.po] and treats [c] as an
   opaque handle; this module pairs the two so the rest of the engine
   (recovery, sender, connection) keeps its historical call shape. *)

open Conn_types
module D = Pluginop.Dispatch

let find_entry c op param = D.find_entry c.po op param
let entry c op param = D.entry c.po op param
let has_entry c op param = D.has_entry c.po op param
let is_running c op param = D.is_running c.po op param
let iter_entries c f = D.iter_entries c.po f
let register_native c op name fn = D.register_native c.po op name fn

let exec_pluglet (_c : t) pre ~read_only (args : arg array) =
  D.exec_pluglet pre ~read_only args

let run_impl c impl ~read_only args = D.run_impl c.po c impl ~read_only args

let run_op c op ?param ?default (args : arg array) =
  D.run_op c.po c op ?param ?default args

let call_external c op (args : arg array) = D.call_external c.po c op args
