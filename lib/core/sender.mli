(** The send path: stream table, packet building blocks, and the packet
    assembly loop filling each packet under the Section 2.3 scheduler
    guarantees. Implements {!Conn_types.wake}. *)

open Conn_types

val header_overhead : t -> int
val payload_capacity : t -> long:bool -> int

val ack_frame_of : t -> Quic.Frame.t option
(** The ACK frame currently owed to the peer, if any ranges are tracked. *)

val stream_has_pending : t -> bool
val core_has_data : t -> bool
val something_to_send : t -> bool

val get_stream : t -> int -> stream
(** Get (or open, running the [stream_opened] protoop) a stream. *)

val conn_flow_allowance : t -> int
(** Connection-level flow-control room left for new stream data, bytes. *)

val build_and_send_packet : t -> bool
(** Assemble and transmit one packet; [false] when nothing was sent. *)

val send_pending : t -> unit
(** Send packets while the engine has something to put on the wire. *)

val wake_impl : t -> unit
(** Schedule an asynchronous send pass (bound to {!Conn_types.wake_ref}). *)

val send_path_probe : t -> path_candidate -> unit
(** Probe an unvalidated candidate address with PATH_CHALLENGE (plus any
    queued PATH_RESPONSEs, which must return to the candidate source —
    RFC 9000 §9.3). The probe packet bypasses congestion control and loss
    bookkeeping, and is clamped to 3× the bytes received from the
    candidate (§8.1 anti-amplification). *)

val rotate_and_reprobe : t -> unit
(** Client-side stall escape (bound to {!Conn_types.reprobe_ref}): on a
    full RTO, rotate to a spare destination CID — at most once per stall
    episode — and send a long-header PATH_CHALLENGE probe that re-opens
    stateful middlebox pinholes on the path. No-op when [cid_pool] is 0. *)
