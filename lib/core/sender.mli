(** The send path: stream table, packet building blocks, and the packet
    assembly loop filling each packet under the Section 2.3 scheduler
    guarantees. Implements {!Conn_types.wake}. *)

open Conn_types

val header_overhead : t -> int
val payload_capacity : t -> long:bool -> int

val ack_frame_of : t -> Quic.Frame.t option
(** The ACK frame currently owed to the peer, if any ranges are tracked. *)

val stream_has_pending : t -> bool
val core_has_data : t -> bool
val something_to_send : t -> bool

val get_stream : t -> int -> stream
(** Get (or open, running the [stream_opened] protoop) a stream. *)

val conn_flow_allowance : t -> int
(** Connection-level flow-control room left for new stream data, bytes. *)

val build_and_send_packet : t -> bool
(** Assemble and transmit one packet; [false] when nothing was sent. *)

val send_pending : t -> unit
(** Send packets while the engine has something to put on the wire. *)

val wake_impl : t -> unit
(** Schedule an asynchronous send pass (bound to {!Conn_types.wake_ref}). *)
