(** Loss recovery: RTT estimation, ACK-range processing, loss detection and
    the PTO/loss-timer machinery. Every decision point dispatches through a
    protocol operation so recovery plugins can reshape the behaviour. *)

open Conn_types

val process_ack : t -> Quic.Frame.ack -> unit
(** Process a received ACK frame: credit newly acknowledged packets
    (RTT sample, congestion control, per-frame notifications), then run
    loss detection and re-arm the loss timer. *)

val set_loss_alarm : t -> unit
(** (Re-)arm the loss/PTO timer from the oldest in-flight packet; the
    [set_loss_timer] and [get_retransmission_delay] protoops can override
    the schedule. *)

val declare_lost : t -> sent_packet -> unit
(** Declare one in-flight packet lost: congestion response, stats, and the
    per-frame loss notifications that queue retransmissions. *)

val detect_losses : t -> unit
(** Run the (replaceable) packet-threshold + time-threshold loss detector
    over the in-flight table. *)

val oldest_in_flight : t -> sent_packet option

val on_loss_alarm : t -> unit
(** The loss-timer expiry behaviour: probe first, full RTO on backoff. *)
