(** Protocol-operation dispatch (Section 2.2): the PQUIC facade over the
    transport-neutral engine in {!Pluginop.Dispatch}, pairing the
    connection with its plugin state [c.po].

    Built-in unparameterized operations resolve through a dense array
    indexed by protoop id, so the per-packet hot path performs no hashtable
    lookup; parameterized operations (frame types) and plugin-registered
    ids use the hashtable. *)

open Conn_types

val entry : t -> Protoop.id -> int option -> op_entry
(** Get (or create) the anchor entry for an operation. *)

val find_entry : t -> Protoop.id -> int option -> op_entry option
(** Like {!entry} but without creating a missing entry. *)

val has_entry : t -> Protoop.id -> int option -> bool

val is_running : t -> Protoop.id -> int option -> bool
(** Whether (op, param) is on the running-operation stack — used by the
    engine to avoid re-dispatching an operation from inside itself (a
    FEC-recovered packet replaying a frame of the type being processed),
    which {!run_op} would sanction as a protocol-operation loop. *)

val iter_entries : t -> (op_entry -> unit) -> unit
(** Iterate every registered entry (dense array and hashtable). *)

val register_native : t -> Protoop.id -> string -> native -> unit
(** Install a native implementation on the replace anchor. *)

val exec_pluglet :
  t -> Pre.t -> read_only:bool -> arg array -> (int64, string) result
(** Execute one pluglet with the given arguments; buffers are mapped into
    the PRE for the duration of the call ([read_only] for passive anchors).
    A VM trap (memory violation, fuel, API misuse) is returned as [Error]
    for the caller to sanction. *)

val run_impl : t -> impl -> read_only:bool -> arg array -> int64
(** {!exec_pluglet} (or a native call) with traps sanctioned in place:
    used for the passive pre/post anchors. *)

val run_op :
  t -> Protoop.id -> ?param:int -> ?default:(t -> arg array -> int64) ->
  arg array -> int64
(** Run a protocol operation: pre anchors, then the replace anchor (pluglet
    override or [default]), then post anchors. Re-entering a running
    operation is the Figure 3 loop and terminates the connection. *)

val call_external : t -> Protoop.id -> arg array -> int64 option
(** Call a plugin-defined external operation (Section 2.4); [None] when no
    pluglet sits on the external anchor. *)
