(* Loss recovery: RTT estimation, ACK-range processing, loss detection and
   the PTO/loss-timer machinery. Every decision point dispatches through a
   protocol operation so retransmission-policy plugins (e.g. Tail Loss
   Probe) can reshape the behaviour. *)

module F = Quic.Frame
module Sim = Netsim.Sim
open Conn_types

let run_op = Dispatch.run_op

(* Kept as a fold over the in-flight table (small: the congestion window
   bounds it) rather than a send-order queue: several packets often share
   a send timestamp, and the probe path must keep the seed's tie-break to
   stay trace-compatible with the recorded experiments. *)
let oldest_in_flight c =
  let best = ref None in
  Hashtbl.iter
    (fun _ sp ->
      match !best with
      | None -> best := Some sp
      | Some b -> if sp.sent_at < b.sent_at then best := Some sp)
    c.sent;
  !best

let on_loss_alarm_ref : (t -> unit) ref = ref (fun _ -> ())

let set_loss_alarm c =
  let default c _ =
    Engine.Timer_wheel.cancel c.wheel c.loss_alarm;
    (match oldest_in_flight c with
    | None -> ()
    | Some sp ->
      let p = c.paths.(min sp.path_id (Array.length c.paths - 1)) in
      let pto = Quic.Rtt.pto p.rtt in
      let base_timeout =
        Int64.add
          (Int64.mul pto (Int64.of_int (1 lsl min c.pto_backoff 6)))
          (Sim.of_ms c.cfg.ack_delay_ms)
      in
      (* retransmission-policy plugins (e.g. Tail Loss Probe) replace this
         operation to shorten or reshape the timer *)
      let timeout =
        let v =
          run_op c Protoop.get_retransmission_delay
            ~default:(fun _ args -> match args.(0) with I v -> v | _ -> 0L)
            [| I base_timeout; I (i64 sp.path_id) |]
        in
        if v > 0L then v else base_timeout
      in
      let fire_at =
        Int64.max
          (Int64.add sp.sent_at timeout)
          (Int64.add (Sim.now c.sim) 1_000_000L)
      in
      Engine.Timer_wheel.arm c.wheel c.loss_alarm ~at:fire_at);
    0L
  in
  ignore (run_op c Protoop.set_loss_timer ~default [||])

(* ------------------------------------------------------------------ *)
(* Frame acknowledgment / loss notifications                            *)
(* ------------------------------------------------------------------ *)

let notify_frame_fate c (fr : frame_record) ~acked =
  let lost = not acked in
  match fr with
  | R_stream { id; offset; len; fin } -> (
    match Hashtbl.find_opt c.streams id with
    | None -> ()
    | Some s ->
      if acked then Quic.Sendbuf.on_acked s.sendb ~offset ~len ~fin
      else begin
        Quic.Sendbuf.on_lost s.sendb ~offset ~len ~fin;
        c.stats.pkts_retransmitted <- c.stats.pkts_retransmitted + 1
      end)
  | R_crypto { offset; len } ->
    if acked then Quic.Sendbuf.on_acked c.crypto_send ~offset ~len ~fin:false
    else Quic.Sendbuf.on_lost c.crypto_send ~offset ~len ~fin:false
  | R_plugin_data { plugin; offset; len; fin } -> (
    match Hashtbl.find_opt c.plugin_out plugin with
    | None -> ()
    | Some sb ->
      if acked then Quic.Sendbuf.on_acked sb ~offset ~len ~fin
      else Quic.Sendbuf.on_lost sb ~offset ~len ~fin)
  | R_frame (F.Max_data _, _) -> if lost then c.max_data_frame_pending <- true
  | R_frame
      ( (( F.Plugin_validate _ | F.Plugin_proof _ | F.Handshake_done
         | F.Path_response _ | F.New_connection_id _
         | F.Retire_connection_id _ ) as f),
        _ ) ->
    if lost then Queue.push f c.ctrl
  | R_frame (F.Unknown { ftype; raw }, Some r) ->
    let args =
      [|
        I (if acked then 1L else 0L);
        I r.Scheduler.cookie;
        (* Ro regions are unwritable by both the monitor and every native
           path, so aliasing the immutable string is safe — no copy per
           notification *)
        Buf (Bytes.unsafe_of_string raw, `Ro);
      |]
    in
    ignore (run_op c Protoop.notify_frame ~param:ftype args)
  | R_frame _ -> ()

(* Persistent congestion (RFC 9002 §7.6): when the send-time span of a
   run of consecutive ack-eliciting losses — unbroken by any ack — exceeds
   3 × (PTO + max_ack_delay), the network was effectively dead for that
   period; the window collapses to the minimum and slow start restarts.
   The span accumulates in [declare_lost] and any newly acked packet on
   the path resets it ([process_ack]). Requires at least one RTT sample so
   the default-PTO guess cannot trigger a spurious collapse. *)
let note_persistent_congestion c p sp =
  if sp.ack_eliciting then begin
    if not p.lost_span_valid then begin
      p.lost_span_valid <- true;
      p.lost_span_start <- sp.sent_at;
      p.lost_span_end <- sp.sent_at
    end
    else begin
      if sp.sent_at < p.lost_span_start then p.lost_span_start <- sp.sent_at;
      if sp.sent_at > p.lost_span_end then p.lost_span_end <- sp.sent_at
    end;
    let duration =
      Int64.mul 3L
        (Int64.add (Quic.Rtt.pto p.rtt) (Sim.of_ms c.cfg.ack_delay_ms))
    in
    if
      Quic.Rtt.samples p.rtt > 0
      && Int64.sub p.lost_span_end p.lost_span_start > duration
    then begin
      p.lost_span_valid <- false;
      c.stats.persistent_congestion_events <-
        c.stats.persistent_congestion_events + 1;
      Log.info (fun m ->
          m "persistent congestion on path %d (span %Ldns)" p.path_id
            (Int64.sub p.lost_span_end p.lost_span_start));
      let default _ _ =
        Quic.Cc.collapse p.cc;
        0L
      in
      ignore
        (run_op c Protoop.cc_on_rto ~default [| I (i64 p.path_id) |])
    end
  end

let declare_lost c sp =
  Hashtbl.remove c.sent sp.pn;
  let p = c.paths.(min sp.path_id (Array.length c.paths - 1)) in
  Quic.Cc.forget_in_flight p.cc ~size:sp.size;
  let default c _ =
    Quic.Cc.shrink_on_loss p.cc ~pn:sp.pn ~largest_sent:(Int64.sub c.next_pn 1L);
    0L
  in
  ignore
    (run_op c Protoop.cc_on_packet_lost ~default
       [| I sp.pn; I (i64 sp.size); I (i64 sp.path_id) |]);
  c.stats.pkts_lost <- c.stats.pkts_lost + 1;
  note_persistent_congestion c p sp;
  c.cur_pn <- sp.pn;
  ignore (run_op c Protoop.packet_lost [| I sp.pn; I (i64 sp.path_id) |]);
  List.iter (fun fr -> notify_frame_fate c fr ~acked:false) sp.records;
  ignore (run_op c Protoop.after_packet_lost [| I sp.pn |])

let detect_losses c =
  let default c _ =
    let now = Sim.now c.sim in
    let lost = ref [] in
    Hashtbl.iter
      (fun _pn sp ->
        (* loss detection is per path, on per-path send order: with a shared
           packet-number space, cross-path reordering must not be mistaken
           for loss (kSkipped packets on the other path are not gaps) *)
        let path_largest =
          if sp.path_id < Array.length c.largest_acked_per_path then
            c.largest_acked_per_path.(sp.path_id)
          else -1L
        in
        if sp.path_seq < path_largest then begin
          let p = c.paths.(min sp.path_id (Array.length c.paths - 1)) in
          (* time threshold: 9/8 * (srtt + 4*rttvar) absorbs the queueing
             variance that plain 9/8*srtt mistakes for loss under
             bufferbloat *)
          let window =
            Int64.add (Quic.Rtt.smoothed p.rtt)
              (Int64.mul 4L (Quic.Rtt.variance p.rtt))
          in
          let threshold =
            Int64.sub now (Int64.div (Int64.mul window 9L) 8L)
          in
          if Int64.sub path_largest sp.path_seq >= 3L || sp.sent_at <= threshold
          then lost := sp :: !lost
        end)
      c.sent;
    List.iter (declare_lost c) !lost;
    i64 (List.length !lost)
  in
  ignore (run_op c Protoop.detect_lost_packets ~default [||])

let process_ack c (ack : F.ack) =
  let now = Sim.now c.sim in
  (* Advance the lowest-live-pn watermark: a pn below next_pn that is
     not in [sent] can never reappear there, so each pn is crossed at
     most once over the connection's lifetime. *)
  while
    c.ack_watermark < c.next_pn && not (Hashtbl.mem c.sent c.ack_watermark)
  do
    c.ack_watermark <- Int64.add c.ack_watermark 1L
  done;
  (* Collect newly acked packets by walking the ranges clipped to the
     live window. Unclipped, the first range eventually spans every pn
     since the start of the connection and ack processing goes
     quadratic in transfer length. *)
  let newly = ref [] in
  List.iter
    (fun (first, last) ->
      let first = if first > c.ack_watermark then first else c.ack_watermark in
      let pn = ref last in
      while !pn >= first do
        (match Hashtbl.find_opt c.sent !pn with
        | Some sp -> newly := sp :: !newly
        | None -> ());
        pn := Int64.sub !pn 1L
      done)
    ack.F.ranges;
  let newly = List.sort (fun a b -> Int64.compare a.pn b.pn) !newly in
  if newly <> [] then begin
    let largest_newly = List.nth newly (List.length newly - 1) in
    if largest_newly.pn > c.largest_acked then c.largest_acked <- largest_newly.pn;
    (* RTT sample from the largest newly acked, if ack-eliciting *)
    if largest_newly.ack_eliciting && largest_newly.pn = ack.F.largest then begin
      let sample =
        Int64.sub (Int64.sub now largest_newly.sent_at)
          (Int64.mul ack.F.delay_us 1000L)
      in
      let p = c.paths.(min largest_newly.path_id (Array.length c.paths - 1)) in
      let default _ _ =
        Quic.Rtt.update p.rtt ~sample;
        0L
      in
      ignore
        (run_op c Protoop.update_rtt ~default
           [| I sample; I (i64 largest_newly.path_id) |])
    end;
    List.iter
      (fun sp ->
        Hashtbl.remove c.sent sp.pn;
        if sp.path_id < Array.length c.largest_acked_per_path
           && sp.path_seq > c.largest_acked_per_path.(sp.path_id)
        then c.largest_acked_per_path.(sp.path_id) <- sp.path_seq;
        let p = c.paths.(min sp.path_id (Array.length c.paths - 1)) in
        (* an ack breaks the run of consecutive losses: the persistent-
           congestion span restarts from scratch (RFC 9002 §7.6.2) *)
        p.lost_span_valid <- false;
        Quic.Cc.forget_in_flight p.cc ~size:sp.size;
        let default _ _ =
          Quic.Cc.grow_on_ack p.cc ~pn:sp.pn ~size:sp.size;
          0L
        in
        ignore
          (run_op c Protoop.cc_on_packet_acked ~default
             [| I sp.pn; I (i64 sp.size); I (i64 sp.path_id) |]);
        List.iter (fun fr -> notify_frame_fate c fr ~acked:true) sp.records;
        ignore (run_op c Protoop.packet_acknowledged [| I sp.pn |]))
      newly;
    c.pto_backoff <- 0;
    detect_losses c;
    set_loss_alarm c;
    wake c
  end

(* ------------------------------------------------------------------ *)
(* Loss alarm behaviour                                                 *)
(* ------------------------------------------------------------------ *)

let on_loss_alarm c =
  let default c _ =
    if Hashtbl.length c.sent > 0 then begin
      (* cap the exponent: the timer already clamps its multiplier at
         2^6, so growing the counter further only risks overflow — the
         idle alarm, not unbounded backoff, is what ends a dead
         connection *)
      c.pto_backoff <- min (c.pto_backoff + 1) 6;
      if c.pto_backoff <= 1 then begin
        (* tail-probe style: retransmit the oldest in-flight packet *)
        ignore (run_op c Protoop.send_probe [||]);
        match oldest_in_flight c with
        | Some sp -> declare_lost c sp
        | None -> ()
      end
      else begin
        (* full retransmission timeout *)
        ignore (run_op c Protoop.retransmission_timeout [||]);
        let all = Hashtbl.fold (fun _ sp acc -> sp :: acc) c.sent [] in
        List.iter (declare_lost c) all;
        Array.iter
          (fun p ->
            let default _ _ =
              Quic.Cc.on_retransmission_timeout p.cc;
              0L
            in
            ignore (run_op c Protoop.cc_on_rto ~default [| I (i64 p.path_id) |]))
          c.paths;
        (* repeated timeouts can mean the 4-tuple itself died (NAT
           rebinding behind a stateful middlebox): a client with spare
           CIDs rotates and revalidates the path (no-op with
           cid_pool = 0 — see [Sender.rotate_and_reprobe]) *)
        !reprobe_ref c
      end;
      set_loss_alarm c;
      wake c
    end;
    0L
  in
  ignore (run_op c Protoop.on_loss_timer ~default [||])

let () = on_loss_alarm_ref := on_loss_alarm
