(** Stateful in-path middleboxes packaged as {!Net.node} chains: an
    address-translating NAT with binding expiry, a QUIC-aware stateful
    flow tracker (the QASM enterprise-firewall failure mode: short-header
    datagrams whose DCID never appeared in a client-initiated long header
    on that 4-tuple are dropped), and a token-bucket rate policer.

    All state advances only from the [~now] the network passes in, so
    runs replay bit-identically. *)

(** {2 NAT} *)

type nat

val nat :
  inside:Net.addr ->
  public_base:Net.addr ->
  idle_timeout:Sim.time ->
  ?max_lifetime:Sim.time ->
  unit ->
  nat
(** One inside host, one binding at a time. Public addresses are
    allocated sequentially from [public_base]. A binding expires when the
    inside host stayed silent for [idle_timeout], or unconditionally
    [max_lifetime] after allocation (carrier-grade churn); the next
    outbound packet then silently rebinds to a fresh public address. *)

val nat_up : nat -> Net.node
(** Outbound node: rewrites [src = inside] to the current public address,
    rebinding first if the old binding expired. Never drops. *)

val nat_down : nat -> Net.node
(** Inbound node: rewrites the live public address back to [inside];
    drops traffic to expired ([expired_binding]) or never-allocated
    ([no_binding]) public addresses. Inbound traffic does not refresh the
    idle clock. *)

val nat_rebindings : nat -> int
(** Times an expired binding was replaced by a fresh public address. *)

val nat_public : nat -> Net.addr option
(** The public address of the current binding, if any. *)

val nat_force_expire : nat -> unit
(** Age the current binding into the past so the next outbound packet
    rebinds — a deterministic stand-in for waiting out the idle timer. *)

(** {2 Stateful flow tracker} *)

type tracker

val flow_tracker : wire_of:(Net.payload -> string option) -> unit -> tracker
(** [wire_of] extracts the QUIC wire image from a payload ([None] passes
    the datagram unexamined) — supplied by the harness so netsim stays
    free of protocol dependencies. *)

val tracker_up : tracker -> Net.node
(** Client-side direction: long headers open/extend the flow's CID
    pinhole (both DCID and SCID); short headers must match a learned CID
    ([unknown_flow] / [unknown_cid] otherwise). *)

val tracker_down : tracker -> Net.node
(** Server-side direction: long headers pass but never create state;
    short headers are checked like {!tracker_up}. *)

val tracker_flows : tracker -> int
(** Number of tracked 4-tuple flows. *)

(** {2 Token-bucket policer} *)

type policer

val policer : rate_mbps:float -> burst:int -> unit -> policer
(** Token bucket: [burst] bytes of depth refilled at [rate_mbps]. *)

val policer_node : policer -> Net.node
(** Drops ([policed]) datagrams that exceed the bucket. *)

val policer_dropped : policer -> int
