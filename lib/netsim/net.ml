(* Datagram network: addresses, static routes (lists of links) and delivery
   to per-address handlers. Payloads use an extensible variant so each
   protocol stacks its own packet type on the simulator without the
   simulator knowing about it. *)

type addr = int

type payload = ..
type payload += Raw of string

(* A datagram that crossed a router whose queue was past the ECN marking
   threshold arrives with its payload wrapped in [Ce]. *)
type payload += Ce of payload

(* A datagram damaged in flight by a link's corruption fault arrives with
   its payload wrapped in [Corrupt]; the descriptor deterministically
   selects which bytes flipped (see [corrupt_string]), so a replay from
   the same seed damages the same bits. *)
type payload += Corrupt of payload * int64

(* Apply the damage a [Corrupt] descriptor encodes to a wire image: flip
   1–3 bytes at descriptor-derived offsets. Pure — same descriptor, same
   string, same damage. *)
let corrupt_string descr s =
  let n = String.length s in
  if n = 0 then s
  else begin
    let b = Bytes.of_string s in
    let flips = 1 + Int64.to_int (Int64.unsigned_rem descr 3L) in
    let state = ref descr in
    for _ = 1 to flips do
      (* one SplitMix64 step per flip, seeded by the descriptor *)
      state := Int64.add !state 0x9E3779B97F4A7C15L;
      let z = !state in
      let z =
        Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
          0xBF58476D1CE4E5B9L
      in
      let z =
        Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
          0x94D049BB133111EBL
      in
      let z = Int64.logxor z (Int64.shift_right_logical z 31) in
      let pos = Int64.to_int (Int64.unsigned_rem z (Int64.of_int n)) in
      let mask = 1 + Int64.to_int (Int64.unsigned_rem (Int64.shift_right_logical z 32) 255L) in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor mask))
    done;
    Bytes.to_string b
  end

type datagram = { src : addr; dst : addr; size : int; payload : payload }

type t = {
  sim : Sim.t;
  routes : (addr * addr, Link.t list) Hashtbl.t;
  handlers : (addr, datagram -> unit) Hashtbl.t;
}

let create sim = { sim; routes = Hashtbl.create 16; handlers = Hashtbl.create 16 }

let sim t = t.sim

let add_route t ~src ~dst links = Hashtbl.replace t.routes (src, dst) links

let attach t addr handler = Hashtbl.replace t.handlers addr handler

let detach t addr = Hashtbl.remove t.handlers addr

(* Send a datagram; it traverses every link of the route in order and is
   dropped silently if any link loses it or no route/handler exists —
   exactly a best-effort IP/UDP service. Duplicating links may invoke the
   tail of the route (and the handler) more than once; corruption wraps
   the payload so the endpoint sees the damaged wire image. *)
let send t dg =
  match Hashtbl.find_opt t.routes (dg.src, dg.dst) with
  | None -> ()
  | Some links ->
    let rec hop marked damage = function
      | [] -> (
        match Hashtbl.find_opt t.handlers dg.dst with
        | Some handler ->
          let payload =
            match damage with
            | None -> dg.payload
            | Some descr -> Corrupt (dg.payload, descr)
          in
          let payload = if marked then Ce payload else payload in
          handler { dg with payload }
        | None -> ())
      | link :: rest ->
        Link.send_full link ~size:dg.size (fun ~ce ~corrupt ->
            let damage =
              match (damage, corrupt) with
              | None, d | d, None -> d
              | Some a, Some b -> Some (Int64.logxor a b)
            in
            hop (marked || ce) damage rest)
    in
    hop false None links
