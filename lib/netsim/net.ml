(* Datagram network: addresses, static routes (lists of links) and delivery
   to per-address handlers. Payloads use an extensible variant so each
   protocol stacks its own packet type on the simulator without the
   simulator knowing about it.

   Routes may carry a chain of in-path [node]s (stateful middleboxes: NAT,
   flow trackers, policers — see [Middlebox]). A node runs at send time,
   before the links, and may rewrite the datagram (address translation) or
   drop it with a reason. Every drop — middlebox, missing route, missing
   handler — is accounted in [stats]; link-level fault drops stay in each
   link's own counters and are folded in by [drop_summary]. *)

type addr = int

type payload = ..
type payload += Raw of string

(* A datagram that crossed a router whose queue was past the ECN marking
   threshold arrives with its payload wrapped in [Ce]. *)
type payload += Ce of payload

(* A datagram damaged in flight by a link's corruption fault arrives with
   its payload wrapped in [Corrupt]; the descriptor deterministically
   selects which bytes flipped (see [corrupt_string]), so a replay from
   the same seed damages the same bits. *)
type payload += Corrupt of payload * int64

(* Apply the damage a [Corrupt] descriptor encodes to a wire image: flip
   1–3 bytes at descriptor-derived offsets. Pure — same descriptor, same
   string, same damage. *)
let corrupt_string descr s =
  let n = String.length s in
  if n = 0 then s
  else begin
    let b = Bytes.of_string s in
    let flips = 1 + Int64.to_int (Int64.unsigned_rem descr 3L) in
    let state = ref descr in
    for _ = 1 to flips do
      (* one SplitMix64 step per flip, seeded by the descriptor *)
      state := Int64.add !state 0x9E3779B97F4A7C15L;
      let z = !state in
      let z =
        Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
          0xBF58476D1CE4E5B9L
      in
      let z =
        Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
          0x94D049BB133111EBL
      in
      let z = Int64.logxor z (Int64.shift_right_logical z 31) in
      let pos = Int64.to_int (Int64.unsigned_rem z (Int64.of_int n)) in
      let mask = 1 + Int64.to_int (Int64.unsigned_rem (Int64.shift_right_logical z 32) 255L) in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor mask))
    done;
    Bytes.to_string b
  end

type datagram = { src : addr; dst : addr; size : int; payload : payload }

type node = {
  node_name : string;
  process : now:Sim.time -> datagram -> (datagram, string) result;
      (* [Ok dg'] forwards (possibly rewritten); [Error reason] drops,
         accounted as "mbox:<node_name>:<reason>" *)
}

type stats = {
  mutable sent : int;       (* datagrams submitted to [send] *)
  mutable delivered : int;  (* handler invocations (dups count each copy) *)
  drops : (string, int) Hashtbl.t;  (* cause -> count, send-time drops *)
}

type t = {
  sim : Sim.t;
  routes : (addr * addr, Link.t list) Hashtbl.t;
  fallback_routes : (addr, Link.t list) Hashtbl.t;
      (* consulted when no exact (src, dst) route exists — e.g. a server
         replying to the shifting public addresses a NAT allocates *)
  nodes : (addr * addr, node list) Hashtbl.t;
  fallback_nodes : (addr, node list) Hashtbl.t;
  handlers : (addr, datagram -> unit) Hashtbl.t;
  st : stats;
}

let create sim =
  {
    sim;
    routes = Hashtbl.create 16;
    fallback_routes = Hashtbl.create 4;
    nodes = Hashtbl.create 4;
    fallback_nodes = Hashtbl.create 4;
    handlers = Hashtbl.create 16;
    st = { sent = 0; delivered = 0; drops = Hashtbl.create 8 };
  }

let sim t = t.sim

let add_route t ~src ~dst links = Hashtbl.replace t.routes (src, dst) links

let route t ~src ~dst = Hashtbl.find_opt t.routes (src, dst)

let add_fallback_route t ~src links =
  Hashtbl.replace t.fallback_routes src links

let interpose t ~src ~dst nodes = Hashtbl.replace t.nodes (src, dst) nodes

let interpose_fallback t ~src nodes =
  Hashtbl.replace t.fallback_nodes src nodes

let attach t addr handler = Hashtbl.replace t.handlers addr handler

let detach t addr = Hashtbl.remove t.handlers addr

let stats t = t.st

let drop t cause =
  let n = try Hashtbl.find t.st.drops cause with Not_found -> 0 in
  Hashtbl.replace t.st.drops cause (n + 1)

(* Sorted "cause=count" rendering of the send-time drop table plus the
   aggregate fault counters of every distinct link on a route — one line
   that fingerprints the full network-side fate of a run. *)
let drop_summary t =
  let b = Buffer.create 64 in
  let causes =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.st.drops []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Buffer.add_string b
    (Printf.sprintf "net sent=%d delivered=%d" t.st.sent t.st.delivered);
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf " %s=%d" k v))
    causes;
  (* links, deduplicated physically (routes share link objects) *)
  let seen = ref [] in
  let links = ref [] in
  let note l = if not (List.memq l !seen) then begin
      seen := l :: !seen; links := l :: !links end
  in
  Hashtbl.iter (fun _ ls -> List.iter note ls) t.routes;
  Hashtbl.iter (fun _ ls -> List.iter note ls) t.fallback_routes;
  let rl = ref 0 and qd = ref 0 and ge = ref 0 and bo = ref 0 and co = ref 0 in
  List.iter
    (fun l ->
      let s = Link.stats l in
      rl := !rl + s.Link.random_losses;
      qd := !qd + s.Link.queue_drops;
      ge := !ge + s.Link.ge_losses;
      bo := !bo + s.Link.blackout_drops;
      co := !co + s.Link.corrupted)
    !links;
  Buffer.add_string b
    (Printf.sprintf " link[rand=%d queue=%d ge=%d blackout=%d corrupt=%d]"
       !rl !qd !ge !bo !co);
  Buffer.contents b

(* Send a datagram; middlebox nodes on the route run first (and may
   rewrite addresses or drop with a reason), then it traverses every link
   of the route in order. Every send-time drop is counted in [stats];
   losses inside a link remain in that link's counters — exactly a
   best-effort IP/UDP service. Duplicating links may invoke the tail of
   the route (and the handler) more than once; corruption wraps the
   payload so the endpoint sees the damaged wire image. *)
let send t dg =
  t.st.sent <- t.st.sent + 1;
  let links, chain =
    match Hashtbl.find_opt t.routes (dg.src, dg.dst) with
    | Some links ->
      (Some links, Option.value ~default:[] (Hashtbl.find_opt t.nodes (dg.src, dg.dst)))
    | None ->
      ( Hashtbl.find_opt t.fallback_routes dg.src,
        Option.value ~default:[] (Hashtbl.find_opt t.fallback_nodes dg.src) )
  in
  match links with
  | None -> drop t (Printf.sprintf "no_route:%d->%d" dg.src dg.dst)
  | Some links ->
    let now = Sim.now t.sim in
    let rec through dg = function
      | [] -> Some dg
      | node :: rest -> (
        match node.process ~now dg with
        | Ok dg -> through dg rest
        | Error reason ->
          drop t (Printf.sprintf "mbox:%s:%s" node.node_name reason);
          None)
    in
    (match through dg chain with
    | None -> ()
    | Some dg ->
      let rec hop marked damage = function
        | [] -> (
          match Hashtbl.find_opt t.handlers dg.dst with
          | Some handler ->
            let payload =
              match damage with
              | None -> dg.payload
              | Some descr -> Corrupt (dg.payload, descr)
            in
            let payload = if marked then Ce payload else payload in
            t.st.delivered <- t.st.delivered + 1;
            handler { dg with payload }
          | None -> drop t (Printf.sprintf "no_handler:%d" dg.dst))
        | link :: rest ->
          Link.send_full link ~size:dg.size (fun ~ce ~corrupt ->
              let damage =
                match (damage, corrupt) with
                | None, d | d, None -> d
                | Some a, Some b -> Some (Int64.logxor a b)
              in
              hop (marked || ce) damage rest)
      in
      hop false None links)
