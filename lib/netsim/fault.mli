(** Deterministic adversarial fault injection for links.

    A {!profile} composes Gilbert–Elliott bursty loss, bounded
    reordering, duplication, byte corruption and scheduled blackouts.
    Each enabled fault draws exactly once per packet from its own named
    RNG stream (derived with {!Rng.stream}, which never advances the
    link's root stream), so toggling one fault never perturbs another's
    pattern — a seed replays the same composed schedule whatever subset
    of faults is enabled. *)

type ge = {
  p_gb : float;      (** P(good → bad) per packet *)
  p_bg : float;      (** P(bad → good) per packet *)
  loss_good : float; (** loss probability in the good state *)
  loss_bad : float;  (** loss probability in the bad state *)
}

type reorder = {
  prob : float;          (** per-packet probability of extra delay *)
  max_extra : Sim.time;  (** bound on the extra delay (exclusive) *)
}

type profile = {
  ge : ge option;
  reorder : reorder option;
  duplicate : float;  (** per-packet copy probability; 0 disables *)
  corrupt : float;    (** per-packet corruption probability; 0 disables *)
  blackouts : (Sim.time * Sim.time) list;
      (** [start, stop) windows during which the link drops everything *)
}

val none : profile
val is_none : profile -> bool

val gilbert_elliott :
  ?p_gb:float -> ?p_bg:float -> ?loss_good:float -> ?loss_bad:float -> unit -> ge
(** Bursty-loss preset: defaults give ~2% burst starts with mean burst
    length 1/0.3 packets at 50% in-burst loss. *)

type drop_cause = Ge_loss | Blackout

type verdict = {
  drop : drop_cause option;
  extra_delay : Sim.time;  (** reordering: added to the arrival time *)
  duplicate : bool;        (** deliver a second copy *)
  corrupt : int64 option;  (** descriptor for {!Net.corrupt_string} *)
}

type t

val create : rng:Rng.t -> profile -> t
(** Derives the per-fault streams from [rng] without advancing it. *)

val judge : t -> now:Sim.time -> verdict
(** Fate of one packet entering the link at [now]. Every enabled fault
    draws exactly once per call, even for packets condemned by an earlier
    fault, keeping patterns aligned across profile variations. *)

val in_blackout : t -> now:Sim.time -> bool
