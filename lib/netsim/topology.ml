(* The experimental topology of Figure 7: a client reaching a server over
   one or two paths through routers R1/R2 converging at R3. Each direction
   of the R1–R3 / R2–R3 segment carries the configured {delay, bandwidth,
   loss}; access segments are fast and lossless.

   A fault profile, when given, is applied to the middle segment of every
   path (both directions) — the access links stay clean, mirroring a lab
   where impairments are configured on the bottleneck box. *)

type path_params = { d_ms : float; bw_mbps : float; loss : float }

type t = {
  sim : Sim.t;
  net : Net.t;
  client_addrs : Net.addr list; (* one address per available path *)
  server_addr : Net.addr;
  mid_links : (Link.t * Link.t) list; (* (up, down) middle segment per path *)
}

let client_addr_1 = 1
let client_addr_2 = 2
let server_addr = 100

let default_buffer = 100 * 1500 (* a 100-packet drop-tail router queue *)

let access_link ~sim ~rng () =
  Link.create ~sim ~delay_ms:0.05 ~rate_mbps:1000. ~loss:0. ~rng
    ~buffer:(1024 * 1024) ()

(* Build a bidirectional path between [client] and [server] with the middle
   segment set to [p]. *)
let add_path ~sim ~net ~rng ?(buffer = default_buffer) ?(ecn_threshold = 0)
    ?(faults = Fault.none) ~client ~server p =
  let mk_mid () =
    Link.create ~sim ~delay_ms:p.d_ms ~rate_mbps:p.bw_mbps ~loss:p.loss
      ~rng:(Rng.split rng) ~buffer ~ecn_threshold ~faults ()
  in
  let up_mid = mk_mid () and down_mid = mk_mid () in
  let up = [ access_link ~sim ~rng (); up_mid; access_link ~sim ~rng () ] in
  let down = [ access_link ~sim ~rng (); down_mid; access_link ~sim ~rng () ] in
  Net.add_route net ~src:client ~dst:server up;
  Net.add_route net ~src:server ~dst:client down;
  (up_mid, down_mid)

let single_path ?buffer ?ecn_threshold ?faults ~seed p =
  let sim = Sim.create () in
  let net = Net.create sim in
  let rng = Rng.create seed in
  let mids =
    add_path ~sim ~net ~rng ?buffer ?ecn_threshold ?faults
      ~client:client_addr_1 ~server:server_addr p
  in
  { sim; net; client_addrs = [ client_addr_1 ]; server_addr; mid_links = [ mids ] }

let dual_path ?buffer ?faults ~seed p1 p2 =
  let sim = Sim.create () in
  let net = Net.create sim in
  let rng = Rng.create seed in
  let m1 =
    add_path ~sim ~net ~rng ?buffer ?faults ~client:client_addr_1
      ~server:server_addr p1
  in
  let m2 =
    add_path ~sim ~net ~rng ?buffer ?faults ~client:client_addr_2
      ~server:server_addr p2
  in
  { sim; net; client_addrs = [ client_addr_1; client_addr_2 ]; server_addr;
    mid_links = [ m1; m2 ] }

(* The 10 Gbps back-to-back servers of the Table 3 benchmark. *)
let fast_link ~seed =
  single_path ~buffer:(4 * 1024 * 1024) ~seed
    { d_ms = 0.05; bw_mbps = 10_000.; loss = 0. }
