(* Stateful in-path middleboxes, packaged as [Net.node] chains.

   Three boxes cover the deployment failure modes the chaos matrix
   exercises: an address-translating NAT whose binding expires (idle
   timeout and optional absolute lifetime), forcing genuine rebinding
   mid-transfer; a QUIC-aware stateful flow tracker that only admits
   short-header datagrams whose DCID appeared in a client-initiated
   long header on that 4-tuple (the QASM enterprise-firewall behaviour —
   it blackholes naive migration until the endpoints revalidate with a
   long-header probe); and a token-bucket rate policer.

   All state advances only from the [~now] the network passes in, so runs
   replay bit-identically. *)

(* ---------- NAT ---------- *)

type binding = {
  public : Net.addr;
  mutable bound_at : Sim.time;
  mutable last_used : Sim.time;
}

type nat = {
  inside : Net.addr;
  public_base : Net.addr;
  idle : Sim.time;
  lifetime : Sim.time option;
  mutable binding : binding option;
  mutable next_pub : int;
  mutable rebindings : int;
}

let nat ~inside ~public_base ~idle_timeout ?max_lifetime () =
  {
    inside;
    public_base;
    idle = idle_timeout;
    lifetime = max_lifetime;
    binding = None;
    next_pub = 0;
    rebindings = 0;
  }

let binding_valid t ~now b =
  Int64.sub now b.last_used <= t.idle
  && (match t.lifetime with
     | None -> true
     | Some l -> Int64.sub now b.bound_at <= l)

(* Outbound (inside -> world): translate the source to the current public
   address, allocating a fresh one whenever the old binding expired. The
   NAT never drops outbound traffic — rebinding is silent, exactly what
   makes it hostile. *)
let nat_up t =
  {
    Net.node_name = "nat";
    process =
      (fun ~now dg ->
        if dg.Net.src <> t.inside then Ok dg
        else begin
          let b =
            match t.binding with
            | Some b when binding_valid t ~now b ->
              b.last_used <- now;
              b
            | prev ->
              let public = t.public_base + t.next_pub in
              t.next_pub <- t.next_pub + 1;
              if prev <> None then t.rebindings <- t.rebindings + 1;
              let b = { public; bound_at = now; last_used = now } in
              t.binding <- Some b;
              b
          in
          Ok { dg with Net.src = b.public }
        end);
  }

(* Inbound (world -> public address): translate back through the live
   binding; traffic to an expired or never-allocated public address is
   dropped, like any real NAT. Inbound traffic does not refresh the idle
   clock — only the inside host keeps its own binding alive. *)
let nat_down t =
  {
    Net.node_name = "nat";
    process =
      (fun ~now dg ->
        match t.binding with
        | Some b when b.public = dg.Net.dst ->
          if binding_valid t ~now b then Ok { dg with Net.dst = t.inside }
          else Error "expired_binding"
        | _ ->
          if dg.Net.dst >= t.public_base && dg.Net.dst < t.public_base + t.next_pub
          then Error "no_binding"
          else Ok dg);
  }

let nat_rebindings t = t.rebindings

let nat_public t =
  match t.binding with Some b -> Some b.public | None -> None

(* Age the current binding far into the past so the very next outbound
   packet rebinds (and inbound traffic to the old public address dies) —
   a deterministic stand-in for waiting out the idle timer. *)
let nat_force_expire t =
  match t.binding with
  | None -> ()
  | Some b ->
    b.bound_at <- -1_000_000_000_000_000L;
    b.last_used <- -1_000_000_000_000_000L

(* ---------- QUIC-aware stateful flow tracker ---------- *)

type tracker = {
  wire_of : Net.payload -> string option;
      (* extract the QUIC wire image from a payload; [None] passes the
         datagram unexamined (keeps netsim free of protocol deps) *)
  flows : (Net.addr * Net.addr, (int64, unit) Hashtbl.t) Hashtbl.t;
      (* 4-tuple -> CIDs seen in client long headers; both directions of
         a flow share one physical table *)
  mutable cids_learned : int;
  mutable shorts_passed : int;
}

let flow_tracker ~wire_of () =
  { wire_of; flows = Hashtbl.create 8; cids_learned = 0; shorts_passed = 0 }

let tracker_flows t = Hashtbl.length t.flows / 2

(* Wire layout (lib/quic/packet.ml): byte0 bit7 = long header; 8-byte
   big-endian DCID at offset 1; SCID at offset 9 on long headers. *)
let examine t ~learn dg =
  match t.wire_of dg.Net.payload with
  | None -> Ok dg
  | Some w ->
    if String.length w < 9 then Error "runt"
    else begin
      let long = Char.code w.[0] land 0x80 <> 0 in
      let dcid = String.get_int64_be w 1 in
      let key = (dg.Net.src, dg.Net.dst) in
      if long then begin
        (if learn then begin
           let set =
             match Hashtbl.find_opt t.flows key with
             | Some s -> s
             | None ->
               let s = Hashtbl.create 4 in
               Hashtbl.replace t.flows key s;
               Hashtbl.replace t.flows (dg.Net.dst, dg.Net.src) s;
               s
           in
           if not (Hashtbl.mem set dcid) then begin
             Hashtbl.replace set dcid ();
             t.cids_learned <- t.cids_learned + 1
           end;
           if String.length w >= 17 then begin
             let scid = String.get_int64_be w 9 in
             if not (Hashtbl.mem set scid) then begin
               Hashtbl.replace set scid ();
               t.cids_learned <- t.cids_learned + 1
             end
           end
         end);
        Ok dg
      end
      else
        match Hashtbl.find_opt t.flows key with
        | None -> Error "unknown_flow"
        | Some set ->
          if Hashtbl.mem set dcid then begin
            t.shorts_passed <- t.shorts_passed + 1;
            Ok dg
          end
          else Error "unknown_cid"
    end

(* Client side: long headers create/extend flow state. *)
let tracker_up t =
  { Net.node_name = "tracker"; process = (fun ~now:_ dg -> examine t ~learn:true dg) }

(* Server side: long headers pass but never create state — only the
   client (the inside host) opens pinholes. *)
let tracker_down t =
  { Net.node_name = "tracker"; process = (fun ~now:_ dg -> examine t ~learn:false dg) }

(* ---------- token-bucket rate policer ---------- *)

type policer = {
  rate : float; (* bytes per ns *)
  burst : float;
  mutable tokens : float;
  mutable last : Sim.time;
  mutable policed : int;
}

let policer ~rate_mbps ~burst () =
  {
    rate = rate_mbps /. 8000.;
    burst = float_of_int burst;
    tokens = float_of_int burst;
    last = 0L;
    policed = 0;
  }

let policer_node t =
  {
    Net.node_name = "policer";
    process =
      (fun ~now dg ->
        let dt = Int64.to_float (Int64.sub now t.last) in
        t.tokens <- Float.min t.burst (t.tokens +. (dt *. t.rate));
        t.last <- now;
        let sz = float_of_int dg.Net.size in
        if t.tokens >= sz then begin
          t.tokens <- t.tokens -. sz;
          Ok dg
        end
        else begin
          t.policed <- t.policed + 1;
          Error "policed"
        end);
  }

let policer_dropped t = t.policed
