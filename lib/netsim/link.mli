(** A unidirectional link fed by a drop-tail router queue — the paper's
    NetEm (delay, seeded random loss) + HTB (rate limit) lab setup.

    A packet first takes the random-loss draw; it then needs queue room
    ([buffer] bytes behind the packet in service — overflow is a
    congestion loss), is serialized at the link rate and propagated after
    the one-way delay. With [ecn_threshold] > 0 the queue marks packets
    Congestion Experienced instead of waiting for overflow.

    An optional {!Fault.profile} injects bursty loss, reordering,
    duplication, corruption and blackouts between the legacy loss draw
    and the queue; with [Fault.none] (the default) the link behaves
    bit-identically to the fault-free implementation. *)

type stats = {
  mutable sent : int;
  mutable delivered : int;
  mutable random_losses : int;   (** legacy uniform (NetEm-style) losses *)
  mutable queue_drops : int;     (** drop-tail overflows *)
  mutable bytes_delivered : int;
  mutable ce_marked : int;
  mutable ge_losses : int;       (** Gilbert–Elliott bursty losses *)
  mutable blackout_drops : int;  (** packets eaten by a scheduled blackout *)
  mutable duplicated : int;      (** extra copies injected *)
  mutable reordered : int;       (** packets given a reorder delay penalty *)
  mutable corrupted : int;       (** payloads damaged in flight *)
  mutable queue_hwm : int;       (** queue occupancy high-water mark, bytes *)
}

type t

val create :
  sim:Sim.t ->
  delay_ms:float ->
  rate_mbps:float ->
  loss:float ->
  rng:Rng.t ->
  ?buffer:int ->
  ?ecn_threshold:int ->
  ?faults:Fault.profile ->
  unit ->
  t
(** [rate_mbps <= 0.] means infinite bandwidth; [buffer] defaults to
    64 KiB; [ecn_threshold = 0] (default) disables marking; [faults]
    defaults to {!Fault.none}. *)

val send_full : t -> size:int -> (ce:bool -> corrupt:int64 option -> unit) -> unit
(** Submit a packet; the callback runs at the far end once per surviving
    copy (duplication can make that twice), with [ce] set when the router
    marked it and [corrupt] carrying a corruption descriptor when the
    fault layer damaged the payload. *)

val send_ecn : t -> size:int -> (ce:bool -> unit) -> unit
(** {!send_full} without corruption visibility. *)

val send : t -> size:int -> (unit -> unit) -> unit
(** {!send_ecn} without the mark. *)

val stats : t -> stats
