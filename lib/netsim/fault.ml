(* Deterministic adversarial fault injection for links.

   A fault profile composes five independent fault generators — Gilbert–
   Elliott bursty loss, bounded reordering, duplication, byte corruption
   and scheduled link blackouts. Each generator draws from its own named
   RNG stream ([Rng.stream]) derived from the link's root stream, and
   every *enabled* generator draws exactly once per packet submitted to
   the link, whether or not an earlier generator already condemned the
   packet. Both properties together make patterns composable: toggling
   one fault never changes the per-packet draw sequence of another, so a
   seed replays the same blackout + burst + reorder schedule whatever
   subset of faults an experiment enables. *)

type ge = {
  p_gb : float;      (* P(good -> bad) per packet *)
  p_bg : float;      (* P(bad -> good) per packet *)
  loss_good : float; (* loss probability in the good state *)
  loss_bad : float;  (* loss probability in the bad state *)
}

type reorder = {
  prob : float;            (* per-packet probability of extra delay *)
  max_extra : Sim.time;    (* bound on the extra delay (exclusive) *)
}

type profile = {
  ge : ge option;
  reorder : reorder option;
  duplicate : float;                      (* per-packet copy probability *)
  corrupt : float;                        (* per-packet corruption probability *)
  blackouts : (Sim.time * Sim.time) list; (* [start, stop) windows, link dead *)
}

let none =
  { ge = None; reorder = None; duplicate = 0.; corrupt = 0.; blackouts = [] }

let is_none p =
  p.ge = None && p.reorder = None && p.duplicate <= 0. && p.corrupt <= 0.
  && p.blackouts = []

(* A common bursty-loss preset: mean burst length 1/p_bg packets. *)
let gilbert_elliott ?(p_gb = 0.02) ?(p_bg = 0.3) ?(loss_good = 0.)
    ?(loss_bad = 0.5) () =
  { p_gb; p_bg; loss_good; loss_bad }

type drop_cause = Ge_loss | Blackout

type verdict = {
  drop : drop_cause option;
  extra_delay : Sim.time;   (* reordering: added to the arrival time *)
  duplicate : bool;         (* deliver a second copy *)
  corrupt : int64 option;   (* corruption descriptor for [Net.corrupt_string] *)
}

let pass = { drop = None; extra_delay = 0L; duplicate = false; corrupt = None }

type t = {
  profile : profile;
  ge_rng : Rng.t;
  reorder_rng : Rng.t;
  dup_rng : Rng.t;
  corrupt_rng : Rng.t;
  mutable ge_bad : bool; (* Gilbert–Elliott channel state *)
}

(* All streams are derived whether or not their fault is enabled — the
   derivation does not advance [rng], so an unused stream costs nothing
   and an enabled one is independent of the rest by construction. *)
let create ~rng profile =
  {
    profile;
    ge_rng = Rng.stream rng "fault.ge";
    reorder_rng = Rng.stream rng "fault.reorder";
    dup_rng = Rng.stream rng "fault.duplicate";
    corrupt_rng = Rng.stream rng "fault.corrupt";
    ge_bad = false;
  }

let in_blackout t ~now =
  List.exists (fun (start, stop) -> now >= start && now < stop) t.profile.blackouts

(* Decide the fate of one packet entering the link at [now]. Every enabled
   generator draws exactly once, in a fixed order, before the verdicts are
   composed — a packet killed by the blackout still consumes one draw from
   each of the other enabled generators, keeping their patterns aligned
   across profile variations. *)
let judge t ~now =
  let ge_drop =
    match t.profile.ge with
    | None -> false
    | Some g ->
      (* state transition first, then the state's loss draw *)
      (if t.ge_bad then begin
         if Rng.bool t.ge_rng g.p_bg then t.ge_bad <- false
       end
       else if Rng.bool t.ge_rng g.p_gb then t.ge_bad <- true);
      let p = if t.ge_bad then g.loss_bad else g.loss_good in
      p > 0. && Rng.bool t.ge_rng p
  in
  let extra_delay =
    match t.profile.reorder with
    | None -> 0L
    | Some r ->
      if Rng.bool t.reorder_rng r.prob && r.max_extra > 0L then
        Int64.of_int (Rng.int t.reorder_rng (Int64.to_int r.max_extra))
      else 0L
  in
  let duplicate =
    t.profile.duplicate > 0. && Rng.bool t.dup_rng t.profile.duplicate
  in
  let corrupt =
    if t.profile.corrupt > 0. && Rng.bool t.corrupt_rng t.profile.corrupt then
      Some (Rng.next_int64 t.corrupt_rng)
    else None
  in
  if in_blackout t ~now then { pass with drop = Some Blackout }
  else if ge_drop then { pass with drop = Some Ge_loss }
  else { drop = None; extra_delay; duplicate; corrupt }
