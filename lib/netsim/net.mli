(** Datagram network: addresses, static routes (lists of links) and
    delivery to per-address handlers — a best-effort IP/UDP service.
    Payloads are an extensible variant so each protocol stacks its own
    packet type on the simulator.

    Routes may carry chains of stateful in-path {!node}s (see
    [Middlebox]); every send-time drop is accounted with a cause in
    {!stats}. *)

type addr = int

type payload = ..
type payload += Raw of string

type payload += Ce of payload
(** Wraps the payload of a datagram that crossed a router whose queue was
    past the ECN marking threshold. *)

type payload += Corrupt of payload * int64
(** Wraps the payload of a datagram damaged in flight by a link's
    corruption fault; the descriptor deterministically selects the damage
    (see {!corrupt_string}). *)

val corrupt_string : int64 -> string -> string
(** [corrupt_string descr wire] applies the damage encoded by [descr] to
    a wire image: flips 1–3 bytes at descriptor-derived offsets. Pure —
    a replay from the same seed damages the same bits. *)

type datagram = { src : addr; dst : addr; size : int; payload : payload }

type node = {
  node_name : string;
  process : now:Sim.time -> datagram -> (datagram, string) result;
}
(** An in-path middlebox hop, run at send time before the route's links.
    [Ok dg] forwards (the node may have rewritten addresses); [Error
    reason] drops the datagram, accounted as ["mbox:<name>:<reason>"]. *)

type stats = {
  mutable sent : int;       (** datagrams submitted to {!send} *)
  mutable delivered : int;  (** handler invocations (duplicates count) *)
  drops : (string, int) Hashtbl.t;
      (** send-time drop cause -> count: [no_route:src->dst],
          [no_handler:dst], [mbox:<node>:<reason>] *)
}

type t

val create : Sim.t -> t
val sim : t -> Sim.t

val add_route : t -> src:addr -> dst:addr -> Link.t list -> unit
(** Datagrams from [src] to [dst] traverse exactly these links, in order. *)

val route : t -> src:addr -> dst:addr -> Link.t list option
(** The links registered for an exact (src, dst) pair, if any. *)

val add_fallback_route : t -> src:addr -> Link.t list -> unit
(** Links used for any datagram from [src] whose destination has no exact
    route — e.g. a server replying to the shifting public addresses a NAT
    allocates. *)

val interpose : t -> src:addr -> dst:addr -> node list -> unit
(** Install a middlebox chain on the exact (src, dst) route. *)

val interpose_fallback : t -> src:addr -> node list -> unit
(** Install a middlebox chain on the fallback route of [src]. *)

val attach : t -> addr -> (datagram -> unit) -> unit
val detach : t -> addr -> unit

val send : t -> datagram -> unit
(** Runs the route's middlebox chain, then the links. Send-time drops
    (no route, no handler, middlebox verdicts) are accounted in {!stats};
    losses inside a link stay in that link's own counters. *)

val stats : t -> stats

val drop_summary : t -> string
(** One-line deterministic rendering of {!stats} plus the aggregated
    fault counters of every distinct link on any route — suitable for
    folding into a replay fingerprint. *)
