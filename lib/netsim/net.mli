(** Datagram network: addresses, static routes (lists of links) and
    delivery to per-address handlers — a best-effort IP/UDP service.
    Payloads are an extensible variant so each protocol stacks its own
    packet type on the simulator. *)

type addr = int

type payload = ..
type payload += Raw of string

type payload += Ce of payload
(** Wraps the payload of a datagram that crossed a router whose queue was
    past the ECN marking threshold. *)

type payload += Corrupt of payload * int64
(** Wraps the payload of a datagram damaged in flight by a link's
    corruption fault; the descriptor deterministically selects the damage
    (see {!corrupt_string}). *)

val corrupt_string : int64 -> string -> string
(** [corrupt_string descr wire] applies the damage encoded by [descr] to
    a wire image: flips 1–3 bytes at descriptor-derived offsets. Pure —
    a replay from the same seed damages the same bits. *)

type datagram = { src : addr; dst : addr; size : int; payload : payload }

type t

val create : Sim.t -> t
val sim : t -> Sim.t

val add_route : t -> src:addr -> dst:addr -> Link.t list -> unit
(** Datagrams from [src] to [dst] traverse exactly these links, in order. *)

val attach : t -> addr -> (datagram -> unit) -> unit
val detach : t -> addr -> unit

val send : t -> datagram -> unit
(** Dropped silently when any link loses it or no route/handler exists. *)
