(** Deterministic SplitMix64 PRNG. Every stochastic element of the
    simulator (loss draws, sampling designs) derives from explicit seeds,
    so — as in the paper's NetEm setup — "the same loss pattern is applied
    when an experiment is replayed". *)

type t

val create : int64 -> t
val next_int64 : t -> int64
val float : t -> float
(** Uniform in [0, 1). *)

val int : t -> int -> int
(** Uniform in [0, bound). *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. *)

val split : t -> t
(** Derive an independent stream, e.g. one per link. Advances [t]. *)

val stream : t -> string -> t
(** [stream t name] derives an independent per-purpose stream from [t]'s
    current state and [name], {e without} advancing [t]: creating (or not
    creating) a named stream never perturbs the parent's draw sequence or
    any sibling stream. Distinct names yield independent streams. *)
