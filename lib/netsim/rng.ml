(* Deterministic SplitMix64 PRNG. Every stochastic element of the simulator
   (loss draws, jitter) derives from explicit seeds so that, as in the
   paper's lab setup, "the same loss pattern is applied when an experiment
   is replayed". *)

type t = { mutable state : int64 }

let create seed = { state = seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  let open Int64 in
  t.state <- add t.state golden;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Uniform float in [0, 1). *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

(* Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.unsigned_rem (next_int64 t) (Int64.of_int bound))

let bool t p = float t < p

(* Derive an independent stream, e.g. one per link. *)
let split t = create (next_int64 t)

(* Derive an independent *named* stream for one purpose (e.g. the
   Gilbert–Elliott draw of one link) without advancing [t]: the child seed
   mixes the parent's current state with an FNV-1a hash of the name, so
   the parent's own draw sequence — and every sibling stream — is exactly
   what it would be had this stream never been created. This is what lets
   a fault be toggled on a link without perturbing any other fault's
   pattern, or the link's legacy loss pattern. *)
let stream t name =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    name;
  (* run the child seed through one SplitMix64 mix so that streams whose
     names share a prefix still diverge immediately *)
  let child = create (Int64.logxor t.state !h) in
  create (next_int64 child)
