(* A unidirectional link fed by a drop-tail router queue, reproducing the
   paper's NetEm (delay, seeded random loss) + HTB (rate limit) setup.

   A packet entering the link is first subjected to the random loss draw
   (NetEm-style, before the queue). It then waits for the transmitter: the
   queue holds at most [buffer] bytes beyond the packet in service —
   arrivals that would overflow it are congestion losses, which the paper
   notes "can still be observed due to the limited bandwidth and router
   buffers" even on lossless links. Serialization takes size*8/rate and
   propagation adds the one-way delay.

   A link may additionally carry a [Fault.profile] — bursty loss,
   reordering, duplication, corruption, blackouts — injected between the
   legacy loss draw and the queue. The legacy draw keeps its original RNG
   and draw positions, and fault streams are derived without advancing it
   ([Rng.stream]), so a link with [Fault.none] behaves bit-identically to
   one built before faults existed. *)

type stats = {
  mutable sent : int;
  mutable delivered : int;
  mutable random_losses : int;
  mutable queue_drops : int;
  mutable bytes_delivered : int;
  mutable ce_marked : int;
  mutable ge_losses : int;
  mutable blackout_drops : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable corrupted : int;
  mutable queue_hwm : int;
}

type t = {
  sim : Sim.t;
  delay : Sim.time;               (* one-way propagation delay *)
  rate_bps : float;               (* 0. means infinite *)
  loss : float;                   (* uniform loss probability *)
  buffer : int;                   (* queue capacity in bytes *)
  ecn_threshold : int;            (* mark CE above this backlog; 0 = off *)
  rng : Rng.t;
  fault : Fault.t option;
  mutable busy_until : Sim.time;
  mutable queued_bytes : int;
  stats : stats;
}

let create ~sim ~delay_ms ~rate_mbps ~loss ~rng ?(buffer = 64 * 1024)
    ?(ecn_threshold = 0) ?(faults = Fault.none) () =
  {
    sim;
    delay = Sim.of_ms delay_ms;
    rate_bps = rate_mbps *. 1e6;
    loss;
    buffer;
    ecn_threshold;
    rng;
    fault = (if Fault.is_none faults then None else Some (Fault.create ~rng faults));
    busy_until = 0L;
    queued_bytes = 0;
    stats =
      { sent = 0; delivered = 0; random_losses = 0; queue_drops = 0;
        bytes_delivered = 0; ce_marked = 0; ge_losses = 0; blackout_drops = 0;
        duplicated = 0; reordered = 0; corrupted = 0; queue_hwm = 0 };
  }

let tx_time t size =
  if t.rate_bps <= 0. then 0L
  else Int64.of_float (float_of_int (size * 8) /. t.rate_bps *. 1e9)

(* Queue one surviving copy: serialization behind the packet in service,
   then propagation (+ any reorder penalty). *)
let enqueue t ~size ~extra_delay ~corrupt deliver =
  let now = Sim.now t.sim in
  let in_service = t.busy_until > now in
  let backlog = if in_service then t.queued_bytes else 0 in
  if in_service && backlog + size > t.buffer then
    t.stats.queue_drops <- t.stats.queue_drops + 1
  else begin
    let ce = t.ecn_threshold > 0 && backlog + size > t.ecn_threshold in
    if ce then t.stats.ce_marked <- t.stats.ce_marked + 1;
    let start = if in_service then t.busy_until else now in
    let tx_done = Int64.add start (tx_time t size) in
    t.queued_bytes <- (if in_service then t.queued_bytes else 0) + size;
    if t.queued_bytes > t.stats.queue_hwm then
      t.stats.queue_hwm <- t.queued_bytes;
    t.busy_until <- tx_done;
    let arrival = Int64.add (Int64.add tx_done t.delay) extra_delay in
    ignore
      (Sim.schedule t.sim ~delay:(Int64.sub tx_done now) (fun () ->
           t.queued_bytes <- t.queued_bytes - size));
    ignore
      (Sim.schedule t.sim ~delay:(Int64.sub arrival now) (fun () ->
           t.stats.delivered <- t.stats.delivered + 1;
           t.stats.bytes_delivered <- t.stats.bytes_delivered + size;
           deliver ~ce ~corrupt))
  end

(* Submit a packet of [size] bytes; [deliver ~ce ~corrupt] runs at the far
   end for each surviving copy, with [ce] set when the router marked it
   Congestion Experienced and [corrupt] carrying a corruption descriptor
   when the fault layer damaged the payload in flight. *)
let send_full t ~size deliver =
  t.stats.sent <- t.stats.sent + 1;
  if t.loss > 0. && Rng.bool t.rng t.loss then
    t.stats.random_losses <- t.stats.random_losses + 1
  else
    match t.fault with
    | None -> enqueue t ~size ~extra_delay:0L ~corrupt:None deliver
    | Some f ->
      let v = Fault.judge f ~now:(Sim.now t.sim) in
      (match v.drop with
      | Some Fault.Ge_loss -> t.stats.ge_losses <- t.stats.ge_losses + 1
      | Some Fault.Blackout ->
        t.stats.blackout_drops <- t.stats.blackout_drops + 1
      | None ->
        if v.extra_delay > 0L then t.stats.reordered <- t.stats.reordered + 1;
        (match v.corrupt with
        | Some _ -> t.stats.corrupted <- t.stats.corrupted + 1
        | None -> ());
        enqueue t ~size ~extra_delay:v.extra_delay ~corrupt:v.corrupt deliver;
        if v.duplicate then begin
          t.stats.duplicated <- t.stats.duplicated + 1;
          (* the copy rides the queue again, undamaged and undelayed *)
          enqueue t ~size ~extra_delay:0L ~corrupt:None deliver
        end)

let send_ecn t ~size deliver =
  send_full t ~size (fun ~ce ~corrupt:_ -> deliver ~ce)

let send t ~size deliver = send_full t ~size (fun ~ce:_ ~corrupt:_ -> deliver ())

let stats t = t.stats
