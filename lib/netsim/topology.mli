(** The experimental topology of the paper's Figure 7: a client reaching a
    server over one or two paths through routers R1/R2 converging at R3.
    Each direction of the middle segment carries the configured
    {delay, bandwidth, loss}; access segments are fast and lossless. *)

type path_params = { d_ms : float; bw_mbps : float; loss : float }
(** One-way delay in ms, bandwidth in Mbit/s, uniform loss probability. *)

type t = {
  sim : Sim.t;
  net : Net.t;
  client_addrs : Net.addr list; (** one address per available path *)
  server_addr : Net.addr;
  mid_links : (Link.t * Link.t) list; (** (up, down) middle segment per path *)
}

val client_addr_1 : Net.addr
val client_addr_2 : Net.addr
val server_addr : Net.addr

val default_buffer : int
(** A 100-packet drop-tail router queue, as a Linux default qdisc. *)

val single_path :
  ?buffer:int -> ?ecn_threshold:int -> ?faults:Fault.profile -> seed:int64 ->
  path_params -> t
(** [faults] (default {!Fault.none}) is applied to both directions of the
    middle segment; access links stay clean. *)

val dual_path :
  ?buffer:int -> ?faults:Fault.profile -> seed:int64 ->
  path_params -> path_params -> t
(** Two paths: the client owns {!client_addr_1} (via R1) and
    {!client_addr_2} (via R2). [faults] applies to every middle segment. *)

val fast_link : seed:int64 -> t
(** The 10 Gbps back-to-back servers of the Table 3 benchmark. *)
