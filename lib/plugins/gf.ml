(* GF(256) arithmetic (AES polynomial 0x11b) and the deterministic RLC
   coefficient stream, shared by the FEC plugin's bytecode helpers and any
   native code that needs to mirror the sliding-window random linear code.
   Standalone library: both the engine (host-side gf256_* helpers) and the
   plugin collection link against it. *)

let mul a b =
  let a = ref a and b = ref b and p = ref 0 in
  for _ = 0 to 7 do
    if !b land 1 <> 0 then p := !p lxor !a;
    let hi = !a land 0x80 in
    a := (!a lsl 1) land 0xff;
    if hi <> 0 then a := !a lxor 0x1b;
    b := !b lsr 1
  done;
  !p

let pow a n =
  let rec go acc a n =
    if n = 0 then acc
    else go (if n land 1 = 1 then mul acc a else acc) (mul a a) (n lsr 1)
  in
  go 1 a n

let inv a = if a = 0 then 0 else pow a 254

(* Deterministic RLC coefficient in 1..255, identical on both peers. *)
let rlc_coef ~seed ~sid ~row =
  let h = ref 0xcbf29ce484222325L in
  let mix v =
    h := Int64.mul (Int64.logxor !h v) 0x100000001b3L
  in
  mix seed; mix sid; mix (Int64.of_int row);
  let v = Int64.to_int (Int64.logand !h 0xffL) in
  if v = 0 then 1 else v
