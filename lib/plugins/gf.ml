(* GF(256) arithmetic (AES polynomial 0x11b) and the deterministic RLC
   coefficient stream, shared by the FEC plugin's bytecode helpers and any
   native code that needs to mirror the sliding-window random linear code.
   Standalone library: both the engine (host-side gf256_* helpers) and the
   plugin collection link against it. *)

let mul a b =
  let a = ref a and b = ref b and p = ref 0 in
  for _ = 0 to 7 do
    if !b land 1 <> 0 then p := !p lxor !a;
    let hi = !a land 0x80 in
    a := (!a lsl 1) land 0xff;
    if hi <> 0 then a := !a lxor 0x1b;
    b := !b lsr 1
  done;
  !p

let pow a n =
  let rec go acc a n =
    if n = 0 then acc
    else go (if n land 1 = 1 then mul acc a else acc) (mul a a) (n lsr 1)
  in
  go 1 a n

let inv a = if a = 0 then 0 else pow a 254

(* dst ^= coef * src, byte by byte: the specification for the
   word-parallel kernel below, and the oracle its parity test checks
   against. *)
let mulvec_ref ~coef ~src ~dst ~len =
  let coef = coef land 0xff in
  for k = 0 to len - 1 do
    Bytes.set_uint8 dst k
      (Bytes.get_uint8 dst k lxor mul coef (Bytes.get_uint8 src k))
  done

external get64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external set64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

(* Word-parallel dst ^= coef * src: eight byte lanes per native int64 op.
   The per-word product is built like [mul], but xtime runs on all eight
   lanes at once — the top-bit mask picks the lanes that overflow, and
   [(hi >>> 7) * 0x1b] rebuilds the reduction byte in exactly those lanes
   (each product term stays below 256, so lanes cannot carry into each
   other). The FEC repair path XOR-accumulates coef*symbol over whole
   1300-byte symbols, which is where the 8x width pays. *)
let mulvec_off ~coef ~src ~soff ~dst ~doff ~len =
  if
    len < 0 || soff < 0 || doff < 0
    || soff + len > Bytes.length src
    || doff + len > Bytes.length dst
  then invalid_arg "Gf.mulvec";
  let coef = coef land 0xff in
  let words = len lsr 3 in
  if coef = 1 then begin
    (* XOR fast path: multiplying by 1 is the whole of XOR-style codes
       (the paper's XOR-EOS plugin), so the per-word product loop reduces
       to one unboxed xor per lane word — this runs once per protected
       packet on both the encode and the recovery side. *)
    for w = 0 to words - 1 do
      let o = w lsl 3 in
      set64 dst (doff + o)
        (Int64.logxor (get64 dst (doff + o)) (get64 src (soff + o)))
    done;
    for k = words lsl 3 to len - 1 do
      Bytes.set_uint8 dst (doff + k)
        (Bytes.get_uint8 dst (doff + k) lxor Bytes.get_uint8 src (soff + k))
    done
  end
  else begin
  for w = 0 to words - 1 do
    let o = w lsl 3 in
    let x = ref (get64 src (soff + o)) and c = ref coef and p = ref 0L in
    while !c <> 0 do
      if !c land 1 <> 0 then p := Int64.logxor !p !x;
      let hi = Int64.logand !x 0x8080_8080_8080_8080L in
      x :=
        Int64.logxor
          (Int64.shift_left (Int64.logand !x 0x7f7f_7f7f_7f7f_7f7fL) 1)
          (Int64.mul (Int64.shift_right_logical hi 7) 0x1bL);
      c := !c lsr 1
    done;
    set64 dst (doff + o)
      (Int64.logxor (get64 dst (doff + o)) !p)
  done;
  for k = words lsl 3 to len - 1 do
    Bytes.set_uint8 dst (doff + k)
      (Bytes.get_uint8 dst (doff + k) lxor mul coef (Bytes.get_uint8 src (soff + k)))
  done
  end

let mulvec ~coef ~src ~dst ~len = mulvec_off ~coef ~src ~soff:0 ~dst ~doff:0 ~len

(* Deterministic RLC coefficient in 1..255, identical on both peers. *)
let rlc_coef ~seed ~sid ~row =
  let h = ref 0xcbf29ce484222325L in
  let mix v =
    h := Int64.mul (Int64.logxor !h v) 0x100000001b3L
  in
  mix seed; mix sid; mix (Int64.of_int row);
  let v = Int64.to_int (Int64.logand !h 0xffL) in
  if v = 0 then 1 else v
