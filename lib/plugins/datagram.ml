(* The Datagram plugin (Section 4.2): a new DATAGRAM frame carrying
   unreliable messages, plus two *external* protocol operations (Section
   2.4) extending the API PQUIC offers to the application — a message
   socket. Frames keep data boundaries but are neither ordered nor
   retransmitted; received messages are pushed asynchronously to the
   application, which is how the QUIC VPN moves IP packets. *)

open Dsl

let name = "org.pquic.datagram"

let frame_type = Quic.Frame.type_datagram

(* External protocol operations added by this plugin. *)
let op_send_message = 100
let op_max_message_size = 101

(* Ring of pending outgoing messages, opaque-data id 2:
   0: monotonic slot counter, 8: (reserved), 16: 64 slots of (addr, len). *)
let slots = 256
let state_size = 16 + (slots * 16)
let state body = with_state ~id:2 ~size:state_size body

let slot_addr slot_expr = v "st" +: i 16 +: (slot_expr *: i 16)

(* send_message(buf, len): queue a copy of the message in plugin memory and
   book a DATAGRAM frame slot. Drops (returns -1) when the ring is full,
   like a saturated tun queue — datagrams are allowed to be lost. *)
let send_message =
  func "dg_send_message" [ "buf"; "len" ]
    (state
       [
         If
           ( (v "len" >: i 1400) ||: (v "len" =: i 0),
             [ ret (i (-1)) ],
             [] );
         Let ("slot", fld 0 %: i slots);
         Let ("entry", slot_addr (v "slot"));
         If (ld64 (v "entry") <>: i 0, [ ret (i (-1)) ], []);
         Let ("m", pl_malloc (v "len"));
         If (v "m" =: i 0, [ ret (i (-1)) ], []);
         pl_memcpy (v "m") (v "buf") (v "len");
         st64 (v "entry") (v "m");
         st64 (v "entry" +: i 8) (v "len");
         set_fld 0 (fld 0 +: i 1);
         reserve frame_type (v "len" +: i 4) 0 (v "slot");
         ret0;
       ])

(* write_frame[DATAGRAM](buf, maxlen, cookie): body = u16 length, payload. *)
let write_frame =
  func "dg_write_frame" [ "buf"; "maxlen"; "cookie" ]
    (state
       [
         Let ("entry", slot_addr (v "cookie" %: i slots));
         Let ("m", ld64 (v "entry"));
         If (v "m" =: i 0, [ ret0 ], []);
         Let ("len", ld64 (v "entry" +: i 8));
         If (v "len" +: i 2 >: v "maxlen", [ ret0 ], []);
         st16 (v "buf") (v "len");
         pl_memcpy (v "buf" +: i 2) (v "m") (v "len");
         pl_free (v "m");
         st64 (v "entry") (i 0);
         ret (v "len" +: i 2);
       ])

(* parse_frame[DATAGRAM](buf, buflen) -> consumed bytes. *)
let parse_frame =
  func "dg_parse_frame" [ "buf"; "buflen" ]
    [
      If (v "buflen" <: i 2, [ ret0 ], []);
      Let ("len", ld16 (v "buf"));
      If (v "len" +: i 2 >: v "buflen", [ ret0 ], []);
      ret (v "len" +: i 2);
    ]

(* process_frame[DATAGRAM]: push the message straight to the application
   (the asynchronous channel of Section 2.4). *)
let process_frame =
  func "dg_process_frame" [ "buf"; "consumed"; "pn" ]
    [
      Let ("len", ld16 (v "buf"));
      push_message (v "buf" +: i 2) (v "len");
      ret0;
    ]

(* notify_frame[DATAGRAM]: datagrams maintain boundaries but neither order
   nor reliability — a lost frame is simply gone. *)
let notify_frame =
  func "dg_notify_frame" [ "acked"; "cookie"; "buf" ] [ ret0 ]

(* max_message_size(): what fits in one DATAGRAM frame on this connection. *)
let max_message_size =
  func "dg_max_message_size" []
    [ ret (get Pluginop.Api.f_mtu (i 0) -: i 64) ]

let plugin : Pluginop.Plugin.t =
  {
    Pluginop.Plugin.name;
    pluglets =
      [
        pluglet ~op:op_send_message ~anchor:Pluginop.Protoop.External send_message;
        pluglet ~op:op_max_message_size ~anchor:Pluginop.Protoop.External
          max_message_size;
        pluglet ~op:Pluginop.Protoop.write_frame ~param:frame_type
          ~anchor:Pluginop.Protoop.Replace write_frame;
        pluglet ~op:Pluginop.Protoop.parse_frame ~param:frame_type
          ~anchor:Pluginop.Protoop.Replace parse_frame;
        pluglet ~op:Pluginop.Protoop.process_frame ~param:frame_type
          ~anchor:Pluginop.Protoop.Replace process_frame;
        pluglet ~op:Pluginop.Protoop.notify_frame ~param:frame_type
          ~anchor:Pluginop.Protoop.Replace notify_frame;
      ];
  }

(* Application-side wrappers over the external operations. *)
let send conn msg =
  match
    Pquic.Connection.call_external conn op_send_message
      [|
        Pquic.Connection.Buf (Bytes.of_string msg, `Ro);
        Pquic.Connection.I (Int64.of_int (String.length msg));
      |]
  with
  | Some 0L -> Ok ()
  | Some _ -> Error `Would_block
  | None -> Error `No_plugin

let max_size conn =
  match Pquic.Connection.call_external conn op_max_message_size [||] with
  | Some v -> Some (Int64.to_int v)
  | None -> None
