(** The Multipath plugin (Section 4.3): exchanges host addresses
    (ADD_ADDRESS frame), associates a path id with each address pair,
    schedules packets round-robin across the active paths, and reports
    per-path acknowledgments with MP_ACK frames feeding each path's RTT
    estimator. {!plugin_lowest_rtt} swaps the scheduler for Multipath
    TCP's lowest-RTT policy. *)

val name : string
val name_lowest_rtt : string

val plugin : Pluginop.Plugin.t
(** Round-robin packet scheduler, as evaluated in Figure 9. *)

val plugin_lowest_rtt : Pluginop.Plugin.t
(** Lowest-smoothed-RTT scheduler — built but not evaluated, as in the
    paper. *)
