(** Shorthand for writing pluglets: thin wrappers over the plc AST that
    read like the C sources of the paper's plugins. All pluglets obtain
    their persistent state from get_opaque_data and address it with 64-bit
    loads and stores relative to the returned base, conventionally bound to
    the local ["st"]. *)

open Plc.Ast

val i : int -> expr
val v : string -> expr
val ( +: ) : expr -> expr -> expr
val ( -: ) : expr -> expr -> expr
val ( *: ) : expr -> expr -> expr
val ( /: ) : expr -> expr -> expr
val ( %: ) : expr -> expr -> expr
val ( =: ) : expr -> expr -> expr
val ( <>: ) : expr -> expr -> expr
val ( <: ) : expr -> expr -> expr
val ( <=: ) : expr -> expr -> expr
val ( >: ) : expr -> expr -> expr
val ( >=: ) : expr -> expr -> expr
val ( &&: ) : expr -> expr -> expr
val ( ||: ) : expr -> expr -> expr

val call : string -> expr list -> expr
val callv : string -> expr list -> stmt
(** A helper call evaluated for effect. *)

val with_state : id:int -> size:int -> block -> block
(** Prefix a body with [let st = get_opaque_data(id, size)]. *)

val fld : int -> expr
(** 64-bit field at a byte offset from [st]. *)

val set_fld : int -> expr -> stmt
val bump : int -> stmt
(** [fld off <- fld off + 1]. *)

val add_fld : int -> expr -> stmt

val ld8 : expr -> expr
val ld16 : expr -> expr
val ld32 : expr -> expr
val ld64 : expr -> expr
val st8 : expr -> expr -> stmt
val st16 : expr -> expr -> stmt
val st32 : expr -> expr -> stmt
val st64 : expr -> expr -> stmt

(** {2 The Table 1 API} *)

val get : int -> expr -> expr
(** [get field index]. *)

val set : int -> expr -> expr -> stmt
val pl_malloc : expr -> expr
val pl_free : expr -> stmt
val pl_memcpy : expr -> expr -> expr -> stmt
val pl_memset : expr -> expr -> expr -> stmt
val run_protoop : int -> expr -> expr -> expr -> expr -> expr
(** [run_protoop op param a b c]; pass [Const (-1L)] for no parameter. *)

val reserve : int -> expr -> int -> expr -> stmt
(** [reserve ftype size flags cookie] books a frame slot. *)

val get_time : unit -> expr
val push_message : expr -> expr -> stmt

val ret : expr -> stmt
val ret0 : stmt

val func : string -> string list -> block -> Plc.Ast.func

val pluglet :
  ?param:int ->
  op:Pluginop.Protoop.id ->
  anchor:Pluginop.Protoop.anchor ->
  Plc.Ast.func ->
  Pluginop.Plugin.pluglet

(** reserve_frames flag bits *)

val fl_retransmittable : int
val fl_non_ack_eliciting : int
