(** GF(256) arithmetic (AES polynomial 0x11b) and the deterministic RLC
    coefficient stream shared by the FEC machinery on both peers. *)

val mul : int -> int -> int
(** Field multiplication; operands are taken modulo 256. *)

val pow : int -> int -> int
(** [pow a n] — [a]{^ [n]} in the field (square-and-multiply). *)

val inv : int -> int
(** Multiplicative inverse; [inv 0 = 0] by convention. *)

val mulvec : coef:int -> src:Bytes.t -> dst:Bytes.t -> len:int -> unit
(** [dst.(k) <- dst.(k) lxor coef*src.(k)] for [k < len] — the FEC
    XOR-accumulate step — computed eight byte lanes per native word
    (SWAR xtime). Equivalent to {!mulvec_ref}.
    @raise Invalid_argument when [len] overruns either buffer. *)

val mulvec_off :
  coef:int -> src:Bytes.t -> soff:int -> dst:Bytes.t -> doff:int ->
  len:int -> unit
(** {!mulvec} over the sub-ranges starting at [soff]/[doff]: the in-place
    form the host helpers use to accumulate straight between VM regions
    with no staging copies. The ranges must not partially overlap. *)

val mulvec_ref : coef:int -> src:Bytes.t -> dst:Bytes.t -> len:int -> unit
(** Byte-at-a-time specification of {!mulvec}, kept as the parity
    oracle. *)

val rlc_coef : seed:int64 -> sid:int64 -> row:int -> int
(** The deterministic coding coefficient in 1..255 both peers regenerate
    for a (source-symbol id, repair row) pair; never 0. *)
