(** GF(256) arithmetic (AES polynomial 0x11b) and the deterministic RLC
    coefficient stream shared by the FEC machinery on both peers. *)

val mul : int -> int -> int
(** Field multiplication; operands are taken modulo 256. *)

val pow : int -> int -> int
(** [pow a n] — [a]{^ [n]} in the field (square-and-multiply). *)

val inv : int -> int
(** Multiplicative inverse; [inv 0 = 0] by convention. *)

val rlc_coef : seed:int64 -> sid:int64 -> row:int -> int
(** The deterministic coding coefficient in 1..255 both peers regenerate
    for a (source-symbol id, repair row) pair; never 0. *)
