(* The small extension plugins the paper's Section 4 opens with: "With less
   than 100 lines of C code a PQUIC plugin can add the equivalent of Tail
   Loss Probe in TCP, or support for Explicit Congestion Notification" —
   plus the new-congestion-controller plugin Section 6 mentions. Each is a
   handful of pluglets over the get/set API and the retransmission /
   congestion protocol operations. *)

open Dsl

(* ------------------------- Tail Loss Probe ---------------------------- *)

(* Replaces get_retransmission_delay: when only a packet or two remain in
   flight (a tail), the timer shrinks to max(2*srtt, 10 ms) so a lost tail
   is probed long before the full PTO — Flach et al.'s gentle aggression. *)
module Tlp = struct
  let name = "org.pquic.tlp"

  let probe_delay =
    func "tlp_retransmission_delay" [ "base"; "path" ]
      [
        Let ("inflight", get Pluginop.Api.f_bytes_in_flight (v "path"));
        If
          ( (v "inflight" >: i 0) &&: (v "inflight" <=: i 4200),
            [
              Let
                ( "probe",
                  (get Pluginop.Api.f_srtt (v "path") *: i 2) +: i 10_000_000 );
              If (v "probe" <: v "base", [ ret (v "probe") ], []);
            ],
            [] );
        ret (v "base");
      ]

  (* passive bookkeeping: count how often the shortened timer fired *)
  let count_probes =
    func "tlp_count_probes" []
      (with_state ~id:6 ~size:16 [ bump 0; ret0 ])

  let plugin : Pluginop.Plugin.t =
    {
      Pluginop.Plugin.name;
      pluglets =
        [
          pluglet ~op:Pluginop.Protoop.get_retransmission_delay
            ~anchor:Pluginop.Protoop.Replace probe_delay;
          pluglet ~op:Pluginop.Protoop.on_loss_timer ~anchor:Pluginop.Protoop.Post
            count_probes;
        ];
    }
end

(* ------------------------------- ECN ----------------------------------- *)

(* Explicit Congestion Notification: the receiver counts CE-marked packets
   and reports the counter in a new ECN_ACK frame; the sender halves the
   path's congestion window at most once per RTT when the counter grows —
   reacting to congestion without waiting for a loss. State (opaque 5):
   0 ce_seen (receiver) | 8 last_reported | 16 last_processed (sender) |
   24 last_reduction_time. *)
module Ecn = struct
  let name = "org.pquic.ecn"

  let frame_type = 0x43

  let state body = with_state ~id:5 ~size:32 body

  let on_received_packet =
    func "ecn_received_packet" [ "pn"; "path" ]
      (state
         [
           If
             ( get Pluginop.Api.f_ecn_ce (i 0) =: i 1,
               [
                 bump 0;
                 reserve frame_type (i 8) fl_non_ack_eliciting (i 0);
               ],
               [] );
           ret0;
         ])

  let write_frame =
    func "ecn_write_frame" [ "buf"; "maxlen"; "cookie" ]
      (state
         [
           If (v "maxlen" <: i 4, [ ret0 ], []);
           (* coalesce: a frame already reporting this count is enough *)
           If (fld 0 =: fld 8, [ ret0 ], []);
           set_fld 8 (fld 0);
           st32 (v "buf") (fld 0);
           ret (i 4);
         ])

  let parse_frame =
    func "ecn_parse_frame" [ "buf"; "buflen" ]
      [
        If (v "buflen" <: i 4, [ ret0 ], []);
        ret (i 4 +: i 0x10000000);
      ]

  let process_frame =
    func "ecn_process_frame" [ "buf"; "consumed"; "pn" ]
      (state
         [
           Let ("count", ld32 (v "buf"));
           If
             ( v "count" >: fld 16,
               [
                 set_fld 16 (v "count");
                 Let ("path", get Pluginop.Api.f_last_path_recv (i 0));
                 Let ("srtt", get Pluginop.Api.f_srtt (v "path"));
                 (* congestion response at most once per RTT *)
                 If
                   ( get_time () -: fld 24 >: v "srtt",
                     [
                       set_fld 24 (get_time ());
                       Let ("cwnd", get Pluginop.Api.f_cwnd (v "path"));
                       set Pluginop.Api.f_cwnd (v "path") (v "cwnd" /: i 2);
                     ],
                     [] );
               ],
               [] );
           ret0;
         ])

  let notify_frame =
    func "ecn_notify_frame" [ "acked"; "cookie"; "buf" ] [ ret0 ]

  let plugin : Pluginop.Plugin.t =
    {
      Pluginop.Plugin.name;
      pluglets =
        [
          pluglet ~op:Pluginop.Protoop.received_packet ~anchor:Pluginop.Protoop.Post
            on_received_packet;
          pluglet ~op:Pluginop.Protoop.write_frame ~param:frame_type
            ~anchor:Pluginop.Protoop.Replace write_frame;
          pluglet ~op:Pluginop.Protoop.parse_frame ~param:frame_type
            ~anchor:Pluginop.Protoop.Replace parse_frame;
          pluglet ~op:Pluginop.Protoop.process_frame ~param:frame_type
            ~anchor:Pluginop.Protoop.Replace process_frame;
          pluglet ~op:Pluginop.Protoop.notify_frame ~param:frame_type
            ~anchor:Pluginop.Protoop.Replace notify_frame;
        ];
    }
end

(* ----------------------- pluggable congestion control ------------------ *)

(* The Section 6 sketch: "a new congestion controller could easily be
   implemented as a protocol plugin". Pure AIMD: additive increase of one
   MSS per congestion window of acknowledged data, multiplicative decrease
   on loss, collapse on RTO — replacing the three cc protocol operations
   through the get/set API. The engine keeps bytes-in-flight accounting, so
   the plugin only owns the window policy. *)
module Aimd = struct
  let name = "org.pquic.cc-aimd"

  let mss = 1252

  let on_acked =
    func "aimd_on_acked" [ "pn"; "size"; "path" ]
      [
        Let ("cwnd", get Pluginop.Api.f_cwnd (v "path"));
        set Pluginop.Api.f_cwnd (v "path")
          (v "cwnd" +: (i mss *: v "size" /: v "cwnd"));
        ret0;
      ]

  let on_lost =
    func "aimd_on_lost" [ "pn"; "size"; "path" ]
      [
        Let ("cwnd", get Pluginop.Api.f_cwnd (v "path"));
        set Pluginop.Api.f_cwnd (v "path") (v "cwnd" /: i 2);
        ret0;
      ]

  let on_rto =
    func "aimd_on_rto" [ "path" ]
      [
        set Pluginop.Api.f_cwnd (v "path") (i (2 * mss));
        ret0;
      ]

  let plugin : Pluginop.Plugin.t =
    {
      Pluginop.Plugin.name;
      pluglets =
        [
          pluglet ~op:Pluginop.Protoop.cc_on_packet_acked
            ~anchor:Pluginop.Protoop.Replace on_acked;
          pluglet ~op:Pluginop.Protoop.cc_on_packet_lost
            ~anchor:Pluginop.Protoop.Replace on_lost;
          pluglet ~op:Pluginop.Protoop.cc_on_rto ~anchor:Pluginop.Protoop.Replace
            on_rto;
        ];
    }
end
