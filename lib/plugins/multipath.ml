(* The Multipath plugin (Section 4.3): exchanges host addresses
   (ADD_ADDRESS frame), associates a path id with each pair of addresses,
   schedules packets round-robin across the active paths once the
   connection is established, and acknowledges per-path performance with a
   new MP_ACK frame so each path keeps its own RTT estimate — mirroring the
   design of the Multipath QUIC extensions. A second scheduler pluglet
   implementing the lowest-RTT policy of Multipath TCP is provided as the
   [plugin_lowest_rtt] variant (built, not evaluated, as in the paper). *)

open Dsl

let name = "org.pquic.multipath"
let name_lowest_rtt = "org.pquic.multipath-rtt"

let t_add_address = Quic.Frame.type_add_address
let t_mp_ack = Quic.Frame.type_mp_ack

let max_paths = 4

(* opaque 3: round-robin scheduler state (last path used). *)
let sched_state body = with_state ~id:3 ~size:16 body

(* opaque 4: per-path receive bookkeeping for MP_ACK: 32 bytes per path
   (last pn, receive time, packet count). *)
let recv_state body = with_state ~id:4 ~size:(max_paths * 32) body

let path_entry path = v "st" +: (path *: i 32)

(* Path manager, client side: once established, open a path from our
   second address and announce that address to the peer. *)
let on_established =
  func "mp_establish" []
    [
      Let ("extra", get Pluginop.Api.f_own_extra_addr (i 0));
      If
        ( (get Pluginop.Api.f_role (i 0) =: i 0)
          &&: (v "extra" <>: Const (-1L)),
        [
          Let ("remote", get Pluginop.Api.f_path_remote_addr (i 0));
          Let ("pid", call "create_path" [ v "remote" ]);
          callv "pl_log" [ v "pid"; v "extra" ];
          reserve t_add_address (i 4) fl_retransmittable (v "extra");
        ],
          [] );
      ret0;
    ]

(* Path manager, server side: the client may also announce its address in
   its transport parameters. create_path deduplicates by remote address. *)
let on_transport_params =
  func "mp_transport_params" []
    [
      Let ("peer", get Pluginop.Api.f_peer_extra_addr (i 0));
      If
        ( (v "peer" <>: Const (-1L)) &&: (get Pluginop.Api.f_role (i 0) =: i 1),
          [ Expr (call "create_path" [ v "peer" ]) ],
          [] );
      ret0;
    ]

let write_add_address =
  func "mp_write_add_address" [ "buf"; "maxlen"; "cookie" ]
    [
      If (v "maxlen" <: i 2, [ ret0 ], []);
      st16 (v "buf") (v "cookie");
      ret (i 2);
    ]

let parse_add_address =
  func "mp_parse_add_address" [ "buf"; "buflen" ]
    [ If (v "buflen" <: i 2, [ ret0 ], []); ret (i 2) ]

let process_add_address =
  func "mp_process_add_address" [ "buf"; "consumed"; "pn" ]
    [
      Let ("addr", ld16 (v "buf"));
      Expr (call "create_path" [ v "addr" ]);
      ret0;
    ]

(* ADD_ADDRESS is retransmittable control state: re-book it when lost. *)
let notify_add_address =
  func "mp_notify_add_address" [ "acked"; "cookie"; "buf" ]
    [
      If
        (v "acked" =: i 0,
         [ reserve t_add_address (i 4) fl_retransmittable (v "cookie") ],
         []);
      ret0;
    ]

(* Round-robin packet scheduler: replaces select_path. Picks the next
   active path with congestion window headroom; if every path is blocked
   the turn still advances so no path is favoured. *)
let select_path_rr =
  func "mp_select_path_rr" []
    (sched_state
       [
         Let ("n", get Pluginop.Api.f_nb_paths (i 0));
         If (v "n" <=: i 1, [ ret0 ], []);
         Let ("last", fld 0);
         For
           ( "k",
             i 0,
             v "n",
             [
               Let ("cand", (v "last" +: i 1 +: v "k") %: v "n");
               If
                 ( (get Pluginop.Api.f_path_active (v "cand") =: i 1)
                   &&: (get Pluginop.Api.f_cwnd (v "cand")
                        >: get Pluginop.Api.f_bytes_in_flight (v "cand") +: i 1400),
                   [ set_fld 0 (v "cand"); ret (v "cand") ],
                   [] );
             ] );
         Let ("next", (v "last" +: i 1) %: v "n");
         set_fld 0 (v "next");
         ret (v "next");
       ])

(* Alternative scheduler: lowest smoothed RTT among paths with headroom,
   mimicking the default Multipath TCP scheduler. *)
let select_path_lowest_rtt =
  func "mp_select_path_rtt" []
    [
      Let ("n", get Pluginop.Api.f_nb_paths (i 0));
      If (v "n" <=: i 1, [ ret0 ], []);
      Let ("best", i 0);
      Let ("best_rtt", Const Int64.max_int);
      For
        ( "k",
          i 0,
          v "n",
          [
            Let ("rtt", get Pluginop.Api.f_srtt (v "k"));
            If
              ( (get Pluginop.Api.f_path_active (v "k") =: i 1)
                &&: (get Pluginop.Api.f_cwnd (v "k")
                     >: get Pluginop.Api.f_bytes_in_flight (v "k") +: i 1400)
                &&: (v "rtt" <: v "best_rtt"),
                [ Assign ("best", v "k"); Assign ("best_rtt", v "rtt") ],
                [] );
          ] );
      ret (v "best");
    ]

(* Record arrivals per path; every second packet on a path books an MP_ACK
   (path-specific acknowledgment, not itself ack-eliciting). *)
let on_received_packet =
  func "mp_received_packet" [ "pn"; "path" ]
    (recv_state
       [
         If (v "path" >=: i max_paths, [ ret0 ], []);
         Let ("e", path_entry (v "path"));
         st64 (v "e") (v "pn");
         st64 (v "e" +: i 8) (get_time ());
         st64 (v "e" +: i 16) (ld64 (v "e" +: i 16) +: i 1);
         If
           ( ld64 (v "e" +: i 16) %: i 2 =: i 0,
             [ reserve t_mp_ack (i 12) fl_non_ack_eliciting (v "path") ],
             [] );
         ret0;
       ])

(* MP_ACK body: u8 path, u32 packet number, u32 ack delay (us). *)
let write_mp_ack =
  func "mp_write_mp_ack" [ "buf"; "maxlen"; "cookie" ]
    (recv_state
       [
         If ((v "maxlen" <: i 9) ||: (v "cookie" >=: i max_paths), [ ret0 ], []);
         Let ("e", path_entry (v "cookie"));
         Let ("delay", (get_time () -: ld64 (v "e" +: i 8)) /: i 1000);
         st8 (v "buf") (v "cookie");
         st32 (v "buf" +: i 1) (ld64 (v "e"));
         st32 (v "buf" +: i 5) (v "delay");
         ret (i 9);
       ])

let parse_mp_ack =
  func "mp_parse_mp_ack" [ "buf"; "buflen" ]
    [
      If (v "buflen" <: i 9, [ ret0 ], []);
      (* length 9, flagged non-ack-eliciting (bit 28) *)
      ret (i 9 +: i 0x10000000);
    ]

(* Feed a per-path RTT sample from an MP_ACK. *)
let process_mp_ack =
  func "mp_process_mp_ack" [ "buf"; "consumed"; "pn" ]
    [
      Let ("path", ld8 (v "buf"));
      Let ("rpn", ld32 (v "buf" +: i 1));
      Let ("delay_us", ld32 (v "buf" +: i 5));
      Let ("ts", call "sent_time" [ v "rpn" ]);
      If
        ( Bin (Plc.Ast.Sge, v "ts", i 0),
          [
            Let ("sample", get_time () -: v "ts" -: (v "delay_us" *: i 1000));
            If
              ( Bin (Plc.Ast.Sgt, v "sample", i 0),
                [ set Pluginop.Api.f_rtt_sample (v "path") (v "sample") ],
                [] );
          ],
          [] );
      ret0;
    ]

let common_pluglets =
  [
    pluglet ~op:Pluginop.Protoop.connection_established ~anchor:Pluginop.Protoop.Post
      on_established;
    pluglet ~op:Pluginop.Protoop.process_transport_params
      ~anchor:Pluginop.Protoop.Post on_transport_params;
    pluglet ~op:Pluginop.Protoop.write_frame ~param:t_add_address
      ~anchor:Pluginop.Protoop.Replace write_add_address;
    pluglet ~op:Pluginop.Protoop.parse_frame ~param:t_add_address
      ~anchor:Pluginop.Protoop.Replace parse_add_address;
    pluglet ~op:Pluginop.Protoop.process_frame ~param:t_add_address
      ~anchor:Pluginop.Protoop.Replace process_add_address;
    pluglet ~op:Pluginop.Protoop.notify_frame ~param:t_add_address
      ~anchor:Pluginop.Protoop.Replace notify_add_address;
    pluglet ~op:Pluginop.Protoop.received_packet ~anchor:Pluginop.Protoop.Post
      on_received_packet;
    pluglet ~op:Pluginop.Protoop.write_frame ~param:t_mp_ack
      ~anchor:Pluginop.Protoop.Replace write_mp_ack;
    pluglet ~op:Pluginop.Protoop.parse_frame ~param:t_mp_ack
      ~anchor:Pluginop.Protoop.Replace parse_mp_ack;
    pluglet ~op:Pluginop.Protoop.process_frame ~param:t_mp_ack
      ~anchor:Pluginop.Protoop.Replace process_mp_ack;
  ]

let plugin : Pluginop.Plugin.t =
  {
    Pluginop.Plugin.name;
    pluglets =
      common_pluglets
      @ [
          pluglet ~op:Pluginop.Protoop.select_path ~anchor:Pluginop.Protoop.Replace
            select_path_rr;
        ];
  }

let plugin_lowest_rtt : Pluginop.Plugin.t =
  {
    Pluginop.Plugin.name = name_lowest_rtt;
    pluglets =
      common_pluglets
      @ [
          pluglet ~op:Pluginop.Protoop.select_path ~anchor:Pluginop.Protoop.Replace
            select_path_lowest_rtt;
        ];
  }
