(* The monitoring plugin (Section 4.1): passive pluglets hooked to the pre
   and post anchors of protocol operations record performance indicators
   (PI) in plugin memory by reading connection state variables through the
   get API; on connection close the PI block is exported to the local
   daemon — here, the application's message channel, which the experiment
   harness uses as the UDP collector. *)

open Dsl

let name = "org.pquic.monitoring"

(* PI block layout (all u64), opaque-data id 1. *)
let pi_size = 160
let o_pkts_received = 0
let o_pkts_sent = 8
let o_bytes_received = 16
let o_bytes_sent = 24
let o_pkts_lost = 32
let o_rtt_samples = 40
let o_rtt_sum = 48
let o_rtt_last = 56
let o_pkts_retransmitted = 64
let o_handshake_time = 72
let o_streams_opened = 80
let o_streams_closed = 88
let o_data_received = 96
let o_acks_received = 104
let o_out_of_order = 112
let o_datagrams_in = 120
let o_loss_timer_fires = 128
let o_established = 136
let o_ack_frames_seen = 144
let o_rto_events = 152

let state body = with_state ~id:1 ~size:pi_size body

(* Each pluglet mirrors a state variable into the PI block or counts an
   event; this is the "collects statistics by reading state variables"
   style of Web100 / TCP_INFO. *)

let on_received_packet =
  func "mon_received_packet" [ "pn"; "path" ]
    (state
       [
         set_fld o_pkts_received (get Pluginop.Api.f_pkts_received (i 0));
         set_fld o_bytes_received (get Pluginop.Api.f_bytes_received (i 0));
         set_fld o_out_of_order (get Pluginop.Api.f_pkts_out_of_order (i 0));
         ret0;
       ])

let on_packet_sent =
  func "mon_packet_sent" [ "pn"; "path"; "size" ]
    (state
       [
         set_fld o_pkts_sent (get Pluginop.Api.f_pkts_sent (i 0));
         set_fld o_bytes_sent (get Pluginop.Api.f_bytes_sent (i 0));
         ret0;
       ])

let on_packet_lost =
  func "mon_packet_lost" [ "pn"; "path" ]
    (state
       [
         set_fld o_pkts_lost (get Pluginop.Api.f_pkts_lost (i 0));
         set_fld o_pkts_retransmitted (get Pluginop.Api.f_pkts_retransmitted (i 0));
         ret0;
       ])

let on_update_rtt =
  func "mon_update_rtt" [ "sample"; "path" ]
    (state
       [
         bump o_rtt_samples;
         add_fld o_rtt_sum (v "sample");
         set_fld o_rtt_last (v "sample");
         ret0;
       ])

let on_established =
  func "mon_established" []
    (state
       [
         set_fld o_established (i 1);
         set_fld o_handshake_time (get Pluginop.Api.f_handshake_rtt (i 0));
         ret0;
       ])

let on_stream_opened =
  func "mon_stream_opened" [ "id" ]
    (state [ set_fld o_streams_opened (get Pluginop.Api.f_streams_open (i 0)); ret0 ])

let on_stream_closed =
  func "mon_stream_closed" [ "id" ] (state [ bump o_streams_closed; ret0 ])

let on_data_received =
  func "mon_data_received" [ "id"; "len" ]
    (state [ set_fld o_data_received (get Pluginop.Api.f_data_received (i 0)); ret0 ])

let on_packet_acknowledged =
  func "mon_packet_acked" [ "pn" ] (state [ bump o_acks_received; ret0 ])

let on_incoming_datagram =
  func "mon_incoming_datagram" [ "size" ] (state [ bump o_datagrams_in; ret0 ])

let on_loss_timer =
  func "mon_loss_timer" [] (state [ bump o_loss_timer_fires; ret0 ])

let on_rto =
  func "mon_rto" [] (state [ bump o_rto_events; ret0 ])

(* A parameterized passive pluglet: counts ACK frames as they are
   processed (pre anchor on process_frame[ACK]). *)
let on_ack_frame =
  func "mon_ack_frame" [ "pn" ] (state [ bump o_ack_frames_seen; ret0 ])

(* Export the PI block to the collector when the connection ends. *)
let on_closed =
  func "mon_closed" [] (state [ push_message (v "st") (i pi_size); ret0 ])

let plugin : Pluginop.Plugin.t =
  {
    Pluginop.Plugin.name;
    pluglets =
      [
        pluglet ~op:Pluginop.Protoop.received_packet ~anchor:Pluginop.Protoop.Post
          on_received_packet;
        pluglet ~op:Pluginop.Protoop.packet_was_sent ~anchor:Pluginop.Protoop.Post
          on_packet_sent;
        pluglet ~op:Pluginop.Protoop.packet_lost ~anchor:Pluginop.Protoop.Post
          on_packet_lost;
        pluglet ~op:Pluginop.Protoop.update_rtt ~anchor:Pluginop.Protoop.Post
          on_update_rtt;
        pluglet ~op:Pluginop.Protoop.connection_established
          ~anchor:Pluginop.Protoop.Post on_established;
        pluglet ~op:Pluginop.Protoop.stream_opened ~anchor:Pluginop.Protoop.Post
          on_stream_opened;
        pluglet ~op:Pluginop.Protoop.stream_closed ~anchor:Pluginop.Protoop.Post
          on_stream_closed;
        pluglet ~op:Pluginop.Protoop.data_received ~anchor:Pluginop.Protoop.Post
          on_data_received;
        pluglet ~op:Pluginop.Protoop.packet_acknowledged
          ~anchor:Pluginop.Protoop.Post on_packet_acknowledged;
        pluglet ~op:Pluginop.Protoop.incoming_datagram ~anchor:Pluginop.Protoop.Pre
          on_incoming_datagram;
        pluglet ~op:Pluginop.Protoop.on_loss_timer ~anchor:Pluginop.Protoop.Post
          on_loss_timer;
        pluglet ~op:Pluginop.Protoop.retransmission_timeout
          ~anchor:Pluginop.Protoop.Post on_rto;
        pluglet ~op:Pluginop.Protoop.process_frame
          ~param:Quic.Frame.type_ack ~anchor:Pluginop.Protoop.Pre on_ack_frame;
        pluglet ~op:Pluginop.Protoop.connection_closed ~anchor:Pluginop.Protoop.Post
          on_closed;
      ];
  }

(* Collector-side decoding of an exported PI block. *)
type report = {
  pkts_received : int64;
  pkts_sent : int64;
  bytes_received : int64;
  bytes_sent : int64;
  pkts_lost : int64;
  rtt_samples : int64;
  rtt_avg_ns : int64;
  rtt_last_ns : int64;
  pkts_retransmitted : int64;
  handshake_time_ns : int64;
  streams_opened : int64;
  streams_closed : int64;
  data_received : int64;
  acks_received : int64;
  out_of_order : int64;
  datagrams_in : int64;
  loss_timer_fires : int64;
  established : bool;
  ack_frames_seen : int64;
  rto_events : int64;
}

let decode_report msg =
  if String.length msg < pi_size then None
  else
    let f off = String.get_int64_le msg off in
    let samples = f o_rtt_samples in
    Some
      {
        pkts_received = f o_pkts_received;
        pkts_sent = f o_pkts_sent;
        bytes_received = f o_bytes_received;
        bytes_sent = f o_bytes_sent;
        pkts_lost = f o_pkts_lost;
        rtt_samples = samples;
        rtt_avg_ns =
          (if samples = 0L then 0L else Int64.div (f o_rtt_sum) samples);
        rtt_last_ns = f o_rtt_last;
        pkts_retransmitted = f o_pkts_retransmitted;
        handshake_time_ns = f o_handshake_time;
        streams_opened = f o_streams_opened;
        streams_closed = f o_streams_closed;
        data_received = f o_data_received;
        acks_received = f o_acks_received;
        out_of_order = f o_out_of_order;
        datagrams_in = f o_datagrams_in;
        loss_timer_fires = f o_loss_timer_fires;
        established = f o_established <> 0L;
        ack_frames_seen = f o_ack_frames_seen;
        rto_events = f o_rto_events;
      }
