(** The Datagram plugin (Section 4.2): a new DATAGRAM frame carrying
    unreliable messages, plus two {e external} protocol operations
    (Section 2.4) extending the API PQUIC offers to the application — a
    message socket. Frames keep data boundaries but are neither ordered
    nor retransmitted; received messages are pushed asynchronously through
    the connection's [on_message] channel. The QUIC VPN moves raw IP
    packets exactly this way. *)

val name : string
val plugin : Pluginop.Plugin.t

val op_send_message : Pluginop.Protoop.id
val op_max_message_size : Pluginop.Protoop.id

val send :
  Pquic.Connection.t -> string -> (unit, [ `Would_block | `No_plugin ]) result
(** Queue a message (max ~1400 bytes). [`Would_block] when the plugin's
    ring is full — a saturated tun queue drops packets the same way. *)

val max_size : Pquic.Connection.t -> int option
(** What fits in one DATAGRAM frame on this connection; [None] without the
    plugin. *)
