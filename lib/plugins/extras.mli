(** The small extension plugins the paper's Section 4 opens with — "with
    less than 100 lines of C code a PQUIC plugin can add the equivalent of
    Tail Loss Probe in TCP, or support for Explicit Congestion
    Notification" — plus the new-congestion-controller plugin Section 6
    sketches. All pluglets are proven terminating and well under 100
    lines. *)

(** Tail Loss Probe: replaces the get_retransmission_delay operation so
    that when only a packet or two remain in flight the timer shrinks to
    max(2*srtt, 10 ms) — a lost tail is probed long before the full PTO. *)
module Tlp : sig
  val name : string
  val plugin : Pluginop.Plugin.t
end

(** Explicit Congestion Notification: the receiver counts CE-marked
    packets (see {!Netsim.Link} marking) and reports the counter in a new
    ECN_ACK frame; the sender halves the path's congestion window at most
    once per RTT when the counter grows — backing off without waiting for
    a loss. *)
module Ecn : sig
  val name : string
  val frame_type : int
  val plugin : Pluginop.Plugin.t
end

(** A pluggable congestion controller: pure AIMD replacing the three
    cc_on_* protocol operations through the get/set API. The engine keeps
    bytes-in-flight accounting native, so the plugin owns only the window
    policy. *)
module Aimd : sig
  val name : string
  val plugin : Pluginop.Plugin.t
end
