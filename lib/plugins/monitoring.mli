(** The monitoring plugin (Section 4.1): passive pluglets hooked to the pre
    and post anchors of protocol operations record performance indicators
    (PI) in plugin memory by reading connection state variables through the
    get API; on connection close the PI block is exported to the local
    daemon — the application's message channel. 14 pluglets, all proven
    terminating. *)

val name : string
val plugin : Pluginop.Plugin.t

(** A decoded PI export. *)
type report = {
  pkts_received : int64;
  pkts_sent : int64;
  bytes_received : int64;
  bytes_sent : int64;
  pkts_lost : int64;
  rtt_samples : int64;
  rtt_avg_ns : int64;
  rtt_last_ns : int64;
  pkts_retransmitted : int64;
  handshake_time_ns : int64;
  streams_opened : int64;
  streams_closed : int64;
  data_received : int64;
  acks_received : int64;
  out_of_order : int64;
  datagrams_in : int64;
  loss_timer_fires : int64;
  established : bool;
  ack_frames_seen : int64;
  rto_events : int64;
}

val pi_size : int

val decode_report : string -> report option
(** Collector-side decoding of a message pushed by the plugin; [None] when
    the message is not a PI block. *)
