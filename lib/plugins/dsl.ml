(* Shorthand for writing pluglets: thin wrappers over the plc AST that read
   like the C sources of the paper's plugins. All pluglets obtain their
   persistent state from get_opaque_data and address it with 64-bit loads
   and stores relative to the returned base. *)

open Plc.Ast

let i = i
let v = v
let ( +: ) = ( +: )
let ( -: ) = ( -: )
let ( *: ) = ( *: )
let ( /: ) = ( /: )
let ( %: ) = ( %: )
let ( =: ) = ( =: )
let ( <>: ) = ( <>: )
let ( <: ) = ( <: )
let ( <=: ) = ( <=: )
let ( >: ) = ( >: )
let ( >=: ) = ( >=: )
let ( &&: ) = ( &&: )
let ( ||: ) = ( ||: )

let call f args = Call (f, args)
let callv f args = Expr (Call (f, args))

(* state base pointer bound to a local *)
let with_state ~id ~size body =
  Let ("st", call "get_opaque_data" [ i id; i size ]) :: body

(* 64-bit field access relative to the state base *)
let fld off = Load (Ebpf.Insn.W64, v "st" +: i off)
let set_fld off e = Store (Ebpf.Insn.W64, v "st" +: i off, e)
let bump off = set_fld off (fld off +: i 1)
let add_fld off e = set_fld off (fld off +: e)

(* byte/halfword/word access at an arbitrary address *)
let ld8 a = Load (Ebpf.Insn.W8, a)
let ld16 a = Load (Ebpf.Insn.W16, a)
let ld32 a = Load (Ebpf.Insn.W32, a)
let ld64 a = Load (Ebpf.Insn.W64, a)
let st8 a e = Store (Ebpf.Insn.W8, a, e)
let st16 a e = Store (Ebpf.Insn.W16, a, e)
let st32 a e = Store (Ebpf.Insn.W32, a, e)
let st64 a e = Store (Ebpf.Insn.W64, a, e)

(* the PQUIC API of Table 1 *)
let get f idx = call "get" [ i f; idx ]
let set f idx value = callv "set" [ i f; idx; value ]
let pl_malloc size = call "pl_malloc" [ size ]
let pl_free a = callv "pl_free" [ a ]
let pl_memcpy dst src len = callv "pl_memcpy" [ dst; src; len ]
let pl_memset dst c len = callv "pl_memset" [ dst; c; len ]
let run_protoop op param a b c = call "run_protoop" [ i op; param; a; b; c ]
let reserve ftype size flags cookie =
  callv "reserve_frames" [ i ftype; size; i flags; cookie ]
let get_time () = call "get_time" []
let push_message addr len = callv "push_message" [ addr; len ]

let ret e = Return e
let ret0 = Return (i 0)

let func name params body : Plc.Ast.func = { name; params; body }

let pluglet ?param ~op ~anchor f : Pluginop.Plugin.pluglet =
  { Pluginop.Plugin.op; param; anchor; code = Pluginop.Plugin.Source f }

(* reserve_frames flag bits (Api): bit0 retransmittable, bit1 NOT
   ack-eliciting *)
let fl_retransmittable = 1
let fl_non_ack_eliciting = 2
