(* The Forward Erasure Correction plugin (Section 4.4), after QUIC-FEC.

   The sender captures every stream-carrying packet as a source symbol
   (pn || payload, zero-padded). When the window is full — or, in the
   end-of-stream (EOS) mode, when a stream tail is reached — it computes
   Repair Symbols and books FEC_RS frames. A Repair Symbol is either the
   XOR of the window (Google's code: recovers one loss, cheap) or a Random
   Linear Combination over GF(256) with coefficients derived from a seed
   both peers can regenerate (recovers up to R losses, more expensive).

   The RS frame header identifies the protected packets (the FEC ID role:
   a base packet number and a bitmask). The receiver keeps a ring of
   received packets; when repair symbols cover every missing packet it
   solves for them — a single XOR pass, or Gauss-Jordan elimination whose
   control flow runs in bytecode while byte-vector arithmetic uses the
   gf256_* helpers — and resurrects the packets via recover_packet,
   avoiding the retransmission round-trip.

   The flush logic is a *plugin-defined protocol operation* (op_fec_flush)
   invoked through run_protoop, demonstrating plugins extending the
   protocol-operation space itself. The elimination pluglet deliberately
   uses an unbounded while loop: like three multipath pluglets in the
   paper, its termination cannot be proven by the checker. *)

open Plc.Ast
open Dsl

type code = Xor | Rlc
type mode = Full | Eos

let frame_type = Quic.Frame.type_fec_rs

(* Plugin-defined protocol operation. *)
let op_fec_flush = 120

let default_k = 25
let default_r = 5
let sym_size = 1320
let rs_slot = sym_size + 32
let hdr = 19 (* base u32 | mask u64 | idx u8 | seed u32 | symlen u16 *)

let plugin_name ?(k = default_k) ?(r = default_r) ~code ~mode () =
  if k = default_k && r = default_r then
    Printf.sprintf "org.pquic.fec-%s-%s"
      (match code with Xor -> "xor" | Rlc -> "rlc")
      (match mode with Full -> "full" | Eos -> "eos")
  else
    Printf.sprintf "org.pquic.fec-%s-%s-k%d-r%d"
      (match code with Xor -> "xor" | Rlc -> "rlc")
      (match mode with Full -> "full" | Eos -> "eos")
      k r

let bit_set mask b = Bin (Plc.Ast.And, mask, Bin (Plc.Ast.Shl, i 1, b)) <>: i 0

(* ---------------- sender state (opaque 10, 512 bytes) ---------------- *)
(* 0 count | 8 base_pn | 16 mask | 24 maxlen | 32 slab | 40 rs_slab |
   48 rs_pending | 56 seed | 96+ per-slot pn *)
let s_state body = with_state ~id:10 ~size:512 body

let slot_pn s = v "st" +: i 96 +: (s *: i 8)

let reset_window =
  [ set_fld 0 (i 0); set_fld 16 (i 0); set_fld 24 (i 0) ]

(* Capture a sent packet into the window and trigger flushes. *)
let capture ~k_window ~code ~mode =
  ignore code;
  let flush_call : Plc.Ast.stmt = Expr (run_protoop op_fec_flush (Const (-1L)) (i 0) (i 0) (i 0)) in
  func "fec_capture" [ "pn"; "path"; "size" ]
    (s_state
       [
         If (get Pluginop.Api.f_state (i 0) <>: i 1, [ ret0 ], []);
         If
           ( get Pluginop.Api.f_current_packet_has_stream (i 0) =: i 1,
             [
               (* lazily allocate the symbol slabs *)
               If
                 ( fld 32 =: i 0,
                   [
                     set_fld 32 (pl_malloc (i (k_window * sym_size)));
                     set_fld 40 (pl_malloc (i (default_r * rs_slot)));
                   ],
                   [] );
               If (fld 32 =: i 0, [ ret0 ], []);
               If (fld 40 =: i 0, [ ret0 ], []);
               If (fld 0 =: i 0, [ set_fld 8 (v "pn"); set_fld 16 (i 0) ], []);
               Let ("rel", v "pn" -: fld 8);
               If
                 ( v "rel" >=: i 60,
                   (* window span exhausted before K stream packets *)
                   (match mode with
                    | Full -> [ flush_call ]
                    | Eos -> reset_window)
                   @ [
                       set_fld 8 (v "pn");
                       set_fld 16 (i 0);
                       Assign ("rel", i 0);
                     ],
                   [] );
               Let ("slot", fld 0);
               Let ("addr", fld 32 +: (v "slot" *: i sym_size));
               pl_memset (v "addr") (i 0) (i sym_size);
               Let ("n", call "packet_bytes" [ v "addr"; i sym_size ]);
               (* packets whose repair symbol could not ride in one frame
                  are left unprotected *)
               If
                 ( (v "n" >: i 0)
                   &&: (v "n" <=: get Pluginop.Api.f_mtu (i 0) -: i 49),
                   [
                     set_fld 16
                       (Bin
                          ( Plc.Ast.Or,
                            fld 16,
                            Bin (Plc.Ast.Shl, i 1, v "rel") ));
                     If (v "n" >: fld 24, [ set_fld 24 (v "n") ], []);
                     st64 (slot_pn (v "slot")) (v "pn");
                     set_fld 0 (fld 0 +: i 1);
                   ],
                   [] );
               If
                 ( fld 0 >=: i k_window,
                   (match mode with
                    | Full -> [ flush_call ]
                    | Eos -> reset_window),
                   [] );
             ],
             [] );
         (* end-of-stream protection: flush the residual window at a tail *)
         If
           ( (get Pluginop.Api.f_fin_sent (i 0) =: i 1) &&: (fld 0 >: i 0),
             [ flush_call ],
             [] );
         ret0;
       ])

(* The plugin-defined flush operation: compute repair symbols and book
   FEC_RS frames. *)
let flush ~r_repair ~code =
  let rs_count = match code with Xor -> 1 | Rlc -> r_repair in
  func "fec_flush" [ "a"; "b"; "c" ]
    (s_state
       [
         Let ("count", fld 0);
         If (v "count" =: i 0, [ ret0 ], []);
         (* a previous window's repair symbols are still queued: skip *)
         If (fld 48 >: i 0, reset_window @ [ ret0 ], []);
         Let ("symlen", fld 24);
         Let ("seed", fld 56 +: i 1);
         set_fld 56 (v "seed");
         For
           ( "j",
             i 0,
             i rs_count,
             [
               Let ("rs", fld 40 +: (v "j" *: i rs_slot));
               (* precompute the full frame body in the slot *)
               st32 (v "rs") (fld 8);
               st64 (v "rs" +: i 4) (fld 16);
               st8 (v "rs" +: i 12) (v "j");
               st32 (v "rs" +: i 13) (v "seed");
               st16 (v "rs" +: i 17) (v "symlen");
               Let ("payload", v "rs" +: i hdr);
               pl_memset (v "payload") (i 0) (v "symlen");
               For
                 ( "s",
                   i 0,
                   v "count",
                   [
                     Let ("sym", fld 32 +: (v "s" *: i sym_size));
                     Let
                       ( "coef",
                         match code with
                         | Xor -> i 1
                         | Rlc ->
                           call "rng_coef"
                             [ v "seed"; ld64 (slot_pn (v "s")); v "j" ] );
                     callv "gf256_mulvec"
                       [ v "payload"; v "sym"; v "coef"; v "symlen" ];
                   ] );
               reserve frame_type (v "symlen" +: i 24) 0 (v "j");
               set_fld 48 (fld 48 +: i 1);
             ] );
         set_fld 0 (i 0);
         set_fld 16 (i 0);
         set_fld 24 (i 0);
         ret0;
       ])

(* write_frame[FEC_RS]: copy the precomputed frame body. *)
let write_rs =
  func "fec_write_rs" [ "buf"; "maxlen"; "cookie" ]
    (s_state
       [
         Let ("rs", fld 40 +: (v "cookie" *: i rs_slot));
         Let ("total", ld16 (v "rs" +: i 17) +: i hdr);
         If (fld 48 >: i 0, [ set_fld 48 (fld 48 -: i 1) ], []);
         If (v "total" >: v "maxlen", [ ret0 ], []);
         pl_memcpy (v "buf") (v "rs") (v "total");
         ret (v "total");
       ])

(* Repair symbols are never retransmitted: stale redundancy is useless. *)
let notify_rs =
  func "fec_notify_rs" [ "acked"; "cookie"; "buf" ] [ ret0 ]

(* Cap per-packet stream data so a repair symbol covering a full packet
   still fits into one FEC_RS frame (replace anchor on stream_bytes_max). *)
let cap_stream_bytes =
  func "fec_stream_bytes_max" [ "cap" ]
    [ ret (v "cap" -: i 80) ]

(* --------------- receiver state (opaque 11, 768 bytes) --------------- *)
(* 0..511 ring pn per slot | 512 ring slab | 520 cur_base | 528 cur_mask |
   536 cur_seed | 544 nrs | 552..615 rs idx meta | 616 rs_slab |
   624 scratch | 632..695 matrix | 696..759 missing pn list *)
let r_state body = with_state ~id:11 ~size:768 body

let ring_slots = 64

let ring_pn pn_expr = v "st" +: ((pn_expr %: i ring_slots) *: i 8)
let ring_sym pn_expr = fld 512 +: ((pn_expr %: i ring_slots) *: i sym_size)

let ensure_receiver_slabs =
  [
    If
      ( fld 512 =: i 0,
        [
          set_fld 512 (pl_malloc (i (ring_slots * sym_size)));
          set_fld 616 (pl_malloc (i (8 * sym_size)));
          set_fld 624 (pl_malloc (i sym_size));
        ],
        [] );
    If (fld 512 =: i 0, [ ret0 ], []);
    If (fld 616 =: i 0, [ ret0 ], []);
    If (fld 624 =: i 0, [ ret0 ], []);
  ]

(* Store every received packet in the ring (post received_packet). *)
let recv_store =
  func "fec_recv_store" [ "pn"; "path" ]
    (r_state
       (ensure_receiver_slabs
        @ [
            Let ("addr", ring_sym (v "pn"));
            pl_memset (v "addr") (i 0) (i sym_size);
            Let ("n", call "packet_bytes" [ v "addr"; i sym_size ]);
            If (v "n" >: i 0, [ st64 (ring_pn (v "pn")) (v "pn") ], []);
            ret0;
          ]))

let parse_rs =
  func "fec_parse_rs" [ "buf"; "buflen" ]
    [
      If (v "buflen" <: i hdr, [ ret0 ], []);
      Let ("symlen", ld16 (v "buf" +: i 17));
      If (v "symlen" +: i hdr >: v "buflen", [ ret0 ], []);
      ret (v "symlen" +: i hdr);
    ]

let mat_at r m = v "st" +: i 632 +: (r *: i 8) +: m
let miss_pn m = v "st" +: i 696 +: (m *: i 8)
let rs_idx r = v "st" +: i 552 +: (r *: i 8)
let rs_vec r = fld 616 +: (r *: i sym_size)

(* process_frame[FEC_RS]: store the repair symbol and attempt recovery. *)
let process_rs ~code =
  let solve : Plc.Ast.stmt list =
    match code with
    | Xor ->
      [
        (* XOR recovers exactly one missing packet: fold the repair symbol
           with every present protected packet *)
        If (v "missing" >: i 1, [ ret0 ], []);
        Let ("rec", fld 624);
        pl_memset (v "rec") (i 0) (i sym_size);
        callv "gf256_mulvec" [ v "rec"; rs_vec (i 0); i 1; v "symlen" ];
        For
          ( "b2",
            i 0,
            i 60,
            [
              If
                ( bit_set (fld 528) (v "b2"),
                  [
                    Let ("pnb2", fld 520 +: v "b2");
                    If
                      ( ld64 (ring_pn (v "pnb2")) =: v "pnb2",
                        [
                          callv "gf256_mulvec"
                            [ v "rec"; ring_sym (v "pnb2"); i 1; v "symlen" ];
                        ],
                        [] );
                  ],
                  [] );
            ] );
        (* feed the ring so later repair symbols see it as present *)
        Let ("mp", ld64 (miss_pn (i 0)));
        pl_memset (ring_sym (v "mp")) (i 0) (i sym_size);
        pl_memcpy (ring_sym (v "mp")) (v "rec") (v "symlen");
        st64 (ring_pn (v "mp")) (v "mp");
        callv "recover_packet" [ v "rec"; v "symlen" ];
        ret0;
      ]
    | Rlc ->
      [
        (* subtract the known packets from every equation, then build the
           coefficient matrix over the missing ones *)
        For
          ( "r",
            i 0,
            v "nrs",
            [
              Let ("row", rs_vec (v "r"));
              Let ("ridx", ld64 (rs_idx (v "r")));
              For
                ( "b3",
                  i 0,
                  i 60,
                  [
                    If
                      ( bit_set (fld 528) (v "b3"),
                        [
                          Let ("pnb3", fld 520 +: v "b3");
                          If
                            ( ld64 (ring_pn (v "pnb3")) =: v "pnb3",
                              [
                                Let
                                  ( "coef",
                                    call "rng_coef"
                                      [ fld 536; v "pnb3"; v "ridx" ] );
                                callv "gf256_mulvec"
                                  [ v "row"; ring_sym (v "pnb3"); v "coef";
                                    v "symlen" ];
                              ],
                              [] );
                        ],
                        [] );
                  ] );
              For
                ( "m",
                  i 0,
                  v "missing",
                  [
                    st8 (mat_at (v "r") (v "m"))
                      (call "rng_coef"
                         [ fld 536; ld64 (miss_pn (v "m")); v "ridx" ]);
                  ] );
            ] );
        (* Gauss-Jordan elimination; the while loop makes this pluglet's
           termination unprovable by the checker, as in the paper *)
        Let ("col", i 0);
        Let ("rowi", i 0);
        While
          ( (v "col" <: v "missing") &&: (v "rowi" <: v "nrs"),
            [
              Let ("piv", Const (-1L));
              For
                ( "r4",
                  v "rowi",
                  v "nrs",
                  [
                    If
                      ( (ld8 (mat_at (v "r4") (v "col")) <>: i 0)
                        &&: (v "piv" =: Const (-1L)),
                        [ Assign ("piv", v "r4") ],
                        [] );
                  ] );
              If (v "piv" =: Const (-1L), [ ret0 ], []);
              If
                ( v "piv" <>: v "rowi",
                  [
                    (* swap matrix rows and symbol vectors *)
                    For
                      ( "m5",
                        i 0,
                        v "missing",
                        [
                          Let ("t", ld8 (mat_at (v "rowi") (v "m5")));
                          st8 (mat_at (v "rowi") (v "m5"))
                            (ld8 (mat_at (v "piv") (v "m5")));
                          st8 (mat_at (v "piv") (v "m5")) (v "t");
                        ] );
                    pl_memcpy (fld 624) (rs_vec (v "rowi")) (v "symlen");
                    pl_memcpy (rs_vec (v "rowi")) (rs_vec (v "piv")) (v "symlen");
                    pl_memcpy (rs_vec (v "piv")) (fld 624) (v "symlen");
                  ],
                  [] );
              Let ("inv", call "gf256_inv" [ ld8 (mat_at (v "rowi") (v "col")) ]);
              callv "gf256_scalevec" [ rs_vec (v "rowi"); v "inv"; v "symlen" ];
              For
                ( "m6",
                  i 0,
                  v "missing",
                  [
                    st8 (mat_at (v "rowi") (v "m6"))
                      (call "gf256_mul"
                         [ ld8 (mat_at (v "rowi") (v "m6")); v "inv" ]);
                  ] );
              For
                ( "r7",
                  i 0,
                  v "nrs",
                  [
                    If
                      ( (v "r7" <>: v "rowi")
                        &&: (ld8 (mat_at (v "r7") (v "col")) <>: i 0),
                        [
                          Let ("cf", ld8 (mat_at (v "r7") (v "col")));
                          callv "gf256_mulvec"
                            [ rs_vec (v "r7"); rs_vec (v "rowi"); v "cf";
                              v "symlen" ];
                          For
                            ( "m8",
                              i 0,
                              v "missing",
                              [
                                st8 (mat_at (v "r7") (v "m8"))
                                  (Bin
                                     ( Plc.Ast.Xor,
                                       ld8 (mat_at (v "r7") (v "m8")),
                                       call "gf256_mul"
                                         [ v "cf";
                                           ld8 (mat_at (v "rowi") (v "m8"));
                                         ] ));
                              ] );
                        ],
                        [] );
                  ] );
              Assign ("col", v "col" +: i 1);
              Assign ("rowi", v "rowi" +: i 1);
            ] );
        (* rows 0..missing-1 now hold the solutions *)
        For
          ( "m9",
            i 0,
            v "missing",
            [
              Let ("mp9", ld64 (miss_pn (v "m9")));
              pl_memset (ring_sym (v "mp9")) (i 0) (i sym_size);
              pl_memcpy (ring_sym (v "mp9")) (rs_vec (v "m9")) (v "symlen");
              st64 (ring_pn (v "mp9")) (v "mp9");
              callv "recover_packet" [ rs_vec (v "m9"); v "symlen" ];
            ] );
        ret0;
      ]
  in
  func "fec_process_rs" [ "buf"; "consumed"; "pn" ]
    (r_state
       (ensure_receiver_slabs
        @ [
            Let ("base", ld32 (v "buf"));
            Let ("mask", ld64 (v "buf" +: i 4));
            Let ("idx", ld8 (v "buf" +: i 12));
            Let ("seed", ld32 (v "buf" +: i 13));
            Let ("symlen", ld16 (v "buf" +: i 17));
            If ((v "symlen" =: i 0) ||: (v "symlen" >: i sym_size), [ ret0 ], []);
            (* a new window resets the repair-symbol set *)
            If
              ( (v "base" <>: fld 520) ||: (v "mask" <>: fld 528),
                [
                  set_fld 520 (v "base");
                  set_fld 528 (v "mask");
                  set_fld 536 (v "seed");
                  set_fld 544 (i 0);
                ],
                [] );
            Let ("nrs", fld 544);
            If (v "nrs" >=: i 8, [ ret0 ], []);
            Let ("slotv", rs_vec (v "nrs"));
            pl_memset (v "slotv") (i 0) (i sym_size);
            pl_memcpy (v "slotv") (v "buf" +: i hdr) (v "symlen");
            st64 (rs_idx (v "nrs")) (v "idx");
            Assign ("nrs", v "nrs" +: i 1);
            set_fld 544 (v "nrs");
            (* enumerate the missing protected packets *)
            Let ("missing", i 0);
            For
              ( "b",
                i 0,
                i 60,
                [
                  If
                    ( bit_set (v "mask") (v "b"),
                      [
                        Let ("pnb", v "base" +: v "b");
                        If
                          ( ld64 (ring_pn (v "pnb")) <>: v "pnb",
                            [
                              If
                                ( v "missing" <: i 8,
                                  [ st64 (miss_pn (v "missing")) (v "pnb") ],
                                  [] );
                              Assign ("missing", v "missing" +: i 1);
                            ],
                            [] );
                      ],
                      [] );
                ] );
            If (v "missing" =: i 0, [ ret0 ], []);
            If ((v "missing" >: v "nrs") ||: (v "missing" >: i 8), [ ret0 ], []);
          ]
        @ solve))

(* ---------------------------------------------------------------- *)

let build ?(k = default_k) ?(r = default_r) ~code ~mode () : Pluginop.Plugin.t =
  (* state-layout limits: per-slot pn array (96 + 8k <= 512), repair slab
     (5 slots), receiver equations (8), window pn span (60 bits) *)
  if k < 2 || k > 50 then invalid_arg "Fec.build: k must be in [2, 50]";
  if r < 1 || r > 5 then invalid_arg "Fec.build: r must be in [1, 5]";
  {
    Pluginop.Plugin.name = plugin_name ~k ~r ~code ~mode ();
    pluglets =
      [
        pluglet ~op:Pluginop.Protoop.packet_was_sent ~anchor:Pluginop.Protoop.Post
          (capture ~k_window:k ~code ~mode);
        pluglet ~op:op_fec_flush ~anchor:Pluginop.Protoop.Replace
          (flush ~r_repair:r ~code);
        pluglet ~op:Pluginop.Protoop.write_frame ~param:frame_type
          ~anchor:Pluginop.Protoop.Replace write_rs;
        pluglet ~op:Pluginop.Protoop.notify_frame ~param:frame_type
          ~anchor:Pluginop.Protoop.Replace notify_rs;
        pluglet ~op:Pluginop.Protoop.stream_bytes_max ~anchor:Pluginop.Protoop.Replace
          cap_stream_bytes;
        pluglet ~op:Pluginop.Protoop.received_packet ~anchor:Pluginop.Protoop.Post
          recv_store;
        pluglet ~op:Pluginop.Protoop.parse_frame ~param:frame_type
          ~anchor:Pluginop.Protoop.Replace parse_rs;
        pluglet ~op:Pluginop.Protoop.process_frame ~param:frame_type
          ~anchor:Pluginop.Protoop.Replace (process_rs ~code);
      ];
  }

let xor_full = build ~code:Xor ~mode:Full ()
let xor_eos = build ~code:Xor ~mode:Eos ()
let rlc_full = build ~code:Rlc ~mode:Full ()
let rlc_eos = build ~code:Rlc ~mode:Eos ()
