(** The Forward Erasure Correction plugin (Section 4.4), after QUIC-FEC.

    The sender captures stream-carrying packets as source symbols
    (pn || payload); when the window fills — or, in EOS mode, when a stream
    tail is reached — a plugin-defined flush operation computes Repair
    Symbols and books FEC_RS frames. A repair symbol is either the XOR of
    the window (recovers one loss, cheap) or a Random Linear Combination
    over GF(256) (recovers up to [r] losses; Gauss-Jordan elimination runs
    in bytecode with gf256_* helpers for the byte-vector arithmetic — and
    its while loop makes that pluglet's termination unprovable, as in the
    paper). The receiver resurrects missing packets via recover_packet,
    skipping the retransmission round-trip. *)

type code = Xor | Rlc
type mode =
  | Full (** protect the whole stream: flush every [k] source symbols *)
  | Eos  (** protect stream tails only: flush when a FIN tail is reached *)

val op_fec_flush : Pluginop.Protoop.id
(** The plugin-defined protocol operation computing repair symbols. *)

val frame_type : int

val default_k : int
(** 25 source symbols per window. *)

val default_r : int
(** 5 repair symbols (RLC); XOR always sends 1. *)

val plugin_name : ?k:int -> ?r:int -> code:code -> mode:mode -> unit -> string

val build : ?k:int -> ?r:int -> code:code -> mode:mode -> unit -> Pluginop.Plugin.t
(** @raise Invalid_argument outside k in [2,50], r in [1,5]. *)

val xor_full : Pluginop.Plugin.t
val xor_eos : Pluginop.Plugin.t
val rlc_full : Pluginop.Plugin.t
val rlc_eos : Pluginop.Plugin.t
