(* Small statistics toolkit for the experiment harness: medians,
   percentiles, empirical CDFs printed as the series behind the paper's
   figures. *)

let sorted values = List.sort Float.compare values

let percentile p values =
  match sorted values with
  | [] -> nan
  | s ->
    let arr = Array.of_list s in
    let n = Array.length arr in
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
    if lo = hi then arr.(lo)
    else
      let w = rank -. float_of_int lo in
      (arr.(lo) *. (1. -. w)) +. (arr.(hi) *. w)

let median values = percentile 50. values

let mean values =
  match values with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0. values /. float_of_int (List.length values)

let stddev values =
  let m = mean values in
  match values with
  | [] | [ _ ] -> 0.
  | _ ->
    sqrt
      (List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. values
       /. float_of_int (List.length values - 1))

(* Empirical CDF as (value, fraction <= value) points. *)
let cdf values =
  let s = sorted values in
  let n = float_of_int (List.length s) in
  List.mapi (fun i x -> (x, float_of_int (i + 1) /. n)) s

(* Print a CDF as aligned columns, one series per call. *)
let print_cdf ~label values =
  Printf.printf "# CDF %s (%d samples)\n" label (List.length values);
  List.iter (fun (x, p) -> Printf.printf "%12.6f %8.4f\n" x p) (cdf values)

(* Summarize a CDF on one line with the quartiles that matter for reading
   the paper's figures. *)
let summarize ~label values =
  Printf.printf
    "%-24s n=%4d  p10=%8.4f  p25=%8.4f  median=%8.4f  p75=%8.4f  p90=%8.4f\n"
    label (List.length values) (percentile 10. values)
    (percentile 25. values) (median values) (percentile 75. values)
    (percentile 90. values)
