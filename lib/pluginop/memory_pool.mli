(** Plugin memory allocator (Section 2.3): a fixed-size area split into
    constant-size blocks with Θ(1) allocation and release while limiting
    fragmentation (after Kenwright's fixed-size pools). Offsets are
    relative to the area start; the PRE maps the area as a VM region so
    offsets translate directly to bytecode addresses. *)

type t

val create : ?block_size:int -> size:int -> unit -> t
(** [block_size] defaults to 64 bytes. Allocations larger than one block
    take contiguous blocks. *)

val area : t -> Bytes.t
val size : t -> int

val alloc : t -> int -> int option
(** Byte offset of a fresh allocation, or [None] when the pool is
    exhausted — which only hurts the plugin itself. *)

val free : t -> int -> bool
(** [false] when the offset is not the head of a live allocation (double
    free, interior pointer): the caller treats it as an API violation. *)

val reset : t -> unit
(** Wipe contents and allocation state — used when a cached plugin is
    reused on a new connection so nothing leaks between connections
    (Section 2.5). *)

val allocated_bytes : t -> int
