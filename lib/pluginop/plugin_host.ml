(* Plugin lifecycle on a host connection: building instances (PREs
   verified and compiled), attaching them to the protoop registry, and
   sanctioning misbehaving plugins. Transport-neutral — the
   over-the-connection plugin exchange and negotiation of Section 3.4 are
   wire-format business and stay with the transport (lib/core for PQUIC). *)

open Types

(* Remove a plugin's pluglets from the registry. The paper's sanction for
   a misbehaving pluglet is the removal of its plugin and the termination
   of the connection. The transport cleans up its own side (e.g. PQUIC
   drops the plugin's scheduler reservations) through [on_detach]. *)
let remove_plugin st c name =
  match Hashtbl.find_opt st.plugins name with
  | None -> ()
  | Some inst ->
    inst.bound <- None;
    Hashtbl.remove st.plugins name;
    st.plugin_order <- List.filter (fun n -> n <> name) st.plugin_order;
    st.host.on_detach c name;
    let belongs = function
      | Pluglet pre -> pre.Pre.plugin_name = name
      | Native _ -> false
    in
    Dispatch.iter_entries st
      (fun e ->
        (match e.replace with Some i when belongs i -> e.replace <- None | _ -> ());
        (match e.ext with Some i when belongs i -> e.ext <- None | _ -> ());
        e.pre <- List.filter (fun i -> not (belongs i)) e.pre;
        e.post <- List.filter (fun i -> not (belongs i)) e.post)

let kill_plugin st c name reason =
  Log.warn (fun m -> m "killing plugin %s: %s" name reason);
  st.host.on_sanction c;
  remove_plugin st c name;
  st.host.fail c (Printf.sprintf "plugin %s misbehaved: %s" name reason)

(* Fresh per-connection plugin state. [Dispatch] sanctions through
   [st.kill], bound here: removal lives above dispatch in the module
   graph. *)
let create_state ~host () =
  let st =
    {
      host;
      builtin_ops = Array.make Protoop.first_plugin_op None;
      ops = Hashtbl.create 16;
      op_stack = Array.make 256 0;
      op_sp = 0;
      plugins = Hashtbl.create 4;
      plugin_order = [];
      kill = (fun _ _ _ -> ());
    }
  in
  st.kill <- (fun c name reason -> kill_plugin st c name reason);
  st

(* Registry introspection without exposing the state record's fields. *)
let has_plugin st name = Hashtbl.mem st.plugins name
let find_plugin st name = Hashtbl.find_opt st.plugins name
let plugin_names st = st.plugin_order
let plugin_count st = Hashtbl.length st.plugins

(* ------------------------------------------------------------------ *)
(* Plugin injection                                                    *)
(* ------------------------------------------------------------------ *)

exception Injection_failed of string

let plugin_heap_size = 256 * 1024

(* Build a fresh instance for [plugin]: every pluglet is admitted here —
   compiled, verified, linked and jitted through the PREs'
   content-addressed program cache, so building the same bytecode again
   (another connection, a reload) reuses the compiled closures and only
   pays for fresh run environments. Attaching the instance to a
   connection (including re-attaching a cached instance, the Section 2.5
   reload fast path) only wipes the heap and rebinds helpers — the
   jitted programs are reused as-is. *)
let build_instance (plugin : Plugin.t) =
  let pool = Memory_pool.create ~size:plugin_heap_size () in
  let inst = { plugin; pool; pres = []; opaque = Hashtbl.create 8; bound = None } in
  let pres =
    List.map
      (fun pluglet ->
        Pre.create ~plugin_name:plugin.Plugin.name ~pluglet
          ~heap:(Memory_pool.area pool))
      plugin.Plugin.pluglets
  in
  inst.pres <- pres;
  inst

(* Attach a built instance to this connection. Rolls the whole plugin back
   if a replace anchor is already taken (Section 2.2). *)
let attach_instance st c inst =
  let name = inst.plugin.Plugin.name in
  if Hashtbl.mem st.plugins name then
    raise (Injection_failed (name ^ " already injected"));
  Memory_pool.reset inst.pool;
  Hashtbl.reset inst.opaque;
  inst.bound <- Some c;
  List.iter (fun pre -> Host_api.install_helpers st c inst pre) inst.pres;
  let attached = ref [] in
  let rollback () =
    List.iter
      (fun (e, pre, anchor) ->
        match (anchor : Protoop.anchor) with
        | Protoop.Replace -> e.replace <- None
        | Protoop.External -> e.ext <- None
        | Protoop.Pre -> e.pre <- List.filter (fun i -> i != Pluglet pre) e.pre
        | Protoop.Post -> e.post <- List.filter (fun i -> i != Pluglet pre) e.post)
      !attached
  in
  (try
     List.iter
       (fun pre ->
         let e = Dispatch.entry st pre.Pre.op pre.Pre.param in
         (match pre.Pre.anchor with
         | Protoop.Replace ->
           (match e.replace with
           | Some (Pluglet other) ->
             raise
               (Injection_failed
                  (Printf.sprintf
                     "replace anchor for %s already taken by plugin %s"
                     (Protoop.name pre.Pre.op) other.Pre.plugin_name))
           | _ -> e.replace <- Some (Pluglet pre))
         | Protoop.External -> e.ext <- Some (Pluglet pre)
         | Protoop.Pre -> e.pre <- Pluglet pre :: e.pre
         | Protoop.Post -> e.post <- Pluglet pre :: e.post);
         attached := (e, pre, pre.Pre.anchor) :: !attached)
       inst.pres
   with Injection_failed _ as e ->
     rollback ();
     inst.bound <- None;
     raise e);
  Hashtbl.replace st.plugins name inst;
  st.plugin_order <- st.plugin_order @ [ name ];
  ignore (Dispatch.run_op st c Protoop.plugin_injected [||]);
  inst

let inject_plugin st c plugin =
  try
    let inst = build_instance plugin in
    ignore (attach_instance st c inst);
    Ok ()
  with
  | Injection_failed msg -> Error msg
  | Pre.Rejected msg -> Error ("verifier rejected pluglet: " ^ msg)
  | Plc.Compile.Error msg -> Error ("pluglet compilation failed: " ^ msg)
