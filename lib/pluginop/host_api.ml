(* The PRE↔host boundary (Section 2.3), transport-neutral half: the Table 1
   helper implementations every host shares, installed on each pluglet's
   PRE when an instance is attached. Getters and setters abstract the
   connection internals from pluglets: bytecode never hard-codes structure
   offsets, and the host monitors (and refuses) access to specific fields.

   Field access funnels through the HOST record ([Types.host]); what a
   field *means* is the transport's business, but the id space, the
   writable-field policy and the sanction for violating it are fixed here
   so the same bytecode sees the same contract on every host. Helpers a
   transport owns outright (frame reservation, packet access, path
   creation) arrive through [install_extra_helpers]. *)

open Types

let to_i = Int64.to_int
let i64 = Int64.of_int
let helper_fail fmt = Fmt.kstr (fun s -> raise (Ebpf.Vm.Helper_failure s)) fmt

(* The generic setter: the writable-field policy check lives here, above
   the transport, so read-only enforcement is identical on every host. *)
let set_field st c field index value =
  if not (List.mem field Api.writable_fields) then
    raise
      (Ebpf.Vm.Helper_failure (Printf.sprintf "set: field %d is read-only" field));
  st.host.set_field c field index value

let install_helpers st c inst (pre : Pre.t) =
  let heap = Memory_pool.area inst.pool in
  let heap_off vm_addr =
    let off = Pre.heap_offset pre vm_addr in
    if off < 0 || off > Bytes.length heap then
      helper_fail "address 0x%Lx outside plugin memory" vm_addr;
    off
  in
  (* [arity] declares how many argument registers each helper reads, so
     the call opcode skips boxing the registers the helper ignores —
     [h_get] alone runs a dozen times per received packet. *)
  let reg ?arity id f = Pre.register_helper ?arity pre id f in
  reg ~arity:2 Api.h_get (fun _ a ->
      st.host.get_field c (to_i a.(0)) (to_i a.(1)));
  reg ~arity:3 Api.h_set (fun _ a ->
      set_field st c (to_i a.(0)) (to_i a.(1)) a.(2);
      0L);
  reg ~arity:1 Api.h_pl_malloc (fun _ a ->
      match Memory_pool.alloc inst.pool (to_i a.(0)) with
      | Some off -> Pre.heap_addr pre off
      | None -> 0L);
  reg ~arity:1 Api.h_pl_free (fun _ a ->
      if Memory_pool.free inst.pool (heap_off a.(0)) then 0L
      else helper_fail "pl_free: invalid address 0x%Lx" a.(0));
  reg ~arity:2 Api.h_get_opaque_data (fun _ a ->
      let id = to_i a.(0) and size = to_i a.(1) in
      match Hashtbl.find_opt inst.opaque id with
      | Some off -> Pre.heap_addr pre off
      | None -> (
        match Memory_pool.alloc inst.pool size with
        | Some off ->
          (* opaque areas start zeroed even when the pool recycles blocks *)
          Bytes.fill (Memory_pool.area inst.pool) off size '\000';
          Hashtbl.replace inst.opaque id off;
          Pre.heap_addr pre off
        | None -> 0L));
  reg ~arity:3 Api.h_pl_memcpy (fun vm a ->
      let len = to_i a.(2) in
      if len < 0 || len > 65536 then helper_fail "pl_memcpy: bad length %d" len;
      (* same monitor checks, no staging copy; Bytes.blit is overlap-safe,
         matching the read-everything-then-write semantics of the old
         snapshot path *)
      let src, soff = Ebpf.Vm.direct vm ~write:false a.(1) len in
      let dst, doff = Ebpf.Vm.direct vm ~write:true a.(0) len in
      Bytes.blit src soff dst doff len;
      0L);
  reg ~arity:3 Api.h_pl_memset (fun vm a ->
      let len = to_i a.(2) in
      if len < 0 || len > 65536 then helper_fail "pl_memset: bad length %d" len;
      Ebpf.Vm.fill_bytes vm a.(0) len (Char.chr (to_i a.(1) land 0xff));
      0L);
  reg ~arity:5 Api.h_run_protoop (fun _ a ->
      let op = to_i a.(0) in
      let param = if a.(1) < 0L then None else Some (to_i a.(1)) in
      Dispatch.run_op st c op ?param [| I a.(2); I a.(3); I a.(4) |]);
  reg ~arity:0 Api.h_get_time (fun _ _ -> st.host.now c);
  reg ~arity:2 Api.h_push_message (fun vm a ->
      let len = to_i a.(1) in
      if len < 0 || len > 65536 then helper_fail "push_message: bad length %d" len;
      let b, off = Ebpf.Vm.direct vm ~write:false a.(0) len in
      st.host.push_message c (Bytes.sub_string b off len);
      0L);
  reg ~arity:2 Api.h_pl_log (fun _ a ->
      Log.debug (fun m ->
          m "[plugin %s] %Ld %Ld" inst.plugin.Plugin.name a.(0) a.(1));
      0L);
  reg ~arity:1 Api.h_sent_time (fun _ a -> st.host.sent_time c a.(0));
  reg ~arity:3 Api.h_cmp_bytes (fun vm a ->
      let len = to_i a.(2) in
      if len < 0 || len > 65536 then helper_fail "cmp_bytes: bad length %d" len;
      let x, xo = Ebpf.Vm.direct vm ~write:false a.(0) len in
      let y, yo = Ebpf.Vm.direct vm ~write:false a.(1) len in
      let k = ref 0 in
      while !k < len && Bytes.get x (xo + !k) = Bytes.get y (yo + !k) do
        incr k
      done;
      if !k = len then 0L else 1L);
  reg ~arity:4 Api.h_gf256_mulvec (fun vm a ->
      (* dst ^= coef * src over len bytes *)
      let len = to_i a.(3) in
      if len < 0 || len > 65536 then helper_fail "gf256_mulvec: bad length %d" len;
      let coef = to_i a.(2) land 0xff in
      let dst, doff = Ebpf.Vm.direct vm ~write:true a.(0) len in
      let src, soff = Ebpf.Vm.direct vm ~write:false a.(1) len in
      if dst == src && soff < doff + len && doff < soff + len && soff <> doff
      then begin
        (* partially overlapping vectors in one region: snapshot the source
           to keep the read-all-then-write semantics of the copying path *)
        let s = Bytes.sub src soff len in
        Gf.mulvec_off ~coef ~src:s ~soff:0 ~dst ~doff ~len
      end
      else Gf.mulvec_off ~coef ~src ~soff ~dst ~doff ~len;
      0L);
  reg ~arity:3 Api.h_gf256_scalevec (fun vm a ->
      let len = to_i a.(2) in
      if len < 0 || len > 65536 then helper_fail "gf256_scalevec: bad length %d" len;
      let coef = to_i a.(1) land 0xff in
      let dst, off = Ebpf.Vm.direct vm ~write:true a.(0) len in
      for k = off to off + len - 1 do
        Bytes.set_uint8 dst k (Gf.mul coef (Bytes.get_uint8 dst k))
      done;
      0L);
  reg ~arity:2 Api.h_gf256_mul (fun _ a ->
      i64 (Gf.mul (to_i a.(0) land 0xff) (to_i a.(1) land 0xff)));
  reg ~arity:1 Api.h_gf256_inv (fun _ a -> i64 (Gf.inv (to_i a.(0) land 0xff)));
  reg ~arity:3 Api.h_rng_coef (fun _ a ->
      i64 (Gf.rlc_coef ~seed:a.(0) ~sid:a.(1) ~row:(to_i a.(2))));
  st.host.install_extra_helpers c inst pre
