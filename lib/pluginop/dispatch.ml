(* Protocol-operation dispatch (Section 2.2), generic over the host.

   Every step of a pluginized connection workflow funnels through
   [run_op]: pre anchors, then the replace anchor (pluglet override or
   built-in behaviour), then post anchors. [run_op] sits on every packet's
   hot path, so the built-in unparameterized operations resolve through a
   dense array indexed by protoop id — no hashing, no allocation on the
   lookup. Parameterized operations (frame types) and plugin-registered
   ids go through the hashtable.

   Each function takes the host-side plugin state [st] and the opaque
   connection handle [c]; the two travel together (the transport keeps
   [st] inside its connection record). *)

open Types

let is_builtin st op param =
  param = None && op >= 0 && op < Array.length st.builtin_ops

(* The (op, param) pair packed into one immediate int — shared by the
   running-operation stack and the hashed registry (see {!Types.state}). *)
let stack_key op param =
  (op lsl 21) lor (match param with None -> 0 | Some p -> p + 1)

let find_entry st op param =
  if is_builtin st op param then st.builtin_ops.(op)
  else Hashtbl.find_opt st.ops (stack_key op param)

let entry st op param =
  match find_entry st op param with
  | Some e -> e
  | None ->
    let e = { replace = None; pre = []; post = []; ext = None } in
    if is_builtin st op param then st.builtin_ops.(op) <- Some e
    else Hashtbl.replace st.ops (stack_key op param) e;
    e

let has_entry st op param = find_entry st op param <> None

(* Whether (op, param) sits on the running-operation stack. Hosts use this
   to avoid re-dispatching an operation from within itself — e.g. a
   FEC-recovered packet replaying a frame of the very type whose handler
   triggered the recovery — which [run_op] would sanction as a loop.

   Stack frames are int-encoded ([op lsl 21 lor (param + 1)], see
   {!Types.state}) so pushing and scanning allocate nothing. *)
let on_stack st key =
  let rec scan i = i >= 0 && (st.op_stack.(i) = key || scan (i - 1)) in
  scan (st.op_sp - 1)

let is_running st op param = on_stack st (stack_key op param)

let iter_entries st f =
  Array.iter (function Some e -> f e | None -> ()) st.builtin_ops;
  Hashtbl.iter (fun _ e -> f e) st.ops

let register_native st op name fn =
  (entry st op None).replace <- Some (Native (name, fn))

(* Introspection used by hosts and tests: the registry shape without
   exposing the record fields. *)
let builtin_capacity st = Array.length st.builtin_ops
let hashed_entries st = Hashtbl.length st.ops

(* Region names for pluglet argument buffers, precomputed: this runs on
   every protoop invocation, and protoops take at most five arguments. *)
let arg_region_names = [| "arg0"; "arg1"; "arg2"; "arg3"; "arg4" |]

(* Reusable marshalling scratch for the VM argument vector. Protoops take
   at most five arguments; both run tiers copy the vector into the VM's
   registers in their prologue, before the first instruction (and so
   before any helper can re-enter dispatch), which makes one shared
   scratch safe even when pluglets nest through run_protoop. Unused slots
   are zeroed so the registers end up exactly as a right-sized vector
   would leave them. *)
let vm_args_scratch = Array.make 5 0L

(* Execute one pluglet implementation with the given arguments. Buffers are
   mapped into the PRE for the duration of the call; pre/post pluglets get
   read-only views (the paper grants passive pluglets no write access).
   [View] arguments map a read-only sub-view of a host buffer — the
   zero-copy path for wire-borrowed frame bodies. The whole marshalling
   path is imperative and allocation-free apart from the region records
   themselves: this runs several times per received packet. *)
let exec_pluglet pre ~read_only (args : arg array) =
  let vm = pre.Pre.vm in
  let mark = Ebpf.Vm.rid_mark vm in
  let n = Array.length args in
  let vargs = if n <= 5 then vm_args_scratch else Array.make n 0L in
  let nregions = ref 0 in
  match
    for i = 0 to n - 1 do
      (match args.(i) with
      | I v -> vargs.(i) <- v
      | Buf (b, perm) ->
        let perm =
          if read_only then Ebpf.Vm.Ro
          else match perm with `Ro -> Ebpf.Vm.Ro | `Rw -> Ebpf.Vm.Rw
        in
        let name =
          if !nregions < Array.length arg_region_names then
            arg_region_names.(!nregions)
          else "arg" ^ string_of_int !nregions
        in
        let r =
          Ebpf.Vm.map_sub vm ~name ~perm b ~off:0 ~len:(Bytes.length b)
        in
        vargs.(i) <- r.Ebpf.Vm.base;
        incr nregions
      | View (b, off, len) ->
        let name =
          if !nregions < Array.length arg_region_names then
            arg_region_names.(!nregions)
          else "arg" ^ string_of_int !nregions
        in
        let r = Ebpf.Vm.map_sub vm ~name ~perm:Ebpf.Vm.Ro b ~off ~len in
        vargs.(i) <- r.Ebpf.Vm.base;
        incr nregions)
    done;
    for i = n to Array.length vargs - 1 do
      vargs.(i) <- 0L
    done;
    Pre.run pre ~args:vargs
  with
  | v ->
    Ebpf.Vm.unmap_above vm mark;
    Ok v
  | exception Ebpf.Vm.Memory_violation msg ->
    Ebpf.Vm.unmap_above vm mark;
    Error ("memory violation: " ^ msg)
  | exception Ebpf.Vm.Fuel_exhausted ->
    Ebpf.Vm.unmap_above vm mark;
    Error "instruction budget exhausted"
  | exception Ebpf.Vm.Helper_failure msg ->
    Ebpf.Vm.unmap_above vm mark;
    Error ("API violation: " ^ msg)
  | exception e ->
    Ebpf.Vm.unmap_above vm mark;
    raise e

let run_impl st c impl ~read_only args =
  match impl with
  | Native (_, fn) -> fn c args
  | Pluglet pre -> (
    match exec_pluglet pre ~read_only args with
    | Ok v -> v
    | Error reason ->
      st.kill c pre.Pre.plugin_name reason;
      0L)

(* Run the replace anchor. A native implementation (or none) is the plain
   path. A trapping pluglet must not leave the operation half-done: its
   writable argument buffers are rolled back to their pre-call contents
   and the built-in behaviour serves the operation — the connection state
   stays coherent — before the existing sanction (plugin removal,
   connection failure) fires. *)
let run_replace st c e ~default args =
  match e.replace with
  | None -> default c args
  | Some (Native (_, fn)) -> fn c args
  | Some (Pluglet pre) -> (
    let saved =
      Array.map
        (function Buf (b, `Rw) -> Some (Bytes.copy b) | _ -> None)
        args
    in
    match exec_pluglet pre ~read_only:false args with
    | Ok v -> v
    | Error reason ->
      Array.iteri
        (fun i s ->
          match (s, args.(i)) with
          | Some copy, Buf (b, `Rw) ->
            Bytes.blit copy 0 b 0 (Bytes.length b)
          | _ -> ())
        saved;
      st.host.on_fallback c;
      Log.warn (fun m ->
          m "pluglet %s trapped (%s): state rolled back, builtin serves the op"
            pre.Pre.plugin_name reason);
      let v = default c args in
      st.kill c pre.Pre.plugin_name reason;
      v)

(* Run a protocol operation: pre anchors, then the replace anchor (pluglet
   override or built-in behaviour), then post anchors. The call stack of
   running operations is tracked; re-entering a running operation would
   create a loop in the call graph (Fig. 3) and terminates the connection. *)
(* Pre/post anchor lists are stored most-recently-attached first; the
   anchors run in attachment order, i.e. reversed — walked recursively so
   the common empty/singleton cases build no intermediate list. *)
let rec run_anchors st c impls args =
  match impls with
  | [] -> ()
  | [ i ] -> ignore (run_impl st c i ~read_only:true args)
  | i :: rest ->
    run_anchors st c rest args;
    ignore (run_impl st c i ~read_only:true args)

and run_op st c op ?param ?(default = fun _ _ -> 0L) (args : arg array) =
  let key = stack_key op param in
  if on_stack st key then begin
    st.host.fail c
      (Printf.sprintf "protocol operation loop detected on %s" (Protoop.name op));
    0L
  end
  else if st.op_sp >= Array.length st.op_stack then begin
    st.host.fail c "protocol operation stack overflow";
    0L
  end
  else begin
    st.op_stack.(st.op_sp) <- key;
    st.op_sp <- st.op_sp + 1;
    let e =
      match find_entry st op param with
      | Some e -> e
      | None -> (
        (* parameterized op with no specific entry: fall back to the
           unparameterized default entry *)
        match param with
        | Some _ -> (
          match find_entry st op None with
          | Some e -> e
          | None -> entry st op None)
        | None -> entry st op None)
    in
    run_anchors st c e.pre args;
    let result = run_replace st c e ~default args in
    run_anchors st c e.post args;
    st.op_sp <- st.op_sp - 1;
    result
  end

(* Call a plugin-defined external operation (Section 2.4): only the
   application may invoke these. *)
let call_external st c op (args : arg array) =
  match find_entry st op None with
  | Some { ext = Some impl; _ } -> Some (run_impl st c impl ~read_only:false args)
  | _ -> None
