(* Protocol-operation dispatch (Section 2.2), generic over the host.

   Every step of a pluginized connection workflow funnels through
   [run_op]: pre anchors, then the replace anchor (pluglet override or
   built-in behaviour), then post anchors. [run_op] sits on every packet's
   hot path, so the built-in unparameterized operations resolve through a
   dense array indexed by protoop id — no hashing, no allocation on the
   lookup. Parameterized operations (frame types) and plugin-registered
   ids go through the hashtable.

   Each function takes the host-side plugin state [st] and the opaque
   connection handle [c]; the two travel together (the transport keeps
   [st] inside its connection record). *)

open Types

let is_builtin st op param =
  param = None && op >= 0 && op < Array.length st.builtin_ops

let find_entry st op param =
  if is_builtin st op param then st.builtin_ops.(op)
  else Hashtbl.find_opt st.ops (op, param)

let entry st op param =
  match find_entry st op param with
  | Some e -> e
  | None ->
    let e = { replace = None; pre = []; post = []; ext = None } in
    if is_builtin st op param then st.builtin_ops.(op) <- Some e
    else Hashtbl.replace st.ops (op, param) e;
    e

let has_entry st op param = find_entry st op param <> None

(* Whether (op, param) sits on the running-operation stack. Hosts use this
   to avoid re-dispatching an operation from within itself — e.g. a
   FEC-recovered packet replaying a frame of the very type whose handler
   triggered the recovery — which [run_op] would sanction as a loop. *)
let is_running st op param = List.mem (op, param) st.op_stack

let iter_entries st f =
  Array.iter (function Some e -> f e | None -> ()) st.builtin_ops;
  Hashtbl.iter (fun _ e -> f e) st.ops

let register_native st op name fn =
  (entry st op None).replace <- Some (Native (name, fn))

(* Introspection used by hosts and tests: the registry shape without
   exposing the record fields. *)
let builtin_capacity st = Array.length st.builtin_ops
let hashed_entries st = Hashtbl.length st.ops

(* Region names for pluglet argument buffers, precomputed: this runs on
   every protoop invocation, and protoops take at most five arguments. *)
let arg_region_names = [| "arg0"; "arg1"; "arg2"; "arg3"; "arg4" |]

(* Execute one pluglet implementation with the given arguments. Buffers are
   mapped into the PRE for the duration of the call; pre/post pluglets get
   read-only views (the paper grants passive pluglets no write access). *)
let exec_pluglet pre ~read_only (args : arg array) =
  let regions, arg_specs, _ =
    Array.fold_left
      (fun (regions, specs, nregions) a ->
        match a with
        | I v -> (regions, `I v :: specs, nregions)
        | Buf (b, perm) ->
          let perm = if read_only then `Ro else perm in
          let name =
            if nregions < Array.length arg_region_names then
              arg_region_names.(nregions)
            else "arg" ^ string_of_int nregions
          in
          ( (name, b, (match perm with `Ro -> Ebpf.Vm.Ro | `Rw -> Ebpf.Vm.Rw))
            :: regions,
            `R nregions :: specs,
            nregions + 1 ))
      ([], [], 0) args
  in
  let regions = List.rev regions and arg_specs = List.rev arg_specs in
  match
    Pre.with_regions pre regions (fun bases ->
        let bases = Array.of_list bases in
        let vm_args =
          List.map
            (function `I v -> v | `R idx -> bases.(idx))
            arg_specs
        in
        Pre.run pre ~args:(Array.of_list vm_args))
  with
  | v -> Ok v
  | exception Ebpf.Vm.Memory_violation msg -> Error ("memory violation: " ^ msg)
  | exception Ebpf.Vm.Fuel_exhausted -> Error "instruction budget exhausted"
  | exception Ebpf.Vm.Helper_failure msg -> Error ("API violation: " ^ msg)

let run_impl st c impl ~read_only args =
  match impl with
  | Native (_, fn) -> fn c args
  | Pluglet pre -> (
    match exec_pluglet pre ~read_only args with
    | Ok v -> v
    | Error reason ->
      st.kill c pre.Pre.plugin_name reason;
      0L)

(* Run the replace anchor. A native implementation (or none) is the plain
   path. A trapping pluglet must not leave the operation half-done: its
   writable argument buffers are rolled back to their pre-call contents
   and the built-in behaviour serves the operation — the connection state
   stays coherent — before the existing sanction (plugin removal,
   connection failure) fires. *)
let run_replace st c e ~default args =
  match e.replace with
  | None -> default c args
  | Some (Native (_, fn)) -> fn c args
  | Some (Pluglet pre) -> (
    let saved =
      Array.map
        (function Buf (b, `Rw) -> Some (Bytes.copy b) | _ -> None)
        args
    in
    match exec_pluglet pre ~read_only:false args with
    | Ok v -> v
    | Error reason ->
      Array.iteri
        (fun i s ->
          match (s, args.(i)) with
          | Some copy, Buf (b, `Rw) ->
            Bytes.blit copy 0 b 0 (Bytes.length b)
          | _ -> ())
        saved;
      st.host.on_fallback c;
      Log.warn (fun m ->
          m "pluglet %s trapped (%s): state rolled back, builtin serves the op"
            pre.Pre.plugin_name reason);
      let v = default c args in
      st.kill c pre.Pre.plugin_name reason;
      v)

(* Run a protocol operation: pre anchors, then the replace anchor (pluglet
   override or built-in behaviour), then post anchors. The call stack of
   running operations is tracked; re-entering a running operation would
   create a loop in the call graph (Fig. 3) and terminates the connection. *)
let run_op st c op ?param ?(default = fun _ _ -> 0L) (args : arg array) =
  let key = (op, param) in
  if List.mem key st.op_stack then begin
    st.host.fail c
      (Printf.sprintf "protocol operation loop detected on %s" (Protoop.name op));
    0L
  end
  else begin
    st.op_stack <- key :: st.op_stack;
    let e =
      match find_entry st op param with
      | Some e -> e
      | None -> (
        (* parameterized op with no specific entry: fall back to the
           unparameterized default entry *)
        match param with
        | Some _ -> (
          match find_entry st op None with
          | Some e -> e
          | None -> entry st op None)
        | None -> entry st op None)
    in
    List.iter
      (fun i -> ignore (run_impl st c i ~read_only:true args))
      (List.rev e.pre);
    let result = run_replace st c e ~default args in
    List.iter
      (fun i -> ignore (run_impl st c i ~read_only:true args))
      (List.rev e.post);
    st.op_stack <- List.tl st.op_stack;
    result
  end

(* Call a plugin-defined external operation (Section 2.4): only the
   application may invoke these. *)
let call_external st c op (args : arg array) =
  match find_entry st op None with
  | Some { ext = Some impl; _ } -> Some (run_impl st c impl ~read_only:false args)
  | _ -> None
