(* Protocol operations: the named subroutines into which a pluginized
   transport's connection workflow is decomposed (Section 2.2). The id
   space is owned by this transport-neutral library so that the same
   bytecode addresses the same operation on every host (the Core QUIC
   direction): PQUIC implements the full QUIC workflow, tcpsim anchors the
   segment send/receive/timeout subset, and ids without a host
   implementation are simply empty anchor points there. Each operation has a
   human-readable identifier and three anchor points — replace (at most one
   pluglet, overrides the default), pre and post (any number of passive,
   read-only pluglets). Four operations take a parameter (the frame type),
   giving plugins a generic entry point for new frame types without
   changing the caller. Plugins may also register operations absent from
   this table (new ids), including *external* operations callable only by
   the application (Section 2.4). *)

type anchor = Replace | Pre | Post | External

(* Operation identity: numeric id (usable from bytecode) + name. *)
type id = int

type param = int option (* frame type for the parameterized operations *)

(* The four parameterized operations: frame handling. *)
let parse_frame = 1
let process_frame = 2
let write_frame = 3
let notify_frame = 4 (* a frame of this type was acked (arg=1) or lost (arg=0) *)

(* Internal processing. *)
let update_rtt = 10
let process_ack_range = 11
let detect_lost_packets = 12
let set_loss_timer = 13
let on_loss_timer = 14
let retransmission_timeout = 15
let send_probe = 16
let cc_on_packet_sent = 17
let cc_on_packet_acked = 18
let cc_on_packet_lost = 19
let cc_on_rto = 20
let schedule_next_stream = 21
let flow_control_check = 22
let update_max_data = 23
let update_max_stream_data = 24
let stream_opened = 25
let stream_closed = 26
let data_received = 27
let data_consumed = 28
let process_transport_params = 29
let write_transport_params = 30
let update_ack_needed = 31
let compute_ack_delay = 32
let get_retransmission_delay = 33
let stream_bytes_max = 34
let update_pacing = 35
let congestion_window_check = 36

(* Packet management. *)
let select_path = 40
let prepare_packet = 41
let predict_packet_header_size = 42
let schedule_frames_on_sending = 43
let finalize_and_protect_packet = 44
let packet_was_sent = 45
let incoming_datagram = 46
let decode_packet_header = 47
let unprotect_packet = 48
let received_packet = 49
let set_spin_bit = 50
let get_spin_bit = 51
let get_destination_cid = 52
let next_packet_number = 53
let packet_acknowledged = 54
let packet_lost = 55
let path_challenge_response = 56
let create_new_path = 57
let validate_path = 58
let packet_number_space = 59

(* Connection workflow events (empty anchor points: no default behaviour). *)
let connection_init = 70
let connection_established = 71
let connection_closing = 72
let connection_closed = 73
let idle_timeout_event = 74
let handshake_complete = 75
let after_decode_frames = 76
let before_sending_packet = 77
let after_packet_lost = 78
let plugin_injected = 79
let plugin_removed = 80
let plugin_negotiated = 81
let cache_lookup = 82
let wake_event = 83
let new_connection_id = 84
let half_open_event = 85
let stateless_reset = 86
let update_idle_timeout = 87
let stream_data_blocked = 88
let set_next_wake_time = 89
let header_prepared = 90

(* Ids >= [first_plugin_op] are free for plugin-defined operations. *)
let first_plugin_op = 100

let names : (id * string) list =
  [
    (parse_frame, "parse_frame");
    (process_frame, "process_frame");
    (write_frame, "write_frame");
    (notify_frame, "notify_frame");
    (update_rtt, "update_rtt");
    (process_ack_range, "process_ack_range");
    (detect_lost_packets, "detect_lost_packets");
    (set_loss_timer, "set_loss_timer");
    (on_loss_timer, "on_loss_timer");
    (retransmission_timeout, "retransmission_timeout");
    (send_probe, "send_probe");
    (cc_on_packet_sent, "cc_on_packet_sent");
    (cc_on_packet_acked, "cc_on_packet_acked");
    (cc_on_packet_lost, "cc_on_packet_lost");
    (cc_on_rto, "cc_on_rto");
    (schedule_next_stream, "schedule_next_stream");
    (flow_control_check, "flow_control_check");
    (update_max_data, "update_max_data");
    (update_max_stream_data, "update_max_stream_data");
    (stream_opened, "stream_opened");
    (stream_closed, "stream_closed");
    (data_received, "data_received");
    (data_consumed, "data_consumed");
    (process_transport_params, "process_transport_params");
    (write_transport_params, "write_transport_params");
    (update_ack_needed, "update_ack_needed");
    (compute_ack_delay, "compute_ack_delay");
    (get_retransmission_delay, "get_retransmission_delay");
    (stream_bytes_max, "stream_bytes_max");
    (update_pacing, "update_pacing");
    (congestion_window_check, "congestion_window_check");
    (select_path, "select_path");
    (prepare_packet, "prepare_packet");
    (predict_packet_header_size, "predict_packet_header_size");
    (schedule_frames_on_sending, "schedule_frames_on_sending");
    (finalize_and_protect_packet, "finalize_and_protect_packet");
    (packet_was_sent, "packet_was_sent");
    (incoming_datagram, "incoming_datagram");
    (decode_packet_header, "decode_packet_header");
    (unprotect_packet, "unprotect_packet");
    (received_packet, "received_packet");
    (set_spin_bit, "set_spin_bit");
    (get_spin_bit, "get_spin_bit");
    (get_destination_cid, "get_destination_cid");
    (next_packet_number, "next_packet_number");
    (packet_acknowledged, "packet_acknowledged");
    (packet_lost, "packet_lost");
    (path_challenge_response, "path_challenge_response");
    (create_new_path, "create_new_path");
    (validate_path, "validate_path");
    (packet_number_space, "packet_number_space");
    (connection_init, "connection_init");
    (connection_established, "connection_established");
    (connection_closing, "connection_closing");
    (connection_closed, "connection_closed");
    (idle_timeout_event, "idle_timeout");
    (handshake_complete, "handshake_complete");
    (after_decode_frames, "after_decode_frames");
    (before_sending_packet, "before_sending_packet");
    (after_packet_lost, "after_packet_lost");
    (plugin_injected, "plugin_injected");
    (plugin_removed, "plugin_removed");
    (plugin_negotiated, "plugin_negotiated");
    (cache_lookup, "cache_lookup");
    (wake_event, "wake_event");
    (new_connection_id, "new_connection_id");
    (half_open_event, "half_open_event");
    (stateless_reset, "stateless_reset");
    (update_idle_timeout, "update_idle_timeout");
    (stream_data_blocked, "stream_data_blocked");
    (set_next_wake_time, "set_next_wake_time");
    (header_prepared, "header_prepared");
  ]

let name id =
  match List.assoc_opt id names with
  | Some n -> n
  | None -> Printf.sprintf "plugin_op_%d" id

let count = List.length names

(* The parameterized operations (Section 2.2 reports four of them). *)
let parameterized = [ parse_frame; process_frame; write_frame; notify_frame ]
