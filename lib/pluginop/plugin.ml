(* Protocol plugins: a globally unique name plus pluglets and the manifest
   linking each pluglet to a protocol operation and anchor (Section 2).

   Pluglet code is either plc source (developer side: compiled, checkable
   for termination, countable in LoC) or raw eBPF bytecode (what travels on
   the wire — receivers only ever see platform-independent bytecode). The
   serialized form stands in for the ELF files of Table 2; its binding
   (name || code) is what the trust system's Merkle trees authenticate. *)

type code =
  | Source of Plc.Ast.func
  | Bytecode of Ebpf.Insn.t array * int (* program, stack size *)

type pluglet = {
  op : Protoop.id;
  param : int option;
  anchor : Protoop.anchor;
  code : code;
}

type t = { name : string; pluglets : pluglet list }

exception Malformed of string

(* Compile (if needed) to (bytecode, stack size). *)
let compiled pluglet =
  match pluglet.code with
  | Bytecode (prog, stack) -> (prog, stack)
  | Source f -> Plc.Compile.compile ~helpers:Api.helper_names f

(* Content address of a pluglet's executable form: digest of the encoded
   bytecode plus the stack size it was compiled for. Two pluglets with
   the same key run the same program on the same frame layout, so the
   PREs' program cache can share one verified+jitted compilation between
   them — across plugins, instances and connections. *)
let code_key prog stack_size =
  Digest.to_hex (Digest.string (Ebpf.Insn.encode prog))
  ^ ":" ^ string_of_int stack_size

let anchor_code = function
  | Protoop.Replace -> 0
  | Protoop.Pre -> 1
  | Protoop.Post -> 2
  | Protoop.External -> 3

let anchor_of_code = function
  | 0 -> Protoop.Replace
  | 1 -> Protoop.Pre
  | 2 -> Protoop.Post
  | 3 -> Protoop.External
  | n -> raise (Malformed (Printf.sprintf "bad anchor %d" n))

let magic = "PQPLUG1"

(* Serialize name, manifest and bytecodes — the unit that is published to
   the Plugin Repository and exchanged over connections. *)
let serialize t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Buffer.add_uint16_be buf (String.length t.name);
  Buffer.add_string buf t.name;
  Buffer.add_uint16_be buf (List.length t.pluglets);
  List.iter
    (fun p ->
      let prog, stack = compiled p in
      Buffer.add_uint16_be buf p.op;
      (match p.param with
       | None -> Buffer.add_uint8 buf 0
       | Some v ->
         Buffer.add_uint8 buf 1;
         Buffer.add_uint16_be buf v);
      Buffer.add_uint8 buf (anchor_code p.anchor);
      Buffer.add_uint16_be buf stack;
      let code = Ebpf.Insn.encode prog in
      Buffer.add_int32_be buf (Int32.of_int (String.length code));
      Buffer.add_string buf code)
    t.pluglets;
  Buffer.contents buf

let deserialize s =
  let pos = ref 0 in
  let need n =
    if !pos + n > String.length s then raise (Malformed "truncated plugin")
  in
  let u8 () = need 1; let v = Char.code s.[!pos] in incr pos; v in
  let u16 () = need 2; let v = String.get_uint16_be s !pos in pos := !pos + 2; v in
  let u32 () =
    need 4;
    let v = Int32.to_int (String.get_int32_be s !pos) in
    pos := !pos + 4;
    if v < 0 then raise (Malformed "bad length");
    v
  in
  let str n = need n; let v = String.sub s !pos n in pos := !pos + n; v in
  if String.length s < String.length magic || str (String.length magic) <> magic
  then raise (Malformed "bad magic");
  let name = str (u16 ()) in
  let count = u16 () in
  let pluglets = ref [] in
  for _ = 1 to count do
    let op = u16 () in
    let param = if u8 () = 1 then Some (u16 ()) else None in
    let anchor = anchor_of_code (u8 ()) in
    let stack = u16 () in
    let code_len = u32 () in
    let prog =
      try Ebpf.Insn.decode (str code_len)
      with Ebpf.Insn.Decode_error m -> raise (Malformed m)
    in
    pluglets := { op; param; anchor; code = Bytecode (prog, stack) } :: !pluglets
  done;
  { name; pluglets = List.rev !pluglets }

(* The binding published to validators: name || code (Section 3.1). *)
let binding t = t.name ^ "||" ^ serialize t

let elf_size t = String.length (serialize t)

(* Table 2 statistics. LoC and termination verdicts need source pluglets;
   bytecode-only pluglets count as unproven (a validator without source can
   refuse to vouch). *)
type stats = {
  name : string;
  loc : int;
  pluglet_count : int;
  proven_terminating : int;
  elf_size : int;
}

let stats t =
  let loc, proven =
    List.fold_left
      (fun (loc, proven) p ->
        match p.code with
        | Source f ->
          ( loc + Plc.Ast.lines_of_code f,
            proven + if Plc.Terminate.is_proven f then 1 else 0 )
        | Bytecode _ -> (loc, proven))
      (0, 0) t.pluglets
  in
  {
    name = t.name;
    loc;
    pluglet_count = List.length t.pluglets;
    proven_terminating = proven;
    elf_size = elf_size t;
  }
