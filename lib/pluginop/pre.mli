(** Pluglet Runtime Environment (Section 2.1): one per inserted pluglet.

    Each PRE owns its registers and stack (a fresh {!Ebpf.Vm}); its heap
    points to the area shared by all pluglets of the plugin, mapped at the
    same window in every VM so heap pointers have the same value in every
    PRE of an instance. The admission pipeline — compile if needed, static
    verification, link, closure JIT — runs once per distinct bytecode: a
    content-addressed program cache shares the compiled program between
    identical pluglets, so re-admission only pays for a fresh run
    environment. {!run} then executes the program with no per-call setup,
    and runtime memory monitoring lives in the VM. *)

exception Rejected of string
(** The verifier refused the bytecode: the whole plugin is rejected. *)

type t = {
  plugin_name : string;
  op : Protoop.id;
  param : int option;
  anchor : Protoop.anchor;
  prog : Ebpf.Insn.t array;
  linked : Ebpf.Vm.linked_prog;  (** the jitted program's linked form *)
  jit : Ebpf.Vm.jit_prog;
    (** compiled once per distinct bytecode (content-addressed cache) *)
  vm : Ebpf.Vm.t;
  heap_base : int64;
}

val create : plugin_name:string -> pluglet:Plugin.pluglet -> heap:Bytes.t -> t
(** @raise Rejected when verification fails
    @raise Plc.Compile.Error when source compilation fails *)

val cache_stats : unit -> int * int
(** [(entries, hits)] of the content-addressed program cache — distinct
    compiled programs, and admissions served without re-verifying,
    re-linking or re-jitting. *)

type cache_counters = {
  entries : int;
  hits : int;
  misses : int;
  evictions : int;
}

val cache_counters : unit -> cache_counters
(** Full counters of the node-scope program cache: [hits] admissions
    served from cache, [misses] full verify+link+jit compilations,
    [evictions] entries dropped by the FIFO capacity bound. *)

val set_cache_capacity : int -> unit
(** Bound the program cache (default 4096 entries, min 1). *)

val register_helper : ?arity:int -> t -> int -> Ebpf.Vm.helper -> unit
(** See {!Ebpf.Vm.register_helper}: [arity] declares how many argument
    registers the helper reads (default 5), trimming per-call boxing. *)

val heap_addr : t -> int -> int64
(** Translate a plugin-heap offset to the address pluglets see. *)

val heap_offset : t -> int64 -> int

val with_regions :
  t ->
  (string * Bytes.t * Ebpf.Vm.perm * int * int) list ->
  (int64 list -> 'a) ->
  'a
(** Map transient regions (packet buffers, protoop inputs) for the duration
    of the callback, which receives their base addresses in order. Each
    entry is [(name, bytes, perm, off, len)]: the pluglet sees the
    [off, off+len) sub-view of [bytes] — pass [0, Bytes.length bytes] for
    a whole-buffer mapping. *)

val run : t -> args:int64 array -> int64
(** Execute the pluglet's jitted program on its VM (the per-packet fast
    path); falls back to the linked tier when closure compilation is
    off. *)

val executed_insns : t -> int
