(** Protocol plugins: a globally unique name plus pluglets and the manifest
    linking each pluglet to a protocol operation and anchor (Section 2).

    Pluglet code is either plc source (developer side: compilable,
    termination-checkable, countable in LoC) or raw eBPF bytecode — what
    travels on the wire; receivers only ever see platform-independent
    bytecode. The serialized form stands in for the paper's ELF files; its
    binding (name || code) is what the trust system's Merkle trees
    authenticate. *)

type code =
  | Source of Plc.Ast.func
  | Bytecode of Ebpf.Insn.t array * int (** program, stack size *)

type pluglet = {
  op : Protoop.id;
  param : int option; (** frame type, for the four parameterized operations *)
  anchor : Protoop.anchor;
  code : code;
}

type t = { name : string; pluglets : pluglet list }

exception Malformed of string

val compiled : pluglet -> Ebpf.Insn.t array * int
(** The pluglet's bytecode and stack size, compiling source on demand.
    @raise Plc.Compile.Error when source compilation fails *)

val code_key : Ebpf.Insn.t array -> int -> string
(** Content address of an executable form (bytecode digest + stack size):
    the key under which the PREs' program cache shares one verified,
    linked and jitted compilation between identical pluglets. *)

val serialize : t -> string
(** Deterministic wire form — the unit published to the Plugin Repository
    and exchanged over connections. *)

val deserialize : string -> t
(** @raise Malformed on truncated or corrupt input. *)

val binding : t -> string
(** [name || code], the value validators put in their Merkle trees. *)

val elf_size : t -> int

(** Table 2 statistics. LoC and termination verdicts need source pluglets;
    bytecode-only pluglets count as unproven. *)
type stats = {
  name : string;
  loc : int;
  pluglet_count : int;
  proven_terminating : int;
  elf_size : int;
}

val stats : t -> stats
