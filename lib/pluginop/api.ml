(* The API exposed to pluglet bytecode (Table 1): helper identifiers and
   the field namespace of the get/set accessors. Implementations are
   closures over the host connection, installed when a PRE is bound; this
   module only fixes the numbering so that plc sources, every host and the
   documentation agree.

   Getters/setters abstract the connection internals from pluglets: the
   bytecode never hard-codes structure offsets, so plugins stay compatible
   across host versions — and across *hosts*: any transport exposing this
   id space (PQUIC, tcpsim) runs the same bytecode — and the host can
   monitor (and refuse) access to specific fields (Section 2.3). *)

(* Helper ids — Table 1. *)
let h_get = 1
let h_set = 2
let h_pl_malloc = 3
let h_pl_free = 4
let h_get_opaque_data = 5
let h_pl_memcpy = 6
let h_pl_memset = 7
let h_run_protoop = 8
let h_reserve_frames = 9

(* Supporting helpers (the paper's API also exposes time, logging and the
   application push channel of Section 2.4). *)
let h_get_time = 10
let h_push_message = 11
let h_pl_log = 12
let h_sent_time = 13     (* sent_time(pn) -> ns, or -1 if unknown *)
let h_cmp_bytes = 14     (* cmp_bytes(a, b, len) -> 0 if equal *)

(* Extension helpers registered for the FEC plugin (erasure-code byte-vector
   arithmetic; control flow stays in bytecode, bulk byte operations are
   helpers, like pl_memcpy). *)
let h_gf256_mulvec = 20  (* dst ^= coef * src, element-wise over len bytes *)
let h_rng_coef = 21      (* deterministic coefficient stream: rng_coef(seed, i, j) *)
let h_recover_packet = 22 (* hand a recovered packet (pn || payload) to the engine *)
let h_packet_bytes = 23  (* copy the packet being processed into plugin memory *)

(* Extension helper registered for the multipath plugin. *)
let h_create_path = 30   (* create_path(remote_addr) -> path_id *)
let h_gf256_mul = 24     (* scalar GF(256) multiply *)
let h_gf256_inv = 25     (* scalar GF(256) inverse *)
let h_gf256_scalevec = 26 (* dst := coef * dst, element-wise over len bytes *)

let helper_names =
  [
    ("get", h_get);
    ("set", h_set);
    ("pl_malloc", h_pl_malloc);
    ("pl_free", h_pl_free);
    ("get_opaque_data", h_get_opaque_data);
    ("pl_memcpy", h_pl_memcpy);
    ("pl_memset", h_pl_memset);
    ("run_protoop", h_run_protoop);
    ("reserve_frames", h_reserve_frames);
    ("get_time", h_get_time);
    ("push_message", h_push_message);
    ("pl_log", h_pl_log);
    ("sent_time", h_sent_time);
    ("cmp_bytes", h_cmp_bytes);
    ("gf256_mulvec", h_gf256_mulvec);
    ("rng_coef", h_rng_coef);
    ("recover_packet", h_recover_packet);
    ("packet_bytes", h_packet_bytes);
    ("gf256_mul", h_gf256_mul);
    ("gf256_inv", h_gf256_inv);
    ("gf256_scalevec", h_gf256_scalevec);
    ("create_path", h_create_path);
  ]

let is_known_helper id = List.exists (fun (_, i) -> i = id) helper_names

(* Field ids for get/set. Fields marked (path) take the path id as index. *)
let f_cwnd = 1                  (* (path) congestion window, bytes *)
let f_bytes_in_flight = 2       (* (path) *)
let f_srtt = 3                  (* (path) smoothed RTT, ns *)
let f_rtt_min = 4               (* (path) *)
let f_latest_rtt = 5            (* (path) *)
let f_rtt_var = 6               (* (path) *)
let f_rtt_sample = 7            (* (path) write-only: feeds a new RTT sample *)
let f_path_active = 8           (* (path) 0/1 *)
let f_path_remote_addr = 9      (* (path) *)
let f_nb_paths = 10
let f_next_pn = 11
let f_largest_acked = 12
let f_state = 13                (* 0 handshaking, 1 established, 2 closing, 3 closed *)
let f_role = 14                 (* 0 client, 1 server *)
let f_bytes_sent = 15
let f_bytes_received = 16
let f_pkts_sent = 17
let f_pkts_received = 18
let f_pkts_lost = 19
let f_pkts_retransmitted = 20
let f_pkts_out_of_order = 21
let f_ack_needed = 22
let f_spin_bit = 23
let f_max_data_local = 24
let f_max_data_remote = 25
let f_data_sent = 26
let f_data_received = 27
let f_mtu = 28
let f_current_pn = 29           (* pn of the packet being processed/built *)
let f_current_path = 30         (* path of the packet being processed/built *)
let f_current_packet_size = 31
let f_streams_open = 32
let f_streams_closed = 33
let f_handshake_rtt = 34        (* ns taken by the handshake *)
let f_last_path_recv = 35       (* path id the last packet arrived on *)
let f_fin_sent = 36             (* 1 when a stream reached its FIN and has
                                   nothing left to transmit (tail reached) *)
let f_peer_extra_addr = 37      (* peer's first extra address, or -1 *)
let f_current_packet_has_stream = 38 (* packet being built carried stream data *)
let f_own_extra_addr = 39       (* our own first extra address, or -1 *)
let f_ecn_ce = 40               (* packet being processed carried a CE mark *)
let f_ssthresh = 41             (* (path) slow-start threshold, bytes; -1 unset *)

(* Fields a pluglet may write through [set]. Everything else is read-only:
   a write attempt is a policy violation and kills the plugin, the same
   sanction as a memory violation. *)
let writable_fields = [ f_cwnd; f_rtt_sample; f_spin_bit; f_path_active ]
