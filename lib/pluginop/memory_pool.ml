(* Plugin memory allocator: a fixed-size area split into constant-size
   blocks with a free list, giving Θ(1) allocation and release while
   limiting fragmentation (Section 2.3, citing Kenwright's fixed-size
   pools). Offsets returned are relative to the start of the area; the PRE
   maps the area as a region so offsets translate directly to VM
   addresses. Allocations larger than one block take contiguous blocks
   (first-fit over the bitmap — still cheap at our pool sizes). *)

type t = {
  area : Bytes.t;
  block_size : int;
  nblocks : int;
  used : Bytes.t;              (* one byte per block: 0 free, 1 head, 2 cont *)
  mutable free_hint : int;     (* rotating search start *)
  mutable allocated_blocks : int;
}

let create ?(block_size = 64) ~size () =
  let nblocks = size / block_size in
  if nblocks <= 0 then invalid_arg "Memory_pool.create";
  {
    area = Bytes.make (nblocks * block_size) '\000';
    block_size;
    nblocks;
    used = Bytes.make nblocks '\000';
    free_hint = 0;
    allocated_blocks = 0;
  }

let area t = t.area
let size t = Bytes.length t.area

let blocks_needed t len = (len + t.block_size - 1) / t.block_size

let is_free t i = Bytes.get t.used i = '\000'

let find_run t need =
  let n = t.nblocks in
  let rec scan start tried =
    if tried >= n then None
    else
      let start = if start + need > n then 0 else start in
      if start + need > n then None
      else begin
        let ok = ref true in
        let k = ref 0 in
        while !ok && !k < need do
          if not (is_free t (start + !k)) then ok := false else incr k
        done;
        if !ok then Some start
        else scan (start + !k + 1) (tried + !k + 1)
      end
  in
  scan t.free_hint 0

(* Allocate [len] bytes; returns the byte offset in the area, or None when
   the pool is exhausted — which only hurts the plugin itself. *)
let alloc t len =
  if len <= 0 then None
  else
    let need = blocks_needed t len in
    match find_run t need with
    | None -> None
    | Some start ->
      Bytes.set t.used start '\001';
      for k = 1 to need - 1 do
        Bytes.set t.used (start + k) '\002'
      done;
      t.free_hint <- start + need;
      t.allocated_blocks <- t.allocated_blocks + need;
      Some (start * t.block_size)

(* Free the allocation starting at byte offset [off]. Freeing an address
   that is not an allocation head is an error reported to the caller. *)
let free t off =
  if off < 0 || off mod t.block_size <> 0 then false
  else
    let start = off / t.block_size in
    if start >= t.nblocks || Bytes.get t.used start <> '\001' then false
    else begin
      Bytes.set t.used start '\000';
      t.allocated_blocks <- t.allocated_blocks - 1;
      let k = ref (start + 1) in
      while !k < t.nblocks && Bytes.get t.used !k = '\002' do
        Bytes.set t.used !k '\000';
        t.allocated_blocks <- t.allocated_blocks - 1;
        incr k
      done;
      true
    end

(* Wipe contents and allocation state — used when a cached plugin is reused
   on a new connection, so no information leaks between connections
   (Section 2.5). *)
let reset t =
  Bytes.fill t.area 0 (Bytes.length t.area) '\000';
  Bytes.fill t.used 0 t.nblocks '\000';
  t.free_hint <- 0;
  t.allocated_blocks <- 0

let allocated_bytes t = t.allocated_blocks * t.block_size
