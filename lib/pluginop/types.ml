(* The transport-neutral heart of the plugin machinery: every type here is
   parametric in ['c], the host's connection representation, which this
   library treats as an opaque handle. A transport turns itself into a
   plugin host by building a ['c host] record — field get/set over the
   Table 1 id space, a clock, the application message channel and the
   sanction hooks — and keeping a ['c state] (protoop registry + attached
   instances) alongside its connection. PQUIC ([lib/core]) and tcpsim
   ([lib/tcpsim]) are the two in-tree instantiations; the same bytecode
   attaches to either (the Core QUIC direction). *)

let src = Logs.Src.create "pluginop" ~doc:"transport-neutral plugin host"

module Log = (val Logs.src_log src : Logs.LOG)

(* Protoop arguments: plain integers or byte buffers. Buffers are mapped as
   VM regions for pluglet implementations; native implementations access
   the bytes directly. [View] is a read-only sub-window [off, off+len) of a
   host-owned buffer (typically the received wire datagram): it is mapped
   as an Ro sub-view region — the pluglet sees addresses 0..len with the
   exact bounds a copied slice would have had, but no copy is taken. *)
type arg =
  | I of int64
  | Buf of Bytes.t * [ `Ro | `Rw ]
  | View of Bytes.t * int * int

(* One implementation on an anchor: a host-native OCaml closure or a
   verified-and-linked pluglet. *)
type 'c impl = Native of string * ('c -> arg array -> int64) | Pluglet of Pre.t

type 'c op_entry = {
  mutable replace : 'c impl option;
  mutable pre : 'c impl list;
  mutable post : 'c impl list;
  mutable ext : 'c impl option;
}

(* A built plugin instance: every pluglet compiled, verified and linked
   once; the pool is the plugin's shared heap. Instances are host-typed
   because attaching installs helpers that close over the connection. *)
type 'c instance = {
  plugin : Plugin.t;
  pool : Memory_pool.t;
  mutable pres : Pre.t list;
  opaque : (int, int) Hashtbl.t; (* opaque-data id -> heap offset *)
  mutable bound : 'c option;     (* connection the instance is bound to *)
}

(* The HOST interface: everything the plugin machinery needs from a
   transport. Keep it small — the point (ROADMAP item 4, Core QUIC) is
   that a new transport only supplies these closures to run the full
   pluglet ecosystem. *)
type 'c host = {
  host_name : string;  (* for logs and the differential tests *)
  now : 'c -> int64;   (* clock, ns (get_time helper) *)
  get_field : 'c -> int -> int -> int64;
      (* Table 1 getter: field id, index (path id for path fields).
         Must raise [Ebpf.Vm.Helper_failure] on an unknown field. *)
  set_field : 'c -> int -> int -> int64 -> unit;
      (* Table 1 setter for {!Api.writable_fields}; the generic layer
         already rejects read-only fields before calling this. *)
  push_message : 'c -> string -> unit;
      (* Section 2.4 asynchronous channel to the application *)
  sent_time : 'c -> int64 -> int64; (* sent_time(pn) -> ns, or -1 *)
  fail : 'c -> string -> unit;      (* terminate the connection (sanction) *)
  on_sanction : 'c -> unit;         (* stats hook: a plugin was killed *)
  on_fallback : 'c -> unit;         (* stats hook: builtin served a trap *)
  on_detach : 'c -> string -> unit;
      (* transport-side cleanup when a plugin leaves (e.g. PQUIC drops its
         scheduler reservations); called by [Plugin_host.remove_plugin] *)
  install_extra_helpers : 'c -> 'c instance -> Pre.t -> unit;
      (* transport-specific helpers beyond the generic table (PQUIC:
         reserve_frames, packet_bytes, recover_packet, create_path) *)
}

(* Per-connection plugin state: the protoop registry and the attached
   instances. Built-in (unparameterized, id < [Protoop.first_plugin_op])
   operations dispatch through a dense array so the per-packet hot path
   never hashes; parameterized and plugin-registered ids live in the
   hashtable. *)
type 'c state = {
  host : 'c host;
  builtin_ops : 'c op_entry option array;
  ops : (int, 'c op_entry) Hashtbl.t;
  (* keyed by the same [op lsl 21 lor (param + 1)] encoding as [op_stack]
     below: an immediate int key hashes in a few instructions and the
     lookup allocates nothing, where an [(int * int option)] tuple key
     cost a 3-word allocation plus a structural hash on every dispatch *)
  (* The running-operation stack, as a preallocated int stack: each frame
     is [op lsl 21 lor (param + 1)] ([lor 0] when unparameterized). The
     encoding keeps the per-dispatch bookkeeping allocation-free — run_op
     sits on every frame of every packet. Depth is bounded by the op-graph
     loop check itself (a repeated op terminates the connection), 256 is
     far beyond any legal chain. *)
  op_stack : int array;
  mutable op_sp : int;
  plugins : (string, 'c instance) Hashtbl.t;
  mutable plugin_order : string list;
  mutable kill : 'c -> string -> string -> unit;
      (* the sanction entry point; bound by [Plugin_host.create_state] so
         [Dispatch] (below it in the module graph) can sanction *)
}
