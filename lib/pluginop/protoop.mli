(** Protocol operations: the named subroutines into which the PQUIC
    connection workflow is decomposed (Section 2.2) — 72 of them, as in the
    paper. Each has a human-readable identifier and anchor points:
    {!Replace} (at most one pluglet, overrides the built-in behaviour),
    {!Pre} and {!Post} (any number of passive, read-only observers), and
    {!External} (callable only by the application, Section 2.4). Four
    operations take a parameter — the frame type — giving plugins a generic
    entry point for new frame types without changing the caller.

    Plugins may also register operations absent from this table (ids from
    {!first_plugin_op} up), as the FEC plugin does with its flush
    operation. *)

type anchor = Replace | Pre | Post | External

type id = int
(** Numeric operation id, usable from bytecode via run_protoop. *)

type param = int option
(** The frame type, for the four parameterized operations. *)

val parse_frame : id
(** parameterized: consume a plugin frame body, returning the byte count (bit 28 set marks the frame non-ack-eliciting) *)

val process_frame : id
(** parameterized: act on a parsed frame *)

val write_frame : id
(** parameterized: serialize a reserved frame slot into the packet being built *)

val notify_frame : id
(** parameterized: a frame of this type was acknowledged (arg 1) or lost (arg 0) *)

val update_rtt : id
(** fold a new RTT sample into the path estimator — the paper's running example *)

val process_ack_range : id

val detect_lost_packets : id
(** per-path gap/time-threshold loss detection *)

val set_loss_timer : id
(** arm the retransmission alarm *)

val on_loss_timer : id
(** the alarm fired: probe or declare losses *)

val retransmission_timeout : id
(** full RTO: everything in flight is declared lost *)

val send_probe : id

val cc_on_packet_sent : id
(** congestion control: a packet entered flight *)

val cc_on_packet_acked : id
(** congestion-control window growth (bytes-in-flight stays native so CC plugins only own policy) *)

val cc_on_packet_lost : id
(** congestion-control multiplicative decrease *)

val cc_on_rto : id
(** congestion-control collapse after an RTO *)

val schedule_next_stream : id
(** pick the stream that sends next (round robin by default) *)

val flow_control_check : id

val update_max_data : id

val update_max_stream_data : id

val stream_opened : id

val stream_closed : id

val data_received : id

val data_consumed : id

val process_transport_params : id
(** the peer's transport parameters were decoded *)

val write_transport_params : id

val update_ack_needed : id

val compute_ack_delay : id
(** the delay reported in outgoing ACK frames *)

val get_retransmission_delay : id
(** compute the alarm timeout (what the Tail Loss Probe plugin replaces) *)

val stream_bytes_max : id
(** cap the stream bytes of the packet being built (the FEC plugin shrinks it to leave room for repair symbols) *)

val update_pacing : id

val congestion_window_check : id

val select_path : id
(** pick the sending path (the multipath plugin replaces this with round robin / lowest RTT) *)

val prepare_packet : id

val predict_packet_header_size : id

val schedule_frames_on_sending : id

val finalize_and_protect_packet : id

val packet_was_sent : id
(** a packet left, with its payload available to pluglets (FEC captures source symbols here) *)

val incoming_datagram : id

val decode_packet_header : id

val unprotect_packet : id

val received_packet : id
(** an authenticated packet arrived, before its frames are processed *)

val set_spin_bit : id
(** compute the Spin Bit of the outgoing packet *)

val get_spin_bit : id

val get_destination_cid : id

val next_packet_number : id

val packet_acknowledged : id

val packet_lost : id

val path_challenge_response : id

val create_new_path : id

val validate_path : id

val packet_number_space : id

val connection_init : id

val connection_established : id
(** empty anchor: the handshake completed *)

val connection_closing : id

val connection_closed : id
(** empty anchor: the connection ended (monitoring exports its PI block here) *)

val idle_timeout_event : id

val handshake_complete : id

val after_decode_frames : id

val before_sending_packet : id

val after_packet_lost : id

val plugin_injected : id

val plugin_removed : id

val plugin_negotiated : id

val cache_lookup : id

val wake_event : id

val new_connection_id : id

val half_open_event : id

val stateless_reset : id

val update_idle_timeout : id
(** bookkeeping on every received packet *)

val stream_data_blocked : id

val set_next_wake_time : id

val header_prepared : id

val first_plugin_op : id
(** Ids from here up are free for plugin-defined operations. *)

val names : (id * string) list

val name : id -> string
(** Human-readable identifier; plugin-defined ids print as plugin_op_N. *)

val count : int
(** 72, as reported in Section 2.2. *)

val parameterized : id list
(** The four operations taking a frame-type parameter. *)
