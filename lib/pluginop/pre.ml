(* Pluglet Runtime Environment (Section 2.1): one per inserted pluglet.
   Each PRE owns its registers and stack (a fresh [Ebpf.Vm]); its heap
   points to the area shared by all pluglets of the plugin. Every VM maps
   its stack at the same window and the heap is the first region mapped
   after it, so heap pointers have the same value in every PRE of the
   instance. The admission pipeline — decode, static verification, link —
   runs here, once, at creation; per-packet execution then runs the linked
   program with no setup work, and runtime memory monitoring lives in the
   VM. Caching instances (Section 2.5) therefore caches the linked
   programs too, which is what keeps plugin reload cheap. *)

exception Rejected of string

type t = {
  plugin_name : string;
  op : Protoop.id;
  param : int option;
  anchor : Protoop.anchor;
  prog : Ebpf.Insn.t array;
  linked : Ebpf.Vm.linked_prog;
  jit : Ebpf.Vm.jit_prog;
  vm : Ebpf.Vm.t;
  heap_base : int64;
}

(* Content-addressed program cache: bytecode digest + stack size
   ([Plugin.code_key], suffixed with the jit switch) -> the verified,
   linked and jitted compilation. A hit skips the whole admission
   pipeline — verification (same bytecode, same verdict), linking and
   closure compilation — and shares the compiled closures via
   [Vm.jit_clone], so reloading a cached plugin or injecting the same
   pluglet on another connection only pays for a fresh run environment.
   The cache is process-global (node scope): every endpoint and every
   connection admitting the same bytecode shares one compilation.
   Bounded FIFO: entries beyond [capacity] evict the oldest admission. *)
let program_cache : (string, Ebpf.Vm.jit_prog) Hashtbl.t = Hashtbl.create 32
let admission_order : string Queue.t = Queue.create ()
let cache_hits = ref 0
let cache_misses = ref 0
let cache_evictions = ref 0
let cache_capacity = ref 4096

type cache_counters = {
  entries : int;
  hits : int;
  misses : int;
  evictions : int;
}

let cache_stats () = (Hashtbl.length program_cache, !cache_hits)

let cache_counters () =
  {
    entries = Hashtbl.length program_cache;
    hits = !cache_hits;
    misses = !cache_misses;
    evictions = !cache_evictions;
  }

let set_cache_capacity n = cache_capacity := max 1 n

let admit prog stack_size =
  let key =
    Plugin.code_key prog stack_size
    ^ if !Ebpf.Vm.jit_enabled then ":jit" else ":linked"
  in
  match Hashtbl.find_opt program_cache key with
  | Some master ->
    incr cache_hits;
    Ebpf.Vm.jit_clone master
  | None ->
    incr cache_misses;
    (match
       Ebpf.Verifier.verify ~stack_size ~known_helper:Api.is_known_helper prog
     with
    | Ok () -> ()
    | Error errs ->
      raise
        (Rejected
           (String.concat "; " (List.map Ebpf.Verifier.error_to_string errs))));
    let master = Ebpf.Vm.jit ~stack_size prog in
    while Hashtbl.length program_cache >= !cache_capacity
          && not (Queue.is_empty admission_order) do
      let oldest = Queue.pop admission_order in
      if Hashtbl.mem program_cache oldest then begin
        Hashtbl.remove program_cache oldest;
        incr cache_evictions
      end
    done;
    Hashtbl.add program_cache key master;
    Queue.push key admission_order;
    Ebpf.Vm.jit_clone master

(* Verify, link, jit and instantiate (through the program cache). [heap]
   is the plugin's shared memory area. *)
let create ~plugin_name ~(pluglet : Plugin.pluglet) ~heap =
  let prog, stack_size = Plugin.compiled pluglet in
  let jit = admit prog stack_size in
  let vm = Ebpf.Vm.create ~stack_size () in
  let heap_region = Ebpf.Vm.map_region vm ~name:"plugin_heap" ~perm:Ebpf.Vm.Rw heap in
  {
    plugin_name;
    op = pluglet.op;
    param = pluglet.param;
    anchor = pluglet.anchor;
    prog;
    linked = Ebpf.Vm.jit_linked jit;
    jit;
    vm;
    heap_base = heap_region.Ebpf.Vm.base;
  }

let register_helper ?arity t id f = Ebpf.Vm.register_helper ?arity t.vm id f

(* Translate a plugin-heap offset to the address pluglets see. *)
let heap_addr t off = Int64.add t.heap_base (Int64.of_int off)

let heap_offset t addr = Int64.to_int (Int64.sub addr t.heap_base)

(* Map transient regions (packet buffers, protoop inputs) for the duration
   of [f], which receives their base addresses in order. The VM recycles
   the table slots of unmapped regions, so this steady per-call traffic
   reuses the same few windows instead of growing the address space. *)
let with_regions t regions f =
  let mapped =
    List.map
      (fun (name, bytes, perm, off, len) ->
        Ebpf.Vm.map_region t.vm ~name ~perm ~off ~len bytes)
      regions
  in
  let finally () = List.iter (Ebpf.Vm.unmap_region t.vm) mapped in
  match f (List.map (fun r -> r.Ebpf.Vm.base) mapped) with
  | result ->
    finally ();
    result
  | exception e ->
    finally ();
    raise e

(* The per-packet fast path: the jitted tier when compiled, the linked
   tier otherwise (run_jit falls back by itself). In-engine a protoop
   dispatch arrives with cold caches — the engine touches packets, frame
   tables and timers between execs — so per-exec cost is dominated by
   reloading the VM's run state, not by the tier's hot ns/insn: measured
   under simulated cache pollution both tiers land within 7% of each
   other, with the jitted tier slightly ahead (and ~27 fewer minor words
   per exec, no per-instruction operand boxing). *)
let run t ~args = Ebpf.Vm.run_jit t.vm ~args t.jit

let executed_insns t = Ebpf.Vm.executed t.vm
