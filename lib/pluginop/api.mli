(** The API exposed to pluglet bytecode (Table 1): helper identifiers and
    the field namespace of the get/set accessors. Implementations are
    closures over the host connection, installed when a PRE is bound; this
    module fixes the numbering so plc sources, every host and the
    documentation agree.

    Getters/setters abstract the connection internals from pluglets: the
    bytecode never hard-codes structure offsets, so plugins stay compatible
    across host versions — and across {e hosts}: any transport exposing
    this id space (PQUIC, tcpsim) runs the same bytecode — and the host can
    monitor (and refuse) access to specific fields (Section 2.3). *)

(** {2 Helper ids — Table 1} *)

val h_get : int
(** [get(field, index)] — read a connection field; path fields take the
    path id as index. *)

val h_set : int
(** [set(field, index, value)] — write one of {!writable_fields}; any other
    field is a policy violation that kills the plugin. *)

val h_pl_malloc : int
(** [pl_malloc(size)] — Θ(1) allocation in the plugin's memory area;
    returns 0 when the pool is exhausted. *)

val h_pl_free : int
val h_get_opaque_data : int
(** [get_opaque_data(id, size)] — a stable, zero-initialized area shared by
    all pluglets of the plugin, allocated on first use. *)

val h_pl_memcpy : int
val h_pl_memset : int
val h_run_protoop : int
(** [run_protoop(op, param, a, b, c)] — invoke a protocol operation
    (param < 0 means none). Re-entering a running operation is the Figure 3
    loop and terminates the connection. *)

val h_reserve_frames : int
(** [reserve_frames(ftype, size, flags, cookie)] — book a frame slot with
    the CBQ+DRR scheduler; flags bit 0 = retransmittable, bit 1 = not
    ack-eliciting. *)

(** {2 Supporting helpers} *)

val h_get_time : int
val h_push_message : int
(** The Section 2.4 asynchronous channel to the application. *)

val h_pl_log : int
val h_sent_time : int
(** [sent_time(pn)] — the send timestamp of a recent packet, or -1. *)

val h_cmp_bytes : int

(** {2 Extension helpers for the FEC plugin}

    Bulk byte-vector arithmetic stays in helpers (like pl_memcpy); control
    flow stays in bytecode. *)

val h_gf256_mulvec : int
(** [gf256_mulvec(dst, src, coef, len)]: dst ^= coef*src over GF(256). *)

val h_gf256_scalevec : int
(** [gf256_scalevec(dst, coef, len)]: dst := coef*dst. *)

val h_gf256_mul : int
val h_gf256_inv : int
val h_rng_coef : int
(** [rng_coef(seed, sid, row)] — the deterministic RLC coefficient stream
    both peers regenerate; never 0. *)

val h_recover_packet : int
(** Hand a recovered packet (pn || payload) back to the engine; it is
    processed as if received and its number acknowledged. *)

val h_packet_bytes : int
(** Copy the packet currently processed/built (pn || payload) into plugin
    memory; returns the byte count or 0 if it does not fit. *)

(** {2 Extension helper for the multipath plugin} *)

val h_create_path : int
(** [create_path(remote_addr)] — open (or find) a path to the address;
    returns the path id. *)

val helper_names : (string * int) list
(** The compile-time name table plc sources resolve against. *)

val is_known_helper : int -> bool

(** {2 Field ids for get/set}

    Fields marked (path) take the path id as index. *)

val f_cwnd : int (** (path) congestion window, bytes; writable *)

val f_bytes_in_flight : int (** (path) *)

val f_srtt : int (** (path) smoothed RTT, ns *)

val f_rtt_min : int
val f_latest_rtt : int
val f_rtt_var : int

val f_rtt_sample : int
(** (path) write-only: feeds a new RTT sample into the estimator. *)

val f_path_active : int (** (path) 0/1; writable *)

val f_path_remote_addr : int
val f_nb_paths : int
val f_next_pn : int
val f_largest_acked : int

val f_state : int
(** 0 handshaking, 1 established, 2 closing, 3 closed, 4 failed. *)

val f_role : int (** 0 client, 1 server *)

val f_bytes_sent : int
val f_bytes_received : int
val f_pkts_sent : int
val f_pkts_received : int
val f_pkts_lost : int
val f_pkts_retransmitted : int
val f_pkts_out_of_order : int
val f_ack_needed : int
val f_spin_bit : int (** writable *)

val f_max_data_local : int
val f_max_data_remote : int
val f_data_sent : int
val f_data_received : int
val f_mtu : int
val f_current_pn : int
(** The packet being processed or built. *)

val f_current_path : int
val f_current_packet_size : int
val f_streams_open : int
val f_streams_closed : int
val f_handshake_rtt : int
val f_last_path_recv : int
val f_fin_sent : int
(** 1 when a stream reached its FIN with nothing left to transmit. *)

val f_peer_extra_addr : int
val f_current_packet_has_stream : int
val f_own_extra_addr : int
val f_ecn_ce : int
(** 1 when the packet being processed carried a CE mark. *)

val f_ssthresh : int
(** (path) slow-start threshold in bytes; -1 while unset. *)

val writable_fields : int list
(** Everything else is read-only through [set]; writing it kills the
    plugin, the same sanction as a memory violation. *)
