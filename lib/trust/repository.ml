(* The Plugin Repository (PR): central identities, distributed validation.
   It hosts plugins published by developers, registers validator
   verification keys, and stores each PV's STRs in an append-only
   hash-chained log (Appendix B.1) so equivocation — presenting different
   STRs for the same epoch to different peers — is detectable. *)

type str_entry = { str : Validator.str; prev_hash : string; entry_hash : string }

type t = {
  plugins : (string, string) Hashtbl.t;          (* name -> serialized bytes *)
  developers : (string, string) Hashtbl.t;       (* plugin name -> developer id *)
  pv_keys : (string, string) Hashtbl.t;          (* pv id -> verification key *)
  str_logs : (string, str_entry list) Hashtbl.t; (* pv id -> newest first *)
  mutable alerts : string list;                  (* developer/auditor reports *)
}

let create () =
  {
    plugins = Hashtbl.create 16;
    developers = Hashtbl.create 16;
    pv_keys = Hashtbl.create 8;
    str_logs = Hashtbl.create 8;
    alerts = [];
  }

exception Rejected of string

(* A developer publishes a plugin; the name is globally unique, so a second
   publish under the same name must come from the same developer. *)
let publish t ~developer (plugin : Pquic.Plugin.t) =
  let name = plugin.Pquic.Plugin.name in
  (match Hashtbl.find_opt t.developers name with
  | Some owner when owner <> developer ->
    raise (Rejected (Printf.sprintf "name %s is owned by %s" name owner))
  | _ -> ());
  Hashtbl.replace t.developers name developer;
  Hashtbl.replace t.plugins name (Pquic.Plugin.serialize plugin)

let fetch t name = Hashtbl.find_opt t.plugins name

let plugin_names t =
  Hashtbl.fold (fun n _ acc -> n :: acc) t.plugins [] |> List.sort String.compare

let register_pv t ~id ~key = Hashtbl.replace t.pv_keys id key

let pv_key t id = Hashtbl.find_opt t.pv_keys id

let hash_entry (s : Validator.str) prev_hash =
  Sha256.digest
    (Printf.sprintf "%s|%d|" s.Validator.pv_id s.Validator.epoch
     ^ s.Validator.root ^ s.Validator.signature ^ prev_hash)

(* Record an STR. The log is append-only: a second, different STR for an
   epoch that already has one is equivocation and raises an alert instead
   of being stored. *)
let record_str t (s : Validator.str) =
  match pv_key t s.Validator.pv_id with
  | None -> Error "unknown validator"
  | Some key ->
    if not (Validator.check_str ~key s) then Error "bad STR signature"
    else begin
      let log = Option.value ~default:[] (Hashtbl.find_opt t.str_logs s.Validator.pv_id) in
      match
        List.find_opt (fun e -> e.str.Validator.epoch = s.Validator.epoch) log
      with
      | Some e when e.str.Validator.root <> s.Validator.root ->
        let alert =
          Printf.sprintf "EQUIVOCATION: %s presented two roots for epoch %d"
            s.Validator.pv_id s.Validator.epoch
        in
        t.alerts <- alert :: t.alerts;
        Error alert
      | Some _ -> Ok () (* same STR re-announced *)
      | None ->
        let prev_hash =
          match log with [] -> String.make 32 '\000' | e :: _ -> e.entry_hash
        in
        let entry = { str = s; prev_hash; entry_hash = hash_entry s prev_hash } in
        Hashtbl.replace t.str_logs s.Validator.pv_id (entry :: log);
        Ok ()
    end

let latest_str t pv_id =
  match Hashtbl.find_opt t.str_logs pv_id with
  | Some (e :: _) -> Some e.str
  | _ -> None

let str_at_epoch t pv_id epoch =
  match Hashtbl.find_opt t.str_logs pv_id with
  | None -> None
  | Some log ->
    Option.map (fun e -> e.str)
      (List.find_opt (fun e -> e.str.Validator.epoch = epoch) log)

(* Audit the hash chain of a PV's log: any tampering breaks the chain. *)
let audit_log t pv_id =
  match Hashtbl.find_opt t.str_logs pv_id with
  | None -> true
  | Some log ->
    let rec check = function
      | [] -> true
      | [ e ] ->
        e.prev_hash = String.make 32 '\000'
        && e.entry_hash = hash_entry e.str e.prev_hash
      | e :: (older :: _ as rest) ->
        e.prev_hash = older.entry_hash
        && e.entry_hash = hash_entry e.str e.prev_hash
        && check rest
    in
    check log

let report_alert t msg = t.alerts <- msg :: t.alerts

let alerts t = t.alerts

let developer_of t name = Hashtbl.find_opt t.developers name
