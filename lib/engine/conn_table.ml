(* Open-addressed hash table from CID bytes to connections.

   Slot states are encoded in the key array itself using two physically
   unique sentinel strings (empty / tombstone), so a probe touches one
   array and compares small strings. FNV-1a hashing runs over the key
   bytes wherever they live — a standalone string or a window of a
   datagram — so the dispatch path never allocates the key. *)

type 'a t = {
  mutable keys : string array;
  mutable vals : 'a option array;
  mutable live : int;
  mutable tombs : int;
  mutable mask : int;  (* capacity - 1; capacity is a power of two *)
}

(* Distinct allocations: compared with (==) only. *)
let empty_slot = String.make 1 '\000'
let tombstone = String.make 1 '\000'

let is_free k = k == empty_slot
let is_tomb k = k == tombstone

let round_pow2 n =
  let c = ref 16 in
  while !c < n do
    c := !c * 2
  done;
  !c

let create ?(initial = 16) () =
  let cap = round_pow2 initial in
  {
    keys = Array.make cap empty_slot;
    vals = Array.make cap None;
    live = 0;
    tombs = 0;
    mask = cap - 1;
  }

let length t = t.live

let key_of_cid cid =
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 cid;
  Bytes.unsafe_to_string b

let fnv_prime = 0x01000193
let fnv_seed = 0x811c9dc5

let hash_sub buf pos len =
  let h = ref fnv_seed in
  for i = pos to pos + len - 1 do
    h := (!h lxor Char.code (String.unsafe_get buf i)) * fnv_prime
  done;
  let h = !h land max_int in
  h lxor (h lsr 17)

let hash key = hash_sub key 0 (String.length key)

let eq_sub key buf pos len =
  String.length key = len
  &&
  let i = ref 0 in
  while
    !i < len && String.unsafe_get key !i = String.unsafe_get buf (pos + !i)
  do
    incr i
  done;
  !i = len

(* Find the slot holding [key], or -1. *)
let probe_find t h key pos len =
  let i = ref (h land t.mask) in
  let found = ref (-1) in
  let stop = ref false in
  while not !stop do
    let k = t.keys.(!i) in
    if is_free k then stop := true
    else begin
      if (not (is_tomb k)) && eq_sub k key pos len then begin
        found := !i;
        stop := true
      end
      else i := (!i + 1) land t.mask
    end
  done;
  !found

let rec grow t =
  let old_keys = t.keys and old_vals = t.vals in
  let cap = (t.mask + 1) * 2 in
  t.keys <- Array.make cap empty_slot;
  t.vals <- Array.make cap None;
  t.mask <- cap - 1;
  t.live <- 0;
  t.tombs <- 0;
  Array.iteri
    (fun i k ->
      if (not (is_free k)) && not (is_tomb k) then
        match old_vals.(i) with Some v -> add t k v | None -> ())
    old_keys

and add t key v =
  if (t.live + t.tombs) * 2 >= t.mask + 1 then grow t;
  let h = hash key in
  let existing = probe_find t h key 0 (String.length key) in
  if existing >= 0 then t.vals.(existing) <- Some v
  else begin
    (* Claim the first free-or-tombstone slot on the probe path. *)
    let i = ref (h land t.mask) in
    while not (is_free t.keys.(!i) || is_tomb t.keys.(!i)) do
      i := (!i + 1) land t.mask
    done;
    if is_tomb t.keys.(!i) then t.tombs <- t.tombs - 1;
    t.keys.(!i) <- key;
    t.vals.(!i) <- Some v;
    t.live <- t.live + 1
  end

let find_sub t buf pos len =
  let i = probe_find t (hash_sub buf pos len) buf pos len in
  if i < 0 then None else t.vals.(i)

let find t key = find_sub t key 0 (String.length key)
let mem t key = probe_find t (hash key) key 0 (String.length key) >= 0

let remove t key =
  let i = probe_find t (hash key) key 0 (String.length key) in
  if i >= 0 then begin
    t.keys.(i) <- tombstone;
    t.vals.(i) <- None;
    t.live <- t.live - 1;
    t.tombs <- t.tombs + 1
  end

let iter t f =
  Array.iteri
    (fun i k ->
      if (not (is_free k)) && not (is_tomb k) then
        match t.vals.(i) with Some v -> f k v | None -> ())
    t.keys

let fold t f init =
  let acc = ref init in
  iter t (fun k v -> acc := f !acc k v);
  !acc

let stats t = (t.live, t.mask + 1, t.tombs)
