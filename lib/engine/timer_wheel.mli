(** Hierarchical timer wheel driven by a {!Netsim.Sim} clock.

    Alarms are intrusive doubly-linked nodes parked in per-level slot
    rings; arming, re-arming and cancelling are O(1) pointer surgery
    with no allocation. The wheel keeps at most a handful of simulator
    events ("drivers") pending — always at an exact alarm deadline —
    instead of one heap event per armed alarm, so a node with a million
    idle connections costs a million wheel nodes but O(1) simulator
    heap entries.

    Geometry: 5 levels x 256 slots over a 65.536 us tick, covering
    deltas up to 2^56 ns (~2.3 years); longer deadlines are parked in
    the farthest slot and re-sorted on cascade.

    Determinism contract (relied on by the pquic fingerprint tests):
    drivers only ever fire at exact armed deadlines, and alarms sharing
    a deadline fire in arm order, so replacing per-alarm [Sim.event]s
    with a shared wheel does not perturb event interleaving. *)

type t
type alarm

val create : Netsim.Sim.t -> t

val shared : Netsim.Sim.t -> t
(** One wheel per simulator, lazily created and memoised (small MRU
    registry keyed by physical equality). All endpoints on a simulator
    share it. *)

val alarm : (unit -> unit) -> alarm
(** Allocate an alarm node with the given fire callback. The node is
    reusable forever: arm/cancel/re-arm at will. *)

val set_fire : alarm -> (unit -> unit) -> unit
(** Replace the fire callback (for late binding during record
    construction). *)

val arm : t -> alarm -> at:Netsim.Sim.time -> unit
(** Arm (or re-arm) the alarm to fire at absolute simulated time [at].
    Deadlines in the past clamp to now, matching
    [Sim.schedule_at]. Allocation-free unless the new deadline precedes
    every pending driver, in which case one simulator event is
    scheduled. *)

val arm_delay : t -> alarm -> delay:Netsim.Sim.time -> unit
(** [arm] at now + delay. *)

val cancel : t -> alarm -> unit
(** Disarm. O(1), allocation-free, idempotent. A cancelled alarm never
    fires, even if cancellation happens from another alarm's callback
    in the same fire batch. *)

val is_armed : alarm -> bool

val deadline : alarm -> Netsim.Sim.time
(** Deadline of an armed alarm (meaningless when disarmed). *)

val armed_count : t -> int

type counters = {
  arms : int;
  cancels : int;
  fires : int;
  cascades : int;  (** node relinks during slot cascades *)
  drivers : int;  (** simulator events scheduled on behalf of the wheel *)
}

val counters : t -> counters
