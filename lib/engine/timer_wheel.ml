(* Hierarchical timer wheel over a Netsim.Sim clock.

   Internals work in int nanoseconds (Int64.to_int of Sim.time) so that
   arm/cancel touch no boxed values. Each level-k slot covers a window
   of 2^(16 + 8k) ns; an alarm is parked at the deepest level whose
   window is wider than its remaining delta, in the slot its absolute
   deadline falls in. Within a slot, nodes form an intrusive circular
   doubly-linked list anchored on a sentinel, appended at the tail so
   slot order is arm order.

   Simulator integration ("drivers"): the wheel maintains the invariant
   that whenever any alarm is armed, a pending simulator event exists at
   a time <= the earliest deadline — and every driver sits at an *exact*
   alarm deadline (present or past), never at a quantised tick. Drivers
   are never cancelled individually (cancelling would still leave the
   dead event in the simulator heap); instead a driver that fires while
   a sooner one already handled the work finds nothing due and only
   reschedules. When the wheel empties completely, all pending drivers
   are cancelled so the simulator heap drains exactly as it would have
   with per-alarm events. *)

type alarm = {
  mutable at : int;  (* deadline, ns; valid while armed or queued *)
  mutable aseq : int;  (* arm sequence, breaks same-deadline ties *)
  mutable lvl : int;  (* wheel level while armed *)
  mutable slot : int;  (* wheel slot while armed *)
  mutable armed : bool;
  mutable queued : bool;  (* sitting in an in-progress fire batch *)
  mutable next : alarm;
  mutable prev : alarm;
  mutable fire : unit -> unit;
}

let tick_bits = 16
let slot_bits = 8
let slots_per_level = 1 lsl slot_bits
let slot_mask = slots_per_level - 1
let levels = 5
let max_span = 1 lsl (tick_bits + (slot_bits * levels))

type counters = {
  arms : int;
  cancels : int;
  fires : int;
  cascades : int;
  drivers : int;
}

let occ_words = slots_per_level / 32

type t = {
  sim : Netsim.Sim.t;
  slots : alarm array array;  (* [levels][slots_per_level] sentinels *)
  occ : int array array;  (* [levels][occ_words] slot-occupancy bitmaps,
                             32 slots per word: bit set iff ring non-empty *)
  mins : int array array;  (* [levels][slots] exact min deadline per ring
                              (max_int when empty): [earliest] never walks
                              a chain, so finding the next driver deadline
                              is O(levels) however long the rings grow *)
  counts : int array;  (* armed nodes per level *)
  mutable armed_total : int;
  mutable next_aseq : int;
  (* Pending driver events, strictly ascending by time. New drivers are
     only ever scheduled sooner than the current head, so insertion is a
     cons. *)
  mutable pending_drivers : (int * Netsim.Sim.event) list;
  mutable batch : alarm array;  (* scratch for due nodes, reused *)
  mutable c_arms : int;
  mutable c_cancels : int;
  mutable c_fires : int;
  mutable c_cascades : int;
  mutable c_drivers : int;
}

let mk_node fire =
  let rec a =
    { at = 0; aseq = 0; lvl = 0; slot = 0; armed = false; queued = false;
      next = a; prev = a; fire }
  in
  a

let alarm fire = mk_node fire
let set_fire a fire = a.fire <- fire
let is_armed a = a.armed
let deadline a = Int64.of_int a.at
let armed_count t = t.armed_total

let counters t =
  { arms = t.c_arms; cancels = t.c_cancels; fires = t.c_fires;
    cascades = t.c_cascades; drivers = t.c_drivers }

let create sim =
  {
    sim;
    slots =
      Array.init levels (fun _ ->
          Array.init slots_per_level (fun _ -> mk_node (fun () -> ())));
    occ = Array.init levels (fun _ -> Array.make occ_words 0);
    mins = Array.init levels (fun _ -> Array.make slots_per_level max_int);
    counts = Array.make levels 0;
    armed_total = 0;
    next_aseq = 0;
    pending_drivers = [];
    batch = Array.make 256 (mk_node (fun () -> ()));
    c_arms = 0;
    c_cancels = 0;
    c_fires = 0;
    c_cascades = 0;
    c_drivers = 0;
  }

let level_for delta =
  if delta < 1 lsl (tick_bits + slot_bits) then 0
  else if delta < 1 lsl (tick_bits + (2 * slot_bits)) then 1
  else if delta < 1 lsl (tick_bits + (3 * slot_bits)) then 2
  else if delta < 1 lsl (tick_bits + (4 * slot_bits)) then 3
  else 4

let slot_of lvl place = (place lsr (tick_bits + (slot_bits * lvl))) land slot_mask

let occ_set t lvl slot =
  let o = t.occ.(lvl) in
  o.(slot lsr 5) <- o.(slot lsr 5) lor (1 lsl (slot land 31))

let occ_clear t lvl slot =
  let o = t.occ.(lvl) in
  o.(slot lsr 5) <- o.(slot lsr 5) land lnot (1 lsl (slot land 31))

(* Detach [a] from its slot ring and update per-level accounting. The
   cached ring minimum stays exact: removing the minimum of a non-empty
   ring rescans that ring — the only chain walk outside cascades, and it
   takes removing the current minimum to trigger it. *)
let unlink t a =
  a.prev.next <- a.next;
  a.next.prev <- a.prev;
  a.next <- a;
  a.prev <- a;
  let lvl = a.lvl and slot = a.slot in
  t.counts.(lvl) <- t.counts.(lvl) - 1;
  t.armed_total <- t.armed_total - 1;
  let s = t.slots.(lvl).(slot) in
  if s.next == s then begin
    occ_clear t lvl slot;
    t.mins.(lvl).(slot) <- max_int
  end
  else if a.at <= t.mins.(lvl).(slot) then begin
    let m = ref max_int in
    let cur = ref s.next in
    while !cur != s do
      if !cur.at < !m then m := !cur.at;
      cur := !cur.next
    done;
    t.mins.(lvl).(slot) <- !m
  end

(* Park [a] (deadline already in [a.at]) in the ring for the current
   clock position [tnow]. Deadlines beyond the wheel horizon are parked
   in the farthest level-4 slot (cyclically just behind now) so the
   nearest-slot scan in [earliest] stays correct; they re-sort on
   cascade. *)
let link t a ~tnow =
  let place =
    if a.at - tnow >= max_span then tnow + max_span - 1 else a.at
  in
  let lvl = level_for (place - tnow) in
  let slot = slot_of lvl place in
  let s = t.slots.(lvl).(slot) in
  if s.next == s then occ_set t lvl slot;
  if a.at < t.mins.(lvl).(slot) then t.mins.(lvl).(slot) <- a.at;
  a.lvl <- lvl;
  a.slot <- slot;
  a.prev <- s.prev;
  a.next <- s;
  s.prev.next <- a;
  s.prev <- a;
  t.counts.(lvl) <- t.counts.(lvl) + 1;
  t.armed_total <- t.armed_total + 1

let rec ctz x = if x land 1 = 1 then 0 else 1 + ctz (x lsr 1)

(* First occupied slot at cyclic distance >= 1 from [base] on level
   [lvl], via the occupancy bitmap; -1 if none. On full wrap-around the
   remaining candidate bits in base's own word are all <= base's bit, so
   lowest-bit-first is cyclic order there too. *)
let next_occupied t lvl base =
  let o = t.occ.(lvl) in
  let w0 = base lsr 5 in
  let above = o.(w0) land lnot ((1 lsl ((base land 31) + 1)) - 1) in
  if above <> 0 then (w0 lsl 5) lor ctz above
  else begin
    let res = ref (-1) in
    let w = ref 1 in
    while !res < 0 && !w <= occ_words do
      let word = (w0 + !w) land (occ_words - 1) in
      if o.(word) <> 0 then res := (word lsl 5) lor ctz o.(word);
      incr w
    done;
    !res
  end

(* Smallest remaining deadline. Per level it suffices to consider the
   slot the clock is in plus the first occupied slot after it: placement
   times are monotone in cyclic slot order within a rotation. Cached ring
   minima make each level O(1). *)
let earliest t ~tnow =
  let best = ref max_int in
  for k = 0 to levels - 1 do
    if t.counts.(k) > 0 then begin
      let base = slot_of k tnow in
      if t.mins.(k).(base) < !best then best := t.mins.(k).(base);
      let i = next_occupied t k base in
      if i >= 0 && i <> base && t.mins.(k).(i) < !best then
        best := t.mins.(k).(i)
    end
  done;
  !best

let ensure_batch t n =
  if Array.length t.batch < n then begin
    let bigger = Array.make (2 * n) t.batch.(0) in
    Array.blit t.batch 0 bigger 0 (Array.length t.batch);
    t.batch <- bigger
  end

(* In-place heapsort of batch[0..n) by aseq: same-deadline alarms fire
   in arm order, and O(n log n) even for huge same-tick batches. *)
let sort_batch b n =
  let swap i j =
    let tmp = b.(i) in
    b.(i) <- b.(j);
    b.(j) <- tmp
  in
  let rec sift i limit =
    let l = (2 * i) + 1 in
    if l < limit then begin
      let m = if l + 1 < limit && b.(l + 1).aseq > b.(l).aseq then l + 1 else l in
      if b.(m).aseq > b.(i).aseq then begin
        swap i m;
        sift m limit
      end
    end
  in
  for i = (n / 2) - 1 downto 0 do
    sift i n
  done;
  for i = n - 1 downto 1 do
    swap 0 i;
    sift 0 i
  done

(* Splice out the slot the clock sits in at every level (top-down),
   collecting due nodes into the batch and relinking the rest by their
   fresh delta. Returns the batch size. *)
let collect_due t ~tnow =
  let n = ref 0 in
  for k = levels - 1 downto 0 do
    if t.counts.(k) > 0 then begin
      let slot = slot_of k tnow in
      let s = t.slots.(k).(slot) in
      if s.next != s then begin
        let cur = ref s.next in
        (* Reset the sentinel first: relinks into this same slot build a
           fresh ring while we walk the old chain via saved pointers. *)
        s.next <- s;
        s.prev <- s;
        occ_clear t k slot;
        t.mins.(k).(slot) <- max_int;
        while !cur != s do
          let a = !cur in
          let nxt = a.next in
          a.next <- a;
          a.prev <- a;
          t.counts.(k) <- t.counts.(k) - 1;
          t.armed_total <- t.armed_total - 1;
          if a.at <= tnow then begin
            a.armed <- false;
            a.queued <- true;
            ensure_batch t (!n + 1);
            t.batch.(!n) <- a;
            incr n
          end
          else begin
            t.c_cascades <- t.c_cascades + 1;
            link t a ~tnow
          end;
          cur := nxt
        done
      end
    end
  done;
  !n

let rec schedule_driver t at =
  let ev =
    Netsim.Sim.schedule_at t.sim ~at:(Int64.of_int at) (fun () ->
        driver_fired t at)
  in
  t.c_drivers <- t.c_drivers + 1;
  t.pending_drivers <- (at, ev) :: t.pending_drivers

and driver_fired t at =
  (match t.pending_drivers with
  | (d, _) :: rest when d = at -> t.pending_drivers <- rest
  | _ -> ());
  if t.armed_total > 0 then begin
    let tnow = Int64.to_int (Netsim.Sim.now t.sim) in
    let n = collect_due t ~tnow in
    (* Restore the driver invariant for whatever remains armed before
       running callbacks (callbacks may re-arm; [arm] handles sooner
       deadlines itself). *)
    if t.armed_total > 0 then begin
      let e = earliest t ~tnow in
      match t.pending_drivers with
      | (d, _) :: _ when d <= e -> ()
      | _ -> schedule_driver t e
    end;
    if n > 0 then begin
      let b = t.batch in
      sort_batch b n;
      for i = 0 to n - 1 do
        let a = b.(i) in
        if a.queued then begin
          a.queued <- false;
          t.c_fires <- t.c_fires + 1;
          a.fire ()
        end
      done
    end;
    (* If the batch left the wheel empty, drop stale drivers so the
       simulator heap drains as with per-alarm events (a stale driver
       executing would advance the clock where a cancelled alarm event
       would merely be skipped). *)
    if t.armed_total = 0 then begin
      List.iter (fun (_, ev) -> Netsim.Sim.cancel ev) t.pending_drivers;
      t.pending_drivers <- []
    end
  end

let arm t a ~at =
  let tnow = Int64.to_int (Netsim.Sim.now t.sim) in
  let at = Int64.to_int at in
  let at = if at < tnow then tnow else at in
  a.queued <- false;
  if a.armed then unlink t a;
  a.at <- at;
  a.aseq <- t.next_aseq;
  t.next_aseq <- t.next_aseq + 1;
  a.armed <- true;
  link t a ~tnow;
  t.c_arms <- t.c_arms + 1;
  match t.pending_drivers with
  | (d, _) :: _ when d <= at -> ()
  | _ -> schedule_driver t at

let arm_delay t a ~delay =
  arm t a ~at:(Int64.add (Netsim.Sim.now t.sim) delay)

let cancel t a =
  a.queued <- false;
  if a.armed then begin
    unlink t a;
    a.armed <- false;
    t.c_cancels <- t.c_cancels + 1;
    if t.armed_total = 0 then begin
      (* Nothing armed: let the simulator heap drain as if the wheel
         never existed (stale drivers would otherwise advance the clock
         where per-alarm events would merely be skipped). *)
      List.iter (fun (_, ev) -> Netsim.Sim.cancel ev) t.pending_drivers;
      t.pending_drivers <- []
    end
  end

(* One wheel per simulator, shared by every endpoint on it. Physical
   equality keyed, small bounded registry (old sims simply fall off). *)
let registry : (Netsim.Sim.t * t) list ref = ref []
let registry_cap = 16

let shared sim =
  let rec find = function
    | [] -> None
    | (s, w) :: _ when s == sim -> Some w
    | _ :: rest -> find rest
  in
  match find !registry with
  | Some w -> w
  | None ->
      let w = create sim in
      let kept =
        if List.length !registry >= registry_cap then
          List.filteri (fun i _ -> i < registry_cap - 1) !registry
        else !registry
      in
      registry := (sim, w) :: kept;
      w
