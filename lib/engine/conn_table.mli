(** Open-addressed connection table keyed by full connection-ID bytes.

    Built for the datagram-dispatch fast path: lookup is linear-probe
    open addressing over a flat string-key array, and [find_sub] probes
    directly against a CID sitting inside a wire-format datagram
    without allocating the key. Full-byte keying means rotated CIDs of
    any length coexist without the silent truncation collisions of an
    int64-keyed table. *)

type 'a t

val create : ?initial:int -> unit -> 'a t
(** [initial] is rounded up to a power of two (default 16). *)

val length : 'a t -> int

val key_of_cid : int64 -> string
(** The 8-byte big-endian encoding of a 64-bit CID — the same bytes the
    wire format carries. *)

val add : 'a t -> string -> 'a -> unit
(** Insert or replace. *)

val find : 'a t -> string -> 'a option

val find_sub : 'a t -> string -> int -> int -> 'a option
(** [find_sub t buf pos len] looks up the key [String.sub buf pos len]
    without building the substring. *)

val mem : 'a t -> string -> bool
val remove : 'a t -> string -> unit
val iter : 'a t -> (string -> 'a -> unit) -> unit
val fold : 'a t -> ('b -> string -> 'a -> 'b) -> 'b -> 'b

val stats : 'a t -> int * int * int
(** (live entries, capacity, tombstones). *)
