type 'a t = {
  sim : Netsim.Sim.t;
  queues : 'a Queue.t array;
  scheduled : bool array;
  batch : int;
  process : int -> 'a -> unit;
  mutable dispatched : int;
  mutable batches : int;
}

let create sim ~shards ?(batch = 64) process =
  if shards <= 0 then invalid_arg "Shard.create: shards must be positive";
  {
    sim;
    queues = Array.init shards (fun _ -> Queue.create ());
    scheduled = Array.make shards false;
    batch;
    process;
    dispatched = 0;
    batches = 0;
  }

let shards t = Array.length t.queues

let rec drain t i () =
  let q = t.queues.(i) in
  t.batches <- t.batches + 1;
  let n = ref 0 in
  while !n < t.batch && not (Queue.is_empty q) do
    let item = Queue.pop q in
    incr n;
    t.dispatched <- t.dispatched + 1;
    t.process i item
  done;
  if Queue.is_empty q then t.scheduled.(i) <- false
  else ignore (Netsim.Sim.schedule t.sim ~delay:0L (drain t i))

let enqueue t i item =
  let i = i mod Array.length t.queues in
  let i = if i < 0 then i + Array.length t.queues else i in
  Queue.push item t.queues.(i);
  if not t.scheduled.(i) then begin
    t.scheduled.(i) <- true;
    ignore (Netsim.Sim.schedule t.sim ~delay:0L (drain t i))
  end

let queued t = Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.queues
let dispatched t = t.dispatched
let batches t = t.batches
