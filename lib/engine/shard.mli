(** Sharded run queues with batched dispatch.

    Work items are enqueued onto one of N shards; each shard drains in
    simulator-time batches via a single delay-0 event per busy shard,
    so a burst of M datagrams costs O(M / batch) simulator events
    instead of M. Processing order within a shard is FIFO. *)

type 'a t

val create :
  Netsim.Sim.t -> shards:int -> ?batch:int -> (int -> 'a -> unit) -> 'a t
(** [create sim ~shards process]: [process shard item] is called for
    each drained item. [batch] (default 64) bounds items drained per
    simulator event; a shard left non-empty reschedules itself at
    delay 0. *)

val shards : 'a t -> int
val enqueue : 'a t -> int -> 'a -> unit
(** [enqueue t i item] queues on shard [i mod shards]. *)

val queued : 'a t -> int
(** Items currently waiting across all shards. *)

val dispatched : 'a t -> int
val batches : 'a t -> int
