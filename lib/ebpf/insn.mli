(** eBPF instruction set: typed representation and 8-byte wire encoding.

    The encoding follows the kernel layout — one 64-bit slot per
    instruction, [opcode:8 | dst:4 | src:4 | off:16 | imm:32],
    little-endian fields; {!Ld_imm64} occupies two consecutive slots.
    Jump offsets are expressed in {e slots} relative to the next
    instruction, as in real eBPF. *)

(** Register index, [0]..[10]. *)
type reg = int

val fp : reg
(** The frame pointer, register 10. Read-only: writes are rejected by the
    {!Verifier}. *)

val max_reg : reg

(** 64-bit / 32-bit ALU operations. *)
type alu_op =
  | Add | Sub | Mul | Div | Or | And | Lsh | Rsh | Neg | Mod | Xor
  | Mov | Arsh

(** Memory access widths. *)
type size = W8 | W16 | W32 | W64

(** Conditional-jump predicates; [Jgt]/[Jge]/[Jlt]/[Jle] are unsigned,
    the [Js*] variants signed, [Jset] tests [dst land src <> 0]. *)
type cond =
  | Jeq | Jgt | Jge | Jset | Jne | Jsgt | Jsge | Jlt | Jle | Jslt | Jsle

(** Second operand of ALU and jump instructions. *)
type operand = Reg of reg | Imm of int32

(** A decoded instruction. *)
type t =
  | Alu64 of alu_op * reg * operand
  | Alu32 of alu_op * reg * operand  (** operates on, and zero-extends, the low 32 bits *)
  | Ld_imm64 of reg * int64          (** two-slot 64-bit immediate load *)
  | Ldx of size * reg * reg * int    (** [dst <- mem[src + off]], zero-extending *)
  | Stx of size * reg * int * reg    (** [mem[dst + off] <- src] *)
  | St of size * reg * int * int32   (** [mem[dst + off] <- imm] *)
  | Ja of int                        (** unconditional jump, slot-relative *)
  | Jcond of cond * reg * operand * int
  | Call of int                      (** host helper call by id; args r1-r5, result r0 *)
  | Exit

val slots : t -> int
(** Number of 64-bit slots the instruction occupies when encoded. *)

val program_slots : t array -> int

val slot_positions : t array -> int array * int
(** [slot_positions prog] is [(pos, total)]: the encoded slot position of
    each instruction and the total slot count. The verifier's jump checks
    and the VM's linker both derive instruction indices from these. *)

val size_bytes : size -> int

exception Decode_error of string

val encode : t array -> string
(** Serialize a program to kernel-format bytecode. *)

val decode : string -> t array
(** Parse bytecode back to instructions.
    @raise Decode_error on malformed input. *)

val pp : t Fmt.t
val pp_program : t array Fmt.t
