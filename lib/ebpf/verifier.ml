(* Static checks on a decoded program, mirroring the paper's PRE admission
   checks (Section 2.1): (i) an exit instruction is present, (ii) all
   instructions are valid (guaranteed by successful decoding; re-checked
   structurally here), (iii) no trivially wrong operation (constant division
   or modulo by zero, shifts past the word size), (iv) all jumps land on an
   instruction boundary inside the program, and (v) read-only registers (r10,
   the frame pointer) are never written. Additionally, frame-pointer-relative
   memory accesses are statically checked against the stack bounds.

   Unlike the kernel verifier this one is deliberately relaxed: backward
   jumps (loops) are allowed, program size is generous. Runtime memory
   monitoring (Vm) catches what static checks cannot. *)

type error =
  | No_exit
  | Bad_register of int * string
  | Write_read_only of int            (* insn index *)
  | Div_by_zero of int
  | Bad_shift of int
  | Bad_jump of int                    (* insn index with out-of-range target *)
  | Bad_stack_access of int * int      (* insn index, offset *)
  | Program_too_large of int
  | Unknown_helper of int * int        (* insn index, helper id *)

let pp_error ppf = function
  | No_exit -> Fmt.string ppf "program contains no exit instruction"
  | Bad_register (i, what) -> Fmt.pf ppf "insn %d: invalid register (%s)" i what
  | Write_read_only i -> Fmt.pf ppf "insn %d: write to read-only register" i
  | Div_by_zero i -> Fmt.pf ppf "insn %d: constant division by zero" i
  | Bad_shift i -> Fmt.pf ppf "insn %d: shift amount out of range" i
  | Bad_jump i -> Fmt.pf ppf "insn %d: jump target out of program" i
  | Bad_stack_access (i, off) ->
    Fmt.pf ppf "insn %d: stack access at offset %d out of bounds" i off
  | Program_too_large n -> Fmt.pf ppf "program too large (%d slots)" n
  | Unknown_helper (i, id) -> Fmt.pf ppf "insn %d: unknown helper %d" i id

let error_to_string e = Fmt.str "%a" pp_error e

let max_slots = 65536

(* Slot position of each instruction and the reverse map as a flat array:
   [of_slot.(s)] is the index of the instruction starting at slot [s], or
   [-1] when [s] falls inside a two-slot lddw. Arrays instead of a
   hashtable: jump checking (here) and jump linking (Vm.link) are both
   O(1) lookups with no hashing. *)
let slot_maps prog =
  let pos, total = Insn.slot_positions prog in
  let of_slot = Array.make total (-1) in
  Array.iteri (fun i p -> of_slot.(p) <- i) pos;
  (pos, of_slot, total)

let check_reg i errs ~what r =
  if r < 0 || r > Insn.max_reg then errs := Bad_register (i, what) :: !errs

let check_writable i errs r =
  if r = Insn.fp then errs := Write_read_only i :: !errs

(* [stack_size] is the pluglet stack size in bytes; fp points one past the
   top, so valid offsets are [-stack_size, -size_of_access]. *)
let verify ?(stack_size = 512) ?(known_helper = fun _ -> true) prog =
  let errs = ref [] in
  let pos, of_slot, total = slot_maps prog in
  if total > max_slots then errs := [ Program_too_large total ]
  else begin
    let has_exit = Array.exists (fun i -> i = Insn.Exit) prog in
    if not has_exit then errs := No_exit :: !errs;
    let check_jump i off =
      let target = pos.(i) + Insn.slots prog.(i) + off in
      if target < 0 || target >= total || of_slot.(target) < 0 then
        errs := Bad_jump i :: !errs
    in
    let check_stack i sz base off =
      if base = Insn.fp then begin
        let bytes = Insn.size_bytes sz in
        if off < -stack_size || off + bytes > 0 then
          errs := Bad_stack_access (i, off) :: !errs
      end
    in
    Array.iteri
      (fun i insn ->
         match insn with
         | Insn.Alu64 (op, dst, operand) | Insn.Alu32 (op, dst, operand) ->
           check_reg i errs ~what:"dst" dst;
           check_writable i errs dst;
           (match operand with
            | Insn.Reg r -> check_reg i errs ~what:"src" r
            | Insn.Imm v ->
              (match op with
               | Insn.Div | Insn.Mod ->
                 if v = 0l then errs := Div_by_zero i :: !errs
               | Insn.Lsh | Insn.Rsh | Insn.Arsh ->
                 let bits =
                   match insn with Insn.Alu32 _ -> 32l | _ -> 64l
                 in
                 if v < 0l || v >= bits then errs := Bad_shift i :: !errs
               | _ -> ()))
         | Insn.Ld_imm64 (dst, _) ->
           check_reg i errs ~what:"dst" dst;
           check_writable i errs dst
         | Insn.Ldx (sz, dst, src, off) ->
           check_reg i errs ~what:"dst" dst;
           check_reg i errs ~what:"src" src;
           check_writable i errs dst;
           check_stack i sz src off
         | Insn.Stx (sz, dst, off, src) ->
           check_reg i errs ~what:"dst" dst;
           check_reg i errs ~what:"src" src;
           check_stack i sz dst off
         | Insn.St (sz, dst, off, _) ->
           check_reg i errs ~what:"dst" dst;
           check_stack i sz dst off
         | Insn.Ja off -> check_jump i off
         | Insn.Jcond (_, dst, operand, off) ->
           check_reg i errs ~what:"dst" dst;
           (match operand with
            | Insn.Reg r -> check_reg i errs ~what:"src" r
            | Insn.Imm _ -> ());
           check_jump i off
         | Insn.Call id ->
           if not (known_helper id) then errs := Unknown_helper (i, id) :: !errs
         | Insn.Exit -> ())
      prog
  end;
  match List.rev !errs with [] -> Ok () | es -> Error es
