(* eBPF instruction set: typed representation and 8-byte wire encoding.

   Encoding follows the kernel layout: one 64-bit slot per instruction,
   [opcode:8 | dst:4 | src:4 | off:16 | imm:32], little-endian fields.
   [Ld_imm64] (opcode 0x18) occupies two consecutive slots. *)

type reg = int (* 0..10; r10 is the read-only frame pointer *)

let fp = 10
let max_reg = 10

type alu_op =
  | Add | Sub | Mul | Div | Or | And | Lsh | Rsh | Neg | Mod | Xor
  | Mov | Arsh

type size = W8 | W16 | W32 | W64

type cond =
  | Jeq | Jgt | Jge | Jset | Jne | Jsgt | Jsge | Jlt | Jle | Jslt | Jsle

type operand = Reg of reg | Imm of int32

type t =
  | Alu64 of alu_op * reg * operand
  | Alu32 of alu_op * reg * operand
  | Ld_imm64 of reg * int64
  | Ldx of size * reg * reg * int        (* dst <- *(src + off) *)
  | Stx of size * reg * int * reg        (* *(dst + off) <- src *)
  | St of size * reg * int * int32       (* *(dst + off) <- imm *)
  | Ja of int
  | Jcond of cond * reg * operand * int
  | Call of int                          (* helper id in imm *)
  | Exit

(* Number of 64-bit slots an instruction occupies in the encoded form. *)
let slots = function Ld_imm64 _ -> 2 | _ -> 1

let program_slots prog = Array.fold_left (fun acc i -> acc + slots i) 0 prog

(* Encoded slot position of each instruction, plus the total slot count.
   Slot arithmetic lives here, next to the encoding that defines it; the
   verifier and the VM linker both build on this when turning slot-relative
   jump offsets into instruction indices. *)
let slot_positions prog =
  let n = Array.length prog in
  let pos = Array.make n 0 in
  let total = ref 0 in
  for i = 0 to n - 1 do
    pos.(i) <- !total;
    total := !total + slots prog.(i)
  done;
  (pos, !total)

let alu_code = function
  | Add -> 0x0 | Sub -> 0x1 | Mul -> 0x2 | Div -> 0x3 | Or -> 0x4
  | And -> 0x5 | Lsh -> 0x6 | Rsh -> 0x7 | Neg -> 0x8 | Mod -> 0x9
  | Xor -> 0xa | Mov -> 0xb | Arsh -> 0xc

let alu_of_code = function
  | 0x0 -> Some Add | 0x1 -> Some Sub | 0x2 -> Some Mul | 0x3 -> Some Div
  | 0x4 -> Some Or | 0x5 -> Some And | 0x6 -> Some Lsh | 0x7 -> Some Rsh
  | 0x8 -> Some Neg | 0x9 -> Some Mod | 0xa -> Some Xor | 0xb -> Some Mov
  | 0xc -> Some Arsh | _ -> None

let cond_code = function
  | Jeq -> 0x1 | Jgt -> 0x2 | Jge -> 0x3 | Jset -> 0x4 | Jne -> 0x5
  | Jsgt -> 0x6 | Jsge -> 0x7 | Jlt -> 0xa | Jle -> 0xb | Jslt -> 0xc
  | Jsle -> 0xd

let cond_of_code = function
  | 0x1 -> Some Jeq | 0x2 -> Some Jgt | 0x3 -> Some Jge | 0x4 -> Some Jset
  | 0x5 -> Some Jne | 0x6 -> Some Jsgt | 0x7 -> Some Jsge | 0xa -> Some Jlt
  | 0xb -> Some Jle | 0xc -> Some Jslt | 0xd -> Some Jsle | _ -> None

let size_code = function W32 -> 0x00 | W16 -> 0x08 | W8 -> 0x10 | W64 -> 0x18

let size_of_code = function
  | 0x00 -> Some W32 | 0x08 -> Some W16 | 0x10 -> Some W8 | 0x18 -> Some W64
  | _ -> None

let size_bytes = function W8 -> 1 | W16 -> 2 | W32 -> 4 | W64 -> 8

(* Instruction classes *)
let _cls_ld = 0x00
let cls_ldx = 0x01
let cls_st = 0x02
let cls_stx = 0x03
let cls_alu32 = 0x04
let cls_jmp = 0x05
let cls_alu64 = 0x07

let mode_mem = 0x60
let _mode_imm = 0x00

exception Decode_error of string

(* Pack one raw slot. *)
let pack ~opcode ~dst ~src ~off ~imm =
  let open Int64 in
  let off16 = off land 0xffff in
  let imm32 = Int32.to_int imm land 0xffffffff in
  logor
    (of_int (opcode land 0xff))
    (logor
       (shift_left (of_int ((dst land 0xf) lor ((src land 0xf) lsl 4))) 8)
       (logor
          (shift_left (of_int off16) 16)
          (shift_left (of_int imm32) 32)))

let unpack slot =
  let open Int64 in
  let opcode = to_int (logand slot 0xffL) in
  let regs = to_int (logand (shift_right_logical slot 8) 0xffL) in
  let dst = regs land 0xf and src = (regs lsr 4) land 0xf in
  let off =
    let v = to_int (logand (shift_right_logical slot 16) 0xffffL) in
    if v >= 0x8000 then v - 0x10000 else v
  in
  let imm = Int64.to_int32 (shift_right_logical slot 32) in
  (opcode, dst, src, off, imm)

let encode_insn buf i =
  let put slot = Buffer.add_int64_le buf slot in
  match i with
  | Alu64 (op, dst, operand) | Alu32 (op, dst, operand) ->
    let cls = (match i with Alu64 _ -> cls_alu64 | _ -> cls_alu32) in
    let src_bit, src, imm =
      match operand with
      | Reg r -> (0x08, r, 0l)
      | Imm v -> (0x00, 0, v)
    in
    put (pack ~opcode:(cls lor src_bit lor (alu_code op lsl 4))
           ~dst ~src ~off:0 ~imm)
  | Ld_imm64 (dst, v) ->
    let lo = Int64.to_int32 (Int64.logand v 0xffffffffL) in
    let hi = Int64.to_int32 (Int64.shift_right_logical v 32) in
    put (pack ~opcode:0x18 ~dst ~src:0 ~off:0 ~imm:lo);
    put (pack ~opcode:0 ~dst:0 ~src:0 ~off:0 ~imm:hi)
  | Ldx (sz, dst, src, off) ->
    put (pack ~opcode:(cls_ldx lor size_code sz lor mode_mem)
           ~dst ~src ~off ~imm:0l)
  | Stx (sz, dst, off, src) ->
    put (pack ~opcode:(cls_stx lor size_code sz lor mode_mem)
           ~dst ~src ~off ~imm:0l)
  | St (sz, dst, off, imm) ->
    put (pack ~opcode:(cls_st lor size_code sz lor mode_mem)
           ~dst ~src:0 ~off ~imm)
  | Ja off -> put (pack ~opcode:0x05 ~dst:0 ~src:0 ~off ~imm:0l)
  | Jcond (c, dst, operand, off) ->
    let src_bit, src, imm =
      match operand with Reg r -> (0x08, r, 0l) | Imm v -> (0x00, 0, v)
    in
    put (pack ~opcode:(cls_jmp lor src_bit lor (cond_code c lsl 4))
           ~dst ~src ~off ~imm)
  | Call id -> put (pack ~opcode:0x85 ~dst:0 ~src:0 ~off:0 ~imm:(Int32.of_int id))
  | Exit -> put (pack ~opcode:0x95 ~dst:0 ~src:0 ~off:0 ~imm:0l)

let encode prog =
  let buf = Buffer.create (16 * Array.length prog) in
  Array.iter (encode_insn buf) prog;
  Buffer.contents buf

let decode bytes =
  let n = String.length bytes in
  if n mod 8 <> 0 then raise (Decode_error "bytecode length not a multiple of 8");
  let slots_count = n / 8 in
  let slot i = String.get_int64_le bytes (i * 8) in
  let out = ref [] in
  let i = ref 0 in
  while !i < slots_count do
    let opcode, dst, src, off, imm = unpack (slot !i) in
    let cls = opcode land 0x07 in
    let insn =
      if opcode = 0x18 then begin
        if !i + 1 >= slots_count then raise (Decode_error "truncated lddw");
        let _, _, _, _, hi = unpack (slot (!i + 1)) in
        incr i;
        let lo64 = Int64.logand (Int64.of_int32 imm) 0xffffffffL in
        let hi64 = Int64.shift_left (Int64.logand (Int64.of_int32 hi) 0xffffffffL) 32 in
        Ld_imm64 (dst, Int64.logor hi64 lo64)
      end
      else if opcode = 0x85 then Call (Int32.to_int imm)
      else if opcode = 0x95 then Exit
      else if opcode = 0x05 then Ja off
      else if cls = cls_alu64 || cls = cls_alu32 then begin
        match alu_of_code (opcode lsr 4) with
        | None -> raise (Decode_error (Printf.sprintf "bad ALU opcode 0x%02x" opcode))
        | Some op ->
          let operand = if opcode land 0x08 <> 0 then Reg src else Imm imm in
          if cls = cls_alu64 then Alu64 (op, dst, operand)
          else Alu32 (op, dst, operand)
      end
      else if cls = cls_jmp then begin
        match cond_of_code (opcode lsr 4) with
        | None -> raise (Decode_error (Printf.sprintf "bad JMP opcode 0x%02x" opcode))
        | Some c ->
          let operand = if opcode land 0x08 <> 0 then Reg src else Imm imm in
          Jcond (c, dst, operand, off)
      end
      else if cls = cls_ldx && opcode land 0xe0 = mode_mem then begin
        match size_of_code (opcode land 0x18) with
        | None -> raise (Decode_error "bad LDX size")
        | Some sz -> Ldx (sz, dst, src, off)
      end
      else if cls = cls_stx && opcode land 0xe0 = mode_mem then begin
        match size_of_code (opcode land 0x18) with
        | None -> raise (Decode_error "bad STX size")
        | Some sz -> Stx (sz, dst, off, src)
      end
      else if cls = cls_st && opcode land 0xe0 = mode_mem then begin
        match size_of_code (opcode land 0x18) with
        | None -> raise (Decode_error "bad ST size")
        | Some sz -> St (sz, dst, off, imm)
      end
      else raise (Decode_error (Printf.sprintf "unknown opcode 0x%02x" opcode))
    in
    out := insn :: !out;
    incr i
  done;
  Array.of_list (List.rev !out)

let pp_reg ppf r = if r = fp then Fmt.string ppf "fp" else Fmt.pf ppf "r%d" r

let alu_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Or -> "or"
  | And -> "and" | Lsh -> "lsh" | Rsh -> "rsh" | Neg -> "neg" | Mod -> "mod"
  | Xor -> "xor" | Mov -> "mov" | Arsh -> "arsh"

let cond_name = function
  | Jeq -> "jeq" | Jgt -> "jgt" | Jge -> "jge" | Jset -> "jset" | Jne -> "jne"
  | Jsgt -> "jsgt" | Jsge -> "jsge" | Jlt -> "jlt" | Jle -> "jle"
  | Jslt -> "jslt" | Jsle -> "jsle"

let size_name = function W8 -> "b" | W16 -> "h" | W32 -> "w" | W64 -> "dw"

let pp_operand ppf = function
  | Reg r -> pp_reg ppf r
  | Imm v -> Fmt.pf ppf "%ld" v

let pp ppf = function
  | Alu64 (op, d, o) -> Fmt.pf ppf "%s %a, %a" (alu_name op) pp_reg d pp_operand o
  | Alu32 (op, d, o) -> Fmt.pf ppf "%s32 %a, %a" (alu_name op) pp_reg d pp_operand o
  | Ld_imm64 (d, v) -> Fmt.pf ppf "lddw %a, %Ld" pp_reg d v
  | Ldx (sz, d, s, off) ->
    Fmt.pf ppf "ldx%s %a, [%a%+d]" (size_name sz) pp_reg d pp_reg s off
  | Stx (sz, d, off, s) ->
    Fmt.pf ppf "stx%s [%a%+d], %a" (size_name sz) pp_reg d off pp_reg s
  | St (sz, d, off, v) ->
    Fmt.pf ppf "st%s [%a%+d], %ld" (size_name sz) pp_reg d off v
  | Ja off -> Fmt.pf ppf "ja %+d" off
  | Jcond (c, d, o, off) ->
    Fmt.pf ppf "%s %a, %a, %+d" (cond_name c) pp_reg d pp_operand o off
  | Call id -> Fmt.pf ppf "call %d" id
  | Exit -> Fmt.string ppf "exit"

let pp_program ppf prog =
  Array.iteri (fun i insn -> Fmt.pf ppf "%4d: %a@." i pp insn) prog
