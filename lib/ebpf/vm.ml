(* Interpreting eBPF virtual machine with runtime memory monitoring.

   The paper's PRE injects bounds-checking instructions when JITing pluglet
   bytecode; this interpreter performs the same checks on every load and
   store instead. Memory is organized as disjoint *regions* (pluglet stack,
   plugin heap, host-provided input/output buffers) mapped at synthetic
   64-bit base addresses. Any access outside a mapped region, or a write to
   a read-only region, raises [Memory_violation] — the host reacts by
   removing the plugin and terminating the connection (Section 2.1).

   Execution comes in two flavours sharing the ALU/jump/monitor semantics:

   - [run], the reference interpreter: rebuilds the slot maps and resolves
     every jump through them on each invocation. It is the executable
     specification the fast path is differentially tested against.
   - [link] + [run_linked], the production path: the program is linked
     once (jump offsets resolved to instruction indices, immediates
     pre-widened to 64 bits) and then each run is a tight match over a
     flat array with no per-run setup work.

   Regions occupy disjoint 4 GiB-aligned windows of address space, so the
   window index [addr lsr 32] identifies the region: resolution is a dense
   table lookup plus a last-hit memo, not a list scan. Windows of unmapped
   regions are recycled, which keeps the table small even though transient
   argument buffers are mapped and unmapped around every protoop call. *)

type perm = Ro | Rw

type region = {
  rid : int;
  rname : string;
  base : int64;
  window : int; (* = base lsr 32; regions never span windows *)
  mem : Bytes.t;
  perm : perm;
}

exception Memory_violation of string
exception Fuel_exhausted
exception Helper_failure of string

type t = {
  mutable region_tbl : region option array; (* indexed by addr lsr 32 *)
  mutable last_region : region; (* memo for same-region access streaks *)
  mutable free_windows : int list; (* windows recycled after unmap *)
  mutable next_window : int;
  mutable helpers : helper option array; (* dense, indexed by helper id *)
  stack : region; (* persistent pluglet stack, zeroed between runs *)
  stack_size : int;
  regb : Bytes.t; (* fast-path register file: 11 x 8 raw bytes, reset per
                     run. Raw bytes rather than an [int64 array] so the
                     interpreter loop reads and writes registers through
                     the bytes-access primitives, which the compiler keeps
                     unboxed — an [int64 array] element store allocates a
                     box on every instruction. *)
  scratch_args : int64 array; (* r1..r5 view passed to helpers *)
  mutable next_rid : int;
  max_insns : int;
  mutable executed : int; (* instructions executed over the VM lifetime *)
}

and helper = t -> int64 array -> int64

let region_alignment = 0x0001_0000_0000L (* 4 GiB of address space per region *)

let window_bits = 32

(* Window 0 is never handed out, so null-ish pluglet pointers fault. The
   stack occupies window 1 from creation: every VM — and therefore every
   PRE of a plugin instance — has the same memory layout, and per-run
   stack setup is a [Bytes.fill] rather than an allocate/map/unmap cycle. *)
let create ?(stack_size = 512) ?(max_insns = 4_000_000) () =
  let stack =
    {
      rid = 0;
      rname = "stack";
      base = region_alignment;
      window = 1;
      mem = Bytes.make stack_size '\000';
      perm = Rw;
    }
  in
  let region_tbl = Array.make 8 None in
  region_tbl.(1) <- Some stack;
  {
    region_tbl;
    last_region = stack;
    free_windows = [];
    next_window = 2;
    helpers = Array.make 64 None;
    stack;
    stack_size;
    regb = Bytes.make 88 '\000';
    scratch_args = Array.make 5 0L;
    next_rid = 1;
    max_insns;
    executed = 0;
  }

let register_helper vm id f =
  if id < 0 then invalid_arg "Vm.register_helper: negative helper id";
  if id >= Array.length vm.helpers then begin
    let grown =
      Array.make (max (id + 1) (2 * Array.length vm.helpers)) None
    in
    Array.blit vm.helpers 0 grown 0 (Array.length vm.helpers);
    vm.helpers <- grown
  end;
  vm.helpers.(id) <- Some f

let map_region vm ~name ~perm mem =
  let window =
    match vm.free_windows with
    | w :: rest ->
      vm.free_windows <- rest;
      w
    | [] ->
      let w = vm.next_window in
      vm.next_window <- w + 1;
      w
  in
  if window >= Array.length vm.region_tbl then begin
    let grown =
      Array.make (max (window + 1) (2 * Array.length vm.region_tbl)) None
    in
    Array.blit vm.region_tbl 0 grown 0 (Array.length vm.region_tbl);
    vm.region_tbl <- grown
  end;
  let r =
    {
      rid = vm.next_rid;
      rname = name;
      base = Int64.shift_left (Int64.of_int window) window_bits;
      window;
      mem;
      perm;
    }
  in
  vm.next_rid <- vm.next_rid + 1;
  vm.region_tbl.(window) <- Some r;
  r

let unmap_region vm r =
  if r.window < Array.length vm.region_tbl then
    match vm.region_tbl.(r.window) with
    | Some r' when r'.rid = r.rid ->
      vm.region_tbl.(r.window) <- None;
      vm.free_windows <- r.window :: vm.free_windows;
      if vm.last_region.rid = r.rid then vm.last_region <- vm.stack
    | _ -> ()

let out_of_region len addr =
  raise
    (Memory_violation
       (Printf.sprintf "access of %d bytes at 0x%Lx outside any region" len
          addr))

(* O(1) region resolution: the access's window indexes the dense table;
   the last-hit memo short-circuits the common same-region streak. *)
let region_at vm addr len =
  let w = Int64.to_int (Int64.shift_right_logical addr window_bits) in
  if vm.last_region.window = w then vm.last_region
  else
    let tbl = vm.region_tbl in
    if w < Array.length tbl then
      match tbl.(w) with
      | Some r ->
        vm.last_region <- r;
        r
      | None -> out_of_region len addr
    else out_of_region len addr

let resolve vm ~write addr len =
  let r = region_at vm addr len in
  (* The window matched, so the offset is just the low 32 bits; a negative
     [len] or an access running past the region end is a violation, exactly
     as the old fits-in-one-region scan decided. *)
  let off = Int64.to_int (Int64.logand addr 0xffff_ffffL) in
  if len < 0 || len > Bytes.length r.mem - off then out_of_region len addr;
  if write && r.perm = Ro then
    raise
      (Memory_violation
         (Printf.sprintf "write of %d bytes at 0x%Lx in read-only region %s"
            len addr r.rname));
  (r, off)

let load vm addr sz =
  let len = Insn.size_bytes sz in
  let r, off = resolve vm ~write:false addr len in
  match sz with
  | Insn.W8 -> Int64.of_int (Char.code (Bytes.get r.mem off))
  | Insn.W16 -> Int64.of_int (Bytes.get_uint16_le r.mem off)
  | Insn.W32 ->
    Int64.logand (Int64.of_int32 (Bytes.get_int32_le r.mem off)) 0xffffffffL
  | Insn.W64 -> Bytes.get_int64_le r.mem off

let store vm addr sz v =
  let len = Insn.size_bytes sz in
  let r, off = resolve vm ~write:true addr len in
  match sz with
  | Insn.W8 -> Bytes.set_uint8 r.mem off (Int64.to_int v land 0xff)
  | Insn.W16 -> Bytes.set_uint16_le r.mem off (Int64.to_int v land 0xffff)
  | Insn.W32 -> Bytes.set_int32_le r.mem off (Int64.to_int32 v)
  | Insn.W64 -> Bytes.set_int64_le r.mem off v

(* Reads [len] bytes crossing no region boundary; used by helpers
   (pl_memcpy & co) which must obey the same monitor as bytecode. *)
let read_bytes vm addr len =
  let r, off = resolve vm ~write:false addr len in
  Bytes.sub r.mem off len

let write_bytes vm addr b =
  let len = Bytes.length b in
  let r, off = resolve vm ~write:true addr len in
  Bytes.blit b 0 r.mem off len

let fill_bytes vm addr len c =
  let r, off = resolve vm ~write:true addr len in
  Bytes.fill r.mem off len c

let u64_of_i32 v = Int64.logand (Int64.of_int32 v) 0xffffffffL

let alu64 op a b =
  let open Int64 in
  match op with
  | Insn.Add -> add a b
  | Insn.Sub -> sub a b
  | Insn.Mul -> mul a b
  | Insn.Div -> if b = 0L then 0L else unsigned_div a b
  | Insn.Mod -> if b = 0L then a else unsigned_rem a b
  | Insn.Or -> logor a b
  | Insn.And -> logand a b
  | Insn.Xor -> logxor a b
  | Insn.Lsh -> shift_left a (to_int (logand b 63L))
  | Insn.Rsh -> shift_right_logical a (to_int (logand b 63L))
  | Insn.Arsh -> shift_right a (to_int (logand b 63L))
  | Insn.Mov -> b
  | Insn.Neg -> neg a

let alu32 op a b =
  let a32 = Int64.to_int32 a and b32 = Int64.to_int32 b in
  let open Int32 in
  let r =
    match op with
    | Insn.Add -> add a32 b32
    | Insn.Sub -> sub a32 b32
    | Insn.Mul -> mul a32 b32
    | Insn.Div -> if b32 = 0l then 0l else unsigned_div a32 b32
    | Insn.Mod -> if b32 = 0l then a32 else unsigned_rem a32 b32
    | Insn.Or -> logor a32 b32
    | Insn.And -> logand a32 b32
    | Insn.Xor -> logxor a32 b32
    | Insn.Lsh -> shift_left a32 (Int32.to_int (logand b32 31l))
    | Insn.Rsh -> shift_right_logical a32 (Int32.to_int (logand b32 31l))
    | Insn.Arsh -> shift_right a32 (Int32.to_int (logand b32 31l))
    | Insn.Mov -> b32
    | Insn.Neg -> neg a32
  in
  u64_of_i32 r

let jump_taken c a b =
  let u = Int64.unsigned_compare a b and s = Int64.compare a b in
  match c with
  | Insn.Jeq -> a = b
  | Insn.Jne -> a <> b
  | Insn.Jgt -> u > 0
  | Insn.Jge -> u >= 0
  | Insn.Jlt -> u < 0
  | Insn.Jle -> u <= 0
  | Insn.Jsgt -> s > 0
  | Insn.Jsge -> s >= 0
  | Insn.Jslt -> s < 0
  | Insn.Jsle -> s <= 0
  | Insn.Jset -> Int64.logand a b <> 0L

(* The stack is persistent but its contents never leak between runs. *)
let reset_stack vm = Bytes.fill vm.stack.mem 0 vm.stack_size '\000'

let fp_value vm = Int64.add vm.stack.base (Int64.of_int vm.stack_size)

(* Reference interpreter: executes the decoded form directly, resolving
   every jump through freshly built slot maps. Returns r0. *)
let run vm ?(args = [||]) prog =
  reset_stack vm;
  let pos, of_slot, total = Verifier.slot_maps prog in
  let regs = Array.make 11 0L in
  Array.iteri (fun i v -> if i < 5 then regs.(i + 1) <- v) args;
  regs.(Insn.fp) <- fp_value vm;
  let operand_value = function
    | Insn.Reg r -> regs.(r)
    | Insn.Imm v -> Int64.of_int32 v
  in
  let fuel = ref vm.max_insns in
  let pc = ref 0 in
  let result = ref 0L in
  let finished = ref false in
  while not !finished do
    if !fuel <= 0 then raise Fuel_exhausted;
    decr fuel;
    vm.executed <- vm.executed + 1;
    let insn = prog.(!pc) in
    let next = !pc + 1 in
    let goto off =
      let target_slot = pos.(!pc) + Insn.slots insn + off in
      if target_slot >= 0 && target_slot < total && of_slot.(target_slot) >= 0
      then pc := of_slot.(target_slot)
      else
        (* Unreachable for verified programs. *)
        raise (Memory_violation "jump to invalid slot")
    in
    match insn with
    | Insn.Alu64 (op, dst, operand) ->
      regs.(dst) <- alu64 op regs.(dst) (operand_value operand);
      pc := next
    | Insn.Alu32 (op, dst, operand) ->
      regs.(dst) <- alu32 op regs.(dst) (operand_value operand);
      pc := next
    | Insn.Ld_imm64 (dst, v) ->
      regs.(dst) <- v;
      pc := next
    | Insn.Ldx (sz, dst, src, off) ->
      regs.(dst) <- load vm (Int64.add regs.(src) (Int64.of_int off)) sz;
      pc := next
    | Insn.Stx (sz, dst, off, src) ->
      store vm (Int64.add regs.(dst) (Int64.of_int off)) sz regs.(src);
      pc := next
    | Insn.St (sz, dst, off, imm) ->
      store vm
        (Int64.add regs.(dst) (Int64.of_int off))
        sz (Int64.of_int32 imm);
      pc := next
    | Insn.Ja off -> goto off
    | Insn.Jcond (c, dst, operand, off) ->
      if jump_taken c regs.(dst) (operand_value operand) then goto off
      else pc := next
    | Insn.Call id -> (
      match
        (if id >= 0 && id < Array.length vm.helpers then vm.helpers.(id)
         else None)
      with
      | None -> raise (Helper_failure (Printf.sprintf "helper %d missing" id))
      | Some f ->
        let call_args = Array.sub regs 1 5 in
        regs.(0) <- f vm call_args;
        (* r1-r5 are clobbered by calls, per the eBPF convention. *)
        for r = 1 to 5 do
          regs.(r) <- 0L
        done;
        pc := next)
    | Insn.Exit ->
      result := regs.(0);
      finished := true
  done;
  !result

(* ------------------------------------------------------------------ *)
(* Link-once fast path                                                 *)
(* ------------------------------------------------------------------ *)

(* The linked form of a program is a flat [int array], four slots per
   instruction: [op; a; b; c]. Decoding an instruction is three or four
   adjacent unboxed reads from one array — no per-instruction heap block,
   no pointer chase, and the opcode match compiles to a single jump
   table. Jump targets are absolute instruction indices (or -1 for a
   target the verifier would reject, trapping lazily like the reference
   path); register numbers, offsets and 32-bit-origin immediates are
   plain (sign-extended) [int]s, widened with [Int64.of_int] — a register
   sign-extend — where the ALU consumes them. True 64-bit [Ld_imm64]
   payloads live out-of-line in [pool], read back with an unboxed
   primitive. The hot instruction classes are fully specialized at link
   time: one opcode per 64-bit ALU op and operand kind, per access size,
   and per jump condition, so executing them costs one dispatch — only
   the rare 32-bit ALU group keeps a secondary dispatch (on an operator
   index, see [alu32_seti]). *)
type linked_prog = {
  ops : int array; (* 4 slots per instruction: op, a, b, c *)
  pool : Bytes.t; (* native-endian Ld_imm64 payloads, indexed by byte *)
}

(* Opcode assignments. The [exec] match in [run_linked] must mirror this
   table literally — it is differentially tested against the reference
   interpreter over every instruction class (test_ebpf's generated
   programs and ALU/jump oracles). *)
let f_add64_rr = 0

and f_add64_ri = 1

and f_sub64_rr = 2

and f_sub64_ri = 3

and f_mul64_rr = 4

and f_mul64_ri = 5

and f_div64_rr = 6

and f_div64_ri = 7

and f_mov64_rr = 8

and f_mov64_ri = 9

and f_or64_rr = 10

and f_or64_ri = 11

and f_and64_rr = 12

and f_and64_ri = 13

and f_xor64_rr = 14

and f_xor64_ri = 15

and f_lsh64_rr = 16

and f_lsh64_ri = 17

and f_rsh64_rr = 18

and f_rsh64_ri = 19

and f_arsh64_rr = 20

and f_arsh64_ri = 21

and f_mod64_rr = 22

and f_mod64_ri = 23

and f_neg64 = 24

and f_alu32_rr = 25 (* c = alu_op index *)

and f_alu32_ri = 26 (* c = alu_op index *)

and f_ld_imm64 = 27 (* b = pool byte offset *)

and f_ldx8 = 28 (* a = dst, b = src, c = off *)

and f_ldx16 = 29

and f_ldx32 = 30

and f_ldx64 = 31

and f_stx8 = 32 (* a = dst, b = off, c = src *)

and f_stx16 = 33

and f_stx32 = 34

and f_stx64 = 35

and f_st8 = 36 (* a = dst, b = off, c = imm *)

and f_st16 = 37

and f_st32 = 38

and f_st64 = 39

and f_ja = 40 (* a = target *)

and f_jeq_rr = 41 (* rr: a = dst, b = src, c = target *)

and f_jeq_ri = 42 (* ri: a = dst, b = imm, c = target *)

and f_jne_rr = 43

and f_jne_ri = 44

and f_jgt_rr = 45

and f_jgt_ri = 46

and f_jge_rr = 47

and f_jge_ri = 48

and f_jlt_rr = 49

and f_jlt_ri = 50

and f_jle_rr = 51

and f_jle_ri = 52

and f_jsgt_rr = 53

and f_jsgt_ri = 54

and f_jsge_rr = 55

and f_jsge_ri = 56

and f_jslt_rr = 57

and f_jslt_ri = 58

and f_jsle_rr = 59

and f_jsle_ri = 60

and f_jset_rr = 61

and f_jset_ri = 62

and f_call = 63 (* a = helper id *)

and f_exit = 64

and f_trap_badreg = 65
(* an instruction naming a register outside r0..r10: executing it traps
   exactly like the reference path's out-of-bounds array access, but it
   must not poke past the 88-byte register file *)

(* Superinstructions: the pair patterns the PLC compiler emits most when
   shuffling locals through the stack (measured on the EWMA/RTT pluglet
   mix). A fused opcode means "execute this instruction, then its
   successor, in one dispatch"; the successor keeps its own four slots
   untouched, so a jump landing on it, an overlapping fusion, and the
   one-fuel-left edge (which executes just the first half and lets the
   loop head trap) are all correct by construction. *)
and f_movrr_ldx64 = 66 (* mov64_rr + ldx64 *)

and f_stx64_movri = 67 (* stx64 + mov64_ri *)

and f_stx64_ldx64 = 68 (* stx64 + ldx64 *)

and f_movri_movrr = 69 (* mov64_ri + mov64_rr *)

and f_ldx64_stx64 = 70 (* ldx64 + stx64 *)

and f_movri_stx64 = 71 (* mov64_ri + stx64 *)

and f_ldx64_mulrr = 72 (* ldx64 + mul64_rr *)

and f_ldx64_addrr = 73 (* ldx64 + add64_rr *)

(* Operator index for the generic 32-bit ALU opcodes; [alu32_seti]
   dispatches on the same numbering. *)
let alu_op_index = function
  | Insn.Add -> 0
  | Insn.Sub -> 1
  | Insn.Mul -> 2
  | Insn.Div -> 3
  | Insn.Or -> 4
  | Insn.And -> 5
  | Insn.Lsh -> 6
  | Insn.Rsh -> 7
  | Insn.Neg -> 8
  | Insn.Mod -> 9
  | Insn.Xor -> 10
  | Insn.Mov -> 11
  | Insn.Arsh -> 12

let reg_ok r = r >= 0 && r <= 10

let link prog =
  let pos, of_slot, total = Verifier.slot_maps prog in
  (* Targets are stored pre-scaled by 4 — the run loop's [pc] is the
     instruction's base index in [ops], so a taken jump is a register
     move, with no scaling on the hot path. -1 still marks a target the
     verifier would reject (trapped lazily, like the reference path). *)
  let target i off =
    let t = pos.(i) + Insn.slots prog.(i) + off in
    if t >= 0 && t < total then 4 * of_slot.(t) else -1
  in
  let n = Array.length prog in
  (* One sentinel instruction past the end: falling off the program traps
     through the ordinary dispatch, so the run loop needs no per-step
     bounds check on [pc] (jump targets are validated at link time and
     sequential flow can reach at most the sentinel). *)
  let ops = Array.make ((4 * n) + 4) 0 in
  ops.(4 * n) <- f_trap_badreg;
  let pool = Buffer.create 16 in
  Array.iteri
    (fun i insn ->
      let base = 4 * i in
      let set op a b c =
        ops.(base) <- op;
        ops.(base + 1) <- a;
        ops.(base + 2) <- b;
        ops.(base + 3) <- c
      in
      match insn with
      | Insn.Alu64 (op, dst, Insn.Reg src) when reg_ok dst && reg_ok src ->
        let o =
          match op with
          | Insn.Add -> f_add64_rr
          | Insn.Sub -> f_sub64_rr
          | Insn.Mul -> f_mul64_rr
          | Insn.Div -> f_div64_rr
          | Insn.Mov -> f_mov64_rr
          | Insn.Or -> f_or64_rr
          | Insn.And -> f_and64_rr
          | Insn.Xor -> f_xor64_rr
          | Insn.Lsh -> f_lsh64_rr
          | Insn.Rsh -> f_rsh64_rr
          | Insn.Arsh -> f_arsh64_rr
          | Insn.Mod -> f_mod64_rr
          | Insn.Neg -> f_neg64
        in
        set o dst src 0
      | Insn.Alu64 (op, dst, Insn.Imm v) when reg_ok dst -> (
        let vi = Int32.to_int v in
        (* eBPF Div/Mod are unsigned, so by a power-of-two immediate they
           are exactly a logical shift / a mask — and the PLC compiler
           emits /4 and /8 on every EWMA-style update. (The sign-extended
           [vi] is positive only when the 64-bit divisor is, so the
           power-of-two test below is on the value the ALU would use.) *)
        let pow2 = vi > 0 && vi land (vi - 1) = 0 in
        match op with
        | Insn.Div when pow2 ->
          let rec tz k n = if n land 1 = 1 then k else tz (k + 1) (n asr 1) in
          set f_rsh64_ri dst (tz 0 vi) 0
        | Insn.Mod when pow2 -> set f_and64_ri dst (vi - 1) 0
        | _ ->
          let o =
            match op with
            | Insn.Add -> f_add64_ri
            | Insn.Sub -> f_sub64_ri
            | Insn.Mul -> f_mul64_ri
            | Insn.Div -> f_div64_ri
            | Insn.Mov -> f_mov64_ri
            | Insn.Or -> f_or64_ri
            | Insn.And -> f_and64_ri
            | Insn.Xor -> f_xor64_ri
            | Insn.Lsh -> f_lsh64_ri
            | Insn.Rsh -> f_rsh64_ri
            | Insn.Arsh -> f_arsh64_ri
            | Insn.Mod -> f_mod64_ri
            | Insn.Neg -> f_neg64
          in
          set o dst vi 0)
      | Insn.Alu32 (op, dst, Insn.Reg src) when reg_ok dst && reg_ok src ->
        set f_alu32_rr dst src (alu_op_index op)
      | Insn.Alu32 (op, dst, Insn.Imm v) when reg_ok dst ->
        set f_alu32_ri dst (Int32.to_int v) (alu_op_index op)
      | Insn.Ld_imm64 (dst, v) when reg_ok dst ->
        let off = Buffer.length pool in
        Buffer.add_int64_ne pool v;
        set f_ld_imm64 dst off 0
      | Insn.Ldx (sz, dst, src, off) when reg_ok dst && reg_ok src ->
        let o =
          match sz with
          | Insn.W8 -> f_ldx8
          | Insn.W16 -> f_ldx16
          | Insn.W32 -> f_ldx32
          | Insn.W64 -> f_ldx64
        in
        set o dst src off
      | Insn.Stx (sz, dst, off, src) when reg_ok dst && reg_ok src ->
        let o =
          match sz with
          | Insn.W8 -> f_stx8
          | Insn.W16 -> f_stx16
          | Insn.W32 -> f_stx32
          | Insn.W64 -> f_stx64
        in
        set o dst off src
      | Insn.St (sz, dst, off, imm) when reg_ok dst ->
        let o =
          match sz with
          | Insn.W8 -> f_st8
          | Insn.W16 -> f_st16
          | Insn.W32 -> f_st32
          | Insn.W64 -> f_st64
        in
        set o dst off (Int32.to_int imm)
      | Insn.Ja off -> set f_ja (target i off) 0 0
      | Insn.Jcond (c, dst, Insn.Reg src, off) when reg_ok dst && reg_ok src
        ->
        let o =
          match c with
          | Insn.Jeq -> f_jeq_rr
          | Insn.Jne -> f_jne_rr
          | Insn.Jgt -> f_jgt_rr
          | Insn.Jge -> f_jge_rr
          | Insn.Jlt -> f_jlt_rr
          | Insn.Jle -> f_jle_rr
          | Insn.Jsgt -> f_jsgt_rr
          | Insn.Jsge -> f_jsge_rr
          | Insn.Jslt -> f_jslt_rr
          | Insn.Jsle -> f_jsle_rr
          | Insn.Jset -> f_jset_rr
        in
        set o dst src (target i off)
      | Insn.Jcond (c, dst, Insn.Imm v, off) when reg_ok dst ->
        let o =
          match c with
          | Insn.Jeq -> f_jeq_ri
          | Insn.Jne -> f_jne_ri
          | Insn.Jgt -> f_jgt_ri
          | Insn.Jge -> f_jge_ri
          | Insn.Jlt -> f_jlt_ri
          | Insn.Jle -> f_jle_ri
          | Insn.Jsgt -> f_jsgt_ri
          | Insn.Jsge -> f_jsge_ri
          | Insn.Jslt -> f_jslt_ri
          | Insn.Jsle -> f_jsle_ri
          | Insn.Jset -> f_jset_ri
        in
        set o dst (Int32.to_int v) (target i off)
      | Insn.Call id -> set f_call id 0 0
      | Insn.Exit -> set f_exit 0 0 0
      | Insn.Alu64 _ | Insn.Alu32 _ | Insn.Ld_imm64 _ | Insn.Ldx _
      | Insn.Stx _ | Insn.St _ | Insn.Jcond _ ->
        set f_trap_badreg 0 0 0)
    prog;
  (* Superinstruction pass: rewrite the first opcode of the frequent
     pairs above. Reading the successor's opcode before it is itself
     rewritten keeps the scan one forward pass. *)
  for i = 0 to n - 2 do
    let a = ops.(4 * i) and b = ops.(4 * (i + 1)) in
    let fused =
      if a = f_mov64_rr && b = f_ldx64 then f_movrr_ldx64
      else if a = f_stx64 && b = f_mov64_ri then f_stx64_movri
      else if a = f_stx64 && b = f_ldx64 then f_stx64_ldx64
      else if a = f_mov64_ri && b = f_mov64_rr then f_movri_movrr
      else if a = f_ldx64 && b = f_stx64 then f_ldx64_stx64
      else if a = f_mov64_ri && b = f_stx64 then f_movri_stx64
      else if a = f_ldx64 && b = f_mul64_rr then f_ldx64_mulrr
      else if a = f_ldx64 && b = f_add64_rr then f_ldx64_addrr
      else -1
    in
    if fused >= 0 then ops.(4 * i) <- fused
  done;
  { ops; pool = Buffer.to_bytes pool }

(* Raw native-endian 64-bit access into the register file. Indices come
   from linked instructions, which [link] guarantees name r0..r10 only
   (anything else became [L_trap_badreg]), so the unchecked primitives are
   safe — and unlike an [int64 array] element store they keep the value
   unboxed through the whole load/compute/store chain. *)
external bytes_get64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external bytes_set64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

let[@inline always] rget b r = bytes_get64 b (r lsl 3)
let[@inline always] rset b r v = bytes_set64 b (r lsl 3) v

(* 64-bit ALU for the linked loop. [alu64] joins thirteen branches into
   one int64 result, and because the Div/Mod branches end in calls to
   [Int64.unsigned_div]/[unsigned_rem] (plain functions returning boxed
   values) the join point is forced into a boxed representation — every
   Add would allocate. Writing the register inside each branch removes
   the join, so the frequent arithmetic ops stay unboxed end to end. *)
(* Unsigned 64-bit comparison via sign-bias, using only comparison
   primitives the compiler evaluates on unboxed values
   ([Int64.unsigned_compare] is a plain function whose call would force
   its operands into boxes on the interpreter's hottest path). *)
let[@inline always] ucmp a b =
  Int64.compare (Int64.add a Int64.min_int) (Int64.add b Int64.min_int)

(* [Int64.unsigned_div]/[unsigned_rem] are stdlib functions, so a call
   boxes both operands and the result; this is their exact algorithm
   (signed-div of the halved dividend, then a fixup step) spelled with
   primitives only. *)
let[@inline always] udiv64 n d =
  let open Int64 in
  if d < 0L then (if ucmp n d < 0 then 0L else 1L)
  else begin
    let q = shift_left (div (shift_right_logical n 1) d) 1 in
    let r = sub n (mul q d) in
    if ucmp r d >= 0 then succ q else q
  end

let[@inline always] urem64 n d = Int64.sub n (Int64.mul (udiv64 n d) d)

(* Zero-extending 32-bit register write: each 32-bit ALU branch calls it
   directly so nothing joins in a boxed representation (a local helper
   closure would allocate). *)
let[@inline always] zx32 regb dst r =
  rset regb dst (Int64.logand (Int64.of_int32 r) 0xffffffffL)

(* Same dispatch keyed by [alu_op_index], for the generic 32-bit ALU
   opcodes of the linked form (the only instruction class that keeps a
   secondary dispatch — pluglet arithmetic is overwhelmingly 64-bit). *)
let[@inline always] alu32_seti regb dst opi a b =
  let a32 = Int64.to_int32 a and b32 = Int64.to_int32 b in
  let open Int32 in
  match opi with
  | 0 -> zx32 regb dst (add a32 b32)
  | 1 -> zx32 regb dst (sub a32 b32)
  | 2 -> zx32 regb dst (mul a32 b32)
  | 3 -> zx32 regb dst (if b32 = 0l then 0l else unsigned_div a32 b32)
  | 9 -> zx32 regb dst (if b32 = 0l then a32 else unsigned_rem a32 b32)
  | 4 -> zx32 regb dst (logor a32 b32)
  | 5 -> zx32 regb dst (logand a32 b32)
  | 10 -> zx32 regb dst (logxor a32 b32)
  | 6 -> zx32 regb dst (shift_left a32 (Int32.to_int (logand b32 31l)))
  | 7 ->
    zx32 regb dst (shift_right_logical a32 (Int32.to_int (logand b32 31l)))
  | 12 -> zx32 regb dst (shift_right a32 (Int32.to_int (logand b32 31l)))
  | 11 -> zx32 regb dst b32
  | _ -> zx32 regb dst (neg a32) (* 8, Neg *)

(* Region resolution for the linked loop: the stack is always window 1
   (pluglet locals, the dominant traffic), then the last-hit memo, then
   the dense table via [region_at]. *)
let[@inline always] region_for vm addr len =
  let w = Int64.to_int (Int64.shift_right_logical addr window_bits) in
  if w = 1 then vm.stack
  else if vm.last_region.window = w then vm.last_region
  else region_at vm addr len

let ro_violation len addr r =
  raise
    (Memory_violation
       (Printf.sprintf "write of %d bytes at 0x%Lx in read-only region %s"
          len addr r.rname))

(* Unchecked multi-byte accessors. The stdlib's [Bytes.get_int64_le]
   family are plain functions, so without cross-module inlining every
   memory instruction would pay a call and box its result; these compile
   to single loads/stores. Bounds are checked by the callers below, and
   [Sys.big_endian] platforms fall back to the (slow, correct) stdlib
   accessors so the little-endian guest byte order is preserved. *)
external bytes_get16u : Bytes.t -> int -> int = "%caml_bytes_get16u"
external bytes_get32u : Bytes.t -> int -> int32 = "%caml_bytes_get32u"
external bytes_set16u : Bytes.t -> int -> int -> unit = "%caml_bytes_set16u"
external bytes_set32u : Bytes.t -> int -> int32 -> unit = "%caml_bytes_set32u"

(* One monitor + accessor per access size, matching the size-specialized
   linked opcodes: region lookup, bounds check, then a straight-line
   load/store with nothing left to dispatch on. *)
let[@inline always] load8_fast vm addr =
  let r = region_for vm addr 1 in
  let off = Int64.to_int (Int64.logand addr 0xffff_ffffL) in
  if 1 > Bytes.length r.mem - off then out_of_region 1 addr;
  Int64.of_int (Char.code (Bytes.unsafe_get r.mem off))

let[@inline always] load16_fast vm addr =
  let r = region_for vm addr 2 in
  let off = Int64.to_int (Int64.logand addr 0xffff_ffffL) in
  if 2 > Bytes.length r.mem - off then out_of_region 2 addr;
  if Sys.big_endian then Int64.of_int (Bytes.get_uint16_le r.mem off)
  else Int64.of_int (bytes_get16u r.mem off)

let[@inline always] load32_fast vm addr =
  let r = region_for vm addr 4 in
  let off = Int64.to_int (Int64.logand addr 0xffff_ffffL) in
  if 4 > Bytes.length r.mem - off then out_of_region 4 addr;
  if Sys.big_endian then
    Int64.logand (Int64.of_int32 (Bytes.get_int32_le r.mem off)) 0xffffffffL
  else Int64.logand (Int64.of_int32 (bytes_get32u r.mem off)) 0xffffffffL

let[@inline always] load64_fast vm addr =
  let r = region_for vm addr 8 in
  let off = Int64.to_int (Int64.logand addr 0xffff_ffffL) in
  if 8 > Bytes.length r.mem - off then out_of_region 8 addr;
  if Sys.big_endian then Bytes.get_int64_le r.mem off
  else bytes_get64 r.mem off

let[@inline always] store8_fast vm addr v =
  let r = region_for vm addr 1 in
  let off = Int64.to_int (Int64.logand addr 0xffff_ffffL) in
  if 1 > Bytes.length r.mem - off then out_of_region 1 addr;
  if r.perm == Ro then ro_violation 1 addr r;
  Bytes.unsafe_set r.mem off (Char.unsafe_chr (Int64.to_int v land 0xff))

let[@inline always] store16_fast vm addr v =
  let r = region_for vm addr 2 in
  let off = Int64.to_int (Int64.logand addr 0xffff_ffffL) in
  if 2 > Bytes.length r.mem - off then out_of_region 2 addr;
  if r.perm == Ro then ro_violation 2 addr r;
  if Sys.big_endian then Bytes.set_uint16_le r.mem off (Int64.to_int v land 0xffff)
  else bytes_set16u r.mem off (Int64.to_int v land 0xffff)

let[@inline always] store32_fast vm addr v =
  let r = region_for vm addr 4 in
  let off = Int64.to_int (Int64.logand addr 0xffff_ffffL) in
  if 4 > Bytes.length r.mem - off then out_of_region 4 addr;
  if r.perm == Ro then ro_violation 4 addr r;
  if Sys.big_endian then Bytes.set_int32_le r.mem off (Int64.to_int32 v)
  else bytes_set32u r.mem off (Int64.to_int32 v)

let[@inline always] store64_fast vm addr v =
  let r = region_for vm addr 8 in
  let off = Int64.to_int (Int64.logand addr 0xffff_ffffL) in
  if 8 > Bytes.length r.mem - off then out_of_region 8 addr;
  if r.perm == Ro then ro_violation 8 addr r;
  if Sys.big_endian then Bytes.set_int64_le r.mem off v
  else bytes_set64 r.mem off v

(* Stack-window fast path for the linked loop. Pluglet locals dominate
   memory traffic, the stack is mapped at window 1 for the whole VM
   lifetime, and an in-bounds stack access cannot trap — so it needs
   neither the region record nor an [executed] sync. The whole
   window-plus-bounds test is one subtraction and one unsigned compare:
   [d = addr - stack_base] is below [lim = stack length - access size + 1]
   (precomputed per size by the run loop, clamped at 0) exactly when the
   access lies inside the stack; any other window under- or overflows the
   unsigned range. Everything else — other windows, out-of-bounds
   offsets, big-endian hosts — drops to the monitored [*_fast] path
   above, syncing [vm.executed] first because it may raise.
   ([Sys.big_endian] folds to a constant, so the check is free.) *)
let[@inline always] load8_m vm stk lim execd addr =
  let d = Int64.sub addr region_alignment in
  if ucmp d lim < 0 then
    Int64.of_int (Char.code (Bytes.unsafe_get stk (Int64.to_int d)))
  else begin
    vm.executed <- execd;
    load8_fast vm addr
  end

let[@inline always] load16_m vm stk lim execd addr =
  let d = Int64.sub addr region_alignment in
  if (not Sys.big_endian) && ucmp d lim < 0 then
    Int64.of_int (bytes_get16u stk (Int64.to_int d))
  else begin
    vm.executed <- execd;
    load16_fast vm addr
  end

let[@inline always] load32_m vm stk lim execd addr =
  let d = Int64.sub addr region_alignment in
  if (not Sys.big_endian) && ucmp d lim < 0 then
    Int64.logand (Int64.of_int32 (bytes_get32u stk (Int64.to_int d))) 0xffffffffL
  else begin
    vm.executed <- execd;
    load32_fast vm addr
  end

let[@inline always] load64_m vm stk lim execd addr =
  let d = Int64.sub addr region_alignment in
  if (not Sys.big_endian) && ucmp d lim < 0 then
    bytes_get64 stk (Int64.to_int d)
  else begin
    vm.executed <- execd;
    load64_fast vm addr
  end

(* The stack is always [Rw], so the stores' fast path skips the
   permission check too. *)
let[@inline always] store8_m vm stk lim execd addr v =
  let d = Int64.sub addr region_alignment in
  if ucmp d lim < 0 then
    Bytes.unsafe_set stk (Int64.to_int d)
      (Char.unsafe_chr (Int64.to_int v land 0xff))
  else begin
    vm.executed <- execd;
    store8_fast vm addr v
  end

let[@inline always] store16_m vm stk lim execd addr v =
  let d = Int64.sub addr region_alignment in
  if (not Sys.big_endian) && ucmp d lim < 0 then
    bytes_set16u stk (Int64.to_int d) (Int64.to_int v land 0xffff)
  else begin
    vm.executed <- execd;
    store16_fast vm addr v
  end

let[@inline always] store32_m vm stk lim execd addr v =
  let d = Int64.sub addr region_alignment in
  if (not Sys.big_endian) && ucmp d lim < 0 then
    bytes_set32u stk (Int64.to_int d) (Int64.to_int32 v)
  else begin
    vm.executed <- execd;
    store32_fast vm addr v
  end

let[@inline always] store64_m vm stk lim execd addr v =
  let d = Int64.sub addr region_alignment in
  if (not Sys.big_endian) && ucmp d lim < 0 then
    bytes_set64 stk (Int64.to_int d) v
  else begin
    vm.executed <- execd;
    store64_fast vm addr v
  end

(* Execute a linked program. Shares the register file and helper-argument
   scratch array of the VM, so the per-run setup is two small fills; the
   VM is therefore not re-entrant on this path (a helper must not run the
   *same* VM again — protoop loop detection already rules that out for
   pluglets, whose only way back in is their own protocol operation).

   The loop carries [pc] and the remaining fuel as immediate ints through
   a tail call, keeps registers unboxed via [rget]/[rset], and inlines
   the ALU, comparison and memory-monitor helpers so no int64 crosses a
   function boundary on the hot path: a run allocates nothing beyond its
   boxed result (helper calls excepted). *)
let run_linked vm ?(args = [||]) (code : linked_prog) =
  reset_stack vm;
  let regb = vm.regb in
  Bytes.fill regb 0 88 '\000';
  let nargs = Array.length args in
  for k = 0 to (if nargs > 5 then 4 else nargs - 1) do
    rset regb (k + 1) args.(k)
  done;
  rset regb Insn.fp (fp_value vm);
  (* [vm.executed] accounting is derived from the fuel counter instead of
     a per-instruction store: with [k = base + fuel0 + 1], the value
     [k - fuel] at any step is the executed count *including* the current
     instruction (fuel is decremented in the tail call, after it). The
     count is synced — by absolute assignment, so re-syncing is
     idempotent — before anything that can trap or observe it: memory
     ops that leave the stack fast path (an in-bounds stack access cannot
     trap, so it skips the sync), helper calls, program exit, and the
     explicit trap arms. The
     reference path's accounting (increment before executing each
     instruction, so a trapping instruction is already counted, and the
     fuel-exhausted one is not) is reproduced exactly. *)
  let stk = vm.stack.mem in
  (* Per-access-size stack fast-path limits for [load*_m]/[store*_m]:
     the largest in-bounds [addr - stack_base], exclusive. Clamped at 0
     (= fast path never hit) for stacks smaller than the access. *)
  let stklen = Bytes.length stk in
  let lim1 = Int64.of_int stklen in
  let lim2 = Int64.of_int (max 0 (stklen - 1)) in
  let lim4 = Int64.of_int (max 0 (stklen - 3)) in
  let lim8 = Int64.of_int (max 0 (stklen - 7)) in
  let ops = code.ops in
  let pool = code.pool in
  let fuel0 = vm.max_insns in
  let k = vm.executed + fuel0 + 1 in
  let invalid_jump fuel =
    (* Unreachable for verified programs; same lazy trap as the
       reference path. *)
    vm.executed <- k - fuel;
    raise (Memory_violation "jump to invalid slot")
  in
  (* The opcode literals below mirror the [f_*] table next to [link];
     the match is over a dense range, so it compiles to one jump table. *)
  let rec exec pc fuel =
    if fuel <= 0 then begin
      vm.executed <- k - fuel - 1;
      raise Fuel_exhausted
    end;
    let a1 = Array.unsafe_get ops (pc + 1) in
    let a2 = Array.unsafe_get ops (pc + 2) in
    let a3 = Array.unsafe_get ops (pc + 3) in
    match Array.unsafe_get ops pc with
    | 0 (* add64_rr *) ->
      rset regb a1 (Int64.add (rget regb a1) (rget regb a2));
      exec (pc + 4) (fuel - 1)
    | 1 (* add64_ri *) ->
      rset regb a1 (Int64.add (rget regb a1) (Int64.of_int a2));
      exec (pc + 4) (fuel - 1)
    | 2 (* sub64_rr *) ->
      rset regb a1 (Int64.sub (rget regb a1) (rget regb a2));
      exec (pc + 4) (fuel - 1)
    | 3 (* sub64_ri *) ->
      rset regb a1 (Int64.sub (rget regb a1) (Int64.of_int a2));
      exec (pc + 4) (fuel - 1)
    | 4 (* mul64_rr *) ->
      rset regb a1 (Int64.mul (rget regb a1) (rget regb a2));
      exec (pc + 4) (fuel - 1)
    | 5 (* mul64_ri *) ->
      rset regb a1 (Int64.mul (rget regb a1) (Int64.of_int a2));
      exec (pc + 4) (fuel - 1)
    | 6 (* div64_rr *) ->
      let b = rget regb a2 in
      rset regb a1 (if Int64.equal b 0L then 0L else udiv64 (rget regb a1) b);
      exec (pc + 4) (fuel - 1)
    | 7 (* div64_ri *) ->
      rset regb a1
        (if a2 = 0 then 0L else udiv64 (rget regb a1) (Int64.of_int a2));
      exec (pc + 4) (fuel - 1)
    | 8 (* mov64_rr *) ->
      rset regb a1 (rget regb a2);
      exec (pc + 4) (fuel - 1)
    | 9 (* mov64_ri *) ->
      rset regb a1 (Int64.of_int a2);
      exec (pc + 4) (fuel - 1)
    | 10 (* or64_rr *) ->
      rset regb a1 (Int64.logor (rget regb a1) (rget regb a2));
      exec (pc + 4) (fuel - 1)
    | 11 (* or64_ri *) ->
      rset regb a1 (Int64.logor (rget regb a1) (Int64.of_int a2));
      exec (pc + 4) (fuel - 1)
    | 12 (* and64_rr *) ->
      rset regb a1 (Int64.logand (rget regb a1) (rget regb a2));
      exec (pc + 4) (fuel - 1)
    | 13 (* and64_ri *) ->
      rset regb a1 (Int64.logand (rget regb a1) (Int64.of_int a2));
      exec (pc + 4) (fuel - 1)
    | 14 (* xor64_rr *) ->
      rset regb a1 (Int64.logxor (rget regb a1) (rget regb a2));
      exec (pc + 4) (fuel - 1)
    | 15 (* xor64_ri *) ->
      rset regb a1 (Int64.logxor (rget regb a1) (Int64.of_int a2));
      exec (pc + 4) (fuel - 1)
    | 16 (* lsh64_rr *) ->
      rset regb a1
        (Int64.shift_left (rget regb a1)
           (Int64.to_int (Int64.logand (rget regb a2) 63L)));
      exec (pc + 4) (fuel - 1)
    | 17 (* lsh64_ri *) ->
      rset regb a1 (Int64.shift_left (rget regb a1) (a2 land 63));
      exec (pc + 4) (fuel - 1)
    | 18 (* rsh64_rr *) ->
      rset regb a1
        (Int64.shift_right_logical (rget regb a1)
           (Int64.to_int (Int64.logand (rget regb a2) 63L)));
      exec (pc + 4) (fuel - 1)
    | 19 (* rsh64_ri *) ->
      rset regb a1 (Int64.shift_right_logical (rget regb a1) (a2 land 63));
      exec (pc + 4) (fuel - 1)
    | 20 (* arsh64_rr *) ->
      rset regb a1
        (Int64.shift_right (rget regb a1)
           (Int64.to_int (Int64.logand (rget regb a2) 63L)));
      exec (pc + 4) (fuel - 1)
    | 21 (* arsh64_ri *) ->
      rset regb a1 (Int64.shift_right (rget regb a1) (a2 land 63));
      exec (pc + 4) (fuel - 1)
    | 22 (* mod64_rr *) ->
      let b = rget regb a2 in
      let a = rget regb a1 in
      rset regb a1 (if Int64.equal b 0L then a else urem64 a b);
      exec (pc + 4) (fuel - 1)
    | 23 (* mod64_ri *) ->
      let a = rget regb a1 in
      rset regb a1 (if a2 = 0 then a else urem64 a (Int64.of_int a2));
      exec (pc + 4) (fuel - 1)
    | 24 (* neg64 *) ->
      rset regb a1 (Int64.neg (rget regb a1));
      exec (pc + 4) (fuel - 1)
    | 25 (* alu32_rr *) ->
      alu32_seti regb a1 a3 (rget regb a1) (rget regb a2);
      exec (pc + 4) (fuel - 1)
    | 26 (* alu32_ri *) ->
      alu32_seti regb a1 a3 (rget regb a1) (Int64.of_int a2);
      exec (pc + 4) (fuel - 1)
    | 27 (* ld_imm64 *) ->
      rset regb a1 (bytes_get64 pool a2);
      exec (pc + 4) (fuel - 1)
    | 28 (* ldx8 *) ->
      rset regb a1
        (load8_m vm stk lim1 (k - fuel)
           (Int64.add (rget regb a2) (Int64.of_int a3)));
      exec (pc + 4) (fuel - 1)
    | 29 (* ldx16 *) ->
      rset regb a1
        (load16_m vm stk lim2 (k - fuel)
           (Int64.add (rget regb a2) (Int64.of_int a3)));
      exec (pc + 4) (fuel - 1)
    | 30 (* ldx32 *) ->
      rset regb a1
        (load32_m vm stk lim4 (k - fuel)
           (Int64.add (rget regb a2) (Int64.of_int a3)));
      exec (pc + 4) (fuel - 1)
    | 31 (* ldx64 *) ->
      rset regb a1
        (load64_m vm stk lim8 (k - fuel)
           (Int64.add (rget regb a2) (Int64.of_int a3)));
      exec (pc + 4) (fuel - 1)
    | 32 (* stx8 *) ->
      store8_m vm stk lim1 (k - fuel)
        (Int64.add (rget regb a1) (Int64.of_int a2))
        (rget regb a3);
      exec (pc + 4) (fuel - 1)
    | 33 (* stx16 *) ->
      store16_m vm stk lim2 (k - fuel)
        (Int64.add (rget regb a1) (Int64.of_int a2))
        (rget regb a3);
      exec (pc + 4) (fuel - 1)
    | 34 (* stx32 *) ->
      store32_m vm stk lim4 (k - fuel)
        (Int64.add (rget regb a1) (Int64.of_int a2))
        (rget regb a3);
      exec (pc + 4) (fuel - 1)
    | 35 (* stx64 *) ->
      store64_m vm stk lim8 (k - fuel)
        (Int64.add (rget regb a1) (Int64.of_int a2))
        (rget regb a3);
      exec (pc + 4) (fuel - 1)
    | 36 (* st8 *) ->
      store8_m vm stk lim1 (k - fuel)
        (Int64.add (rget regb a1) (Int64.of_int a2))
        (Int64.of_int a3);
      exec (pc + 4) (fuel - 1)
    | 37 (* st16 *) ->
      store16_m vm stk lim2 (k - fuel)
        (Int64.add (rget regb a1) (Int64.of_int a2))
        (Int64.of_int a3);
      exec (pc + 4) (fuel - 1)
    | 38 (* st32 *) ->
      store32_m vm stk lim4 (k - fuel)
        (Int64.add (rget regb a1) (Int64.of_int a2))
        (Int64.of_int a3);
      exec (pc + 4) (fuel - 1)
    | 39 (* st64 *) ->
      store64_m vm stk lim8 (k - fuel)
        (Int64.add (rget regb a1) (Int64.of_int a2))
        (Int64.of_int a3);
      exec (pc + 4) (fuel - 1)
    | 40 (* ja *) ->
      if a1 >= 0 then exec a1 (fuel - 1) else invalid_jump fuel
    | 41 (* jeq_rr *) ->
      if Int64.equal (rget regb a1) (rget regb a2) then
        if a3 >= 0 then exec a3 (fuel - 1) else invalid_jump fuel
      else exec (pc + 4) (fuel - 1)
    | 42 (* jeq_ri *) ->
      if Int64.equal (rget regb a1) (Int64.of_int a2) then
        if a3 >= 0 then exec a3 (fuel - 1) else invalid_jump fuel
      else exec (pc + 4) (fuel - 1)
    | 43 (* jne_rr *) ->
      if not (Int64.equal (rget regb a1) (rget regb a2)) then
        if a3 >= 0 then exec a3 (fuel - 1) else invalid_jump fuel
      else exec (pc + 4) (fuel - 1)
    | 44 (* jne_ri *) ->
      if not (Int64.equal (rget regb a1) (Int64.of_int a2)) then
        if a3 >= 0 then exec a3 (fuel - 1) else invalid_jump fuel
      else exec (pc + 4) (fuel - 1)
    | 45 (* jgt_rr *) ->
      if ucmp (rget regb a1) (rget regb a2) > 0 then
        if a3 >= 0 then exec a3 (fuel - 1) else invalid_jump fuel
      else exec (pc + 4) (fuel - 1)
    | 46 (* jgt_ri *) ->
      if ucmp (rget regb a1) (Int64.of_int a2) > 0 then
        if a3 >= 0 then exec a3 (fuel - 1) else invalid_jump fuel
      else exec (pc + 4) (fuel - 1)
    | 47 (* jge_rr *) ->
      if ucmp (rget regb a1) (rget regb a2) >= 0 then
        if a3 >= 0 then exec a3 (fuel - 1) else invalid_jump fuel
      else exec (pc + 4) (fuel - 1)
    | 48 (* jge_ri *) ->
      if ucmp (rget regb a1) (Int64.of_int a2) >= 0 then
        if a3 >= 0 then exec a3 (fuel - 1) else invalid_jump fuel
      else exec (pc + 4) (fuel - 1)
    | 49 (* jlt_rr *) ->
      if ucmp (rget regb a1) (rget regb a2) < 0 then
        if a3 >= 0 then exec a3 (fuel - 1) else invalid_jump fuel
      else exec (pc + 4) (fuel - 1)
    | 50 (* jlt_ri *) ->
      if ucmp (rget regb a1) (Int64.of_int a2) < 0 then
        if a3 >= 0 then exec a3 (fuel - 1) else invalid_jump fuel
      else exec (pc + 4) (fuel - 1)
    | 51 (* jle_rr *) ->
      if ucmp (rget regb a1) (rget regb a2) <= 0 then
        if a3 >= 0 then exec a3 (fuel - 1) else invalid_jump fuel
      else exec (pc + 4) (fuel - 1)
    | 52 (* jle_ri *) ->
      if ucmp (rget regb a1) (Int64.of_int a2) <= 0 then
        if a3 >= 0 then exec a3 (fuel - 1) else invalid_jump fuel
      else exec (pc + 4) (fuel - 1)
    | 53 (* jsgt_rr *) ->
      if Int64.compare (rget regb a1) (rget regb a2) > 0 then
        if a3 >= 0 then exec a3 (fuel - 1) else invalid_jump fuel
      else exec (pc + 4) (fuel - 1)
    | 54 (* jsgt_ri *) ->
      if Int64.compare (rget regb a1) (Int64.of_int a2) > 0 then
        if a3 >= 0 then exec a3 (fuel - 1) else invalid_jump fuel
      else exec (pc + 4) (fuel - 1)
    | 55 (* jsge_rr *) ->
      if Int64.compare (rget regb a1) (rget regb a2) >= 0 then
        if a3 >= 0 then exec a3 (fuel - 1) else invalid_jump fuel
      else exec (pc + 4) (fuel - 1)
    | 56 (* jsge_ri *) ->
      if Int64.compare (rget regb a1) (Int64.of_int a2) >= 0 then
        if a3 >= 0 then exec a3 (fuel - 1) else invalid_jump fuel
      else exec (pc + 4) (fuel - 1)
    | 57 (* jslt_rr *) ->
      if Int64.compare (rget regb a1) (rget regb a2) < 0 then
        if a3 >= 0 then exec a3 (fuel - 1) else invalid_jump fuel
      else exec (pc + 4) (fuel - 1)
    | 58 (* jslt_ri *) ->
      if Int64.compare (rget regb a1) (Int64.of_int a2) < 0 then
        if a3 >= 0 then exec a3 (fuel - 1) else invalid_jump fuel
      else exec (pc + 4) (fuel - 1)
    | 59 (* jsle_rr *) ->
      if Int64.compare (rget regb a1) (rget regb a2) <= 0 then
        if a3 >= 0 then exec a3 (fuel - 1) else invalid_jump fuel
      else exec (pc + 4) (fuel - 1)
    | 60 (* jsle_ri *) ->
      if Int64.compare (rget regb a1) (Int64.of_int a2) <= 0 then
        if a3 >= 0 then exec a3 (fuel - 1) else invalid_jump fuel
      else exec (pc + 4) (fuel - 1)
    | 61 (* jset_rr *) ->
      if not (Int64.equal (Int64.logand (rget regb a1) (rget regb a2)) 0L)
      then if a3 >= 0 then exec a3 (fuel - 1) else invalid_jump fuel
      else exec (pc + 4) (fuel - 1)
    | 62 (* jset_ri *) ->
      if
        not (Int64.equal (Int64.logand (rget regb a1) (Int64.of_int a2)) 0L)
      then if a3 >= 0 then exec a3 (fuel - 1) else invalid_jump fuel
      else exec (pc + 4) (fuel - 1)
    | 63 (* call *) ->
      vm.executed <- k - fuel;
      (match
         (if a1 >= 0 && a1 < Array.length vm.helpers then vm.helpers.(a1)
          else None)
       with
      | None -> raise (Helper_failure (Printf.sprintf "helper %d missing" a1))
      | Some f ->
        let call_args = vm.scratch_args in
        for j = 0 to 4 do
          call_args.(j) <- rget regb (j + 1)
        done;
        let res = f vm call_args in
        rset regb 0 res;
        (* r1-r5 are clobbered by calls, per the eBPF convention. *)
        Bytes.fill regb 8 40 '\000');
      exec (pc + 4) (fuel - 1)
    | 64 (* exit *) ->
      vm.executed <- k - fuel;
      rget regb 0
    | 66 (* mov64_rr + ldx64 *) ->
      if fuel >= 2 then begin
        rset regb a1 (rget regb a2);
        let b1 = Array.unsafe_get ops (pc + 5) in
        let b2 = Array.unsafe_get ops (pc + 6) in
        let b3 = Array.unsafe_get ops (pc + 7) in
        rset regb b1
          (load64_m vm stk lim8
             (k - fuel + 1)
             (Int64.add (rget regb b2) (Int64.of_int b3)));
        exec (pc + 8) (fuel - 2)
      end
      else begin
        rset regb a1 (rget regb a2);
        exec (pc + 4) (fuel - 1)
      end
    | 67 (* stx64 + mov64_ri *) ->
      store64_m vm stk lim8 (k - fuel)
        (Int64.add (rget regb a1) (Int64.of_int a2))
        (rget regb a3);
      if fuel >= 2 then begin
        let b1 = Array.unsafe_get ops (pc + 5) in
        let b2 = Array.unsafe_get ops (pc + 6) in
        rset regb b1 (Int64.of_int b2);
        exec (pc + 8) (fuel - 2)
      end
      else exec (pc + 4) (fuel - 1)
    | 68 (* stx64 + ldx64 *) ->
      store64_m vm stk lim8 (k - fuel)
        (Int64.add (rget regb a1) (Int64.of_int a2))
        (rget regb a3);
      if fuel >= 2 then begin
        let b1 = Array.unsafe_get ops (pc + 5) in
        let b2 = Array.unsafe_get ops (pc + 6) in
        let b3 = Array.unsafe_get ops (pc + 7) in
        rset regb b1
          (load64_m vm stk lim8
             (k - fuel + 1)
             (Int64.add (rget regb b2) (Int64.of_int b3)));
        exec (pc + 8) (fuel - 2)
      end
      else exec (pc + 4) (fuel - 1)
    | 69 (* mov64_ri + mov64_rr *) ->
      rset regb a1 (Int64.of_int a2);
      if fuel >= 2 then begin
        let b1 = Array.unsafe_get ops (pc + 5) in
        let b2 = Array.unsafe_get ops (pc + 6) in
        rset regb b1 (rget regb b2);
        exec (pc + 8) (fuel - 2)
      end
      else exec (pc + 4) (fuel - 1)
    | 70 (* ldx64 + stx64 *) ->
      rset regb a1
        (load64_m vm stk lim8 (k - fuel)
           (Int64.add (rget regb a2) (Int64.of_int a3)));
      if fuel >= 2 then begin
        let b1 = Array.unsafe_get ops (pc + 5) in
        let b2 = Array.unsafe_get ops (pc + 6) in
        let b3 = Array.unsafe_get ops (pc + 7) in
        store64_m vm stk lim8
          (k - fuel + 1)
          (Int64.add (rget regb b1) (Int64.of_int b2))
          (rget regb b3);
        exec (pc + 8) (fuel - 2)
      end
      else exec (pc + 4) (fuel - 1)
    | 71 (* mov64_ri + stx64 *) ->
      rset regb a1 (Int64.of_int a2);
      if fuel >= 2 then begin
        let b1 = Array.unsafe_get ops (pc + 5) in
        let b2 = Array.unsafe_get ops (pc + 6) in
        let b3 = Array.unsafe_get ops (pc + 7) in
        store64_m vm stk lim8
          (k - fuel + 1)
          (Int64.add (rget regb b1) (Int64.of_int b2))
          (rget regb b3);
        exec (pc + 8) (fuel - 2)
      end
      else exec (pc + 4) (fuel - 1)
    | 72 (* ldx64 + mul64_rr *) ->
      rset regb a1
        (load64_m vm stk lim8 (k - fuel)
           (Int64.add (rget regb a2) (Int64.of_int a3)));
      if fuel >= 2 then begin
        let b1 = Array.unsafe_get ops (pc + 5) in
        let b2 = Array.unsafe_get ops (pc + 6) in
        rset regb b1 (Int64.mul (rget regb b1) (rget regb b2));
        exec (pc + 8) (fuel - 2)
      end
      else exec (pc + 4) (fuel - 1)
    | 73 (* ldx64 + add64_rr *) ->
      rset regb a1
        (load64_m vm stk lim8 (k - fuel)
           (Int64.add (rget regb a2) (Int64.of_int a3)));
      if fuel >= 2 then begin
        let b1 = Array.unsafe_get ops (pc + 5) in
        let b2 = Array.unsafe_get ops (pc + 6) in
        rset regb b1 (Int64.add (rget regb b1) (rget regb b2));
        exec (pc + 8) (fuel - 2)
      end
      else exec (pc + 4) (fuel - 1)
    | _ (* trap_badreg; also the fall-off-the-end sentinel, which — like
           the reference path's failed fetch — counts the instruction and
           traps with the array's own error *) ->
      vm.executed <- k - fuel;
      raise (Invalid_argument "index out of bounds")
  in
  exec 0 fuel0

let executed vm = vm.executed
